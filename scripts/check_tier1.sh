#!/usr/bin/env bash
# Tier-1 gate: configure, build (warnings are errors via cvg_warnings) and
# run the full ctest suite — including the engine-equivalence tests and the
# `cvg run all --smoke` driver test.  Uses a dedicated build directory so a
# developer's incremental build/ stays untouched.
#
# Usage: scripts/check_tier1.sh [extra ctest args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-tier1"

cmake -B "${build_dir}" -S "${repo_root}"
cmake --build "${build_dir}" -j"$(nproc)"
ctest --test-dir "${build_dir}" --output-on-failure -j"$(nproc)" "$@"
