#!/usr/bin/env python3
"""Repo-specific invariant checks (the cheap, always-available half of the
static-analysis wall — scripts/check_lint.sh runs this before clang-tidy).

Enforced invariants:

  1. Every concrete `Policy` subclass overrides `locality()` — the locality
     auditor and the black-box check key off the declared radius, so a
     missing override is a hole in the ℓ-locality wall.
  2. Every policy name the registry constructs is referenced by at least one
     test, so nothing ships unexercised (parameterized families are matched
     by prefix).
  3. No raw `assert(` in library code: invariants go through CVG_CHECK /
     CVG_DCHECK, which stay on in release builds resp. stream diagnostics.
  4. No `std::cout` in library code: libraries report through return values
     and sinks; only CLIs, benches and examples own stdout.
  5. Determinism: no `random_device` outside files that define `int main(`.
     Everything that randomizes (fuzzer, random topologies, adversaries)
     takes an explicit 64-bit seed so corpus entries and test failures
     replay bit-for-bit; only a top-level CLI may ever mix in entropy.
  6. Every adversary name the registry constructs is referenced by at least
     one test (parameterized families matched by prefix) — the fuzzer's
     seed battery pulls from this registry, so an untested strategy would
     feed the corpus unexercised.
  7. Every fuzz mutator name in src/corpus/src/fuzz.cpp is referenced by at
     least one test, so the documented mutator set cannot drift from the
     implementation silently.
  8. Every service job type in src/serve/src/job.cpp (the kJobKinds wire
     names) is referenced by at least one tests/serve_*_test.cpp, so the
     NDJSON protocol surface cannot grow an op the tests never exercise.
  9. Every `LaneRuleKind` enumerator in src/core/include/cvg/core/lanes.hpp
     is referenced by tests/lane_engine_test.cpp — each branch-free lane
     kernel must stay pinned bit-identical to its scalar policy, so a rule
     kind without an equivalence test is an unverified fast path.
 10. Fixed-footprint hot paths: the per-step engines and the certifier
     pipeline (the files listed in HOT_PATH_FILES) must not use the
     allocation-churning vocabulary — node-based containers (std::deque,
     std::list, std::map/set, unordered_map/set), make_unique/make_shared,
     or raw non-placement `new`.  Scratch lives in construction-sized
     workspaces, cvg::mem containers, or arenas; the allocation_audit_test
     proves the dynamic half of this invariant, this rule pins the static
     half so a regression is caught at lint time, before a profile run.

Exits non-zero listing every violation; prints a one-line summary on success.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
TESTS = REPO / "tests"
BENCH = REPO / "bench"


def source_files(root: Path, suffixes: tuple[str, ...]) -> list[Path]:
    return sorted(p for p in root.rglob("*") if p.suffix in suffixes)


def strip_comments(text: str) -> str:
    """Removes // and /* */ comments (string literals are rare enough in
    this codebase that a lexer is not worth it for these checks)."""
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    return re.sub(r"//[^\n]*", "", text)


def check_policy_locality_overrides() -> list[str]:
    """Rule 1: each `class X ... : public Policy` block declares locality()."""
    errors = []
    class_re = re.compile(r"^class\s+(\w+)[^;{]*:\s*public\s+Policy\b",
                          re.M)
    for path in source_files(SRC, (".hpp",)):
        text = path.read_text()
        matches = list(class_re.finditer(text))
        for i, match in enumerate(matches):
            # The class body runs until the next top-level class (or EOF);
            # good enough for this codebase's one-class-after-another headers.
            end = matches[i + 1].start() if i + 1 < len(matches) else len(text)
            body = text[match.start():end]
            if not re.search(r"\blocality\(\)\s*const\s+override\b", body):
                errors.append(
                    f"{path.relative_to(REPO)}: class {match.group(1)} "
                    "inherits Policy but does not override locality()")
    return errors


def registry_names() -> tuple[list[str], list[str]]:
    """Fixed names and parameterized prefixes the registry recognises."""
    text = (SRC / "policy" / "src" / "registry.cpp").read_text()
    fixed = re.findall(r'name\s*==\s*"([^"]+)"', text)
    prefixes = re.findall(r'parse_suffix\(name,\s*"([^"]+)"\)', text)
    return fixed, prefixes


def check_registry_names_tested() -> list[str]:
    """Rule 2: every registry name appears in at least one test file."""
    fixed, prefixes = registry_names()
    corpus = "\n".join(p.read_text() for p in source_files(TESTS, (".cpp",)))
    errors = []
    for name in fixed:
        if f'"{name}"' not in corpus:
            errors.append(f"registry policy \"{name}\" is referenced by no "
                          "test in tests/")
    for prefix in prefixes:
        if not re.search(rf'"{re.escape(prefix)}\d+"', corpus):
            errors.append(f"registry family \"{prefix}<k>\" has no "
                          "instantiation in tests/")
    return errors


def check_no_raw_assert() -> list[str]:
    """Rule 3: library code aborts via CVG_CHECK, never raw assert()."""
    raw_assert = re.compile(r"(?<![\w_])assert\s*\(")
    errors = []
    for path in source_files(SRC, (".hpp", ".cpp")):
        for lineno, line in enumerate(strip_comments(path.read_text())
                                      .splitlines(), 1):
            if "static_assert" in line:
                line = line.replace("static_assert", "")
            if raw_assert.search(line):
                errors.append(f"{path.relative_to(REPO)}:{lineno}: raw "
                              "assert( — use CVG_CHECK / CVG_DCHECK")
    return errors


def check_no_cout_in_library() -> list[str]:
    """Rule 4: src/ libraries never write to std::cout."""
    errors = []
    for path in source_files(SRC, (".hpp", ".cpp")):
        for lineno, line in enumerate(strip_comments(path.read_text())
                                      .splitlines(), 1):
            if "std::cout" in line:
                errors.append(f"{path.relative_to(REPO)}:{lineno}: std::cout "
                              "in library code — report via return values "
                              "or sinks")
    return errors


def check_no_random_device() -> list[str]:
    """Rule 5: `random_device` only in files that define `int main(`."""
    errors = []
    for root in (SRC, TESTS, BENCH):
        for path in source_files(root, (".hpp", ".cpp")):
            text = strip_comments(path.read_text())
            if re.search(r"\bint\s+main\s*\(", text):
                continue
            for lineno, line in enumerate(text.splitlines(), 1):
                if "random_device" in line:
                    errors.append(
                        f"{path.relative_to(REPO)}:{lineno}: random_device "
                        "outside a main file — take an explicit 64-bit seed "
                        "so runs replay deterministically")
    return errors


def adversary_registry_names() -> tuple[list[str], list[str]]:
    """Fixed names and parameterized prefixes the adversary registry
    recognises (same source-of-truth parse as the policy rule)."""
    text = (SRC / "adversary" / "src" / "registry.cpp").read_text()
    fixed = re.findall(r'name\s*==\s*"([^"]+)"', text)
    prefixes = re.findall(r'parse_suffix\(name,\s*"([^"]+)"\)', text)
    return fixed, sorted(set(prefixes))


def check_adversary_names_tested() -> list[str]:
    """Rule 6: every adversary registry name appears in some test file."""
    fixed, prefixes = adversary_registry_names()
    corpus = "\n".join(p.read_text() for p in source_files(TESTS, (".cpp",)))
    errors = []
    for name in fixed:
        if f'"{name}"' not in corpus:
            errors.append(f"registry adversary \"{name}\" is referenced by "
                          "no test in tests/")
    for prefix in prefixes:
        if not re.search(rf'"{re.escape(prefix)}\d+"', corpus):
            errors.append(f"adversary family \"{prefix}<k>\" has no "
                          "instantiation in tests/")
    return errors


def fuzz_mutator_names() -> list[str]:
    """The mutator list declared in src/corpus/src/fuzz.cpp."""
    text = (SRC / "corpus" / "src" / "fuzz.cpp").read_text()
    match = re.search(r"kMutators\s*=\s*\{(.*?)\};", text, flags=re.S)
    if not match:
        return []
    return re.findall(r'"([^"]+)"', match.group(1))


def check_fuzz_mutators_tested() -> list[str]:
    """Rule 7: every fuzz mutator name appears in some test file."""
    names = fuzz_mutator_names()
    if not names:
        return ["could not parse the kMutators list out of "
                "src/corpus/src/fuzz.cpp — update check_invariants.py"]
    corpus = "\n".join(p.read_text() for p in source_files(TESTS, (".cpp",)))
    errors = []
    for name in names:
        if f'"{name}"' not in corpus:
            errors.append(f"fuzz mutator \"{name}\" is referenced by no test "
                          "in tests/")
    return errors


def serve_job_kind_names() -> list[str]:
    """The wire-protocol op names declared in src/serve/src/job.cpp."""
    text = (SRC / "serve" / "src" / "job.cpp").read_text()
    match = re.search(r"kJobKinds\[\]\s*=\s*\{(.*?)\};", text, flags=re.S)
    if not match:
        return []
    return re.findall(r'"([^"]+)"', match.group(1))


def check_serve_job_kinds_tested() -> list[str]:
    """Rule 8: every service op name appears in some tests/serve_*_test.cpp."""
    names = serve_job_kind_names()
    if not names:
        return ["could not parse the kJobKinds list out of "
                "src/serve/src/job.cpp — update check_invariants.py"]
    corpus = "\n".join(p.read_text()
                       for p in sorted(TESTS.glob("serve_*_test.cpp")))
    if not corpus:
        return ["no tests/serve_*_test.cpp files — the service protocol "
                "has no test surface"]
    errors = []
    for name in names:
        if f'"{name}"' not in corpus:
            errors.append(f"service job type \"{name}\" is referenced by no "
                          "tests/serve_*_test.cpp")
    return errors


def lane_rule_kind_names() -> list[str]:
    """The enumerators of `enum class LaneRuleKind` in cvg/core/lanes.hpp."""
    text = (SRC / "core" / "include" / "cvg" / "core" /
            "lanes.hpp").read_text()
    match = re.search(r"enum\s+class\s+LaneRuleKind[^{]*\{(.*?)\};", text,
                      flags=re.S)
    if not match:
        return []
    return re.findall(r"^\s*(\w+),", strip_comments(match.group(1)), re.M)


def check_lane_rule_kinds_tested() -> list[str]:
    """Rule 9: every LaneRuleKind enumerator appears in the lane
    equivalence suite."""
    names = lane_rule_kind_names()
    if not names:
        return ["could not parse enum class LaneRuleKind out of "
                "src/core/include/cvg/core/lanes.hpp — update "
                "check_invariants.py"]
    test = TESTS / "lane_engine_test.cpp"
    if not test.exists():
        return ["tests/lane_engine_test.cpp is missing — the lane kernels "
                "have no scalar-equivalence pin"]
    corpus = test.read_text()
    errors = []
    for name in names:
        if not re.search(rf"\bLaneRuleKind::{name}\b", corpus):
            errors.append(f"lane rule kind \"{name}\" is referenced by no "
                          "equivalence test in tests/lane_engine_test.cpp")
    return errors


# Files whose steady-state loops the allocation audit holds to zero heap
# traffic.  src/search/src/exhaustive.cpp is deliberately absent: its
# visited-set/predecessor map cover an unbounded state space, so unordered
# containers are the right tool there (the BFS *frontier* still rides the
# fixed-footprint RingQueue).
HOT_PATH_FILES = [
    "src/sim/src/simulator.cpp",
    "src/sim/src/packet_sim.cpp",
    "src/sim/src/bidir.cpp",
    "src/sim/src/lane_engine.cpp",
    "src/dag/src/dag_sim.cpp",
    "src/certify/src/attachment.cpp",
    "src/certify/src/classify.cpp",
    "src/certify/src/lines.cpp",
    "src/certify/src/path_matching.cpp",
    "src/certify/src/tree_matching.cpp",
    "src/certify/src/path_certifier.cpp",
    "src/certify/src/tree_certifier.cpp",
    "src/search/src/beam.cpp",
]

HOT_PATH_BANNED = [
    (re.compile(r"std::deque\b"), "std::deque (use cvg::mem::RingQueue)"),
    (re.compile(r"std::list\s*<"), "std::list"),
    (re.compile(r"std::map\s*<"), "std::map"),
    (re.compile(r"std::set\s*<"), "std::set"),
    (re.compile(r"std::unordered_map\b"),
     "std::unordered_map (use cvg::mem::SlotMap or a dense index)"),
    (re.compile(r"std::unordered_set\b"),
     "std::unordered_set (use cvg::mem::SparseSet)"),
    (re.compile(r"\bmake_unique\b"), "make_unique"),
    (re.compile(r"\bmake_shared\b"), "make_shared"),
    # Raw new expressions; placement-new (`new (addr) T`) is the one form
    # that does not touch the heap and stays allowed.
    (re.compile(r"(?<![\w_])new\s+[A-Za-z_:]"), "raw new"),
]


def check_hot_paths_fixed_footprint() -> list[str]:
    """Rule 10: no allocation-churning vocabulary in hot-path files."""
    errors = []
    for rel in HOT_PATH_FILES:
        path = REPO / rel
        if not path.exists():
            errors.append(f"{rel}: listed in HOT_PATH_FILES but missing — "
                          "update check_invariants.py")
            continue
        for lineno, line in enumerate(strip_comments(path.read_text())
                                      .splitlines(), 1):
            for pattern, what in HOT_PATH_BANNED:
                if pattern.search(line):
                    errors.append(
                        f"{rel}:{lineno}: {what} on a fixed-footprint hot "
                        "path — use construction-sized workspaces, cvg::mem "
                        "containers or an arena (see docs/ANALYSIS.md)")
    return errors


def main() -> int:
    checks = [
        ("policy locality overrides", check_policy_locality_overrides),
        ("registry names tested", check_registry_names_tested),
        ("no raw assert", check_no_raw_assert),
        ("no std::cout in libraries", check_no_cout_in_library),
        ("deterministic seeds only", check_no_random_device),
        ("adversary names tested", check_adversary_names_tested),
        ("fuzz mutators tested", check_fuzz_mutators_tested),
        ("service job types tested", check_serve_job_kinds_tested),
        ("lane rule kinds pinned", check_lane_rule_kinds_tested),
        ("hot paths fixed-footprint", check_hot_paths_fixed_footprint),
    ]
    failures = []
    for label, check in checks:
        errors = check()
        for error in errors:
            print(f"check_invariants [{label}]: {error}", file=sys.stderr)
        failures.extend(errors)
    if failures:
        print(f"check_invariants: {len(failures)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"check_invariants: all {len(checks)} invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
