#!/usr/bin/env bash
# The static-analysis wall: clang-tidy over every library, bench, test and
# example translation unit (configuration in .clang-tidy, WarningsAsErrors
# '*'), plus the repo-specific invariant checks in check_invariants.py.
#
# clang-tidy needs a compilation database; CMAKE_EXPORT_COMPILE_COMMANDS is
# on globally, so any configured build directory provides one.  A dedicated
# build-lint/ directory keeps the developer's build/ untouched.
#
# The invariant checks always run (they need only python3).  The clang-tidy
# half is skipped — successfully — when clang-tidy is not installed, so the
# script stays usable in minimal containers; CI installs clang-tidy and gets
# the full wall.
#
# Usage: scripts/check_lint.sh [extra clang-tidy args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-lint"

python3 "${repo_root}/scripts/check_invariants.py"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "check_lint: clang-tidy not found; invariant checks passed," \
       "skipping the clang-tidy half" >&2
  exit 0
fi

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCVG_BUILD_BENCHMARKS=OFF >/dev/null

# Every checked-in translation unit: libraries and tests.  (Benches and
# examples are excluded from the lint build above to avoid requiring the
# google-benchmark dev package; their shared code lives in src/ anyway.)
mapfile -t sources < <(cd "${repo_root}" && ls src/*/src/*.cpp tests/*.cpp)

status=0
for source in "${sources[@]}"; do
  if ! clang-tidy -p "${build_dir}" --quiet "$@" "${repo_root}/${source}"; then
    status=1
    echo "check_lint: clang-tidy failed on ${source}" >&2
  fi
done

exit "${status}"
