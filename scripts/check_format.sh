#!/usr/bin/env bash
# Formatting gate: clang-format --dry-run -Werror over the audit/analysis
# surface introduced with the locality wall (configuration in .clang-format).
# Scoped to these files on purpose — the pre-existing tree predates the
# formatter config and is reflowed opportunistically, not wholesale.
#
# Skips — successfully — when clang-format is not installed, so the script
# stays usable in minimal containers; CI installs clang-format and enforces.
#
# Usage: scripts/check_format.sh [extra clang-format args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not found; skipping" >&2
  exit 0
fi

files=(
  src/core/include/cvg/core/read_audit.hpp
  src/core/src/read_audit.cpp
  src/audit/include/cvg/audit/locality_auditor.hpp
  src/audit/include/cvg/audit/blackbox.hpp
  src/audit/src/locality_auditor.cpp
  src/audit/src/blackbox.cpp
  tests/policy_locality_test.cpp
  tests/parallel_race_test.cpp
)

cd "${repo_root}"
clang-format --dry-run -Werror "$@" "${files[@]}"
echo "check_format: ${#files[@]} files clean"
