#!/usr/bin/env bash
# Builds the library and tier-1 tests with AddressSanitizer + UBSan and runs
# the full ctest suite under them.  Uses a dedicated build directory so the
# regular (uninstrumented) build/ stays untouched.
#
# Usage: scripts/check_sanitize.sh [extra ctest args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-asan"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCVG_SANITIZE=address,undefined \
  -DCVG_BUILD_BENCHMARKS=OFF \
  -DCVG_BUILD_EXAMPLES=OFF
cmake --build "${build_dir}" -j"$(nproc)"

# halt_on_error so UBSan findings fail the run instead of scrolling past;
# detect_leaks stays on (the default) to catch allocation regressions.
ASAN_OPTIONS="strict_string_checks=1:detect_stack_use_after_return=1" \
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
  ctest --test-dir "${build_dir}" --output-on-failure -j"$(nproc)" "$@"
