#!/usr/bin/env bash
# The race wall: builds the library and tests with ThreadSanitizer and runs
# the parallel-layer tests under it (the rest of the suite is single-threaded
# and covered by check_sanitize.sh / check_tier1.sh).  Uses a dedicated build
# directory so the regular build/ stays untouched.
#
# Usage: scripts/check_tsan.sh [extra ctest args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-tsan"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCVG_SANITIZE=tsan \
  -DCVG_BUILD_BENCHMARKS=OFF \
  -DCVG_BUILD_EXAMPLES=OFF
cmake --build "${build_dir}" -j"$(nproc)"

# halt_on_error so the first race fails the test instead of scrolling past.
# The regex matches gtest-discovered test names (ParallelFor.*, Sweep*,
# ParallelRaceTest.*), not binary names.
TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1" \
  ctest --test-dir "${build_dir}" --output-on-failure -j"$(nproc)" \
    -R 'Parallel|Sweep' "$@"
