#!/usr/bin/env bash
# Pins the signal-driven graceful-shutdown contract of `cvg serve` over the
# stdio transport: SIGTERM while a job is in flight must (1) let the job
# finish and deliver its response, (2) print the drain summary, and (3) exit
# with status 0.  The in-process shutdown op and the shutting_down rejection
# of late jobs are pinned separately by tests/serve_service_test.cpp; this
# script covers the part only a real process can: the signal handler, EINTR
# surfacing through the blocked read, and the exit status.
#
# Usage: scripts/serve_shutdown_test.sh <path-to-cvg>
set -euo pipefail

cvg="${1:?usage: serve_shutdown_test.sh <path-to-cvg>}"
workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

fifo="${workdir}/in"
out="${workdir}/out"
err="${workdir}/err"
mkfifo "${fifo}"

"${cvg}" serve --threads=2 < "${fifo}" > "${out}" 2> "${err}" &
pid=$!

# Hold the fifo's write end open so the service blocks in read (not EOF),
# submit one job, give it a moment to be picked up, then signal.
exec 3> "${fifo}"
printf '%s\n' \
  '{"op":"run","topology":"path:256","policy":"odd-even","steps":65536,"id":"drain-me"}' >&3
sleep 1
kill -TERM "${pid}"

status=0
wait "${pid}" || status=$?
exec 3>&-

if [ "${status}" -ne 0 ]; then
  echo "FAIL: cvg serve exited ${status} after SIGTERM (want 0)" >&2
  cat "${err}" >&2
  exit 1
fi
if ! grep -q '"id":"drain-me"' "${out}"; then
  echo "FAIL: in-flight job response was not delivered before exit" >&2
  cat "${out}" >&2
  exit 1
fi
if ! grep -q '"ok":true' "${out}"; then
  echo "FAIL: in-flight job did not complete successfully" >&2
  cat "${out}" >&2
  exit 1
fi
if ! grep -q 'drained' "${err}"; then
  echo "FAIL: drain summary missing from stderr" >&2
  cat "${err}" >&2
  exit 1
fi
echo "PASS: SIGTERM drained the in-flight job and exited 0"
