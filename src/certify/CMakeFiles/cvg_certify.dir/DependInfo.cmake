
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/certify/src/attachment.cpp" "src/certify/CMakeFiles/cvg_certify.dir/src/attachment.cpp.o" "gcc" "src/certify/CMakeFiles/cvg_certify.dir/src/attachment.cpp.o.d"
  "/root/repo/src/certify/src/classify.cpp" "src/certify/CMakeFiles/cvg_certify.dir/src/classify.cpp.o" "gcc" "src/certify/CMakeFiles/cvg_certify.dir/src/classify.cpp.o.d"
  "/root/repo/src/certify/src/lines.cpp" "src/certify/CMakeFiles/cvg_certify.dir/src/lines.cpp.o" "gcc" "src/certify/CMakeFiles/cvg_certify.dir/src/lines.cpp.o.d"
  "/root/repo/src/certify/src/path_certifier.cpp" "src/certify/CMakeFiles/cvg_certify.dir/src/path_certifier.cpp.o" "gcc" "src/certify/CMakeFiles/cvg_certify.dir/src/path_certifier.cpp.o.d"
  "/root/repo/src/certify/src/path_matching.cpp" "src/certify/CMakeFiles/cvg_certify.dir/src/path_matching.cpp.o" "gcc" "src/certify/CMakeFiles/cvg_certify.dir/src/path_matching.cpp.o.d"
  "/root/repo/src/certify/src/tree_certifier.cpp" "src/certify/CMakeFiles/cvg_certify.dir/src/tree_certifier.cpp.o" "gcc" "src/certify/CMakeFiles/cvg_certify.dir/src/tree_certifier.cpp.o.d"
  "/root/repo/src/certify/src/tree_matching.cpp" "src/certify/CMakeFiles/cvg_certify.dir/src/tree_matching.cpp.o" "gcc" "src/certify/CMakeFiles/cvg_certify.dir/src/tree_matching.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/sim/CMakeFiles/cvg_sim.dir/DependInfo.cmake"
  "/root/repo/src/policy/CMakeFiles/cvg_policy.dir/DependInfo.cmake"
  "/root/repo/src/topology/CMakeFiles/cvg_topology.dir/DependInfo.cmake"
  "/root/repo/src/util/CMakeFiles/cvg_util.dir/DependInfo.cmake"
  "/root/repo/src/audit/CMakeFiles/cvg_audit.dir/DependInfo.cmake"
  "/root/repo/src/core/CMakeFiles/cvg_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
