file(REMOVE_RECURSE
  "libcvg_certify.a"
)
