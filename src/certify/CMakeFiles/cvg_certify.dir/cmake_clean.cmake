file(REMOVE_RECURSE
  "CMakeFiles/cvg_certify.dir/src/attachment.cpp.o"
  "CMakeFiles/cvg_certify.dir/src/attachment.cpp.o.d"
  "CMakeFiles/cvg_certify.dir/src/classify.cpp.o"
  "CMakeFiles/cvg_certify.dir/src/classify.cpp.o.d"
  "CMakeFiles/cvg_certify.dir/src/lines.cpp.o"
  "CMakeFiles/cvg_certify.dir/src/lines.cpp.o.d"
  "CMakeFiles/cvg_certify.dir/src/path_certifier.cpp.o"
  "CMakeFiles/cvg_certify.dir/src/path_certifier.cpp.o.d"
  "CMakeFiles/cvg_certify.dir/src/path_matching.cpp.o"
  "CMakeFiles/cvg_certify.dir/src/path_matching.cpp.o.d"
  "CMakeFiles/cvg_certify.dir/src/tree_certifier.cpp.o"
  "CMakeFiles/cvg_certify.dir/src/tree_certifier.cpp.o.d"
  "CMakeFiles/cvg_certify.dir/src/tree_matching.cpp.o"
  "CMakeFiles/cvg_certify.dir/src/tree_matching.cpp.o.d"
  "libcvg_certify.a"
  "libcvg_certify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvg_certify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
