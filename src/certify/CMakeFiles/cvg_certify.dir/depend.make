# Empty dependencies file for cvg_certify.
# This may be replaced when dependencies are built.
