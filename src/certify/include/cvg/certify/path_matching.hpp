#pragma once

/// \file path_matching.hpp
/// Balanced matchings on directed paths (Definition 4.2, Algorithm 2).
///
/// After every step, the non-steady nodes are paired left-to-right (left =
/// away from the sink): every up node charges a neighbouring down node —
/// intuitively the down node "gave" its packet to the up node.  A 2up node
/// participates as two consecutive up nodes (a *down-2up-down* triple
/// becomes a down-up pair followed by an up-down pair).  At most one node
/// stays unmatched: the rightmost down node or the leading-zero (Claim 1).
///
/// `build_path_matching` both constructs the matching and *certifies* the
/// paper's structural claims about it (Claim 1, Lemma 4.3, Lemma 4.4),
/// aborting if the simulated execution ever contradicts them.

#include <vector>

#include "cvg/certify/classify.hpp"

namespace cvg::certify {

/// One matching pair.  `down`/`up` are node ids; on a path, ids grow away
/// from the sink, so `down > up` means the pair is a *down-up interval*
/// (down node behind) and `down < up` an *up-down interval*.
struct PathMatchPair {
  NodeId down = kNoNode;
  NodeId up = kNoNode;

  [[nodiscard]] bool is_down_up() const noexcept { return down > up; }
};

/// A balanced matching for one step on a path.
struct PathMatching {
  /// Pairs in left-to-right creation order.  A 2up node appears as the `up`
  /// member of two consecutive pairs (first a down-up, then an up-down).
  std::vector<PathMatchPair> pairs;

  /// The unmatched non-steady node, if any (rightmost down or leading-zero).
  NodeId unmatched = kNoNode;
};

/// Reusable staging buffers for `build_path_matching`: the left-to-right
/// non-steady sequence.  Owned by the caller (the certifier keeps one per
/// instance) so the per-step rebuild reuses capacity instead of allocating.
struct PathMatchingWorkspace {
  struct Entry {
    NodeId node;
    bool is_up;  ///< up-typed (up or one of the 2up copies) vs down-typed
  };
  std::vector<Entry> order;
};

/// Runs Algorithm 2 for the step `before` → `after` on a directed path and
/// verifies Claim 1 and the height conditions of Lemma 4.4.
[[nodiscard]] PathMatching build_path_matching(const Tree& tree,
                                               const Configuration& before,
                                               const Configuration& after,
                                               const StepClassification& cls);

/// In-place variant: rebuilds the matching into `out` through `ws`,
/// reusing both buffers' capacity (the certifier's per-step hot path).
void build_path_matching(const Tree& tree, const Configuration& before,
                         const Configuration& after,
                         const StepClassification& cls,
                         PathMatchingWorkspace& ws, PathMatching& out);

}  // namespace cvg::certify
