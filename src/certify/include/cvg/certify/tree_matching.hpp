#pragma once

/// \file tree_matching.hpp
/// Balanced matchings on trees (Algorithm 6): per-line path matchings plus
/// the crossover cascade.  When the injected line is blocked at an
/// intersection, its surplus up node is paired with a down node borrowed
/// from the intersection's priority line; the priority line's pairs in front
/// of the borrowed node re-pair as up-down intervals, possibly exposing a
/// new surplus up one line closer to the sink — the cascade runs until it
/// reaches the drain (Figure 3).

#include <vector>

#include "cvg/certify/classify.hpp"
#include "cvg/certify/lines.hpp"

namespace cvg::certify {

/// One matching pair on a tree.
struct TreeMatchPair {
  NodeId down = kNoNode;
  NodeId up = kNoNode;
  bool crossover = false;  ///< endpoints on different lines (has a tip)
};

/// Balanced matching for one step on a tree, in a valid processing order
/// (a 2up node's first pair precedes its second; crossovers come last).
struct TreeMatching {
  std::vector<TreeMatchPair> pairs;
  std::vector<NodeId> unmatched_downs;  ///< processed as top-packet drops
  std::vector<NodeId> unmatched_ups;    ///< height-0 frontier rises
};

/// Reusable staging buffers for `build_tree_matching`: per-line entry
/// sequences, the crossover list, and the Lemma 5.3 path-walk scratch.
/// Owned by the caller (the certifier keeps one per instance); every vector
/// is cleared, never shrunk, so per-step rebuilds stop allocating once the
/// buffers reach their high-water marks.
struct TreeMatchingWorkspace {
  struct Entry {
    NodeId node = kNoNode;
    bool is_up = false;
    bool taken = false;  ///< stolen by a crossover (downs) or exported (ups)
  };
  std::vector<std::vector<Entry>> entries;  ///< per line, leaf to head
  std::vector<TreeMatchPair> crossovers;
  std::vector<char> on_up;         ///< Lemma 5.3 ancestor marks (n-sized)
  std::vector<NodeId> down_chain;  ///< Lemma 5.3: x_d .. child-of-LCA
  std::vector<NodeId> up_chain;    ///< Lemma 5.3: x_u .. child-of-LCA
};

/// Runs per-line Algorithm 2 plus the Algorithm 6 crossover cascade and
/// verifies the §5 structural claims (Lemma 5.1/5.2 analogues) along the way.
[[nodiscard]] TreeMatching build_tree_matching(const Tree& tree,
                                               const Configuration& before,
                                               const Configuration& after,
                                               const StepClassification& cls,
                                               const LinesDecomposition& lines);

/// In-place variant: rebuilds the matching into `out` through `ws`,
/// reusing both buffers' capacity (the certifier's per-step hot path).
void build_tree_matching(const Tree& tree, const Configuration& before,
                         const Configuration& after,
                         const StepClassification& cls,
                         const LinesDecomposition& lines,
                         TreeMatchingWorkspace& ws, TreeMatching& out);

}  // namespace cvg::certify
