#pragma once

/// \file attachment.hpp
/// The attachment scheme of §4.2–4.3 (Definitions 4.5 and 4.8), maintained
/// executably.
///
/// For a node x of height h, every packet x[i] with 3 ≤ i ≤ h carries
/// *slots* x[i,1] … x[i,i−2].  An attachment scheme assigns to every slot
/// x[i,j] a distinct *residue* node y with h(y) = j.  Because residues are
/// distinct and a height-h node transitively pins down 2^(h−2) − 1 of them
/// (Lemma 4.6), a full scheme certifies max height ≤ log₂ n + 3 (Lemma 4.7).
///
/// `process_pair` is Algorithm 4 verbatim: it advances the scheme across one
/// matching pair (x_d down, x_u up) while preserving fullness and Rules 1–5
/// (paths) / Rules 6–7 (trees, where only even-height residues are tracked —
/// §5's "we limit Rule 2 to residues of even value", giving the
/// 2·log₂ n + O(1) bound instead).
///
/// Every CVG_CHECK in this file is a lemma of the paper turned into a
/// machine-checked assertion; a firing check means the simulation diverged
/// from the proof's model (i.e. a bug — in the library or in the paper).

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cvg/core/config.hpp"
#include "cvg/core/types.hpp"
#include "cvg/mem/slot_map.hpp"
#include "cvg/topology/tree.hpp"

namespace cvg::certify {

/// Identifies slot x[i,j].
struct Slot {
  NodeId x = kNoNode;
  Height i = 0;
  Height j = 0;

  friend bool operator==(const Slot&, const Slot&) = default;
};

/// Which residues are tracked: all (path analysis, §4) or only even-height
/// ones (tree analysis, §5).
enum class ResidueMode : std::uint8_t { All, EvenOnly };

/// The mutable attachment-scheme state plus the Algorithm 4 transition.
class AttachmentScheme {
 public:
  AttachmentScheme(std::size_t node_count, ResidueMode mode);

  /// True iff slots with this j-level are tracked under the residue mode.
  [[nodiscard]] bool tracked(Height j) const noexcept {
    return mode_ == ResidueMode::All || j % 2 == 0;
  }

  /// The residue occupying slot (x, i, j), or kNoNode.
  [[nodiscard]] NodeId occupant(NodeId x, Height i, Height j) const;

  /// The slot node y is attached to, if y is currently a residue.
  [[nodiscard]] std::optional<Slot> guardian_of(NodeId y) const;

  /// True iff y is currently a (tracked) residue.
  [[nodiscard]] bool is_residue(NodeId y) const {
    return !guardian_[y].is_null();
  }

  /// Algorithm 4: processes matching pair (x_d, x_u) against the working
  /// heights `heights` (the intermediate configuration C_P), updating both
  /// the attachments and the two nodes' entries in `heights`.
  void process_pair(NodeId x_d, NodeId x_u, std::span<Height> heights);

  /// Handles the unmatched rightmost down node (Theorem 4.13's closing
  /// argument): drops its top packet, releasing that packet's residues.
  void process_unmatched_down(NodeId x, std::span<Height> heights);

  /// Handles an unmatched up node (the leading-zero, or the second copy of
  /// a 0 → 2 "2up" at the empty frontier): its height rises by one without
  /// creating slots.  Checks it was not a residue and stays below the
  /// slot-bearing heights.
  void process_unmatched_up(NodeId x, std::span<Height> heights);

  /// Verifies Rules 1–2 plus fullness against `config`, and — given the
  /// topology — the positional Rules 3–5 (path mode) or 6–7 (tree mode),
  /// and the Lemma 4.6/4.7 residue-count height bound.  Aborts on violation.
  void validate(const Tree& tree, const Configuration& config) const;

  /// The height cap this scheme certifies for `node_count` nodes: the
  /// largest m whose residue requirement fits (Lemma 4.7 and its §5 twin).
  [[nodiscard]] Height certified_height_bound(std::size_t node_count) const;

  /// Number of residues a single node of height `p` transitively pins down
  /// (the r(p) recurrence from Lemma 4.6; mode-dependent).
  [[nodiscard]] std::uint64_t residue_requirement(Height p) const;

  /// Number of current attachments.
  [[nodiscard]] std::size_t attachment_count() const noexcept {
    return attachments_.size();
  }

  /// Human-readable dump of all attachments around node x (Figure 1 style).
  [[nodiscard]] std::string dump_node(NodeId x, const Configuration& config) const;

  /// Low-level building blocks: attach residue y to slot (x, i, j) / clear a
  /// slot.  The certifiers drive these through `process_pair`; they are
  /// public so scenario tests (e.g. the Figure 2 panels) can stage exact
  /// mid-execution states.  Both enforce Rules 1–2 structurally.
  void attach(NodeId x, Height i, Height j, NodeId y);
  void detach_slot(NodeId x, Height i, Height j);

 private:
  /// One live attachment: residue `residue` occupies slot `slot`.  Owned by
  /// the generational slot map, so every cross-reference to it is a
  /// `mem::SlotHandle` — a recycled attachment can never serve a stale
  /// reference (access through an old handle trips CVG_CHECK).
  struct Attachment {
    Slot slot;
    NodeId residue = kNoNode;
  };

  /// Handle for the attachment occupying slot (x, i, j), or null.  Linear
  /// scan over x's attachment list: a node of height h carries O(h²) slots
  /// and h is certified ≤ O(log n), so the list stays small; the scan is
  /// hash-free and the list's capacity is retained across churn
  /// (fixed-footprint hot path).
  [[nodiscard]] mem::SlotHandle find_slot(NodeId x, Height i, Height j) const;

  std::size_t node_count_;
  ResidueMode mode_;
  /// All live attachments; the single owner.
  mem::SlotMap<Attachment> attachments_;
  /// Per guardian node x: handles of the attachments whose slot lives on x
  /// (the occupant index).  Swap-removed on detach, capacity retained.
  std::vector<std::vector<mem::SlotHandle>> slots_of_;
  /// Per node y: handle of the attachment in which y is the residue, or
  /// null (the guardian index — Rule 2's injectivity makes it single-valued).
  std::vector<mem::SlotHandle> guardian_;
  /// `process_pair` scratch (top-packet occupants); sized per call with
  /// retained capacity.
  std::vector<NodeId> top_scratch_;
};

}  // namespace cvg::certify
