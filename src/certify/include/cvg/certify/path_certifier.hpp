#pragma once

/// \file path_certifier.hpp
/// End-to-end executable certification of Theorem 4.13: attach one of these
/// to an Odd-Even run on a directed path and it maintains a balanced
/// matching (Algorithm 2) and a valid full attachment scheme (Algorithms
/// 3–4) across every step, checking every lemma-level invariant along the
/// way.  While the certifier stays silent, the run provably satisfies
/// max height ≤ log₂ n + 3.

#include "cvg/certify/attachment.hpp"
#include "cvg/certify/classify.hpp"
#include "cvg/certify/path_matching.hpp"
#include "cvg/core/step.hpp"
#include "cvg/mem/arena.hpp"
#include "cvg/sim/simulator.hpp"

namespace cvg::certify {

/// Step-by-step certifier for Odd-Even on paths (capacity must be 1).
class PathCertifier {
 public:
  /// `validate_every` = how often (in steps) to run the full O(n·m²) scheme
  /// validation; the per-pair lemma checks always run.  0 disables periodic
  /// validation (it still runs on `final_validate`).
  explicit PathCertifier(const Tree& tree, Step validate_every = 1);

  /// Feeds one completed step.  `after` is the post-step configuration and
  /// `record` the step's injections/sends.  Aborts if any certified
  /// invariant fails.
  void observe(const Configuration& after, const StepRecord& record);

  /// Adapter matching `cvg::StepObserver`.
  void operator()(const Simulator& sim, const StepRecord& record) {
    observe(sim.config(), record);
  }

  /// Runs the full validation against the last observed configuration.
  void final_validate() const;

  /// The height bound this scheme size certifies (log₂ n + 3 flavour).
  [[nodiscard]] Height certified_bound() const {
    return scheme_.certified_height_bound(tree_->node_count());
  }

  [[nodiscard]] const AttachmentScheme& scheme() const noexcept {
    return scheme_;
  }
  [[nodiscard]] const Configuration& current() const noexcept { return prev_; }
  [[nodiscard]] Step steps_observed() const noexcept { return steps_; }

 private:
  const Tree* tree_;
  AttachmentScheme scheme_;
  Configuration prev_;  // last certified configuration
  Step validate_every_;
  Step steps_ = 0;
  /// Per-observe state, reused across steps so the certifier's hot path
  /// stops allocating once every buffer reaches its high-water mark
  /// (fixed-footprint discipline; see docs/ANALYSIS.md).
  StepClassification cls_;
  PathMatchingWorkspace match_ws_;
  PathMatching matching_;
  /// Step-scoped scratch (the work-height array and the reordered pair
  /// list): `reset()` at the top of every `observe`, chunks retained.
  mem::Arena arena_;
};

}  // namespace cvg::certify
