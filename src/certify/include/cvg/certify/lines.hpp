#pragma once

/// \file lines.hpp
/// The §5 *lines decomposition*: for one round, every intersection (node of
/// in-degree ≥ 2) designates one incoming branch as its *priority line* —
/// the branch its incoming packet came from, else the branch holding the
/// injected node, else an arbitrary (deterministic) one.  Following priority
/// children from every node partitions the tree's non-sink nodes into
/// vertex-disjoint *lines*: paths starting at a leaf and ending at a
/// *blocked* node (a non-priority child), with exactly one line — the
/// *drain* — reaching the sink.

#include <vector>

#include "cvg/certify/classify.hpp"
#include "cvg/core/step.hpp"
#include "cvg/topology/tree.hpp"

namespace cvg::certify {

/// One line of the decomposition.
struct Line {
  /// Nodes from the deep end (a leaf, index 0) to the head (last element);
  /// the head's parent is the intersection at which the line is blocked, or
  /// the sink for the drain and for lines blocked at the sink itself.
  std::vector<NodeId> nodes;
};

/// The complete decomposition for one round.
struct LinesDecomposition {
  std::vector<Line> lines;
  std::vector<std::uint32_t> line_of;      ///< node → line index (sink: npos)
  std::vector<std::uint32_t> pos_in_line;  ///< node → index within its line
  std::vector<NodeId> priority_child;      ///< per node; kNoNode for leaves
  std::uint32_t drain = npos;              ///< index of the drain line
  std::uint32_t injected_line = npos;      ///< line holding the injected node

  static constexpr std::uint32_t npos = 0xffffffff;

  /// Builder scratch (marks of the injected node's sink path); not part of
  /// the decomposition proper.  Lives here so the in-place builder reuses
  /// its capacity across rounds.
  std::vector<char> injected_path_scratch;
};

/// Builds the decomposition for the round described by `record` (with
/// pre-step heights `before`).  Checks the §5 structural guarantee that at
/// most one packet entered each intersection.
[[nodiscard]] LinesDecomposition build_lines(const Tree& tree,
                                             const Configuration& before,
                                             const StepRecord& record);

/// In-place variant: rebuilds the decomposition into `out`, reusing the
/// per-line node vectors.  The number of lines is a topological invariant
/// (heads = non-priority children plus the sink's children regardless of
/// which child wins priority), so after the first round on a tree the
/// rebuild allocates only while some line grows past its high-water mark.
void build_lines(const Tree& tree, const Configuration& before,
                 const StepRecord& record, LinesDecomposition& out);

}  // namespace cvg::certify
