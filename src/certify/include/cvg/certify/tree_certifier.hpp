#pragma once

/// \file tree_certifier.hpp
/// Executable certification of Theorem 5.11: attach to an Algorithm-Tree
/// (`TreeOddEvenPolicy`) run on any directed in-tree and it maintains the
/// lines decomposition, the tree balanced matching with crossovers
/// (Algorithm 6) and the even-residue attachment scheme (§5) across every
/// step.  While the certifier stays silent, the run provably satisfies
/// max height ≤ 2·log₂ n + O(1).

#include "cvg/certify/attachment.hpp"
#include "cvg/certify/classify.hpp"
#include "cvg/certify/lines.hpp"
#include "cvg/certify/tree_matching.hpp"
#include "cvg/mem/arena.hpp"
#include "cvg/sim/simulator.hpp"

namespace cvg::certify {

/// Step-by-step certifier for Algorithm Tree (capacity must be 1).
class TreeCertifier {
 public:
  explicit TreeCertifier(const Tree& tree, Step validate_every = 1);

  /// Feeds one completed step; aborts if a certified invariant fails.
  void observe(const Configuration& after, const StepRecord& record);

  /// Adapter matching `cvg::StepObserver`.
  void operator()(const Simulator& sim, const StepRecord& record) {
    observe(sim.config(), record);
  }

  /// Runs the full validation against the last observed configuration.
  void final_validate() const;

  /// Height bound certified by the even-residue counting (2·log₂ n flavour).
  [[nodiscard]] Height certified_bound() const {
    return scheme_.certified_height_bound(tree_->node_count());
  }

  [[nodiscard]] const AttachmentScheme& scheme() const noexcept {
    return scheme_;
  }
  [[nodiscard]] Step steps_observed() const noexcept { return steps_; }

 private:
  const Tree* tree_;
  AttachmentScheme scheme_;
  Configuration prev_;
  Step validate_every_;
  Step steps_ = 0;
  /// Per-observe state, reused across steps so the certifier's hot path
  /// stops allocating once every buffer reaches its high-water mark
  /// (fixed-footprint discipline; see docs/ANALYSIS.md).
  StepClassification cls_;
  LinesDecomposition lines_;
  TreeMatchingWorkspace match_ws_;
  TreeMatching matching_;
  /// Step-scoped scratch (the work-height array and the reordered pair
  /// list): `reset()` at the top of every `observe`, chunks retained.
  mem::Arena arena_;
};

}  // namespace cvg::certify
