#pragma once

/// \file classify.hpp
/// Per-step node classification (paper §4): relative to one step C → C',
/// a node is *down* if its height dropped (always by exactly 1 when c = 1),
/// *up* if it rose by 1, *2up* if it rose by 2 (received from its
/// predecessor and from the adversary without sending), and *steady*
/// otherwise.  The *leading-zero* node is the special up node that went from
/// 0 to 1 while every node in front of it is empty.

#include <vector>

#include "cvg/core/config.hpp"
#include "cvg/core/step.hpp"
#include "cvg/core/types.hpp"
#include "cvg/topology/tree.hpp"

namespace cvg::certify {

enum class NodeClass : std::uint8_t { Steady, Down, Up, TwoUp };

[[nodiscard]] constexpr const char* to_string(NodeClass c) noexcept {
  switch (c) {
    case NodeClass::Steady: return "steady";
    case NodeClass::Down: return "down";
    case NodeClass::Up: return "up";
    case NodeClass::TwoUp: return "2up";
  }
  return "?";
}

/// Classification of every node for one step.
struct StepClassification {
  std::vector<NodeClass> classes;  ///< indexed by node id
  NodeId injected = kNoNode;       ///< the injected node t, if any
  NodeId leading_zero = kNoNode;   ///< the leading-zero node, if any
  NodeId two_up = kNoNode;         ///< the 2up node, if any

  [[nodiscard]] NodeClass of(NodeId v) const noexcept { return classes[v]; }
  [[nodiscard]] bool is_non_steady(NodeId v) const noexcept {
    return classes[v] != NodeClass::Steady;
  }
};

/// Classifies all nodes for the step that transformed `before` into `after`
/// with the given record.  Requires capacity c = 1 (the setting of the
/// paper's upper bounds: heights change by at most ±1, plus one possible
/// injection).  Validates the basic §4 structure along the way: down nodes
/// drop by exactly 1, at most one 2up node exists and it is the injected
/// node, and height deltas are consistent with sends/receives.
[[nodiscard]] StepClassification classify_step(const Tree& tree,
                                               const Configuration& before,
                                               const Configuration& after,
                                               const StepRecord& record);

/// In-place variant: rebuilds the classification into `out`, reusing its
/// storage.  Allocation-free once `out.classes` has reached node_count
/// capacity — the certifiers call this every step (fixed-footprint hot
/// path).
void classify_step(const Tree& tree, const Configuration& before,
                   const Configuration& after, const StepRecord& record,
                   StepClassification& out);

}  // namespace cvg::certify
