#include "cvg/certify/path_matching.hpp"

#include "cvg/util/check.hpp"

namespace cvg::certify {

namespace {

/// Checks the Lemma 4.4 interior-monotonicity conditions for a pair on a
/// path (heights taken from the start-of-step configuration `before`).
void check_pair_interior(const Configuration& before, const PathMatchPair& pair,
                         NodeId two_up) {
  // Skip pairs touching the 2up node: their effective heights are staged
  // (the certifier handles them with work heights).
  if (pair.up == two_up) return;

  if (pair.is_down_up()) {
    // Nodes z between x_d and x_u (z != x_u): h(z) >= h(s(z)).
    for (NodeId z = pair.down; z > pair.up; --z) {
      CVG_CHECK(before.height(z) >= before.height(z - 1))
          << "Lemma 4.4 (down-up interior) violated between " << pair.down
          << " and " << pair.up << " at node " << z;
    }
  } else {
    // Up-down interval: nodes z between x_u and x_d (z != x_d) satisfy
    // h(z) <= h(s(z)).
    for (NodeId z = pair.up; z > pair.down; --z) {
      CVG_CHECK(before.height(z) <= before.height(z - 1))
          << "Lemma 4.4 (up-down interior) violated between " << pair.up
          << " and " << pair.down << " at node " << z;
    }
  }
}

}  // namespace

PathMatching build_path_matching(const Tree& tree, const Configuration& before,
                                 const Configuration& after,
                                 const StepClassification& cls) {
  PathMatchingWorkspace ws;
  PathMatching out;
  build_path_matching(tree, before, after, cls, ws, out);
  return out;
}

void build_path_matching(const Tree& tree, const Configuration& before,
                         const Configuration& after,
                         const StepClassification& cls,
                         PathMatchingWorkspace& ws, PathMatching& out) {
  CVG_CHECK(tree.is_path()) << "path matching requires a path topology";
  const std::size_t n = tree.node_count();

  // X: non-steady nodes left to right (= descending id), the 2up node twice.
  using Entry = PathMatchingWorkspace::Entry;
  std::vector<Entry>& order = ws.order;
  order.clear();
  for (NodeId v = static_cast<NodeId>(n - 1); v >= 1; --v) {
    switch (cls.of(v)) {
      case NodeClass::Steady:
        break;
      case NodeClass::Down:
        order.push_back({v, false});
        break;
      case NodeClass::Up:
        order.push_back({v, true});
        break;
      case NodeClass::TwoUp:
        order.push_back({v, true});
        order.push_back({v, true});
        break;
    }
  }

  PathMatching& matching = out;
  matching.pairs.clear();
  matching.unmatched = kNoNode;
  std::size_t i = 0;
  for (; i + 1 < order.size(); i += 2) {
    const Entry& a = order[i];
    const Entry& b = order[i + 1];
    CVG_CHECK(a.is_up != b.is_up)
        << "Claim 1 violated: consecutive same-type nodes " << a.node << " ("
        << (a.is_up ? "up" : "down") << ") and " << b.node
        << " — three consecutive ups/downs exist";
    PathMatchPair pair;
    pair.down = a.is_up ? b.node : a.node;
    pair.up = a.is_up ? a.node : b.node;
    matching.pairs.push_back(pair);
    check_pair_interior(before, pair, cls.two_up);
  }

  if (i < order.size()) {
    const Entry& last = order[i];
    matching.unmatched = last.node;
    // Claim 1: the unmatched node is the rightmost down node or the
    // leading-zero.  One extra case the claim's proof glosses over: an
    // injection into a height-0 node that also receives from its predecessor
    // (a 0 → 2 "2up") at the empty frontier leaves its second up copy
    // unmatched.  Like the leading-zero it had height 0, so it owns no slots
    // and cannot be a residue — the scheme handles it identically.
    CVG_CHECK(!last.is_up || last.node == cls.leading_zero ||
              before.height(last.node) == 0)
        << "Claim 1 violated: unmatched up node " << last.node
        << " has pre-step height " << before.height(last.node)
        << " and is not the leading-zero";
    if (!last.is_up) {
      // The unmatched down node must be the rightmost non-steady node, which
      // it is by construction (last in left-to-right order).
      CVG_CHECK(after.height(last.node) == before.height(last.node) - 1);
    }
  }
}

}  // namespace cvg::certify
