#include "cvg/certify/lines.hpp"

#include <algorithm>

#include "cvg/util/check.hpp"

namespace cvg::certify {

LinesDecomposition build_lines(const Tree& tree, const Configuration& before,
                               const StepRecord& record) {
  LinesDecomposition out;
  build_lines(tree, before, record, out);
  return out;
}

void build_lines(const Tree& tree, const Configuration& before,
                 const StepRecord& record, LinesDecomposition& out) {
  const std::size_t n = tree.node_count();
  CVG_CHECK(record.injections.size() <= 1) << "lines require capacity c = 1";
  const NodeId injected =
      record.injections.empty() ? kNoNode : record.injections[0];

  // Mark the injected node's path to the sink so rule 2 (priority = branch
  // holding the injection) is O(1) per intersection.
  std::vector<char>& on_injected_path = out.injected_path_scratch;
  on_injected_path.assign(n, 0);
  if (injected != kNoNode) {
    for (NodeId w = injected; w != kNoNode; w = tree.parent(w)) {
      on_injected_path[w] = 1;
    }
  }

  out.drain = LinesDecomposition::npos;
  out.injected_line = LinesDecomposition::npos;
  out.priority_child.assign(n, kNoNode);
  for (NodeId v = 0; v < n; ++v) {
    const auto children = tree.children(v);
    if (children.empty()) continue;

    // Rule 1: the child that actually sent into v this round.
    NodeId sender = kNoNode;
    for (const NodeId c : children) {
      if (record.sent_by(c) > 0) {
        CVG_CHECK(sender == kNoNode)
            << "two packets entered intersection " << v << " (from " << sender
            << " and " << c << ") — sibling arbitration violated";
        sender = c;
      }
    }
    if (sender != kNoNode) {
      out.priority_child[v] = sender;
      continue;
    }
    // Rule 2: the branch holding the injected node.
    NodeId injected_branch = kNoNode;
    for (const NodeId c : children) {
      if (on_injected_path[c]) {
        injected_branch = c;
        break;
      }
    }
    if (injected_branch != kNoNode) {
      out.priority_child[v] = injected_branch;
      continue;
    }
    // Rule 3: arbitrary but deterministic — the tallest child, ties to the
    // smallest id (children are id-sorted; strict > keeps the first maximum).
    NodeId best = children.front();
    for (const NodeId c : children) {
      if (before.height(c) > before.height(best)) best = c;
    }
    out.priority_child[v] = best;
  }

  // Heads: nodes that are not the priority child of their parent, plus the
  // sink's priority child (the drain's head).  Each head starts a line
  // running backwards through priority children; stored leaf-first.
  out.line_of.assign(n, LinesDecomposition::npos);
  out.pos_in_line.assign(n, LinesDecomposition::npos);
  std::size_t line_count = 0;
  for (NodeId head = 1; head < n; ++head) {
    const NodeId parent = tree.parent(head);
    // Every child of the sink heads a line (the priority one is the drain);
    // elsewhere, only non-priority children do — priority children are
    // interior to their parent's line.
    const bool is_head =
        parent == Tree::sink() || out.priority_child[parent] != head;
    if (!is_head) continue;

    if (line_count == out.lines.size()) out.lines.emplace_back();
    Line& line = out.lines[line_count];
    line.nodes.clear();
    NodeId cur = head;
    while (cur != kNoNode) {
      line.nodes.push_back(cur);
      cur = out.priority_child[cur];
    }
    std::reverse(line.nodes.begin(), line.nodes.end());
    const auto index = static_cast<std::uint32_t>(line_count);
    for (std::size_t pos = 0; pos < line.nodes.size(); ++pos) {
      out.line_of[line.nodes[pos]] = index;
      out.pos_in_line[line.nodes[pos]] = static_cast<std::uint32_t>(pos);
    }
    if (parent == Tree::sink() && out.priority_child[Tree::sink()] == head) {
      out.drain = index;
    }
    ++line_count;
  }
  out.lines.resize(line_count);

  // Every non-sink node landed in exactly one line.
  for (NodeId v = 1; v < n; ++v) {
    CVG_CHECK(out.line_of[v] != LinesDecomposition::npos)
        << "node " << v << " not covered by the lines decomposition";
  }
  CVG_CHECK(n == 1 || out.drain != LinesDecomposition::npos);

  if (injected != kNoNode && injected != Tree::sink()) {
    out.injected_line = out.line_of[injected];
  }
}

}  // namespace cvg::certify
