#include "cvg/certify/classify.hpp"

#include "cvg/util/check.hpp"

namespace cvg::certify {

StepClassification classify_step(const Tree& tree, const Configuration& before,
                                 const Configuration& after,
                                 const StepRecord& record) {
  StepClassification out;
  classify_step(tree, before, after, record, out);
  return out;
}

void classify_step(const Tree& tree, const Configuration& before,
                   const Configuration& after, const StepRecord& record,
                   StepClassification& out) {
  const std::size_t n = tree.node_count();
  CVG_CHECK(before.node_count() == n && after.node_count() == n);
  CVG_CHECK(record.injections.size() <= 1)
      << "classification requires capacity c = 1";

  out.classes.assign(n, NodeClass::Steady);
  out.injected = kNoNode;
  out.leading_zero = kNoNode;
  out.two_up = kNoNode;
  if (!record.injections.empty()) out.injected = record.injections[0];

  for (NodeId v = 1; v < n; ++v) {
    const Height delta = after.height(v) - before.height(v);
    switch (delta) {
      case 0:
        out.classes[v] = NodeClass::Steady;
        break;
      case -1:
        out.classes[v] = NodeClass::Down;
        CVG_CHECK(record.sent_by(v) == 1)
            << "node " << v << " dropped without sending";
        break;
      case 1:
        out.classes[v] = NodeClass::Up;
        break;
      case 2:
        out.classes[v] = NodeClass::TwoUp;
        CVG_CHECK(out.two_up == kNoNode) << "two 2up nodes in one step";
        CVG_CHECK(v == out.injected)
            << "2up node " << v << " is not the injected node";
        CVG_CHECK(record.sent_by(v) == 0) << "2up node " << v << " sent";
        out.two_up = v;
        break;
      default:
        CVG_CHECK(false) << "node " << v << " changed height by " << delta
                         << " in one step (c = 1)";
    }
  }

  // Leading-zero detection: an up node that went 0 → 1 with all nodes in
  // front of it (on its path to the sink, exclusive) empty after the step.
  for (NodeId v = 1; v < n; ++v) {
    if (out.classes[v] != NodeClass::Up) continue;
    if (before.height(v) != 0 || after.height(v) != 1) continue;
    bool all_zero_in_front = true;
    for (NodeId w = tree.parent(v); w != kNoNode; w = tree.parent(w)) {
      if (after.height(w) != 0) {
        all_zero_in_front = false;
        break;
      }
    }
    if (all_zero_in_front) {
      // On a path there is at most one such node; on a tree, several branches
      // could each have a candidate, but only the one on the drain can be a
      // genuine leading-zero.  Prefer the one closest to the sink.
      if (out.leading_zero == kNoNode ||
          tree.depth(v) < tree.depth(out.leading_zero)) {
        out.leading_zero = v;
      }
    }
  }
}

}  // namespace cvg::certify
