#include "cvg/certify/path_certifier.hpp"

#include <algorithm>
#include <span>

#include "cvg/util/check.hpp"

namespace cvg::certify {

PathCertifier::PathCertifier(const Tree& tree, Step validate_every)
    : tree_(&tree),
      scheme_(tree.node_count(), ResidueMode::All),
      prev_(tree.node_count()),
      validate_every_(validate_every) {
  CVG_CHECK(tree.is_path()) << "PathCertifier requires a directed path";
}

void PathCertifier::observe(const Configuration& after,
                            const StepRecord& record) {
  classify_step(*tree_, prev_, after, record, cls_);
  const StepClassification& cls = cls_;
  build_path_matching(*tree_, prev_, after, cls, match_ws_, matching_);
  const PathMatching& matching = matching_;
  arena_.reset();

  // Work heights = the intermediate configuration C_P, advanced pair by pair
  // (Algorithm 3).  Disjoint pairs commute; only the 2up node's two pairs
  // are order-sensitive, and the order is parity-dependent: for an
  // odd-height 2up the charging down node behind it (a) may equal its
  // height while the one in front (b) must exceed it, so the down-up pair
  // goes first; for an even-height 2up it is the reverse.  (The two bad
  // cases are mutually exclusive — a == h needs h odd, b == h needs h even —
  // which is why a correct order always exists.  Found by replaying the
  // exhaustive search's optimal schedules; see integration_test.cpp.)
  const std::span<PathMatchPair> ordered =
      arena_.make_array<PathMatchPair>(matching.pairs.size());
  std::copy(matching.pairs.begin(), matching.pairs.end(), ordered.begin());
  if (cls.two_up != kNoNode && prev_.height(cls.two_up) % 2 == 0) {
    for (std::size_t i = 0; i + 1 < ordered.size(); ++i) {
      if (ordered[i].up == cls.two_up && ordered[i + 1].up == cls.two_up) {
        std::swap(ordered[i], ordered[i + 1]);
        break;
      }
    }
  }
  const std::span<Height> work =
      arena_.make_array<Height>(tree_->node_count());
  std::copy(prev_.heights().begin(), prev_.heights().end(), work.begin());
  for (const PathMatchPair& pair : ordered) {
    scheme_.process_pair(pair.down, pair.up, work);
  }

  if (matching.unmatched != kNoNode) {
    if (cls.of(matching.unmatched) == NodeClass::Down) {
      scheme_.process_unmatched_down(matching.unmatched, work);
    } else {
      scheme_.process_unmatched_up(matching.unmatched, work);
    }
  }

  // The processed intermediate configuration must equal the real outcome.
  for (NodeId v = 0; v < tree_->node_count(); ++v) {
    CVG_CHECK(work[v] == after.height(v))
        << "certifier desync at node " << v << ": scheme says " << work[v]
        << ", simulator says " << after.height(v) << " (step " << record.step
        << ")";
  }

  prev_ = after;
  ++steps_;
  if (validate_every_ > 0 && steps_ % validate_every_ == 0) {
    scheme_.validate(*tree_, prev_);
  }
}

void PathCertifier::final_validate() const { scheme_.validate(*tree_, prev_); }

}  // namespace cvg::certify
