#include "cvg/certify/attachment.hpp"

#include <algorithm>

#include "cvg/util/check.hpp"

namespace cvg::certify {

AttachmentScheme::AttachmentScheme(std::size_t node_count, ResidueMode mode)
    : node_count_(node_count),
      mode_(mode),
      slots_of_(node_count),
      guardian_(node_count) {}

mem::SlotHandle AttachmentScheme::find_slot(NodeId x, Height i,
                                            Height j) const {
  for (const mem::SlotHandle h : slots_of_[x]) {
    const Attachment& a = attachments_[h];
    if (a.slot.i == i && a.slot.j == j) return h;
  }
  return {};
}

NodeId AttachmentScheme::occupant(NodeId x, Height i, Height j) const {
  const mem::SlotHandle h = find_slot(x, i, j);
  return h.is_null() ? kNoNode : attachments_[h].residue;
}

std::optional<Slot> AttachmentScheme::guardian_of(NodeId y) const {
  const mem::SlotHandle h = guardian_[y];
  if (h.is_null()) return std::nullopt;
  return attachments_[h].slot;
}

void AttachmentScheme::attach(NodeId x, Height i, Height j, NodeId y) {
  CVG_CHECK(y != x) << "a node cannot be its own residue";
  CVG_CHECK(tracked(j));
  CVG_CHECK(j >= 1 && j <= i - 2) << "slot (" << x << "," << i << "," << j
                                  << ") out of range";
  const mem::SlotHandle existing = find_slot(x, i, j);
  CVG_CHECK(existing.is_null())
      << "slot (" << x << "," << i << "," << j << ") already occupied by "
      << attachments_[existing].residue;
  const mem::SlotHandle prior = guardian_[y];
  CVG_CHECK(prior.is_null()) << "node " << y << " is already a residue of ("
                             << attachments_[prior].slot.x << ","
                             << attachments_[prior].slot.i << ","
                             << attachments_[prior].slot.j << ")";
  const mem::SlotHandle h = attachments_.insert(Attachment{Slot{x, i, j}, y});
  slots_of_[x].push_back(h);
  guardian_[y] = h;
}

void AttachmentScheme::detach_slot(NodeId x, Height i, Height j) {
  const mem::SlotHandle h = find_slot(x, i, j);
  CVG_CHECK(!h.is_null())
      << "detaching empty slot (" << x << "," << i << "," << j << ")";
  guardian_[attachments_[h].residue] = {};
  std::vector<mem::SlotHandle>& list = slots_of_[x];
  for (std::size_t k = 0; k < list.size(); ++k) {
    if (list[k] == h) {
      list[k] = list.back();
      list.pop_back();
      break;
    }
  }
  // Generation bump: any handle to this attachment still held anywhere is
  // now detectably stale (access trips CVG_CHECK instead of aliasing).
  attachments_.erase(h);
}

void AttachmentScheme::process_pair(NodeId x_d, NodeId x_u,
                                    std::span<Height> heights) {
  const Height h_d = heights[x_d];
  const Height h_u = heights[x_u];

  // Lemma 4.4 / 5.3: the down node is at least as high as the up node it
  // charges.  In path mode this holds verbatim.  In tree (even-residue)
  // mode, the 2up node's second, crossover pair can carry a work height one
  // above its charging down node (the paper's "as if t was of height
  // h(t)+1" view); that is benign exactly when every *tracked* slot of the
  // new packet is still fillable, which is the check that matters:
  for (Height j = 1; j <= h_u - 1; ++j) {
    if (!tracked(j)) continue;
    const bool fillable = (j <= h_d - 2) || (h_d == h_u && j == h_u - 1);
    CVG_CHECK(fillable) << "matching pair (" << x_d << " h=" << h_d << ", "
                        << x_u << " h=" << h_u << ") cannot fill slot ("
                        << x_u << "," << (h_u + 1) << "," << j
                        << ") — Lemma 4.4/5.3 violated";
  }
  if (mode_ == ResidueMode::All) {
    CVG_CHECK(h_u <= h_d) << "matching pair (" << x_d << " h=" << h_d << ", "
                          << x_u << " h=" << h_u
                          << ") violates Lemma 4.4: up node higher than down";
  }
  CVG_CHECK(h_d >= 1) << "down node " << x_d << " has nothing to send";

  // Lemma 4.10 / Claim 2: residues never go down.
  CVG_CHECK(!is_residue(x_d))
      << "Lemma 4.10 violated: residue " << x_d << " is a down node";

  // Lemma 4.9 / 5.5: when the pair's heights are equal, the up node is not a
  // residue.
  if (h_d == h_u) {
    CVG_CHECK(!is_residue(x_u))
        << "Lemma 4.9 violated: up node " << x_u
        << " is a residue although h_d == h_u == " << h_d;
  }

  // Snapshot x_u's guardian in A_P and the occupants of x_d's top packet.
  const std::optional<Slot> u_guardian = guardian_of(x_u);
  // top_scratch_[j] = att(x_d[h_d, j]); member scratch so the per-pair hot
  // path allocates nothing once its capacity has plateaued.
  top_scratch_.assign(static_cast<std::size_t>(std::max(h_d - 1, Height{0})),
                      kNoNode);
  for (Height j = 1; j <= h_d - 2; ++j) {
    if (!tracked(j)) continue;
    const NodeId y = occupant(x_d, h_d, j);
    CVG_CHECK(y != kNoNode) << "scheme not full: slot (" << x_d << "," << h_d
                            << "," << j << ") empty at pair processing";
    top_scratch_[static_cast<std::size_t>(j)] = y;
  }

  // Lines 4–6: if x_u occupies a *surviving* slot of x_d at level h_u, swap
  // it into the doomed top-packet slot so its removal leaves no hole.
  if (u_guardian && u_guardian->x == x_d && u_guardian->i != h_d) {
    CVG_CHECK(u_guardian->j == h_u);
    CVG_CHECK(h_u <= h_d - 2)
        << "swap target slot (" << x_d << "," << h_d << "," << h_u
        << ") does not exist";
    const NodeId w = top_scratch_[static_cast<std::size_t>(h_u)];
    detach_slot(x_d, u_guardian->i, h_u);
    detach_slot(x_d, h_d, h_u);
    attach(x_d, u_guardian->i, h_u, w);
    attach(x_d, h_d, h_u, x_u);
  }

  // Line 7: drop all attachments of x_d's disappearing top packet, passing
  // the low ones (j ≤ h_u − 1) to x_u's brand-new packet x_u[h_u + 1].
  for (Height j = 1; j <= h_d - 2; ++j) {
    if (!tracked(j)) continue;
    if (occupant(x_d, h_d, j) != kNoNode) detach_slot(x_d, h_d, j);
  }
  const Height pass_limit = std::min<Height>(h_d - 2, h_u - 1);
  for (Height j = 1; j <= pass_limit; ++j) {
    if (!tracked(j)) continue;
    attach(x_u, h_u + 1, j, top_scratch_[static_cast<std::size_t>(j)]);
  }

  // Lines 8–10: equal heights — x_d itself becomes a residue of x_u, filling
  // the one slot the passes could not (j = h_u − 1).
  if (h_d == h_u && h_d >= 2 && tracked(h_u - 1) && h_u - 1 >= 1) {
    attach(x_u, h_u + 1, h_u - 1, x_d);
  }

  // Lines 11–19: x_u's own height changed, so if it was a residue its
  // guardian slot must be refilled (unless that slot just vanished with
  // x_d's top packet).
  if (u_guardian) {
    const bool guardian_destroyed =
        u_guardian->x == x_d;  // post-swap it sat in the doomed top packet
    if (!guardian_destroyed) {
      const Slot g = *u_guardian;
      CVG_CHECK(g.j == h_u);
      detach_slot(g.x, g.i, g.j);
      if (h_d == h_u + 1) {
        // x_d's new height is h_u: it takes x_u's place.
        attach(g.x, g.i, g.j, x_d);
      } else {
        CVG_CHECK(h_d >= h_u + 2)
            << "unexpected pair heights with residue up node (h_d=" << h_d
            << ", h_u=" << h_u << ")";
        // The resident of x_d's vanished slot at level h_u takes the place.
        const NodeId y = top_scratch_[static_cast<std::size_t>(h_u)];
        CVG_CHECK(y != kNoNode && y != x_u);
        attach(g.x, g.i, g.j, y);
      }
    }
  }

  heights[x_d] = h_d - 1;
  heights[x_u] = h_u + 1;
}

void AttachmentScheme::process_unmatched_down(NodeId x,
                                              std::span<Height> heights) {
  const Height h = heights[x];
  CVG_CHECK(h >= 1);
  CVG_CHECK(!is_residue(x))
      << "Lemma 4.10 violated: unmatched down node " << x << " is a residue";
  for (Height j = 1; j <= h - 2; ++j) {
    if (!tracked(j)) continue;
    if (occupant(x, h, j) != kNoNode) detach_slot(x, h, j);
  }
  heights[x] = h - 1;
}

void AttachmentScheme::process_unmatched_up(NodeId x,
                                            std::span<Height> heights) {
  // Only nodes of (work) height ≤ 1 can rise unmatched: the resulting
  // height ≤ 2 carries no slots, so fullness is unaffected, and a node that
  // started the step at height 0 cannot be a residue.
  CVG_CHECK(heights[x] <= 1)
      << "unmatched up node " << x << " has work height " << heights[x]
      << "; rising further would create unfillable slots";
  CVG_CHECK(!is_residue(x))
      << "unmatched up node " << x << " is a residue; its guardian slot "
         "would go stale";
  heights[x] = static_cast<Height>(heights[x] + 1);
}

std::uint64_t AttachmentScheme::residue_requirement(Height p) const {
  // r(p): residues transitively pinned by one height-p node (Lemma 4.6).
  // r(p) = Σ_{tracked j ≤ p−2} (1 + r(j)) + r(p−1), r(≤2) = 0.
  if (p <= 2) return 0;
  std::vector<std::uint64_t> r(static_cast<std::size_t>(p) + 1, 0);
  for (Height q = 3; q <= p; ++q) {
    std::uint64_t total = r[static_cast<std::size_t>(q - 1)];
    for (Height j = 1; j <= q - 2; ++j) {
      if (!tracked(j)) continue;
      total += 1 + r[static_cast<std::size_t>(j)];
    }
    r[static_cast<std::size_t>(q)] = total;
  }
  return r[static_cast<std::size_t>(p)];
}

Height AttachmentScheme::certified_height_bound(std::size_t node_count) const {
  Height m = 2;
  while (residue_requirement(m + 1) <= node_count) ++m;
  return m;
}

void AttachmentScheme::validate(const Tree& tree,
                                const Configuration& config) const {
  const std::size_t n = tree.node_count();
  CVG_CHECK(config.node_count() == n);

  // Rule 1 + fullness: every tracked slot of every standing packet is
  // occupied by a node of matching height.
  std::size_t expected_slots = 0;
  for (NodeId x = 1; x < n; ++x) {
    const Height h = config.height(x);
    for (Height i = 3; i <= h; ++i) {
      for (Height j = 1; j <= i - 2; ++j) {
        if (!tracked(j)) continue;
        ++expected_slots;
        const NodeId y = occupant(x, i, j);
        CVG_CHECK(y != kNoNode) << "fullness violated: slot (" << x << "," << i
                                << "," << j << ") empty (h(x)=" << h << ")";
        CVG_CHECK(y != x);
        CVG_CHECK(config.height(y) == j)
            << "Rule 1 violated: slot (" << x << "," << i << "," << j
            << ") holds node " << y << " of height " << config.height(y);
      }
    }
  }
  // No stale attachments beyond standing packets, and maps are mutually
  // consistent (Rule 2's injectivity is enforced structurally by attach()).
  CVG_CHECK(attachments_.size() == expected_slots)
      << "attachment count " << attachments_.size() << " != expected "
      << expected_slots << " (stale slots exist)";
  std::size_t guarded = 0;
  for (const mem::SlotHandle h : guardian_) {
    if (!h.is_null()) ++guarded;
  }
  CVG_CHECK(guarded == attachments_.size());

  // Positional rules.
  attachments_.for_each([&](mem::SlotHandle, const Attachment& att) {
    const Slot& slot = att.slot;
    const NodeId y = att.residue;
    const NodeId x = slot.x;
    const Height hy = config.height(y);
    CVG_CHECK(hy == slot.j);

    if (mode_ == ResidueMode::All) {
      // Path Rules 3–5.  "In front" = closer to the sink = smaller id on a
      // path.
      if (hy % 2 == 0) {
        CVG_CHECK(x < y) << "Rule 3 violated: even residue " << y
                         << " has guardian " << x << " behind it";
      } else {
        CVG_CHECK(x > y) << "Rule 4 violated: odd residue " << y
                         << " has guardian " << x << " in front of it";
      }
      const NodeId lo = std::min(x, y);
      const NodeId hi = std::max(x, y);
      for (NodeId z = lo + 1; z < hi; ++z) {
        CVG_CHECK(config.height(z) >= hy)
            << "Rule 5 violated: node " << z << " (h=" << config.height(z)
            << ") between guardian " << x << " and residue " << y
            << " (h=" << hy << ")";
      }
    } else {
      // Tree Rules 6–7.  "Behind y" = in y's subtree.
      CVG_CHECK(hy % 2 == 0);
      bool x_behind_y = false;
      for (NodeId w = x; w != kNoNode; w = tree.parent(w)) {
        if (w == y) {
          x_behind_y = (x != y);
          break;
        }
      }
      CVG_CHECK(!x_behind_y) << "Rule 6 violated: guardian " << x
                             << " lies behind even residue " << y;

      // Find the tip (LCA) of x and y.
      std::vector<NodeId> y_up;  // y .. root
      for (NodeId w = y; w != kNoNode; w = tree.parent(w)) y_up.push_back(w);
      NodeId tip = kNoNode;
      std::vector<NodeId> x_up;  // x .. node-below-tip
      for (NodeId w = x; w != kNoNode; w = tree.parent(w)) {
        if (std::find(y_up.begin(), y_up.end(), w) != y_up.end()) {
          tip = w;
          break;
        }
        x_up.push_back(w);
      }
      CVG_CHECK(tip != kNoNode);

      if (tip == x || tip == y) {
        // Not a crossover: one endpoint is an ancestor of the other;
        // h(z) ≥ h(y) strictly between them.
        const NodeId from = (tip == x) ? y : x;
        for (NodeId z = tree.parent(from); z != kNoNode && z != tip;
             z = tree.parent(z)) {
          CVG_CHECK(config.height(z) >= hy)
              << "Rule 7 violated between " << x << " and " << y << " at "
              << z;
        }
      } else {
        // Crossover with tip strictly above both: y's side satisfies ≥,
        // x's side satisfies > (tip itself exempt).
        for (NodeId z = y; z != tip; z = tree.parent(z)) {
          CVG_CHECK(config.height(z) >= hy)
              << "Rule 7 (residue side) violated between " << y << " and tip "
              << tip << " at " << z;
        }
        for (NodeId z = x; z != tip; z = tree.parent(z)) {
          CVG_CHECK(config.height(z) > hy)
              << "Rule 7 (guardian side) violated between " << x << " and tip "
              << tip << " at " << z;
        }
      }
    }
  });

  // Lemma 4.6/4.7: the tallest node's transitive residue requirement must
  // fit among the other nodes.
  const Height m = config.max_height();
  CVG_CHECK(residue_requirement(m) <= n)
      << "height bound violated: max height " << m << " needs "
      << residue_requirement(m) << " residues but only " << n << " nodes exist";
}

std::string AttachmentScheme::dump_node(NodeId x,
                                        const Configuration& config) const {
  std::string out = "node " + std::to_string(x) +
                    " (h=" + std::to_string(config.height(x)) + ")\n";
  for (Height i = config.height(x); i >= 3; --i) {
    out += "  packet [" + std::to_string(i) + "]:";
    for (Height j = 1; j <= i - 2; ++j) {
      if (!tracked(j)) continue;
      const NodeId y = occupant(x, i, j);
      out += " slot" + std::to_string(j) + "→";
      out += (y == kNoNode) ? "∅" : std::to_string(y);
    }
    out += '\n';
  }
  if (const auto g = guardian_of(x)) {
    out += "  residue of (" + std::to_string(g->x) + "[" +
           std::to_string(g->i) + "," + std::to_string(g->j) + "])\n";
  }
  return out;
}

}  // namespace cvg::certify
