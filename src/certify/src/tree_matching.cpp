#include "cvg/certify/tree_matching.hpp"

#include <algorithm>

#include "cvg/util/check.hpp"

namespace cvg::certify {

namespace {

using Entry = TreeMatchingWorkspace::Entry;

/// Non-steady entries of one line, leaf to head, with the 2up doubled.
/// Fills `entries` in place, reusing its capacity.
void line_entries(const Line& line, const StepClassification& cls,
                  std::vector<Entry>& entries) {
  entries.clear();
  for (const NodeId v : line.nodes) {
    switch (cls.of(v)) {
      case NodeClass::Steady:
        break;
      case NodeClass::Down:
        entries.push_back({v, false, false});
        break;
      case NodeClass::Up:
        entries.push_back({v, true, false});
        break;
      case NodeClass::TwoUp:
        entries.push_back({v, true, false});
        entries.push_back({v, true, false});
        break;
    }
  }
}

/// Lemma 5.3: along the path from x_d to x_u the heights (at the start of
/// the step) appear in non-increasing order, except possibly at the *tip* —
/// the node where the path turns from sink-ward to leaf-ward.  In
/// particular h(x_u) ≤ h(x_d).  Pairs touching the 2up node are exempt
/// (their effective heights are staged; the scheme's fillability check
/// covers them).
void check_lemma_5_3(const Tree& tree, const Configuration& before,
                     NodeId x_d, NodeId x_u, TreeMatchingWorkspace& ws) {
  // Ancestor chains up to the lowest common ancestor.  The mark array is
  // set and then *unset* along the same x_u → root walk, so one check costs
  // O(path length), not O(n), and the workspace buffers make it
  // allocation-free after warm-up.
  if (ws.on_up.size() < tree.node_count()) {
    ws.on_up.assign(tree.node_count(), 0);
  }
  std::vector<char>& on_up = ws.on_up;
  for (NodeId w = x_u; w != kNoNode; w = tree.parent(w)) on_up[w] = 1;
  NodeId lca = kNoNode;
  std::vector<NodeId>& down_chain = ws.down_chain;  // x_d .. child-of-LCA
  down_chain.clear();
  for (NodeId w = x_d; w != kNoNode; w = tree.parent(w)) {
    if (on_up[w]) {
      lca = w;
      break;
    }
    down_chain.push_back(w);
  }
  CVG_CHECK(lca != kNoNode);
  std::vector<NodeId>& up_chain = ws.up_chain;  // x_u .. child-of-LCA
  up_chain.clear();
  for (NodeId w = x_u; w != lca; w = tree.parent(w)) up_chain.push_back(w);
  for (NodeId w = x_u; w != kNoNode; w = tree.parent(w)) on_up[w] = 0;

  // Walk from x_d towards x_u, omitting the tip (the LCA) unless the LCA is
  // an endpoint (then there is no turn and it participates): the down chain
  // in order, then the up chain reversed.
  if (lca == x_d || lca == x_u) down_chain.push_back(lca);
  NodeId prev = kNoNode;
  const auto check_edge = [&](NodeId next) {
    if (prev != kNoNode) {
      CVG_CHECK(before.height(prev) >= before.height(next))
          << "Lemma 5.3 violated on pair (" << x_d << "," << x_u
          << ") between nodes " << prev << " and " << next;
    }
    prev = next;
  };
  for (const NodeId w : down_chain) check_edge(w);
  for (auto it = up_chain.rbegin(); it != up_chain.rend(); ++it) {
    check_edge(*it);
  }
}

/// Index of the last non-taken entry, or npos when the remaining count is
/// even (no leftover under consecutive pairing).
std::size_t leftover_index(const std::vector<Entry>& entries) {
  std::size_t remaining = 0;
  std::size_t last = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].taken) continue;
    ++remaining;
    last = i;
  }
  return (remaining % 2 == 1) ? last : static_cast<std::size_t>(-1);
}

}  // namespace

TreeMatching build_tree_matching(const Tree& tree, const Configuration& before,
                                 const Configuration& after,
                                 const StepClassification& cls,
                                 const LinesDecomposition& lines) {
  TreeMatchingWorkspace ws;
  TreeMatching out;
  build_tree_matching(tree, before, after, cls, lines, ws, out);
  return out;
}

void build_tree_matching(const Tree& tree, const Configuration& before,
                         const Configuration& /*after*/,
                         const StepClassification& cls,
                         const LinesDecomposition& lines,
                         TreeMatchingWorkspace& ws, TreeMatching& out) {
  constexpr auto kNone = static_cast<std::size_t>(-1);
  out.pairs.clear();
  out.unmatched_downs.clear();
  out.unmatched_ups.clear();

  // Line count is a topological invariant, so this resize settles after the
  // first round; the per-line vectors are refilled in place.
  ws.entries.resize(lines.lines.size());
  std::vector<std::vector<Entry>>& entries = ws.entries;
  for (std::size_t i = 0; i < lines.lines.size(); ++i) {
    line_entries(lines.lines[i], cls, entries[i]);
  }

  // The crossover cascade.  At most one surplus up exists at a time: it
  // starts (if at all) as the leftover of some blocked line — by Lemma 5.1's
  // argument only the injected line can have one — and each crossover
  // consumes it while possibly exposing a new one on a line whose head is
  // strictly closer to the sink, so the loop terminates.
  std::vector<TreeMatchPair>& crossovers = ws.crossovers;
  crossovers.clear();
  for (std::size_t li = 0; li < entries.size(); ++li) {
    if (li == lines.drain) continue;
    std::size_t lo = leftover_index(entries[li]);
    if (lo == kNone || !entries[li][lo].is_up) continue;
    // Frontier rises (pre-step height 0) need no charging pair at all; they
    // are handled like the leading-zero.  Only taller surplus ups cascade.
    if (before.height(entries[li][lo].node) == 0) continue;

    CVG_CHECK(li == lines.injected_line)
        << "surplus up node " << entries[li][lo].node << " on line " << li
        << " which is neither drain nor injected line";

    std::size_t cur_line = li;
    std::size_t cur_leftover = lo;
    for (std::size_t guard = 0; guard <= lines.lines.size(); ++guard) {
      CVG_CHECK(guard < lines.lines.size())
          << "crossover cascade failed to terminate";

      Entry& up_entry = entries[cur_line][cur_leftover];
      const NodeId x_u = up_entry.node;
      up_entry.taken = true;

      // The blocking intersection in front of this line.
      const NodeId head = lines.lines[cur_line].nodes.back();
      const NodeId v = tree.parent(head);
      CVG_CHECK(v != kNoNode);
      const std::uint32_t pv =
          (v == Tree::sink()) ? lines.drain : lines.line_of[v];
      CVG_CHECK(pv != cur_line)
          << "line with surplus up is its own priority line at " << v;

      // First down node strictly behind v on the priority line (Lemma 5.2
      // guarantees it exists: the packet that beat this line into v came
      // from a sending chain whose first node went down).
      const std::uint32_t v_pos = (v == Tree::sink())
                                      ? LinesDecomposition::npos
                                      : lines.pos_in_line[v];
      std::size_t d_index = kNone;
      for (std::size_t i = entries[pv].size(); i-- > 0;) {
        const Entry& e = entries[pv][i];
        if (e.taken || e.is_up) continue;
        if (v_pos != LinesDecomposition::npos &&
            lines.pos_in_line[e.node] >= v_pos) {
          continue;
        }
        d_index = i;
        break;
      }
      CVG_CHECK(d_index != kNone)
          << "Lemma 5.2 violated: no down node behind intersection " << v
          << " on its priority line (surplus up " << x_u << ")";
      Entry& down_entry = entries[pv][d_index];
      down_entry.taken = true;
      crossovers.push_back({down_entry.node, x_u, /*crossover=*/true});

      // Re-pairing the priority line may expose a new surplus up.
      const std::size_t next = leftover_index(entries[pv]);
      if (next == kNone || !entries[pv][next].is_up || pv == lines.drain) {
        break;  // balanced again, or the drain absorbs the leftover
      }
      cur_line = pv;
      cur_leftover = next;
    }
  }

  // Final consecutive pairing per line; the surviving leftover of the drain
  // (down or frontier up) goes to the unmatched lists.
  for (std::size_t li = 0; li < entries.size(); ++li) {
    const Entry* pending = nullptr;
    for (const Entry& e : entries[li]) {
      if (e.taken) continue;
      if (pending == nullptr) {
        pending = &e;
        continue;
      }
      CVG_CHECK(pending->is_up != e.is_up)
          << "tree matching pairs two " << (e.is_up ? "up" : "down")
          << " nodes (" << pending->node << ", " << e.node << ") on line "
          << li;
      TreeMatchPair pair;
      pair.down = pending->is_up ? e.node : pending->node;
      pair.up = pending->is_up ? pending->node : e.node;
      out.pairs.push_back(pair);
      pending = nullptr;
    }
    if (pending != nullptr) {
      if (pending->is_up) {
        // Must be a frontier rise: pre-step height 0 (the leading-zero, or
        // the second copy of a 0 → 2 node).  Anything taller would create
        // unfillable slots, which Claim 1's tree analogue rules out.
        CVG_CHECK(before.height(pending->node) == 0)
            << "unmatched up node " << pending->node << " of height "
            << before.height(pending->node) << " on line " << li;
        out.unmatched_ups.push_back(pending->node);
      } else {
        CVG_CHECK(li == lines.drain)
            << "unmatched down node " << pending->node
            << " on non-drain line " << li;
        out.unmatched_downs.push_back(pending->node);
      }
    }
  }

  // Crossovers after in-line pairs: guarantees a 2up node's first (in-line)
  // pair is processed before its exported second copy.
  out.pairs.insert(out.pairs.end(), crossovers.begin(), crossovers.end());

  // Certify Lemma 5.3 on every pair not involving the 2up node.
  for (const TreeMatchPair& pair : out.pairs) {
    if (pair.up == cls.two_up) continue;
    check_lemma_5_3(tree, before, pair.down, pair.up, ws);
  }
}

}  // namespace cvg::certify
