#include "cvg/certify/tree_certifier.hpp"

#include <algorithm>
#include <span>

#include "cvg/util/check.hpp"

namespace cvg::certify {

TreeCertifier::TreeCertifier(const Tree& tree, Step validate_every)
    : tree_(&tree),
      scheme_(tree.node_count(), ResidueMode::EvenOnly),
      prev_(tree.node_count()),
      validate_every_(validate_every) {}

void TreeCertifier::observe(const Configuration& after,
                            const StepRecord& record) {
  classify_step(*tree_, prev_, after, record, cls_);
  const StepClassification& cls = cls_;
  build_lines(*tree_, prev_, record, lines_);
  const LinesDecomposition& lines = lines_;
  build_tree_matching(*tree_, prev_, after, cls, lines, match_ws_, matching_);
  const TreeMatching& matching = matching_;
  arena_.reset();

  // The 2up node's two pairs are processed in a parity-dependent order
  // (see PathCertifier::observe): even-height 2up → its second pair first.
  const std::span<TreeMatchPair> ordered =
      arena_.make_array<TreeMatchPair>(matching.pairs.size());
  std::copy(matching.pairs.begin(), matching.pairs.end(), ordered.begin());
  if (cls.two_up != kNoNode && prev_.height(cls.two_up) % 2 == 0) {
    std::size_t first = ordered.size();
    std::size_t second = ordered.size();
    for (std::size_t i = 0; i < ordered.size(); ++i) {
      if (ordered[i].up != cls.two_up) continue;
      if (first == ordered.size()) {
        first = i;
      } else {
        second = i;
        break;
      }
    }
    if (second != ordered.size()) std::swap(ordered[first], ordered[second]);
  }
  const std::span<Height> work =
      arena_.make_array<Height>(tree_->node_count());
  std::copy(prev_.heights().begin(), prev_.heights().end(), work.begin());
  for (const TreeMatchPair& pair : ordered) {
    scheme_.process_pair(pair.down, pair.up, work);
  }
  for (const NodeId x : matching.unmatched_downs) {
    scheme_.process_unmatched_down(x, work);
  }
  for (const NodeId x : matching.unmatched_ups) {
    scheme_.process_unmatched_up(x, work);
  }

  for (NodeId v = 0; v < tree_->node_count(); ++v) {
    CVG_CHECK(work[v] == after.height(v))
        << "tree certifier desync at node " << v << ": scheme says "
        << work[v] << ", simulator says " << after.height(v) << " (step "
        << record.step << ")";
  }

  prev_ = after;
  ++steps_;
  if (validate_every_ > 0 && steps_ % validate_every_ == 0) {
    scheme_.validate(*tree_, prev_);
  }
}

void TreeCertifier::final_validate() const { scheme_.validate(*tree_, prev_); }

}  // namespace cvg::certify
