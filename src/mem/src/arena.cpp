#include "cvg/mem/arena.hpp"

#include <algorithm>

namespace cvg::mem {

namespace {

std::size_t align_up(std::size_t value, std::size_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

}  // namespace

Arena::Arena(std::size_t first_chunk_bytes) {
  CVG_CHECK(first_chunk_bytes > 0);
  chunks_.reserve(8);
  chunks_.push_back(
      Chunk{std::make_unique<std::byte[]>(first_chunk_bytes), first_chunk_bytes});
  reserved_ = first_chunk_bytes;
}

void* Arena::allocate(std::size_t bytes, std::size_t alignment) {
  CVG_DCHECK(alignment > 0 && (alignment & (alignment - 1)) == 0)
      << "alignment must be a power of two, got " << alignment;
  if (bytes == 0) bytes = 1;  // distinct non-null results, as operator new
  // Align the *address*, not the offset: chunk bases carry only the default
  // new[] alignment, so an offset that is a multiple of a wider `alignment`
  // does not make the resulting pointer one.
  std::size_t at = aligned_offset(alignment);
  if (at + bytes > chunks_[current_].size) {
    advance(bytes + alignment);  // headroom so the aligned bump always fits
    at = aligned_offset(alignment);
    CVG_DCHECK(at + bytes <= chunks_[current_].size);
  }
  void* out = chunks_[current_].data.get() + at;
  offset_ = at + bytes;
  used_ += bytes;
  return out;
}

std::size_t Arena::aligned_offset(std::size_t alignment) const {
  const auto base =
      reinterpret_cast<std::uintptr_t>(chunks_[current_].data.get());
  return align_up(base + offset_, alignment) - base;
}

void Arena::advance(std::size_t bytes) {
  // Reuse a retained chunk when one is big enough; the common reset/refill
  // cycle walks the same chunk sequence every iteration and never gets here
  // with an allocation.
  for (std::size_t next = current_ + 1; next < chunks_.size(); ++next) {
    if (chunks_[next].size >= bytes) {
      // Chunks between current_ and next are skipped for this cycle; they
      // stay retained and are revisited after the next reset().
      current_ = next;
      offset_ = 0;
      return;
    }
  }
  const std::size_t grown = std::max(bytes, chunks_.back().size * 2);
  chunks_.push_back(Chunk{std::make_unique<std::byte[]>(grown), grown});
  reserved_ += grown;
  current_ = chunks_.size() - 1;
  offset_ = 0;
}

void Arena::reset() {
  current_ = 0;
  offset_ = 0;
  used_ = 0;
}

}  // namespace cvg::mem
