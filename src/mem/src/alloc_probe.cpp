#include "cvg/mem/alloc_probe.hpp"

#include <atomic>

namespace cvg::mem {

namespace {

// Relaxed atomics: audit windows are single-threaded, so exactness there is
// free; cross-thread reads only need eventual visibility for diagnostics.
std::atomic<std::uint64_t> g_news{0};
std::atomic<std::uint64_t> g_deletes{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<bool> g_active{false};

}  // namespace

AllocStats alloc_stats() noexcept {
  return AllocStats{g_news.load(std::memory_order_relaxed),
                    g_deletes.load(std::memory_order_relaxed),
                    g_bytes.load(std::memory_order_relaxed)};
}

bool alloc_probe_active() noexcept {
  return g_active.load(std::memory_order_relaxed);
}

void probe_note_new(std::size_t bytes) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void probe_note_delete() noexcept {
  g_deletes.fetch_add(1, std::memory_order_relaxed);
}

void probe_mark_active() noexcept {
  g_active.store(true, std::memory_order_relaxed);
}

}  // namespace cvg::mem
