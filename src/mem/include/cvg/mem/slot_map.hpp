#pragma once

/// \file slot_map.hpp
/// Generational slot map: dense storage with stable, stale-proof handles.
///
/// Slots are recycled through a free list, and every slot carries a
/// generation counter that is bumped on `erase`.  A `Handle` captures the
/// generation at insertion time, so a handle kept across a recycle can never
/// silently alias the slot's new occupant: `operator[]` trips `CVG_CHECK`
/// and `try_get` returns `nullptr`.  This is the classic generational-index
/// pattern (cf. the attachment managers in entity-component engines) applied
/// to the certifier's attachment bookkeeping, where a stale slot→residue
/// reference is precisely the kind of bug Algorithm 4's invariants must
/// catch loudly rather than corrupt quietly.
///
/// The map never shrinks: `reserve()` pre-sizes the slot vector so a
/// bounded-population workload (at most one attachment per node, say)
/// performs all its heap allocation up front and none per insert/erase.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "cvg/util/check.hpp"

namespace cvg::mem {

/// Generation-tagged reference into a `SlotMap`.  Value-semantic and
/// trivially copyable; the default-constructed handle is null.
struct SlotHandle {
  static constexpr std::uint32_t kNullIndex = 0xFFFFFFFFu;

  std::uint32_t index = kNullIndex;
  std::uint32_t generation = 0;

  [[nodiscard]] bool is_null() const { return index == kNullIndex; }
  friend bool operator==(SlotHandle a, SlotHandle b) = default;
};

template <typename T>
class SlotMap {
 public:
  SlotMap() = default;

  /// Pre-sizes internal storage for `capacity` concurrent residents, making
  /// subsequent insert/erase churn allocation-free up to that population.
  void reserve(std::size_t capacity) {
    slots_.reserve(capacity);
    free_.reserve(capacity);
  }

  /// Inserts `value`, recycling a freed slot when one exists.
  SlotHandle insert(T value) {
    std::uint32_t index;
    if (!free_.empty()) {
      index = free_.back();
      free_.pop_back();
      slots_[index].value = std::move(value);
      slots_[index].live = true;
    } else {
      index = static_cast<std::uint32_t>(slots_.size());
      CVG_CHECK(index != SlotHandle::kNullIndex) << "slot map exhausted";
      slots_.push_back(Slot{std::move(value), 0, true});
    }
    ++size_;
    return SlotHandle{index, slots_[index].generation};
  }

  /// Erases the resident `h` refers to and bumps the slot's generation so
  /// every outstanding copy of `h` becomes detectably stale.  Aborts when
  /// `h` is already stale (double erase is a lifetime bug, not a no-op).
  void erase(SlotHandle h) {
    CVG_CHECK(contains(h)) << "erase through a stale or null slot handle "
                           << "(index " << h.index << ", generation "
                           << h.generation << ")";
    Slot& s = slots_[h.index];
    s.live = false;
    ++s.generation;
    free_.push_back(h.index);
    --size_;
  }

  /// True when `h` still refers to the resident it was minted for.
  [[nodiscard]] bool contains(SlotHandle h) const {
    return h.index < slots_.size() && slots_[h.index].live &&
           slots_[h.index].generation == h.generation;
  }

  /// Checked access: a stale handle aborts with a diagnostic rather than
  /// returning the slot's new occupant.
  T& operator[](SlotHandle h) {
    CVG_CHECK(contains(h)) << "access through a stale or null slot handle "
                           << "(index " << h.index << ", generation "
                           << h.generation << ")";
    return slots_[h.index].value;
  }
  const T& operator[](SlotHandle h) const {
    CVG_CHECK(contains(h)) << "access through a stale or null slot handle "
                           << "(index " << h.index << ", generation "
                           << h.generation << ")";
    return slots_[h.index].value;
  }

  /// Unchecked-failure access: `nullptr` for stale/null handles.
  [[nodiscard]] T* try_get(SlotHandle h) {
    return contains(h) ? &slots_[h.index].value : nullptr;
  }
  [[nodiscard]] const T* try_get(SlotHandle h) const {
    return contains(h) ? &slots_[h.index].value : nullptr;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Erases every resident, invalidating all outstanding handles (each live
  /// slot's generation is bumped).  Storage is retained.
  void clear() {
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].live) {
        slots_[i].live = false;
        ++slots_[i].generation;
        free_.push_back(i);
      }
    }
    size_ = 0;
  }

  /// Visits every live resident as `fn(handle, value&)`.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].live) {
        fn(SlotHandle{i, slots_[i].generation}, slots_[i].value);
      }
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].live) {
        fn(SlotHandle{i, slots_[i].generation}, slots_[i].value);
      }
    }
  }

 private:
  struct Slot {
    T value;
    std::uint32_t generation = 0;
    bool live = false;
  };

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t size_ = 0;
};

}  // namespace cvg::mem
