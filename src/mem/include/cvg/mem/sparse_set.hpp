#pragma once

/// \file sparse_set.hpp
/// Briggs–Torczon sparse set over a fixed universe `[0, n)`.
///
/// Backs the simulators' occupied sets (PR 1's sparse step engine keys the
/// policy's work off "nodes with height > 0").  All storage is sized to the
/// universe at construction, so membership updates on the step path are
/// allocation-free, and `clear()` is O(1) — a set version counter, not a
/// sweep — which is what lets a `StepWorkspace` reset between steps without
/// touching O(n) memory.
///
/// Iteration order is insertion order with swap-remove holes, matching the
/// contract the sparse policy entry points already accept ("arbitrary order,
/// no duplicates").

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "cvg/util/check.hpp"

namespace cvg::mem {

template <typename Index = std::uint32_t>
class SparseSet {
 public:
  SparseSet() = default;

  explicit SparseSet(std::size_t universe) { resize_universe(universe); }

  /// Re-sizes the universe and clears the set.  The only allocating member;
  /// call at construction/reconfiguration, never per step.
  void resize_universe(std::size_t universe) {
    dense_.clear();
    dense_.reserve(universe);
    pos_.assign(universe, 0);
  }

  [[nodiscard]] std::size_t universe() const { return pos_.size(); }

  [[nodiscard]] bool contains(Index v) const {
    CVG_DCHECK(static_cast<std::size_t>(v) < pos_.size());
    const std::size_t p = pos_[static_cast<std::size_t>(v)];
    return p < dense_.size() && dense_[p] == v;
  }

  /// Inserts `v`; returns false when already present.  Never allocates
  /// (dense storage is reserved to the universe size).
  bool insert(Index v) {
    if (contains(v)) return false;
    pos_[static_cast<std::size_t>(v)] = dense_.size();
    dense_.push_back(v);
    return true;
  }

  /// Swap-removes `v`; returns false when absent.
  bool erase(Index v) {
    if (!contains(v)) return false;
    const std::size_t p = pos_[static_cast<std::size_t>(v)];
    const Index last = dense_.back();
    dense_[p] = last;
    pos_[static_cast<std::size_t>(last)] = p;
    dense_.pop_back();
    return true;
  }

  [[nodiscard]] std::span<const Index> items() const {
    return {dense_.data(), dense_.size()};
  }
  [[nodiscard]] std::size_t size() const { return dense_.size(); }
  [[nodiscard]] bool empty() const { return dense_.empty(); }

  /// O(1): stale `pos_` entries are disarmed by the emptiness of `dense_`.
  void clear() { dense_.clear(); }

 private:
  std::vector<Index> dense_;
  std::vector<std::size_t> pos_;
};

}  // namespace cvg::mem
