#pragma once

/// \file pool.hpp
/// Fixed-capacity typed object pool, after Contiki's static `MEMB` blocks.
///
/// A `Pool<T>` owns `capacity` slots of storage allocated once at
/// construction; `alloc()` placement-constructs into a free slot and
/// `release()` destroys and recycles it.  Exhaustion returns `nullptr`
/// (Contiki's `memb_alloc` contract) rather than growing — the caller
/// decides whether an overflow is an error (`CVG_CHECK` it) or a signal to
/// flush/spill, but the pool's footprint never moves.  Double-release and
/// foreign pointers trip `CVG_CHECK`.
///
/// Use a `Pool` when objects have identity and independent lifetimes (search
/// candidate blocks, cached configurations); use `Arena` for scratch that
/// dies wholesale at the end of a step.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "cvg/util/check.hpp"

namespace cvg::mem {

template <typename T>
class Pool {
 public:
  explicit Pool(std::size_t capacity)
      : storage_(std::make_unique<std::byte[]>(capacity * sizeof(Slot))),
        live_(capacity, 0) {
    free_.reserve(capacity);
    // LIFO free list: hand back the lowest-index slot first so iteration
    // order in tests is deterministic.
    for (std::size_t i = capacity; i > 0; --i) {
      free_.push_back(static_cast<std::uint32_t>(i - 1));
    }
  }

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  ~Pool() {
    for (std::size_t i = 0; i < live_.size(); ++i) {
      if (live_[i]) slot(i)->~T();
    }
  }

  /// Constructs a `T` in a free slot; returns `nullptr` when the pool is
  /// exhausted (never grows).
  template <typename... Args>
  T* alloc(Args&&... args) {
    if (free_.empty()) return nullptr;
    const std::uint32_t index = free_.back();
    free_.pop_back();
    T* obj = new (slot(index)) T(std::forward<Args>(args)...);
    live_[index] = 1;
    return obj;
  }

  /// Destroys `obj` and recycles its slot.  Aborts on pointers the pool
  /// does not own and on double release.
  void release(T* obj) {
    CVG_CHECK(owns(obj)) << "release of a pointer this pool does not own";
    const std::size_t index = index_of(obj);
    CVG_CHECK(live_[index]) << "double release of pool slot " << index;
    obj->~T();
    live_[index] = 0;
    free_.push_back(static_cast<std::uint32_t>(index));
  }

  /// True when `obj` points at one of this pool's slots (live or not).
  [[nodiscard]] bool owns(const T* obj) const {
    const auto* p = reinterpret_cast<const std::byte*>(obj);
    const std::byte* base = storage_.get();
    if (p < base || p >= base + live_.size() * sizeof(Slot)) return false;
    return (static_cast<std::size_t>(p - base) % sizeof(Slot)) == 0;
  }

  [[nodiscard]] std::size_t capacity() const { return live_.size(); }
  [[nodiscard]] std::size_t in_use() const {
    return live_.size() - free_.size();
  }
  [[nodiscard]] bool full() const { return free_.empty(); }

 private:
  struct alignas(alignof(T)) Slot {
    std::byte bytes[sizeof(T)];
  };

  T* slot(std::size_t index) {
    return reinterpret_cast<T*>(storage_.get() + index * sizeof(Slot));
  }
  std::size_t index_of(const T* obj) const {
    return static_cast<std::size_t>(reinterpret_cast<const std::byte*>(obj) -
                                    storage_.get()) /
           sizeof(Slot);
  }

  std::unique_ptr<std::byte[]> storage_;
  std::vector<std::uint8_t> live_;
  std::vector<std::uint32_t> free_;
};

}  // namespace cvg::mem
