#pragma once

/// \file arena.hpp
/// Bump/reset arena for per-step and per-request scratch.
///
/// The paper's setting is a buffer-constrained sensor node: memory is the
/// scarce resource, and the honest realization of the model is a core whose
/// working set is statically bounded.  The `Arena` is the workhorse of that
/// fixed-footprint discipline (ROADMAP: "allocation-free hot paths via
/// static pools").  Allocation is a pointer bump; `reset()` rewinds to empty
/// while *retaining* every chunk ever acquired, so a warmed-up arena serves
/// an unbounded stream of steps/requests with zero heap traffic.  Chunks
/// grow geometrically, which bounds the number of heap allocations over the
/// arena's whole lifetime by O(log total-bytes).
///
/// Objects placed in an arena are never individually freed and must be
/// trivially destructible — the arena forgets them wholesale on `reset()`.
/// That restriction is what makes the reset O(1) and is exactly the Contiki
/// `memb`/stack-allocator contract the embedded targets expect.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "cvg/util/check.hpp"

namespace cvg::mem {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 16 * 1024;

  /// Acquires the first chunk eagerly so a default-sized arena performs its
  /// only warm-path allocation at construction time.
  explicit Arena(std::size_t first_chunk_bytes = kDefaultChunkBytes);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `alignment` (a power of two).
  /// Falls through to a new geometric chunk only when every retained chunk
  /// is exhausted — never on the steady-state path of a warmed-up arena.
  void* allocate(std::size_t bytes, std::size_t alignment);

  /// Typed array carve-out, value-initialized.  `T` must be trivially
  /// destructible: the arena will never run destructors.
  template <typename T>
  std::span<T> make_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed wholesale; T must not need a "
                  "destructor");
    if (count == 0) return {};
    T* data = static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < count; ++i) new (&data[i]) T();
    return {data, count};
  }

  /// Rewinds to empty, retaining every chunk.  O(1); the next allocations
  /// reuse the retained chunks in order.
  void reset();

  /// Bytes handed out since the last `reset()`.
  [[nodiscard]] std::size_t used() const { return used_; }

  /// Total bytes held across all retained chunks (the arena's footprint).
  [[nodiscard]] std::size_t reserved() const { return reserved_; }

  /// Number of chunks acquired over the arena's lifetime.
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size;
  };

  /// Moves to the next retained chunk able to hold `bytes`, acquiring a new
  /// geometric chunk if none can.
  void advance(std::size_t bytes);

  /// Smallest offset ≥ `offset_` whose *address* in the current chunk is
  /// `alignment`-aligned (chunk bases only carry the default new[]
  /// alignment).
  [[nodiscard]] std::size_t aligned_offset(std::size_t alignment) const;

  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  ///< index of the chunk being bumped
  std::size_t offset_ = 0;   ///< bump offset within the current chunk
  std::size_t used_ = 0;
  std::size_t reserved_ = 0;
};

}  // namespace cvg::mem
