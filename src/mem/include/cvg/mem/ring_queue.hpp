#pragma once

/// \file ring_queue.hpp
/// Flat circular FIFO that never shrinks — the fixed-footprint `std::deque`
/// replacement for packet buffers and BFS frontiers.
///
/// `std::deque` allocates and frees a segment every time push/pop crosses a
/// block boundary, so a FIFO cycling at steady state still churns the heap
/// forever.  `RingQueue` stores elements in one contiguous buffer indexed
/// modulo a power-of-two capacity: once the buffer has grown to the
/// workload's high-water mark, push/pop are allocation-free no matter how
/// long the run.  Growth doubles the buffer and un-wraps the contents.

#include <cstddef>
#include <utility>
#include <vector>

#include "cvg/util/check.hpp"

namespace cvg::mem {

template <typename T>
class RingQueue {
 public:
  RingQueue() = default;

  explicit RingQueue(std::size_t initial_capacity) {
    reserve(initial_capacity);
  }

  /// Grows the buffer to hold at least `capacity` elements (rounded up to a
  /// power of two).  Never shrinks.
  void reserve(std::size_t capacity) {
    if (capacity <= buf_.size()) return;
    std::size_t grown = buf_.empty() ? 8 : buf_.size();
    while (grown < capacity) grown *= 2;
    std::vector<T> next(grown);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  void push_back(T value) {
    if (count_ == buf_.size()) reserve(count_ + 1);
    buf_[(head_ + count_) & (buf_.size() - 1)] = std::move(value);
    ++count_;
  }

  [[nodiscard]] T& front() {
    CVG_DCHECK(count_ > 0);
    return buf_[head_];
  }
  [[nodiscard]] const T& front() const {
    CVG_DCHECK(count_ > 0);
    return buf_[head_];
  }
  [[nodiscard]] T& back() {
    CVG_DCHECK(count_ > 0);
    return buf_[(head_ + count_ - 1) & (buf_.size() - 1)];
  }
  [[nodiscard]] const T& back() const {
    CVG_DCHECK(count_ > 0);
    return buf_[(head_ + count_ - 1) & (buf_.size() - 1)];
  }

  void pop_front() {
    CVG_DCHECK(count_ > 0);
    head_ = (head_ + 1) & (buf_.size() - 1);
    --count_;
  }

  /// i-th element from the front (0 = front), for in-order scans.
  [[nodiscard]] T& operator[](std::size_t i) {
    CVG_DCHECK(i < count_);
    return buf_[(head_ + i) & (buf_.size() - 1)];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    CVG_DCHECK(i < count_);
    return buf_[(head_ + i) & (buf_.size() - 1)];
  }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

  /// Drops every element; storage is retained.
  void clear() {
    head_ = 0;
    count_ = 0;
  }

 private:
  std::vector<T> buf_;  ///< capacity is always zero or a power of two
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace cvg::mem
