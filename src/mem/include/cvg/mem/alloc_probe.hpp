#pragma once

/// \file alloc_probe.hpp
/// Counting-allocator probe: the enforcement arm of the fixed-footprint
/// invariant.
///
/// The library never interposes the global allocator itself — that would
/// tax every binary.  Instead, a *test binary* that wants to prove a code
/// path allocation-free defines interposing `operator new`/`delete` via
/// `CVG_DEFINE_COUNTING_ALLOCATOR()` (one macro expansion at namespace
/// scope in exactly one translation unit), and measurement windows read the
/// counters through `AllocationScope`:
///
/// ```cpp
/// CVG_DEFINE_COUNTING_ALLOCATOR()   // in the test .cpp, once
/// ...
/// sim.step();                        // warm-up: capacities plateau
/// cvg::mem::AllocationScope scope;
/// for (int i = 0; i < 1000; ++i) sim.step();
/// EXPECT_EQ(scope.news(), 0u);       // steady state is allocation-free
/// ```
///
/// Counters are relaxed atomics: cheap enough to leave in the interposers,
/// and exact whenever the measured window is single-threaded (every audit
/// window is).

#include <cstddef>
#include <cstdint>

namespace cvg::mem {

struct AllocStats {
  std::uint64_t news = 0;     ///< calls to any operator new form
  std::uint64_t deletes = 0;  ///< calls to any operator delete form
  std::uint64_t bytes = 0;    ///< total bytes requested through new
};

/// Snapshot of the process-wide counters.  All zero unless the binary
/// interposed the allocator with `CVG_DEFINE_COUNTING_ALLOCATOR()`.
[[nodiscard]] AllocStats alloc_stats() noexcept;

/// True when an interposing allocator registered itself (i.e. the counters
/// are meaningful).  Audit tests assert this to fail loudly if the macro
/// expansion is ever lost.
[[nodiscard]] bool alloc_probe_active() noexcept;

/// Interposer hooks — called by the macro-generated operators only.
void probe_note_new(std::size_t bytes) noexcept;
void probe_note_delete() noexcept;
void probe_mark_active() noexcept;

/// Delta-counter over a scope: captures the stats at construction, reports
/// traffic since.
class AllocationScope {
 public:
  AllocationScope() : start_(alloc_stats()) {}

  [[nodiscard]] std::uint64_t news() const {
    return alloc_stats().news - start_.news;
  }
  [[nodiscard]] std::uint64_t deletes() const {
    return alloc_stats().deletes - start_.deletes;
  }
  [[nodiscard]] std::uint64_t bytes() const {
    return alloc_stats().bytes - start_.bytes;
  }

 private:
  AllocStats start_;
};

}  // namespace cvg::mem

/// Expands to the full set of replaceable global allocation functions,
/// each forwarding to malloc/free and ticking the probe counters.  Expand
/// at namespace scope in exactly one TU of the auditing binary.
#define CVG_DEFINE_COUNTING_ALLOCATOR()                                        \
  namespace cvg_alloc_probe_detail {                                           \
  inline void* counted_alloc(std::size_t size, std::size_t align) {            \
    ::cvg::mem::probe_note_new(size);                                          \
    void* p = (align <= alignof(std::max_align_t))                             \
                  ? std::malloc(size ? size : 1)                               \
                  : std::aligned_alloc(align, ((size + align - 1) / align) *   \
                                                  align);                      \
    if (p == nullptr) throw std::bad_alloc();                                  \
    return p;                                                                  \
  }                                                                            \
  inline void counted_free(void* p) noexcept {                                 \
    if (p != nullptr) ::cvg::mem::probe_note_delete();                         \
    std::free(p);                                                              \
  }                                                                            \
  struct ProbeActivator {                                                      \
    ProbeActivator() { ::cvg::mem::probe_mark_active(); }                      \
  };                                                                           \
  const ProbeActivator probe_activator{};                                      \
  }                                                                            \
  void* operator new(std::size_t size) {                                       \
    return cvg_alloc_probe_detail::counted_alloc(                              \
        size, alignof(std::max_align_t));                                      \
  }                                                                            \
  void* operator new[](std::size_t size) {                                     \
    return cvg_alloc_probe_detail::counted_alloc(                              \
        size, alignof(std::max_align_t));                                      \
  }                                                                            \
  void* operator new(std::size_t size, std::align_val_t align) {               \
    return cvg_alloc_probe_detail::counted_alloc(                              \
        size, static_cast<std::size_t>(align));                                \
  }                                                                            \
  void* operator new[](std::size_t size, std::align_val_t align) {             \
    return cvg_alloc_probe_detail::counted_alloc(                              \
        size, static_cast<std::size_t>(align));                                \
  }                                                                            \
  void operator delete(void* p) noexcept {                                     \
    cvg_alloc_probe_detail::counted_free(p);                                   \
  }                                                                            \
  void operator delete[](void* p) noexcept {                                   \
    cvg_alloc_probe_detail::counted_free(p);                                   \
  }                                                                            \
  void operator delete(void* p, std::size_t) noexcept {                        \
    cvg_alloc_probe_detail::counted_free(p);                                   \
  }                                                                            \
  void operator delete[](void* p, std::size_t) noexcept {                      \
    cvg_alloc_probe_detail::counted_free(p);                                   \
  }                                                                            \
  void operator delete(void* p, std::align_val_t) noexcept {                   \
    cvg_alloc_probe_detail::counted_free(p);                                   \
  }                                                                            \
  void operator delete[](void* p, std::align_val_t) noexcept {                 \
    cvg_alloc_probe_detail::counted_free(p);                                   \
  }                                                                            \
  void operator delete(void* p, std::size_t, std::align_val_t) noexcept {      \
    cvg_alloc_probe_detail::counted_free(p);                                   \
  }                                                                            \
  void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {    \
    cvg_alloc_probe_detail::counted_free(p);                                   \
  }
