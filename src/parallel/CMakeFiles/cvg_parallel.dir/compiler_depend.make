# Empty compiler generated dependencies file for cvg_parallel.
# This may be replaced when dependencies are built.
