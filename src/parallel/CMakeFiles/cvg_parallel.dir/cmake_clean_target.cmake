file(REMOVE_RECURSE
  "libcvg_parallel.a"
)
