file(REMOVE_RECURSE
  "CMakeFiles/cvg_parallel.dir/src/parallel_for.cpp.o"
  "CMakeFiles/cvg_parallel.dir/src/parallel_for.cpp.o.d"
  "CMakeFiles/cvg_parallel.dir/src/pool.cpp.o"
  "CMakeFiles/cvg_parallel.dir/src/pool.cpp.o.d"
  "CMakeFiles/cvg_parallel.dir/src/sweep.cpp.o"
  "CMakeFiles/cvg_parallel.dir/src/sweep.cpp.o.d"
  "libcvg_parallel.a"
  "libcvg_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvg_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
