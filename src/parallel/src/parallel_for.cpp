#include "cvg/parallel/parallel_for.hpp"

#include <cstdlib>
#include <string>

namespace cvg {

unsigned default_thread_count() {
  if (const char* env = std::getenv("CVG_THREADS")) {
    const long value = std::strtol(env, nullptr, 10);
    if (value >= 1) return static_cast<unsigned>(value);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace cvg
