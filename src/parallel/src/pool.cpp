#include "cvg/parallel/pool.hpp"

#include <algorithm>

#include "cvg/util/check.hpp"

namespace cvg {

void CancelToken::set_timeout_ms(std::uint64_t timeout_ms) noexcept {
  if (timeout_ms == 0) {
    deadline_ns_.store(0, std::memory_order_relaxed);
    return;
  }
  set_deadline(std::chrono::steady_clock::now() +
               std::chrono::milliseconds(timeout_ms));
}

bool CancelToken::cancelled() const noexcept {
  if (cancelled_.load(std::memory_order_relaxed)) return true;
  const std::int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline == 0) return false;
  return std::chrono::steady_clock::now().time_since_epoch().count() >=
         deadline;
}

WorkerPool::WorkerPool(unsigned threads, std::size_t queue_capacity)
    : queue_capacity_(std::max<std::size_t>(1, queue_capacity)) {
  const unsigned workers = std::max(1u, threads);
  workers_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() { shutdown(); }

WorkerPool::Submit WorkerPool::try_submit(std::function<void()> task) {
  CVG_CHECK(static_cast<bool>(task)) << "WorkerPool: empty task";
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!accepting_) return Submit::ShuttingDown;
    if (queue_.size() >= queue_capacity_) return Submit::QueueFull;
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
  return Submit::Accepted;
}

void WorkerPool::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void WorkerPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;
    joining_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

std::size_t WorkerPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t WorkerPool::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + running_;
}

bool WorkerPool::accepting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accepting_;
}

void WorkerPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return !queue_.empty() || joining_; });
      if (queue_.empty()) return;  // joining_ and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      if (queue_.empty() && running_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace cvg
