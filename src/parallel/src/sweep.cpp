#include "cvg/parallel/sweep.hpp"

namespace cvg {

std::vector<PeakOutcome> run_peak_sweep(const std::vector<PeakJob>& jobs,
                                        unsigned threads) {
  std::vector<PeakOutcome> outcomes(jobs.size());
  parallel_for(jobs.size(), threads, [&](std::size_t i) {
    const PeakJob& job = jobs[i];
    CVG_CHECK(job.steps > 0) << "job '" << job.label << "' has no step budget";
    const Tree tree = job.make_tree();
    const PolicyPtr policy = job.make_policy();
    AdversaryPtr adversary = job.make_adversary(tree, *policy);
    const RunResult result =
        run(tree, *policy, *adversary, job.steps, job.options);
    outcomes[i] = {job.label, result.peak_height, result.injected,
                   result.delivered, result.steps};
  });
  return outcomes;
}

}  // namespace cvg
