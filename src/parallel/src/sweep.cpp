#include "cvg/parallel/sweep.hpp"

#include <utility>

#include "cvg/sim/lane_engine.hpp"

namespace cvg {

void SweepRunner::add(SweepJob job) {
  units_.push_back({std::move(job), {}});
  ++total_;
}

void SweepRunner::add(std::string label, Step steps,
                      std::function<RunResult(Step)> body) {
  add(SweepJob{std::move(label), steps, std::move(body)});
}

void SweepRunner::add_block(SweepBlock block) {
  CVG_CHECK(!block.labels.empty()) << "sweep block with no labels";
  total_ += block.labels.size();
  units_.push_back({{}, std::move(block)});
}

void SweepRunner::add_block(std::vector<std::string> labels,
                            std::function<std::vector<SweepOutcome>()> body) {
  add_block(SweepBlock{std::move(labels), std::move(body)});
}

std::vector<SweepOutcome> SweepRunner::run(unsigned threads) const {
  // Insertion-order offsets: each unit owns a fixed outcome range, so the
  // result is independent of worker scheduling.
  std::vector<std::size_t> offset(units_.size());
  std::size_t at = 0;
  for (std::size_t i = 0; i < units_.size(); ++i) {
    offset[i] = at;
    at += units_[i].block.body ? units_[i].block.labels.size() : 1;
  }

  std::vector<SweepOutcome> outcomes(total_);
  parallel_for(units_.size(), threads, [&](std::size_t i) {
    const Unit& unit = units_[i];
    if (unit.block.body) {
      const SweepBlock& block = unit.block;
      std::vector<SweepOutcome> got = block.body();
      CVG_CHECK(got.size() == block.labels.size())
          << "sweep block '" << block.labels.front() << "' returned "
          << got.size() << " outcomes for " << block.labels.size()
          << " labels";
      for (std::size_t k = 0; k < got.size(); ++k) {
        outcomes[offset[i] + k] = std::move(got[k]);
        outcomes[offset[i] + k].label = block.labels[k];
      }
      return;
    }
    const SweepJob& job = unit.job;
    CVG_CHECK(job.steps > 0)
        << "sweep job '" << job.label << "' has no step budget";
    CVG_CHECK(job.body != nullptr)
        << "sweep job '" << job.label << "' has no body";
    const RunResult result = job.body(job.steps);
    outcomes[offset[i]] = {job.label, result.peak_height, result.injected,
                           result.delivered, result.steps};
  });
  return outcomes;
}

namespace {

/// One materialized grid point of a peak sweep.  `run_peak_sweep` builds
/// every point up front (instead of inside the worker closure) so that
/// same-bucket points can be recognized and fused into a lane block.
struct PeakPoint {
  Tree tree;
  PolicyPtr policy;
  AdversaryPtr adversary;
};

/// Two points share a lane block iff the lane engine would execute them
/// under identical kernels: same topology, same policy (registry names are
/// injective over behaviour) and same execution-model knobs.  Sparse-mode
/// knobs are irrelevant — the lane engine has one substrate, and the scalar
/// engines are bit-identical across them anyway.
bool same_bucket(const PeakPoint& a, const PeakJob& ja, const PeakPoint& b,
                 const PeakJob& jb) {
  return ja.options.capacity == jb.options.capacity &&
         ja.options.burstiness == jb.options.burstiness &&
         ja.options.semantics == jb.options.semantics &&
         a.policy->name() == b.policy->name() && a.tree == b.tree;
}

}  // namespace

std::vector<PeakOutcome> run_peak_sweep(const std::vector<PeakJob>& jobs,
                                        unsigned threads) {
  // Materialize every grid point once, on the calling thread.
  std::vector<PeakPoint> points;
  points.reserve(jobs.size());  // closures below keep references into this
  std::vector<bool> laneable(jobs.size(), false);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const PeakJob& job = jobs[i];
    Tree tree = job.make_tree();
    PolicyPtr policy = job.make_policy();
    AdversaryPtr adversary = job.make_adversary(tree, *policy);
    laneable[i] = job.steps > 0 && adversary->oblivious() &&
                  LaneSimulator::supported(*policy, job.options);
    points.push_back(
        {std::move(tree), std::move(policy), std::move(adversary)});
  }

  // Greedy grouping in job order: every unclaimed lane-compatible point
  // joins the earliest block of its bucket.  Deterministic, so outcomes are
  // reproducible across thread counts.
  SweepRunner runner;
  std::vector<std::size_t> origin;  // runner outcome slot -> job index
  origin.reserve(jobs.size());
  std::vector<bool> claimed(jobs.size(), false);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (claimed[i]) continue;
    claimed[i] = true;
    if (!laneable[i]) {
      const PeakJob& job = jobs[i];
      const PeakPoint& point = points[i];
      origin.push_back(i);
      runner.add(job.label, job.steps, [&job, &point](Step steps) {
        return run(point.tree, *point.policy, *point.adversary, steps,
                   job.options);
      });
      continue;
    }
    std::vector<std::size_t> members{i};
    for (std::size_t j = i + 1; j < jobs.size(); ++j) {
      if (claimed[j] || !laneable[j]) continue;
      if (!same_bucket(points[i], jobs[i], points[j], jobs[j])) continue;
      claimed[j] = true;
      members.push_back(j);
    }
    std::vector<std::string> labels;
    labels.reserve(members.size());
    for (const std::size_t m : members) {
      origin.push_back(m);
      labels.push_back(jobs[m].label);
    }
    runner.add_block(std::move(labels), [&jobs, &points, members] {
      const PeakPoint& lead = points[members.front()];
      const SimOptions& options = jobs[members.front()].options;
      std::vector<LaneSchedule> schedules;
      schedules.reserve(members.size());
      for (const std::size_t m : members) {
        schedules.push_back(unroll_oblivious(lead.tree, *points[m].adversary,
                                             jobs[m].steps, options.capacity));
      }
      const std::vector<LaneReplayOutcome> replayed =
          replay_schedules(lead.tree, *lead.policy, options, schedules);
      std::vector<SweepOutcome> out(members.size());
      for (std::size_t k = 0; k < members.size(); ++k) {
        out[k] = {jobs[members[k]].label, replayed[k].peak,
                  replayed[k].injected, replayed[k].delivered,
                  replayed[k].steps};
      }
      return out;
    });
  }

  // Scatter back to job order (grouping may interleave buckets).
  const std::vector<SweepOutcome> flat = runner.run(threads);
  std::vector<PeakOutcome> out(jobs.size());
  for (std::size_t slot = 0; slot < flat.size(); ++slot) {
    out[origin[slot]] = flat[slot];
  }
  return out;
}

}  // namespace cvg
