#include "cvg/parallel/sweep.hpp"

namespace cvg {

void SweepRunner::add(SweepJob job) { jobs_.push_back(std::move(job)); }

void SweepRunner::add(std::string label, Step steps,
                      std::function<RunResult(Step)> body) {
  jobs_.push_back({std::move(label), steps, std::move(body)});
}

std::vector<SweepOutcome> SweepRunner::run(unsigned threads) const {
  std::vector<SweepOutcome> outcomes(jobs_.size());
  parallel_for(jobs_.size(), threads, [&](std::size_t i) {
    const SweepJob& job = jobs_[i];
    CVG_CHECK(job.steps > 0)
        << "sweep job '" << job.label << "' has no step budget";
    CVG_CHECK(job.body != nullptr)
        << "sweep job '" << job.label << "' has no body";
    const RunResult result = job.body(job.steps);
    outcomes[i] = {job.label, result.peak_height, result.injected,
                   result.delivered, result.steps};
  });
  return outcomes;
}

std::vector<PeakOutcome> run_peak_sweep(const std::vector<PeakJob>& jobs,
                                        unsigned threads) {
  SweepRunner runner;
  for (const PeakJob& job : jobs) {
    runner.add(job.label, job.steps, [&job](Step steps) {
      const Tree tree = job.make_tree();
      const PolicyPtr policy = job.make_policy();
      AdversaryPtr adversary = job.make_adversary(tree, *policy);
      return run(tree, *policy, *adversary, steps, job.options);
    });
  }
  return runner.run(threads);
}

}  // namespace cvg
