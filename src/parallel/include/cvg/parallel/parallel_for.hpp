#pragma once

/// \file parallel_for.hpp
/// Fork-join data parallelism for the experiment sweeps.
///
/// Simulation sweeps are embarrassingly parallel (one independent run per
/// grid point), so the library needs nothing fancier than a scoped
/// fork-join loop: workers pull indices from an atomic counter, results are
/// written to index-addressed slots, and determinism follows from per-index
/// seeding (`derive_seed`) — the outcome is bit-identical regardless of
/// thread count or scheduling.

#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

#include "cvg/util/check.hpp"

namespace cvg {

/// Number of worker threads to use: the `CVG_THREADS` environment variable
/// if set, else the hardware concurrency (at least 1).
[[nodiscard]] unsigned default_thread_count();

/// Runs `fn(i)` for every `i` in `[0, count)` across `threads` workers.
/// Blocks until all iterations finish.  `fn` must be safe to call
/// concurrently for distinct indices.  Exceptions escaping `fn` terminate
/// (the library's simulation code reports errors via CVG_CHECK instead).
template <typename Fn>
void parallel_for(std::size_t count, unsigned threads, Fn&& fn) {
  if (count == 0) return;
  if (threads <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(threads, count));
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&next, count, &fn] {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
           i < count; i = next.fetch_add(1, std::memory_order_relaxed)) {
        fn(i);
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
}

/// `parallel_for` with the default thread count.
template <typename Fn>
void parallel_for(std::size_t count, Fn&& fn) {
  parallel_for(count, default_thread_count(), std::forward<Fn>(fn));
}

}  // namespace cvg
