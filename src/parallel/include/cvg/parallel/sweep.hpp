#pragma once

/// \file sweep.hpp
/// Declarative parameter sweeps: each job owns a labelled thunk that builds
/// its own topology/policy/adversary on the worker thread, so no state is
/// shared across grid points.  Used by every bench table.
///
/// Two layers:
///  - `SweepRunner` is substrate-agnostic: a job is any callable returning a
///    `RunResult`, so height, packet, undirected-path and DAG sweeps all go
///    through the same worker pool.
///  - `PeakJob`/`run_peak_sweep` are the historical height-engine
///    convenience, now a thin wrapper over `SweepRunner`.

#include <functional>
#include <string>
#include <vector>

#include "cvg/parallel/parallel_for.hpp"
#include "cvg/sim/runner.hpp"

namespace cvg {

/// One grid point of a generic sweep: run `steps` steps of *some* substrate
/// and report the result.  `body` is invoked on the worker thread with the
/// job's step budget.
struct SweepJob {
  /// Row label carried into the result (e.g. "odd-even n=4096").
  std::string label;

  /// Steps to run; must be positive (checked with the label at run time).
  Step steps = 0;

  /// Builds and runs the grid point; receives `steps`.
  std::function<RunResult(Step)> body;
};

/// Outcome of one grid point (any substrate).
struct SweepOutcome {
  std::string label;
  Height peak = 0;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  Step steps = 0;
};

/// Historical alias: peak sweeps predate the generic runner.
using PeakOutcome = SweepOutcome;

/// Collects labelled jobs over any substrate and runs them across a worker
/// pool, returning outcomes in job order.
class SweepRunner {
 public:
  void add(SweepJob job);
  void add(std::string label, Step steps, std::function<RunResult(Step)> body);

  [[nodiscard]] std::size_t size() const noexcept { return jobs_.size(); }

  /// Runs every job (in parallel across `threads` workers).  Aborts with the
  /// job's label if a job has no step budget or no body.
  [[nodiscard]] std::vector<SweepOutcome> run(
      unsigned threads = default_thread_count()) const;

 private:
  std::vector<SweepJob> jobs_;
};

/// One grid point of a height-engine peak sweep.
struct PeakJob {
  /// Row label carried into the result (e.g. "odd-even n=4096").
  std::string label;

  /// Builds the topology (invoked on the worker thread).
  std::function<Tree()> make_tree;

  /// Builds the policy.
  std::function<PolicyPtr()> make_policy;

  /// Builds the adversary for the given tree/policy (lower-bound adversaries
  /// need both).
  std::function<AdversaryPtr(const Tree&, const Policy&)> make_adversary;

  /// Steps to run; 0 means "ask the adversary" is not supported here — the
  /// caller must choose (use StagedLowerBound::recommended_steps upstream).
  Step steps = 0;

  SimOptions options;
};

/// Runs every job (in parallel across `threads` workers) and returns
/// outcomes in job order.
[[nodiscard]] std::vector<PeakOutcome> run_peak_sweep(
    const std::vector<PeakJob>& jobs, unsigned threads = default_thread_count());

}  // namespace cvg
