#pragma once

/// \file sweep.hpp
/// Declarative parameter sweeps: each job owns a labelled thunk that builds
/// its own topology/policy/adversary on the worker thread, so no state is
/// shared across grid points.  Used by every bench table.
///
/// Two layers:
///  - `SweepRunner` is substrate-agnostic: a job is any callable returning a
///    `RunResult`, so height, packet, undirected-path and DAG sweeps all go
///    through the same worker pool.
///  - `PeakJob`/`run_peak_sweep` are the historical height-engine
///    convenience, now a thin wrapper over `SweepRunner`.

#include <functional>
#include <string>
#include <vector>

#include "cvg/parallel/parallel_for.hpp"
#include "cvg/sim/runner.hpp"

namespace cvg {

/// One grid point of a generic sweep: run `steps` steps of *some* substrate
/// and report the result.  `body` is invoked on the worker thread with the
/// job's step budget.
struct SweepJob {
  /// Row label carried into the result (e.g. "odd-even n=4096").
  std::string label;

  /// Steps to run; must be positive (checked with the label at run time).
  Step steps = 0;

  /// Builds and runs the grid point; receives `steps`.
  std::function<RunResult(Step)> body;
};

/// Outcome of one grid point (any substrate).
struct SweepOutcome {
  std::string label;
  Height peak = 0;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  Step steps = 0;
};

/// Historical alias: peak sweeps predate the generic runner.
using PeakOutcome = SweepOutcome;

/// Several grid points that one body evaluates together — the unit the
/// lane-batched engine (`cvg/sim/lane_engine.hpp`) works in: a block of K
/// same-bucket schedules advances as one SoA simulation, so the whole block
/// costs about one scalar run.  The body returns exactly
/// `labels.size()` outcomes, in label order.
struct SweepBlock {
  std::vector<std::string> labels;
  std::function<std::vector<SweepOutcome>()> body;
};

/// Collects labelled jobs over any substrate and runs them across a worker
/// pool, returning outcomes in job order.  A block counts as
/// `labels.size()` consecutive jobs but occupies a single worker: lanes
/// batch *within* a block, threads parallelize *across* blocks.
class SweepRunner {
 public:
  void add(SweepJob job);
  void add(std::string label, Step steps, std::function<RunResult(Step)> body);
  void add_block(SweepBlock block);
  void add_block(std::vector<std::string> labels,
                 std::function<std::vector<SweepOutcome>()> body);

  /// Total number of outcomes `run` will produce (blocks count per label).
  [[nodiscard]] std::size_t size() const noexcept { return total_; }

  /// Runs every job (in parallel across `threads` workers).  Aborts with the
  /// job's label if a job has no step budget or no body, and with the first
  /// label of a block whose body returns the wrong number of outcomes.
  /// Outcomes land in insertion order regardless of `threads`.
  [[nodiscard]] std::vector<SweepOutcome> run(
      unsigned threads = default_thread_count()) const;

 private:
  /// One schedulable unit: a single job (when `block.body` is empty) or a
  /// lane block.
  struct Unit {
    SweepJob job;
    SweepBlock block;
  };

  std::vector<Unit> units_;
  std::size_t total_ = 0;
};

/// One grid point of a height-engine peak sweep.
struct PeakJob {
  /// Row label carried into the result (e.g. "odd-even n=4096").
  std::string label;

  /// Builds the topology (invoked on the worker thread).
  std::function<Tree()> make_tree;

  /// Builds the policy.
  std::function<PolicyPtr()> make_policy;

  /// Builds the adversary for the given tree/policy (lower-bound adversaries
  /// need both).
  std::function<AdversaryPtr(const Tree&, const Policy&)> make_adversary;

  /// Steps to run; 0 means "ask the adversary" is not supported here — the
  /// caller must choose (use StagedLowerBound::recommended_steps upstream).
  Step steps = 0;

  SimOptions options;
};

/// Runs every job and returns outcomes in job order.  Grid points whose
/// bucket fits the lane-batched engine — same tree, policy and options,
/// lane-supported policy, oblivious adversary — are grouped into lane
/// blocks (schedules unrolled up front, replayed K-per-block); the rest run
/// on the scalar engine.  Results are bit-identical either way, and
/// identical for every `threads` value.
[[nodiscard]] std::vector<PeakOutcome> run_peak_sweep(
    const std::vector<PeakJob>& jobs, unsigned threads = default_thread_count());

}  // namespace cvg
