#pragma once

/// \file sweep.hpp
/// Declarative parameter sweeps: each job owns factories for its topology,
/// policy and adversary, so workers build everything thread-locally and no
/// state is shared across grid points.  Used by every bench table.

#include <functional>
#include <string>
#include <vector>

#include "cvg/parallel/parallel_for.hpp"
#include "cvg/sim/runner.hpp"

namespace cvg {

/// One grid point of a peak-height sweep.
struct PeakJob {
  /// Row label carried into the result (e.g. "odd-even n=4096").
  std::string label;

  /// Builds the topology (invoked on the worker thread).
  std::function<Tree()> make_tree;

  /// Builds the policy.
  std::function<PolicyPtr()> make_policy;

  /// Builds the adversary for the given tree/policy (lower-bound adversaries
  /// need both).
  std::function<AdversaryPtr(const Tree&, const Policy&)> make_adversary;

  /// Steps to run; 0 means "ask the adversary" is not supported here — the
  /// caller must choose (use StagedLowerBound::recommended_steps upstream).
  Step steps = 0;

  SimOptions options;
};

/// Outcome of one grid point.
struct PeakOutcome {
  std::string label;
  Height peak = 0;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  Step steps = 0;
};

/// Runs every job (in parallel across `threads` workers) and returns
/// outcomes in job order.
[[nodiscard]] std::vector<PeakOutcome> run_peak_sweep(
    const std::vector<PeakJob>& jobs, unsigned threads = default_thread_count());

}  // namespace cvg
