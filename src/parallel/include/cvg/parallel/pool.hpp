#pragma once

/// \file pool.hpp
/// A persistent worker pool with a bounded queue, for long-lived consumers
/// such as the simulation service (src/serve).  `parallel_for` remains the
/// right tool for fork-join sweeps; this pool is for open-ended streams of
/// independent jobs where the caller needs explicit backpressure
/// (`Submit::QueueFull`), graceful shutdown (drain in-flight, reject new),
/// and cooperative per-job cancellation (`CancelToken`).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cvg {

/// Cooperative cancellation: long-running job bodies poll `cancelled()` at
/// natural checkpoints (every few hundred simulation steps).  A token
/// trips either explicitly (`cancel()`) or by passing its deadline, so one
/// mechanism implements both per-job timeouts and shutdown aborts.
class CancelToken {
 public:
  /// Trips the token permanently.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms a wall-clock deadline; `cancelled()` reports true once it passes.
  void set_deadline(std::chrono::steady_clock::time_point deadline) noexcept {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  /// Convenience: deadline `timeout_ms` from now (0 disarms any deadline).
  void set_timeout_ms(std::uint64_t timeout_ms) noexcept;

  [[nodiscard]] bool cancelled() const noexcept;

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{0};  // 0 = no deadline armed
};

/// Fixed-size worker pool draining a bounded FIFO queue.  Tasks are opaque
/// thunks; result delivery and error reporting are the caller's protocol
/// (the service responds over its transport from inside the task).
class WorkerPool {
 public:
  enum class Submit {
    Accepted,      ///< queued; a worker will run it
    QueueFull,     ///< bounded queue at capacity — explicit backpressure
    ShuttingDown,  ///< shutdown() has begun; no new work is accepted
  };

  /// Spawns `threads` workers (at least 1) over a queue bounded at
  /// `queue_capacity` pending tasks (at least 1).
  WorkerPool(unsigned threads, std::size_t queue_capacity);

  /// Drains and joins (equivalent to `shutdown()`).
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Attempts to enqueue `task`.  Never blocks: a full queue or a shutdown
  /// in progress is reported to the caller instead of being waited out.
  [[nodiscard]] Submit try_submit(std::function<void()> task);

  /// Blocks until every queued and running task has finished.  New tasks
  /// may still be submitted afterwards (this is a barrier, not a shutdown).
  void drain();

  /// Stops accepting new tasks, drains everything already queued or
  /// running, and joins the workers.  Idempotent.
  void shutdown();

  /// Tasks queued but not yet picked up by a worker.
  [[nodiscard]] std::size_t queue_depth() const;

  /// Tasks queued or currently running.
  [[nodiscard]] std::size_t in_flight() const;

  [[nodiscard]] bool accepting() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;   // workers wait for tasks/shutdown
  std::condition_variable all_idle_;     // drain()/shutdown() wait here
  std::deque<std::function<void()>> queue_;
  std::size_t queue_capacity_;
  std::size_t running_ = 0;
  bool accepting_ = true;
  bool joining_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cvg
