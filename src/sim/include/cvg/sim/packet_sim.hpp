#pragma once

/// \file packet_sim.hpp
/// Packet-level simulation engine: identical transition semantics to
/// `Simulator`, but buffers hold identified packets in FIFO order so that
/// per-packet delay (injection → consumption) can be measured.  This powers
/// the delay experiment (`bench_delay`) answering the paper's closing
/// question about the delay characteristics of Odd-Even and its competitors.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "cvg/audit/locality_auditor.hpp"
#include "cvg/core/config.hpp"
#include "cvg/core/step.hpp"
#include "cvg/core/workspace.hpp"
#include "cvg/mem/ring_queue.hpp"
#include "cvg/policy/policy.hpp"
#include "cvg/sim/metrics.hpp"
#include "cvg/sim/simulator.hpp"
#include "cvg/topology/tree.hpp"

namespace cvg {

/// An identified packet in flight.
struct Packet {
  std::uint64_t id = 0;       ///< injection sequence number (0-based)
  NodeId origin = kNoNode;    ///< where the adversary injected it
  Step injected_at = 0;       ///< step index of the injection
};

/// FIFO packet-level twin of `Simulator`.  Heights derived from the queues
/// always match what the height engine would compute (checked by the
/// engine-equivalence tests), so all buffer-size results carry over; this
/// engine additionally reports where each packet came from and how long it
/// took.
class PacketSimulator {
 public:
  PacketSimulator(const Tree& tree, const Policy& policy, SimOptions options = {});

  /// Executes one step with the given injections (≤ capacity packets).
  void step(std::span<const NodeId> injections);

  /// Convenience for rate-1: single injection or none (`kNoNode`).
  void step_inject(NodeId t) {
    if (t == kNoNode) {
      step({});
    } else {
      step({&t, 1});
    }
  }

  [[nodiscard]] const Configuration& config() const noexcept { return config_; }
  [[nodiscard]] Step now() const noexcept { return now_; }
  [[nodiscard]] Height peak_height() const noexcept { return peak_; }
  [[nodiscard]] const DelayStats& delays() const noexcept { return delays_; }
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delays_.count(); }
  [[nodiscard]] std::uint64_t injected() const noexcept { return next_packet_id_; }

  /// Delays of the packets delivered during the most recent step, in
  /// delivery order (feeds the delay-histogram sink via the generic loop).
  [[nodiscard]] std::span<const Step> delivered_delays_last_step()
      const noexcept {
    return delivered_delays_;
  }

  /// FIFO buffer contents of node v (front = next packet to forward).
  [[nodiscard]] const mem::RingQueue<Packet>& buffer(NodeId v) const {
    return buffers_[v];
  }

  /// What the locality auditor measured so far, or nullptr when
  /// `SimOptions::audit_locality` is off (models `LocalityAuditingEngine`).
  [[nodiscard]] const LocalityAuditReport* locality_report() const noexcept {
    return auditor_ ? &auditor_->report() : nullptr;
  }

 private:
  /// Records a delivery into both the cumulative stats and the per-step list.
  void record_delivery(Step delay);

  /// A packet detached from its sender this step, awaiting delivery.
  struct Move {
    Packet packet;
    NodeId to = kNoNode;
  };

  const Tree* tree_;
  const Policy* policy_;
  SimOptions options_;
  /// Per-node FIFOs as flat ring buffers: unlike std::deque, cycling packets
  /// through a warmed-up queue allocates nothing (fixed-footprint invariant).
  std::vector<mem::RingQueue<Packet>> buffers_;
  Configuration config_;  // mirror of buffer sizes, fed to the policy
  /// Dense send scratch + injection list, construction-sized, reset per step
  /// (`record.injections` doubles as the policy's injection view).
  StepWorkspace ws_;
  std::vector<Move> moves_;  // detach/deliver scratch; capacity retained
  DelayStats delays_;
  std::vector<Step> delivered_delays_;  // deliveries of the latest step
  Step now_ = 0;
  std::uint64_t next_packet_id_ = 0;
  Height peak_ = 0;
  Capacity tokens_ = 0;  // burstiness token bucket
  /// Armed around each policy call when `SimOptions::audit_locality` is on.
  std::optional<LocalityAuditor> auditor_;
};

}  // namespace cvg
