#pragma once

/// \file runner.hpp
/// One-call execution harness: drive a (policy, adversary) pair for a number
/// of steps and collect the quantities the experiments report.

#include <functional>
#include <vector>

#include "cvg/sim/adversary.hpp"
#include "cvg/sim/simulator.hpp"

namespace cvg {

/// Result of one simulation run.
struct RunResult {
  /// Largest buffer height any node ever reached.
  Height peak_height = 0;

  /// Per-node peak heights.
  std::vector<Height> peak_per_node;

  /// Heights at the end of the run.
  Configuration final_config;

  /// Totals over the run.
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  Step steps = 0;
};

/// Observes each completed step.  `sim.config()` is the post-step
/// configuration; `record` tells what was injected and who sent.
using StepObserver =
    std::function<void(const Simulator& sim, const StepRecord& record)>;

/// Runs `steps` rounds of adversary-vs-policy from the empty configuration.
/// The adversary's `on_simulation_start` hook is invoked first, so a stateful
/// adversary instance can be reused across runs.
[[nodiscard]] RunResult run(const Tree& tree, const Policy& policy,
                            Adversary& adversary, Step steps,
                            SimOptions options = {},
                            const StepObserver& observer = {});

/// Like `run`, but additionally samples the network-wide max height every
/// `sample_every` steps into `height_trace` (used for time-series plots such
/// as the FIE divergence experiment).
[[nodiscard]] RunResult run_traced(const Tree& tree, const Policy& policy,
                                   Adversary& adversary, Step steps,
                                   Step sample_every,
                                   std::vector<Height>& height_trace,
                                   SimOptions options = {});

}  // namespace cvg
