#pragma once

/// \file runner.hpp
/// Tree-substrate execution harness: drive a (policy, adversary) pair for a
/// number of steps and collect the quantities the experiments report.  Both
/// entry points are thin adapters over the generic `run_engine` loop
/// (engine_run.hpp) — the adversary becomes the injection source, the
/// optional observer becomes the certifier hook, and the height trace is a
/// `HeightTraceSink`.

#include <functional>
#include <vector>

#include "cvg/sim/adversary.hpp"
#include "cvg/sim/engine_run.hpp"
#include "cvg/sim/simulator.hpp"

namespace cvg {

/// Observes each completed step.  `sim.config()` is the post-step
/// configuration; `record` tells what was injected and who sent.
using StepObserver =
    std::function<void(const Simulator& sim, const StepRecord& record)>;

/// Adapts a tree adversary into a `run_engine` injection source.  `tree`
/// and `adversary` must outlive the returned callable.
[[nodiscard]] inline auto adversary_source(const Tree& tree,
                                           Adversary& adversary,
                                           Capacity capacity) {
  return [&tree, &adversary, capacity](const Configuration& config, Step step,
                                       std::vector<NodeId>& out) {
    adversary.plan(tree, config, step, capacity, out);
  };
}

/// Runs `steps` rounds of adversary-vs-policy from the empty configuration.
/// The adversary's `on_simulation_start` hook is invoked first, so a stateful
/// adversary instance can be reused across runs.
[[nodiscard]] RunResult run(const Tree& tree, const Policy& policy,
                            Adversary& adversary, Step steps,
                            SimOptions options = {},
                            const StepObserver& observer = {});

/// Like `run`, but additionally samples the network-wide max height every
/// `sample_every` steps into `height_trace` (used for time-series plots such
/// as the FIE divergence experiment).
[[nodiscard]] RunResult run_traced(const Tree& tree, const Policy& policy,
                                   Adversary& adversary, Step steps,
                                   Step sample_every,
                                   std::vector<Height>& height_trace,
                                   SimOptions options = {});

}  // namespace cvg
