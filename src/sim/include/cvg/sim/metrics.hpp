#pragma once

/// \file metrics.hpp
/// Composable measurement: every quantity the experiments print is a
/// *metric sink* observing the generic run loop (`run_engine`), not state
/// baked into an engine.  A `MetricSinkChain` is an ordered, non-owning list
/// of sinks; the loop hands each completed step to every sink as a
/// `StepView`, a substrate-agnostic snapshot that works identically for the
/// height, packet, bidirectional-path and DAG engines.
///
/// Shipped sinks: peak tracker, per-node peaks, height-trace sampler, delay
/// histogram, steps-per-second throughput profile, and a callback hook (the
/// certifier's entry point).  Composing them replaces the hand-rolled
/// metrics that `run()` / `run_traced()` / the benches used to carry.

#include <chrono>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "cvg/core/config.hpp"
#include "cvg/core/step.hpp"
#include "cvg/core/types.hpp"

namespace cvg {

/// Snapshot of one completed step, as every sink sees it.  `config` is the
/// post-step configuration; the engine-tracked counters are cumulative.
/// `record` is non-null only for substrates that produce sparse step records
/// (the height engine); `delivered_delays` is non-empty only for packet
/// engines, listing the delay of each packet delivered this step.
struct StepView {
  const Configuration& config;
  const StepRecord* record = nullptr;
  Step step = 0;  ///< 0-based index of the completed step
  Height peak_height = 0;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::span<const Step> delivered_delays = {};
};

/// Observer of a simulation run.  Sinks are value-ish objects owned by the
/// caller; the chain stores non-owning pointers, so a sink outlives the run
/// and is queried afterwards for what it measured.
class MetricSink {
 public:
  virtual ~MetricSink() = default;

  /// A fresh run over `node_count` nodes is starting.
  virtual void on_run_start(std::size_t node_count);

  /// One step completed.
  virtual void on_step(const StepView& view) = 0;

  /// The run finished (after the last step).
  virtual void on_run_end();
};

/// Ordered, non-owning chain of sinks; the generic run loop broadcasts to
/// every member.  Empty chains cost one branch per step.
class MetricSinkChain {
 public:
  /// Appends `sink`; the caller keeps ownership and must keep it alive for
  /// the duration of the run.  Returns *this for chaining.
  MetricSinkChain& add(MetricSink& sink);

  [[nodiscard]] bool empty() const noexcept { return sinks_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return sinks_.size(); }

  void run_start(std::size_t node_count);
  void step(const StepView& view);
  void run_end();

 private:
  std::vector<MetricSink*> sinks_;
};

/// Tracks the largest buffer height observed, and when it was first reached.
class PeakHeightSink final : public MetricSink {
 public:
  void on_run_start(std::size_t node_count) override;
  void on_step(const StepView& view) override;

  [[nodiscard]] Height peak() const noexcept { return peak_; }

  /// Step index at which `peak()` was first observed (0 if never risen).
  [[nodiscard]] Step at_step() const noexcept { return at_step_; }

 private:
  Height peak_ = 0;
  Step at_step_ = 0;
};

/// Tracks per-node peak heights by scanning the post-step configuration.
/// O(n) per step — matches the height engine's internal `peak_per_node()`
/// bit-for-bit (asserted by engine_equivalence_test), and provides the same
/// measurement on substrates that do not track it themselves.
class PerNodePeakSink final : public MetricSink {
 public:
  void on_run_start(std::size_t node_count) override;
  void on_step(const StepView& view) override;

  [[nodiscard]] std::span<const Height> peaks() const noexcept {
    return peaks_;
  }

 private:
  std::vector<Height> peaks_;
};

/// Samples the network-wide max height every `sample_every` steps into a
/// caller-owned trace (time-series plots; the FIE divergence experiment).
class HeightTraceSink final : public MetricSink {
 public:
  /// `sample_every` must be ≥ 1; `trace` must outlive the run.
  HeightTraceSink(Step sample_every, std::vector<Height>& trace);

  void on_step(const StepView& view) override;

 private:
  Step sample_every_;
  std::vector<Height>* trace_;
};

/// Aggregate delay statistics over delivered packets (histogram-backed, so
/// quantiles are exact).  Usable standalone (the packet engine embeds one)
/// or as the accumulator inside `DelayHistogramSink`.
class DelayStats {
 public:
  /// Records one delivered packet that spent `delay` steps in the network.
  void record(Step delay);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] Step max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Exact quantile from the per-delay histogram (q in [0, 1]).
  [[nodiscard]] Step quantile(double q) const noexcept;

  /// Raw histogram: `histogram()[d]` = packets delivered with delay d.
  [[nodiscard]] std::span<const std::uint64_t> histogram() const noexcept {
    return histogram_;
  }

  friend bool operator==(const DelayStats&, const DelayStats&) = default;

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  Step max_ = 0;
  std::vector<std::uint64_t> histogram_;
};

/// Accumulates the per-packet delay histogram from a delay-reporting engine
/// (`StepView::delivered_delays`); yields zeros on substrates that do not
/// report delays.
class DelayHistogramSink final : public MetricSink {
 public:
  void on_step(const StepView& view) override;

  [[nodiscard]] const DelayStats& stats() const noexcept { return stats_; }

 private:
  DelayStats stats_;
};

/// Wall-clock throughput profile of the run: steps and packets per second.
/// Timing spans first step to `on_run_end`.
class ThroughputSink final : public MetricSink {
 public:
  void on_run_start(std::size_t node_count) override;
  void on_step(const StepView& view) override;
  void on_run_end() override;

  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }
  [[nodiscard]] double seconds() const noexcept { return seconds_; }
  [[nodiscard]] double steps_per_second() const noexcept;
  [[nodiscard]] double deliveries_per_second() const noexcept;

 private:
  std::chrono::steady_clock::time_point start_{};
  std::uint64_t steps_ = 0;
  std::uint64_t delivered_ = 0;
  double seconds_ = 0.0;
};

/// Adapts an arbitrary callable into the chain — the certifier hook: wire
/// `PathCertifier`/`TreeCertifier::observe_step` (or any ad-hoc probe) into
/// the same run the other sinks measure.
class CallbackSink final : public MetricSink {
 public:
  using Callback = std::function<void(const StepView&)>;

  explicit CallbackSink(Callback callback);

  void on_step(const StepView& view) override;

 private:
  Callback callback_;
};

}  // namespace cvg
