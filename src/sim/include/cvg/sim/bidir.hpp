#pragma once

/// \file bidir.hpp
/// Undirected-path substrate for Theorem 3.3: on a bidirectional path the
/// algorithm may also forward packets *away* from the sink (the degree of
/// freedom that [17]'s balancing algorithms exploit), yet the paper proves
/// the Ω(c·log n/ℓ) buffer lower bound still holds (with a 4× worse
/// constant).  The paper omits that proof; this engine plus the staged
/// adversary in `bench_bidir` demonstrate the phenomenon empirically.
///
/// Model: nodes 0..n−1 on a path, node 0 the sink.  Every edge can carry
/// one packet in *each* direction per step (capacity c = 1 per direction).
/// A step is (inject ≤ 1 packet anywhere, then every node forwards at most
/// one packet towards the sink and at most one away, decided from
/// start-of-step heights).

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cvg/audit/locality_auditor.hpp"
#include "cvg/core/config.hpp"
#include "cvg/core/step.hpp"
#include "cvg/core/types.hpp"

namespace cvg {

/// A node's forwarding decision on the undirected path.
struct BidirSend {
  bool toward_sink = false;  ///< forward one packet to node v−1
  bool away = false;         ///< forward one packet to node v+1 (if any)
};

/// Local scheduling policy on the undirected path.  `decide` sees the
/// node's own height and both neighbours' heights (1-local); `kNoNode`-side
/// neighbours are reported as height −1 (the far end has no left
/// neighbour; the sink side reports the sink's constant 0).
class BidirPolicy {
 public:
  virtual ~BidirPolicy() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Decision for a node of height `own` whose sink-side neighbour has
  /// height `toward` and far-side neighbour `away` (−1 if none).
  [[nodiscard]] virtual BidirSend decide(Height own, Height toward,
                                         Height away) const = 0;
};

/// Odd-Even embedded in the undirected model (never sends away): the
/// baseline showing directed behaviour inside the richer model.
class BidirOddEven final : public BidirPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "bidir-odd-even"; }
  [[nodiscard]] BidirSend decide(Height own, Height toward,
                                 Height away) const override;
};

/// Height-diffusion balancer in the spirit of [17]: push towards the sink
/// whenever not uphill, and additionally spill *away* from the sink when
/// the far-side neighbour is at least 2 lower (so spilling strictly reduces
/// the local maximum).  Uses both links; ideal for spreading pile-ups.
class BidirDiffusion final : public BidirPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "bidir-diffusion"; }
  [[nodiscard]] BidirSend decide(Height own, Height toward,
                                 Height away) const override;
};

/// Discrete-event executor for the undirected path (capacity 1 per edge per
/// direction, rate-1 adversary).  Copyable — copies are checkpoints, which
/// the staged adversary uses exactly as with the directed engine.
class BidirPathSimulator {
 public:
  /// `audit_locality` arms the ℓ-locality auditor around the decision loop:
  /// every `BidirPolicy` sees exactly (own, toward, away), so the substrate
  /// itself declares the reads 1-local and the auditor verifies the loop
  /// never strays further.
  BidirPathSimulator(std::size_t node_count, const BidirPolicy& policy,
                     bool audit_locality = false);

  /// One step: inject at `t` (or `kNoNode`), then all nodes forward.
  void step_inject(NodeId t);

  /// Engine-concept entry point; the substrate is rate-1, so `injections`
  /// holds at most one node.
  void step(std::span<const NodeId> injections);

  [[nodiscard]] const Configuration& config() const noexcept { return config_; }
  [[nodiscard]] Step now() const noexcept { return now_; }
  [[nodiscard]] Height peak_height() const noexcept { return peak_; }
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t injected() const noexcept { return injected_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return config_.node_count();
  }

  /// What the locality auditor measured so far, or nullptr when auditing is
  /// off (models `LocalityAuditingEngine`).
  [[nodiscard]] const LocalityAuditReport* locality_report() const noexcept {
    return auditor_ ? &auditor_->report() : nullptr;
  }

  /// Replaces the configuration (checkpoint restore for scratch scenarios).
  void set_config(const Configuration& config);

 private:
  /// Per-instance step workspace (fixed-footprint invariant): the per-node
  /// decision buffer, sized once at construction and overwritten in place
  /// every step — the undirected substrate's whole per-step state.
  struct Workspace {
    std::vector<BidirSend> sends;
  };

  const BidirPolicy* policy_;
  Configuration config_;
  Workspace ws_;
  Step now_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t injected_ = 0;
  Height peak_ = 0;
  /// Armed around the decision loop when auditing is on.
  std::optional<LocalityAuditor> auditor_;
};

}  // namespace cvg
