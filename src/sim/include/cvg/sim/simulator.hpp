#pragma once

/// \file simulator.hpp
/// The height-based simulation engine: executes the paper's two-mini-step
/// round (§2) for an arbitrary policy on an arbitrary in-tree, tracking peak
/// buffer occupancy.  Packets are anonymous here (only buffer *heights*
/// evolve); use `PacketSimulator` when per-packet delays matter.
///
/// A `Simulator` is a value: copying it checkpoints the entire simulation
/// state, which is what the strategic Thm 3.1 adversary uses to evaluate its
/// two candidate scenarios before committing to one.

#include <span>

#include "cvg/core/config.hpp"
#include "cvg/core/step.hpp"
#include "cvg/core/types.hpp"
#include "cvg/policy/policy.hpp"
#include "cvg/topology/tree.hpp"

namespace cvg {

/// Knobs of the execution model.
struct SimOptions {
  /// Link capacity and adversary injection rate `c` (§2).
  Capacity capacity = 1;

  /// When forwarding decisions sample heights; see `StepSemantics`.
  StepSemantics semantics = StepSemantics::DecideBeforeInjection;

  /// Burstiness allowance σ (Cor 3.2 / the (σ, ρ) model of [21]): the
  /// adversary may inject up to `c·T + σ` packets over any window of T
  /// steps.  Enforced with a token bucket of size `c + σ` refilled by `c`
  /// per step.  σ = 0 recovers the plain rate-c adversary of §2.
  Capacity burstiness = 0;

  /// Re-validate every send vector against the feasibility contract
  /// (`validate_sends`).  Cheap insurance in tests; off in benchmarks.
  bool validate = false;
};

/// Discrete-event executor of (inject, forward) rounds.
class Simulator {
 public:
  /// Starts from the all-empty configuration.  `tree` and `policy` must
  /// outlive the simulator.
  Simulator(const Tree& tree, const Policy& policy, SimOptions options = {});

  /// Executes one step: the given injections land, then every node forwards
  /// according to the policy.  `injections` must respect the rate
  /// constraint: at most `capacity` packets per step plus whatever
  /// burstiness tokens have accumulated.  Returns the record of what
  /// happened.
  const StepRecord& step(std::span<const NodeId> injections);

  /// Convenience for the common rate-1 case: one injection (or none).
  const StepRecord& step_inject(NodeId t) {
    if (t == kNoNode) return step({});
    return step({&t, 1});
  }

  /// Current configuration (heights at the start of the next step).
  [[nodiscard]] const Configuration& config() const noexcept { return config_; }

  /// Number of completed steps.
  [[nodiscard]] Step now() const noexcept { return now_; }

  /// Highest buffer height observed at any node in any step so far.
  [[nodiscard]] Height peak_height() const noexcept { return peak_; }

  /// Per-node peak heights observed so far.
  [[nodiscard]] std::span<const Height> peak_per_node() const noexcept {
    return peak_per_node_;
  }

  /// Packets consumed by the sink so far.
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }

  /// Packets injected by the adversary so far.
  [[nodiscard]] std::uint64_t injected() const noexcept { return injected_; }

  /// Packets currently buffered in the network (= injected − delivered).
  [[nodiscard]] std::uint64_t in_flight() const noexcept {
    return injected_ - delivered_;
  }

  [[nodiscard]] const Tree& tree() const noexcept { return *tree_; }
  [[nodiscard]] const Policy& policy() const noexcept { return *policy_; }
  [[nodiscard]] const SimOptions& options() const noexcept { return options_; }

  /// Replaces the configuration (peaks are re-seeded from it).  For tests and
  /// the exhaustive search, which explore arbitrary reachable states.
  void set_config(Configuration config);

  /// Returns to the all-empty start state and zeroes all counters.
  void reset();

 private:
  const Tree* tree_;
  const Policy* policy_;
  SimOptions options_;
  Configuration config_;
  StepRecord record_;
  std::vector<Capacity> sends_;
  Step now_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t injected_ = 0;
  Height peak_ = 0;
  std::vector<Height> peak_per_node_;
  Capacity tokens_ = 0;  // burstiness token bucket (see SimOptions::burstiness)
};

}  // namespace cvg
