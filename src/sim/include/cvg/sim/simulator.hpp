#pragma once

/// \file simulator.hpp
/// The height-based simulation engine: executes the paper's two-mini-step
/// round (§2) for an arbitrary policy on an arbitrary in-tree, tracking peak
/// buffer occupancy.  Packets are anonymous here (only buffer *heights*
/// evolve); use `PacketSimulator` when per-packet delays matter.
///
/// Two step engines share one semantics (docs/MODEL.md §1a):
///
///  - the *dense* engine calls `Policy::compute_sends`, which scans all n
///    nodes — the right choice when a constant fraction of buffers is
///    occupied;
///  - the *sparse* engine calls `Policy::compute_sends_sparse` over the
///    incrementally-maintained *occupied set* (nodes with height > 0), so a
///    step costs O(occupied · log) instead of O(n) — the right choice for
///    the paper's rate-c workloads, where at most c buffers rise per step.
///
/// Dispatch is per step: sparse when the policy supports it and the occupied
/// set is below a crossover fraction of n (`SimOptions::sparse_mode` /
/// `sparse_crossover`), dense otherwise.  Both engines produce bit-identical
/// configurations, records and peaks (asserted by sparse_equivalence_test).
///
/// A `Simulator` is a value: copying it checkpoints the entire simulation
/// state, which is what the strategic Thm 3.1 adversary uses to evaluate its
/// two candidate scenarios before committing to one.

#include <optional>
#include <span>

#include "cvg/audit/locality_auditor.hpp"
#include "cvg/core/config.hpp"
#include "cvg/core/step.hpp"
#include "cvg/core/types.hpp"
#include "cvg/core/workspace.hpp"
#include "cvg/policy/policy.hpp"
#include "cvg/topology/tree.hpp"

namespace cvg {

/// Which step engine the simulator may use (see file comment).
enum class SparseMode : std::uint8_t {
  Auto,    ///< sparse below the crossover fraction, dense above (default)
  Always,  ///< sparse whenever the policy supports it (testing / benches)
  Never,   ///< dense always (the pre-sparse behaviour; baseline in benches)
};

/// Name of a sparse-mode value, for reports.
[[nodiscard]] constexpr const char* to_string(SparseMode mode) noexcept {
  switch (mode) {
    case SparseMode::Auto: return "auto";
    case SparseMode::Always: return "always";
    case SparseMode::Never: return "never";
  }
  return "?";
}

/// Default crossover: sparse while |occupied| < kSparseCrossover · n.  Tuned
/// with `bench_step_engine`: the sparse step's per-sender cost is ~4× the
/// dense step's per-node cost (sort + indirection), so the engines break
/// even near a quarter occupancy; see docs/MODEL.md §1a.
inline constexpr double kSparseCrossover = 0.25;

/// Knobs of the execution model.
struct SimOptions {
  /// Link capacity and adversary injection rate `c` (§2).
  Capacity capacity = 1;

  /// When forwarding decisions sample heights; see `StepSemantics`.
  StepSemantics semantics = StepSemantics::DecideBeforeInjection;

  /// Burstiness allowance σ (Cor 3.2 / the (σ, ρ) model of [21]): the
  /// adversary may inject up to `c·T + σ` packets over any window of T
  /// steps.  Enforced with a token bucket of size `c + σ` refilled by `c`
  /// per step.  σ = 0 recovers the plain rate-c adversary of §2.
  Capacity burstiness = 0;

  /// Re-validate every send vector against the feasibility contract
  /// (`validate_sends` / `validate_sends_sparse`).  Cheap insurance in
  /// tests; off in benchmarks.
  bool validate = false;

  /// Step-engine selection (see `SparseMode`).  `CentralizedFie` and any
  /// policy with `supports_sparse() == false` always run dense, regardless.
  SparseMode sparse_mode = SparseMode::Auto;

  /// Crossover fraction for `SparseMode::Auto`; ≤ 0 means "use the
  /// auto-tuned default `kSparseCrossover`".
  double sparse_crossover = 0.0;

  /// Run every policy call under the ℓ-locality auditor
  /// (cvg/audit/locality_auditor.hpp): each height read the policy makes is
  /// recorded and checked against its declared `locality()` radius, and any
  /// read beyond ℓ hops of the deciding node aborts with a diagnostic
  /// naming the policy, node, step and hop distance.  Centralized policies
  /// are recorded but not checked.  Off (the default) costs nothing beyond
  /// a predicted branch per height read.
  bool audit_locality = false;
};

/// Discrete-event executor of (inject, forward) rounds.
class Simulator {
 public:
  /// Starts from the all-empty configuration.  `tree` and `policy` must
  /// outlive the simulator.
  Simulator(const Tree& tree, const Policy& policy, SimOptions options = {});

  /// Executes one step: the given injections land, then every node forwards
  /// according to the policy.  `injections` must respect the rate
  /// constraint: at most `capacity` packets per step plus whatever
  /// burstiness tokens have accumulated.  Returns the record of what
  /// happened.
  const StepRecord& step(std::span<const NodeId> injections);

  /// Convenience for the common rate-1 case: one injection (or none).
  const StepRecord& step_inject(NodeId t) {
    if (t == kNoNode) return step({});
    return step({&t, 1});
  }

  /// Current configuration (heights at the start of the next step).
  [[nodiscard]] const Configuration& config() const noexcept { return config_; }

  /// The record of the most recently executed step (meaningful once `step`
  /// has run at least once).  The generic run loop and the certifier hook
  /// read it between steps; `step` overwrites it in place.
  [[nodiscard]] const StepRecord& last_record() const noexcept {
    return ws_.record;
  }

  /// Number of completed steps.
  [[nodiscard]] Step now() const noexcept { return now_; }

  /// Highest buffer height observed at any node in any step so far.
  [[nodiscard]] Height peak_height() const noexcept { return peak_; }

  /// Per-node peak heights observed so far.
  [[nodiscard]] std::span<const Height> peak_per_node() const noexcept {
    return peak_per_node_;
  }

  /// Packets consumed by the sink so far.
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }

  /// Packets injected by the adversary so far.
  [[nodiscard]] std::uint64_t injected() const noexcept { return injected_; }

  /// Packets currently buffered in the network (= injected − delivered).
  [[nodiscard]] std::uint64_t in_flight() const noexcept {
    return injected_ - delivered_;
  }

  /// Nodes with height > 0, in unspecified order (the sparse engine's key).
  [[nodiscard]] std::span<const NodeId> occupied() const noexcept {
    return ws_.occupied.items();
  }

  /// Steps executed by each engine so far (diagnostics; benches and the
  /// equivalence tests use these to verify which engine actually ran).
  [[nodiscard]] std::uint64_t sparse_steps() const noexcept {
    return sparse_steps_;
  }
  [[nodiscard]] std::uint64_t dense_steps() const noexcept {
    return dense_steps_;
  }

  [[nodiscard]] const Tree& tree() const noexcept { return *tree_; }
  [[nodiscard]] const Policy& policy() const noexcept { return *policy_; }
  [[nodiscard]] const SimOptions& options() const noexcept { return options_; }

  /// What the locality auditor measured so far, or nullptr when
  /// `SimOptions::audit_locality` is off (models `LocalityAuditingEngine`).
  [[nodiscard]] const LocalityAuditReport* locality_report() const noexcept {
    return auditor_ ? &auditor_->report() : nullptr;
  }

  /// Replaces the configuration (peaks are re-seeded from it; the occupied
  /// set is rebuilt).  For tests and the searches, which explore arbitrary
  /// reachable states.  Takes a reference so repeated checkpoint/restore
  /// cycles reuse the internal buffer instead of reallocating.
  void set_config(const Configuration& config);

  /// Returns to the all-empty start state and zeroes all counters.
  void reset();

 private:
  /// Runs the policy (dense or sparse) and leaves the step's forwarding
  /// events in `record_.sends`, sorted by node id.
  void compute_step_sends();

  /// True when this step should dispatch to the sparse engine.
  [[nodiscard]] bool use_sparse_now() const;

  /// Adds `delta` to node `v`'s height, keeping the occupied set in sync.
  void add_height(NodeId v, Height delta);

  /// Recomputes the occupied set from `config_` (O(n); used on reseed only).
  void rebuild_occupied();

  const Tree* tree_;
  const Policy* policy_;
  SimOptions options_;
  Configuration config_;
  /// Every per-step buffer — record, dense send scratch, occupied set —
  /// sized once at construction; `step()` only resets it (fixed-footprint
  /// invariant, pinned by allocation_audit_test).
  StepWorkspace ws_;
  Step now_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t injected_ = 0;
  std::uint64_t sparse_steps_ = 0;
  std::uint64_t dense_steps_ = 0;
  Height peak_ = 0;
  std::vector<Height> peak_per_node_;
  Capacity tokens_ = 0;  // burstiness token bucket (see SimOptions::burstiness)
  /// Armed around each policy call when `SimOptions::audit_locality` is on;
  /// copies of the simulator carry independent copies of the audit state.
  std::optional<LocalityAuditor> auditor_;
};

}  // namespace cvg
