#pragma once

/// \file engine_run.hpp
/// The single run loop behind every experiment: drive any `Engine` (height,
/// packet, bidirectional-path or DAG substrate) with an injection source for
/// a number of steps, broadcasting each completed step to a `MetricSinkChain`
/// and, optionally, to a substrate-typed observer (the certifier hook).
///
/// The loop replaces the four near-duplicate harness bodies the substrates
/// used to carry (`run()`, `run_traced()`, and the hand-rolled loops in the
/// bidir/DAG/packet benches).  The tree-specific `run()` / `run_traced()`
/// wrappers in runner.hpp are thin adapters over this loop and remain
/// bit-for-bit identical to the pre-refactor harness (asserted by
/// engine_equivalence_test).

#include <optional>
#include <utility>
#include <vector>

#include "cvg/core/engine.hpp"
#include "cvg/sim/metrics.hpp"

namespace cvg {

/// Result of one simulation run.
struct RunResult {
  /// Largest buffer height any node ever reached.
  Height peak_height = 0;

  /// Per-node peak heights (filled by engines that track them; attach a
  /// `PerNodePeakSink` to measure them on substrates that do not).
  std::vector<Height> peak_per_node;

  /// Heights at the end of the run.
  Configuration final_config;

  /// Totals over the run.
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  Step steps = 0;

  /// What the ℓ-locality auditor measured, when the engine ran with
  /// `SimOptions::audit_locality` (or the substrate's equivalent toggle) on;
  /// empty otherwise.  A populated report implies the run was audit-clean —
  /// violations abort instead of returning.
  std::optional<LocalityAuditReport> locality;
};

/// Snapshots an engine's cumulative counters into a `RunResult`.
template <Engine E>
[[nodiscard]] RunResult engine_result(const E& engine) {
  RunResult result;
  result.peak_height = engine.peak_height();
  if constexpr (PeakTrackingEngine<E>) {
    result.peak_per_node.assign(engine.peak_per_node().begin(),
                                engine.peak_per_node().end());
  }
  result.final_config = engine.config();
  result.injected = engine.injected();
  result.delivered = engine.delivered();
  result.steps = engine.now();
  if constexpr (LocalityAuditingEngine<E>) {
    if (const LocalityAuditReport* report = engine.locality_report()) {
      result.locality = *report;
    }
  }
  return result;
}

/// Drives `engine` for `steps` rounds.  Each round: `inject(config, step,
/// out)` appends this step's injections (the adversary side), the engine
/// executes the round, then the step is broadcast to `sinks` (if any) and to
/// `observe(engine, record)` — `record` is the engine's sparse step record,
/// or nullptr for substrates without one.  Returns the engine's cumulative
/// counters; the engine is left in its final state for further stepping.
template <Engine E, class InjectFn, class ObserveFn>
RunResult run_engine(E& engine, InjectFn&& inject, Step steps,
                     MetricSinkChain* sinks, ObserveFn&& observe) {
  if (sinks != nullptr) sinks->run_start(engine.config().node_count());
  std::vector<NodeId> injections;
  for (Step s = 0; s < steps; ++s) {
    injections.clear();
    inject(engine.config(), s, injections);
    engine.step(std::span<const NodeId>(injections));

    const StepRecord* record = nullptr;
    if constexpr (RecordingEngine<E>) record = &engine.last_record();
    observe(std::as_const(engine), record);

    if (sinks != nullptr) {
      StepView view{engine.config()};
      view.record = record;
      view.step = s;
      view.peak_height = engine.peak_height();
      view.injected = engine.injected();
      view.delivered = engine.delivered();
      if constexpr (DelayReportingEngine<E>) {
        view.delivered_delays = engine.delivered_delays_last_step();
      }
      sinks->step(view);
    }
  }
  if (sinks != nullptr) sinks->run_end();
  return engine_result(engine);
}

/// `run_engine` without an observer.
template <Engine E, class InjectFn>
RunResult run_engine(E& engine, InjectFn&& inject, Step steps,
                     MetricSinkChain* sinks = nullptr) {
  return run_engine(engine, std::forward<InjectFn>(inject), steps, sinks,
                    [](const E&, const StepRecord*) {});
}

}  // namespace cvg
