#pragma once

/// \file lane_engine.hpp
/// The lane-batched step engine: K independent height simulations of the
/// same (tree, policy, options) bucket advance in lockstep, with every
/// height stored lane-contiguous (`height[node*K + lane]`,
/// `cvg/core/lanes.hpp`) so each step is a handful of stride-1 passes the
/// compiler vectorizes across lanes.  One batched step costs roughly one
/// scalar step regardless of K, which is what makes the search-shaped
/// consumers (sweeps, the corpus fuzzer, exhaustive expansion, cvg_serve
/// sweep jobs) an order of magnitude faster per schedule.
///
/// Semantics are *bit-identical* to the scalar `Simulator` by construction
/// and by test (tests/lane_engine_test.cpp):
///
///  - sends are computed branch-free from the decision-time heights via the
///    policy's `LaneRule` descriptor, clamped exactly like
///    `compute_sends_per_node` (`min(desired, capacity, own)`);
///  - injections, forwarding and the per-lane burstiness token bucket follow
///    the scalar mini-step order for both `StepSemantics` values;
///  - the per-lane peak is a max-scan over final post-step heights, which
///    equals the scalar engine's targeted update because only injected nodes
///    and receiving parents can rise in a step (every other node's height is
///    bounded by the previous peak).
///
/// The engine has two faces:
///
///  - the **lane-block face** (`step_lanes`, `halt_lane`, `lane_peak`, …)
///    used by batch drivers: per-lane injection streams, per-lane
///    termination masks (a halted lane is frozen — no injections, no
///    forwarding, counters stop — so schedules of different lengths share
///    one block), per-lane counters;
///  - the **`Engine`-concept face** (`step`, `config`, `peak_height`, …):
///    lane 0 is the *designated scalar lane*.  `step(injections)` injects
///    lane 0 and advances every lane in lockstep, drawing other lanes'
///    injections from schedules bound via `bind_shadow_schedule`; the
///    concept accessors report lane 0.  This is what lets `run_engine`,
///    `MetricSink` chains and `RunResult` drive a whole block unchanged —
///    and it is also why ℓ-locality audits keep their meaning: audited runs
///    execute on the scalar engine (see `supported()`), and any lane-block
///    result can be re-derived on the designated scalar lane
///    (docs/ANALYSIS.md).
///
/// Policies without a `LaneRule`, centralized policies, and runs that ask
/// for validation or locality auditing are *not supported* here; callers use
/// `supported()` (or the `replay_schedules` driver, which falls back to the
/// scalar engine per schedule) so every bucket still runs somewhere.

#include <span>
#include <vector>

#include "cvg/core/config.hpp"
#include "cvg/core/lanes.hpp"
#include "cvg/policy/policy.hpp"
#include "cvg/sim/adversary.hpp"
#include "cvg/sim/simulator.hpp"
#include "cvg/topology/tree.hpp"

namespace cvg {

/// A fixed injection schedule: `schedule[s]` lists step s's injections.
/// Structurally identical to `adversary::Schedule` (the alias lives in the
/// adversary library, which sits above this one).
using LaneSchedule = std::vector<std::vector<NodeId>>;

/// Executes K lockstep simulations of one (tree, policy, options) bucket.
/// Copyable: copying checkpoints the entire block, like the scalar engine.
class LaneSimulator {
 public:
  /// Aborts unless `supported(policy, options)`; `tree` and `policy` must
  /// outlive the simulator.  All lanes start from the all-empty
  /// configuration.
  LaneSimulator(const Tree& tree, const Policy& policy, SimOptions options,
                std::size_t lanes);

  /// True when this bucket can run on the lane engine: the policy advertises
  /// a `LaneRule` and the run asks for neither send validation nor locality
  /// auditing (both are scalar-engine concerns: validation re-checks a
  /// policy's virtual `compute_sends`, which the lane kernels bypass, and
  /// audits must observe real policy reads — see docs/ANALYSIS.md).
  [[nodiscard]] static bool supported(const Policy& policy,
                                      const SimOptions& options);

  // ---- lane-block face ---------------------------------------------------

  /// Advances every active lane one step; `injections[l]` is lane l's
  /// injection list (must be empty for halted lanes) and must respect the
  /// per-lane token bucket, exactly like the scalar engine.
  void step_lanes(std::span<const std::span<const NodeId>> injections);

  /// Freezes lane `lane`: no further injections, forwarding or counter
  /// movement.  Lets schedules of different lengths share one block while
  /// each lane stops at exactly its own horizon.
  void halt_lane(std::size_t lane);
  [[nodiscard]] bool lane_active(std::size_t lane) const {
    return amask_[lane] != 0;
  }

  [[nodiscard]] Height lane_peak(std::size_t lane) const {
    return peak_[lane];
  }
  [[nodiscard]] std::uint64_t lane_injected(std::size_t lane) const {
    return injected_[lane];
  }
  [[nodiscard]] std::uint64_t lane_delivered(std::size_t lane) const {
    return delivered_[lane];
  }

  /// Materializes lane `lane`'s configuration (a strided gather).
  [[nodiscard]] Configuration lane_config(std::size_t lane) const;

  /// In-place variant of `lane_config`: gathers into `out`, which must
  /// already have this simulator's node count.  The exhaustive search calls
  /// this once per (state, injection) pair — reusing one scratch
  /// configuration keeps the expansion loop allocation-free.
  void lane_config_into(std::size_t lane, Configuration& out) const;

  /// Reseeds *every* lane from `config` (peaks fold it in, mirroring the
  /// scalar `set_config`) — the exhaustive search seeds a block with one
  /// frontier state and expands all injection choices as lanes.
  void set_config_all_lanes(const Configuration& config);

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_; }
  [[nodiscard]] const Tree& tree() const noexcept { return *tree_; }
  [[nodiscard]] const Policy& policy() const noexcept { return *policy_; }
  [[nodiscard]] const SimOptions& options() const noexcept { return options_; }

  // ---- Engine-concept face (designated scalar lane 0) --------------------

  /// Binds the fixed injection stream of a shadow lane (`lane ≥ 1`); the
  /// facade `step` feeds lane `lane` from it, idle once it runs out.
  void bind_shadow_schedule(std::size_t lane, LaneSchedule schedule);

  /// One lockstep round: `injections` land on lane 0, shadow lanes draw
  /// from their bound schedules.
  void step(std::span<const NodeId> injections);

  [[nodiscard]] const Configuration& config() const noexcept {
    return lane0_config_;
  }
  [[nodiscard]] Step now() const noexcept { return now_; }
  [[nodiscard]] Height peak_height() const noexcept { return peak_[0]; }
  [[nodiscard]] std::uint64_t injected() const noexcept {
    return injected_[0];
  }
  [[nodiscard]] std::uint64_t delivered() const noexcept {
    return delivered_[0];
  }

 private:
  template <typename WantsFn>
  void path_pass(WantsFn wants);
  template <typename WantsFn>
  void compute_per_node(WantsFn wants);
  template <typename WantsFn>
  void run_rule(WantsFn wants);
  void compute_max_window();
  void compute_arbitrated();
  void apply_pass();
  void forward_pass();
  void scatter_injections(std::span<const std::span<const NodeId>> injections,
                          bool fix_peaks);
  void refresh_lane0();

  const Tree* tree_;
  const Policy* policy_;
  SimOptions options_;
  LaneRule rule_;
  std::size_t lanes_;
  std::size_t n_;
  /// True when the fused single-pass path kernel applies: canonical path
  /// topology and a rule expressible as wants(own, succ).
  bool path_fast_;

  LanePlane<Height> h_;
  LanePlane<Capacity> send_;  ///< empty when `path_fast_` (carry_ suffices)
  std::vector<Height> peak_;
  std::vector<Capacity> amask_;  ///< 1 = active, 0 = halted (branch-free)
  std::vector<std::uint64_t> injected_;
  std::vector<std::uint64_t> delivered_;
  std::vector<Capacity> tokens_;
  Step now_ = 0;

  Configuration lane0_config_;
  std::vector<LaneSchedule> shadow_;

  /// Per-instance step workspace (fixed-footprint invariant): every scratch
  /// plane the lane kernels touch, sized once at construction — including
  /// the halt masks (`amask_` above) these kernels read.  The steady-state
  /// lane step never allocates (pinned by allocation_audit_test).
  struct Workspace {
    std::vector<Capacity> carry;
    std::vector<Height> peak_scratch;
    std::vector<Height> winner_h;
    std::vector<std::int32_t> winner_idx;
    std::vector<Height> window_max;
    std::vector<std::span<const NodeId>> span_scratch;
  };
  Workspace ws_;
};

/// Outcome of replaying one schedule (the counters a sweep reports).
struct LaneReplayOutcome {
  Height peak = 0;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  Step steps = 0;
};

/// Default lane-block width for the batch drivers: wide enough to saturate
/// vector units with headroom, small enough that a block's working set
/// (n · lanes heights) stays cache-resident for the common sweep sizes.
inline constexpr std::size_t kDefaultReplayLanes = 256;

/// Replays each schedule for exactly `schedule.size()` steps against the
/// bucket and reports peak/injected/delivered — the batch twin of the corpus
/// `replay_peak` loop.  Runs lane blocks of up to `max_lanes` when
/// `LaneSimulator::supported`, and falls back to the scalar engine per
/// schedule otherwise, so results are bit-identical either way.
[[nodiscard]] std::vector<LaneReplayOutcome> replay_schedules(
    const Tree& tree, const Policy& policy, const SimOptions& options,
    std::span<const LaneSchedule> schedules,
    std::size_t max_lanes = kDefaultReplayLanes);

/// Unrolls an *oblivious* adversary (`Adversary::oblivious`) into the fixed
/// schedule it would produce over `steps` steps.  Aborts on adaptive
/// adversaries — their plans depend on live heights, which a pre-unrolled
/// schedule cannot know.
[[nodiscard]] LaneSchedule unroll_oblivious(const Tree& tree, Adversary& adv,
                                            Step steps, Capacity capacity);

}  // namespace cvg
