#pragma once

/// \file adversary.hpp
/// The adversary interface of the model (§2): in the first mini-step of every
/// step, the adversary injects a total of at most `c` packets at nodes of its
/// choice.  Concrete strategies — including the constructive lower-bound
/// adversaries from the paper's proofs — live in `cvg::adversary`.

#include <memory>
#include <string>
#include <vector>

#include "cvg/core/config.hpp"
#include "cvg/core/types.hpp"
#include "cvg/topology/tree.hpp"

namespace cvg {

/// Abstract rate-`c` adversary.  Implementations may be stateful (the staged
/// Thm 3.1 adversary tracks its current stage and block) and adaptive (the
/// `plan` call observes the full configuration — the model's adversary is
/// omniscient; it is the *algorithm* that must be local, not the adversary).
class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Stable identifier for reports and the adversary registry.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Chooses this step's injections.  Appends at most `capacity` node ids to
  /// `out` (one entry per injected packet; repeats allowed).  `config` is the
  /// configuration at the start of the step, before any injection.
  virtual void plan(const Tree& tree, const Configuration& config, Step step,
                    Capacity capacity, std::vector<NodeId>& out) = 0;

  /// Hook invoked when a fresh simulation starts; stateful adversaries reset
  /// their stage bookkeeping here so an instance can be reused across runs.
  virtual void on_simulation_start() {}

  /// True when `plan` never reads `config` — the adversary's schedule is a
  /// function of (tree, step, capacity, own state) alone.  Oblivious
  /// adversaries can be unrolled into a fixed schedule up front and replayed
  /// on any engine (in particular, many of them per lane block on the
  /// lane-batched engine); adaptive ones must be driven against a live
  /// simulation.  Conservative default: adaptive.
  [[nodiscard]] virtual bool oblivious() const { return false; }
};

/// Owning handle used throughout the library.
using AdversaryPtr = std::unique_ptr<Adversary>;

}  // namespace cvg
