file(REMOVE_RECURSE
  "libcvg_sim.a"
)
