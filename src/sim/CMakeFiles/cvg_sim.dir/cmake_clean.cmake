file(REMOVE_RECURSE
  "CMakeFiles/cvg_sim.dir/src/bidir.cpp.o"
  "CMakeFiles/cvg_sim.dir/src/bidir.cpp.o.d"
  "CMakeFiles/cvg_sim.dir/src/lane_engine.cpp.o"
  "CMakeFiles/cvg_sim.dir/src/lane_engine.cpp.o.d"
  "CMakeFiles/cvg_sim.dir/src/metrics.cpp.o"
  "CMakeFiles/cvg_sim.dir/src/metrics.cpp.o.d"
  "CMakeFiles/cvg_sim.dir/src/packet_sim.cpp.o"
  "CMakeFiles/cvg_sim.dir/src/packet_sim.cpp.o.d"
  "CMakeFiles/cvg_sim.dir/src/runner.cpp.o"
  "CMakeFiles/cvg_sim.dir/src/runner.cpp.o.d"
  "CMakeFiles/cvg_sim.dir/src/simulator.cpp.o"
  "CMakeFiles/cvg_sim.dir/src/simulator.cpp.o.d"
  "libcvg_sim.a"
  "libcvg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
