# Empty compiler generated dependencies file for cvg_sim.
# This may be replaced when dependencies are built.
