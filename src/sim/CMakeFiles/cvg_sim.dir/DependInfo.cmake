
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/src/bidir.cpp" "src/sim/CMakeFiles/cvg_sim.dir/src/bidir.cpp.o" "gcc" "src/sim/CMakeFiles/cvg_sim.dir/src/bidir.cpp.o.d"
  "/root/repo/src/sim/src/lane_engine.cpp" "src/sim/CMakeFiles/cvg_sim.dir/src/lane_engine.cpp.o" "gcc" "src/sim/CMakeFiles/cvg_sim.dir/src/lane_engine.cpp.o.d"
  "/root/repo/src/sim/src/metrics.cpp" "src/sim/CMakeFiles/cvg_sim.dir/src/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/cvg_sim.dir/src/metrics.cpp.o.d"
  "/root/repo/src/sim/src/packet_sim.cpp" "src/sim/CMakeFiles/cvg_sim.dir/src/packet_sim.cpp.o" "gcc" "src/sim/CMakeFiles/cvg_sim.dir/src/packet_sim.cpp.o.d"
  "/root/repo/src/sim/src/runner.cpp" "src/sim/CMakeFiles/cvg_sim.dir/src/runner.cpp.o" "gcc" "src/sim/CMakeFiles/cvg_sim.dir/src/runner.cpp.o.d"
  "/root/repo/src/sim/src/simulator.cpp" "src/sim/CMakeFiles/cvg_sim.dir/src/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/cvg_sim.dir/src/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/core/CMakeFiles/cvg_core.dir/DependInfo.cmake"
  "/root/repo/src/topology/CMakeFiles/cvg_topology.dir/DependInfo.cmake"
  "/root/repo/src/policy/CMakeFiles/cvg_policy.dir/DependInfo.cmake"
  "/root/repo/src/audit/CMakeFiles/cvg_audit.dir/DependInfo.cmake"
  "/root/repo/src/util/CMakeFiles/cvg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
