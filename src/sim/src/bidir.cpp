#include "cvg/sim/bidir.hpp"

#include <algorithm>

#include "cvg/core/engine.hpp"
#include "cvg/policy/standard.hpp"
#include "cvg/util/check.hpp"

namespace cvg {

static_assert(Engine<BidirPathSimulator>);
static_assert(LocalityAuditingEngine<BidirPathSimulator>);

BidirSend BidirOddEven::decide(Height own, Height toward,
                               Height /*away*/) const {
  BidirSend send;
  send.toward_sink = own >= 1 && OddEvenPolicy::rule(own, toward);
  return send;
}

BidirSend BidirDiffusion::decide(Height own, Height toward,
                                 Height away) const {
  BidirSend send;
  if (own >= 1 && own >= toward) send.toward_sink = true;
  // Spill backwards only when it strictly helps (2 lower) and a neighbour
  // exists there; require a second packet so the sink-bound one still goes.
  const Height remaining = send.toward_sink ? own - 1 : own;
  if (away >= 0 && remaining >= 1 && away <= own - 2) send.away = true;
  return send;
}

BidirPathSimulator::BidirPathSimulator(std::size_t node_count,
                                       const BidirPolicy& policy,
                                       bool audit_locality)
    : policy_(&policy), config_(node_count) {
  CVG_CHECK(node_count >= 2);
  ws_.sends.resize(node_count);
  if (audit_locality) {
    auditor_ = LocalityAuditor::for_path(node_count, policy.name(),
                                         /*declared_locality=*/1);
  }
}

void BidirPathSimulator::set_config(const Configuration& config) {
  CVG_CHECK(config.node_count() == config_.node_count());
  config_ = config;
  peak_ = std::max(peak_, config_.max_height());
}

void BidirPathSimulator::step(std::span<const NodeId> injections) {
  CVG_CHECK(injections.size() <= 1)
      << "the undirected-path substrate is rate-1";
  step_inject(injections.empty() ? kNoNode : injections.front());
}

void BidirPathSimulator::step_inject(NodeId t) {
  const std::size_t n = config_.node_count();

  // Decisions from start-of-step heights (decide-before semantics, matching
  // the directed engine).  The loop itself performs the height reads on the
  // policy's behalf, so it owns the audit scopes too.
  {
    const ScopedLocalityAudit audit(auditor_ ? &*auditor_ : nullptr, now_);
    for (NodeId v = 1; v < n; ++v) {
      const DecisionScope audit_scope(v);
      const Height own = config_.height(v);
      if (own <= 0) {
        ws_.sends[v] = {};
        continue;
      }
      const Height toward = config_.height(v - 1);
      const Height away = (v + 1 < n) ? config_.height(v + 1) : Height{-1};
      ws_.sends[v] = policy_->decide(own, toward, away);
      // Clamp: a node with one packet cannot send two.
      if (own == 1 && ws_.sends[v].toward_sink && ws_.sends[v].away) {
        ws_.sends[v].away = false;
      }
      if (v + 1 >= n) ws_.sends[v].away = false;
    }
  }

  if (t != kNoNode) {
    CVG_CHECK(t < n);
    ++injected_;
    if (t == 0) {
      ++delivered_;
    } else {
      config_.add(t, 1);
    }
  }

  for (NodeId v = 1; v < n; ++v) {
    Height outgoing = 0;
    if (ws_.sends[v].toward_sink) {
      ++outgoing;
      if (v - 1 == 0) {
        ++delivered_;
      } else {
        config_.add(v - 1, 1);
      }
    }
    if (ws_.sends[v].away) {
      ++outgoing;
      config_.add(v + 1, 1);
    }
    if (outgoing > 0) config_.add(v, -outgoing);
  }

  peak_ = std::max(peak_, config_.max_height());
  ++now_;
}

}  // namespace cvg
