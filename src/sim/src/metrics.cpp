#include "cvg/sim/metrics.hpp"

#include <algorithm>

#include "cvg/util/check.hpp"

namespace cvg {

void MetricSink::on_run_start(std::size_t /*node_count*/) {}
void MetricSink::on_run_end() {}

MetricSinkChain& MetricSinkChain::add(MetricSink& sink) {
  sinks_.push_back(&sink);
  return *this;
}

void MetricSinkChain::run_start(std::size_t node_count) {
  for (MetricSink* sink : sinks_) sink->on_run_start(node_count);
}

void MetricSinkChain::step(const StepView& view) {
  for (MetricSink* sink : sinks_) sink->on_step(view);
}

void MetricSinkChain::run_end() {
  for (MetricSink* sink : sinks_) sink->on_run_end();
}

void PeakHeightSink::on_run_start(std::size_t /*node_count*/) {
  peak_ = 0;
  at_step_ = 0;
}

void PeakHeightSink::on_step(const StepView& view) {
  if (view.peak_height > peak_) {
    peak_ = view.peak_height;
    at_step_ = view.step;
  }
}

void PerNodePeakSink::on_run_start(std::size_t node_count) {
  peaks_.assign(node_count, 0);
}

void PerNodePeakSink::on_step(const StepView& view) {
  const std::size_t n = view.config.node_count();
  CVG_DCHECK(peaks_.size() == n);
  for (NodeId v = 0; v < n; ++v) {
    peaks_[v] = std::max(peaks_[v], view.config.height(v));
  }
}

HeightTraceSink::HeightTraceSink(Step sample_every, std::vector<Height>& trace)
    : sample_every_(sample_every), trace_(&trace) {
  CVG_CHECK(sample_every >= 1);
}

void HeightTraceSink::on_step(const StepView& view) {
  if ((view.step + 1) % sample_every_ == 0) {
    trace_->push_back(view.config.max_height());
  }
}

void DelayStats::record(Step delay) {
  ++count_;
  sum_ += delay;
  max_ = std::max(max_, delay);
  if (histogram_.size() <= delay) histogram_.resize(delay + 1, 0);
  ++histogram_[delay];
}

Step DelayStats::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank = static_cast<std::uint64_t>(
      clamped * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (Step d = 0; d < histogram_.size(); ++d) {
    seen += histogram_[d];
    if (seen > rank) return d;
  }
  return max_;
}

void DelayHistogramSink::on_step(const StepView& view) {
  for (const Step delay : view.delivered_delays) stats_.record(delay);
}

void ThroughputSink::on_run_start(std::size_t /*node_count*/) {
  start_ = std::chrono::steady_clock::now();
  steps_ = 0;
  delivered_ = 0;
  seconds_ = 0.0;
}

void ThroughputSink::on_step(const StepView& view) {
  ++steps_;
  delivered_ = view.delivered;
}

void ThroughputSink::on_run_end() {
  seconds_ = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start_)
                 .count();
}

double ThroughputSink::steps_per_second() const noexcept {
  return seconds_ > 0.0 ? static_cast<double>(steps_) / seconds_ : 0.0;
}

double ThroughputSink::deliveries_per_second() const noexcept {
  return seconds_ > 0.0 ? static_cast<double>(delivered_) / seconds_ : 0.0;
}

CallbackSink::CallbackSink(Callback callback)
    : callback_(std::move(callback)) {
  CVG_CHECK(callback_ != nullptr);
}

void CallbackSink::on_step(const StepView& view) { callback_(view); }

}  // namespace cvg
