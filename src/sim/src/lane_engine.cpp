#include "cvg/sim/lane_engine.hpp"

#include <algorithm>

#include "cvg/core/engine.hpp"

namespace cvg {

// The lane block drives run_engine, MetricSink chains and RunResult through
// its designated scalar lane.  It models the base concept only: step records,
// per-node peaks and locality audits stay scalar-engine features (the latter
// by design — see the file comment).
static_assert(Engine<LaneSimulator>);

namespace {

/// The `compute_sends_per_node` clamp — min(desired, capacity, own) — with
/// the empty-node zero folded in (heights are never negative, so `own = 0`
/// clamps every desire to 0) and the halted-lane mask multiplied on top.
/// Pure integer select/min arithmetic: one lane per SIMD element.
inline Capacity clamp_send(Capacity desired, Capacity cap, Height own,
                           Capacity amask) noexcept {
  return static_cast<Capacity>(
      std::min({desired, cap, static_cast<Capacity>(own)}) * amask);
}

}  // namespace

bool LaneSimulator::supported(const Policy& policy, const SimOptions& options) {
  return policy.lane_rule().has_value() && !policy.is_centralized() &&
         !options.validate && !options.audit_locality;
}

LaneSimulator::LaneSimulator(const Tree& tree, const Policy& policy,
                             SimOptions options, std::size_t lanes)
    : tree_(&tree),
      policy_(&policy),
      options_(options),
      lanes_(lanes),
      n_(tree.node_count()) {
  CVG_CHECK(lanes_ >= 1);
  CVG_CHECK(options_.capacity >= 1);
  CVG_CHECK(options_.burstiness >= 0);
  CVG_CHECK(supported(policy, options_))
      << "bucket (policy '" << policy.name()
      << "') is not lane-batchable; run it on the scalar engine";
  rule_ = *policy.lane_rule();

  // The fused single-pass kernel applies on the canonical path whenever the
  // rule reads only (own, succ): every per-node rule qualifies, sibling
  // arbitration degenerates to the bare parity rule (every sibling group has
  // one member), and a 1-wide window *is* the successor read.
  path_fast_ = tree.is_path() && (rule_.kind != LaneRuleKind::MaxWindow ||
                                  rule_.param == 1);

  h_ = LanePlane<Height>(n_, lanes_, 0);
  if (!path_fast_) send_ = LanePlane<Capacity>(n_, lanes_, 0);
  peak_.assign(lanes_, 0);
  amask_.assign(lanes_, 1);
  injected_.assign(lanes_, 0);
  delivered_.assign(lanes_, 0);
  tokens_.assign(lanes_, options_.burstiness);
  lane0_config_ = Configuration(n_);
  shadow_.resize(lanes_);
  ws_.carry.assign(lanes_, 0);
  ws_.peak_scratch.assign(lanes_, 0);
  ws_.winner_h.assign(lanes_, 0);
  ws_.winner_idx.assign(lanes_, -1);
  ws_.window_max.assign(lanes_, 0);
  ws_.span_scratch.assign(lanes_, {});
  policy_->on_simulation_start();
}

/// Fused path kernel: one descending pass computes each node's send from the
/// pre-pass heights and applies it together with the send arriving from
/// behind (`carry`), so a step streams the height plane exactly once.
/// Processing v writes h(v) only after both reads of it — wants(v) and
/// wants(v+1), the latter in the previous iteration — have happened.
template <typename WantsFn>
void LaneSimulator::path_pass(WantsFn wants) {
  const std::size_t K = lanes_;
  const Capacity cap = options_.capacity;
  Capacity* __restrict__ carry = ws_.carry.data();
  Height* __restrict__ ps = ws_.peak_scratch.data();
  const Capacity* __restrict__ am = amask_.data();
  std::fill(ws_.carry.begin(), ws_.carry.end(), Capacity{0});
  std::fill(ws_.peak_scratch.begin(), ws_.peak_scratch.end(), Height{0});
  for (NodeId v = static_cast<NodeId>(n_ - 1); v >= 1; --v) {
    Height* __restrict__ own = h_.row(v);
    const Height* succ = h_.row(static_cast<NodeId>(v - 1));
    for (std::size_t l = 0; l < K; ++l) {
      const Height ow = own[l];
      const Capacity s = clamp_send(wants(ow, succ[l]), cap, ow, am[l]);
      const Height nh = static_cast<Height>(ow - s + carry[l]);
      own[l] = nh;
      carry[l] = s;
      ps[l] = std::max(ps[l], nh);
    }
  }
  // After v = 1 the carry holds the sends into the sink.
  for (std::size_t l = 0; l < K; ++l) {
    delivered_[l] += static_cast<std::uint64_t>(carry[l]);
    peak_[l] = std::max(peak_[l], ps[l]);
  }
}

template <typename WantsFn>
void LaneSimulator::compute_per_node(WantsFn wants) {
  const std::size_t K = lanes_;
  const Capacity cap = options_.capacity;
  const Capacity* __restrict__ am = amask_.data();
  for (NodeId v = 1; v < n_; ++v) {
    const Height* __restrict__ own = h_.row(v);
    const Height* __restrict__ succ = h_.row(tree_->parent(v));
    Capacity* __restrict__ s = send_.row(v);
    for (std::size_t l = 0; l < K; ++l) {
      s[l] = clamp_send(wants(own[l], succ[l]), cap, own[l], am[l]);
    }
  }
}

void LaneSimulator::compute_max_window() {
  const std::size_t K = lanes_;
  const Capacity cap = options_.capacity;
  const Capacity* __restrict__ am = amask_.data();
  Height* __restrict__ wm = ws_.window_max.data();
  for (NodeId v = 1; v < n_; ++v) {
    std::fill(ws_.window_max.begin(), ws_.window_max.end(), Height{0});
    NodeId cur = v;
    for (std::int32_t hop = 0; hop < rule_.param; ++hop) {
      cur = tree_->parent(cur);
      if (cur == kNoNode) break;
      const Height* hc = h_.row(cur);
      for (std::size_t l = 0; l < K; ++l) wm[l] = std::max(wm[l], hc[l]);
    }
    const Height* __restrict__ own = h_.row(v);
    Capacity* __restrict__ s = send_.row(v);
    for (std::size_t l = 0; l < K; ++l) {
      const Capacity desired =
          static_cast<Capacity>(static_cast<Capacity>(own[l] >= wm[l]) * cap);
      s[l] = clamp_send(desired, cap, own[l], am[l]);
    }
  }
}

/// Sibling arbitration (Algorithm 5), vectorized per lane: each sibling
/// group elects the tallest candidate (first in child order on ties —
/// identical to the dense scalar scan) independently in every lane, then
/// writes each child's send as winner-mask × parity rule × clamp.
void LaneSimulator::compute_arbitrated() {
  const std::size_t K = lanes_;
  const Capacity cap = options_.capacity;
  const Capacity* __restrict__ am = amask_.data();
  const bool strict = rule_.arbitration == ArbitrationMode::Strict;
  Height* __restrict__ wh = ws_.winner_h.data();
  std::int32_t* __restrict__ wi = ws_.winner_idx.data();
  for (NodeId p = 0; p < n_; ++p) {
    const std::span<const NodeId> children = tree_->children(p);
    if (children.empty()) continue;
    const Height* __restrict__ succ = h_.row(p);
    std::fill(ws_.winner_h.begin(), ws_.winner_h.end(), Height{0});
    std::fill(ws_.winner_idx.begin(), ws_.winner_idx.end(), std::int32_t{-1});
    for (const NodeId c : children) {
      const Height* hc = h_.row(c);
      const std::int32_t ci = static_cast<std::int32_t>(c);
      for (std::size_t l = 0; l < K; ++l) {
        const Height ow = hc[l];
        const bool cand =
            ow > 0 && (strict || lane_rules::odd_even(ow, succ[l]) > 0);
        const bool better = cand && ow > wh[l];
        wh[l] = better ? ow : wh[l];
        wi[l] = better ? ci : wi[l];
      }
    }
    for (const NodeId c : children) {
      Capacity* s = send_.row(c);
      const std::int32_t ci = static_cast<std::int32_t>(c);
      for (std::size_t l = 0; l < K; ++l) {
        const Capacity is_winner = static_cast<Capacity>(wi[l] == ci);
        const Capacity desired = static_cast<Capacity>(
            lane_rules::odd_even(wh[l], succ[l]) * is_winner);
        s[l] = clamp_send(desired, cap, wh[l], am[l]);
      }
    }
  }
}

/// General-tree application: subtract each node's send, credit its parent
/// (or the delivered counters for sink children), then max-scan the final
/// heights into the per-lane peaks — which matches the scalar engine's
/// targeted peak update because only risers can exceed the previous peak.
void LaneSimulator::apply_pass() {
  const std::size_t K = lanes_;
  Height* __restrict__ ps = ws_.peak_scratch.data();
  std::fill(ws_.peak_scratch.begin(), ws_.peak_scratch.end(), Height{0});
  for (NodeId v = 1; v < n_; ++v) {
    Height* __restrict__ hv = h_.row(v);
    const Capacity* __restrict__ sv = send_.row(v);
    const NodeId p = tree_->parent(v);
    if (p == Tree::sink()) {
      for (std::size_t l = 0; l < K; ++l) {
        hv[l] = static_cast<Height>(hv[l] - sv[l]);
        delivered_[l] += static_cast<std::uint64_t>(sv[l]);
      }
    } else {
      Height* hp = h_.row(p);
      for (std::size_t l = 0; l < K; ++l) {
        hv[l] = static_cast<Height>(hv[l] - sv[l]);
        hp[l] = static_cast<Height>(hp[l] + sv[l]);
      }
    }
  }
  for (NodeId v = 1; v < n_; ++v) {
    const Height* hv = h_.row(v);
    for (std::size_t l = 0; l < K; ++l) ps[l] = std::max(ps[l], hv[l]);
  }
  for (std::size_t l = 0; l < K; ++l) peak_[l] = std::max(peak_[l], ps[l]);
}

template <typename WantsFn>
void LaneSimulator::run_rule(WantsFn wants) {
  if (path_fast_) {
    path_pass(wants);
  } else {
    compute_per_node(wants);
    apply_pass();
  }
}

void LaneSimulator::forward_pass() {
  const Capacity cap = options_.capacity;
  switch (rule_.kind) {
    case LaneRuleKind::Greedy:
      return run_rule(
          [cap](Height o, Height s) { return lane_rules::greedy(o, s, cap); });
    case LaneRuleKind::Downhill:
      return run_rule(
          [](Height o, Height s) { return lane_rules::downhill(o, s); });
    case LaneRuleKind::DownhillOrFlat:
      return run_rule([](Height o, Height s) {
        return lane_rules::downhill_or_flat(o, s);
      });
    case LaneRuleKind::FieLocal:
      return run_rule(
          [](Height o, Height s) { return lane_rules::fie_local(o, s); });
    case LaneRuleKind::OddEven:
      return run_rule(
          [](Height o, Height s) { return lane_rules::odd_even(o, s); });
    case LaneRuleKind::ScaledOddEven: {
      const Capacity rate = rule_.param;
      return run_rule([rate](Height o, Height s) {
        return lane_rules::scaled_odd_even(o, s, rate);
      });
    }
    case LaneRuleKind::Gradient: {
      const Height slope = rule_.param;
      return run_rule([slope](Height o, Height s) {
        return lane_rules::gradient(o, s, slope);
      });
    }
    case LaneRuleKind::MaxWindow:
      if (rule_.param == 1) {
        // A 1-wide window is the plain successor read: forward min(c, own)
        // iff own ≥ succ.
        return run_rule([cap](Height o, Height s) {
          return static_cast<Capacity>(static_cast<Capacity>(s <= o) * cap);
        });
      }
      compute_max_window();
      return apply_pass();
    case LaneRuleKind::ArbitratedOddEven:
      if (path_fast_) {
        // Single-child sibling groups: arbitration elects the only
        // candidate, leaving exactly the bare parity rule.
        return run_rule(
            [](Height o, Height s) { return lane_rules::odd_even(o, s); });
      }
      compute_arbitrated();
      return apply_pass();
  }
  CVG_CHECK(false) << "unhandled lane rule kind";
}

void LaneSimulator::scatter_injections(
    std::span<const std::span<const NodeId>> injections, bool fix_peaks) {
  for (std::size_t l = 0; l < lanes_; ++l) {
    if (amask_[l] == 0) continue;
    for (const NodeId t : injections[l]) {
      CVG_CHECK(t < n_) << "injection at out-of-range node " << t;
      ++injected_[l];
      if (t == Tree::sink()) {
        ++delivered_[l];  // the sink consumes instantly
        continue;
      }
      Height& hv = h_.at(t, l);
      hv = static_cast<Height>(hv + 1);
      if (fix_peaks) peak_[l] = std::max(peak_[l], hv);
    }
  }
}

void LaneSimulator::step_lanes(
    std::span<const std::span<const NodeId>> injections) {
  CVG_CHECK(injections.size() == lanes_);
  const Capacity bucket_max =
      static_cast<Capacity>(options_.capacity + options_.burstiness);
  for (std::size_t l = 0; l < lanes_; ++l) {
    if (amask_[l] == 0) {
      CVG_CHECK(injections[l].empty())
          << "injection into halted lane " << l;
      continue;
    }
    tokens_[l] = std::min(
        bucket_max, static_cast<Capacity>(tokens_[l] + options_.capacity));
    CVG_CHECK(injections[l].size() <= static_cast<std::size_t>(tokens_[l]))
        << "adversary exceeded its rate on lane " << l << ": "
        << injections[l].size() << " injections with " << tokens_[l]
        << " tokens (c=" << options_.capacity
        << ", sigma=" << options_.burstiness << ")";
    tokens_[l] = static_cast<Capacity>(
        tokens_[l] - static_cast<Capacity>(injections[l].size()));
  }

  // Scalar mini-step order: with decide-before semantics, sends are a
  // function of pre-injection heights; the forwarding deltas and the
  // injections then commute (both are additions), so the pass runs first and
  // the injection scatter patches the peaks of the nodes it raised.  With
  // decide-after semantics injections land first and the pass sees them.
  if (options_.semantics == StepSemantics::DecideBeforeInjection) {
    forward_pass();
    scatter_injections(injections, /*fix_peaks=*/true);
  } else {
    scatter_injections(injections, /*fix_peaks=*/false);
    forward_pass();
  }
  ++now_;
  refresh_lane0();
}

void LaneSimulator::halt_lane(std::size_t lane) {
  CVG_CHECK(lane < lanes_);
  amask_[lane] = 0;
}

Configuration LaneSimulator::lane_config(std::size_t lane) const {
  Configuration out(n_);
  lane_config_into(lane, out);
  return out;
}

void LaneSimulator::lane_config_into(std::size_t lane,
                                     Configuration& out) const {
  CVG_CHECK(lane < lanes_);
  CVG_CHECK(out.node_count() == n_);
  for (NodeId v = 1; v < n_; ++v) out.set_height(v, h_.at(v, lane));
}

void LaneSimulator::set_config_all_lanes(const Configuration& config) {
  CVG_CHECK(config.node_count() == n_);
  for (NodeId v = 1; v < n_; ++v) {
    Height* row = h_.row(v);
    std::fill(row, row + lanes_, config.height(v));
  }
  const Height top = config.max_height();
  for (std::size_t l = 0; l < lanes_; ++l) {
    peak_[l] = std::max(peak_[l], top);
  }
  refresh_lane0();
}

void LaneSimulator::bind_shadow_schedule(std::size_t lane,
                                         LaneSchedule schedule) {
  CVG_CHECK(lane >= 1 && lane < lanes_)
      << "shadow schedules bind to lanes 1.." << lanes_ - 1
      << " (lane 0 is the designated scalar lane)";
  shadow_[lane] = std::move(schedule);
}

void LaneSimulator::step(std::span<const NodeId> injections) {
  ws_.span_scratch[0] = injections;
  for (std::size_t l = 1; l < lanes_; ++l) {
    const LaneSchedule& sched = shadow_[l];
    ws_.span_scratch[l] = now_ < sched.size()
                           ? std::span<const NodeId>(
                                 sched[static_cast<std::size_t>(now_)])
                           : std::span<const NodeId>{};
  }
  step_lanes(ws_.span_scratch);
}

void LaneSimulator::refresh_lane0() {
  for (NodeId v = 1; v < n_; ++v) lane0_config_.set_height(v, h_.at(v, 0));
}

std::vector<LaneReplayOutcome> replay_schedules(
    const Tree& tree, const Policy& policy, const SimOptions& options,
    std::span<const LaneSchedule> schedules, std::size_t max_lanes) {
  CVG_CHECK(max_lanes >= 1);
  std::vector<LaneReplayOutcome> out(schedules.size());
  if (!LaneSimulator::supported(policy, options)) {
    for (std::size_t i = 0; i < schedules.size(); ++i) {
      Simulator sim(tree, policy, options);
      for (const auto& step : schedules[i]) sim.step(step);
      out[i] = {sim.peak_height(), sim.injected(), sim.delivered(),
                static_cast<Step>(schedules[i].size())};
    }
    return out;
  }
  for (std::size_t base = 0; base < schedules.size(); base += max_lanes) {
    const std::size_t width = std::min(max_lanes, schedules.size() - base);
    LaneSimulator sim(tree, policy, options, width);
    std::size_t longest = 0;
    for (std::size_t l = 0; l < width; ++l) {
      longest = std::max(longest, schedules[base + l].size());
    }
    std::vector<std::span<const NodeId>> spans(width);
    for (std::size_t s = 0; s < longest; ++s) {
      for (std::size_t l = 0; l < width; ++l) {
        const LaneSchedule& sched = schedules[base + l];
        // Replay semantics: exactly schedule.size() steps per lane; shorter
        // lanes freeze at their own horizon while the block runs on.
        if (s == sched.size()) sim.halt_lane(l);
        spans[l] = s < sched.size() ? std::span<const NodeId>(sched[s])
                                    : std::span<const NodeId>{};
      }
      sim.step_lanes(spans);
    }
    for (std::size_t l = 0; l < width; ++l) {
      out[base + l] = {sim.lane_peak(l), sim.lane_injected(l),
                       sim.lane_delivered(l),
                       static_cast<Step>(schedules[base + l].size())};
    }
  }
  return out;
}

LaneSchedule unroll_oblivious(const Tree& tree, Adversary& adv, Step steps,
                              Capacity capacity) {
  CVG_CHECK(adv.oblivious())
      << "adversary '" << adv.name()
      << "' is adaptive and cannot be unrolled into a fixed schedule";
  const Configuration config(tree.node_count());  // never read when oblivious
  adv.on_simulation_start();
  LaneSchedule schedule(static_cast<std::size_t>(steps));
  for (Step s = 0; s < steps; ++s) {
    adv.plan(tree, config, s, capacity,
             schedule[static_cast<std::size_t>(s)]);
  }
  return schedule;
}

}  // namespace cvg
