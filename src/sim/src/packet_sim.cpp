#include "cvg/sim/packet_sim.hpp"

#include <algorithm>

#include "cvg/core/engine.hpp"

namespace cvg {

// The packet engine reports per-step delivery delays; it keeps no sparse
// step record (its observability is the packets themselves).
static_assert(Engine<PacketSimulator>);
static_assert(DelayReportingEngine<PacketSimulator>);
static_assert(LocalityAuditingEngine<PacketSimulator>);

PacketSimulator::PacketSimulator(const Tree& tree, const Policy& policy,
                                 SimOptions options)
    : tree_(&tree),
      policy_(&policy),
      options_(options),
      buffers_(tree.node_count()),
      config_(tree.node_count()),
      ws_(tree.node_count(),
          static_cast<std::size_t>(options.capacity + options.burstiness)),
      tokens_(options.burstiness) {
  CVG_CHECK(options_.capacity >= 1);
  moves_.reserve(tree.node_count());
  if (options_.audit_locality) {
    auditor_ = LocalityAuditor::for_tree(tree, policy.name(),
                                         policy.locality());
  }
  policy_->on_simulation_start();
}

void PacketSimulator::record_delivery(Step delay) {
  delays_.record(delay);
  delivered_delays_.push_back(delay);
}

void PacketSimulator::step(std::span<const NodeId> injections) {
  const std::size_t n = tree_->node_count();
  tokens_ = std::min(static_cast<Capacity>(options_.capacity + options_.burstiness),
                     static_cast<Capacity>(tokens_ + options_.capacity));
  CVG_CHECK(injections.size() <= static_cast<std::size_t>(tokens_))
      << "adversary exceeded its rate (packet engine)";
  tokens_ = static_cast<Capacity>(tokens_ - static_cast<Capacity>(injections.size()));

  ws_.begin_step(now_);
  ws_.record.injections.assign(injections.begin(), injections.end());
  delivered_delays_.clear();

  if (options_.semantics == StepSemantics::DecideBeforeInjection) {
    const ScopedLocalityAudit audit(auditor_ ? &*auditor_ : nullptr, now_);
    policy_->compute_sends(*tree_, config_, ws_.record.injections,
                           options_.capacity, ws_.dense_sends);
    if (options_.validate) {
      validate_sends(*tree_, config_, options_.capacity, ws_.dense_sends);
    }
  }

  for (const NodeId t : injections) {
    CVG_CHECK(t < n);
    const Packet packet{next_packet_id_++, t, now_};
    if (t == Tree::sink()) {
      record_delivery(0);
    } else {
      buffers_[t].push_back(packet);
      config_.add(t, 1);
    }
  }

  if (options_.semantics == StepSemantics::DecideAfterInjection) {
    const ScopedLocalityAudit audit(auditor_ ? &*auditor_ : nullptr, now_);
    policy_->compute_sends(*tree_, config_, ws_.record.injections,
                           options_.capacity, ws_.dense_sends);
    if (options_.validate) {
      validate_sends(*tree_, config_, options_.capacity, ws_.dense_sends);
    }
  }

  // Forward simultaneously: first detach every departing packet (so a packet
  // cannot hop two links in one step), then deliver.  The scan restores the
  // all-zero invariant on `ws_.dense_sends` by zeroing each entry it reads.
  moves_.clear();
  for (NodeId v = 1; v < n; ++v) {
    const Capacity k_total = ws_.dense_sends[v];
    ws_.dense_sends[v] = 0;
    for (Capacity k = 0; k < k_total; ++k) {
      CVG_CHECK(!buffers_[v].empty())
          << "policy over-sent at node " << v << " (packet engine)";
      moves_.push_back({buffers_[v].front(), tree_->parent(v)});
      buffers_[v].pop_front();
      config_.add(v, -1);
    }
  }
  for (const Move& move : moves_) {
    if (move.to == Tree::sink()) {
      record_delivery(now_ + 1 - move.packet.injected_at);
    } else {
      buffers_[move.to].push_back(move.packet);
      config_.add(move.to, 1);
    }
  }

  peak_ = std::max(peak_, config_.max_height());
  ++now_;
}

}  // namespace cvg
