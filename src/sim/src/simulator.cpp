#include "cvg/sim/simulator.hpp"

#include <algorithm>

#include "cvg/core/engine.hpp"

namespace cvg {

// The height engine is the fullest model of the engine concept: it records
// steps, tracks per-node peaks, checkpoints by copy, and can run its policy
// under the locality auditor.
static_assert(Engine<Simulator>);
static_assert(RecordingEngine<Simulator>);
static_assert(PeakTrackingEngine<Simulator>);
static_assert(LocalityAuditingEngine<Simulator>);

Simulator::Simulator(const Tree& tree, const Policy& policy, SimOptions options)
    : tree_(&tree),
      policy_(&policy),
      options_(options),
      config_(tree.node_count()),
      ws_(tree.node_count(),
          static_cast<std::size_t>(options.capacity + options.burstiness)),
      peak_per_node_(tree.node_count(), 0),
      tokens_(options.burstiness) {
  CVG_CHECK(options_.capacity >= 1);
  CVG_CHECK(options_.burstiness >= 0);
  if (options_.audit_locality) {
    auditor_ = LocalityAuditor::for_tree(tree, policy.name(),
                                         policy.locality());
  }
  policy_->on_simulation_start();
}

bool Simulator::use_sparse_now() const {
  if (!policy_->supports_sparse()) return false;
  switch (options_.sparse_mode) {
    case SparseMode::Never:
      return false;
    case SparseMode::Always:
      return true;
    case SparseMode::Auto:
      break;
  }
  const double crossover = options_.sparse_crossover > 0.0
                               ? options_.sparse_crossover
                               : kSparseCrossover;
  return static_cast<double>(ws_.occupied.size()) <
         crossover * static_cast<double>(tree_->node_count());
}

void Simulator::compute_step_sends() {
  // Arm the locality auditor (a no-op when auditing is off) around exactly
  // the policy invocation: harness reads — validation, peak tracking, the
  // occupied-set bookkeeping — are not the policy's reads.
  const ScopedLocalityAudit audit(auditor_ ? &*auditor_ : nullptr, now_);
  if (use_sparse_now()) {
    ++sparse_steps_;
    policy_->compute_sends_sparse(*tree_, config_, ws_.occupied.items(),
                                  options_.capacity, ws_.record.sends);
    // Policies may emit in occupied-set order; records are sorted by node so
    // consumers can binary-search and both engines produce identical records.
    std::sort(ws_.record.sends.begin(), ws_.record.sends.end(),
              [](const SendEntry& a, const SendEntry& b) {
                return a.node < b.node;
              });
    if (options_.validate) {
      validate_sends_sparse(*tree_, config_, options_.capacity,
                            ws_.record.sends);
    }
    return;
  }

  ++dense_steps_;
  // Invariant: `ws_.dense_sends` is all-zero here; the collection loop below
  // restores that by zeroing exactly the entries it reads, so the dense path
  // never pays an O(n) clear.
  policy_->compute_sends(*tree_, config_, ws_.record.injections,
                         options_.capacity, ws_.dense_sends);
  if (options_.validate) {
    validate_sends(*tree_, config_, options_.capacity, ws_.dense_sends);
  }
  const std::size_t n = tree_->node_count();
  for (NodeId v = 1; v < n; ++v) {
    if (ws_.dense_sends[v] != 0) {
      ws_.record.sends.push_back({v, ws_.dense_sends[v]});
      ws_.dense_sends[v] = 0;
    }
  }
}

const StepRecord& Simulator::step(std::span<const NodeId> injections) {
  const std::size_t n = tree_->node_count();
  tokens_ = std::min(static_cast<Capacity>(options_.capacity + options_.burstiness),
                     static_cast<Capacity>(tokens_ + options_.capacity));
  CVG_CHECK(injections.size() <= static_cast<std::size_t>(tokens_))
      << "adversary exceeded its rate: " << injections.size()
      << " injections with " << tokens_ << " tokens (c=" << options_.capacity
      << ", sigma=" << options_.burstiness << ")";
  tokens_ = static_cast<Capacity>(tokens_ - static_cast<Capacity>(injections.size()));

  ws_.begin_step(now_);
  ws_.record.injections.assign(injections.begin(), injections.end());

  // Mini-step order: with decide-before semantics the policy samples the
  // configuration as it stood at the start of the step; with decide-after it
  // samples post-injection heights.  Either way the forwarding itself is
  // simultaneous across all nodes.
  if (options_.semantics == StepSemantics::DecideBeforeInjection) {
    compute_step_sends();
  }

  for (const NodeId t : injections) {
    CVG_CHECK(t < n) << "injection at out-of-range node " << t;
    ++injected_;
    if (t == Tree::sink()) {
      ++delivered_;  // the sink consumes instantly
    } else {
      add_height(t, 1);
    }
  }

  if (options_.semantics == StepSemantics::DecideAfterInjection) {
    compute_step_sends();
  }

  // Apply all forwards simultaneously.  Each node's send count was clamped
  // to its decision-time height, which never exceeds its current height, so
  // intermediate values stay non-negative regardless of application order.
  for (const SendEntry& entry : ws_.record.sends) {
    add_height(entry.node, static_cast<Height>(-entry.count));
    const NodeId p = tree_->parent(entry.node);
    if (p == Tree::sink()) {
      delivered_ += static_cast<std::uint64_t>(entry.count);
    } else {
      add_height(p, static_cast<Height>(entry.count));
    }
  }

  // Peak tracking: only injected nodes and receivers can have risen.
  for (const NodeId t : injections) {
    if (t == Tree::sink()) continue;
    const Height h = config_.height(t);
    peak_per_node_[t] = std::max(peak_per_node_[t], h);
    peak_ = std::max(peak_, h);
  }
  for (const SendEntry& entry : ws_.record.sends) {
    const NodeId p = tree_->parent(entry.node);
    if (p == Tree::sink()) continue;
    const Height h = config_.height(p);
    peak_per_node_[p] = std::max(peak_per_node_[p], h);
    peak_ = std::max(peak_, h);
  }

  ++now_;
  return ws_.record;
}

void Simulator::add_height(NodeId v, Height delta) {
  const Height before = config_.height(v);
  config_.add(v, delta);
  const Height after = static_cast<Height>(before + delta);
  if (before == 0 && after > 0) {
    ws_.occupied.insert(v);
  } else if (before > 0 && after == 0) {
    ws_.occupied.erase(v);
  }
}

void Simulator::rebuild_occupied() {
  const std::size_t n = tree_->node_count();
  ws_.occupied.clear();  // O(1): Briggs-Torczon clear
  for (NodeId v = 1; v < n; ++v) {
    if (config_.height(v) > 0) ws_.occupied.insert(v);
  }
}

void Simulator::set_config(const Configuration& config) {
  CVG_CHECK(config.node_count() == tree_->node_count());
  config_ = config;  // copy-assign: reuses the existing height buffer
  rebuild_occupied();
  for (NodeId v = 0; v < tree_->node_count(); ++v) {
    peak_per_node_[v] = std::max(peak_per_node_[v], config_.height(v));
    peak_ = std::max(peak_, config_.height(v));
  }
}

void Simulator::reset() {
  config_ = Configuration(tree_->node_count());
  rebuild_occupied();
  peak_per_node_.assign(tree_->node_count(), 0);
  peak_ = 0;
  now_ = 0;
  delivered_ = 0;
  injected_ = 0;
  sparse_steps_ = 0;
  dense_steps_ = 0;
  tokens_ = options_.burstiness;
  policy_->on_simulation_start();
}

}  // namespace cvg
