#include "cvg/sim/simulator.hpp"

#include <algorithm>

namespace cvg {

Simulator::Simulator(const Tree& tree, const Policy& policy, SimOptions options)
    : tree_(&tree),
      policy_(&policy),
      options_(options),
      config_(tree.node_count()),
      peak_per_node_(tree.node_count(), 0),
      tokens_(options.burstiness) {
  CVG_CHECK(options_.capacity >= 1);
  CVG_CHECK(options_.burstiness >= 0);
  policy_->on_simulation_start();
}

const StepRecord& Simulator::step(std::span<const NodeId> injections) {
  const std::size_t n = tree_->node_count();
  tokens_ = std::min(static_cast<Capacity>(options_.capacity + options_.burstiness),
                     static_cast<Capacity>(tokens_ + options_.capacity));
  CVG_CHECK(injections.size() <= static_cast<std::size_t>(tokens_))
      << "adversary exceeded its rate: " << injections.size()
      << " injections with " << tokens_ << " tokens (c=" << options_.capacity
      << ", sigma=" << options_.burstiness << ")";
  tokens_ = static_cast<Capacity>(tokens_ - static_cast<Capacity>(injections.size()));

  record_.reset(now_, n);
  record_.injections.assign(injections.begin(), injections.end());
  sends_.assign(n, 0);

  // Mini-step order: with decide-before semantics the policy samples the
  // configuration as it stood at the start of the step; with decide-after it
  // samples post-injection heights.  Either way the forwarding itself is
  // simultaneous across all nodes.
  if (options_.semantics == StepSemantics::DecideBeforeInjection) {
    policy_->compute_sends(*tree_, config_, record_.injections,
                           options_.capacity, sends_);
    if (options_.validate) {
      validate_sends(*tree_, config_, options_.capacity, sends_);
    }
  }

  for (const NodeId t : injections) {
    CVG_CHECK(t < n) << "injection at out-of-range node " << t;
    ++injected_;
    if (t == Tree::sink()) {
      ++delivered_;  // the sink consumes instantly
    } else {
      config_.add(t, 1);
    }
  }

  if (options_.semantics == StepSemantics::DecideAfterInjection) {
    policy_->compute_sends(*tree_, config_, record_.injections,
                           options_.capacity, sends_);
    if (options_.validate) {
      validate_sends(*tree_, config_, options_.capacity, sends_);
    }
  }

  // Apply all forwards simultaneously.  Each node's send count was clamped
  // to its decision-time height, which never exceeds its current height, so
  // intermediate values stay non-negative regardless of application order.
  for (NodeId v = 1; v < n; ++v) {
    const Capacity k = sends_[v];
    if (k == 0) continue;
    record_.sent[v] = k;
    config_.add(v, static_cast<Height>(-k));
    const NodeId p = tree_->parent(v);
    if (p == Tree::sink()) {
      delivered_ += static_cast<std::uint64_t>(k);
    } else {
      config_.add(p, static_cast<Height>(k));
    }
  }

  // Peak tracking: only injected nodes and receivers can have risen.
  for (const NodeId t : injections) {
    if (t == Tree::sink()) continue;
    const Height h = config_.height(t);
    peak_per_node_[t] = std::max(peak_per_node_[t], h);
    peak_ = std::max(peak_, h);
  }
  for (NodeId v = 1; v < n; ++v) {
    if (record_.sent[v] == 0) continue;
    const NodeId p = tree_->parent(v);
    if (p == Tree::sink()) continue;
    const Height h = config_.height(p);
    peak_per_node_[p] = std::max(peak_per_node_[p], h);
    peak_ = std::max(peak_, h);
  }

  ++now_;
  return record_;
}

void Simulator::set_config(Configuration config) {
  CVG_CHECK(config.node_count() == tree_->node_count());
  config_ = std::move(config);
  for (NodeId v = 0; v < tree_->node_count(); ++v) {
    peak_per_node_[v] = std::max(peak_per_node_[v], config_.height(v));
    peak_ = std::max(peak_, config_.height(v));
  }
}

void Simulator::reset() {
  config_ = Configuration(tree_->node_count());
  peak_per_node_.assign(tree_->node_count(), 0);
  peak_ = 0;
  now_ = 0;
  delivered_ = 0;
  injected_ = 0;
  tokens_ = options_.burstiness;
  policy_->on_simulation_start();
}

}  // namespace cvg
