#include "cvg/sim/runner.hpp"

namespace cvg {

namespace {

RunResult finish(const Simulator& sim) {
  RunResult result;
  result.peak_height = sim.peak_height();
  result.peak_per_node.assign(sim.peak_per_node().begin(),
                              sim.peak_per_node().end());
  result.final_config = sim.config();
  result.injected = sim.injected();
  result.delivered = sim.delivered();
  result.steps = sim.now();
  return result;
}

}  // namespace

RunResult run(const Tree& tree, const Policy& policy, Adversary& adversary,
              Step steps, SimOptions options, const StepObserver& observer) {
  Simulator sim(tree, policy, options);
  adversary.on_simulation_start();
  std::vector<NodeId> injections;
  for (Step s = 0; s < steps; ++s) {
    injections.clear();
    adversary.plan(tree, sim.config(), s, options.capacity, injections);
    const StepRecord& record = sim.step(injections);
    if (observer) observer(sim, record);
  }
  return finish(sim);
}

RunResult run_traced(const Tree& tree, const Policy& policy,
                     Adversary& adversary, Step steps, Step sample_every,
                     std::vector<Height>& height_trace, SimOptions options) {
  CVG_CHECK(sample_every >= 1);
  Simulator sim(tree, policy, options);
  adversary.on_simulation_start();
  std::vector<NodeId> injections;
  for (Step s = 0; s < steps; ++s) {
    injections.clear();
    adversary.plan(tree, sim.config(), s, options.capacity, injections);
    sim.step(injections);
    if ((s + 1) % sample_every == 0) {
      height_trace.push_back(sim.config().max_height());
    }
  }
  return finish(sim);
}

}  // namespace cvg
