#include "cvg/sim/runner.hpp"

namespace cvg {

RunResult run(const Tree& tree, const Policy& policy, Adversary& adversary,
              Step steps, SimOptions options, const StepObserver& observer) {
  Simulator sim(tree, policy, options);
  adversary.on_simulation_start();
  if (!observer) {
    return run_engine(sim, adversary_source(tree, adversary, options.capacity),
                      steps);
  }
  return run_engine(
      sim, adversary_source(tree, adversary, options.capacity), steps, nullptr,
      [&observer](const Simulator& engine, const StepRecord* record) {
        observer(engine, *record);
      });
}

RunResult run_traced(const Tree& tree, const Policy& policy,
                     Adversary& adversary, Step steps, Step sample_every,
                     std::vector<Height>& height_trace, SimOptions options) {
  Simulator sim(tree, policy, options);
  adversary.on_simulation_start();
  HeightTraceSink tracer(sample_every, height_trace);
  MetricSinkChain sinks;
  sinks.add(tracer);
  return run_engine(sim, adversary_source(tree, adversary, options.capacity),
                    steps, &sinks);
}

}  // namespace cvg
