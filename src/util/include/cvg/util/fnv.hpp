#pragma once

/// \file fnv.hpp
/// Incremental FNV-1a64 hashing, shared by the corpus format (content hashes
/// and file checksums, src/corpus) and the simulation service's
/// content-addressed result cache (src/serve).  Multi-byte values are folded
/// in little-endian byte order, so hashes are identical across hosts —
/// corpus file names and cache keys are portable.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cvg {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Incremental FNV-1a64.  Feed fields in a fixed canonical order; equal field
/// sequences produce equal hashes regardless of how the bytes were batched.
class Fnv1a {
 public:
  void bytes(const void* data, std::size_t size) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= p[i];
      hash_ *= kFnvPrime;
    }
  }
  void u8(std::uint8_t value) noexcept { bytes(&value, 1); }
  void u32(std::uint32_t value) noexcept {
    unsigned char buffer[4];
    for (int i = 0; i < 4; ++i) {
      buffer[i] = static_cast<unsigned char>(value >> (8 * i));
    }
    bytes(buffer, 4);
  }
  void u64(std::uint64_t value) noexcept {
    unsigned char buffer[8];
    for (int i = 0; i < 8; ++i) {
      buffer[i] = static_cast<unsigned char>(value >> (8 * i));
    }
    bytes(buffer, 8);
  }
  /// Length-prefixed, so "ab" + "c" and "a" + "bc" hash differently.
  void str(std::string_view value) noexcept {
    u32(static_cast<std::uint32_t>(value.size()));
    bytes(value.data(), value.size());
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = kFnvOffset;
};

}  // namespace cvg
