#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// Every randomized component of the library (random adversaries, random tree
/// builders, randomized property tests) draws from these generators so that
/// any experiment is reproducible bit-for-bit from its seed.  Parallel sweeps
/// derive independent streams per task via `SplitMix64` seeding of
/// `Xoshiro256StarStar`, the recommended scheme from Blackman & Vigna.

#include <array>
#include <cstdint>
#include <limits>

namespace cvg {

/// SplitMix64: a tiny, statistically solid 64-bit generator.  Primarily used
/// to expand a single user seed into the larger state of Xoshiro256** and to
/// derive decorrelated per-task seeds (`seed + task_index` inputs are fine).
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Advances the state and returns the next 64-bit value.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality general-purpose generator.
/// Satisfies UniformRandomBitGenerator so it composes with <random>
/// distributions, though the library mostly uses the bias-free helpers below.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64.
  explicit constexpr Xoshiro256StarStar(std::uint64_t seed) noexcept : state_{} {
    SplitMix64 mix(seed);
    for (auto& word : state_) word = mix.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method
  /// simplified to the rejection-free multiply-shift approximation is not
  /// exact, so we use explicit rejection sampling).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    const std::uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability `p`.
  constexpr bool bernoulli(double p) noexcept { return uniform01() < p; }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

/// Derives a decorrelated child seed for task `index` under a master `seed`.
/// Used by the parallel sweep runner so results are independent of the number
/// of worker threads and of execution order.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t index) noexcept;

}  // namespace cvg
