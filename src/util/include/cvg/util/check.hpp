#pragma once

/// \file check.hpp
/// Fail-fast invariant checking for programmer errors.
///
/// The simulation and certification code is built around invariants that the
/// paper proves always hold; a violated invariant means either a bug in this
/// library or a genuine divergence between the implementation and the paper's
/// model.  Neither is recoverable at run time, so checks abort with a
/// diagnostic instead of throwing.  `CVG_CHECK` is always on (it guards
/// correctness claims, not performance-critical inner loops); `CVG_DCHECK`
/// compiles away in release builds and may be used on hot paths.

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace cvg {

/// Terminates the process with a formatted diagnostic.  Never returns.
[[noreturn]] void check_failed(std::string_view condition, std::string_view file,
                               int line, std::string_view message);

namespace detail {

/// Accumulates an optional human-readable message for a failed check via
/// `operator<<`, then aborts on destruction.  Instances are only ever created
/// on the failure path.
class CheckFailureStream {
 public:
  CheckFailureStream(std::string_view condition, std::string_view file, int line)
      : condition_(condition), file_(file), line_(line) {}

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  [[noreturn]] ~CheckFailureStream() {
    check_failed(condition_, file_, line_, stream_.str());
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::string_view condition_;
  std::string_view file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace cvg

/// Aborts with context if `cond` is false.  Additional context may be
/// streamed: `CVG_CHECK(x < n) << "x=" << x;`
#define CVG_CHECK(cond)                                                  \
  if (cond) {                                                            \
  } else /* NOLINT */                                                    \
    ::cvg::detail::CheckFailureStream(#cond, __FILE__, __LINE__)

#ifdef NDEBUG
#define CVG_DCHECK(cond) CVG_CHECK(true || (cond))
#else
#define CVG_DCHECK(cond) CVG_CHECK(cond)
#endif

/// Marks an unreachable code path.
#define CVG_UNREACHABLE(msg) \
  ::cvg::detail::CheckFailureStream("unreachable", __FILE__, __LINE__) << (msg)
