#pragma once

/// \file str.hpp
/// Small string helpers shared by the reporting and CLI layers.

#include <string>
#include <string_view>
#include <vector>

namespace cvg {

/// Joins `parts` with `sep` ("a", "b", "c" + ", " -> "a, b, c").
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Splits `text` on the single character `sep`; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Strips ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// True iff `text` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix) noexcept;

/// Formats `value` with `decimals` digits after the point (fixed notation).
[[nodiscard]] std::string format_fixed(double value, int decimals);

/// Renders a count of bytes/items with thousands separators ("1,234,567").
[[nodiscard]] std::string with_commas(std::uint64_t value);

}  // namespace cvg
