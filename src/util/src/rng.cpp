#include "cvg/util/rng.hpp"

namespace cvg {

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t index) noexcept {
  // Two rounds of SplitMix64 over a mix of master seed and index; the golden
  // ratio offset decorrelates adjacent indices.
  SplitMix64 mix(seed ^ (index * 0x9e3779b97f4a7c15ULL + 0x1234567890abcdefULL));
  mix.next();
  return mix.next();
}

}  // namespace cvg
