#include "cvg/util/str.hpp"

#include <cctype>
#include <cstdio>

namespace cvg {

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string format_fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace cvg
