#include "cvg/util/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace cvg {

void check_failed(std::string_view condition, std::string_view file, int line,
                  std::string_view message) {
  std::fprintf(stderr, "[cvg] CHECK failed: %.*s at %.*s:%d",
               static_cast<int>(condition.size()), condition.data(),
               static_cast<int>(file.size()), file.data(), line);
  if (!message.empty()) {
    std::fprintf(stderr, " — %.*s", static_cast<int>(message.size()),
                 message.data());
  }
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace cvg
