file(REMOVE_RECURSE
  "libcvg_util.a"
)
