file(REMOVE_RECURSE
  "CMakeFiles/cvg_util.dir/src/check.cpp.o"
  "CMakeFiles/cvg_util.dir/src/check.cpp.o.d"
  "CMakeFiles/cvg_util.dir/src/rng.cpp.o"
  "CMakeFiles/cvg_util.dir/src/rng.cpp.o.d"
  "CMakeFiles/cvg_util.dir/src/str.cpp.o"
  "CMakeFiles/cvg_util.dir/src/str.cpp.o.d"
  "libcvg_util.a"
  "libcvg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
