# Empty compiler generated dependencies file for cvg_util.
# This may be replaced when dependencies are built.
