# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("core")
subdirs("topology")
subdirs("policy")
subdirs("audit")
subdirs("sim")
subdirs("adversary")
subdirs("certify")
subdirs("search")
subdirs("corpus")
subdirs("parallel")
subdirs("report")
subdirs("dag")
subdirs("serve")
