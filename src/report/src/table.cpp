#include "cvg/report/table.hpp"

#include <algorithm>

#include "cvg/util/check.hpp"
#include "cvg/util/str.hpp"

namespace cvg::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  CVG_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  CVG_CHECK(cells.size() == headers_.size())
      << "row has " << cells.size() << " cells, table has " << headers_.size()
      << " columns";
  rows_.push_back(std::move(cells));
}

std::string Table::cell_to_string(double v) { return format_fixed(v, 2); }

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += cells[c];
      if (c + 1 < cells.size()) {
        out.append(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string Table::to_csv() const {
  const auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (const char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out += ',';
      out += escape(cells[c]);
    }
    out += '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string Table::to_json() const {
  const auto quote = [](const std::string& text) {
    std::string out = "\"";
    for (const char ch : text) {
      switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            constexpr char kHex[] = "0123456789abcdef";
            out += "\\u00";
            out += kHex[(static_cast<unsigned char>(ch) >> 4) & 0xF];
            out += kHex[static_cast<unsigned char>(ch) & 0xF];
          } else {
            out += ch;
          }
      }
    }
    out += '"';
    return out;
  };
  std::string out = "[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r != 0) out += ',';
    out += '{';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c != 0) out += ',';
      out += quote(headers_[c]);
      out += ':';
      out += quote(rows_[r][c]);
    }
    out += '}';
  }
  out += "]";
  return out;
}

std::string Table::to_markdown() const {
  std::string out = "|";
  for (const auto& header : headers_) out += " " + header + " |";
  out += "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) out += "---|";
  out += '\n';
  for (const auto& row : rows_) {
    out += "|";
    for (const auto& cell : row) out += " " + cell + " |";
    out += '\n';
  }
  return out;
}

}  // namespace cvg::report
