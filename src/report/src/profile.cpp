#include "cvg/report/profile.hpp"

#include <algorithm>

namespace cvg::report {

std::string height_strip(std::span<const Height> heights) {
  std::string out;
  out.reserve(heights.size() + 1);
  for (std::size_t i = heights.size(); i-- > 1;) {
    const Height h = heights[i];
    if (h == 0) {
      out += '.';
    } else if (h <= 9) {
      out += static_cast<char>('0' + h);
    } else {
      out += '#';
    }
  }
  out += '|';
  return out;
}

std::string height_bars(std::span<const Height> heights, int max_rows) {
  Height tallest = 0;
  for (std::size_t i = 1; i < heights.size(); ++i) {
    tallest = std::max(tallest, heights[i]);
  }
  const Height rows = std::min<Height>(tallest, std::max(max_rows, 1));
  std::string out;
  for (Height row = rows; row >= 1; --row) {
    for (std::size_t i = heights.size(); i-- > 1;) {
      const Height h = heights[i];
      if (h >= row) {
        out += (row == rows && h > rows) ? '^' : '#';
      } else {
        out += ' ';
      }
    }
    out += '\n';
  }
  for (std::size_t i = heights.size(); i-- > 1;) out += '-';
  out += "| sink\n";
  return out;
}

}  // namespace cvg::report
