#include "cvg/report/profile.hpp"

#include <algorithm>

namespace cvg::report {

std::string height_strip(std::span<const Height> heights) {
  std::string out;
  out.reserve(heights.size() + 1);
  for (std::size_t i = heights.size(); i-- > 1;) {
    const Height h = heights[i];
    if (h == 0) {
      out += '.';
    } else if (h <= 9) {
      out += static_cast<char>('0' + h);
    } else {
      out += '#';
    }
  }
  out += '|';
  return out;
}

std::string height_bars(std::span<const Height> heights, int max_rows) {
  Height tallest = 0;
  for (std::size_t i = 1; i < heights.size(); ++i) {
    tallest = std::max(tallest, heights[i]);
  }
  const Height rows = std::min<Height>(tallest, std::max(max_rows, 1));
  std::string out;
  for (Height row = rows; row >= 1; --row) {
    for (std::size_t i = heights.size(); i-- > 1;) {
      const Height h = heights[i];
      if (h >= row) {
        out += (row == rows && h > rows) ? '^' : '#';
      } else {
        out += ' ';
      }
    }
    out += '\n';
  }
  for (std::size_t i = heights.size(); i-- > 1;) out += '-';
  out += "| sink\n";
  return out;
}

namespace {
constexpr std::size_t kMaxLatencySamples = 4096;
}  // namespace

void LatencyProfile::record(std::uint64_t micros) {
  ++count_;
  total_ += micros;
  max_ = std::max(max_, micros);
  if (until_next_ > 0) {
    --until_next_;
    return;
  }
  samples_.push_back(micros);
  until_next_ = stride_ - 1;
  if (samples_.size() >= kMaxLatencySamples) {
    // Systematic decimation: keep the even-indexed retained samples and
    // double the stride, preserving an evenly spaced subsample.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < samples_.size(); i += 2) {
      samples_[kept++] = samples_[i];
    }
    samples_.resize(kept);
    stride_ *= 2;
  }
}

std::uint64_t LatencyProfile::quantile(double q) const {
  if (samples_.empty()) return 0;
  std::vector<std::uint64_t> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  q = std::min(1.0, std::max(0.0, q));
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[rank];
}

}  // namespace cvg::report
