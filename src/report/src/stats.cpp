#include "cvg/report/stats.hpp"

#include <cmath>

namespace cvg::report {

namespace {

double fit_slope(std::span<const double> xs, std::span<const double> ys,
                 bool log_x, bool log_y) {
  double sum_x = 0;
  double sum_y = 0;
  double sum_xx = 0;
  double sum_xy = 0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
    if ((log_x && xs[i] <= 0) || (log_y && ys[i] <= 0)) continue;
    const double x = log_x ? std::log2(xs[i]) : xs[i];
    const double y = log_y ? std::log2(ys[i]) : ys[i];
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_xy += x * y;
    ++count;
  }
  if (count < 2) return 0.0;
  const double m = static_cast<double>(count);
  const double denom = m * sum_xx - sum_x * sum_x;
  if (denom == 0.0) return 0.0;
  return (m * sum_xy - sum_x * sum_y) / denom;
}

}  // namespace

double loglog_slope(std::span<const double> xs, std::span<const double> ys) {
  return fit_slope(xs, ys, /*log_x=*/true, /*log_y=*/true);
}

double semilog_slope(std::span<const double> xs, std::span<const double> ys) {
  return fit_slope(xs, ys, /*log_x=*/true, /*log_y=*/false);
}

std::vector<std::size_t> geometric_sizes(std::size_t lo, std::size_t hi) {
  std::vector<std::size_t> sizes;
  for (std::size_t n = lo; n <= hi; n *= 2) sizes.push_back(n);
  return sizes;
}

}  // namespace cvg::report
