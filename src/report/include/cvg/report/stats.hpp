#pragma once

/// \file stats.hpp
/// Small numeric helpers for the experiment reports: growth-exponent
/// estimation (log-log regression) and sweep-size generators.

#include <cstdint>
#include <span>
#include <vector>

namespace cvg::report {

/// Least-squares slope of log(y) against log(x) — the growth exponent of a
/// power law y ≈ a·x^slope.  Points with x ≤ 0 or y ≤ 0 are skipped; returns
/// 0 when fewer than two usable points remain.
[[nodiscard]] double loglog_slope(std::span<const double> xs,
                                  std::span<const double> ys);

/// Least-squares slope of y against log2(x): the coefficient b of
/// y ≈ a + b·log₂ x.  Used to confirm logarithmic growth curves.
[[nodiscard]] double semilog_slope(std::span<const double> xs,
                                   std::span<const double> ys);

/// Geometric size ladder: lo, 2·lo, 4·lo, … up to and including the largest
/// value ≤ hi.
[[nodiscard]] std::vector<std::size_t> geometric_sizes(std::size_t lo,
                                                       std::size_t hi);

}  // namespace cvg::report
