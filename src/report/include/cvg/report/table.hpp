#pragma once

/// \file table.hpp
/// Result tables for the benchmark harness: aligned text for the terminal,
/// CSV for machines, Markdown for EXPERIMENTS.md.

#include <cstdint>
#include <string>
#include <vector>

namespace cvg::report {

/// A simple column-oriented table with string cells.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each cell with to_string-compatible forwarding.
  template <typename... Cells>
  void row(const Cells&... cells) {
    add_row({cell_to_string(cells)...});
  }

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Right-padded, column-aligned plain text (with a header separator).
  [[nodiscard]] std::string to_text() const;

  /// RFC-4180-ish CSV (quotes cells containing commas or quotes).
  [[nodiscard]] std::string to_csv() const;

  /// GitHub-flavoured Markdown.
  [[nodiscard]] std::string to_markdown() const;

  /// JSON array of row objects keyed by header (numeric-looking cells stay
  /// strings — the table stores formatted text, and round-tripping through
  /// double would corrupt it).  For the `--json` trajectory files the bench
  /// harness writes.
  [[nodiscard]] std::string to_json() const;

 private:
  static std::string cell_to_string(const std::string& s) { return s; }
  static std::string cell_to_string(const char* s) { return s; }
  static std::string cell_to_string(double v);
  template <typename T>
  static std::string cell_to_string(const T& v) {
    return std::to_string(v);
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cvg::report
