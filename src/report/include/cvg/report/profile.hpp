#pragma once

/// \file profile.hpp
/// Text rendering of buffer-height profiles: single-line strips for
/// animations and multi-line bar charts for reports.

#include <span>
#include <string>

#include "cvg/core/types.hpp"

namespace cvg::report {

/// One-character-per-node strip, far end first and the sink marked '|':
/// '.' for empty, digits 1–9, '#' for 10+.  `heights[0]` is the sink.
[[nodiscard]] std::string height_strip(std::span<const Height> heights);

/// Multi-line vertical bar chart of the same profile (tallest row first),
/// at most `max_rows` rows (taller bars are clipped with '^').
[[nodiscard]] std::string height_bars(std::span<const Height> heights,
                                      int max_rows = 12);

}  // namespace cvg::report
