#pragma once

/// \file profile.hpp
/// Profiles for reports: text rendering of buffer-height profiles
/// (single-line strips for animations, multi-line bar charts), and a
/// bounded-memory latency profile used by the simulation service for
/// per-request latency quantiles.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cvg/core/types.hpp"

namespace cvg::report {

/// One-character-per-node strip, far end first and the sink marked '|':
/// '.' for empty, digits 1–9, '#' for 10+.  `heights[0]` is the sink.
[[nodiscard]] std::string height_strip(std::span<const Height> heights);

/// Multi-line vertical bar chart of the same profile (tallest row first),
/// at most `max_rows` rows (taller bars are clipped with '^').
[[nodiscard]] std::string height_bars(std::span<const Height> heights,
                                      int max_rows = 12);

/// Bounded-memory latency profile: exact count / mean / max plus quantiles
/// from a deterministically decimated sample buffer.  Once the buffer fills
/// (4096 samples), every other retained sample is dropped and the sampling
/// stride doubles, so memory stays O(1) while the retained samples remain an
/// unbiased systematic subsample of the stream.  Deterministic: the same
/// sequence of `record` calls always yields the same quantiles (no RNG —
/// the service's stats output must be reproducible in tests).  Not
/// thread-safe; callers (the service) serialize access.
class LatencyProfile {
 public:
  void record(std::uint64_t micros);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(total_) /
                                   static_cast<double>(count_);
  }

  /// Latency at quantile `q` in [0, 1] over the retained samples (0 when
  /// nothing was recorded).
  [[nodiscard]] std::uint64_t quantile(double q) const;

 private:
  std::vector<std::uint64_t> samples_;
  std::uint64_t stride_ = 1;       ///< record every stride_-th observation
  std::uint64_t until_next_ = 0;   ///< observations left before next retain
  std::uint64_t count_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace cvg::report
