# Empty dependencies file for cvg_report.
# This may be replaced when dependencies are built.
