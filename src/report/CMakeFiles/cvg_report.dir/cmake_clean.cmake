file(REMOVE_RECURSE
  "CMakeFiles/cvg_report.dir/src/profile.cpp.o"
  "CMakeFiles/cvg_report.dir/src/profile.cpp.o.d"
  "CMakeFiles/cvg_report.dir/src/stats.cpp.o"
  "CMakeFiles/cvg_report.dir/src/stats.cpp.o.d"
  "CMakeFiles/cvg_report.dir/src/table.cpp.o"
  "CMakeFiles/cvg_report.dir/src/table.cpp.o.d"
  "libcvg_report.a"
  "libcvg_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvg_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
