file(REMOVE_RECURSE
  "libcvg_report.a"
)
