
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/report/src/profile.cpp" "src/report/CMakeFiles/cvg_report.dir/src/profile.cpp.o" "gcc" "src/report/CMakeFiles/cvg_report.dir/src/profile.cpp.o.d"
  "/root/repo/src/report/src/stats.cpp" "src/report/CMakeFiles/cvg_report.dir/src/stats.cpp.o" "gcc" "src/report/CMakeFiles/cvg_report.dir/src/stats.cpp.o.d"
  "/root/repo/src/report/src/table.cpp" "src/report/CMakeFiles/cvg_report.dir/src/table.cpp.o" "gcc" "src/report/CMakeFiles/cvg_report.dir/src/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/core/CMakeFiles/cvg_core.dir/DependInfo.cmake"
  "/root/repo/src/util/CMakeFiles/cvg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
