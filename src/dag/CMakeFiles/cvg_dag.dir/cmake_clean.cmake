file(REMOVE_RECURSE
  "CMakeFiles/cvg_dag.dir/src/dag.cpp.o"
  "CMakeFiles/cvg_dag.dir/src/dag.cpp.o.d"
  "CMakeFiles/cvg_dag.dir/src/dag_policy.cpp.o"
  "CMakeFiles/cvg_dag.dir/src/dag_policy.cpp.o.d"
  "CMakeFiles/cvg_dag.dir/src/dag_sim.cpp.o"
  "CMakeFiles/cvg_dag.dir/src/dag_sim.cpp.o.d"
  "libcvg_dag.a"
  "libcvg_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvg_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
