
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dag/src/dag.cpp" "src/dag/CMakeFiles/cvg_dag.dir/src/dag.cpp.o" "gcc" "src/dag/CMakeFiles/cvg_dag.dir/src/dag.cpp.o.d"
  "/root/repo/src/dag/src/dag_policy.cpp" "src/dag/CMakeFiles/cvg_dag.dir/src/dag_policy.cpp.o" "gcc" "src/dag/CMakeFiles/cvg_dag.dir/src/dag_policy.cpp.o.d"
  "/root/repo/src/dag/src/dag_sim.cpp" "src/dag/CMakeFiles/cvg_dag.dir/src/dag_sim.cpp.o" "gcc" "src/dag/CMakeFiles/cvg_dag.dir/src/dag_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/core/CMakeFiles/cvg_core.dir/DependInfo.cmake"
  "/root/repo/src/policy/CMakeFiles/cvg_policy.dir/DependInfo.cmake"
  "/root/repo/src/audit/CMakeFiles/cvg_audit.dir/DependInfo.cmake"
  "/root/repo/src/util/CMakeFiles/cvg_util.dir/DependInfo.cmake"
  "/root/repo/src/topology/CMakeFiles/cvg_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
