file(REMOVE_RECURSE
  "libcvg_dag.a"
)
