# Empty compiler generated dependencies file for cvg_dag.
# This may be replaced when dependencies are built.
