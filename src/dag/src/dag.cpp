#include "cvg/dag/dag.hpp"

#include <algorithm>

#include "cvg/util/check.hpp"

namespace cvg {

Dag::Dag(std::vector<std::vector<NodeId>> out_edges)
    : out_edges_(std::move(out_edges)) {
  const std::size_t n = out_edges_.size();
  CVG_CHECK(n >= 1);
  CVG_CHECK(out_edges_[0].empty()) << "the sink has no out-edges";
  longest_.assign(n, 0);
  for (NodeId v = 1; v < n; ++v) {
    CVG_CHECK(!out_edges_[v].empty())
        << "node " << v << " has no route to the sink";
    std::sort(out_edges_[v].begin(), out_edges_[v].end());
    CVG_CHECK(std::unique(out_edges_[v].begin(), out_edges_[v].end()) ==
              out_edges_[v].end())
        << "duplicate out-edge at node " << v;
    for (const NodeId u : out_edges_[v]) {
      CVG_CHECK(u < v) << "out-edge " << v << "→" << u
                       << " does not decrease the id (acyclicity rule)";
      longest_[v] = std::max(longest_[v], longest_[u] + 1);
    }
    max_longest_ = std::max(max_longest_, longest_[v]);
    edges_ += out_edges_[v].size();
  }
}

namespace build_dag {

Dag path(std::size_t n) {
  CVG_CHECK(n >= 1);
  std::vector<std::vector<NodeId>> edges(n);
  for (NodeId v = 1; v < n; ++v) edges[v] = {v - 1};
  return Dag(std::move(edges));
}

Dag braid(std::size_t width, std::size_t length, std::size_t rung_every) {
  CVG_CHECK(width >= 1 && length >= 1 && rung_every >= 1);
  // Node layout: id = 1 + (hop * width + strand); hop 0 is adjacent to the
  // sink.  Edges: straight ahead (same strand, hop−1) plus, on rung hops,
  // a diagonal to the next strand.
  const std::size_t n = 1 + width * length;
  std::vector<std::vector<NodeId>> edges(n);
  const auto id = [&](std::size_t hop, std::size_t strand) {
    return static_cast<NodeId>(1 + hop * width + strand);
  };
  for (std::size_t hop = 0; hop < length; ++hop) {
    for (std::size_t strand = 0; strand < width; ++strand) {
      const NodeId v = id(hop, strand);
      if (hop == 0) {
        edges[v] = {0};
        continue;
      }
      edges[v].push_back(id(hop - 1, strand));
      if (hop % rung_every == 0 && width > 1) {
        const std::size_t other = (strand + 1) % width;
        const NodeId diag = id(hop - 1, other);
        if (diag < v) edges[v].push_back(diag);
      }
    }
  }
  return Dag(std::move(edges));
}

Dag diamond(std::size_t width, std::size_t levels) {
  CVG_CHECK(width >= 1 && levels >= 1);
  const std::size_t n = 1 + width * levels;
  std::vector<std::vector<NodeId>> edges(n);
  const auto id = [&](std::size_t level, std::size_t pos) {
    return static_cast<NodeId>(1 + (level - 1) * width + pos);
  };
  for (std::size_t level = 1; level <= levels; ++level) {
    for (std::size_t pos = 0; pos < width; ++pos) {
      const NodeId v = id(level, pos);
      if (level == 1) {
        edges[v] = {0};
        continue;
      }
      edges[v].push_back(id(level - 1, pos));
      if (pos + 1 < width) edges[v].push_back(id(level - 1, pos + 1));
    }
  }
  return Dag(std::move(edges));
}

Dag random_layered(std::size_t width, std::size_t levels,
                   double extra_edge_probability, Xoshiro256StarStar& rng) {
  CVG_CHECK(width >= 1 && levels >= 1);
  const std::size_t n = 1 + width * levels;
  std::vector<std::vector<NodeId>> edges(n);
  for (std::size_t level = 1; level <= levels; ++level) {
    for (std::size_t pos = 0; pos < width; ++pos) {
      const NodeId v = static_cast<NodeId>(1 + (level - 1) * width + pos);
      if (level == 1) {
        edges[v] = {0};
        continue;
      }
      const NodeId base = static_cast<NodeId>(1 + (level - 2) * width);
      edges[v].push_back(static_cast<NodeId>(base + rng.below(width)));
      while (rng.bernoulli(extra_edge_probability) &&
             edges[v].size() < width) {
        const NodeId extra = static_cast<NodeId>(base + rng.below(width));
        if (std::find(edges[v].begin(), edges[v].end(), extra) ==
            edges[v].end()) {
          edges[v].push_back(extra);
        }
      }
    }
  }
  return Dag(std::move(edges));
}

}  // namespace build_dag

}  // namespace cvg
