#include "cvg/dag/dag_sim.hpp"

#include <algorithm>

#include "cvg/core/engine.hpp"
#include "cvg/util/check.hpp"

namespace cvg {

static_assert(Engine<DagSimulator>);
static_assert(LocalityAuditingEngine<DagSimulator>);

DagSimulator::DagSimulator(const Dag& dag, const DagPolicy& policy,
                           bool audit_locality)
    : dag_(&dag), policy_(&policy), config_(dag.node_count()) {
  ws_.deltas.assign(dag.node_count(), 0);
  std::size_t max_degree = 0;
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    max_degree = std::max(max_degree, dag.out_edges(v).size());
  }
  ws_.edge_sends.reserve(max_degree);
  if (audit_locality) {
    auditor_ = LocalityAuditor::for_adjacency(
        undirected_adjacency(dag.node_count(),
                             [&dag](NodeId v) { return dag.out_edges(v); }),
        policy.name(), policy.locality());
  }
}

void DagSimulator::set_config(const Configuration& config) {
  CVG_CHECK(config.node_count() == dag_->node_count());
  config_ = config;
  peak_ = std::max(peak_, config_.max_height());
}

void DagSimulator::step(std::span<const NodeId> injections) {
  CVG_CHECK(injections.size() <= 1) << "the DAG substrate is rate-1";
  step_inject(injections.empty() ? kNoNode : injections.front());
}

void DagSimulator::step_inject(NodeId t) {
  const std::size_t n = dag_->node_count();

  // Decisions from start-of-step heights; effects accumulate in deltas so
  // forwarding is simultaneous.
  std::fill(ws_.deltas.begin(), ws_.deltas.end(), Height{0});
  std::uint64_t consumed = 0;
  const ScopedLocalityAudit audit(auditor_ ? &*auditor_ : nullptr, now_);
  for (NodeId v = 1; v < n; ++v) {
    const auto edges = dag_->out_edges(v);
    ws_.edge_sends.assign(edges.size(), 0);
    {
      const DecisionScope audit_scope(v);
      policy_->decide(*dag_, config_, v, ws_.edge_sends);
    }
    Capacity total = 0;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      CVG_CHECK(ws_.edge_sends[e] >= 0 && ws_.edge_sends[e] <= 1)
          << "edge capacity is 1";
      if (ws_.edge_sends[e] == 0) continue;
      ++total;
      if (edges[e] == Dag::sink()) {
        ++consumed;
      } else {
        ws_.deltas[edges[e]] = static_cast<Height>(ws_.deltas[edges[e]] + 1);
      }
    }
    CVG_CHECK(total <= config_.height(v))
        << "policy over-sent at node " << v;
    ws_.deltas[v] = static_cast<Height>(ws_.deltas[v] - total);
  }

  if (t != kNoNode) {
    CVG_CHECK(t < n);
    ++injected_;
    if (t == Dag::sink()) {
      ++delivered_;
    } else {
      ws_.deltas[t] = static_cast<Height>(ws_.deltas[t] + 1);
    }
  }

  for (NodeId v = 1; v < n; ++v) {
    if (ws_.deltas[v] != 0) config_.add(v, ws_.deltas[v]);
  }
  delivered_ += consumed;
  peak_ = std::max(peak_, config_.max_height());
  ++now_;
}

}  // namespace cvg
