#include "cvg/dag/dag_sim.hpp"

#include <algorithm>

#include "cvg/core/engine.hpp"
#include "cvg/util/check.hpp"

namespace cvg {

static_assert(Engine<DagSimulator>);
static_assert(LocalityAuditingEngine<DagSimulator>);

DagSimulator::DagSimulator(const Dag& dag, const DagPolicy& policy,
                           bool audit_locality)
    : dag_(&dag), policy_(&policy), config_(dag.node_count()),
      deltas_(dag.node_count(), 0) {
  if (audit_locality) {
    auditor_ = LocalityAuditor::for_adjacency(
        undirected_adjacency(dag.node_count(),
                             [&dag](NodeId v) { return dag.out_edges(v); }),
        policy.name(), policy.locality());
  }
}

void DagSimulator::set_config(const Configuration& config) {
  CVG_CHECK(config.node_count() == dag_->node_count());
  config_ = config;
  peak_ = std::max(peak_, config_.max_height());
}

void DagSimulator::step(std::span<const NodeId> injections) {
  CVG_CHECK(injections.size() <= 1) << "the DAG substrate is rate-1";
  step_inject(injections.empty() ? kNoNode : injections.front());
}

void DagSimulator::step_inject(NodeId t) {
  const std::size_t n = dag_->node_count();

  // Decisions from start-of-step heights; effects accumulate in deltas so
  // forwarding is simultaneous.
  std::fill(deltas_.begin(), deltas_.end(), Height{0});
  std::uint64_t consumed = 0;
  const ScopedLocalityAudit audit(auditor_ ? &*auditor_ : nullptr, now_);
  for (NodeId v = 1; v < n; ++v) {
    const auto edges = dag_->out_edges(v);
    edge_sends_.assign(edges.size(), 0);
    {
      const DecisionScope audit_scope(v);
      policy_->decide(*dag_, config_, v, edge_sends_);
    }
    Capacity total = 0;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      CVG_CHECK(edge_sends_[e] >= 0 && edge_sends_[e] <= 1)
          << "edge capacity is 1";
      if (edge_sends_[e] == 0) continue;
      ++total;
      if (edges[e] == Dag::sink()) {
        ++consumed;
      } else {
        deltas_[edges[e]] = static_cast<Height>(deltas_[edges[e]] + 1);
      }
    }
    CVG_CHECK(total <= config_.height(v))
        << "policy over-sent at node " << v;
    deltas_[v] = static_cast<Height>(deltas_[v] - total);
  }

  if (t != kNoNode) {
    CVG_CHECK(t < n);
    ++injected_;
    if (t == Dag::sink()) {
      ++delivered_;
    } else {
      deltas_[t] = static_cast<Height>(deltas_[t] + 1);
    }
  }

  for (NodeId v = 1; v < n; ++v) {
    if (deltas_[v] != 0) config_.add(v, deltas_[v]);
  }
  delivered_ += consumed;
  peak_ = std::max(peak_, config_.max_height());
  ++now_;
}

}  // namespace cvg
