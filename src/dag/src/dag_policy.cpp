#include <algorithm>
#include <numeric>

#include "cvg/dag/dag_sim.hpp"
#include "cvg/policy/standard.hpp"
#include "cvg/util/check.hpp"

namespace cvg {

void DagGreedy::decide(const Dag& dag, const Configuration& heights, NodeId v,
                       std::vector<Capacity>& sends) const {
  const auto edges = dag.out_edges(v);
  Height remaining = heights.height(v);
  if (remaining <= 0) return;

  // Lowest successors first (stable on ties: id order is the edge order).
  std::vector<std::size_t> order(edges.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return heights.height(edges[a]) < heights.height(edges[b]);
                   });
  for (const std::size_t e : order) {
    if (remaining <= 0) break;
    sends[e] = 1;
    --remaining;
  }
}

void DagOddEven::decide(const Dag& dag, const Configuration& heights, NodeId v,
                        std::vector<Capacity>& sends) const {
  const Height own = heights.height(v);
  if (own <= 0) return;
  const auto edges = dag.out_edges(v);
  std::size_t best = 0;
  for (std::size_t e = 1; e < edges.size(); ++e) {
    if (heights.height(edges[e]) < heights.height(edges[best])) best = e;
  }
  if (OddEvenPolicy::rule(own, heights.height(edges[best]))) sends[best] = 1;
}

}  // namespace cvg
