#include <algorithm>

#include "cvg/dag/dag_sim.hpp"
#include "cvg/policy/standard.hpp"
#include "cvg/util/check.hpp"

namespace cvg {

void DagGreedy::decide(const Dag& dag, const Configuration& heights, NodeId v,
                       std::vector<Capacity>& sends) const {
  const auto edges = dag.out_edges(v);
  Height remaining = heights.height(v);
  if (remaining <= 0) return;

  // Lowest successors first (ties: edge order).  When packets cover every
  // edge the order is moot; otherwise pick the `remaining` lowest by
  // repeated argmin over the unchosen edges — identical selection and order
  // to a stable sort, with zero scratch (fixed-footprint hot path: `decide`
  // runs once per node per step).
  if (remaining >= static_cast<Height>(edges.size())) {
    std::fill(sends.begin(), sends.end(), Capacity{1});
    return;
  }
  for (; remaining > 0; --remaining) {
    std::size_t best = edges.size();
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (sends[e] != 0) continue;
      if (best == edges.size() ||
          heights.height(edges[e]) < heights.height(edges[best])) {
        best = e;
      }
    }
    sends[best] = 1;
  }
}

void DagOddEven::decide(const Dag& dag, const Configuration& heights, NodeId v,
                        std::vector<Capacity>& sends) const {
  const Height own = heights.height(v);
  if (own <= 0) return;
  const auto edges = dag.out_edges(v);
  std::size_t best = 0;
  for (std::size_t e = 1; e < edges.size(); ++e) {
    if (heights.height(edges[e]) < heights.height(edges[best])) best = e;
  }
  if (OddEvenPolicy::rule(own, heights.height(edges[best]))) sends[best] = 1;
}

}  // namespace cvg
