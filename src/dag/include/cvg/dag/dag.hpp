#pragma once

/// \file dag.hpp
/// Sink-rooted DAG topology for the paper's §6 question: "a natural question
/// is if our algorithms generalize … to DAGs."  Every non-sink node has at
/// least one out-edge, every out-edge points to a strictly smaller node id
/// (so acyclicity is structural), and node 0 is the sink.  Each edge carries
/// at most one packet per step in the sink-ward direction.

#include <span>
#include <string>
#include <vector>

#include "cvg/core/types.hpp"
#include "cvg/util/rng.hpp"

namespace cvg {

/// Immutable sink-rooted DAG.  Out-edges are id-sorted per node.
class Dag {
 public:
  /// `out_edges[v]` lists v's successors; each must be < v, and every
  /// non-sink node needs at least one.  `out_edges[0]` must be empty.
  explicit Dag(std::vector<std::vector<NodeId>> out_edges);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return out_edges_.size();
  }
  [[nodiscard]] static constexpr NodeId sink() noexcept { return 0; }

  [[nodiscard]] std::span<const NodeId> out_edges(NodeId v) const noexcept {
    return out_edges_[v];
  }
  [[nodiscard]] std::size_t out_degree(NodeId v) const noexcept {
    return out_edges_[v].size();
  }

  /// Length of the longest path from v to the sink.
  [[nodiscard]] std::size_t height_of(NodeId v) const noexcept {
    return longest_[v];
  }
  [[nodiscard]] std::size_t max_path_length() const noexcept { return max_longest_; }

  /// Total number of edges.
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }

 private:
  std::vector<std::vector<NodeId>> out_edges_;
  std::vector<std::size_t> longest_;
  std::size_t max_longest_ = 0;
  std::size_t edges_ = 0;
};

namespace build_dag {

/// A path, as a degenerate DAG (baseline sanity).
[[nodiscard]] Dag path(std::size_t n);

/// The braid: `width` parallel paths of length `length` sharing the sink,
/// with "rungs" every `rung_every` hops connecting adjacent strands — each
/// interior node then has 2 out-edges (straight ahead and diagonally).
[[nodiscard]] Dag braid(std::size_t width, std::size_t length,
                        std::size_t rung_every = 1);

/// The diamond grid: levels of `width` nodes; every node at level d has
/// out-edges to its one or two nearest nodes at level d−1 (level 0 is the
/// sink alone).  The classic DAG stress shape.
[[nodiscard]] Dag diamond(std::size_t width, std::size_t levels);

/// Random layered DAG: `levels` layers of `width` nodes; each node gets
/// 1 + Binomial(extra edges) out-edges to uniformly random nodes of the
/// next-lower layer.
[[nodiscard]] Dag random_layered(std::size_t width, std::size_t levels,
                                 double extra_edge_probability,
                                 Xoshiro256StarStar& rng);

}  // namespace build_dag

}  // namespace cvg
