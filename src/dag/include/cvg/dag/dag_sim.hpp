#pragma once

/// \file dag_sim.hpp
/// Policies and the executor for information gathering on sink-rooted DAGs —
/// the library's probe of the paper's §6 question ("do our algorithms
/// generalize to DAGs?").  Per step: the adversary injects ≤ 1 packet, then
/// every node may forward at most one packet per out-edge (edge capacity 1),
/// decided from start-of-step heights.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cvg/audit/locality_auditor.hpp"
#include "cvg/core/config.hpp"
#include "cvg/core/types.hpp"
#include "cvg/dag/dag.hpp"

namespace cvg {

/// Local scheduling policy on a DAG: for one node, decide how many packets
/// to push down which out-edges.
class DagPolicy {
 public:
  virtual ~DagPolicy() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Fills `sends` (same length/order as `dag.out_edges(v)`, pre-zeroed)
  /// with 0/1 per edge; the total must not exceed `own`.
  virtual void decide(const Dag& dag, const Configuration& heights, NodeId v,
                      std::vector<Capacity>& sends) const = 0;

  /// Locality radius ℓ of `decide`, in hops of the *undirected* DAG: the
  /// decision for v may read heights at most ℓ edges away.  Both shipped
  /// policies look only at v and its out-neighbours (ℓ = 1); enforced by
  /// the locality auditor when `DagSimulator` runs with auditing on.
  [[nodiscard]] virtual int locality() const { return 1; }
};

/// Greedy on DAGs: push one packet down every out-edge while packets last,
/// lowest-height successors first (work-conserving, Θ(n) prone).
class DagGreedy final : public DagPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "dag-greedy"; }
  void decide(const Dag& dag, const Configuration& heights, NodeId v,
              std::vector<Capacity>& sends) const override;
};

/// Odd-Even on DAGs: apply the Algorithm 1 parity rule against the
/// *lowest* out-neighbour (ties: smallest id) and send a single packet down
/// that edge — the straightforward generalization the paper's conclusions
/// ask about.  No bound is proved; `bench_dag` reports the empirical shape.
class DagOddEven final : public DagPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "dag-odd-even"; }
  void decide(const Dag& dag, const Configuration& heights, NodeId v,
              std::vector<Capacity>& sends) const override;
};

/// Discrete-event executor on a DAG.  Copyable (copies are checkpoints).
class DagSimulator {
 public:
  /// `audit_locality` arms the ℓ-locality auditor (BFS distances over the
  /// undirected DAG) around every `DagPolicy::decide` call.
  DagSimulator(const Dag& dag, const DagPolicy& policy,
               bool audit_locality = false);

  /// One step: inject at `t` (or kNoNode), then forward everywhere.
  void step_inject(NodeId t);

  /// Engine-concept entry point; the substrate is rate-1, so `injections`
  /// holds at most one node.
  void step(std::span<const NodeId> injections);

  [[nodiscard]] const Configuration& config() const noexcept { return config_; }
  [[nodiscard]] Height peak_height() const noexcept { return peak_; }
  [[nodiscard]] Step now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t injected() const noexcept { return injected_; }

  void set_config(const Configuration& config);

  /// What the locality auditor measured so far, or nullptr when auditing is
  /// off (models `LocalityAuditingEngine`).
  [[nodiscard]] const LocalityAuditReport* locality_report() const noexcept {
    return auditor_ ? &auditor_->report() : nullptr;
  }

 private:
  /// Per-instance step workspace (fixed-footprint invariant): every buffer
  /// the step loop touches, sized once at construction — `edge_sends`
  /// pre-reserved to the maximum out-degree so the per-node refill never
  /// allocates, `deltas` sized to the node count.
  struct Workspace {
    std::vector<Capacity> edge_sends;  // scratch, per node
    std::vector<Height> deltas;        // scratch, per step
  };

  const Dag* dag_;
  const DagPolicy* policy_;
  Configuration config_;
  Workspace ws_;
  Step now_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t injected_ = 0;
  Height peak_ = 0;
  /// Armed around the decision loop when auditing is on.
  std::optional<LocalityAuditor> auditor_;
};

}  // namespace cvg
