#pragma once

/// \file fuzz.hpp
/// Mutation fuzzer over adversary traces: searches for schedules that force
/// higher buffer peaks than anything stored for their corpus bucket.
///
/// The search is seeded from (a) the bucket's existing corpus entries,
/// (b) the registry's adversary battery unrolled over the horizon (including
/// the staged Thm-3.1 and height-seeker strategies where applicable), and
/// (c) *depth-aligned volleys* — a generalization of the §5 synchronization
/// gadget: for every intersection node, one packet per child subtree,
/// injected at its deepest leaf and timed so all of them arrive at the
/// intersection simultaneously (emitted at two global phase offsets, since
/// parity-sensitive policies care).  On the staggered spider this seed alone
/// reproduces the paper's √n lower bound for 1-local policies.
///
/// Seeds live in a small elite pool which a deterministic RNG then evolves
/// with trace-level mutators (see `fuzz_mutator_names()`): crossover,
/// timing/site perturbations, burst merging, and search-guided extensions
/// that hand the end state of a trace prefix to the lookahead seeker or the
/// beam search.  Every candidate is rate-filtered, replayed, and scored by
/// its replayed peak; nothing is ever admitted on faith.
///
/// After the round budget, the best trace — if it beats the stored bucket
/// peak — is minimized (see minimize.hpp) with its own peak as the target
/// and admitted through the store, which re-replays it one more time.

#include <string>
#include <vector>

#include "cvg/corpus/minimize.hpp"
#include "cvg/corpus/store.hpp"
#include "cvg/policy/policy.hpp"
#include "cvg/sim/simulator.hpp"
#include "cvg/topology/tree.hpp"

namespace cvg::corpus {

struct FuzzOptions {
  std::uint64_t seed = 1;        ///< master seed; equal seeds ⇒ equal runs
  std::size_t rounds = 512;      ///< mutation attempts after seeding
  Step horizon = 0;              ///< trace length; 0 = 4·(max_depth + 8)
  std::size_t pool_size = 8;     ///< elite pool kept between rounds
  std::size_t seeker_node_cap = 64;   ///< skip seeker seeds/extends above this
  std::size_t beam_node_cap = 256;    ///< skip beam extends above this
  int seeker_lookahead = 2;
  std::uint64_t budget_ms = 0;   ///< wall-clock cutoff for the mutation loop
                                 ///< (0 = none; determinism holds only when
                                 ///< the cutoff never fires)
  bool minimize = true;          ///< minimize the winner before admission
  MinimizeOptions minimize_options;
};

/// What a fuzz run did, whether or not it improved the bucket.
struct FuzzReport {
  std::size_t seeds = 0;             ///< seed schedules generated
  std::size_t candidates_tried = 0;  ///< schedules replayed (seeds + mutants)
  std::size_t pool_improvements = 0; ///< times the pool's best peak rose
  Height best_peak = 0;              ///< best replayed peak seen
  std::string best_origin;           ///< seed/mutator that produced it
  std::size_t pre_minimize_steps = 0;  ///< winner's steps before minimization
  std::size_t final_steps = 0;         ///< winner's steps as admitted
  AdmitResult admit;                   ///< outcome of the admission attempt
};

/// The mutator names, in selection order.  Exposed so tests and the
/// invariant checker can cross-reference them.
[[nodiscard]] const std::vector<std::string>& fuzz_mutator_names();

/// Fuzzes the bucket (tree/`topology`, policy, sim_options) and attempts to
/// admit the best trace found into `store`.  `topology` is the display
/// label stored with any admitted entry.  Deterministic for fixed options
/// (when no wall-clock budget is set).
FuzzReport fuzz_bucket(CorpusStore& store, const Tree& tree,
                       const std::string& topology, const Policy& policy,
                       const SimOptions& sim_options,
                       const FuzzOptions& options = {});

}  // namespace cvg::corpus
