#pragma once

/// \file minimize.hpp
/// Delta-debugging trace minimizer: shrinks an injection schedule while
/// preserving "replayed peak ≥ target" under deterministic replay.  Four
/// passes, iterated to a fixpoint (or the replay budget):
///
///   1. *truncate* — cut everything after the first step at which the
///      running peak reaches the target (peaks are monotone records, so the
///      tail can only be dead weight);
///   2. *step ddmin* — classic delta debugging over whole steps: try
///      removing contiguous chunks at geometrically shrinking granularity
///      (removal shifts later steps earlier, so this also compacts idle
///      gaps when the policy's timing tolerates it);
///   3. *packet drop* — try removing individual injections while keeping
///      the step grid (timing-preserving, catches packets the peak never
///      needed);
///   4. *node lowering* — try replacing each injection site with its parent
///      (closer to the sink), normalising traces towards the smallest
///      neighbourhood that still forces the peak.
///
/// Every candidate is accepted or rejected purely by replay, so the result
/// is valid by construction for any policy, any topology and either step
/// semantics.

#include "cvg/adversary/trace_io.hpp"
#include "cvg/sim/simulator.hpp"

namespace cvg::corpus {

struct MinimizeOptions {
  /// Stop after this many replays (the dominant cost; each replay is
  /// O(steps · occupied)).  The passes degrade gracefully when the budget
  /// runs out mid-way: the schedule is simply left at its current stage.
  std::uint64_t max_replays = 20000;

  /// Fixpoint cap: full pass rounds before giving up on further shrinking.
  int max_rounds = 8;
};

struct MinimizeResult {
  adversary::Schedule schedule;   ///< the minimized trace
  Height peak = 0;                ///< replayed peak of `schedule` (≥ target)
  std::size_t initial_steps = 0;  ///< schedule length before
  std::size_t final_steps = 0;    ///< schedule length after
  std::uint64_t replays = 0;      ///< replays spent
};

/// Minimizes `schedule` while preserving peak ≥ `target` against
/// (tree, policy, options).  `target` must be reachable by the input
/// schedule (aborts otherwise — minimizing an unreproducible trace is
/// always a caller bug).
[[nodiscard]] MinimizeResult minimize_schedule(const Tree& tree,
                                               const Policy& policy,
                                               const SimOptions& sim_options,
                                               adversary::Schedule schedule,
                                               Height target,
                                               MinimizeOptions options = {});

}  // namespace cvg::corpus
