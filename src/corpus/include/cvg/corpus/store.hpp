#pragma once

/// \file store.hpp
/// The persistent adversary corpus: a directory of `*.cvgc` entries (one
/// per file, named by content hash) with a peak-monotone admission rule.
///
/// Entries compete in *buckets* — (topology, policy, capacity, burstiness,
/// semantics) — and a candidate is admitted iff its replayed peak strictly
/// beats the best stored peak of its bucket (or the bucket is empty).
/// Admission replays the candidate first and records the *replayed* peak,
/// never the caller's claim, so a stored entry is by construction a
/// machine-checked lower-bound certificate: "this policy can be forced to
/// peak ≥ p on this topology".  The superseded best of the bucket is
/// removed, keeping one champion per bucket.

#include <optional>
#include <string>
#include <vector>

#include "cvg/corpus/format.hpp"

namespace cvg::corpus {

/// One entry as it sits on disk.
struct StoredEntry {
  CorpusEntry entry;
  std::string path;
  std::uint64_t hash = 0;    ///< content hash (also the file name stem)
  std::uint64_t bucket = 0;  ///< bucket key
};

/// Outcome of an admission attempt.
struct AdmitResult {
  bool admitted = false;
  Height peak = 0;        ///< replayed peak of the candidate
  Height previous = 0;    ///< bucket best before (0 when the bucket was empty)
  std::string path;       ///< file written (empty when rejected)
  std::string reason;     ///< human-readable verdict
};

/// Directory-backed corpus.  The constructor scans the directory (created
/// if missing); files that fail to parse are reported via `load_errors()`
/// and otherwise ignored — a corrupt entry must not brick the store.
class CorpusStore {
 public:
  explicit CorpusStore(std::string dir);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] const std::vector<StoredEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] const std::vector<std::string>& load_errors() const noexcept {
    return load_errors_;
  }

  /// Best stored peak of `bucket`, or nullopt when the bucket is empty.
  [[nodiscard]] std::optional<Height> best_peak(std::uint64_t bucket) const;

  /// The champion entry of `bucket`, or nullptr.
  [[nodiscard]] const StoredEntry* best_entry(std::uint64_t bucket) const;

  /// Applies the admission rule to `candidate` (see file comment).  The
  /// candidate's schedule must be feasible and its policy known; its `peak`
  /// field is overwritten with the replayed value before storing.
  AdmitResult admit(CorpusEntry candidate);

 private:
  std::string dir_;
  std::vector<StoredEntry> entries_;
  std::vector<std::string> load_errors_;
};

}  // namespace cvg::corpus
