#pragma once

/// \file format.hpp
/// The on-disk format of the worst-case trace corpus: one binary file per
/// entry, versioned, checksummed, and keyed by a canonical content hash so
/// that semantically identical traces deduplicate regardless of provenance.
///
/// Layout (all integers little-endian, lengths bounds-checked on read):
///
///     "CVGC"                magic
///     u32  version          (currently 1)
///     u64  checksum         FNV-1a64 over every payload byte that follows
///     ---- payload ----
///     u64  content_hash     canonical key (recomputed and verified on read)
///     u32  node_count
///     str  topology         human-readable label, e.g. "staggered-spider:8"
///     str  policy           policy-registry name (replay rebuilds from it)
///     str  provenance       free text: who found this trace and how
///     i32  capacity         link capacity / injection rate c
///     i32  burstiness       sigma of the (sigma, rho) token bucket
///     u8   semantics        StepSemantics
///     i64  peak             peak height under deterministic replay
///     u64  pre_minimize_steps  schedule length before minimization (0 = n/a)
///     u32 × node_count      parent vector (kNoNode for the sink)
///     u64  step_count
///     per step: u32 k, then k × u32 injected node ids
///
/// where `str` is `u32 length + bytes`.  Readers return structured errors
/// (never abort, never exhibit UB) on truncated or corrupted input: the
/// replay gate must be able to point at the one bad file in a corpus
/// directory instead of dying on it.
///
/// The content hash covers exactly the semantic inputs of a replay —
/// parent vector, policy name, capacity, burstiness, semantics, schedule —
/// and deliberately excludes the topology label, provenance, recorded peak
/// and pre-minimization step count, which are metadata about the entry, not
/// part of the trace.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cvg/adversary/trace_io.hpp"
#include "cvg/core/types.hpp"

namespace cvg::corpus {

inline constexpr char kMagic[4] = {'C', 'V', 'G', 'C'};
inline constexpr std::uint32_t kFormatVersion = 1;

/// One corpus entry: a complete, self-contained replay instruction.
struct CorpusEntry {
  std::vector<NodeId> parents;  ///< exact topology (parents[0] == kNoNode)
  std::string topology;         ///< display label (e.g. a topology spec)
  std::string policy;           ///< policy-registry name
  std::string provenance;       ///< how this trace was discovered
  Capacity capacity = 1;
  Capacity burstiness = 0;
  StepSemantics semantics = StepSemantics::DecideBeforeInjection;
  Height peak = 0;              ///< recorded peak under deterministic replay
  Step pre_minimize_steps = 0;  ///< schedule length before minimization
  adversary::Schedule schedule;

  friend bool operator==(const CorpusEntry&, const CorpusEntry&) = default;
};

/// Canonical key of the trace (see file comment for what it covers).
[[nodiscard]] std::uint64_t content_hash(const CorpusEntry& entry);

/// Bucket key: the content hash *minus the schedule* — two traces compete in
/// the admission rule iff they agree on (topology, policy, c, sigma,
/// semantics).
[[nodiscard]] std::uint64_t bucket_key(const CorpusEntry& entry);

/// Serializes `entry` to bytes (deterministic: equal entries produce equal
/// bytes, so corpus files are reproducible bit-for-bit).
[[nodiscard]] std::string serialize_entry(const CorpusEntry& entry);

/// Parses an entry from `bytes`.  On any malformation — bad magic, wrong
/// version, checksum mismatch, truncation, out-of-range node ids,
/// rate-infeasible schedule — returns nullopt and sets `error`.
[[nodiscard]] std::optional<CorpusEntry> parse_entry(std::string_view bytes,
                                                     std::string& error);

/// File wrappers.  `save_entry` aborts on I/O failure (a full disk is not a
/// recoverable condition for the tools); `load_entry` reports read *and*
/// parse failures through `error`.
void save_entry(const std::string& path, const CorpusEntry& entry);
[[nodiscard]] std::optional<CorpusEntry> load_entry(const std::string& path,
                                                    std::string& error);

/// Canonical file name of an entry: 16 lowercase hex digits of the content
/// hash plus the ".cvgc" suffix.
[[nodiscard]] std::string entry_filename(std::uint64_t content_hash);

/// True iff `schedule` respects the token-bucket rate constraint (at most
/// c·T + sigma injections over any window of T steps) and every injected id
/// is a valid node of an `node_count`-node topology.  The simulator aborts
/// on infeasible schedules, so the fuzzer and the parser both pre-filter
/// with this.
[[nodiscard]] bool schedule_is_feasible(const adversary::Schedule& schedule,
                                        std::size_t node_count,
                                        Capacity capacity,
                                        Capacity burstiness);

}  // namespace cvg::corpus
