#pragma once

/// \file replay.hpp
/// Deterministic replay of corpus entries, and the regression gate that
/// replays a whole corpus directory and verifies every recorded peak is
/// still reached.  Replay semantics: build the entry's exact topology and
/// policy, drive the height simulator for exactly `schedule.size()` steps
/// (trailing drain steps, if a trace needs them to realize its peak, are
/// stored in the schedule as idle steps), and read off the peak height.
/// Both step engines produce bit-identical peaks, so the gate is engine-
/// agnostic.

#include <string>
#include <vector>

#include "cvg/corpus/format.hpp"
#include "cvg/sim/simulator.hpp"

namespace cvg::corpus {

/// Simulation options an entry prescribes (shared by replay, the minimizer
/// and the fuzzer, so all three agree on the semantics bit-for-bit).
[[nodiscard]] SimOptions replay_options(const CorpusEntry& entry);

/// Peak height reached by `schedule` against (tree, policy, options) over
/// exactly `schedule.size()` steps.
[[nodiscard]] Height replay_peak(const Tree& tree, const Policy& policy,
                                 const SimOptions& options,
                                 const adversary::Schedule& schedule);

/// Like `replay_peak`, but also reports the first step index (0-based) at
/// which the running peak reached `target` via `first_step_reaching`
/// (`schedule.size()` when it never did) — the minimizer's truncation pass.
[[nodiscard]] Height replay_peak_traced(const Tree& tree, const Policy& policy,
                                        const SimOptions& options,
                                        const adversary::Schedule& schedule,
                                        Height target,
                                        Step& first_step_reaching);

/// Replays one parsed entry.  Aborts if the entry names an unknown policy
/// (the parser cannot know the registry; the gate reports it instead).
[[nodiscard]] Height replay_entry(const CorpusEntry& entry);

/// Outcome of replaying one corpus file.
struct ReplayCheck {
  std::string path;      ///< the file checked
  std::string label;     ///< "topology / policy / c=N" for reports
  Height recorded = 0;   ///< peak stored in the entry
  Height replayed = 0;   ///< peak reached now
  Step steps = 0;        ///< schedule length
  bool ok = false;       ///< parsed, known policy, replayed >= recorded
  std::string error;     ///< parse/registry failure, empty when parsed
};

/// Replays every `*.cvgc` file in `dir` (sorted by name, so reports are
/// deterministic).  A check fails when the file does not parse, names an
/// unknown policy, or replays below its recorded peak — any of these means
/// a previously certified worst case is no longer reproduced.
[[nodiscard]] std::vector<ReplayCheck> replay_corpus(const std::string& dir);

/// True iff `checks` is non-empty and every check passed.
[[nodiscard]] bool replay_all_ok(const std::vector<ReplayCheck>& checks);

}  // namespace cvg::corpus
