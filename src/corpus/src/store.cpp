#include "cvg/corpus/store.hpp"

#include <algorithm>
#include <filesystem>

#include "cvg/corpus/replay.hpp"
#include "cvg/policy/registry.hpp"
#include "cvg/util/check.hpp"

namespace cvg::corpus {

CorpusStore::CorpusStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  CVG_CHECK(!ec) << "cannot create corpus directory " << dir_ << ": "
                 << ec.message();

  std::vector<std::string> paths;
  for (const auto& item : std::filesystem::directory_iterator(dir_)) {
    if (item.path().extension() == ".cvgc") {
      paths.push_back(item.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    std::string error;
    std::optional<CorpusEntry> entry = load_entry(path, error);
    if (!entry.has_value()) {
      load_errors_.push_back(path + ": " + error);
      continue;
    }
    StoredEntry stored;
    stored.hash = content_hash(*entry);
    stored.bucket = bucket_key(*entry);
    stored.path = path;
    stored.entry = *std::move(entry);
    entries_.push_back(std::move(stored));
  }
}

std::optional<Height> CorpusStore::best_peak(std::uint64_t bucket) const {
  const StoredEntry* best = best_entry(bucket);
  if (best == nullptr) return std::nullopt;
  return best->entry.peak;
}

const StoredEntry* CorpusStore::best_entry(std::uint64_t bucket) const {
  const StoredEntry* best = nullptr;
  for (const StoredEntry& stored : entries_) {
    if (stored.bucket != bucket) continue;
    if (best == nullptr || stored.entry.peak > best->entry.peak) {
      best = &stored;
    }
  }
  return best;
}

AdmitResult CorpusStore::admit(CorpusEntry candidate) {
  CVG_CHECK(is_known_policy(candidate.policy))
      << "cannot admit entry for unknown policy '" << candidate.policy << "'";
  CVG_CHECK(schedule_is_feasible(candidate.schedule, candidate.parents.size(),
                                 candidate.capacity, candidate.burstiness))
      << "cannot admit rate-infeasible schedule";

  AdmitResult result;
  // Never trust the caller's peak: the stored value is what replay produces
  // here and now, which is exactly what the regression gate will re-check.
  result.peak = replay_entry(candidate);
  candidate.peak = result.peak;

  const std::uint64_t bucket = bucket_key(candidate);
  const std::optional<Height> incumbent = best_peak(bucket);
  result.previous = incumbent.value_or(0);
  if (incumbent.has_value() && result.peak <= *incumbent) {
    result.reason = "peak " + std::to_string(result.peak) +
                    " does not beat stored peak " + std::to_string(*incumbent);
    return result;
  }

  const std::uint64_t hash = content_hash(candidate);
  result.path =
      (std::filesystem::path(dir_) / entry_filename(hash)).string();
  save_entry(result.path, candidate);

  // One champion per bucket: drop every superseded entry of this bucket
  // (there is normally exactly one) from disk and from the index.
  for (const StoredEntry& stored : entries_) {
    if (stored.bucket == bucket && stored.path != result.path) {
      std::error_code ec;
      std::filesystem::remove(stored.path, ec);  // best-effort cleanup
    }
  }
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const StoredEntry& stored) {
                                  return stored.bucket == bucket;
                                }),
                 entries_.end());

  StoredEntry stored;
  stored.hash = hash;
  stored.bucket = bucket;
  stored.path = result.path;
  stored.entry = std::move(candidate);
  entries_.push_back(std::move(stored));

  result.admitted = true;
  result.reason = incumbent.has_value()
                      ? "beats stored peak " + std::to_string(*incumbent)
                      : "first entry of its bucket";
  return result;
}

}  // namespace cvg::corpus
