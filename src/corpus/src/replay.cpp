#include "cvg/corpus/replay.hpp"

#include <algorithm>
#include <filesystem>

#include "cvg/policy/registry.hpp"
#include "cvg/util/check.hpp"

namespace cvg::corpus {

SimOptions replay_options(const CorpusEntry& entry) {
  SimOptions options;
  options.capacity = entry.capacity;
  options.burstiness = entry.burstiness;
  options.semantics = entry.semantics;
  return options;
}

Height replay_peak(const Tree& tree, const Policy& policy,
                   const SimOptions& options,
                   const adversary::Schedule& schedule) {
  Simulator sim(tree, policy, options);
  for (const auto& step : schedule) {
    sim.step(std::span<const NodeId>(step));
  }
  return sim.peak_height();
}

Height replay_peak_traced(const Tree& tree, const Policy& policy,
                          const SimOptions& options,
                          const adversary::Schedule& schedule, Height target,
                          Step& first_step_reaching) {
  Simulator sim(tree, policy, options);
  first_step_reaching = schedule.size();
  Step index = 0;
  for (const auto& step : schedule) {
    sim.step(std::span<const NodeId>(step));
    if (first_step_reaching == schedule.size() && sim.peak_height() >= target) {
      first_step_reaching = index;
    }
    ++index;
  }
  return sim.peak_height();
}

Height replay_entry(const CorpusEntry& entry) {
  CVG_CHECK(is_known_policy(entry.policy))
      << "corpus entry names unknown policy '" << entry.policy << "'";
  const Tree tree(entry.parents);
  const PolicyPtr policy = make_policy(entry.policy);
  return replay_peak(tree, *policy, replay_options(entry), entry.schedule);
}

std::vector<ReplayCheck> replay_corpus(const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& item : std::filesystem::directory_iterator(dir, ec)) {
    if (item.path().extension() == ".cvgc") {
      paths.push_back(item.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<ReplayCheck> checks;
  if (ec) {
    ReplayCheck check;
    check.path = dir;
    check.error = "cannot list corpus directory: " + ec.message();
    checks.push_back(std::move(check));
    return checks;
  }
  for (const std::string& path : paths) {
    ReplayCheck check;
    check.path = path;
    std::string error;
    const std::optional<CorpusEntry> entry = load_entry(path, error);
    if (!entry.has_value()) {
      check.error = error;
      checks.push_back(std::move(check));
      continue;
    }
    check.label = entry->topology + " / " + entry->policy + " / c=" +
                  std::to_string(entry->capacity);
    check.recorded = entry->peak;
    check.steps = entry->schedule.size();
    if (!is_known_policy(entry->policy)) {
      check.error = "unknown policy '" + entry->policy + "'";
      checks.push_back(std::move(check));
      continue;
    }
    check.replayed = replay_entry(*entry);
    // The gate is one-sided: replaying *above* the recorded peak still
    // certifies the stored lower bound (the entry is merely stale); only a
    // shortfall means a known-bad trace stopped reproducing.
    check.ok = check.replayed >= check.recorded;
    checks.push_back(std::move(check));
  }
  return checks;
}

bool replay_all_ok(const std::vector<ReplayCheck>& checks) {
  if (checks.empty()) return false;
  return std::all_of(checks.begin(), checks.end(),
                     [](const ReplayCheck& check) { return check.ok; });
}

}  // namespace cvg::corpus
