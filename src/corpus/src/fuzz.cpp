#include "cvg/corpus/fuzz.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_set>
#include <utility>

#include "cvg/adversary/registry.hpp"
#include "cvg/adversary/seeker.hpp"
#include "cvg/corpus/replay.hpp"
#include "cvg/policy/registry.hpp"
#include "cvg/search/beam.hpp"
#include "cvg/sim/lane_engine.hpp"
#include "cvg/util/check.hpp"
#include "cvg/util/rng.hpp"

namespace cvg::corpus {

namespace {

using adversary::Schedule;

/// Cheap structural fingerprint, used only to dedupe candidates before the
/// (much more expensive) replay.
std::uint64_t fingerprint(const Schedule& schedule) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  const auto mix = [&h](std::uint64_t value) {
    h ^= value;
    h *= 1099511628211ULL;
  };
  mix(schedule.size());
  for (const auto& step : schedule) {
    mix(step.size() + 0x9e3779b97f4a7c15ULL);
    for (const NodeId node : step) mix(node);
  }
  return h;
}

struct Candidate {
  Schedule schedule;
  Height peak = 0;
  std::uint64_t fp = 0;
  std::string origin;
};

/// Elite-pool ordering: taller peak, then shorter trace, then a stable
/// fingerprint tiebreak so the pool is independent of insertion order.
bool better(const Candidate& a, const Candidate& b) {
  if (a.peak != b.peak) return a.peak > b.peak;
  if (a.schedule.size() != b.schedule.size()) {
    return a.schedule.size() < b.schedule.size();
  }
  return a.fp < b.fp;
}

/// Normalizes a candidate's length: padded with idle steps up to the horizon
/// (peaks often occur during the drain after the last injection) and capped
/// at twice the horizon so mutation cannot grow traces without bound.
void pad_to_horizon(Schedule& schedule, Step horizon) {
  const auto lo = static_cast<std::size_t>(horizon);
  if (schedule.size() < lo) schedule.resize(lo);
  if (schedule.size() > 2 * lo) schedule.resize(2 * lo);
}

/// Unrolls a planning adversary into a concrete schedule by playing it
/// against a live simulation for `horizon` steps.
Schedule unroll_adversary(const Tree& tree, const Policy& policy,
                          const SimOptions& sim_options, Adversary& adv,
                          Step horizon) {
  Simulator sim(tree, policy, sim_options);
  adv.on_simulation_start();
  Schedule schedule;
  schedule.reserve(static_cast<std::size_t>(horizon));
  std::vector<NodeId> out;
  for (Step s = 0; s < horizon; ++s) {
    out.clear();
    adv.plan(tree, sim.config(), s, sim_options.capacity, out);
    sim.step(out);
    schedule.push_back(out);
  }
  return schedule;
}

/// Deepest node of the subtree rooted at `root` (smallest id on ties).
NodeId deepest_leaf_in_subtree(const Tree& tree, NodeId root) {
  NodeId best = root;
  std::size_t best_depth = tree.depth(root);
  std::vector<NodeId> stack = {root};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    if (tree.depth(v) > best_depth ||
        (tree.depth(v) == best_depth && v < best)) {
      best = v;
      best_depth = tree.depth(v);
    }
    for (const NodeId child : tree.children(v)) stack.push_back(child);
  }
  return best;
}

/// Depth-aligned volley seeds (see file comment in fuzz.hpp): per
/// intersection node, one packet per child subtree, injected at the deepest
/// leaf and timed so all of them arrive at the intersection simultaneously.
/// Emitted at global phase offsets 0 and 1 because parity-sensitive policies
/// (Odd-Even) behave differently on shifted schedules.  Injections that the
/// token bucket cannot afford are dropped deterministically (shorter legs
/// first), which keeps every seed feasible by construction.
std::vector<std::pair<Schedule, std::string>> volley_seeds(
    const Tree& tree, const SimOptions& sim_options) {
  std::vector<std::pair<Schedule, std::string>> seeds;
  std::size_t targets = 0;
  for (const NodeId p : tree.bfs_order()) {
    if (p == Tree::sink() || !tree.is_intersection(p)) continue;
    if (++targets > 8) break;

    std::vector<std::pair<std::size_t, NodeId>> legs;  // (distance, leaf)
    for (const NodeId child : tree.children(p)) {
      const NodeId leaf = deepest_leaf_in_subtree(tree, child);
      legs.emplace_back(tree.depth(leaf) - tree.depth(p), leaf);
    }
    std::sort(legs.begin(), legs.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    const std::size_t span = legs.front().first;  // longest leg, ≥ 1

    for (std::size_t offset = 0; offset < 2; ++offset) {
      Schedule desired(offset + span);
      for (const auto& [dist, leaf] : legs) {
        desired[offset + span - dist].push_back(leaf);
      }
      // Mirror of the simulator's token bucket; drop what it cannot afford.
      Schedule schedule(desired.size());
      std::int64_t tokens = sim_options.burstiness;
      const std::int64_t cap = sim_options.capacity;
      const std::int64_t bucket_max =
          static_cast<std::int64_t>(sim_options.capacity) +
          sim_options.burstiness;
      for (std::size_t s = 0; s < desired.size(); ++s) {
        tokens = std::min(bucket_max, tokens + cap);
        for (const NodeId leaf : desired[s]) {
          if (tokens == 0) break;
          schedule[s].push_back(leaf);
          --tokens;
        }
      }
      seeds.emplace_back(std::move(schedule),
                         offset == 0 ? "volley" : "volley+1");
    }
  }
  return seeds;
}

std::size_t pick_index(Xoshiro256StarStar& rng, std::size_t bound) {
  return static_cast<std::size_t>(rng.below(bound));
}

/// Index of a random non-empty step, or `schedule.size()` when all idle.
std::size_t pick_nonempty_step(const Schedule& schedule,
                               Xoshiro256StarStar& rng) {
  std::vector<std::size_t> nonempty;
  for (std::size_t s = 0; s < schedule.size(); ++s) {
    if (!schedule[s].empty()) nonempty.push_back(s);
  }
  if (nonempty.empty()) return schedule.size();
  return nonempty[pick_index(rng, nonempty.size())];
}

// ---- mutators (order must match fuzz_mutator_names) ---------------------

Schedule mutate_splice(const Schedule& a, const Schedule& b,
                       Xoshiro256StarStar& rng) {
  const std::size_t shared = std::min(a.size(), b.size());
  if (shared < 2) return {};
  const std::size_t cut = 1 + pick_index(rng, shared - 1);
  Schedule child(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(cut));
  child.insert(child.end(), b.begin() + static_cast<std::ptrdiff_t>(cut),
               b.end());
  return child;
}

Schedule mutate_time_shift(const Schedule& parent, Xoshiro256StarStar& rng) {
  const std::size_t s = pick_nonempty_step(parent, rng);
  if (s == parent.size()) return {};
  const std::size_t delta = 1 + pick_index(rng, 4);
  std::size_t target;
  if (rng.below(2) == 0) {
    target = s >= delta ? s - delta : 0;
  } else {
    target = std::min(s + delta, parent.size() - 1);
  }
  if (target == s) return {};
  Schedule child = parent;
  child[target].insert(child[target].end(), child[s].begin(), child[s].end());
  child[s].clear();
  return child;
}

Schedule mutate_node_shift(const Tree& tree, const Schedule& parent,
                           Xoshiro256StarStar& rng) {
  const std::size_t s = pick_nonempty_step(parent, rng);
  if (s == parent.size()) return {};
  Schedule child = parent;
  const std::size_t k = pick_index(rng, child[s].size());
  const NodeId node = child[s][k];
  const bool towards_sink = rng.below(2) == 0;
  NodeId replacement = kNoNode;
  if (towards_sink) {
    const NodeId up = tree.parent(node);
    if (up != kNoNode && up != Tree::sink()) replacement = up;
  }
  if (replacement == kNoNode) {  // away from the sink (or `up` was unusable)
    const std::span<const NodeId> down = tree.children(node);
    if (!down.empty()) replacement = down[pick_index(rng, down.size())];
  }
  if (replacement == kNoNode || replacement == node) return {};
  child[s][k] = replacement;
  return child;
}

Schedule mutate_burst_merge(const Schedule& parent, Xoshiro256StarStar& rng) {
  std::vector<std::size_t> pairs;  // i where steps i and i+1 both inject
  for (std::size_t s = 0; s + 1 < parent.size(); ++s) {
    if (!parent[s].empty() && !parent[s + 1].empty()) pairs.push_back(s);
  }
  if (pairs.empty()) return {};
  const std::size_t s = pairs[pick_index(rng, pairs.size())];
  Schedule child = parent;
  child[s].insert(child[s].end(), child[s + 1].begin(), child[s + 1].end());
  child[s + 1].clear();
  return child;
}

/// Replays a random prefix of the parent, then lets the lookahead seeker
/// continue from the reached configuration for a handful of steps.
Schedule mutate_seeker_extend(const Tree& tree, const Policy& policy,
                              const SimOptions& sim_options,
                              const Schedule& parent, const FuzzOptions& opts,
                              Xoshiro256StarStar& rng) {
  if (policy.is_centralized() ||
      tree.node_count() > opts.seeker_node_cap) {
    return {};
  }
  const std::size_t cut = pick_index(rng, parent.size() + 1);
  Schedule child(parent.begin(),
                 parent.begin() + static_cast<std::ptrdiff_t>(cut));
  Simulator sim(tree, policy, sim_options);
  for (const auto& step : child) sim.step(step);
  adversary::HeightSeeker seeker(policy, sim_options, opts.seeker_lookahead);
  const std::size_t extend = 4 + pick_index(rng, 13);
  std::vector<NodeId> out;
  for (std::size_t k = 0; k < extend; ++k) {
    out.clear();
    seeker.plan(tree, sim.config(), static_cast<Step>(cut + k),
                sim_options.capacity, out);
    sim.step(out);
    child.push_back(out);
  }
  return child;
}

/// Replays a random prefix of the parent, then warm-starts the beam search
/// from the reached configuration and splices its best continuation on.
Schedule mutate_beam_extend(const Tree& tree, const Policy& policy,
                            const SimOptions& sim_options,
                            const Schedule& parent, const FuzzOptions& opts,
                            Xoshiro256StarStar& rng) {
  if (policy.is_centralized() || sim_options.capacity != 1 ||
      tree.node_count() > opts.beam_node_cap) {
    return {};
  }
  const std::size_t cut = pick_index(rng, parent.size() + 1);
  Schedule child(parent.begin(),
                 parent.begin() + static_cast<std::ptrdiff_t>(cut));
  Simulator sim(tree, policy, sim_options);
  for (const auto& step : child) sim.step(step);
  search::BeamOptions beam_options;
  beam_options.width = 16;
  beam_options.generations = 16 + pick_index(rng, 17);
  beam_options.keep_schedule = true;
  beam_options.initial = sim.config();
  const search::BeamResult found =
      search::beam_worst_case(tree, policy, sim_options, beam_options);
  if (found.schedule.empty()) return {};
  for (const NodeId t : found.schedule) {
    if (t == kNoNode) {
      child.emplace_back();
    } else {
      child.push_back({t});
    }
  }
  return child;
}

}  // namespace

const std::vector<std::string>& fuzz_mutator_names() {
  static const std::vector<std::string> kMutators = {
      "splice",      "time-shift",    "node-shift",
      "burst-merge", "seeker-extend", "beam-extend"};
  return kMutators;
}

FuzzReport fuzz_bucket(CorpusStore& store, const Tree& tree,
                       const std::string& topology, const Policy& policy,
                       const SimOptions& sim_options,
                       const FuzzOptions& options) {
  CVG_CHECK(tree.node_count() >= 2) << "nothing to fuzz on a sink-only tree";
  CVG_CHECK(is_known_policy(policy.name()))
      << "fuzzing needs a registry policy ('" << policy.name()
      << "' is unknown, so a stored trace could never be replayed)";
  CVG_CHECK(options.pool_size >= 1);

  const Step horizon =
      options.horizon != 0
          ? options.horizon
          : 4 * (static_cast<Step>(tree.max_depth()) + 8);

  CorpusEntry proto;
  proto.parents.assign(tree.parents().begin(), tree.parents().end());
  proto.topology = topology;
  proto.policy = policy.name();
  proto.capacity = sim_options.capacity;
  proto.burstiness = sim_options.burstiness;
  proto.semantics = sim_options.semantics;
  const std::uint64_t bucket = bucket_key(proto);

  FuzzReport report;
  std::vector<Candidate> pool;
  std::unordered_set<std::uint64_t> seen;

  // Candidates are scored in lane batches: `consider` stages deduped,
  // rate-feasible schedules, and `flush` replays the whole batch through the
  // lane-batched engine (`replay_schedules` — one SoA step pass scores up to
  // kDefaultReplayLanes schedules at once, with a scalar fallback for
  // unsupported buckets) before folding results into the elite pool in
  // staging order.  Mutation parents see the pool as of the last flush,
  // which keeps runs deterministic for a fixed seed.
  std::vector<Schedule> staged;
  std::vector<std::pair<std::uint64_t, std::string>> staged_meta;
  staged.reserve(kDefaultReplayLanes);
  staged_meta.reserve(kDefaultReplayLanes);

  const auto flush = [&] {
    if (staged.empty()) return;
    const std::vector<LaneReplayOutcome> scored =
        replay_schedules(tree, policy, sim_options, staged);
    // Fold the whole batch in with ONE sort + trim instead of re-sorting the
    // pool per candidate.  Equivalent to the incremental fold: trimming keeps
    // the globally best `pool_size` candidates either way (the `better` order
    // is total — fingerprints are unique post-dedup), and an "improvement"
    // is a candidate whose peak strictly exceeds the running best, which the
    // running counter reproduces in staging order.
    Height running_best = pool.empty() ? -1 : pool.front().peak;
    for (std::size_t k = 0; k < staged.size(); ++k) {
      Candidate candidate;
      candidate.schedule = std::move(staged[k]);
      candidate.peak = scored[k].peak;
      candidate.fp = staged_meta[k].first;
      candidate.origin = std::move(staged_meta[k].second);
      if (candidate.peak > running_best) {
        running_best = candidate.peak;
        ++report.pool_improvements;
      }
      pool.push_back(std::move(candidate));
    }
    std::sort(pool.begin(), pool.end(), better);
    if (pool.size() > options.pool_size) pool.resize(options.pool_size);
    // Batch buffers keep their capacity: the next `consider` wave refills
    // them without reallocating (fixed-footprint candidate staging).
    staged.clear();
    staged_meta.clear();
  };

  const auto consider = [&](Schedule schedule, std::string origin) {
    pad_to_horizon(schedule, horizon);
    if (!schedule_is_feasible(schedule, tree.node_count(),
                              sim_options.capacity, sim_options.burstiness)) {
      return;
    }
    const std::uint64_t fp = fingerprint(schedule);
    if (!seen.insert(fp).second) return;
    ++report.candidates_tried;
    staged.push_back(std::move(schedule));
    staged_meta.emplace_back(fp, std::move(origin));
    if (staged.size() >= kDefaultReplayLanes) flush();
  };

  // Seed (a): the bucket's existing corpus entries.
  for (const StoredEntry& stored : store.entries()) {
    if (stored.bucket != bucket) continue;
    ++report.seeds;
    consider(stored.entry.schedule, "corpus");
  }

  // Seed (b): the adversary battery, unrolled over the horizon.
  std::vector<std::string> battery = {
      "fixed-deepest", "fixed-sink-child", "train-and-slam", "alternator-13",
      "pile-on",       "feed-the-block",   "random-uniform"};
  if (!policy.is_centralized() && policy.locality() >= 1 &&
      static_cast<std::size_t>(policy.locality()) <= tree.max_depth()) {
    battery.push_back("staged-l" + std::to_string(policy.locality()));
  }
  if (!policy.is_centralized() &&
      tree.node_count() <= options.seeker_node_cap) {
    battery.push_back("height-seeker-" +
                      std::to_string(options.seeker_lookahead));
  }
  for (std::size_t i = 0; i < battery.size(); ++i) {
    adversary::AdversaryContext context;
    context.tree = &tree;
    context.policy = &policy;
    context.options = sim_options;
    context.seed = derive_seed(options.seed, 101 + i);
    const AdversaryPtr adv = adversary::make_adversary(battery[i], context);
    ++report.seeds;
    consider(unroll_adversary(tree, policy, sim_options, *adv, horizon),
             "adversary:" + battery[i]);
  }

  // Seed (c): depth-aligned volleys.
  for (auto& [schedule, origin] : volley_seeds(tree, sim_options)) {
    ++report.seeds;
    consider(std::move(schedule), std::move(origin));
  }

  flush();  // score all seeds before the pool is read
  CVG_CHECK(!pool.empty()) << "fuzz seeding produced no feasible candidate";

  // Mutation loop.
  Xoshiro256StarStar rng(derive_seed(options.seed, 1));
  const auto start = std::chrono::steady_clock::now();
  const auto expired = [&] {
    if (options.budget_ms == 0) return false;
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    return static_cast<std::uint64_t>(elapsed.count()) >= options.budget_ms;
  };
  const std::vector<std::string>& mutators = fuzz_mutator_names();
  for (std::size_t round = 0; round < options.rounds; ++round) {
    if (expired()) break;
    const std::size_t which = pick_index(rng, mutators.size());
    // Copy the parent: `consider` reshuffles the pool.
    const Schedule parent = pool[pick_index(rng, pool.size())].schedule;
    Schedule child;
    switch (which) {
      case 0:
        child = mutate_splice(
            parent, pool[pick_index(rng, pool.size())].schedule, rng);
        break;
      case 1:
        child = mutate_time_shift(parent, rng);
        break;
      case 2:
        child = mutate_node_shift(tree, parent, rng);
        break;
      case 3:
        child = mutate_burst_merge(parent, rng);
        break;
      case 4:
        child = mutate_seeker_extend(tree, policy, sim_options, parent,
                                     options, rng);
        break;
      default:
        child = mutate_beam_extend(tree, policy, sim_options, parent, options,
                                   rng);
        break;
    }
    if (child.empty()) continue;
    consider(std::move(child), mutators[which]);
  }
  flush();  // score the tail of the last mutation batch

  const Candidate& best = pool.front();
  report.best_peak = best.peak;
  report.best_origin = best.origin;

  if (best.peak <= 0) {
    report.admit.reason = "no candidate forced a positive peak";
    return report;
  }
  const std::optional<Height> incumbent = store.best_peak(bucket);
  if (incumbent.has_value() && best.peak <= *incumbent) {
    report.admit.peak = best.peak;
    report.admit.previous = *incumbent;
    report.admit.reason = "best fuzzed peak " + std::to_string(best.peak) +
                          " does not beat stored peak " +
                          std::to_string(*incumbent);
    return report;
  }

  report.pre_minimize_steps = best.schedule.size();
  Schedule winner = best.schedule;
  if (options.minimize) {
    MinimizeResult minimized =
        minimize_schedule(tree, policy, sim_options, std::move(winner),
                          best.peak, options.minimize_options);
    winner = std::move(minimized.schedule);
  }
  report.final_steps = winner.size();

  CorpusEntry entry = proto;
  entry.schedule = std::move(winner);
  entry.peak = best.peak;
  entry.pre_minimize_steps = static_cast<Step>(report.pre_minimize_steps);
  entry.provenance = "fuzz seed=" + std::to_string(options.seed) +
                     " rounds=" + std::to_string(options.rounds) +
                     " origin=" + best.origin;
  report.admit = store.admit(std::move(entry));
  return report;
}

}  // namespace cvg::corpus
