#include "cvg/corpus/format.hpp"

#include <algorithm>
#include <fstream>

#include "cvg/util/check.hpp"
#include "cvg/util/fnv.hpp"

namespace cvg::corpus {

namespace {

/// Append-only little-endian byte writer.
class Writer {
 public:
  void u8(std::uint8_t value) { out_.push_back(static_cast<char>(value)); }
  void u32(std::uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>(value >> (8 * i)));
    }
  }
  void u64(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>(value >> (8 * i)));
    }
  }
  void i32(std::int32_t value) { u32(static_cast<std::uint32_t>(value)); }
  void i64(std::int64_t value) { u64(static_cast<std::uint64_t>(value)); }
  void str(std::string_view value) {
    u32(static_cast<std::uint32_t>(value.size()));
    out_.append(value);
  }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian reader: every accessor checks the remaining
/// size first and latches a failure instead of reading past the end, so a
/// truncated file can never cause out-of-bounds access.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] bool failed() const noexcept { return failed_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - offset_;
  }
  [[nodiscard]] bool at_end() const noexcept {
    return !failed_ && remaining() == 0;
  }

  std::uint8_t u8() {
    if (!require(1)) return 0;
    return static_cast<std::uint8_t>(bytes_[offset_++]);
  }
  std::uint32_t u32() {
    if (!require(4)) return 0;
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(bytes_[offset_ + static_cast<std::size_t>(i)]))
               << (8 * i);
    }
    offset_ += 4;
    return value;
  }
  std::uint64_t u64() {
    if (!require(8)) return 0;
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(bytes_[offset_ + static_cast<std::size_t>(i)]))
               << (8 * i);
    }
    offset_ += 8;
    return value;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::string str() {
    const std::uint32_t length = u32();
    if (!require(length)) return {};
    std::string value(bytes_.substr(offset_, length));
    offset_ += length;
    return value;
  }
  [[nodiscard]] std::string_view rest() const noexcept {
    return bytes_.substr(offset_);
  }

 private:
  bool require(std::size_t count) {
    if (failed_ || remaining() < count) {
      failed_ = true;
      return false;
    }
    return true;
  }

  std::string_view bytes_;
  std::size_t offset_ = 0;
  bool failed_ = false;
};

/// Folds the semantic trace content into `hash` (shared by `content_hash`
/// and `bucket_key`; the latter stops before the schedule).
void hash_bucket_fields(Fnv1a& hash, const CorpusEntry& entry) {
  hash.u32(static_cast<std::uint32_t>(entry.parents.size()));
  for (const NodeId parent : entry.parents) hash.u32(parent);
  hash.str(entry.policy);
  hash.u32(static_cast<std::uint32_t>(entry.capacity));
  hash.u32(static_cast<std::uint32_t>(entry.burstiness));
  hash.u8(static_cast<std::uint8_t>(entry.semantics));
}

}  // namespace

std::uint64_t content_hash(const CorpusEntry& entry) {
  Fnv1a hash;
  hash_bucket_fields(hash, entry);
  hash.u64(entry.schedule.size());
  for (const auto& step : entry.schedule) {
    hash.u32(static_cast<std::uint32_t>(step.size()));
    for (const NodeId node : step) hash.u32(node);
  }
  return hash.value();
}

std::uint64_t bucket_key(const CorpusEntry& entry) {
  Fnv1a hash;
  hash_bucket_fields(hash, entry);
  return hash.value();
}

std::string serialize_entry(const CorpusEntry& entry) {
  Writer payload;
  payload.u64(content_hash(entry));
  payload.u32(static_cast<std::uint32_t>(entry.parents.size()));
  payload.str(entry.topology);
  payload.str(entry.policy);
  payload.str(entry.provenance);
  payload.i32(entry.capacity);
  payload.i32(entry.burstiness);
  payload.u8(static_cast<std::uint8_t>(entry.semantics));
  payload.i64(entry.peak);
  payload.u64(entry.pre_minimize_steps);
  for (const NodeId parent : entry.parents) payload.u32(parent);
  payload.u64(entry.schedule.size());
  for (const auto& step : entry.schedule) {
    payload.u32(static_cast<std::uint32_t>(step.size()));
    for (const NodeId node : step) payload.u32(node);
  }
  const std::string body = payload.take();

  Fnv1a checksum;
  checksum.bytes(body.data(), body.size());

  Writer file;
  for (const char c : kMagic) file.u8(static_cast<std::uint8_t>(c));
  file.u32(kFormatVersion);
  file.u64(checksum.value());
  std::string out = file.take();
  out += body;
  return out;
}

std::optional<CorpusEntry> parse_entry(std::string_view bytes,
                                       std::string& error) {
  const auto fail = [&error](std::string message) -> std::optional<CorpusEntry> {
    error = std::move(message);
    return std::nullopt;
  };

  Reader header(bytes);
  char magic[4] = {};
  for (char& c : magic) c = static_cast<char>(header.u8());
  if (header.failed() || !std::equal(magic, magic + 4, kMagic)) {
    return fail("not a cvg corpus file (bad magic)");
  }
  const std::uint32_t version = header.u32();
  if (header.failed()) return fail("truncated header");
  if (version != kFormatVersion) {
    return fail("unsupported corpus format version " + std::to_string(version));
  }
  const std::uint64_t stored_checksum = header.u64();
  if (header.failed()) return fail("truncated header");

  const std::string_view body = header.rest();
  Fnv1a checksum;
  checksum.bytes(body.data(), body.size());
  if (checksum.value() != stored_checksum) {
    return fail("checksum mismatch (corrupted payload)");
  }

  Reader reader(body);
  CorpusEntry entry;
  const std::uint64_t stored_hash = reader.u64();
  const std::uint32_t node_count = reader.u32();
  entry.topology = reader.str();
  entry.policy = reader.str();
  entry.provenance = reader.str();
  entry.capacity = reader.i32();
  entry.burstiness = reader.i32();
  const std::uint8_t semantics = reader.u8();
  entry.peak = static_cast<Height>(reader.i64());
  entry.pre_minimize_steps = reader.u64();
  if (reader.failed()) return fail("truncated metadata");
  if (semantics > static_cast<std::uint8_t>(StepSemantics::DecideAfterInjection)) {
    return fail("invalid step-semantics value " + std::to_string(semantics));
  }
  entry.semantics = static_cast<StepSemantics>(semantics);
  if (entry.capacity < 1 || entry.burstiness < 0 || entry.peak < 0) {
    return fail("invalid capacity/burstiness/peak metadata");
  }
  // Every node costs ≥ 4 payload bytes, so a count beyond remaining/4 is
  // corrupt; checking before the resize keeps hostile counts from OOMing.
  if (node_count < 2 || node_count > reader.remaining() / 4) {
    return fail("implausible node count " + std::to_string(node_count));
  }
  entry.parents.resize(node_count);
  for (NodeId v = 0; v < node_count; ++v) entry.parents[v] = reader.u32();
  if (reader.failed()) return fail("truncated parent vector");
  if (entry.parents[0] != kNoNode) return fail("parents[0] must be the sink");
  for (NodeId v = 1; v < node_count; ++v) {
    if (entry.parents[v] >= node_count) {
      return fail("parent of node " + std::to_string(v) + " out of range");
    }
  }

  const std::uint64_t step_count = reader.u64();
  if (reader.failed() || step_count > reader.remaining() / 4) {
    return fail("implausible step count");
  }
  entry.schedule.resize(step_count);
  for (auto& step : entry.schedule) {
    const std::uint32_t injections = reader.u32();
    if (reader.failed() || injections > reader.remaining() / 4) {
      return fail("truncated schedule");
    }
    step.resize(injections);
    for (auto& node : step) node = reader.u32();
  }
  if (reader.failed()) return fail("truncated schedule");
  if (!reader.at_end()) return fail("trailing bytes after schedule");

  if (stored_hash != content_hash(entry)) {
    return fail("content-hash mismatch (metadata edited without rehash)");
  }
  if (!schedule_is_feasible(entry.schedule, node_count, entry.capacity,
                            entry.burstiness)) {
    return fail("schedule violates the rate constraint or injects out of range");
  }
  return entry;
}

void save_entry(const std::string& path, const CorpusEntry& entry) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  CVG_CHECK(out.good()) << "cannot open " << path << " for writing";
  const std::string bytes = serialize_entry(entry);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  CVG_CHECK(out.good()) << "write to " << path << " failed";
}

std::optional<CorpusEntry> load_entry(const std::string& path,
                                      std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    error = "cannot open " + path;
    return std::nullopt;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    error = "read of " + path + " failed";
    return std::nullopt;
  }
  return parse_entry(bytes, error);
}

std::string entry_filename(std::uint64_t content_hash) {
  constexpr char kHex[] = "0123456789abcdef";
  std::string name(16, '0');
  for (int i = 15; i >= 0; --i) {
    name[static_cast<std::size_t>(i)] = kHex[content_hash & 0xF];
    content_hash >>= 4;
  }
  return name + ".cvgc";
}

bool schedule_is_feasible(const adversary::Schedule& schedule,
                          std::size_t node_count, Capacity capacity,
                          Capacity burstiness) {
  if (capacity < 1 || burstiness < 0) return false;
  // Mirror of the simulator's token bucket (simulator.cpp): refill by c each
  // step, cap at c + sigma, spend one token per injection.
  std::int64_t tokens = burstiness;
  for (const auto& step : schedule) {
    tokens = std::min<std::int64_t>(capacity + burstiness, tokens + capacity);
    if (static_cast<std::int64_t>(step.size()) > tokens) return false;
    tokens -= static_cast<std::int64_t>(step.size());
    for (const NodeId node : step) {
      if (node >= node_count) return false;
    }
  }
  return true;
}

}  // namespace cvg::corpus
