#include "cvg/corpus/minimize.hpp"

#include <algorithm>

#include "cvg/corpus/replay.hpp"
#include "cvg/util/check.hpp"

namespace cvg::corpus {

namespace {

/// Shared state of one minimization run: the current (always target-
/// preserving) schedule plus the replay budget.
class Minimizer {
 public:
  Minimizer(const Tree& tree, const Policy& policy,
            const SimOptions& sim_options, adversary::Schedule schedule,
            Height target, const MinimizeOptions& options)
      : tree_(tree),
        policy_(policy),
        sim_options_(sim_options),
        schedule_(std::move(schedule)),
        target_(target),
        options_(options) {}

  /// Replays `candidate`; on success (peak ≥ target and strictly smaller
  /// cost) installs it as the current schedule.
  bool try_accept(adversary::Schedule candidate) {
    if (replays_ >= options_.max_replays) return false;
    ++replays_;
    if (replay_peak(tree_, policy_, sim_options_, candidate) < target_) {
      return false;
    }
    schedule_ = std::move(candidate);
    return true;
  }

  /// Pass 1: truncate after the first step that realizes the target.
  void truncate() {
    if (replays_ >= options_.max_replays) return;
    ++replays_;
    Step first = 0;
    const Height peak = replay_peak_traced(tree_, policy_, sim_options_,
                                           schedule_, target_, first);
    CVG_CHECK(peak >= target_)
        << "minimizer invariant broken: current schedule lost the target";
    if (first + 1 < schedule_.size()) {
      schedule_.resize(first + 1);
    }
  }

  /// Pass 2: ddmin over whole steps.  Returns true if anything shrank.
  bool ddmin_steps() {
    bool shrank = false;
    for (std::size_t chunk = std::max<std::size_t>(schedule_.size() / 2, 1);
         chunk >= 1; chunk /= 2) {
      std::size_t i = 0;
      while (i < schedule_.size() && schedule_.size() > 1) {
        adversary::Schedule candidate;
        candidate.reserve(schedule_.size());
        candidate.insert(candidate.end(), schedule_.begin(),
                         schedule_.begin() + static_cast<std::ptrdiff_t>(i));
        const std::size_t end = std::min(i + chunk, schedule_.size());
        candidate.insert(candidate.end(),
                         schedule_.begin() + static_cast<std::ptrdiff_t>(end),
                         schedule_.end());
        if (!candidate.empty() && try_accept(std::move(candidate))) {
          shrank = true;  // the chunk at i is gone; retry the same position
        } else {
          i += chunk;
        }
      }
      if (chunk == 1) break;
    }
    return shrank;
  }

  /// Pass 3: drop individual injections, keeping the step grid.
  bool drop_packets() {
    bool shrank = false;
    for (std::size_t s = 0; s < schedule_.size(); ++s) {
      for (std::size_t k = 0; k < schedule_[s].size();) {
        adversary::Schedule candidate = schedule_;
        candidate[s].erase(candidate[s].begin() +
                           static_cast<std::ptrdiff_t>(k));
        if (try_accept(std::move(candidate))) {
          shrank = true;  // injection k removed; the next one slid into k
        } else {
          ++k;
        }
      }
    }
    return shrank;
  }

  /// Pass 4: replace injection sites with their parents (never the sink —
  /// injecting at the sink is a no-op the packet-drop pass handles better).
  bool lower_nodes() {
    bool changed = false;
    for (std::size_t s = 0; s < schedule_.size(); ++s) {
      for (std::size_t k = 0; k < schedule_[s].size(); ++k) {
        for (;;) {
          const NodeId node = schedule_[s][k];
          const NodeId parent = tree_.parent(node);
          if (node == Tree::sink() || parent == Tree::sink() ||
              parent == kNoNode) {
            break;
          }
          adversary::Schedule candidate = schedule_;
          candidate[s][k] = parent;
          if (!try_accept(std::move(candidate))) break;
          changed = true;  // keep walking the same packet towards the sink
        }
      }
    }
    return changed;
  }

  MinimizeResult run() {
    MinimizeResult result;
    result.initial_steps = schedule_.size();
    truncate();
    for (int round = 0; round < options_.max_rounds; ++round) {
      bool any = ddmin_steps();
      any = drop_packets() || any;
      any = lower_nodes() || any;
      if (!any || replays_ >= options_.max_replays) break;
    }
    result.final_steps = schedule_.size();
    result.peak = replay_peak(tree_, policy_, sim_options_, schedule_);
    result.replays = replays_ + 1;
    result.schedule = std::move(schedule_);
    return result;
  }

 private:
  const Tree& tree_;
  const Policy& policy_;
  const SimOptions& sim_options_;
  adversary::Schedule schedule_;
  Height target_;
  MinimizeOptions options_;
  std::uint64_t replays_ = 0;
};

}  // namespace

MinimizeResult minimize_schedule(const Tree& tree, const Policy& policy,
                                 const SimOptions& sim_options,
                                 adversary::Schedule schedule, Height target,
                                 MinimizeOptions options) {
  CVG_CHECK(!schedule.empty()) << "cannot minimize an empty schedule";
  CVG_CHECK(replay_peak(tree, policy, sim_options, schedule) >= target)
      << "input schedule does not reach the minimization target " << target;
  Minimizer minimizer(tree, policy, sim_options, std::move(schedule), target,
                      options);
  return minimizer.run();
}

}  // namespace cvg::corpus
