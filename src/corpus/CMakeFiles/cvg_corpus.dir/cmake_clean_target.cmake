file(REMOVE_RECURSE
  "libcvg_corpus.a"
)
