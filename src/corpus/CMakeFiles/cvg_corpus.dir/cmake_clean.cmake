file(REMOVE_RECURSE
  "CMakeFiles/cvg_corpus.dir/src/format.cpp.o"
  "CMakeFiles/cvg_corpus.dir/src/format.cpp.o.d"
  "CMakeFiles/cvg_corpus.dir/src/fuzz.cpp.o"
  "CMakeFiles/cvg_corpus.dir/src/fuzz.cpp.o.d"
  "CMakeFiles/cvg_corpus.dir/src/minimize.cpp.o"
  "CMakeFiles/cvg_corpus.dir/src/minimize.cpp.o.d"
  "CMakeFiles/cvg_corpus.dir/src/replay.cpp.o"
  "CMakeFiles/cvg_corpus.dir/src/replay.cpp.o.d"
  "CMakeFiles/cvg_corpus.dir/src/store.cpp.o"
  "CMakeFiles/cvg_corpus.dir/src/store.cpp.o.d"
  "libcvg_corpus.a"
  "libcvg_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvg_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
