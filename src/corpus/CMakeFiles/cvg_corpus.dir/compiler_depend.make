# Empty compiler generated dependencies file for cvg_corpus.
# This may be replaced when dependencies are built.
