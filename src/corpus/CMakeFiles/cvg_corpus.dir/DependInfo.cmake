
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/src/format.cpp" "src/corpus/CMakeFiles/cvg_corpus.dir/src/format.cpp.o" "gcc" "src/corpus/CMakeFiles/cvg_corpus.dir/src/format.cpp.o.d"
  "/root/repo/src/corpus/src/fuzz.cpp" "src/corpus/CMakeFiles/cvg_corpus.dir/src/fuzz.cpp.o" "gcc" "src/corpus/CMakeFiles/cvg_corpus.dir/src/fuzz.cpp.o.d"
  "/root/repo/src/corpus/src/minimize.cpp" "src/corpus/CMakeFiles/cvg_corpus.dir/src/minimize.cpp.o" "gcc" "src/corpus/CMakeFiles/cvg_corpus.dir/src/minimize.cpp.o.d"
  "/root/repo/src/corpus/src/replay.cpp" "src/corpus/CMakeFiles/cvg_corpus.dir/src/replay.cpp.o" "gcc" "src/corpus/CMakeFiles/cvg_corpus.dir/src/replay.cpp.o.d"
  "/root/repo/src/corpus/src/store.cpp" "src/corpus/CMakeFiles/cvg_corpus.dir/src/store.cpp.o" "gcc" "src/corpus/CMakeFiles/cvg_corpus.dir/src/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/adversary/CMakeFiles/cvg_adversary.dir/DependInfo.cmake"
  "/root/repo/src/search/CMakeFiles/cvg_search.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/cvg_sim.dir/DependInfo.cmake"
  "/root/repo/src/policy/CMakeFiles/cvg_policy.dir/DependInfo.cmake"
  "/root/repo/src/topology/CMakeFiles/cvg_topology.dir/DependInfo.cmake"
  "/root/repo/src/util/CMakeFiles/cvg_util.dir/DependInfo.cmake"
  "/root/repo/src/audit/CMakeFiles/cvg_audit.dir/DependInfo.cmake"
  "/root/repo/src/core/CMakeFiles/cvg_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
