file(REMOVE_RECURSE
  "CMakeFiles/cvg_serve.dir/src/cache.cpp.o"
  "CMakeFiles/cvg_serve.dir/src/cache.cpp.o.d"
  "CMakeFiles/cvg_serve.dir/src/job.cpp.o"
  "CMakeFiles/cvg_serve.dir/src/job.cpp.o.d"
  "CMakeFiles/cvg_serve.dir/src/json.cpp.o"
  "CMakeFiles/cvg_serve.dir/src/json.cpp.o.d"
  "CMakeFiles/cvg_serve.dir/src/service.cpp.o"
  "CMakeFiles/cvg_serve.dir/src/service.cpp.o.d"
  "CMakeFiles/cvg_serve.dir/src/transport.cpp.o"
  "CMakeFiles/cvg_serve.dir/src/transport.cpp.o.d"
  "libcvg_serve.a"
  "libcvg_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvg_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
