# Empty dependencies file for cvg_serve.
# This may be replaced when dependencies are built.
