file(REMOVE_RECURSE
  "libcvg_serve.a"
)
