#pragma once

/// \file cache.hpp
/// Content-addressed result cache for the simulation service.
///
/// Every job the service runs is a deterministic function of its semantic
/// fields (the same property that makes corpus entries replayable
/// certificates), so results are memoizable by content hash alone: the key
/// is the FNV-1a64 fold of exactly the fields that determine the outcome
/// (see `run_job_hash` in job.hpp), and the value is the serialized result
/// payload.  Hash-equal jobs — whether issued twice by one client, by two
/// clients, or as a `run` matching an earlier `sweep` cell — return the
/// memoized payload without touching a worker.
///
/// In-memory tier: strict LRU bounded by entry count and total payload
/// bytes.  Optional disk tier: evicted entries spill to
/// `<spill_dir>/<hex-key>.json` and are promoted back on a later miss, so a
/// long-lived service survives restarts of its hot set without recomputing.
/// All operations are thread-safe; workers race on lookup/insert freely.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

namespace cvg::serve {

/// Monotonic counters describing cache behaviour (profiled per-service).
struct CacheStats {
  std::uint64_t hits = 0;        ///< memory-tier hits
  std::uint64_t spill_hits = 0;  ///< disk-tier hits (promoted to memory)
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;  ///< LRU evictions (spilled when a dir is set)
  std::uint64_t entries = 0;    ///< current memory-tier entry count
  std::uint64_t bytes = 0;      ///< current memory-tier payload bytes
};

class ResultCache {
 public:
  /// `max_entries` / `max_bytes` bound the memory tier (both must be > 0).
  /// `spill_dir` empty disables the disk tier; otherwise the directory is
  /// created on first spill.
  ResultCache(std::size_t max_entries, std::size_t max_bytes,
              std::string spill_dir = {});
  ~ResultCache();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the memoized payload for `key`, or nullopt.  A disk-tier hit
  /// promotes the entry back into memory.
  [[nodiscard]] std::optional<std::string> lookup(std::uint64_t key);

  /// Memoizes `payload` under `key`; inserting an existing key refreshes
  /// its recency and payload.  Oversized payloads (> max_bytes) are not
  /// cached.
  void insert(std::uint64_t key, std::string payload);

  [[nodiscard]] CacheStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cvg::serve
