#pragma once

/// \file transport.hpp
/// NDJSON transports for the simulation service: a byte-stream loop over an
/// arbitrary fd pair (stdin/stdout, pipes in tests) and a Unix-domain-socket
/// server accepting concurrent clients.  Both frame one request per line and
/// one response per line; responses may interleave out of request order
/// (jobs finish on whichever worker is free — clients correlate by `id`).
///
/// Signal-driven shutdown composes through the `stop` flag: the CLI's signal
/// handler sets it, blocking reads/accepts return with EINTR, the loops
/// notice the flag, stop admitting, drain in-flight jobs (each response is
/// still written), and return 0.

#include <atomic>
#include <cstddef>
#include <optional>
#include <string>

#include "cvg/serve/service.hpp"

namespace cvg::serve {

/// Longest accepted request line; longer lines are rejected with a
/// structured error without buffering them (a hostile client cannot balloon
/// the reader).
inline constexpr std::size_t kMaxLineBytes = 1u << 20;

/// Incremental line reader over a raw fd with explicit EINTR surfacing.
class LineReader {
 public:
  enum class Status {
    Line,         ///< `line` holds one complete request line (no newline)
    Oversized,    ///< a line exceeded kMaxLineBytes and was discarded
    Eof,          ///< orderly end of stream
    Interrupted,  ///< read returned EINTR — caller should check its stop flag
    Error,        ///< unrecoverable read error
  };

  explicit LineReader(int fd) : fd_(fd) {}

  /// Reads until the next newline (or EOF with a non-empty tail, which
  /// counts as a final line).
  [[nodiscard]] Status next(std::string& line);

 private:
  int fd_;
  std::string buffer_;
  std::size_t discarding_ = 0;  ///< nonzero while skipping an oversized line
};

/// Serves NDJSON requests from `in_fd`, writing responses to `out_fd`, until
/// EOF or `*stop` becomes true.  Every accepted job's response is written
/// before returning (the loop drains).  Returns 0 on an orderly end, 1 on a
/// transport-level I/O failure.
int serve_fd(Service& service, int in_fd, int out_fd,
             const std::atomic<bool>* stop = nullptr);

/// Binds `path` (unlinking any stale socket first), accepts clients, and
/// runs each connection through `serve_fd` on its own thread.  Returns when
/// `stop` becomes true or the service enters shutdown: draining half-closes
/// the read side of every live connection (idle clients cannot pin the
/// server in read(2)), in-flight jobs still deliver their responses, then
/// all connection threads are joined and the socket file is unlinked.
/// Returns 0 on orderly shutdown, 1 when the socket could not be created.
int serve_unix_socket(Service& service, const std::string& path,
                      const std::atomic<bool>& stop);

/// Client helper: connects to `path`, sends one request line, and returns
/// the one response line; nullopt (with `error` set) on any transport
/// failure.  Used by `cvg submit` and the service benches.
[[nodiscard]] std::optional<std::string> submit_unix_socket(
    const std::string& path, const std::string& request_line,
    std::string& error);

}  // namespace cvg::serve
