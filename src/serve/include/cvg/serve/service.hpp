#pragma once

/// \file service.hpp
/// The simulation service: validated NDJSON jobs in, deterministic results
/// out, with content-addressed memoization.
///
/// Lifecycle of one request line (`submit_line`):
///
///   1. parse + validate (`parse_request`) — malformed lines answer
///      immediately with a `bad_request` error;
///   2. `stats` / `shutdown` execute inline (they must work while the pool
///      is saturated, or the service could not be observed or stopped);
///   3. everything else is scheduled on the bounded `cvg::WorkerPool`:
///      a full queue answers `queue_full` (explicit backpressure — the
///      client decides whether to retry), a draining service answers
///      `shutting_down`;
///   4. the worker consults the `ResultCache` by semantic hash (hit =
///      zero recompute), else runs the simulation under a `CancelToken`
///      deadline (`timeout` error on expiry) and memoizes the payload.
///
/// Responses are delivered through the callback passed to `submit_line`,
/// on the worker thread that finished the job (inline ops invoke it on the
/// caller's thread).  `process_line` is the synchronous convenience used by
/// tests, benches and `cvg submit`.
///
/// Determinism contract (docs/ANALYSIS.md): every cacheable job is a pure
/// function of the fields its hash folds, so a cache hit is
/// indistinguishable from recomputation except in latency.  The service
/// never caches error outcomes, and never caches when the request says
/// `"cache": false`.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "cvg/report/profile.hpp"
#include "cvg/serve/cache.hpp"
#include "cvg/serve/job.hpp"
#include "cvg/serve/json.hpp"

namespace cvg::serve {

struct ServiceOptions {
  unsigned threads = 0;  ///< worker threads; 0 = hardware concurrency
  std::size_t queue_capacity = 64;        ///< pending jobs before queue_full
  std::size_t cache_entries = 4096;       ///< memory-tier LRU entry bound
  std::size_t cache_bytes = 64ull << 20;  ///< memory-tier LRU byte bound
  std::string spill_dir;                  ///< disk tier; empty = disabled
  std::uint64_t default_timeout_ms = 60'000;  ///< per-job, when not requested
};

/// Aggregate service counters, exposed by the `stats` op and the shutdown
/// summary.
struct ServiceStats {
  std::uint64_t received = 0;   ///< request lines seen
  std::uint64_t ok = 0;         ///< jobs answered with ok:true
  std::uint64_t errors = 0;     ///< jobs answered with ok:false
  std::uint64_t cache_hits = 0; ///< ok answers served from the cache
  std::uint64_t queue_depth = 0;  ///< snapshot: jobs waiting in the pool
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});
  ~Service();  ///< drains in-flight jobs, then joins the pool

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Handles one request line.  `respond` is invoked exactly once with the
  /// response line (no trailing newline) — inline for parse errors,
  /// backpressure rejections and the stats/shutdown ops, on a worker thread
  /// otherwise.  Thread-safe.
  void submit_line(std::string_view line,
                   std::function<void(std::string)> respond);

  /// Synchronous convenience: submits and waits for the one response.
  [[nodiscard]] std::string process_line(std::string_view line);

  /// Stops accepting new jobs (subsequent submissions answer
  /// `shutting_down`); in-flight jobs keep running.  Idempotent.  The
  /// `shutdown` op and the signal path both funnel here.
  void begin_shutdown();

  /// Blocks until every accepted job has answered.
  void drain();

  [[nodiscard]] bool shutting_down() const;
  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] CacheStats cache_stats() const;

  /// The stats payload the `stats` op returns: counters, cache behaviour
  /// and the request-latency profile (count / mean / p50 / p95 / max) via
  /// `cvg::report::LatencyProfile`.
  [[nodiscard]] JsonValue stats_json() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cvg::serve
