#pragma once

/// \file job.hpp
/// The service's job schema: NDJSON-framed requests, validated with the same
/// hostile-input discipline as the corpus parser — every malformed byte
/// sequence, unknown field, wrong type or out-of-range value yields a
/// structured `JobError`, never a crash (pinned by the request fuzzer below
/// under ASan/UBSan).
///
/// A request is one JSON object per line:
///
///     {"op":"run","topology":"path:64","policy":"odd-even",
///      "adversary":"staged-l1","steps":4096,"id":"r1"}
///
/// Ops: `run` (one simulation), `sweep` (topologies × policies grid),
/// `replay` (one .cvgc corpus entry), `certify` (replay-gate a corpus
/// directory), `minimize` (delta-debug one entry), `stats` (service
/// counters), `shutdown` (graceful drain).  See `parse_request` for the
/// field-by-field contract.
///
/// Jobs are deterministic functions of their semantic fields — the same
/// property the corpus exploits for replayable certificates — so results
/// are content-addressed: `run_job_hash` folds exactly the semantic inputs
/// with the FNV-1a64 hasher shared with `src/corpus/format.cpp`, and the
/// service's cache returns memoized results for hash-equal jobs.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cvg/core/types.hpp"
#include "cvg/serve/json.hpp"

namespace cvg::serve {

/// Everything a request can ask for.  Names match the wire field `op`.
enum class JobKind : std::uint8_t {
  Run,
  Sweep,
  Replay,
  Certify,
  Minimize,
  Stats,
  Shutdown,
};

[[nodiscard]] std::string_view job_kind_name(JobKind kind);

/// Structured request rejection: a stable machine-readable `code` plus a
/// human-readable message.  Codes: `bad_request`, `queue_full`,
/// `shutting_down`, `timeout`, `not_found`, `internal`.
struct JobError {
  std::string code;
  std::string message;
};

/// One validated request.  Fields not applicable to the op keep their
/// defaults (the parser rejects requests that set them explicitly).
struct JobRequest {
  JobKind kind = JobKind::Stats;
  std::string id;  ///< client-chosen tag, echoed verbatim in the response

  // run / sweep
  std::vector<std::string> topologies;  ///< canonical specs; run has exactly 1
  std::vector<std::string> policies;    ///< registry names; run has exactly 1
  std::string adversary = "fixed-deepest";  ///< adversary-registry name
  Step steps = 0;
  Capacity capacity = 1;
  Capacity burstiness = 0;
  StepSemantics semantics = StepSemantics::DecideBeforeInjection;
  std::uint64_t seed = 1;
  /// Sweep-only third grid axis (`"seeds":[…]`, exclusive with `"seed"`):
  /// the grid is topologies × policies × seeds, and same-(topology, policy)
  /// cells differing only in seed form one lane block on the batched
  /// engine.  Empty means the single-`seed` grid.
  std::vector<std::uint64_t> seeds;

  // replay / certify / minimize
  std::string file;  ///< .cvgc entry path (replay, minimize) or dir (certify)
  std::uint64_t max_replays = 20000;  ///< minimize budget

  // execution controls (not part of the semantic hash)
  std::uint64_t timeout_ms = 0;  ///< 0 = the service default
  bool use_cache = true;
};

/// Ceiling on `steps` for a single run/sweep cell, so a hostile request
/// cannot pin a worker for hours.  Generous: 16M steps of the biggest
/// spec-buildable topology is minutes, not days.
inline constexpr Step kMaxJobSteps = 1u << 24;

/// Parses and validates one NDJSON request line.  On any malformation —
/// invalid JSON, unknown op, unknown/duplicate/ill-typed fields, fields
/// foreign to the op, out-of-range counts, unknown topology/policy/
/// adversary names — returns nullopt and fills `error` (code
/// `bad_request`).
[[nodiscard]] std::optional<JobRequest> parse_request(std::string_view line,
                                                      JobError& error);

/// Semantic content hash of one run cell: folds (topology spec, policy,
/// adversary, steps, capacity, burstiness, semantics, seed) — exactly the
/// inputs that determine the simulation outcome, nothing operational (id,
/// timeout, cache flags) — plus the engine variant the service would pick
/// for the cell (`"scalar"` / `"lanes"` and the configured lane width).
/// The variant is itself a pure function of (policy, options), so run jobs
/// and sweep cells still share keys — a sweep warms the cache for later
/// single runs and vice versa — while a change of kernel generation (a new
/// lane width, a policy moving on or off the lane engine) retires stale
/// entries instead of serving them across substrates.
[[nodiscard]] std::uint64_t run_job_hash(const std::string& topology,
                                         const std::string& policy,
                                         const std::string& adversary,
                                         Step steps, Capacity capacity,
                                         Capacity burstiness,
                                         StepSemantics semantics,
                                         std::uint64_t seed,
                                         std::string_view engine,
                                         std::uint32_t lane_width);

/// Formats one response line (no trailing newline).  `ok` responses carry
/// `result` (spliced verbatim — it must be a serialized JSON value),
/// `cached` and `micros`; error responses carry the structured error.
[[nodiscard]] std::string format_ok_response(const std::string& id,
                                             std::string_view result_json,
                                             bool cached,
                                             std::uint64_t micros);
[[nodiscard]] std::string format_error_response(const std::string& id,
                                                const JobError& error);

/// Deterministic request-parser fuzzer: `rounds` iterations of (a) random
/// byte lines, (b) structure-aware mutations of valid requests, (c) token
/// splices of schema keywords, each fed through `parse_request`.  The
/// property under test is "no crash, no UB, and every rejection carries a
/// structured error"; run it under CVG_SANITIZE for the real teeth.  Stops
/// early after `budget_ms` (0 = no time budget).  Returns counters for
/// reporting.
struct RequestFuzzReport {
  std::uint64_t rounds = 0;
  std::uint64_t parsed_ok = 0;
  std::uint64_t rejected = 0;
};
[[nodiscard]] RequestFuzzReport fuzz_requests(std::uint64_t seed,
                                              std::uint64_t rounds,
                                              std::uint64_t budget_ms);

}  // namespace cvg::serve
