#pragma once

/// \file json.hpp
/// A minimal, strict JSON value + parser + writer for the service's NDJSON
/// framing.  Hostile-input discipline mirrors the corpus format parser
/// (src/corpus/format.cpp): every malformation — truncation, bad escapes,
/// trailing garbage, numbers out of range, nesting past `kMaxJsonDepth` —
/// returns a structured error, never crashes, never reads out of bounds.
///
/// Deliberately small: objects and arrays, strings with the standard
/// escapes (\uXXXX limited to the BMP), 64-bit integers and doubles, bools,
/// null.  Object member order is preserved (requests are written by
/// machines; canonical order keeps hashes and tests stable).  Duplicate
/// keys are rejected — a request that says "steps" twice is hostile, not
/// ambiguous.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

namespace cvg::serve {

/// Nesting ceiling for parsed documents, so `[[[[...` cannot exhaust the
/// stack (the parser recurses once per level).
inline constexpr int kMaxJsonDepth = 64;

class JsonValue;

using JsonArray = std::vector<JsonValue>;
using JsonMember = std::pair<std::string, JsonValue>;
using JsonObject = std::vector<JsonMember>;

/// One JSON value.  Integers and doubles are kept distinct so counters
/// round-trip exactly; a number with a fraction or exponent parses as
/// double, everything else as int64.
class JsonValue {
 public:
  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}  // NOLINT(google-explicit-constructor)
  JsonValue(bool b) : value_(b) {}                // NOLINT(google-explicit-constructor)
  /// Any non-bool integral narrows to the int64 representation, so counters
  /// of every width (Step, std::size_t, NodeId, …) convert without casts.
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> &&
                                        !std::is_same_v<T, bool>>>
  JsonValue(T i) : value_(static_cast<std::int64_t>(i)) {}  // NOLINT(google-explicit-constructor)
  JsonValue(double d) : value_(d) {}              // NOLINT(google-explicit-constructor)
  JsonValue(std::string s) : value_(std::move(s)) {}  // NOLINT(google-explicit-constructor)
  JsonValue(const char* s) : value_(std::string(s)) {}  // NOLINT(google-explicit-constructor)
  JsonValue(JsonArray a) : value_(std::move(a)) {}    // NOLINT(google-explicit-constructor)
  JsonValue(JsonObject o) : value_(std::move(o)) {}   // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(value_); }
  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
  [[nodiscard]] bool is_double() const { return std::holds_alternative<double>(value_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(value_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(value_); }
  [[nodiscard]] double as_double() const { return std::get<double>(value_); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(value_); }
  [[nodiscard]] const JsonArray& as_array() const { return std::get<JsonArray>(value_); }
  [[nodiscard]] const JsonObject& as_object() const { return std::get<JsonObject>(value_); }

  /// Member lookup on an object; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  friend bool operator==(const JsonValue&, const JsonValue&) = default;

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               JsonArray, JsonObject>
      value_;
};

/// Parses exactly one JSON document from `text` (leading/trailing ASCII
/// whitespace allowed, anything else after the value is an error).  On any
/// malformation returns nullopt and sets `error` to a one-line diagnostic
/// with a byte offset.
[[nodiscard]] std::optional<JsonValue> parse_json(std::string_view text,
                                                  std::string& error);

/// Serializes `value` on one line (NDJSON-safe: the output never contains a
/// raw newline).  Parsing the output yields the original value back.
[[nodiscard]] std::string write_json(const JsonValue& value);

/// Escapes `text` as a quoted JSON string literal (helper for hand-built
/// payload splicing in the service's response path).
[[nodiscard]] std::string json_quote(std::string_view text);

}  // namespace cvg::serve
