#include "cvg/serve/transport.hpp"

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace cvg::serve {

namespace {

/// Writes all of `data`, riding out EINTR and short writes.
[[nodiscard]] bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t wrote = ::write(fd, data, size);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += wrote;
    size -= static_cast<std::size_t>(wrote);
  }
  return true;
}

/// Shared response sink for one connection: serializes writes and counts
/// outstanding responses so the reader can drain before closing.
struct ResponseSink {
  int fd;
  std::mutex mutex;
  std::condition_variable all_delivered;
  std::size_t pending = 0;
  bool write_failed = false;

  explicit ResponseSink(int out_fd) : fd(out_fd) {}

  void expect_one() {
    std::lock_guard<std::mutex> lock(mutex);
    ++pending;
  }

  void deliver(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex);
    if (!write_failed) {
      const std::string framed = line + "\n";
      // A dead client (closed pipe) must not kill the service; the job's
      // result is simply dropped and the connection winds down.
      if (!write_all(fd, framed.data(), framed.size())) write_failed = true;
    }
    --pending;
    if (pending == 0) all_delivered.notify_all();
  }

  void drain() {
    std::unique_lock<std::mutex> lock(mutex);
    all_delivered.wait(lock, [this] { return pending == 0; });
  }
};

}  // namespace

LineReader::Status LineReader::next(std::string& line) {
  for (;;) {
    // Hand out a buffered line first.
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      if (discarding_ > 0) {
        // End of an oversized line: drop the tail and report it once.
        buffer_.erase(0, newline + 1);
        discarding_ = 0;
        return Status::Oversized;
      }
      line.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return Status::Line;
    }
    if (buffer_.size() > kMaxLineBytes) {
      // Still no newline: stop buffering, start discarding.
      discarding_ += buffer_.size();
      buffer_.clear();
    }

    char chunk[4096];
    const ssize_t got = ::read(fd_, chunk, sizeof chunk);
    if (got < 0) {
      if (errno == EINTR) return Status::Interrupted;
      return Status::Error;
    }
    if (got == 0) {
      if (discarding_ > 0) {
        discarding_ = 0;
        return Status::Oversized;
      }
      if (!buffer_.empty()) {
        // Final unterminated line.
        line = std::move(buffer_);
        buffer_.clear();
        return Status::Line;
      }
      return Status::Eof;
    }
    if (discarding_ > 0) {
      // Scan the fresh chunk for the terminating newline without buffering.
      const char* end = static_cast<const char*>(
          memchr(chunk, '\n', static_cast<std::size_t>(got)));
      if (end == nullptr) {
        discarding_ += static_cast<std::size_t>(got);
        continue;
      }
      const std::size_t tail =
          static_cast<std::size_t>(chunk + got - (end + 1));
      buffer_.assign(end + 1, tail);
      discarding_ = 0;
      return Status::Oversized;
    }
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

int serve_fd(Service& service, int in_fd, int out_fd,
             const std::atomic<bool>* stop) {
  LineReader reader(in_fd);
  auto sink = std::make_shared<ResponseSink>(out_fd);

  int exit_code = 0;
  for (;;) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      service.begin_shutdown();
      break;
    }
    std::string line;
    const LineReader::Status status = reader.next(line);
    if (status == LineReader::Status::Interrupted) continue;  // recheck stop
    if (status == LineReader::Status::Eof) break;
    if (status == LineReader::Status::Error) {
      exit_code = 1;
      break;
    }
    if (status == LineReader::Status::Oversized) {
      sink->expect_one();
      sink->deliver(format_error_response(
          "", {"bad_request", "request line longer than " +
                                  std::to_string(kMaxLineBytes) + " bytes"}));
      continue;
    }
    if (line.empty()) continue;  // blank lines are keep-alives, not requests
    sink->expect_one();
    service.submit_line(line,
                        [sink](std::string response) { sink->deliver(response); });
  }

  // Every accepted job still answers before the transport goes away.
  service.drain();
  sink->drain();
  return exit_code;
}

int serve_unix_socket(Service& service, const std::string& path,
                      const std::atomic<bool>& stop) {
  sockaddr_un address{};
  if (path.size() >= sizeof(address.sun_path)) return 1;
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);

  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) return 1;
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&address),
             sizeof address) != 0 ||
      ::listen(listener, 16) != 0) {
    ::close(listener);
    ::unlink(path.c_str());
    return 1;
  }

  // Live connection fds, so draining can half-close readers parked in
  // read(2).  A thread removes its fd (under the mutex) before closing it —
  // the main thread never touches an fd number after it could be recycled.
  std::mutex live_mutex;
  std::vector<int> live_fds;

  std::vector<std::thread> connections;
  for (;;) {
    if (stop.load(std::memory_order_relaxed)) {
      service.begin_shutdown();
      break;
    }
    if (service.shutting_down()) break;

    pollfd poller{};
    poller.fd = listener;
    poller.events = POLLIN;
    const int ready = ::poll(&poller, 1, /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;

    const int connection = ::accept(listener, nullptr, nullptr);
    if (connection < 0) {
      if (errno == EINTR) continue;
      break;
    }
    {
      std::lock_guard<std::mutex> lock(live_mutex);
      live_fds.push_back(connection);
    }
    connections.emplace_back(
        [&service, connection, &stop, &live_mutex, &live_fds] {
          (void)serve_fd(service, connection, connection, &stop);
          {
            std::lock_guard<std::mutex> lock(live_mutex);
            live_fds.erase(
                std::remove(live_fds.begin(), live_fds.end(), connection),
                live_fds.end());
          }
          ::close(connection);
        });
  }

  // The signal only interrupts the thread it lands on; connection threads
  // may still be parked in read(2) on idle clients.  Half-close their read
  // sides: the readers see EOF and wind down through the normal drain path,
  // while responses for in-flight jobs still go out on the open write sides.
  {
    std::lock_guard<std::mutex> lock(live_mutex);
    for (const int fd : live_fds) ::shutdown(fd, SHUT_RD);
  }
  for (std::thread& connection : connections) connection.join();
  service.drain();
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}

std::optional<std::string> submit_unix_socket(const std::string& path,
                                              const std::string& request_line,
                                              std::string& error) {
  sockaddr_un address{};
  if (path.size() >= sizeof(address.sun_path)) {
    error = "socket path too long";
    return std::nullopt;
  }
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error = "socket: " + std::string(std::strerror(errno));
    return std::nullopt;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof address) != 0) {
    error = "connect " + path + ": " + std::strerror(errno);
    ::close(fd);
    return std::nullopt;
  }
  const std::string framed = request_line + "\n";
  if (!write_all(fd, framed.data(), framed.size())) {
    error = "write: " + std::string(std::strerror(errno));
    ::close(fd);
    return std::nullopt;
  }
  LineReader reader(fd);
  std::string response;
  for (;;) {
    const LineReader::Status status = reader.next(response);
    if (status == LineReader::Status::Interrupted) continue;
    if (status == LineReader::Status::Line) {
      ::close(fd);
      return response;
    }
    error = status == LineReader::Status::Eof ? "connection closed before reply"
                                              : "read failure";
    ::close(fd);
    return std::nullopt;
  }
}

}  // namespace cvg::serve
