#include "cvg/serve/json.hpp"

#include <charconv>
#include <cmath>

#include "cvg/util/check.hpp"

namespace cvg::serve {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const JsonMember& member : as_object()) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

namespace {

/// Cursor over the input with latched structured errors; every accessor
/// bounds-checks before reading, mirroring the corpus format Reader.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  [[nodiscard]] bool failed() const { return !error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }

  std::optional<JsonValue> parse_document() {
    skip_whitespace();
    JsonValue value = parse_value(0);
    if (failed()) return std::nullopt;
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing bytes after the JSON value");
      return std::nullopt;
    }
    return value;
  }

 private:
  void fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " (at byte " + std::to_string(pos_) + ")";
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return at_end() ? '\0' : text_[pos_]; }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected, const char* what) {
    if (at_end() || text_[pos_] != expected) {
      fail(std::string("expected ") + what);
      return false;
    }
    ++pos_;
    return true;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_).substr(0, literal.size()) != literal) {
      fail("unrecognized literal");
      return false;
    }
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxJsonDepth) {
      fail("nesting deeper than " + std::to_string(kMaxJsonDepth) + " levels");
      return JsonValue();
    }
    skip_whitespace();
    if (at_end()) {
      fail("unexpected end of input");
      return JsonValue();
    }
    const char c = peek();
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') return JsonValue(parse_string());
    if (c == 't') {
      return consume_literal("true") ? JsonValue(true) : JsonValue();
    }
    if (c == 'f') {
      return consume_literal("false") ? JsonValue(false) : JsonValue();
    }
    if (c == 'n') {
      consume_literal("null");
      return JsonValue();
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail(std::string("unexpected character '") + c + "'");
    return JsonValue();
  }

  JsonValue parse_object(int depth) {
    consume('{', "'{'");
    JsonObject object;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(object));
    }
    for (;;) {
      skip_whitespace();
      if (peek() != '"') {
        fail("expected a quoted object key");
        return JsonValue();
      }
      std::string key = parse_string();
      if (failed()) return JsonValue();
      for (const JsonMember& member : object) {
        if (member.first == key) {
          fail("duplicate object key \"" + key + "\"");
          return JsonValue();
        }
      }
      skip_whitespace();
      if (!consume(':', "':' after object key")) return JsonValue();
      JsonValue value = parse_value(depth + 1);
      if (failed()) return JsonValue();
      object.emplace_back(std::move(key), std::move(value));
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (!consume('}', "',' or '}' in object")) return JsonValue();
      return JsonValue(std::move(object));
    }
  }

  JsonValue parse_array(int depth) {
    consume('[', "'['");
    JsonArray array;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(array));
    }
    for (;;) {
      JsonValue value = parse_value(depth + 1);
      if (failed()) return JsonValue();
      array.push_back(std::move(value));
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (!consume(']', "',' or ']' in array")) return JsonValue();
      return JsonValue(std::move(array));
    }
  }

  std::string parse_string() {
    consume('"', "'\"'");
    std::string out;
    while (!at_end()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          const std::optional<unsigned> code = parse_hex4();
          if (!code) return out;
          if (*code >= 0xD800 && *code <= 0xDFFF) {
            fail("surrogate \\u escapes are not supported");
            return out;
          }
          append_utf8(out, *code);
          break;
        }
        default:
          fail(std::string("invalid escape '\\") + escape + "'");
          return out;
      }
    }
    fail("unterminated string");
    return out;
  }

  std::optional<unsigned> parse_hex4() {
    if (text_.size() - pos_ < 4) {
      fail("truncated \\u escape");
      return std::nullopt;
    }
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("non-hex digit in \\u escape");
        return std::nullopt;
      }
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (at_end() || peek() < '0' || peek() > '9') {
      fail("malformed number");
      return JsonValue();
    }
    // JSON forbids leading zeros: either a lone 0 or [1-9][0-9]*.
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    bool is_integer = true;
    if (peek() == '.') {
      is_integer = false;
      ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') {
        fail("malformed fraction");
        return JsonValue();
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      is_integer = false;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') {
        fail("malformed exponent");
        return JsonValue();
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (is_integer) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc{} && ptr == token.data() + token.size()) {
        return JsonValue(value);
      }
      // Out of int64 range: fall through to double so huge counters are a
      // validation error ("not an integer"), not a parse crash.
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size() ||
        !std::isfinite(value)) {
      fail("number out of range");
      return JsonValue();
    }
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

void write_value(const JsonValue& value, std::string& out);

void write_string(std::string_view text, std::string& out) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xF]);
          out.push_back(kHex[static_cast<unsigned char>(c) & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void write_value(const JsonValue& value, std::string& out) {
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_int()) {
    out += std::to_string(value.as_int());
  } else if (value.is_double()) {
    const double d = value.as_double();
    CVG_CHECK(std::isfinite(d)) << "write_json: non-finite double";
    char buffer[32];
    const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof buffer, d);
    CVG_CHECK(ec == std::errc{}) << "write_json: double format failure";
    out.append(buffer, ptr);
  } else if (value.is_string()) {
    write_string(value.as_string(), out);
  } else if (value.is_array()) {
    out.push_back('[');
    bool first = true;
    for (const JsonValue& item : value.as_array()) {
      if (!first) out.push_back(',');
      first = false;
      write_value(item, out);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    bool first = true;
    for (const JsonMember& member : value.as_object()) {
      if (!first) out.push_back(',');
      first = false;
      write_string(member.first, out);
      out.push_back(':');
      write_value(member.second, out);
    }
    out.push_back('}');
  }
}

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text, std::string& error) {
  Parser parser(text);
  std::optional<JsonValue> value = parser.parse_document();
  if (!value.has_value()) error = parser.error();
  return value;
}

std::string write_json(const JsonValue& value) {
  std::string out;
  write_value(value, out);
  return out;
}

std::string json_quote(std::string_view text) {
  std::string out;
  write_string(text, out);
  return out;
}

}  // namespace cvg::serve
