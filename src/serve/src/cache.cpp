#include "cvg/serve/cache.hpp"

#include <filesystem>
#include <fstream>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "cvg/util/check.hpp"

namespace cvg::serve {

namespace {

/// Spill file name for a key: 16 lowercase hex digits, matching the corpus
/// store's content-hash naming so a cache directory is greppable.
[[nodiscard]] std::string hex_name(std::uint64_t key) {
  constexpr char kHex[] = "0123456789abcdef";
  std::string name(16, '0');
  for (int i = 15; i >= 0; --i) {
    name[static_cast<std::size_t>(i)] = kHex[key & 0xF];
    key >>= 4;
  }
  return name + ".json";
}

}  // namespace

struct ResultCache::Impl {
  using Entry = std::pair<std::uint64_t, std::string>;  // key, payload

  std::size_t max_entries;
  std::size_t max_bytes;
  std::string spill_dir;

  mutable std::mutex mutex;
  std::list<Entry> lru;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
  std::size_t bytes = 0;
  CacheStats counters;
  bool spill_dir_ready = false;

  /// Drops LRU entries until both bounds hold; spills each victim when the
  /// disk tier is enabled.  Caller holds the mutex.
  void evict_to_fit() {
    while (!lru.empty() &&
           (lru.size() > max_entries || bytes > max_bytes)) {
      Entry victim = std::move(lru.back());
      lru.pop_back();
      index.erase(victim.first);
      bytes -= victim.second.size();
      ++counters.evictions;
      spill(victim.first, victim.second);
    }
  }

  void spill(std::uint64_t key, const std::string& payload) {
    if (spill_dir.empty()) return;
    std::error_code ec;
    if (!spill_dir_ready) {
      std::filesystem::create_directories(spill_dir, ec);
      if (ec) return;  // disk tier is best-effort; memory tier still correct
      spill_dir_ready = true;
    }
    const std::string path = spill_dir + "/" + hex_name(key);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    if (!out) std::filesystem::remove(path, ec);
  }

  [[nodiscard]] std::optional<std::string> load_spilled(std::uint64_t key) {
    if (spill_dir.empty()) return std::nullopt;
    std::ifstream in(spill_dir + "/" + hex_name(key), std::ios::binary);
    if (!in) return std::nullopt;
    std::string payload((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof()) return std::nullopt;
    return payload;
  }
};

ResultCache::ResultCache(std::size_t max_entries, std::size_t max_bytes,
                         std::string spill_dir)
    : impl_(std::make_unique<Impl>()) {
  CVG_CHECK(max_entries > 0 && max_bytes > 0)
      << "ResultCache: bounds must be positive";
  impl_->max_entries = max_entries;
  impl_->max_bytes = max_bytes;
  impl_->spill_dir = std::move(spill_dir);
}

ResultCache::~ResultCache() = default;

std::optional<std::string> ResultCache::lookup(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->index.find(key);
  if (it != impl_->index.end()) {
    impl_->lru.splice(impl_->lru.begin(), impl_->lru, it->second);
    ++impl_->counters.hits;
    return it->second->second;
  }
  if (std::optional<std::string> payload = impl_->load_spilled(key)) {
    ++impl_->counters.spill_hits;
    // Promote back into the memory tier.
    impl_->lru.emplace_front(key, *payload);
    impl_->index.emplace(key, impl_->lru.begin());
    impl_->bytes += payload->size();
    impl_->evict_to_fit();
    return payload;
  }
  ++impl_->counters.misses;
  return std::nullopt;
}

void ResultCache::insert(std::uint64_t key, std::string payload) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (payload.size() > impl_->max_bytes) return;
  const auto it = impl_->index.find(key);
  if (it != impl_->index.end()) {
    impl_->bytes -= it->second->second.size();
    impl_->bytes += payload.size();
    it->second->second = std::move(payload);
    impl_->lru.splice(impl_->lru.begin(), impl_->lru, it->second);
  } else {
    impl_->lru.emplace_front(key, std::move(payload));
    impl_->index.emplace(key, impl_->lru.begin());
    impl_->bytes += impl_->lru.front().second.size();
    ++impl_->counters.insertions;
  }
  impl_->evict_to_fit();
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  CacheStats out = impl_->counters;
  out.entries = impl_->lru.size();
  out.bytes = impl_->bytes;
  return out;
}

}  // namespace cvg::serve
