#include "cvg/serve/job.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "cvg/adversary/registry.hpp"
#include "cvg/policy/registry.hpp"
#include "cvg/topology/spec.hpp"
#include "cvg/util/check.hpp"
#include "cvg/util/fnv.hpp"
#include "cvg/util/rng.hpp"

namespace cvg::serve {

namespace {

/// Wire names of every job kind, indexed by JobKind.  scripts/
/// check_invariants.py cross-references these quoted names against the
/// serve tests — every job type the service accepts must be exercised.
constexpr const char* kJobKinds[] = {
    "run", "sweep", "replay", "certify", "minimize", "stats", "shutdown",
};

[[nodiscard]] std::optional<JobKind> job_kind_from_name(std::string_view name) {
  for (std::size_t i = 0; i < std::size(kJobKinds); ++i) {
    if (name == kJobKinds[i]) return static_cast<JobKind>(i);
  }
  return std::nullopt;
}

/// Latches the first validation failure as a `bad_request` JobError.
class Validator {
 public:
  explicit Validator(JobError& error) : error_(error) {}

  [[nodiscard]] bool failed() const { return failed_; }

  void fail(std::string message) {
    if (failed_) return;
    failed_ = true;
    error_.code = "bad_request";
    error_.message = std::move(message);
  }

  /// Field must be a string.
  [[nodiscard]] std::optional<std::string> string_field(const JsonValue& value,
                                                        const std::string& key) {
    if (!value.is_string()) {
      fail("field \"" + key + "\" must be a string");
      return std::nullopt;
    }
    return value.as_string();
  }

  /// Field must be an integer in [min, max].
  [[nodiscard]] std::optional<std::uint64_t> count_field(const JsonValue& value,
                                                         const std::string& key,
                                                         std::uint64_t min,
                                                         std::uint64_t max) {
    if (!value.is_int() || value.as_int() < 0) {
      fail("field \"" + key + "\" must be a non-negative integer");
      return std::nullopt;
    }
    const auto count = static_cast<std::uint64_t>(value.as_int());
    if (count < min || count > max) {
      fail("field \"" + key + "\" must be in [" + std::to_string(min) + ", " +
           std::to_string(max) + "]");
      return std::nullopt;
    }
    return count;
  }

  /// Field must be an array of 1..max_items non-empty strings.
  [[nodiscard]] std::optional<std::vector<std::string>> string_list_field(
      const JsonValue& value, const std::string& key, std::size_t max_items) {
    if (!value.is_array()) {
      fail("field \"" + key + "\" must be an array of strings");
      return std::nullopt;
    }
    const JsonArray& array = value.as_array();
    if (array.empty() || array.size() > max_items) {
      fail("field \"" + key + "\" must hold 1.." + std::to_string(max_items) +
           " entries");
      return std::nullopt;
    }
    std::vector<std::string> items;
    items.reserve(array.size());
    for (const JsonValue& item : array) {
      if (!item.is_string() || item.as_string().empty()) {
        fail("field \"" + key + "\" entries must be non-empty strings");
        return std::nullopt;
      }
      items.push_back(item.as_string());
    }
    return items;
  }

 private:
  JobError& error_;
  bool failed_ = false;
};

/// Ceilings keeping one request's worth of work bounded.
constexpr std::size_t kMaxSweepAxis = 64;
constexpr std::size_t kMaxIdBytes = 128;
constexpr std::size_t kMaxPathBytes = 4096;
constexpr std::uint64_t kMaxTimeoutMs = 600'000;
constexpr std::uint64_t kMaxMinimizeReplays = 1'000'000;
constexpr Capacity kMaxCapacity = 1024;

[[nodiscard]] bool validate_topology(const std::string& spec, Validator& v) {
  std::string spec_error;
  if (!build::parse_topology_spec(spec, spec_error).has_value()) {
    v.fail("topology \"" + spec + "\": " + spec_error);
    return false;
  }
  return true;
}

[[nodiscard]] bool validate_policy(const std::string& name, Validator& v) {
  if (!is_known_policy(name)) {
    v.fail("unknown policy \"" + name + "\"");
    return false;
  }
  return true;
}

/// Fields each op accepts beyond the universal `op` / `id` / `timeout_ms` /
/// `cache`.  Everything else in the request is a structured rejection.
[[nodiscard]] bool field_allowed(JobKind kind, std::string_view key) {
  static constexpr std::string_view kRunFields[] = {
      "topology", "policy",    "adversary", "steps",
      "capacity", "burstiness", "semantics", "seed"};
  static constexpr std::string_view kSweepFields[] = {
      "topologies", "policies",  "adversary", "steps",
      "capacity",   "burstiness", "semantics", "seed", "seeds"};
  switch (kind) {
    case JobKind::Run:
      return std::find(std::begin(kRunFields), std::end(kRunFields), key) !=
             std::end(kRunFields);
    case JobKind::Sweep:
      return std::find(std::begin(kSweepFields), std::end(kSweepFields), key) !=
             std::end(kSweepFields);
    case JobKind::Replay:
    case JobKind::Certify:
      return key == "file";
    case JobKind::Minimize:
      return key == "file" || key == "max_replays";
    case JobKind::Stats:
    case JobKind::Shutdown:
      return false;
  }
  return false;
}

}  // namespace

std::string_view job_kind_name(JobKind kind) {
  const auto index = static_cast<std::size_t>(kind);
  CVG_CHECK(index < std::size(kJobKinds)) << "job_kind_name: bad kind";
  return kJobKinds[index];
}

std::optional<JobRequest> parse_request(std::string_view line, JobError& error) {
  Validator v(error);

  std::string json_error;
  const std::optional<JsonValue> document = parse_json(line, json_error);
  if (!document.has_value()) {
    v.fail("invalid JSON: " + json_error);
    return std::nullopt;
  }
  if (!document->is_object()) {
    v.fail("request must be a JSON object");
    return std::nullopt;
  }

  const JsonValue* op = document->find("op");
  if (op == nullptr || !op->is_string()) {
    v.fail("missing string field \"op\"");
    return std::nullopt;
  }
  const std::optional<JobKind> kind = job_kind_from_name(op->as_string());
  if (!kind.has_value()) {
    v.fail("unknown op \"" + op->as_string() + "\"");
    return std::nullopt;
  }

  JobRequest request;
  request.kind = *kind;

  bool saw_topology = false;
  bool saw_policy = false;
  bool saw_file = false;
  bool saw_seed = false;
  bool saw_seeds = false;

  for (const JsonMember& member : document->as_object()) {
    const std::string& key = member.first;
    const JsonValue& value = member.second;
    if (key == "op") continue;
    if (key == "id") {
      if (const auto id = v.string_field(value, key)) {
        if (id->size() > kMaxIdBytes) {
          v.fail("field \"id\" longer than " + std::to_string(kMaxIdBytes) +
                 " bytes");
        } else {
          request.id = *id;
        }
      }
      continue;
    }
    if (key == "timeout_ms") {
      if (const auto ms = v.count_field(value, key, 0, kMaxTimeoutMs)) {
        request.timeout_ms = *ms;
      }
      continue;
    }
    if (key == "cache") {
      if (!value.is_bool()) {
        v.fail("field \"cache\" must be a boolean");
      } else {
        request.use_cache = value.as_bool();
      }
      continue;
    }
    if (!field_allowed(*kind, key)) {
      v.fail("field \"" + key + "\" is not valid for op \"" +
             std::string(job_kind_name(*kind)) + "\"");
      continue;
    }
    if (key == "topology") {
      if (const auto spec = v.string_field(value, key)) {
        if (validate_topology(*spec, v)) {
          request.topologies = {*spec};
          saw_topology = true;
        }
      }
    } else if (key == "topologies") {
      if (auto specs = v.string_list_field(value, key, kMaxSweepAxis)) {
        bool ok = true;
        for (const std::string& spec : *specs) ok = ok && validate_topology(spec, v);
        if (ok) {
          request.topologies = std::move(*specs);
          saw_topology = true;
        }
      }
    } else if (key == "policy") {
      if (const auto name = v.string_field(value, key)) {
        if (validate_policy(*name, v)) {
          request.policies = {*name};
          saw_policy = true;
        }
      }
    } else if (key == "policies") {
      if (auto names = v.string_list_field(value, key, kMaxSweepAxis)) {
        bool ok = true;
        for (const std::string& name : *names) ok = ok && validate_policy(name, v);
        if (ok) {
          request.policies = std::move(*names);
          saw_policy = true;
        }
      }
    } else if (key == "adversary") {
      if (const auto name = v.string_field(value, key)) {
        if (!adversary::is_known_adversary(*name)) {
          v.fail("unknown adversary \"" + *name + "\"");
        } else {
          request.adversary = *name;
        }
      }
    } else if (key == "steps") {
      if (const auto steps = v.count_field(value, key, 1, kMaxJobSteps)) {
        request.steps = *steps;
      }
    } else if (key == "capacity") {
      if (const auto c = v.count_field(value, key, 1,
                                       static_cast<std::uint64_t>(kMaxCapacity))) {
        request.capacity = static_cast<Capacity>(*c);
      }
    } else if (key == "burstiness") {
      if (const auto b = v.count_field(value, key, 0,
                                       static_cast<std::uint64_t>(kMaxCapacity))) {
        request.burstiness = static_cast<Capacity>(*b);
      }
    } else if (key == "semantics") {
      if (const auto name = v.string_field(value, key)) {
        if (*name == "before") {
          request.semantics = StepSemantics::DecideBeforeInjection;
        } else if (*name == "after") {
          request.semantics = StepSemantics::DecideAfterInjection;
        } else {
          v.fail("field \"semantics\" must be \"before\" or \"after\"");
        }
      }
    } else if (key == "seed") {
      if (!value.is_int() || value.as_int() < 0) {
        v.fail("field \"seed\" must be a non-negative integer");
      } else {
        request.seed = static_cast<std::uint64_t>(value.as_int());
        saw_seed = true;
      }
    } else if (key == "seeds") {
      if (!value.is_array()) {
        v.fail("field \"seeds\" must be an array of non-negative integers");
      } else {
        const JsonArray& array = value.as_array();
        if (array.empty() || array.size() > kMaxSweepAxis) {
          v.fail("field \"seeds\" must hold 1.." +
                 std::to_string(kMaxSweepAxis) + " entries");
        } else {
          std::vector<std::uint64_t> seeds;
          seeds.reserve(array.size());
          bool ok = true;
          for (const JsonValue& item : array) {
            if (!item.is_int() || item.as_int() < 0) {
              v.fail("field \"seeds\" entries must be non-negative integers");
              ok = false;
              break;
            }
            seeds.push_back(static_cast<std::uint64_t>(item.as_int()));
          }
          if (ok) {
            request.seeds = std::move(seeds);
            saw_seeds = true;
          }
        }
      }
    } else if (key == "file") {
      if (const auto path = v.string_field(value, key)) {
        if (path->empty() || path->size() > kMaxPathBytes) {
          v.fail("field \"file\" must be 1.." + std::to_string(kMaxPathBytes) +
                 " bytes");
        } else if (path->find('\0') != std::string::npos) {
          v.fail("field \"file\" contains a NUL byte");
        } else {
          request.file = *path;
          saw_file = true;
        }
      }
    } else if (key == "max_replays") {
      if (const auto n = v.count_field(value, key, 1, kMaxMinimizeReplays)) {
        request.max_replays = *n;
      }
    }
    if (v.failed()) return std::nullopt;
  }
  if (v.failed()) return std::nullopt;

  // Per-op required fields.
  switch (*kind) {
    case JobKind::Run:
    case JobKind::Sweep: {
      const char* topo_key = *kind == JobKind::Run ? "topology" : "topologies";
      const char* policy_key = *kind == JobKind::Run ? "policy" : "policies";
      if (!saw_topology) v.fail(std::string("missing field \"") + topo_key + "\"");
      if (!v.failed() && !saw_policy) {
        v.fail(std::string("missing field \"") + policy_key + "\"");
      }
      if (!v.failed() && request.steps == 0) v.fail("missing field \"steps\"");
      if (!v.failed() && saw_seed && saw_seeds) {
        v.fail("fields \"seed\" and \"seeds\" are mutually exclusive");
      }
      break;
    }
    case JobKind::Replay:
    case JobKind::Certify:
    case JobKind::Minimize:
      if (!saw_file) v.fail("missing field \"file\"");
      break;
    case JobKind::Stats:
    case JobKind::Shutdown:
      break;
  }
  if (v.failed()) return std::nullopt;
  return request;
}

std::uint64_t run_job_hash(const std::string& topology,
                           const std::string& policy,
                           const std::string& adversary, Step steps,
                           Capacity capacity, Capacity burstiness,
                           StepSemantics semantics, std::uint64_t seed,
                           std::string_view engine,
                           std::uint32_t lane_width) {
  Fnv1a hash;
  hash.str("run");
  hash.str(topology);
  hash.str(policy);
  hash.str(adversary);
  hash.u64(steps);
  hash.u32(static_cast<std::uint32_t>(capacity));
  hash.u32(static_cast<std::uint32_t>(burstiness));
  hash.u8(static_cast<std::uint8_t>(semantics));
  hash.u64(seed);
  hash.str(std::string(engine));
  hash.u32(lane_width);
  return hash.value();
}

std::string format_ok_response(const std::string& id,
                               std::string_view result_json, bool cached,
                               std::uint64_t micros) {
  std::string out = "{\"id\":";
  out += json_quote(id);
  out += ",\"ok\":true,\"cached\":";
  out += cached ? "true" : "false";
  out += ",\"micros\":";
  out += std::to_string(micros);
  out += ",\"result\":";
  out += result_json;
  out += "}";
  return out;
}

std::string format_error_response(const std::string& id, const JobError& error) {
  std::string out = "{\"id\":";
  out += json_quote(id);
  out += ",\"ok\":false,\"error\":{\"code\":";
  out += json_quote(error.code);
  out += ",\"message\":";
  out += json_quote(error.message);
  out += "}}";
  return out;
}

namespace {

/// Raw material for structure-aware fuzzing: schema tokens the mutator
/// splices into otherwise-valid requests.
constexpr std::string_view kFuzzTokens[] = {
    "\"op\"",        "\"run\"",     "\"sweep\"",      "\"replay\"",
    "\"certify\"",   "\"minimize\"", "\"stats\"",      "\"shutdown\"",
    "\"topology\"",  "\"topologies\"", "\"policy\"",  "\"policies\"",
    "\"adversary\"", "\"steps\"",   "\"capacity\"",   "\"burstiness\"",
    "\"semantics\"", "\"seed\"",    "\"seeds\"",      "\"file\"",
    "\"max_replays\"",
    "\"timeout_ms\"", "\"cache\"",  "\"id\"",         "\"before\"",
    "\"after\"",     "path:64",     "spider:4x4",     "odd-even",
    "greedy",        "fixed-deepest", ":",            ",",
    "{",             "}",           "[",              "]",
    "0",             "-1",          "1e308",          "18446744073709551615",
    "null",          "true",        "false",          "\\u0000",
    "\"\\ud800\"",   "0x10",        "  ",             "\n",
};

constexpr std::string_view kSeedRequests[] = {
    R"({"op":"run","topology":"path:64","policy":"odd-even","steps":128})",
    R"({"op":"run","topology":"spider:4x4","policy":"greedy","adversary":"random-uniform","steps":64,"seed":7})",
    R"({"op":"sweep","topologies":["path:8","star:4"],"policies":["greedy","odd-even"],"steps":32})",
    R"({"op":"sweep","topologies":["path:8"],"policies":["odd-even"],"adversary":"random-uniform","steps":32,"seeds":[1,2,3]})",
    R"({"op":"replay","file":"corpus/entry.cvgc","id":"r"})",
    R"({"op":"certify","file":"corpus"})",
    R"({"op":"minimize","file":"corpus/entry.cvgc","max_replays":100})",
    R"({"op":"stats"})",
    R"({"op":"shutdown","id":"bye"})",
};

}  // namespace

RequestFuzzReport fuzz_requests(std::uint64_t seed, std::uint64_t rounds,
                                std::uint64_t budget_ms) {
  Xoshiro256StarStar rng(seed);
  const auto start = std::chrono::steady_clock::now();
  RequestFuzzReport report;

  for (std::uint64_t round = 0; round < rounds; ++round) {
    if (budget_ms != 0 && (round & 0xFF) == 0) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start);
      if (static_cast<std::uint64_t>(elapsed.count()) >= budget_ms) break;
    }

    std::string line;
    switch (rng.next() % 3) {
      case 0: {
        // Random bytes, newline-free (the transport splits on newlines).
        const std::size_t length = rng.next() % 200;
        line.reserve(length);
        for (std::size_t i = 0; i < length; ++i) {
          char c = static_cast<char>(rng.next() & 0xFF);
          if (c == '\n') c = ' ';
          line.push_back(c);
        }
        break;
      }
      case 1: {
        // Mutate a valid request: byte flips, truncation, duplication.
        line = std::string(kSeedRequests[rng.next() % std::size(kSeedRequests)]);
        const std::uint64_t edits = 1 + rng.next() % 8;
        for (std::uint64_t e = 0; e < edits && !line.empty(); ++e) {
          const std::size_t at = rng.next() % line.size();
          switch (rng.next() % 4) {
            case 0: line[at] = static_cast<char>(rng.next() & 0x7F); break;
            case 1: line.erase(at, 1 + rng.next() % 4); break;
            case 2: line.insert(at, std::string(kFuzzTokens[rng.next() % std::size(kFuzzTokens)])); break;
            default: line.resize(at); break;
          }
        }
        break;
      }
      default: {
        // Splice schema tokens into a fresh soup.
        const std::uint64_t parts = rng.next() % 16;
        for (std::uint64_t p = 0; p < parts; ++p) {
          line += kFuzzTokens[rng.next() % std::size(kFuzzTokens)];
        }
        break;
      }
    }
    // Newlines would never reach parse_request through the NDJSON framing.
    std::replace(line.begin(), line.end(), '\n', ' ');

    JobError error;
    const std::optional<JobRequest> request = parse_request(line, error);
    ++report.rounds;
    if (request.has_value()) {
      ++report.parsed_ok;
      // Accepted requests must re-reject or re-accept deterministically and
      // carry a usable kind; a malformed accept is a fuzzer catch.
      CVG_CHECK(!job_kind_name(request->kind).empty());
    } else {
      ++report.rejected;
      CVG_CHECK(!error.code.empty() && !error.message.empty())
          << "fuzz_requests: rejection without a structured error";
    }
  }
  return report;
}

}  // namespace cvg::serve
