#include "cvg/serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "cvg/adversary/registry.hpp"
#include "cvg/corpus/format.hpp"
#include "cvg/corpus/minimize.hpp"
#include "cvg/corpus/replay.hpp"
#include "cvg/mem/arena.hpp"
#include "cvg/parallel/pool.hpp"
#include "cvg/policy/registry.hpp"
#include "cvg/sim/lane_engine.hpp"
#include "cvg/topology/spec.hpp"
#include "cvg/util/check.hpp"
#include "cvg/util/fnv.hpp"

namespace cvg::serve {

namespace {

/// How often the simulation loops poll their CancelToken: cheap enough to
/// be invisible, frequent enough that timeouts land within milliseconds.
constexpr Step kCancelPollMask = 1023;

/// Lane width the service configures for lane-eligible sweep blocks.  It is
/// folded into every cell's cache key (`run_job_hash`), so changing the
/// width — a new kernel generation — retires memoized results instead of
/// serving them across substrates.
constexpr std::uint32_t kServeLaneWidth = 64;

/// Per-worker request scratch, keyed to the executing `WorkerPool` worker
/// through `thread_local` storage (workers are long-lived threads, so each
/// owns exactly one of these for the service's lifetime).  The arena is
/// `reset()` at the start of every request executor — request-scoped arrays
/// (lane row pointers) bump-allocate from chunks that persist across
/// requests — and the injection buffer's capacity likewise survives, so a
/// warm worker executes cells without per-step heap traffic of its own.
struct WorkerScratch {
  mem::Arena arena;
  std::vector<NodeId> injections;
};

[[nodiscard]] WorkerScratch& worker_scratch() {
  thread_local WorkerScratch scratch;
  return scratch;
}

[[nodiscard]] SimOptions request_sim_options(const JobRequest& request) {
  SimOptions options;
  options.capacity = request.capacity;
  options.burstiness = request.burstiness;
  options.semantics = request.semantics;
  return options;
}

/// The engine variant the service would execute a cell on.  A pure function
/// of (policy, options) — never of grid shape or runtime block width — so a
/// run job and the equal-parameter sweep cell compute identical cache keys
/// and keep warming each other's results.
struct EngineVariant {
  std::string_view engine;
  std::uint32_t lane_width = 0;
};

[[nodiscard]] EngineVariant cell_engine_variant(const Policy& policy,
                                                const SimOptions& options) {
  if (LaneSimulator::supported(policy, options)) {
    return {"lanes", kServeLaneWidth};
  }
  return {"scalar", 0};
}

[[nodiscard]] std::uint64_t cell_cache_key(const std::string& topology,
                                           const std::string& policy_name,
                                           const JobRequest& request,
                                           std::uint64_t seed) {
  const PolicyPtr policy = make_policy(policy_name);
  const EngineVariant variant =
      cell_engine_variant(*policy, request_sim_options(request));
  return run_job_hash(topology, policy_name, request.adversary, request.steps,
                      request.capacity, request.burstiness, request.semantics,
                      seed, variant.engine, variant.lane_width);
}

/// One cell's serialized payload.  Shared by the run executor and the lane
/// block executor so cached payloads are byte-identical regardless of which
/// path computed them.
[[nodiscard]] std::string cell_payload(const std::string& topology,
                                       const std::string& policy_name,
                                       const JobRequest& request,
                                       std::uint64_t seed, Height peak,
                                       std::uint64_t injected,
                                       std::uint64_t delivered) {
  JsonObject cell;
  cell.emplace_back("topology", JsonValue(topology));
  cell.emplace_back("policy", JsonValue(policy_name));
  cell.emplace_back("adversary", JsonValue(request.adversary));
  cell.emplace_back("steps", JsonValue(request.steps));
  cell.emplace_back("seed", JsonValue(seed));
  cell.emplace_back("peak", JsonValue(peak));
  cell.emplace_back("injected", JsonValue(injected));
  cell.emplace_back("delivered", JsonValue(delivered));
  return write_json(JsonValue(std::move(cell)));
}

[[nodiscard]] std::uint64_t now_micros(std::chrono::steady_clock::time_point t0) {
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

/// Outcome of one executor: a serialized JSON payload or a structured error.
struct ExecResult {
  std::string payload;  ///< serialized JSON value; meaningful when ok
  JobError error;
  bool ok = false;

  static ExecResult success(std::string payload) {
    ExecResult r;
    r.payload = std::move(payload);
    r.ok = true;
    return r;
  }
  static ExecResult failure(std::string code, std::string message) {
    ExecResult r;
    r.error = {std::move(code), std::move(message)};
    return r;
  }
};

/// Executes one run cell (shared by `run` and each scalar `sweep` cell).
/// Lane-eligible cells run on a width-1 `LaneSimulator` facade — the same
/// kernels a sweep block uses, and the engine variant its cache key names —
/// everything else on the scalar `Simulator`.  The request was validated,
/// so registry lookups cannot fail; only the cancellation deadline can.
[[nodiscard]] ExecResult execute_run_cell(const std::string& topology,
                                          const std::string& policy_name,
                                          const JobRequest& request,
                                          std::uint64_t seed,
                                          const CancelToken& cancel) {
  std::string spec_error;
  const auto spec = build::parse_topology_spec(topology, spec_error);
  CVG_CHECK(spec.has_value()) << "validated spec failed to re-parse";
  const Tree tree = build::make_tree(*spec);
  const PolicyPtr policy = make_policy(policy_name);
  const SimOptions options = request_sim_options(request);

  adversary::AdversaryContext context;
  context.tree = &tree;
  context.policy = policy.get();
  context.options = options;
  context.seed = seed;
  const AdversaryPtr adversary =
      adversary::make_adversary(request.adversary, context);
  adversary->on_simulation_start();

  Height peak = 0;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::vector<NodeId>& injections = worker_scratch().injections;
  const auto drive = [&](auto& sim) -> std::optional<Step> {
    for (Step step = 0; step < request.steps; ++step) {
      if ((step & kCancelPollMask) == 0 && cancel.cancelled()) return step;
      injections.clear();
      adversary->plan(tree, sim.config(), step, options.capacity, injections);
      sim.step(injections);
    }
    peak = sim.peak_height();
    injected = sim.injected();
    delivered = sim.delivered();
    return std::nullopt;
  };

  std::optional<Step> cancelled_at;
  if (LaneSimulator::supported(*policy, options)) {
    LaneSimulator sim(tree, *policy, options, /*lanes=*/1);
    cancelled_at = drive(sim);
  } else {
    Simulator sim(tree, *policy, options);
    cancelled_at = drive(sim);
  }
  if (cancelled_at.has_value()) {
    return ExecResult::failure(
        "timeout",
        "run cancelled after " + std::to_string(*cancelled_at) + " steps");
  }
  return ExecResult::success(cell_payload(topology, policy_name, request, seed,
                                          peak, injected, delivered));
}

/// Executes one sweep block — the cells of one (topology, policy) pair
/// across `seeds` — appending one payload per seed to `payloads`.  Blocks
/// whose adversary is oblivious and whose policy the lane engine supports
/// advance as one SoA lane block (per-seed schedules unrolled up front);
/// everything else falls back to per-cell runs.  Results are bit-identical
/// either way (tests/lane_engine_test.cpp), so the cache never observes
/// which path computed a payload.
[[nodiscard]] ExecResult execute_sweep_block(const std::string& topology,
                                             const std::string& policy_name,
                                             const JobRequest& request,
                                             std::span<const std::uint64_t> seeds,
                                             const CancelToken& cancel,
                                             std::vector<std::string>& payloads) {
  std::string spec_error;
  const auto spec = build::parse_topology_spec(topology, spec_error);
  CVG_CHECK(spec.has_value()) << "validated spec failed to re-parse";
  const Tree tree = build::make_tree(*spec);
  const PolicyPtr policy = make_policy(policy_name);
  const SimOptions options = request_sim_options(request);

  bool lane_eligible =
      seeds.size() > 1 && LaneSimulator::supported(*policy, options);
  std::vector<LaneSchedule> schedules;
  if (lane_eligible) {
    schedules.reserve(seeds.size());
    for (const std::uint64_t seed : seeds) {
      adversary::AdversaryContext context;
      context.tree = &tree;
      context.policy = policy.get();
      context.options = options;
      context.seed = seed;
      const AdversaryPtr adversary =
          adversary::make_adversary(request.adversary, context);
      if (!adversary->oblivious()) {
        lane_eligible = false;  // adaptive plans need live heights
        break;
      }
      schedules.push_back(unroll_oblivious(tree, *adversary, request.steps,
                                           options.capacity));
    }
  }

  if (!lane_eligible) {
    for (const std::uint64_t seed : seeds) {
      ExecResult cell =
          execute_run_cell(topology, policy_name, request, seed, cancel);
      if (!cell.ok) return cell;
      payloads.push_back(std::move(cell.payload));
    }
    return ExecResult::success("");
  }

  LaneSimulator sim(tree, *policy, options, seeds.size());
  WorkerScratch& scratch = worker_scratch();
  scratch.arena.reset();
  const std::span<std::span<const NodeId>> row =
      scratch.arena.make_array<std::span<const NodeId>>(seeds.size());
  for (Step step = 0; step < request.steps; ++step) {
    if ((step & kCancelPollMask) == 0 && cancel.cancelled()) {
      return ExecResult::failure(
          "timeout",
          "sweep block cancelled after " + std::to_string(step) + " steps");
    }
    for (std::size_t lane = 0; lane < seeds.size(); ++lane) {
      row[lane] = schedules[lane][static_cast<std::size_t>(step)];
    }
    sim.step_lanes(row);
  }
  for (std::size_t lane = 0; lane < seeds.size(); ++lane) {
    payloads.push_back(cell_payload(topology, policy_name, request,
                                    seeds[lane], sim.lane_peak(lane),
                                    sim.lane_injected(lane),
                                    sim.lane_delivered(lane)));
  }
  return ExecResult::success("");
}

[[nodiscard]] JsonValue replay_payload(const std::string& file,
                                       const corpus::CorpusEntry& entry,
                                       Height replayed) {
  JsonObject payload;
  payload.emplace_back("file", JsonValue(file));
  payload.emplace_back("topology", JsonValue(entry.topology));
  payload.emplace_back("policy", JsonValue(entry.policy));
  payload.emplace_back("steps", JsonValue(entry.schedule.size()));
  payload.emplace_back("recorded", JsonValue(entry.peak));
  payload.emplace_back("replayed", JsonValue(replayed));
  payload.emplace_back("ok", JsonValue(replayed >= entry.peak));
  return JsonValue(std::move(payload));
}

/// FNV over a file's raw bytes, for certify cache keys: any byte change in
/// any corpus file changes the job hash.  nullopt when unreadable.
[[nodiscard]] std::optional<std::uint64_t> file_bytes_hash(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  Fnv1a hash;
  char buffer[4096];
  while (in.read(buffer, sizeof buffer) || in.gcount() > 0) {
    hash.bytes(buffer, static_cast<std::size_t>(in.gcount()));
    if (in.eof()) break;
  }
  return hash.value();
}

}  // namespace

struct Service::Impl {
  ServiceOptions options;
  WorkerPool pool;
  ResultCache cache;

  mutable std::mutex stats_mutex;
  ServiceStats counters;
  report::LatencyProfile latency;
  bool shutting_down = false;  ///< admission gate (guarded by stats_mutex)

  explicit Impl(ServiceOptions opts)
      : options(opts),
        pool(opts.threads != 0 ? opts.threads
                               : std::max(1u, std::thread::hardware_concurrency()),
             opts.queue_capacity),
        cache(opts.cache_entries, opts.cache_bytes, opts.spill_dir) {}

  void count_response(bool ok, bool cached, std::uint64_t micros) {
    std::lock_guard<std::mutex> lock(stats_mutex);
    if (ok) {
      ++counters.ok;
      if (cached) ++counters.cache_hits;
    } else {
      ++counters.errors;
    }
    latency.record(micros);
  }

  /// Cache key of a validated request, or nullopt when the job is not
  /// cacheable (stats/shutdown), takes per-cell keys (sweep), or its key
  /// cannot be computed yet (replay/minimize/certify keys depend on file
  /// bytes and are computed by the executor, which loads the file anyway).
  [[nodiscard]] static std::optional<std::uint64_t> direct_cache_key(
      const JobRequest& request) {
    if (request.kind != JobKind::Run) return std::nullopt;
    return cell_cache_key(request.topologies.front(), request.policies.front(),
                          request, request.seed);
  }

  /// One in-flight sweep.  Cells resolve out of order — cache hits inline on
  /// the transport thread during planning, uncached blocks on pool workers —
  /// into `cells` slots laid out in grid order (topology-major, then policy,
  /// then seed), and whichever thread resolves the last open block formats
  /// and sends the single response.
  struct SweepState {
    JobRequest request;
    std::function<void(std::string)> respond;
    CancelToken cancel;
    std::chrono::steady_clock::time_point t0;
    std::vector<std::uint64_t> seeds;  ///< effective axis: `seeds` or {seed}

    std::mutex mutex;
    std::vector<std::string> cells;  ///< grid order; filled as blocks finish
    std::size_t open_blocks = 0;
    std::uint64_t cached_cells = 0;
    JobError error;  ///< first failure wins; later blocks still drain
    bool failed = false;
  };

  /// One pool job's worth of sweep work: the uncached seeds of a single
  /// (topology, policy) pair — exactly the cells that share a lane block.
  struct SweepBlock {
    const std::string* topology;  ///< into SweepState::request (shared_ptr-kept)
    const std::string* policy;
    std::vector<std::uint64_t> seeds;
    std::vector<std::size_t> slots;  ///< cells[] indices, parallel to seeds
    std::vector<std::uint64_t> keys;  ///< cache keys, parallel to seeds
  };

  /// Plans a sweep on the transport thread and fans its blocks out to the
  /// pool as independent jobs.  Planning resolves cache hits inline, so a
  /// fully-warm sweep answers without touching a worker; block submission
  /// happens here — never from inside a pool task — so a saturated queue
  /// yields queue_full backpressure instead of a self-deadlock.
  void submit_sweep(JobRequest&& request_in,
                    std::function<void(std::string)>&& respond) {
    auto state = std::make_shared<SweepState>();
    state->request = std::move(request_in);
    state->respond = std::move(respond);
    state->t0 = std::chrono::steady_clock::now();
    state->cancel.set_timeout_ms(state->request.timeout_ms != 0
                                     ? state->request.timeout_ms
                                     : options.default_timeout_ms);
    state->seeds = state->request.seeds.empty()
                       ? std::vector<std::uint64_t>{state->request.seed}
                       : state->request.seeds;
    const JobRequest& request = state->request;
    state->cells.resize(request.topologies.size() * request.policies.size() *
                        state->seeds.size());

    // Planning runs before any block is submitted, so `state` is still
    // exclusively ours here — no lock needed yet.
    std::vector<SweepBlock> blocks;
    std::size_t index = 0;
    for (const std::string& topology : request.topologies) {
      for (const std::string& policy : request.policies) {
        SweepBlock block;
        block.topology = &topology;
        block.policy = &policy;
        for (const std::uint64_t seed : state->seeds) {
          const std::size_t slot = index++;
          const std::uint64_t key =
              cell_cache_key(topology, policy, request, seed);
          std::optional<std::string> hit =
              request.use_cache ? cache.lookup(key) : std::nullopt;
          if (hit.has_value()) {
            state->cells[slot] = std::move(*hit);
            ++state->cached_cells;
            continue;
          }
          block.seeds.push_back(seed);
          block.slots.push_back(slot);
          block.keys.push_back(key);
        }
        if (!block.seeds.empty()) blocks.push_back(std::move(block));
      }
    }

    if (blocks.empty()) {
      finish_sweep(state);  // fully cached: answer inline
      return;
    }
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      state->open_blocks = blocks.size();
    }
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      auto block = std::make_shared<SweepBlock>(std::move(blocks[b]));
      const WorkerPool::Submit submitted = pool.try_submit(
          [this, state, block] { run_sweep_block(state, *block); });
      if (submitted == WorkerPool::Submit::Accepted) continue;
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->failed) {
          state->failed = true;
          state->error =
              submitted == WorkerPool::Submit::QueueFull
                  ? JobError{"queue_full",
                             "job queue is at capacity; retry after a response"}
                  : JobError{"shutting_down",
                             "service is draining; job rejected"};
        }
      }
      // Close this block and everything after it; in-flight blocks still
      // drain, and whoever closes the last one sends the (failed) response.
      close_blocks(state, blocks.size() - b);
      return;
    }
  }

  void run_sweep_block(const std::shared_ptr<SweepState>& state,
                       const SweepBlock& block) {
    bool abandoned = false;
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      abandoned = state->failed;  // first error won; skip the simulation
    }
    if (!abandoned) {
      std::vector<std::string> payloads;
      payloads.reserve(block.seeds.size());
      ExecResult result =
          execute_sweep_block(*block.topology, *block.policy, state->request,
                              block.seeds, state->cancel, payloads);
      if (result.ok && state->request.use_cache) {
        for (std::size_t i = 0; i < payloads.size(); ++i) {
          cache.insert(block.keys[i], payloads[i]);
        }
      }
      std::lock_guard<std::mutex> lock(state->mutex);
      if (!result.ok) {
        if (!state->failed) {
          state->failed = true;
          state->error = std::move(result.error);
        }
      } else {
        for (std::size_t i = 0; i < payloads.size(); ++i) {
          state->cells[block.slots[i]] = std::move(payloads[i]);
        }
      }
    }
    close_blocks(state, 1);
  }

  void close_blocks(const std::shared_ptr<SweepState>& state,
                    std::size_t count) {
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      state->open_blocks -= count;
      last = state->open_blocks == 0;
    }
    if (last) finish_sweep(state);
  }

  /// Called exactly once per sweep, after the last open block resolves (or
  /// inline when every cell was cached).
  void finish_sweep(const std::shared_ptr<SweepState>& state) {
    const std::uint64_t micros = now_micros(state->t0);
    if (state->failed) {
      count_response(false, false, micros);
      state->respond(format_error_response(state->request.id, state->error));
      return;
    }
    std::string cells = "[";
    for (std::size_t i = 0; i < state->cells.size(); ++i) {
      if (i != 0) cells += ",";
      cells += state->cells[i];
    }
    cells += "]";
    const std::uint64_t total =
        static_cast<std::uint64_t>(state->cells.size());
    // A sweep counts as a cache hit when every cell came from the cache
    // (the whole grid skipped simulation).
    const bool cached = state->cached_cells == total;
    std::string payload = "{\"cells\":" + cells +
                          ",\"cell_count\":" + std::to_string(total) +
                          ",\"cached_cells\":" +
                          std::to_string(state->cached_cells) + "}";
    count_response(true, cached, micros);
    state->respond(
        format_ok_response(state->request.id, payload, cached, micros));
  }

  [[nodiscard]] ExecResult execute_replay(const JobRequest& request,
                                          bool& cached) {
    std::string error;
    const std::optional<corpus::CorpusEntry> entry =
        corpus::load_entry(request.file, error);
    if (!entry.has_value()) {
      return ExecResult::failure("not_found",
                                 "cannot load \"" + request.file + "\": " + error);
    }
    if (!is_known_policy(entry->policy)) {
      return ExecResult::failure(
          "bad_request", "entry names unknown policy \"" + entry->policy + "\"");
    }
    // Fold the path in alongside the content hash: the cached payload embeds
    // the request's "file" field, so two paths holding byte-identical entries
    // must not share a cache entry (the second would echo the first's path).
    Fnv1a key;
    key.str("replay");
    key.str(request.file);
    key.u64(corpus::content_hash(*entry));
    if (request.use_cache) {
      if (std::optional<std::string> hit = cache.lookup(key.value())) {
        cached = true;
        return ExecResult::success(std::move(*hit));
      }
    }
    const Height replayed = corpus::replay_entry(*entry);
    std::string payload =
        write_json(replay_payload(request.file, *entry, replayed));
    if (request.use_cache) cache.insert(key.value(), payload);
    return ExecResult::success(std::move(payload));
  }

  [[nodiscard]] ExecResult execute_certify(const JobRequest& request,
                                           const CancelToken& cancel,
                                           bool& cached) {
    // Walk the directory with error codes throughout: the range-for form
    // throws from operator++ (e.g. an entry vanishing mid-scan), and a throw
    // on a pool thread would take down the whole service.
    std::vector<std::string> paths;
    std::error_code ec;
    std::filesystem::directory_iterator it(request.file, ec);
    if (ec) {
      return ExecResult::failure(
          "not_found", "cannot list \"" + request.file + "\": " + ec.message());
    }
    for (const std::filesystem::directory_iterator end; it != end;) {
      if (it->path().extension() == ".cvgc") paths.push_back(it->path().string());
      it.increment(ec);
      if (ec) {
        return ExecResult::failure(
            "not_found", "cannot list \"" + request.file + "\": " + ec.message());
      }
    }
    std::sort(paths.begin(), paths.end());

    // Content-addressed key over the raw bytes of every file in the corpus:
    // touch any file and the certify recomputes; touch nothing and it hits.
    Fnv1a key;
    key.str("certify");
    for (const std::string& path : paths) {
      key.str(path);
      const std::optional<std::uint64_t> bytes = file_bytes_hash(path);
      key.u64(bytes.value_or(0));
      key.u8(bytes.has_value() ? 1 : 0);
    }
    if (request.use_cache) {
      if (std::optional<std::string> hit = cache.lookup(key.value())) {
        cached = true;
        return ExecResult::success(std::move(*hit));
      }
    }

    JsonArray checks;
    std::uint64_t failures = 0;
    for (const std::string& path : paths) {
      if (cancel.cancelled()) {
        return ExecResult::failure("timeout", "certify cancelled at \"" + path +
                                                  "\"");
      }
      JsonObject check;
      check.emplace_back("file", JsonValue(path));
      std::string error;
      const std::optional<corpus::CorpusEntry> entry =
          corpus::load_entry(path, error);
      if (!entry.has_value()) {
        check.emplace_back("ok", JsonValue(false));
        check.emplace_back("error", JsonValue(error));
        ++failures;
      } else if (!is_known_policy(entry->policy)) {
        check.emplace_back("ok", JsonValue(false));
        check.emplace_back("error",
                           JsonValue("unknown policy \"" + entry->policy + "\""));
        ++failures;
      } else {
        const Height replayed = corpus::replay_entry(*entry);
        const bool ok = replayed >= entry->peak;
        check.emplace_back("ok", JsonValue(ok));
        check.emplace_back("recorded", JsonValue(entry->peak));
        check.emplace_back("replayed", JsonValue(replayed));
        if (!ok) ++failures;
      }
      checks.emplace_back(JsonValue(std::move(check)));
    }

    JsonObject payload;
    payload.emplace_back("dir", JsonValue(request.file));
    payload.emplace_back("entries", JsonValue(checks.size()));
    payload.emplace_back("failures", JsonValue(failures));
    payload.emplace_back("ok", JsonValue(!checks.empty() && failures == 0));
    payload.emplace_back("checks", JsonValue(std::move(checks)));
    std::string text = write_json(JsonValue(std::move(payload)));
    if (request.use_cache) cache.insert(key.value(), text);
    return ExecResult::success(std::move(text));
  }

  [[nodiscard]] ExecResult execute_minimize(const JobRequest& request,
                                            bool& cached) {
    std::string error;
    const std::optional<corpus::CorpusEntry> entry =
        corpus::load_entry(request.file, error);
    if (!entry.has_value()) {
      return ExecResult::failure("not_found",
                                 "cannot load \"" + request.file + "\": " + error);
    }
    if (!is_known_policy(entry->policy)) {
      return ExecResult::failure(
          "bad_request", "entry names unknown policy \"" + entry->policy + "\"");
    }
    const Height replayed = corpus::replay_entry(*entry);
    if (replayed < entry->peak) {
      return ExecResult::failure(
          "bad_request",
          "entry does not reproduce its recorded peak (replayed " +
              std::to_string(replayed) + " < recorded " +
              std::to_string(entry->peak) + "); refusing to minimize");
    }
    // Path folded in for the same reason as replay: the payload echoes
    // "file", so byte-identical entries at different paths must not alias.
    Fnv1a key;
    key.str("minimize");
    key.str(request.file);
    key.u64(corpus::content_hash(*entry));
    key.u64(request.max_replays);
    if (request.use_cache) {
      if (std::optional<std::string> hit = cache.lookup(key.value())) {
        cached = true;
        return ExecResult::success(std::move(*hit));
      }
    }
    const Tree tree(entry->parents);
    const PolicyPtr policy = make_policy(entry->policy);
    corpus::MinimizeOptions minimize_options;
    minimize_options.max_replays = request.max_replays;
    const corpus::MinimizeResult result = corpus::minimize_schedule(
        tree, *policy, corpus::replay_options(*entry), entry->schedule,
        entry->peak, minimize_options);

    JsonObject payload;
    payload.emplace_back("file", JsonValue(request.file));
    payload.emplace_back("peak", JsonValue(result.peak));
    payload.emplace_back("initial_steps", JsonValue(result.initial_steps));
    payload.emplace_back("final_steps", JsonValue(result.final_steps));
    payload.emplace_back("replays", JsonValue(result.replays));
    std::string text = write_json(JsonValue(std::move(payload)));
    if (request.use_cache) cache.insert(key.value(), text);
    return ExecResult::success(std::move(text));
  }

  /// Runs one pool-scheduled job start to finish and responds.
  void run_job(const JobRequest& request,
               const std::function<void(std::string)>& respond) {
    const auto t0 = std::chrono::steady_clock::now();
    CancelToken cancel;
    cancel.set_timeout_ms(request.timeout_ms != 0 ? request.timeout_ms
                                                  : options.default_timeout_ms);

    bool cached = false;
    ExecResult result;
    switch (request.kind) {
      case JobKind::Run: {
        const std::optional<std::uint64_t> key = direct_cache_key(request);
        CVG_CHECK(key.has_value());
        if (request.use_cache) {
          if (std::optional<std::string> hit = cache.lookup(*key)) {
            cached = true;
            result = ExecResult::success(std::move(*hit));
            break;
          }
        }
        result = execute_run_cell(request.topologies.front(),
                                  request.policies.front(), request,
                                  request.seed, cancel);
        if (result.ok && request.use_cache) cache.insert(*key, result.payload);
        break;
      }
      case JobKind::Replay:
        result = execute_replay(request, cached);
        break;
      case JobKind::Certify:
        result = execute_certify(request, cancel, cached);
        break;
      case JobKind::Minimize:
        result = execute_minimize(request, cached);
        break;
      case JobKind::Sweep:  // planned into per-block jobs by submit_sweep
      case JobKind::Stats:
      case JobKind::Shutdown:
        result = ExecResult::failure(
            "internal", "op is never scheduled as a single pool job");
        break;
    }

    const std::uint64_t micros = now_micros(t0);
    count_response(result.ok, cached, micros);
    if (result.ok) {
      respond(format_ok_response(request.id, result.payload, cached, micros));
    } else {
      respond(format_error_response(request.id, result.error));
    }
  }
};

Service::Service(ServiceOptions options)
    : impl_(std::make_unique<Impl>(options)) {}

Service::~Service() { impl_->pool.shutdown(); }

void Service::submit_line(std::string_view line,
                          std::function<void(std::string)> respond) {
  {
    std::lock_guard<std::mutex> lock(impl_->stats_mutex);
    ++impl_->counters.received;
  }

  JobError error;
  std::optional<JobRequest> request = parse_request(line, error);
  if (!request.has_value()) {
    // The id, if the line had a readable one, is unknowable — echo empty.
    {
      std::lock_guard<std::mutex> lock(impl_->stats_mutex);
      ++impl_->counters.errors;
    }
    respond(format_error_response("", error));
    return;
  }

  // Observability and shutdown must not queue behind a saturated pool.
  if (request->kind == JobKind::Stats) {
    {
      std::lock_guard<std::mutex> lock(impl_->stats_mutex);
      ++impl_->counters.ok;
    }
    respond(format_ok_response(request->id, write_json(stats_json()),
                               /*cached=*/false, /*micros=*/0));
    return;
  }
  if (request->kind == JobKind::Shutdown) {
    begin_shutdown();
    {
      std::lock_guard<std::mutex> lock(impl_->stats_mutex);
      ++impl_->counters.ok;
    }
    respond(format_ok_response(request->id, "{\"shutting_down\":true}",
                               /*cached=*/false, /*micros=*/0));
    return;
  }

  // Admission gate: a draining service rejects new simulation work (the
  // pool itself keeps running so in-flight jobs can finish and answer).
  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(impl_->stats_mutex);
    if (impl_->shutting_down) {
      ++impl_->counters.errors;
      rejected = true;
    }
  }
  if (rejected) {
    respond(format_error_response(
        request->id, {"shutting_down", "service is draining; job rejected"}));
    return;
  }

  // Sweeps are planned here on the transport thread — cache hits resolve
  // inline and each uncached (topology, policy) lane block becomes its own
  // pool job — so the grid parallelizes across workers instead of
  // serializing inside one.
  if (request->kind == JobKind::Sweep) {
    impl_->submit_sweep(std::move(*request), std::move(respond));
    return;
  }

  // std::function must be copyable; share the request with the task.
  auto shared = std::make_shared<JobRequest>(std::move(*request));
  auto callback = std::make_shared<std::function<void(std::string)>>(
      std::move(respond));
  const WorkerPool::Submit submitted = impl_->pool.try_submit(
      [impl = impl_.get(), shared, callback] { impl->run_job(*shared, *callback); });
  if (submitted == WorkerPool::Submit::Accepted) return;

  {
    std::lock_guard<std::mutex> lock(impl_->stats_mutex);
    ++impl_->counters.errors;
  }
  if (submitted == WorkerPool::Submit::QueueFull) {
    (*callback)(format_error_response(
        shared->id,
        {"queue_full", "job queue is at capacity; retry after a response"}));
  } else {
    (*callback)(format_error_response(
        shared->id, {"shutting_down", "service is draining; job rejected"}));
  }
}

std::string Service::process_line(std::string_view line) {
  std::mutex mutex;
  std::condition_variable done;
  std::string response;
  bool ready = false;
  submit_line(line, [&](std::string text) {
    std::lock_guard<std::mutex> lock(mutex);
    response = std::move(text);
    ready = true;
    done.notify_one();
  });
  std::unique_lock<std::mutex> lock(mutex);
  done.wait(lock, [&] { return ready; });
  return response;
}

void Service::begin_shutdown() {
  // The pool keeps draining already-queued jobs; only admission stops.
  // WorkerPool's own shutdown() joins the workers, so admission is gated
  // here and the pool is only joined by the destructor.
  std::lock_guard<std::mutex> lock(impl_->stats_mutex);
  impl_->shutting_down = true;
}

void Service::drain() { impl_->pool.drain(); }

bool Service::shutting_down() const {
  std::lock_guard<std::mutex> lock(impl_->stats_mutex);
  return impl_->shutting_down;
}

ServiceStats Service::stats() const {
  std::lock_guard<std::mutex> lock(impl_->stats_mutex);
  ServiceStats out = impl_->counters;
  out.queue_depth = impl_->pool.queue_depth();
  return out;
}

CacheStats Service::cache_stats() const { return impl_->cache.stats(); }

JsonValue Service::stats_json() const {
  const ServiceStats service = stats();
  const CacheStats cache = cache_stats();

  JsonObject latency;
  {
    std::lock_guard<std::mutex> lock(impl_->stats_mutex);
    latency.emplace_back("count", JsonValue(impl_->latency.count()));
    latency.emplace_back("mean_micros", JsonValue(impl_->latency.mean()));
    latency.emplace_back("p50_micros", JsonValue(impl_->latency.quantile(0.5)));
    latency.emplace_back("p95_micros", JsonValue(impl_->latency.quantile(0.95)));
    latency.emplace_back("max_micros", JsonValue(impl_->latency.max()));
  }

  JsonObject cache_json;
  cache_json.emplace_back("hits", JsonValue(cache.hits));
  cache_json.emplace_back("spill_hits", JsonValue(cache.spill_hits));
  cache_json.emplace_back("misses", JsonValue(cache.misses));
  cache_json.emplace_back("insertions", JsonValue(cache.insertions));
  cache_json.emplace_back("evictions", JsonValue(cache.evictions));
  cache_json.emplace_back("entries", JsonValue(cache.entries));
  cache_json.emplace_back("bytes", JsonValue(cache.bytes));
  const std::uint64_t lookups = cache.hits + cache.spill_hits + cache.misses;
  cache_json.emplace_back(
      "hit_rate",
      JsonValue(lookups == 0
                    ? 0.0
                    : static_cast<double>(cache.hits + cache.spill_hits) /
                          static_cast<double>(lookups)));

  JsonObject out;
  out.emplace_back("received", JsonValue(service.received));
  out.emplace_back("ok", JsonValue(service.ok));
  out.emplace_back("errors", JsonValue(service.errors));
  out.emplace_back("cache_hits", JsonValue(service.cache_hits));
  out.emplace_back("queue_depth", JsonValue(service.queue_depth));
  out.emplace_back("shutting_down", JsonValue(shutting_down()));
  out.emplace_back("cache", JsonValue(std::move(cache_json)));
  out.emplace_back("latency", JsonValue(std::move(latency)));
  return JsonValue(std::move(out));
}

}  // namespace cvg::serve
