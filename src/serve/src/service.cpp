#include "cvg/serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "cvg/adversary/registry.hpp"
#include "cvg/corpus/format.hpp"
#include "cvg/corpus/minimize.hpp"
#include "cvg/corpus/replay.hpp"
#include "cvg/parallel/pool.hpp"
#include "cvg/policy/registry.hpp"
#include "cvg/topology/spec.hpp"
#include "cvg/util/check.hpp"
#include "cvg/util/fnv.hpp"

namespace cvg::serve {

namespace {

/// How often the simulation loops poll their CancelToken: cheap enough to
/// be invisible, frequent enough that timeouts land within milliseconds.
constexpr Step kCancelPollMask = 1023;

[[nodiscard]] std::uint64_t now_micros(std::chrono::steady_clock::time_point t0) {
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

/// Outcome of one executor: a serialized JSON payload or a structured error.
struct ExecResult {
  std::string payload;  ///< serialized JSON value; meaningful when ok
  JobError error;
  bool ok = false;

  static ExecResult success(std::string payload) {
    ExecResult r;
    r.payload = std::move(payload);
    r.ok = true;
    return r;
  }
  static ExecResult failure(std::string code, std::string message) {
    ExecResult r;
    r.error = {std::move(code), std::move(message)};
    return r;
  }
};

/// Executes one run cell (shared by `run` and each `sweep` cell).  The
/// request was validated, so registry lookups cannot fail; only the
/// cancellation deadline can.
[[nodiscard]] ExecResult execute_run_cell(const std::string& topology,
                                          const std::string& policy_name,
                                          const JobRequest& request,
                                          const CancelToken& cancel) {
  std::string spec_error;
  const auto spec = build::parse_topology_spec(topology, spec_error);
  CVG_CHECK(spec.has_value()) << "validated spec failed to re-parse";
  const Tree tree = build::make_tree(*spec);
  const PolicyPtr policy = make_policy(policy_name);

  SimOptions options;
  options.capacity = request.capacity;
  options.burstiness = request.burstiness;
  options.semantics = request.semantics;

  adversary::AdversaryContext context;
  context.tree = &tree;
  context.policy = policy.get();
  context.options = options;
  context.seed = request.seed;
  const AdversaryPtr adversary =
      adversary::make_adversary(request.adversary, context);
  adversary->on_simulation_start();

  Simulator sim(tree, *policy, options);
  std::vector<NodeId> injections;
  for (Step step = 0; step < request.steps; ++step) {
    if ((step & kCancelPollMask) == 0 && cancel.cancelled()) {
      return ExecResult::failure(
          "timeout", "run cancelled after " + std::to_string(step) + " steps");
    }
    injections.clear();
    adversary->plan(tree, sim.config(), step, options.capacity, injections);
    sim.step(injections);
  }

  JsonObject cell;
  cell.emplace_back("topology", JsonValue(topology));
  cell.emplace_back("policy", JsonValue(policy_name));
  cell.emplace_back("adversary", JsonValue(request.adversary));
  cell.emplace_back("steps", JsonValue(request.steps));
  cell.emplace_back("peak", JsonValue(sim.peak_height()));
  cell.emplace_back("injected", JsonValue(sim.injected()));
  cell.emplace_back("delivered", JsonValue(sim.delivered()));
  return ExecResult::success(write_json(JsonValue(std::move(cell))));
}

[[nodiscard]] JsonValue replay_payload(const std::string& file,
                                       const corpus::CorpusEntry& entry,
                                       Height replayed) {
  JsonObject payload;
  payload.emplace_back("file", JsonValue(file));
  payload.emplace_back("topology", JsonValue(entry.topology));
  payload.emplace_back("policy", JsonValue(entry.policy));
  payload.emplace_back("steps", JsonValue(entry.schedule.size()));
  payload.emplace_back("recorded", JsonValue(entry.peak));
  payload.emplace_back("replayed", JsonValue(replayed));
  payload.emplace_back("ok", JsonValue(replayed >= entry.peak));
  return JsonValue(std::move(payload));
}

/// FNV over a file's raw bytes, for certify cache keys: any byte change in
/// any corpus file changes the job hash.  nullopt when unreadable.
[[nodiscard]] std::optional<std::uint64_t> file_bytes_hash(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  Fnv1a hash;
  char buffer[4096];
  while (in.read(buffer, sizeof buffer) || in.gcount() > 0) {
    hash.bytes(buffer, static_cast<std::size_t>(in.gcount()));
    if (in.eof()) break;
  }
  return hash.value();
}

}  // namespace

struct Service::Impl {
  ServiceOptions options;
  WorkerPool pool;
  ResultCache cache;

  mutable std::mutex stats_mutex;
  ServiceStats counters;
  report::LatencyProfile latency;
  bool shutting_down = false;  ///< admission gate (guarded by stats_mutex)

  explicit Impl(ServiceOptions opts)
      : options(opts),
        pool(opts.threads != 0 ? opts.threads
                               : std::max(1u, std::thread::hardware_concurrency()),
             opts.queue_capacity),
        cache(opts.cache_entries, opts.cache_bytes, opts.spill_dir) {}

  void count_response(bool ok, bool cached, std::uint64_t micros) {
    std::lock_guard<std::mutex> lock(stats_mutex);
    if (ok) {
      ++counters.ok;
      if (cached) ++counters.cache_hits;
    } else {
      ++counters.errors;
    }
    latency.record(micros);
  }

  /// Cache key of a validated request, or nullopt when the job is not
  /// cacheable (stats/shutdown) or its key cannot be computed yet
  /// (replay/minimize/certify keys depend on file bytes and are computed by
  /// the executor, which loads the file anyway).
  [[nodiscard]] static std::optional<std::uint64_t> direct_cache_key(
      const JobRequest& request) {
    if (request.kind != JobKind::Run) return std::nullopt;
    return run_job_hash(request.topologies.front(), request.policies.front(),
                        request.adversary, request.steps, request.capacity,
                        request.burstiness, request.semantics, request.seed);
  }

  [[nodiscard]] ExecResult execute_sweep(const JobRequest& request,
                                         const CancelToken& cancel,
                                         std::uint64_t& cached_cells) {
    std::string cells = "[";
    bool first = true;
    for (const std::string& topology : request.topologies) {
      for (const std::string& policy : request.policies) {
        if (cancel.cancelled()) {
          return ExecResult::failure("timeout", "sweep cancelled mid-grid");
        }
        const std::uint64_t key = run_job_hash(
            topology, policy, request.adversary, request.steps,
            request.capacity, request.burstiness, request.semantics,
            request.seed);
        std::string cell;
        std::optional<std::string> hit =
            request.use_cache ? cache.lookup(key) : std::nullopt;
        if (hit.has_value()) {
          cell = std::move(*hit);
          ++cached_cells;
        } else {
          ExecResult result = execute_run_cell(topology, policy, request, cancel);
          if (!result.ok) return result;
          cell = std::move(result.payload);
          if (request.use_cache) cache.insert(key, cell);
        }
        if (!first) cells += ",";
        first = false;
        cells += cell;
      }
    }
    cells += "]";
    const std::uint64_t total = static_cast<std::uint64_t>(
        request.topologies.size() * request.policies.size());
    std::string payload = "{\"cells\":" + cells +
                          ",\"cell_count\":" + std::to_string(total) +
                          ",\"cached_cells\":" + std::to_string(cached_cells) +
                          "}";
    return ExecResult::success(std::move(payload));
  }

  [[nodiscard]] ExecResult execute_replay(const JobRequest& request,
                                          bool& cached) {
    std::string error;
    const std::optional<corpus::CorpusEntry> entry =
        corpus::load_entry(request.file, error);
    if (!entry.has_value()) {
      return ExecResult::failure("not_found",
                                 "cannot load \"" + request.file + "\": " + error);
    }
    if (!is_known_policy(entry->policy)) {
      return ExecResult::failure(
          "bad_request", "entry names unknown policy \"" + entry->policy + "\"");
    }
    // Fold the path in alongside the content hash: the cached payload embeds
    // the request's "file" field, so two paths holding byte-identical entries
    // must not share a cache entry (the second would echo the first's path).
    Fnv1a key;
    key.str("replay");
    key.str(request.file);
    key.u64(corpus::content_hash(*entry));
    if (request.use_cache) {
      if (std::optional<std::string> hit = cache.lookup(key.value())) {
        cached = true;
        return ExecResult::success(std::move(*hit));
      }
    }
    const Height replayed = corpus::replay_entry(*entry);
    std::string payload =
        write_json(replay_payload(request.file, *entry, replayed));
    if (request.use_cache) cache.insert(key.value(), payload);
    return ExecResult::success(std::move(payload));
  }

  [[nodiscard]] ExecResult execute_certify(const JobRequest& request,
                                           const CancelToken& cancel,
                                           bool& cached) {
    // Walk the directory with error codes throughout: the range-for form
    // throws from operator++ (e.g. an entry vanishing mid-scan), and a throw
    // on a pool thread would take down the whole service.
    std::vector<std::string> paths;
    std::error_code ec;
    std::filesystem::directory_iterator it(request.file, ec);
    if (ec) {
      return ExecResult::failure(
          "not_found", "cannot list \"" + request.file + "\": " + ec.message());
    }
    for (const std::filesystem::directory_iterator end; it != end;) {
      if (it->path().extension() == ".cvgc") paths.push_back(it->path().string());
      it.increment(ec);
      if (ec) {
        return ExecResult::failure(
            "not_found", "cannot list \"" + request.file + "\": " + ec.message());
      }
    }
    std::sort(paths.begin(), paths.end());

    // Content-addressed key over the raw bytes of every file in the corpus:
    // touch any file and the certify recomputes; touch nothing and it hits.
    Fnv1a key;
    key.str("certify");
    for (const std::string& path : paths) {
      key.str(path);
      const std::optional<std::uint64_t> bytes = file_bytes_hash(path);
      key.u64(bytes.value_or(0));
      key.u8(bytes.has_value() ? 1 : 0);
    }
    if (request.use_cache) {
      if (std::optional<std::string> hit = cache.lookup(key.value())) {
        cached = true;
        return ExecResult::success(std::move(*hit));
      }
    }

    JsonArray checks;
    std::uint64_t failures = 0;
    for (const std::string& path : paths) {
      if (cancel.cancelled()) {
        return ExecResult::failure("timeout", "certify cancelled at \"" + path +
                                                  "\"");
      }
      JsonObject check;
      check.emplace_back("file", JsonValue(path));
      std::string error;
      const std::optional<corpus::CorpusEntry> entry =
          corpus::load_entry(path, error);
      if (!entry.has_value()) {
        check.emplace_back("ok", JsonValue(false));
        check.emplace_back("error", JsonValue(error));
        ++failures;
      } else if (!is_known_policy(entry->policy)) {
        check.emplace_back("ok", JsonValue(false));
        check.emplace_back("error",
                           JsonValue("unknown policy \"" + entry->policy + "\""));
        ++failures;
      } else {
        const Height replayed = corpus::replay_entry(*entry);
        const bool ok = replayed >= entry->peak;
        check.emplace_back("ok", JsonValue(ok));
        check.emplace_back("recorded", JsonValue(entry->peak));
        check.emplace_back("replayed", JsonValue(replayed));
        if (!ok) ++failures;
      }
      checks.emplace_back(JsonValue(std::move(check)));
    }

    JsonObject payload;
    payload.emplace_back("dir", JsonValue(request.file));
    payload.emplace_back("entries", JsonValue(checks.size()));
    payload.emplace_back("failures", JsonValue(failures));
    payload.emplace_back("ok", JsonValue(!checks.empty() && failures == 0));
    payload.emplace_back("checks", JsonValue(std::move(checks)));
    std::string text = write_json(JsonValue(std::move(payload)));
    if (request.use_cache) cache.insert(key.value(), text);
    return ExecResult::success(std::move(text));
  }

  [[nodiscard]] ExecResult execute_minimize(const JobRequest& request,
                                            bool& cached) {
    std::string error;
    const std::optional<corpus::CorpusEntry> entry =
        corpus::load_entry(request.file, error);
    if (!entry.has_value()) {
      return ExecResult::failure("not_found",
                                 "cannot load \"" + request.file + "\": " + error);
    }
    if (!is_known_policy(entry->policy)) {
      return ExecResult::failure(
          "bad_request", "entry names unknown policy \"" + entry->policy + "\"");
    }
    const Height replayed = corpus::replay_entry(*entry);
    if (replayed < entry->peak) {
      return ExecResult::failure(
          "bad_request",
          "entry does not reproduce its recorded peak (replayed " +
              std::to_string(replayed) + " < recorded " +
              std::to_string(entry->peak) + "); refusing to minimize");
    }
    // Path folded in for the same reason as replay: the payload echoes
    // "file", so byte-identical entries at different paths must not alias.
    Fnv1a key;
    key.str("minimize");
    key.str(request.file);
    key.u64(corpus::content_hash(*entry));
    key.u64(request.max_replays);
    if (request.use_cache) {
      if (std::optional<std::string> hit = cache.lookup(key.value())) {
        cached = true;
        return ExecResult::success(std::move(*hit));
      }
    }
    const Tree tree(entry->parents);
    const PolicyPtr policy = make_policy(entry->policy);
    corpus::MinimizeOptions minimize_options;
    minimize_options.max_replays = request.max_replays;
    const corpus::MinimizeResult result = corpus::minimize_schedule(
        tree, *policy, corpus::replay_options(*entry), entry->schedule,
        entry->peak, minimize_options);

    JsonObject payload;
    payload.emplace_back("file", JsonValue(request.file));
    payload.emplace_back("peak", JsonValue(result.peak));
    payload.emplace_back("initial_steps", JsonValue(result.initial_steps));
    payload.emplace_back("final_steps", JsonValue(result.final_steps));
    payload.emplace_back("replays", JsonValue(result.replays));
    std::string text = write_json(JsonValue(std::move(payload)));
    if (request.use_cache) cache.insert(key.value(), text);
    return ExecResult::success(std::move(text));
  }

  /// Runs one pool-scheduled job start to finish and responds.
  void run_job(const JobRequest& request,
               const std::function<void(std::string)>& respond) {
    const auto t0 = std::chrono::steady_clock::now();
    CancelToken cancel;
    cancel.set_timeout_ms(request.timeout_ms != 0 ? request.timeout_ms
                                                  : options.default_timeout_ms);

    bool cached = false;
    ExecResult result;
    switch (request.kind) {
      case JobKind::Run: {
        const std::optional<std::uint64_t> key = direct_cache_key(request);
        CVG_CHECK(key.has_value());
        if (request.use_cache) {
          if (std::optional<std::string> hit = cache.lookup(*key)) {
            cached = true;
            result = ExecResult::success(std::move(*hit));
            break;
          }
        }
        result = execute_run_cell(request.topologies.front(),
                                  request.policies.front(), request, cancel);
        if (result.ok && request.use_cache) cache.insert(*key, result.payload);
        break;
      }
      case JobKind::Sweep: {
        std::uint64_t cached_cells = 0;
        result = execute_sweep(request, cancel, cached_cells);
        // A sweep counts as a cache hit when every cell came from the cache
        // (the whole grid skipped simulation).
        cached = result.ok && cached_cells == request.topologies.size() *
                                                  request.policies.size();
        break;
      }
      case JobKind::Replay:
        result = execute_replay(request, cached);
        break;
      case JobKind::Certify:
        result = execute_certify(request, cancel, cached);
        break;
      case JobKind::Minimize:
        result = execute_minimize(request, cached);
        break;
      case JobKind::Stats:
      case JobKind::Shutdown:
        result = ExecResult::failure("internal", "inline op reached the pool");
        break;
    }

    const std::uint64_t micros = now_micros(t0);
    count_response(result.ok, cached, micros);
    if (result.ok) {
      respond(format_ok_response(request.id, result.payload, cached, micros));
    } else {
      respond(format_error_response(request.id, result.error));
    }
  }
};

Service::Service(ServiceOptions options)
    : impl_(std::make_unique<Impl>(options)) {}

Service::~Service() { impl_->pool.shutdown(); }

void Service::submit_line(std::string_view line,
                          std::function<void(std::string)> respond) {
  {
    std::lock_guard<std::mutex> lock(impl_->stats_mutex);
    ++impl_->counters.received;
  }

  JobError error;
  std::optional<JobRequest> request = parse_request(line, error);
  if (!request.has_value()) {
    // The id, if the line had a readable one, is unknowable — echo empty.
    {
      std::lock_guard<std::mutex> lock(impl_->stats_mutex);
      ++impl_->counters.errors;
    }
    respond(format_error_response("", error));
    return;
  }

  // Observability and shutdown must not queue behind a saturated pool.
  if (request->kind == JobKind::Stats) {
    {
      std::lock_guard<std::mutex> lock(impl_->stats_mutex);
      ++impl_->counters.ok;
    }
    respond(format_ok_response(request->id, write_json(stats_json()),
                               /*cached=*/false, /*micros=*/0));
    return;
  }
  if (request->kind == JobKind::Shutdown) {
    begin_shutdown();
    {
      std::lock_guard<std::mutex> lock(impl_->stats_mutex);
      ++impl_->counters.ok;
    }
    respond(format_ok_response(request->id, "{\"shutting_down\":true}",
                               /*cached=*/false, /*micros=*/0));
    return;
  }

  // Admission gate: a draining service rejects new simulation work (the
  // pool itself keeps running so in-flight jobs can finish and answer).
  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(impl_->stats_mutex);
    if (impl_->shutting_down) {
      ++impl_->counters.errors;
      rejected = true;
    }
  }
  if (rejected) {
    respond(format_error_response(
        request->id, {"shutting_down", "service is draining; job rejected"}));
    return;
  }

  // std::function must be copyable; share the request with the task.
  auto shared = std::make_shared<JobRequest>(std::move(*request));
  auto callback = std::make_shared<std::function<void(std::string)>>(
      std::move(respond));
  const WorkerPool::Submit submitted = impl_->pool.try_submit(
      [impl = impl_.get(), shared, callback] { impl->run_job(*shared, *callback); });
  if (submitted == WorkerPool::Submit::Accepted) return;

  {
    std::lock_guard<std::mutex> lock(impl_->stats_mutex);
    ++impl_->counters.errors;
  }
  if (submitted == WorkerPool::Submit::QueueFull) {
    (*callback)(format_error_response(
        shared->id,
        {"queue_full", "job queue is at capacity; retry after a response"}));
  } else {
    (*callback)(format_error_response(
        shared->id, {"shutting_down", "service is draining; job rejected"}));
  }
}

std::string Service::process_line(std::string_view line) {
  std::mutex mutex;
  std::condition_variable done;
  std::string response;
  bool ready = false;
  submit_line(line, [&](std::string text) {
    std::lock_guard<std::mutex> lock(mutex);
    response = std::move(text);
    ready = true;
    done.notify_one();
  });
  std::unique_lock<std::mutex> lock(mutex);
  done.wait(lock, [&] { return ready; });
  return response;
}

void Service::begin_shutdown() {
  // The pool keeps draining already-queued jobs; only admission stops.
  // WorkerPool's own shutdown() joins the workers, so admission is gated
  // here and the pool is only joined by the destructor.
  std::lock_guard<std::mutex> lock(impl_->stats_mutex);
  impl_->shutting_down = true;
}

void Service::drain() { impl_->pool.drain(); }

bool Service::shutting_down() const {
  std::lock_guard<std::mutex> lock(impl_->stats_mutex);
  return impl_->shutting_down;
}

ServiceStats Service::stats() const {
  std::lock_guard<std::mutex> lock(impl_->stats_mutex);
  ServiceStats out = impl_->counters;
  out.queue_depth = impl_->pool.queue_depth();
  return out;
}

CacheStats Service::cache_stats() const { return impl_->cache.stats(); }

JsonValue Service::stats_json() const {
  const ServiceStats service = stats();
  const CacheStats cache = cache_stats();

  JsonObject latency;
  {
    std::lock_guard<std::mutex> lock(impl_->stats_mutex);
    latency.emplace_back("count", JsonValue(impl_->latency.count()));
    latency.emplace_back("mean_micros", JsonValue(impl_->latency.mean()));
    latency.emplace_back("p50_micros", JsonValue(impl_->latency.quantile(0.5)));
    latency.emplace_back("p95_micros", JsonValue(impl_->latency.quantile(0.95)));
    latency.emplace_back("max_micros", JsonValue(impl_->latency.max()));
  }

  JsonObject cache_json;
  cache_json.emplace_back("hits", JsonValue(cache.hits));
  cache_json.emplace_back("spill_hits", JsonValue(cache.spill_hits));
  cache_json.emplace_back("misses", JsonValue(cache.misses));
  cache_json.emplace_back("insertions", JsonValue(cache.insertions));
  cache_json.emplace_back("evictions", JsonValue(cache.evictions));
  cache_json.emplace_back("entries", JsonValue(cache.entries));
  cache_json.emplace_back("bytes", JsonValue(cache.bytes));
  const std::uint64_t lookups = cache.hits + cache.spill_hits + cache.misses;
  cache_json.emplace_back(
      "hit_rate",
      JsonValue(lookups == 0
                    ? 0.0
                    : static_cast<double>(cache.hits + cache.spill_hits) /
                          static_cast<double>(lookups)));

  JsonObject out;
  out.emplace_back("received", JsonValue(service.received));
  out.emplace_back("ok", JsonValue(service.ok));
  out.emplace_back("errors", JsonValue(service.errors));
  out.emplace_back("cache_hits", JsonValue(service.cache_hits));
  out.emplace_back("queue_depth", JsonValue(service.queue_depth));
  out.emplace_back("shutting_down", JsonValue(shutting_down()));
  out.emplace_back("cache", JsonValue(std::move(cache_json)));
  out.emplace_back("latency", JsonValue(std::move(latency)));
  return JsonValue(std::move(out));
}

}  // namespace cvg::serve
