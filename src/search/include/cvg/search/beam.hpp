#pragma once

/// \file beam.hpp
/// Beam-search adversary exploration for instances too large to exhaust.
///
/// Maintains the `width` most promising configurations per generation
/// (scored by max height, then total buffered packets), expanding each by
/// every possible injection.  A middle ground between the exact search
/// (≤ 12 nodes) and the hand-crafted adversaries: it lower-bounds the true
/// worst case and in practice recovers the known growth shapes (Θ(n) for
/// Greedy, Θ(√n) for Downhill-or-Flat, Θ(log n) for Odd-Even).
///
/// With `keep_schedule` the search additionally records, for every kept
/// state, which predecessor and injection produced it, and reconstructs the
/// injection sequence realizing the best peak — this is how the corpus
/// fuzzer turns a beam run into a replayable, storable trace.  A warm start
/// from a non-empty configuration (`initial`) lets the fuzzer resume the
/// search from the end state of an existing corpus entry.

#include <optional>

#include "cvg/core/config.hpp"
#include "cvg/policy/policy.hpp"
#include "cvg/sim/simulator.hpp"
#include "cvg/topology/tree.hpp"

namespace cvg::search {

struct BeamOptions {
  std::size_t width = 64;     ///< configurations kept per generation
  Step generations = 1000;    ///< search horizon in steps
  bool keep_schedule = false; ///< record predecessors, fill BeamResult::schedule
  /// Start state; empty configuration when not set.  The peak reported is
  /// over the *explored* states (the initial heights are not counted).
  std::optional<Configuration> initial;
};

struct BeamResult {
  Height peak = 0;            ///< best height found (a lower bound)
  Step peak_step = 0;         ///< generation at which it was reached
  /// With `keep_schedule`: per-step injections realizing `peak` from the
  /// start state (`kNoNode` = idle step), exactly `peak_step` entries.
  std::vector<NodeId> schedule;
};

/// Runs the beam search from the start state.  Requires a deterministic,
/// non-centralized policy and capacity 1.
[[nodiscard]] BeamResult beam_worst_case(const Tree& tree, const Policy& policy,
                                         SimOptions sim_options,
                                         BeamOptions options = {});

}  // namespace cvg::search
