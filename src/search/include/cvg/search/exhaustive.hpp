#pragma once

/// \file exhaustive.hpp
/// Exact worst-case buffer sizes by exhaustive adversary search.
///
/// Against a *deterministic* policy, the adversary owns every degree of
/// freedom, so the worst case over all rate-1 adversaries is a reachability
/// question: BFS over the configuration graph whose edges are "inject at t
/// (or stay idle), then let the policy forward".  For small instances this
/// computes the *exact* worst-case peak height — independent of the quality
/// of any hand-crafted adversary — which `bench_exhaustive_small_n` tabulates
/// against the paper's bounds, and from which an optimal injection schedule
/// can be replayed (e.g. to seed golden tests).

#include <cstdint>
#include <vector>

#include "cvg/policy/policy.hpp"
#include "cvg/sim/simulator.hpp"
#include "cvg/topology/tree.hpp"

namespace cvg::search {

/// Options bounding the search.
struct SearchOptions {
  /// States whose max height exceeds this are not expanded (they count as
  /// "cap reached").  Needed because weak policies (FIE, Greedy) have
  /// unbounded or Θ(n) reachable heights.  At most 28 (5-bit state packing).
  Height height_cap = 16;

  /// Abort knob: stop expanding after this many distinct states.
  std::size_t max_states = 8'000'000;

  /// Record predecessors so an optimal injection schedule can be extracted
  /// (costs one extra hash map).
  bool keep_schedule = false;
};

/// Result of an exhaustive search.
struct SearchResult {
  /// Largest height reachable (≤ height_cap; exact iff !capped).
  Height peak = 0;

  /// True when some state hit the cap (the true worst case is ≥ peak).
  bool capped = false;

  /// True when max_states was exhausted before the frontier emptied
  /// (the true worst case may exceed `peak`).
  bool truncated = false;

  /// Distinct configurations visited.
  std::size_t states = 0;

  /// Steps of an optimal schedule reaching `peak` (when keep_schedule):
  /// entry s is the node injected at step s, or kNoNode for an idle step.
  std::vector<NodeId> schedule;
};

/// Exhaustive BFS from the empty configuration.  Requires a deterministic,
/// non-centralized policy, capacity 1, ≤ 12 non-sink nodes and
/// height_cap ≤ 30 (states are packed into 64-bit keys).
[[nodiscard]] SearchResult exhaustive_worst_case(const Tree& tree,
                                                 const Policy& policy,
                                                 SimOptions sim_options,
                                                 SearchOptions options = {});

}  // namespace cvg::search
