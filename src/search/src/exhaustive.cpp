#include "cvg/search/exhaustive.hpp"

#include <algorithm>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "cvg/mem/ring_queue.hpp"
#include "cvg/sim/lane_engine.hpp"
#include "cvg/util/check.hpp"

namespace cvg::search {

namespace {

constexpr int kBitsPerNode = 5;  // heights 0..30 plus the cap sentinel

std::uint64_t encode(const Configuration& config) {
  std::uint64_t key = 0;
  for (NodeId v = 1; v < config.node_count(); ++v) {
    key = (key << kBitsPerNode) | static_cast<std::uint64_t>(config.height(v));
  }
  return key;
}

// Overwrites every non-sink height of `out` (the sink is always 0), so one
// scratch Configuration can be reused across all visited states — the BFS
// performs no per-state allocation.
void decode_into(std::uint64_t key, Configuration& out) {
  for (NodeId v = static_cast<NodeId>(out.node_count() - 1); v >= 1; --v) {
    out.set_height(v, static_cast<Height>(key & ((1u << kBitsPerNode) - 1)));
    key >>= kBitsPerNode;
  }
}

}  // namespace

SearchResult exhaustive_worst_case(const Tree& tree, const Policy& policy,
                                   SimOptions sim_options,
                                   SearchOptions options) {
  const std::size_t n = tree.node_count();
  CVG_CHECK(n >= 2 && n - 1 <= 64 / kBitsPerNode)
      << "exhaustive search supports at most " << 64 / kBitsPerNode
      << " non-sink nodes";
  // One expanded step can raise a height by 2, and 5-bit packing holds
  // values up to 31, so the cap must leave that headroom.
  CVG_CHECK(options.height_cap <= 28);
  CVG_CHECK(sim_options.capacity == 1)
      << "exhaustive search models the rate-1 adversary";
  CVG_CHECK(!policy.is_centralized());

  Simulator sim(tree, policy, sim_options);

  // Lane-batched expansion: the n injection choices of a popped state (idle
  // plus each site) advance as one SoA lane block — one vectorized step pass
  // instead of n scalar steps.  The block is reused across states
  // (`set_config_all_lanes` reseeds it); per-choice peaks read the resulting
  // lane configurations, so the block's running peak is never consulted.
  std::optional<LaneSimulator> batch;
  std::vector<NodeId> sites(n);
  std::vector<std::span<const NodeId>> spans(n);
  if (LaneSimulator::supported(policy, sim_options)) {
    batch.emplace(tree, policy, sim_options, n);
    for (NodeId t = 1; t < n; ++t) {
      sites[t] = t;
      spans[t] = std::span<const NodeId>(&sites[t], 1);
    }
    spans[0] = {};  // lane 0 expands the idle step
  }

  // Predecessor info for schedule extraction: state → (previous state,
  // injection that led here).
  struct Pred {
    std::uint64_t prev;
    NodeId injected;
  };
  std::unordered_map<std::uint64_t, Pred> pred;

  std::unordered_set<std::uint64_t> seen;
  // Flat power-of-two ring rather than std::deque: a deque allocates and
  // frees segment blocks for as long as the BFS runs, while the ring's
  // backing block doubles to the frontier's high-water mark and is then
  // reused across all remaining depths.
  mem::RingQueue<std::uint64_t> frontier;
  const std::uint64_t start = encode(Configuration(n));
  seen.insert(start);
  frontier.push_back(start);

  SearchResult result;
  std::uint64_t best_state = start;
  Configuration config(n);     // scratch, refilled in place for every state
  Configuration lane_next(n);  // per-choice gather target, reused likewise

  while (!frontier.empty()) {
    if (seen.size() >= options.max_states) {
      result.truncated = true;
      break;
    }
    const std::uint64_t key = frontier.front();
    frontier.pop_front();
    decode_into(key, config);

    if (batch) {
      batch->set_config_all_lanes(config);
      batch->step_lanes(spans);
    }

    // Idle (kNoNode) plus each possible injection site — lane t of the
    // batch, or a scalar (set_config, step) pair in the fallback.
    for (NodeId t = 0; t < n; ++t) {
      const NodeId injection = (t == 0) ? kNoNode : t;
      if (batch) {
        batch->lane_config_into(t, lane_next);
      } else {
        sim.set_config(config);
        sim.step_inject(injection);
      }
      const Configuration& next = batch ? lane_next : sim.config();
      const Height peak = next.max_height();

      if (peak > result.peak) {
        result.peak = peak;
        best_state = encode(next);
        if (options.keep_schedule) {
          // Best state may be unseen yet; make sure its predecessor exists.
          pred.try_emplace(best_state, Pred{key, injection});
        }
      }
      if (peak > options.height_cap) {
        result.capped = true;
        continue;  // do not expand beyond the cap
      }
      const std::uint64_t next_key = encode(next);
      if (seen.insert(next_key).second) {
        frontier.push_back(next_key);
        if (options.keep_schedule) {
          pred.try_emplace(next_key, Pred{key, injection});
        }
      }
    }
  }
  result.states = seen.size();

  if (options.keep_schedule && best_state != start) {
    std::vector<NodeId> reversed;
    std::uint64_t cur = best_state;
    while (cur != start) {
      const auto it = pred.find(cur);
      CVG_CHECK(it != pred.end());
      reversed.push_back(it->second.injected);
      cur = it->second.prev;
    }
    result.schedule.assign(reversed.rbegin(), reversed.rend());
  }
  return result;
}

}  // namespace cvg::search
