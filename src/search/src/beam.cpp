#include "cvg/search/beam.hpp"

#include <algorithm>

#include "cvg/util/check.hpp"

namespace cvg::search {

BeamResult beam_worst_case(const Tree& tree, const Policy& policy,
                           SimOptions sim_options, BeamOptions options) {
  CVG_CHECK(sim_options.capacity == 1);
  CVG_CHECK(!policy.is_centralized());
  CVG_CHECK(options.width >= 1);

  struct Scored {
    Configuration config;
    Height peak;
    std::uint64_t packets;
    std::uint64_t hash;
  };
  const auto hash_of = [](const Configuration& config) {
    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a over the heights
    for (const Height value : config.heights()) {
      h ^= static_cast<std::uint64_t>(value);
      h *= 1099511628211ULL;
    }
    return h;
  };

  Simulator sim(tree, policy, sim_options);
  std::vector<Scored> beam;
  beam.push_back({Configuration(tree.node_count()), 0, 0,
                  hash_of(Configuration(tree.node_count()))});

  BeamResult result;
  std::vector<Scored> next_gen;
  for (Step gen = 0; gen < options.generations; ++gen) {
    next_gen.clear();
    for (const Scored& state : beam) {
      for (NodeId t = 0; t < tree.node_count(); ++t) {
        sim.set_config(state.config);
        sim.step_inject(t == 0 ? kNoNode : t);
        const Configuration& next = sim.config();
        const Height peak = next.max_height();
        if (peak > result.peak) {
          result.peak = peak;
          result.peak_step = gen + 1;
        }
        next_gen.push_back({next, peak, next.total_packets(), hash_of(next)});
      }
    }
    // Keep the best `width` states, deduplicated (equal configurations sort
    // adjacently: same peak, packets and hash).
    std::sort(next_gen.begin(), next_gen.end(),
              [](const Scored& a, const Scored& b) {
                if (a.peak != b.peak) return a.peak > b.peak;
                if (a.packets != b.packets) return a.packets > b.packets;
                return a.hash < b.hash;
              });
    next_gen.erase(std::unique(next_gen.begin(), next_gen.end(),
                               [](const Scored& a, const Scored& b) {
                                 return a.config == b.config;
                               }),
                   next_gen.end());
    if (next_gen.size() > options.width) next_gen.resize(options.width);
    beam.swap(next_gen);
  }
  return result;
}

}  // namespace cvg::search
