#include "cvg/search/beam.hpp"

#include <algorithm>
#include <utility>

#include "cvg/util/check.hpp"

namespace cvg::search {

BeamResult beam_worst_case(const Tree& tree, const Policy& policy,
                           SimOptions sim_options, BeamOptions options) {
  CVG_CHECK(sim_options.capacity == 1);
  CVG_CHECK(!policy.is_centralized());
  CVG_CHECK(options.width >= 1);

  struct Scored {
    Configuration config;
    Height peak;
    std::uint64_t packets;
    std::uint64_t hash;
    std::size_t parent;  ///< index into the previous kept generation
    NodeId injected;     ///< injection that produced this state
  };
  const auto hash_of = [](const Configuration& config) {
    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a over the heights
    for (const Height value : config.heights()) {
      h ^= static_cast<std::uint64_t>(value);
      h *= 1099511628211ULL;
    }
    return h;
  };

  Configuration start = options.initial.has_value()
                            ? *options.initial
                            : Configuration(tree.node_count());
  CVG_CHECK(start.heights().size() == tree.node_count())
      << "beam initial configuration does not match the tree";

  Simulator sim(tree, policy, sim_options);
  // Pooled candidate storage: `beam_store`/`next_store` hold every slot ever
  // created and only their live prefixes (`beam_count`/`next_count`) are
  // meaningful.  Slots are refilled by copy-assignment (which reuses the
  // Configuration's height buffer) and the two stores swap roles each
  // generation, so after the first full generation the expansion loop
  // performs no per-candidate allocation.
  std::vector<Scored> beam_store;
  const std::uint64_t start_hash = hash_of(start);
  beam_store.push_back({std::move(start), 0, 0, start_hash, 0, kNoNode});
  std::size_t beam_count = 1;

  // history[k] describes the kept states after k+1 steps: for each one, the
  // index of its predecessor in the previous kept generation and the
  // injection that produced it.  Only populated under `keep_schedule`.
  std::vector<std::vector<std::pair<std::size_t, NodeId>>> history;

  BeamResult result;
  std::vector<Scored> next_store;
  for (Step gen = 0; gen < options.generations; ++gen) {
    std::size_t next_count = 0;
    for (std::size_t si = 0; si < beam_count; ++si) {
      const Scored& state = beam_store[si];
      for (NodeId t = 0; t < tree.node_count(); ++t) {
        const NodeId injected = (t == 0 ? kNoNode : t);
        sim.set_config(state.config);
        sim.step_inject(injected);
        const Configuration& next = sim.config();
        const Height peak = next.max_height();
        if (peak > result.peak) {
          result.peak = peak;
          result.peak_step = gen + 1;
          if (options.keep_schedule) {
            // Reconstruct the injection path: the new step, then the chain
            // of (parent, injected) records back to the start state.
            result.schedule.assign(static_cast<std::size_t>(gen) + 1, kNoNode);
            result.schedule[static_cast<std::size_t>(gen)] = injected;
            std::size_t idx = si;
            for (std::size_t k = static_cast<std::size_t>(gen); k >= 1; --k) {
              const auto& link = history[k - 1][idx];
              result.schedule[k - 1] = link.second;
              idx = link.first;
            }
          }
        }
        if (next_count == next_store.size()) {
          next_store.push_back(
              {next, peak, next.total_packets(), hash_of(next), si, injected});
        } else {
          Scored& slot = next_store[next_count];
          slot.config = next;  // copy-assign: reuses the height buffer
          slot.peak = peak;
          slot.packets = next.total_packets();
          slot.hash = hash_of(next);
          slot.parent = si;
          slot.injected = injected;
        }
        ++next_count;
      }
    }
    // Keep the best `width` states, deduplicated (equal configurations sort
    // adjacently: same peak, packets and hash).  Sort and compact only the
    // live prefix; dead slots beyond it keep their buffers for reuse.
    std::sort(next_store.begin(),
              next_store.begin() + static_cast<std::ptrdiff_t>(next_count),
              [](const Scored& a, const Scored& b) {
                if (a.peak != b.peak) return a.peak > b.peak;
                if (a.packets != b.packets) return a.packets > b.packets;
                return a.hash < b.hash;
              });
    std::size_t unique_count = 0;
    for (std::size_t i = 0; i < next_count; ++i) {
      if (unique_count > 0 &&
          next_store[i].config == next_store[unique_count - 1].config) {
        continue;
      }
      if (i != unique_count) {
        std::swap(next_store[unique_count], next_store[i]);
      }
      ++unique_count;
    }
    const std::size_t kept_count = std::min(unique_count, options.width);
    if (options.keep_schedule) {
      std::vector<std::pair<std::size_t, NodeId>> kept;
      kept.reserve(kept_count);
      for (std::size_t i = 0; i < kept_count; ++i) {
        kept.emplace_back(next_store[i].parent, next_store[i].injected);
      }
      history.push_back(std::move(kept));
    }
    beam_store.swap(next_store);
    beam_count = kept_count;
  }
  return result;
}

}  // namespace cvg::search
