#include "cvg/search/beam.hpp"

#include <algorithm>
#include <utility>

#include "cvg/util/check.hpp"

namespace cvg::search {

BeamResult beam_worst_case(const Tree& tree, const Policy& policy,
                           SimOptions sim_options, BeamOptions options) {
  CVG_CHECK(sim_options.capacity == 1);
  CVG_CHECK(!policy.is_centralized());
  CVG_CHECK(options.width >= 1);

  struct Scored {
    Configuration config;
    Height peak;
    std::uint64_t packets;
    std::uint64_t hash;
    std::size_t parent;  ///< index into the previous kept generation
    NodeId injected;     ///< injection that produced this state
  };
  const auto hash_of = [](const Configuration& config) {
    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a over the heights
    for (const Height value : config.heights()) {
      h ^= static_cast<std::uint64_t>(value);
      h *= 1099511628211ULL;
    }
    return h;
  };

  Configuration start = options.initial.has_value()
                            ? *options.initial
                            : Configuration(tree.node_count());
  CVG_CHECK(start.heights().size() == tree.node_count())
      << "beam initial configuration does not match the tree";

  Simulator sim(tree, policy, sim_options);
  std::vector<Scored> beam;
  const std::uint64_t start_hash = hash_of(start);
  beam.push_back({std::move(start), 0, 0, start_hash, 0, kNoNode});

  // history[k] describes the kept states after k+1 steps: for each one, the
  // index of its predecessor in the previous kept generation and the
  // injection that produced it.  Only populated under `keep_schedule`.
  std::vector<std::vector<std::pair<std::size_t, NodeId>>> history;

  BeamResult result;
  std::vector<Scored> next_gen;
  for (Step gen = 0; gen < options.generations; ++gen) {
    next_gen.clear();
    for (std::size_t si = 0; si < beam.size(); ++si) {
      const Scored& state = beam[si];
      for (NodeId t = 0; t < tree.node_count(); ++t) {
        const NodeId injected = (t == 0 ? kNoNode : t);
        sim.set_config(state.config);
        sim.step_inject(injected);
        const Configuration& next = sim.config();
        const Height peak = next.max_height();
        if (peak > result.peak) {
          result.peak = peak;
          result.peak_step = gen + 1;
          if (options.keep_schedule) {
            // Reconstruct the injection path: the new step, then the chain
            // of (parent, injected) records back to the start state.
            result.schedule.assign(static_cast<std::size_t>(gen) + 1, kNoNode);
            result.schedule[static_cast<std::size_t>(gen)] = injected;
            std::size_t idx = si;
            for (std::size_t k = static_cast<std::size_t>(gen); k >= 1; --k) {
              const auto& link = history[k - 1][idx];
              result.schedule[k - 1] = link.second;
              idx = link.first;
            }
          }
        }
        next_gen.push_back(
            {next, peak, next.total_packets(), hash_of(next), si, injected});
      }
    }
    // Keep the best `width` states, deduplicated (equal configurations sort
    // adjacently: same peak, packets and hash).
    std::sort(next_gen.begin(), next_gen.end(),
              [](const Scored& a, const Scored& b) {
                if (a.peak != b.peak) return a.peak > b.peak;
                if (a.packets != b.packets) return a.packets > b.packets;
                return a.hash < b.hash;
              });
    next_gen.erase(std::unique(next_gen.begin(), next_gen.end(),
                               [](const Scored& a, const Scored& b) {
                                 return a.config == b.config;
                               }),
                   next_gen.end());
    if (next_gen.size() > options.width) next_gen.resize(options.width);
    if (options.keep_schedule) {
      std::vector<std::pair<std::size_t, NodeId>> kept;
      kept.reserve(next_gen.size());
      for (const Scored& state : next_gen) {
        kept.emplace_back(state.parent, state.injected);
      }
      history.push_back(std::move(kept));
    }
    beam.swap(next_gen);
  }
  return result;
}

}  // namespace cvg::search
