file(REMOVE_RECURSE
  "CMakeFiles/cvg_search.dir/src/beam.cpp.o"
  "CMakeFiles/cvg_search.dir/src/beam.cpp.o.d"
  "CMakeFiles/cvg_search.dir/src/exhaustive.cpp.o"
  "CMakeFiles/cvg_search.dir/src/exhaustive.cpp.o.d"
  "libcvg_search.a"
  "libcvg_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvg_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
