# Empty compiler generated dependencies file for cvg_search.
# This may be replaced when dependencies are built.
