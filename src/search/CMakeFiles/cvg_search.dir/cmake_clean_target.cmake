file(REMOVE_RECURSE
  "libcvg_search.a"
)
