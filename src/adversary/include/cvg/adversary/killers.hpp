#pragma once

/// \file killers.hpp
/// Constructive worst-case strategies against specific policies, taken from
/// the lower-bound discussions in the paper and its references.

#include "cvg/sim/adversary.hpp"

namespace cvg::adversary {

/// The two-phase strategy behind Greedy's Θ(n) lower bound [23] and
/// Downhill-or-Flat's Ω(√n) (Thm 4.1 direction):
///
///  * phase 1 ("train"): inject at the deepest node for `train_length`
///    steps.  A work-conserving policy spreads these into a train marching
///    towards the sink at speed 1.
///  * phase 2 ("slam"): inject at the sink's child while the train arrives.
///    That node receives 1/step from behind plus 1/step from the adversary
///    and can only shed 1/step — Greedy piles up Θ(train_length); DoF's
///    flat-forwarding rule turns the pile into a ramp of height Θ(√train).
///
/// Against Odd-Even the same schedule caps out at O(log n): the parity rule
/// halts the arriving stream as soon as the pile forms.
class TrainAndSlam final : public Adversary {
 public:
  /// `train_length` = number of phase-1 steps; 0 means "depth of the tree".
  explicit TrainAndSlam(const Tree& tree, Step train_length = 0);

  [[nodiscard]] std::string name() const override { return "train-and-slam"; }
  void plan(const Tree& tree, const Configuration& config, Step step,
            Capacity capacity, std::vector<NodeId>& out) override;

  /// Phase switching is purely step-indexed; sites are fixed at build time.
  [[nodiscard]] bool oblivious() const override { return true; }

  [[nodiscard]] Step train_length() const noexcept { return train_length_; }
  [[nodiscard]] NodeId train_site() const noexcept { return train_site_; }
  [[nodiscard]] NodeId slam_site() const noexcept { return slam_site_; }

 private:
  Step train_length_;
  NodeId train_site_;
  NodeId slam_site_;
};

/// Alternates the injection site between the deepest node and the sink's
/// child every `period` steps.  Stresses exactly the two contradictory
/// requirements §4 identifies (drain fast when fed from the left, hold
/// ground when fed at the right); Odd-Even's parity mechanism is designed to
/// adapt to this oscillation.
class Alternator final : public Adversary {
 public:
  Alternator(const Tree& tree, Step period);

  [[nodiscard]] std::string name() const override { return "alternator"; }
  void plan(const Tree& tree, const Configuration& config, Step step,
            Capacity capacity, std::vector<NodeId>& out) override;
  [[nodiscard]] bool oblivious() const override { return true; }

 private:
  Step period_;
  NodeId deep_site_;
  NodeId near_site_;
};

/// Always injects at the node currently holding the tallest buffer (ties:
/// deepest, then smallest id) — a myopic "kick them while they're down"
/// heuristic that is surprisingly effective against gradient policies.
class PileOn final : public Adversary {
 public:
  [[nodiscard]] std::string name() const override { return "pile-on"; }
  void plan(const Tree& tree, const Configuration& config, Step step,
            Capacity capacity, std::vector<NodeId>& out) override;
};

/// Injects just *behind* the current tallest buffer (at one of its children,
/// the taller one), feeding the region that is already congested — the
/// pattern the Thm 3.1 adversary uses within a block, packaged as a simple
/// stateless heuristic.
class FeedTheBlock final : public Adversary {
 public:
  [[nodiscard]] std::string name() const override { return "feed-the-block"; }
  void plan(const Tree& tree, const Configuration& config, Step step,
            Capacity capacity, std::vector<NodeId>& out) override;
};

}  // namespace cvg::adversary
