#pragma once

/// \file simple.hpp
/// Elementary injection strategies: fixed-site, rotating, random, and trace
/// replay.  These are the building blocks of the experiment suites and the
/// background load of the examples.

#include <vector>

#include "cvg/sim/adversary.hpp"
#include "cvg/util/rng.hpp"

namespace cvg::adversary {

/// Node selectors used by `FixedNode`.
enum class Site : std::uint8_t {
  Deepest,    ///< a node of maximum depth ("leftmost" on a path)
  SinkChild,  ///< the first child of the sink (node nearest the sink)
  Middle,     ///< a node at half the maximum depth
};

/// Resolves a `Site` to a concrete node of `tree` (deterministically).
[[nodiscard]] NodeId resolve_site(const Tree& tree, Site site);

/// Injects `capacity` packets at one fixed node every step.
/// Against `Downhill` at the deepest node this reproduces the Ω(n) staircase
/// of [21]; against `FieLocal` it demonstrates unbounded growth.
class FixedNode final : public Adversary {
 public:
  explicit FixedNode(NodeId node) : node_(node) {}
  FixedNode(const Tree& tree, Site site) : node_(resolve_site(tree, site)) {}

  [[nodiscard]] std::string name() const override {
    return "fixed-" + std::to_string(node_);
  }
  void plan(const Tree& tree, const Configuration& config, Step step,
            Capacity capacity, std::vector<NodeId>& out) override;

  [[nodiscard]] bool oblivious() const override { return true; }

  [[nodiscard]] NodeId node() const noexcept { return node_; }

 private:
  NodeId node_;
};

/// Cycles its full rate through an explicit list of target nodes, one step
/// per target (e.g. all leaves of a sensor tree).
class RoundRobin final : public Adversary {
 public:
  explicit RoundRobin(std::vector<NodeId> targets);

  [[nodiscard]] std::string name() const override { return "round-robin"; }
  void plan(const Tree& tree, const Configuration& config, Step step,
            Capacity capacity, std::vector<NodeId>& out) override;
  void on_simulation_start() override { next_ = 0; }
  [[nodiscard]] bool oblivious() const override { return true; }

 private:
  std::vector<NodeId> targets_;
  std::size_t next_ = 0;
};

/// Injects at independently uniform random non-sink nodes; each of the
/// `capacity` packets stays home with probability `idle_probability`.
class RandomUniform final : public Adversary {
 public:
  explicit RandomUniform(std::uint64_t seed, double idle_probability = 0.0);

  [[nodiscard]] std::string name() const override { return "random-uniform"; }
  void plan(const Tree& tree, const Configuration& config, Step step,
            Capacity capacity, std::vector<NodeId>& out) override;
  void on_simulation_start() override { rng_ = Xoshiro256StarStar(seed_); }
  /// Random but oblivious: the stream depends on the seed, never on heights.
  [[nodiscard]] bool oblivious() const override { return true; }

 private:
  std::uint64_t seed_;
  double idle_probability_;
  Xoshiro256StarStar rng_;
};

/// Injects at uniformly random leaves — the natural sensor-network workload
/// (data originates at sensing nodes).
class RandomLeaf final : public Adversary {
 public:
  explicit RandomLeaf(std::uint64_t seed);

  [[nodiscard]] std::string name() const override { return "random-leaf"; }
  void plan(const Tree& tree, const Configuration& config, Step step,
            Capacity capacity, std::vector<NodeId>& out) override;
  void on_simulation_start() override;
  [[nodiscard]] bool oblivious() const override { return true; }

 private:
  std::uint64_t seed_;
  Xoshiro256StarStar rng_;
  std::vector<NodeId> leaves_;  // lazily gathered per tree
  const Tree* cached_tree_ = nullptr;
};

/// Replays a fixed schedule: `schedule[s]` lists the injections of step s
/// (steps beyond the schedule are idle).  Produced by the exhaustive search
/// to materialize an optimal adversary, and used in golden tests.
class Trace final : public Adversary {
 public:
  explicit Trace(std::vector<std::vector<NodeId>> schedule)
      : schedule_(std::move(schedule)) {}

  [[nodiscard]] std::string name() const override { return "trace"; }
  void plan(const Tree& tree, const Configuration& config, Step step,
            Capacity capacity, std::vector<NodeId>& out) override;
  [[nodiscard]] bool oblivious() const override { return true; }

 private:
  std::vector<std::vector<NodeId>> schedule_;
};

/// Wraps another adversary and, at one chosen step, replaces its plan with a
/// burst of `burst_size` packets at the currently highest node (Cor 3.2's
/// finale; requires `SimOptions::burstiness ≥ burst_size − c`).
class BurstFinale final : public Adversary {
 public:
  BurstFinale(AdversaryPtr inner, Step finale_step, Capacity burst_size);

  [[nodiscard]] std::string name() const override;
  void plan(const Tree& tree, const Configuration& config, Step step,
            Capacity capacity, std::vector<NodeId>& out) override;
  void on_simulation_start() override { inner_->on_simulation_start(); }

 private:
  AdversaryPtr inner_;
  Step finale_step_;
  Capacity burst_size_;
};

}  // namespace cvg::adversary
