#pragma once

/// \file seeker.hpp
/// A lookahead search adversary: a practical (non-exhaustive) adaptive
/// strategy used to stress policies beyond the hand-crafted constructions.
/// Each step it tries every candidate injection site on a scratch copy of
/// the simulation, plays `lookahead` steps of "keep injecting there", and
/// commits to the site that reaches the tallest buffer.  Against Odd-Even it
/// empirically plateaus at the same O(log n) the certifier proves; against
/// the weak baselines it finds their divergence without being told how.

#include "cvg/policy/policy.hpp"
#include "cvg/sim/adversary.hpp"
#include "cvg/sim/simulator.hpp"

namespace cvg::adversary {

/// Greedy lookahead height maximizer.  Requires a deterministic,
/// non-centralized policy.  Cost is O(n² · lookahead) per planned step, so
/// use it on small instances (the exhaustive search in `cvg::search` covers
/// the tiny ones exactly; this bridges the middle).
class HeightSeeker final : public Adversary {
 public:
  HeightSeeker(const Policy& policy, SimOptions options, int lookahead);

  [[nodiscard]] std::string name() const override {
    return "height-seeker-" + std::to_string(lookahead_);
  }
  void plan(const Tree& tree, const Configuration& config, Step step,
            Capacity capacity, std::vector<NodeId>& out) override;

 private:
  const Policy* policy_;
  SimOptions options_;
  int lookahead_;
};

}  // namespace cvg::adversary
