#pragma once

/// \file staged.hpp
/// The constructive adversary from Theorem 3.1, executable against any
/// deterministic policy.
///
/// The proof's strategy, operationalized: maintain a contiguous block B_i of
/// K_i = n₀/2^i nodes whose average buffer density is at least
/// H_i = c·(1 + i/2ℓ).  Stage 0 fills the leftmost n₀ nodes by injecting at
/// the far end for n₀ steps (density c).  Each subsequent stage runs
/// x_i = K_i/2ℓ steps injecting either at the block's sink-side end or at its
/// far end; because decisions are ℓ-local, information cannot cross half the
/// block within x_i steps, so at least one of the two scenarios leaves one
/// half of the block with density H_i + c/2ℓ.  The proof argues one scenario
/// must work; this implementation — exploiting that the policy is
/// deterministic — *simulates both scenarios on a scratch copy of the
/// simulation* and commits to whichever leaves a denser half (a strictly
/// stronger move).  After log(n₀/2ℓ) stages a block of < 2ℓ nodes has average
/// density Ω(c·log n/ℓ), so some single buffer is that tall.
///
/// Works against every policy in the library (it is the *universal* lower
/// bound); `bench_lower_bound` tabulates forced peak vs. the closed-form
/// bound for a grid of (policy, n, ℓ, c).

#include <vector>

#include "cvg/policy/policy.hpp"
#include "cvg/sim/adversary.hpp"
#include "cvg/sim/simulator.hpp"

namespace cvg::adversary {

/// Closed-form lower bound of Theorem 3.1:
/// c·(1 + (log₂ n − 2·log₂ ℓ − 1) / 2ℓ), clamped below at c.
[[nodiscard]] double staged_bound(std::size_t n, Capacity c, int locality);

/// The staged block-halving adversary.  Requires a deterministic,
/// non-centralized policy (it replays the policy on scratch simulators to
/// evaluate its two candidate scenarios).  On a path it is the Theorem 3.1
/// construction verbatim; on a general tree it plays the same game along
/// the deepest root-to-leaf path (a path is a subgraph of every tree, so
/// the bound transfers — this is how the Ω(log n) lower bound applies to
/// the tree algorithm of §5 as well).
class StagedLowerBound final : public Adversary {
 public:
  /// Diagnostics for one completed stage, consumed by `bench_lower_bound`.
  struct StageInfo {
    int index = 0;             ///< stage number i (0 = fill)
    NodeId lo = 0;             ///< block end nearest the sink
    NodeId hi = 0;             ///< block end furthest from the sink
    std::uint64_t packets = 0; ///< packets in the block when the stage closed
    double density = 0.0;      ///< packets / block size
    double target_density = 0.0;  ///< the proof's H_i = c(1 + i/2ℓ)
  };

  /// `policy`/`options` must match the simulation this adversary will drive
  /// (the scratch scenarios replay them); `locality` is the ℓ the adversary
  /// assumes — it must be ≥ the policy's true locality for the guarantee,
  /// but any ℓ ≥ 1 yields a legal (if weaker) adversary.
  StagedLowerBound(const Policy& policy, SimOptions options, int locality);

  [[nodiscard]] std::string name() const override;
  void plan(const Tree& tree, const Configuration& config, Step step,
            Capacity capacity, std::vector<NodeId>& out) override;
  void on_simulation_start() override;

  /// Steps needed to play out every stage on a path of `n` nodes (fill +
  /// all stages + a small tail); drive the simulation at least this long.
  [[nodiscard]] Step recommended_steps(const Tree& tree) const;

  /// Per-stage diagnostics (filled as stages complete).
  [[nodiscard]] const std::vector<StageInfo>& history() const noexcept {
    return history_;
  }

  /// True once every stage has been played (block shrank below 2ℓ).
  [[nodiscard]] bool finished() const noexcept { return phase_ == Phase::Done; }

  /// The block the final stage settled on ({nearest-sink, furthest} node
  /// ids along the played path).
  [[nodiscard]] std::pair<NodeId, NodeId> final_block() const noexcept {
    return {spine_[lo_], spine_[hi_]};
  }

 private:
  enum class Phase : std::uint8_t { Uninitialized, Fill, Stage, Done };

  void initialize(const Tree& tree);
  void start_stage(const Tree& tree, const Configuration& config);
  void close_block(const Configuration& config);

  /// Rebuilds `prefix_` with partial sums of `config`'s heights over spine
  /// indices [lo, hi], after which `packets_in_block` answers any sub-range
  /// query in O(1).  One rebuild serves all queries against that snapshot
  /// (close_block makes one; each scenario evaluation makes two).
  void rebuild_block_prefix(const Configuration& config, std::size_t lo,
                            std::size_t hi);
  [[nodiscard]] std::uint64_t packets_in_block(std::size_t lo,
                                               std::size_t hi) const;

  const Policy* policy_;
  SimOptions options_;
  int ell_;

  Phase phase_ = Phase::Uninitialized;
  /// The root-to-deepest-leaf path being played, ordered nearest-sink
  /// first (index 0 = the sink's child on that path).
  std::vector<NodeId> spine_;
  std::size_t lo_ = 0;  ///< block start, as an index into spine_
  std::size_t hi_ = 0;  ///< block end (inclusive), as an index into spine_
  Step steps_left_ = 0;
  NodeId site_ = 0;
  int stage_index_ = 0;
  bool next_half_is_right_ = false;
  std::vector<StageInfo> history_;
  /// Prefix sums from the last `rebuild_block_prefix`: `prefix_[k]` holds the
  /// packets at spine indices [prefix_lo_, prefix_lo_ + k).
  std::vector<std::uint64_t> prefix_;
  std::size_t prefix_lo_ = 0;
  std::size_t prefix_hi_ = 0;
};

}  // namespace cvg::adversary
