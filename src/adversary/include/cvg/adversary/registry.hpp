#pragma once

/// \file registry.hpp
/// Name-based adversary construction for CLIs and configuration-driven
/// experiments, mirroring the policy registry.
///
/// Recognized names: `fixed-deepest`, `fixed-sink-child`, `fixed-middle`,
/// `fixed-<id>`, `random-uniform`, `random-leaf`, `train-and-slam`,
/// `alternator-<period>`, `pile-on`, `feed-the-block`,
/// `staged-l<locality>`, `height-seeker-<lookahead>`.
///
/// Construction needs context: the topology (site resolution), and — for
/// the strategic adversaries — the policy and simulation options they will
/// play against.

#include "cvg/policy/policy.hpp"
#include "cvg/sim/adversary.hpp"
#include "cvg/sim/simulator.hpp"

namespace cvg::adversary {

/// Everything an adversary factory may need.
struct AdversaryContext {
  const Tree* tree = nullptr;      ///< required
  const Policy* policy = nullptr;  ///< required for staged-* / height-seeker-*
  SimOptions options;              ///< must match the simulation they drive
  std::uint64_t seed = 1;          ///< for the randomized strategies
};

/// Constructs the adversary named `name`; aborts on unknown names or on
/// missing context (e.g. `staged-l1` without a policy).
[[nodiscard]] AdversaryPtr make_adversary(std::string_view name,
                                          const AdversaryContext& context);

/// True iff the name is syntactically recognized (does not validate
/// context requirements).
[[nodiscard]] bool is_known_adversary(std::string_view name);

/// The fixed-name strategies (excluding parameterized families), in
/// presentation order.
[[nodiscard]] std::vector<std::string> standard_adversary_names();

}  // namespace cvg::adversary
