#pragma once

/// \file trace_io.hpp
/// Plain-text persistence for injection schedules, so that interesting
/// adversarial runs (worst cases found by the exhaustive search, staged
/// executions, fuzzer discoveries) can be saved, shipped in bug reports and
/// replayed bit-for-bit via `adversary::Trace`.
///
/// Format (one line per step):
///
///     # cvg-trace v1 nodes=9
///     4
///     -
///     3 3
///
/// `-` is an idle step; otherwise the injected node ids, space-separated.
/// Lines starting with `#` are comments; the header is required.

#include <iosfwd>
#include <string>
#include <vector>

#include "cvg/core/types.hpp"

namespace cvg::adversary {

/// A schedule: `schedule[s]` lists the injections of step s.
using Schedule = std::vector<std::vector<NodeId>>;

/// Serializes `schedule` (for a topology of `node_count` nodes) to `out`.
void write_schedule(std::ostream& out, const Schedule& schedule,
                    std::size_t node_count);

/// Parses a schedule; aborts on malformed input or out-of-range node ids.
/// Returns the schedule and sets `node_count` from the header.
[[nodiscard]] Schedule read_schedule(std::istream& in, std::size_t& node_count);

/// Convenience wrappers for files.
void save_schedule(const std::string& path, const Schedule& schedule,
                   std::size_t node_count);
[[nodiscard]] Schedule load_schedule(const std::string& path,
                                     std::size_t& node_count);

/// Converts a flat per-step vector (kNoNode = idle), as produced by the
/// exhaustive search, into a Schedule.
[[nodiscard]] Schedule to_schedule(const std::vector<NodeId>& flat);

}  // namespace cvg::adversary
