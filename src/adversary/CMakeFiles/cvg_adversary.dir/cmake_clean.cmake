file(REMOVE_RECURSE
  "CMakeFiles/cvg_adversary.dir/src/killers.cpp.o"
  "CMakeFiles/cvg_adversary.dir/src/killers.cpp.o.d"
  "CMakeFiles/cvg_adversary.dir/src/registry.cpp.o"
  "CMakeFiles/cvg_adversary.dir/src/registry.cpp.o.d"
  "CMakeFiles/cvg_adversary.dir/src/seeker.cpp.o"
  "CMakeFiles/cvg_adversary.dir/src/seeker.cpp.o.d"
  "CMakeFiles/cvg_adversary.dir/src/simple.cpp.o"
  "CMakeFiles/cvg_adversary.dir/src/simple.cpp.o.d"
  "CMakeFiles/cvg_adversary.dir/src/staged.cpp.o"
  "CMakeFiles/cvg_adversary.dir/src/staged.cpp.o.d"
  "CMakeFiles/cvg_adversary.dir/src/trace_io.cpp.o"
  "CMakeFiles/cvg_adversary.dir/src/trace_io.cpp.o.d"
  "libcvg_adversary.a"
  "libcvg_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvg_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
