
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adversary/src/killers.cpp" "src/adversary/CMakeFiles/cvg_adversary.dir/src/killers.cpp.o" "gcc" "src/adversary/CMakeFiles/cvg_adversary.dir/src/killers.cpp.o.d"
  "/root/repo/src/adversary/src/registry.cpp" "src/adversary/CMakeFiles/cvg_adversary.dir/src/registry.cpp.o" "gcc" "src/adversary/CMakeFiles/cvg_adversary.dir/src/registry.cpp.o.d"
  "/root/repo/src/adversary/src/seeker.cpp" "src/adversary/CMakeFiles/cvg_adversary.dir/src/seeker.cpp.o" "gcc" "src/adversary/CMakeFiles/cvg_adversary.dir/src/seeker.cpp.o.d"
  "/root/repo/src/adversary/src/simple.cpp" "src/adversary/CMakeFiles/cvg_adversary.dir/src/simple.cpp.o" "gcc" "src/adversary/CMakeFiles/cvg_adversary.dir/src/simple.cpp.o.d"
  "/root/repo/src/adversary/src/staged.cpp" "src/adversary/CMakeFiles/cvg_adversary.dir/src/staged.cpp.o" "gcc" "src/adversary/CMakeFiles/cvg_adversary.dir/src/staged.cpp.o.d"
  "/root/repo/src/adversary/src/trace_io.cpp" "src/adversary/CMakeFiles/cvg_adversary.dir/src/trace_io.cpp.o" "gcc" "src/adversary/CMakeFiles/cvg_adversary.dir/src/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/sim/CMakeFiles/cvg_sim.dir/DependInfo.cmake"
  "/root/repo/src/policy/CMakeFiles/cvg_policy.dir/DependInfo.cmake"
  "/root/repo/src/topology/CMakeFiles/cvg_topology.dir/DependInfo.cmake"
  "/root/repo/src/util/CMakeFiles/cvg_util.dir/DependInfo.cmake"
  "/root/repo/src/audit/CMakeFiles/cvg_audit.dir/DependInfo.cmake"
  "/root/repo/src/core/CMakeFiles/cvg_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
