file(REMOVE_RECURSE
  "libcvg_adversary.a"
)
