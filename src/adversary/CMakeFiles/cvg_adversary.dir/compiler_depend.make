# Empty compiler generated dependencies file for cvg_adversary.
# This may be replaced when dependencies are built.
