#include "cvg/adversary/killers.hpp"

#include "cvg/adversary/simple.hpp"
#include "cvg/util/check.hpp"

namespace cvg::adversary {

TrainAndSlam::TrainAndSlam(const Tree& tree, Step train_length)
    : train_length_(train_length == 0 ? tree.max_depth() : train_length),
      train_site_(resolve_site(tree, Site::Deepest)),
      slam_site_(resolve_site(tree, Site::SinkChild)) {
  CVG_CHECK(tree.node_count() >= 3) << "train-and-slam needs depth >= 2";
}

void TrainAndSlam::plan(const Tree& /*tree*/, const Configuration& /*config*/,
                        Step step, Capacity capacity,
                        std::vector<NodeId>& out) {
  const NodeId site = step < train_length_ ? train_site_ : slam_site_;
  out.insert(out.end(), static_cast<std::size_t>(capacity), site);
}

Alternator::Alternator(const Tree& tree, Step period)
    : period_(period),
      deep_site_(resolve_site(tree, Site::Deepest)),
      near_site_(resolve_site(tree, Site::SinkChild)) {
  CVG_CHECK(period >= 1);
}

void Alternator::plan(const Tree& /*tree*/, const Configuration& /*config*/,
                      Step step, Capacity capacity, std::vector<NodeId>& out) {
  const bool deep_phase = (step / period_) % 2 == 0;
  const NodeId site = deep_phase ? deep_site_ : near_site_;
  out.insert(out.end(), static_cast<std::size_t>(capacity), site);
}

namespace {

/// Tallest buffer; ties broken towards greater depth, then smaller id.
NodeId tallest(const Tree& tree, const Configuration& config) {
  NodeId best = 1;
  for (NodeId v = 2; v < tree.node_count(); ++v) {
    const Height hv = config.height(v);
    const Height hb = config.height(best);
    if (hv > hb || (hv == hb && tree.depth(v) > tree.depth(best))) best = v;
  }
  return best;
}

}  // namespace

void PileOn::plan(const Tree& tree, const Configuration& config, Step /*step*/,
                  Capacity capacity, std::vector<NodeId>& out) {
  CVG_CHECK(tree.node_count() >= 2);
  const NodeId target = tallest(tree, config);
  out.insert(out.end(), static_cast<std::size_t>(capacity), target);
}

void FeedTheBlock::plan(const Tree& tree, const Configuration& config,
                        Step /*step*/, Capacity capacity,
                        std::vector<NodeId>& out) {
  CVG_CHECK(tree.node_count() >= 2);
  const NodeId peak = tallest(tree, config);
  NodeId target = peak;
  const auto children = tree.children(peak);
  for (const NodeId child : children) {
    if (target == peak || config.height(child) > config.height(target)) {
      target = child;
    }
  }
  out.insert(out.end(), static_cast<std::size_t>(capacity), target);
}

}  // namespace cvg::adversary
