#include "cvg/adversary/seeker.hpp"

#include "cvg/util/check.hpp"

namespace cvg::adversary {

HeightSeeker::HeightSeeker(const Policy& policy, SimOptions options,
                           int lookahead)
    : policy_(&policy), options_(options), lookahead_(lookahead) {
  CVG_CHECK(lookahead >= 1);
  CVG_CHECK(!policy.is_centralized())
      << "the height seeker replays the policy on scratch simulators";
}

void HeightSeeker::plan(const Tree& tree, const Configuration& config,
                        Step /*step*/, Capacity capacity,
                        std::vector<NodeId>& out) {
  CVG_CHECK(capacity == options_.capacity);

  NodeId best = 1;
  Height best_peak = -1;
  std::vector<NodeId> injections;
  for (NodeId t = 1; t < tree.node_count(); ++t) {
    Simulator scratch(tree, *policy_, options_);
    scratch.set_config(config);
    injections.assign(static_cast<std::size_t>(capacity), t);
    Height peak = 0;
    for (int s = 0; s < lookahead_; ++s) {
      scratch.step(injections);
      peak = std::max(peak, scratch.config().max_height());
    }
    // Ties favour deeper sites: piling up far from the sink leaves the
    // adversary more room for later stages.
    if (peak > best_peak ||
        (peak == best_peak && tree.depth(t) > tree.depth(best))) {
      best_peak = peak;
      best = t;
    }
  }
  out.insert(out.end(), static_cast<std::size_t>(capacity), best);
}

}  // namespace cvg::adversary
