#include "cvg/adversary/registry.hpp"

#include <charconv>
#include <optional>

#include "cvg/adversary/killers.hpp"
#include "cvg/adversary/seeker.hpp"
#include "cvg/adversary/simple.hpp"
#include "cvg/adversary/staged.hpp"
#include "cvg/util/str.hpp"

namespace cvg::adversary {

namespace {

std::optional<long> parse_suffix(std::string_view name,
                                 std::string_view prefix) {
  if (!starts_with(name, prefix)) return std::nullopt;
  const std::string_view digits = name.substr(prefix.size());
  long value = 0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), value);
  if (ec != std::errc{} || ptr != digits.data() + digits.size()) {
    return std::nullopt;
  }
  return value;
}

AdversaryPtr try_make(std::string_view name, const AdversaryContext& context,
                      bool dry_run) {
  const auto need_tree = [&]() -> const Tree& {
    CVG_CHECK(dry_run || context.tree != nullptr)
        << "adversary '" << name << "' needs a topology";
    static const Tree dummy({kNoNode, 0});
    return context.tree ? *context.tree : dummy;
  };
  const auto need_policy = [&]() -> const Policy* {
    CVG_CHECK(dry_run || context.policy != nullptr)
        << "adversary '" << name << "' needs the policy it plays against";
    return context.policy;
  };

  if (name == "fixed-deepest") {
    return std::make_unique<FixedNode>(need_tree(), Site::Deepest);
  }
  if (name == "fixed-sink-child") {
    return std::make_unique<FixedNode>(need_tree(), Site::SinkChild);
  }
  if (name == "fixed-middle") {
    return std::make_unique<FixedNode>(need_tree(), Site::Middle);
  }
  if (const auto node = parse_suffix(name, "fixed-"); node && *node >= 0) {
    return std::make_unique<FixedNode>(static_cast<NodeId>(*node));
  }
  if (name == "random-uniform") {
    return std::make_unique<RandomUniform>(context.seed);
  }
  if (name == "random-leaf") {
    return std::make_unique<RandomLeaf>(context.seed);
  }
  if (name == "train-and-slam") {
    return std::make_unique<TrainAndSlam>(need_tree());
  }
  if (const auto period = parse_suffix(name, "alternator-");
      period && *period >= 1) {
    return std::make_unique<Alternator>(need_tree(),
                                        static_cast<Step>(*period));
  }
  if (name == "pile-on") return std::make_unique<PileOn>();
  if (name == "feed-the-block") return std::make_unique<FeedTheBlock>();
  if (const auto ell = parse_suffix(name, "staged-l"); ell && *ell >= 1) {
    if (dry_run && context.policy == nullptr) return nullptr;
    return std::make_unique<StagedLowerBound>(*need_policy(), context.options,
                                              static_cast<int>(*ell));
  }
  if (const auto lookahead = parse_suffix(name, "height-seeker-");
      lookahead && *lookahead >= 1) {
    if (dry_run && context.policy == nullptr) return nullptr;
    return std::make_unique<HeightSeeker>(*need_policy(), context.options,
                                          static_cast<int>(*lookahead));
  }
  return nullptr;
}

}  // namespace

AdversaryPtr make_adversary(std::string_view name,
                            const AdversaryContext& context) {
  AdversaryPtr adversary = try_make(name, context, /*dry_run=*/false);
  CVG_CHECK(adversary != nullptr) << "unknown adversary name: " << name;
  return adversary;
}

bool is_known_adversary(std::string_view name) {
  // Syntactic check only: parameterized strategic names are recognized even
  // without a policy in hand.
  if (parse_suffix(name, "staged-l").value_or(0) >= 1) return true;
  if (parse_suffix(name, "height-seeker-").value_or(0) >= 1) return true;
  AdversaryContext context;
  static const Tree probe = [] {
    std::vector<NodeId> parents = {kNoNode, 0, 1, 2};
    return Tree(parents);
  }();
  context.tree = &probe;
  return try_make(name, context, /*dry_run=*/true) != nullptr;
}

std::vector<std::string> standard_adversary_names() {
  return {"fixed-deepest", "fixed-sink-child", "fixed-middle",
          "random-uniform", "random-leaf",     "train-and-slam",
          "pile-on",        "feed-the-block"};
}

}  // namespace cvg::adversary
