#include "cvg/adversary/simple.hpp"

#include <algorithm>

#include "cvg/util/check.hpp"

namespace cvg::adversary {

NodeId resolve_site(const Tree& tree, Site site) {
  switch (site) {
    case Site::Deepest: {
      NodeId best = Tree::sink();
      for (NodeId v = 0; v < tree.node_count(); ++v) {
        if (tree.depth(v) > tree.depth(best)) best = v;
      }
      return best;
    }
    case Site::SinkChild: {
      const auto children = tree.children(Tree::sink());
      CVG_CHECK(!children.empty()) << "tree has no non-sink nodes";
      return children.front();
    }
    case Site::Middle: {
      const std::size_t target = tree.max_depth() / 2;
      NodeId best = Tree::sink();
      for (NodeId v = 0; v < tree.node_count(); ++v) {
        if (tree.depth(v) == target) return v;
        if (tree.depth(v) <= target && tree.depth(v) > tree.depth(best)) best = v;
      }
      return best;
    }
  }
  CVG_UNREACHABLE("bad Site");
}

void FixedNode::plan(const Tree& tree, const Configuration& /*config*/,
                     Step /*step*/, Capacity capacity,
                     std::vector<NodeId>& out) {
  CVG_CHECK(node_ < tree.node_count());
  out.insert(out.end(), static_cast<std::size_t>(capacity), node_);
}

RoundRobin::RoundRobin(std::vector<NodeId> targets)
    : targets_(std::move(targets)) {
  CVG_CHECK(!targets_.empty());
}

void RoundRobin::plan(const Tree& tree, const Configuration& /*config*/,
                      Step /*step*/, Capacity capacity,
                      std::vector<NodeId>& out) {
  const NodeId target = targets_[next_];
  next_ = (next_ + 1) % targets_.size();
  CVG_CHECK(target < tree.node_count());
  out.insert(out.end(), static_cast<std::size_t>(capacity), target);
}

RandomUniform::RandomUniform(std::uint64_t seed, double idle_probability)
    : seed_(seed), idle_probability_(idle_probability), rng_(seed) {}

void RandomUniform::plan(const Tree& tree, const Configuration& /*config*/,
                         Step /*step*/, Capacity capacity,
                         std::vector<NodeId>& out) {
  const std::size_t n = tree.node_count();
  if (n <= 1) return;
  for (Capacity k = 0; k < capacity; ++k) {
    if (idle_probability_ > 0.0 && rng_.bernoulli(idle_probability_)) continue;
    out.push_back(static_cast<NodeId>(1 + rng_.below(n - 1)));
  }
}

RandomLeaf::RandomLeaf(std::uint64_t seed) : seed_(seed), rng_(seed) {}

void RandomLeaf::on_simulation_start() {
  rng_ = Xoshiro256StarStar(seed_);
  leaves_.clear();
  cached_tree_ = nullptr;
}

void RandomLeaf::plan(const Tree& tree, const Configuration& /*config*/,
                      Step /*step*/, Capacity capacity,
                      std::vector<NodeId>& out) {
  if (cached_tree_ != &tree) {
    leaves_.clear();
    for (NodeId v = 1; v < tree.node_count(); ++v) {
      if (tree.is_leaf(v)) leaves_.push_back(v);
    }
    cached_tree_ = &tree;
  }
  CVG_CHECK(!leaves_.empty());
  for (Capacity k = 0; k < capacity; ++k) {
    out.push_back(leaves_[rng_.below(leaves_.size())]);
  }
}

void Trace::plan(const Tree& tree, const Configuration& /*config*/, Step step,
                 Capacity /*capacity*/, std::vector<NodeId>& out) {
  if (step >= schedule_.size()) return;
  for (const NodeId t : schedule_[step]) {
    CVG_CHECK(t < tree.node_count());
    out.push_back(t);
  }
}

BurstFinale::BurstFinale(AdversaryPtr inner, Step finale_step,
                         Capacity burst_size)
    : inner_(std::move(inner)),
      finale_step_(finale_step),
      burst_size_(burst_size) {
  CVG_CHECK(inner_ != nullptr);
  CVG_CHECK(burst_size_ >= 1);
}

std::string BurstFinale::name() const {
  return inner_->name() + "+burst" + std::to_string(burst_size_);
}

void BurstFinale::plan(const Tree& tree, const Configuration& config, Step step,
                       Capacity capacity, std::vector<NodeId>& out) {
  if (step != finale_step_) {
    inner_->plan(tree, config, step, capacity, out);
    return;
  }
  // Dump the burst on the node that is already highest (ties: nearest sink).
  NodeId target = 1;
  for (NodeId v = 1; v < tree.node_count(); ++v) {
    if (config.height(v) > config.height(target)) target = v;
  }
  out.insert(out.end(), static_cast<std::size_t>(burst_size_), target);
}

}  // namespace cvg::adversary
