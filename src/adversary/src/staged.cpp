#include "cvg/adversary/staged.hpp"

#include <algorithm>
#include <cmath>

#include "cvg/adversary/simple.hpp"
#include "cvg/util/check.hpp"

namespace cvg::adversary {

double staged_bound(std::size_t n, Capacity c, int locality) {
  CVG_CHECK(locality >= 1);
  const double logn = std::log2(static_cast<double>(n));
  const double logl = std::log2(static_cast<double>(locality));
  const double bound =
      c * (1.0 + (logn - 2.0 * logl - 1.0) / (2.0 * locality));
  return std::max(bound, static_cast<double>(c));
}

StagedLowerBound::StagedLowerBound(const Policy& policy, SimOptions options,
                                   int locality)
    : policy_(&policy), options_(options), ell_(locality) {
  CVG_CHECK(locality >= 1);
  CVG_CHECK(!policy.is_centralized())
      << "the staged adversary replays the policy on scratch simulators; "
         "centralized (stateful) policies are not supported";
}

std::string StagedLowerBound::name() const {
  return "staged-l" + std::to_string(ell_);
}

void StagedLowerBound::on_simulation_start() {
  phase_ = Phase::Uninitialized;
  history_.clear();
  stage_index_ = 0;
}

void StagedLowerBound::rebuild_block_prefix(const Configuration& config,
                                            std::size_t lo, std::size_t hi) {
  CVG_DCHECK(lo <= hi && hi < spine_.size());
  prefix_lo_ = lo;
  prefix_hi_ = hi;
  prefix_.resize(hi - lo + 2);
  prefix_[0] = 0;
  for (std::size_t i = lo; i <= hi; ++i) {
    prefix_[i - lo + 1] =
        prefix_[i - lo] + static_cast<std::uint64_t>(config.height(spine_[i]));
  }
}

std::uint64_t StagedLowerBound::packets_in_block(std::size_t lo,
                                                 std::size_t hi) const {
  CVG_DCHECK(prefix_lo_ <= lo && lo <= hi && hi <= prefix_hi_);
  return prefix_[hi - prefix_lo_ + 1] - prefix_[lo - prefix_lo_];
}

void StagedLowerBound::initialize(const Tree& tree) {
  // The play field: the deepest root-to-leaf path, nearest-sink first.
  const NodeId deepest = resolve_site(tree, Site::Deepest);
  spine_ = tree.path_to_sink(deepest);      // deepest ... sink
  std::reverse(spine_.begin(), spine_.end());  // sink ... deepest
  spine_.erase(spine_.begin());             // drop the sink itself

  // n0 = largest ℓ·2^k not exceeding the spine length.
  std::size_t n0 = static_cast<std::size_t>(ell_);
  CVG_CHECK(n0 <= spine_.size())
      << "tree too shallow for locality " << ell_;
  while (n0 * 2 <= spine_.size()) n0 *= 2;

  // Block B_0 = the n0 spine nodes furthest from the sink (the paper's
  // "leftmost" block); fill by injecting at the far end.
  hi_ = spine_.size() - 1;
  lo_ = spine_.size() - n0;
  site_ = spine_[hi_];
  steps_left_ = static_cast<Step>(n0);
  phase_ = Phase::Fill;
  stage_index_ = 0;
}

void StagedLowerBound::close_block(const Configuration& config) {
  StageInfo info;
  info.index = stage_index_;
  info.lo = spine_[lo_];
  info.hi = spine_[hi_];
  rebuild_block_prefix(config, lo_, hi_);
  info.packets = packets_in_block(lo_, hi_);
  const auto block_size = static_cast<double>(hi_ - lo_ + 1);
  info.density = static_cast<double>(info.packets) / block_size;
  info.target_density =
      options_.capacity *
      (1.0 + static_cast<double>(stage_index_) / (2.0 * ell_));
  history_.push_back(info);
}

void StagedLowerBound::start_stage(const Tree& tree,
                                   const Configuration& config) {
  const std::size_t block = hi_ - lo_ + 1;
  const std::size_t x = block / (2 * static_cast<std::size_t>(ell_));
  if (x < 1 || block < 2) {
    phase_ = Phase::Done;
    site_ = spine_[lo_];  // keep feeding the final block
    return;
  }

  const std::size_t mid = lo_ + block / 2 - 1;

  // Evaluate both scenarios on scratch copies.  The policy is deterministic,
  // so whichever scenario we commit to reproduces exactly in the real run.
  const auto evaluate = [&](NodeId inject_site, std::uint64_t& right_half,
                            std::uint64_t& left_half) {
    Simulator scratch(tree, *policy_, options_);
    scratch.set_config(config);
    std::vector<NodeId> injections(
        static_cast<std::size_t>(options_.capacity), inject_site);
    for (std::size_t s = 0; s < x; ++s) scratch.step(injections);
    rebuild_block_prefix(scratch.config(), lo_, hi_);
    right_half = packets_in_block(lo_, mid);
    left_half = packets_in_block(mid + 1, hi_);
  };

  std::uint64_t r_right = 0;
  std::uint64_t r_left = 0;
  std::uint64_t l_right = 0;
  std::uint64_t l_left = 0;
  evaluate(spine_[lo_], r_right, r_left);  // scenario 1: inject at sink end
  evaluate(spine_[hi_], l_right, l_left);  // scenario 2: inject at far end

  const std::uint64_t best_r = std::max(r_right, r_left);
  const std::uint64_t best_l = std::max(l_right, l_left);
  if (best_r >= best_l) {
    site_ = spine_[lo_];
    next_half_is_right_ = r_right >= r_left;
  } else {
    site_ = spine_[hi_];
    next_half_is_right_ = l_right >= l_left;
  }
  steps_left_ = static_cast<Step>(x);
  phase_ = Phase::Stage;
}

void StagedLowerBound::plan(const Tree& tree, const Configuration& config,
                            Step /*step*/, Capacity capacity,
                            std::vector<NodeId>& out) {
  CVG_CHECK(capacity == options_.capacity)
      << "simulation capacity differs from the one this adversary plans for";

  if (phase_ == Phase::Uninitialized) initialize(tree);

  if (phase_ != Phase::Done && steps_left_ == 0) {
    // A phase just ended: commit to the chosen half (stages only), record
    // the resulting block B_i against its target density H_i, then plan the
    // next stage from the current real configuration.
    if (phase_ == Phase::Stage) {
      const std::size_t block = hi_ - lo_ + 1;
      const std::size_t mid = lo_ + block / 2 - 1;
      if (next_half_is_right_) {
        hi_ = mid;
      } else {
        lo_ = mid + 1;
      }
    }
    close_block(config);
    ++stage_index_;
    start_stage(tree, config);
  }

  out.insert(out.end(), static_cast<std::size_t>(capacity), site_);
  if (phase_ != Phase::Done && steps_left_ > 0) --steps_left_;
}

Step StagedLowerBound::recommended_steps(const Tree& tree) const {
  const NodeId deepest = resolve_site(tree, Site::Deepest);
  const std::size_t spine_len = tree.depth(deepest);
  std::size_t n0 = static_cast<std::size_t>(ell_);
  if (n0 > spine_len) return 0;
  while (n0 * 2 <= spine_len) n0 *= 2;
  Step total = static_cast<Step>(n0);  // fill phase
  for (std::size_t block = n0; block / (2 * static_cast<std::size_t>(ell_)) >= 1;
       block /= 2) {
    total += static_cast<Step>(block / (2 * static_cast<std::size_t>(ell_)));
  }
  return total + 8;  // small tail so the final block is observable
}

}  // namespace cvg::adversary
