#include "cvg/adversary/trace_io.hpp"

#include <fstream>
#include <sstream>

#include "cvg/util/check.hpp"
#include "cvg/util/str.hpp"

namespace cvg::adversary {

void write_schedule(std::ostream& out, const Schedule& schedule,
                    std::size_t node_count) {
  out << "# cvg-trace v1 nodes=" << node_count << "\n";
  for (const auto& step : schedule) {
    if (step.empty()) {
      out << "-\n";
      continue;
    }
    for (std::size_t i = 0; i < step.size(); ++i) {
      if (i != 0) out << ' ';
      out << step[i];
    }
    out << '\n';
  }
}

Schedule read_schedule(std::istream& in, std::size_t& node_count) {
  std::string line;
  bool header_seen = false;
  node_count = 0;
  Schedule schedule;
  while (std::getline(in, line)) {
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (trimmed.front() == '#') {
      constexpr std::string_view kHeader = "# cvg-trace v1 nodes=";
      if (starts_with(trimmed, kHeader)) {
        node_count = std::strtoul(
            std::string(trimmed.substr(kHeader.size())).c_str(), nullptr, 10);
        header_seen = true;
      }
      continue;
    }
    CVG_CHECK(header_seen) << "trace data before the cvg-trace header";
    std::vector<NodeId> step;
    if (trimmed != "-") {
      std::istringstream fields{std::string(trimmed)};
      std::uint64_t value = 0;
      while (fields >> value) {
        CVG_CHECK(value < node_count)
            << "trace injects at out-of-range node " << value;
        step.push_back(static_cast<NodeId>(value));
      }
      CVG_CHECK(!step.empty()) << "malformed trace line: " << line;
    }
    schedule.push_back(std::move(step));
  }
  CVG_CHECK(header_seen) << "missing cvg-trace header";
  return schedule;
}

void save_schedule(const std::string& path, const Schedule& schedule,
                   std::size_t node_count) {
  std::ofstream out(path);
  CVG_CHECK(out.good()) << "cannot open " << path << " for writing";
  write_schedule(out, schedule, node_count);
  CVG_CHECK(out.good()) << "write to " << path << " failed";
}

Schedule load_schedule(const std::string& path, std::size_t& node_count) {
  std::ifstream in(path);
  CVG_CHECK(in.good()) << "cannot open " << path;
  return read_schedule(in, node_count);
}

Schedule to_schedule(const std::vector<NodeId>& flat) {
  Schedule schedule;
  schedule.reserve(flat.size());
  for (const NodeId t : flat) {
    schedule.push_back(t == kNoNode ? std::vector<NodeId>{}
                                    : std::vector<NodeId>{t});
  }
  return schedule;
}

}  // namespace cvg::adversary
