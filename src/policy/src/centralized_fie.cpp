#include "cvg/policy/centralized_fie.hpp"

#include <algorithm>

namespace cvg {

void CentralizedFiePolicy::reset() const { pending_.clear(); }

void CentralizedFiePolicy::compute_sends(const Tree& tree,
                                         const Configuration& heights,
                                         std::span<const NodeId> injections,
                                         Capacity capacity,
                                         std::span<Capacity> sends) const {
  CVG_DCHECK(sends.size() == tree.node_count());
  for (const NodeId t : injections) pending_.push_back(t);

  // `remaining[v]` = how many more packets node v may still forward this
  // step given what earlier activations already took.  Each activation moves
  // at most one packet out of each node on its path, and there are at most
  // `capacity` activations, so no link exceeds capacity c.
  //
  // Decision heights may predate this step's injections (decide-before
  // semantics): that only makes the controller conservative — it never
  // forwards a packet that is not yet in a buffer.
  std::vector<Capacity> remaining(tree.node_count());
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    remaining[v] = std::min(capacity, static_cast<Capacity>(heights.height(v)));
  }

  for (Capacity slot = 0; slot < capacity && !pending_.empty(); ++slot) {
    const NodeId origin = pending_.front();
    pending_.pop_front();
    for (NodeId v = origin; v != Tree::sink(); v = tree.parent(v)) {
      if (remaining[v] > 0) {
        --remaining[v];
        ++sends[v];
      }
    }
  }
}

}  // namespace cvg
