#include "cvg/policy/registry.hpp"

#include <charconv>
#include <optional>

#include "cvg/policy/centralized_fie.hpp"
#include "cvg/policy/standard.hpp"
#include "cvg/util/str.hpp"

namespace cvg {

namespace {

/// Parses the integer suffix of "<prefix><number>", if `name` matches.
std::optional<int> parse_suffix(std::string_view name, std::string_view prefix) {
  if (!starts_with(name, prefix)) return std::nullopt;
  const std::string_view digits = name.substr(prefix.size());
  int value = 0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), value);
  if (ec != std::errc{} || ptr != digits.data() + digits.size()) {
    return std::nullopt;
  }
  return value;
}

PolicyPtr try_make(std::string_view name) {
  if (name == "greedy") return std::make_unique<GreedyPolicy>();
  if (name == "downhill") return std::make_unique<DownhillPolicy>();
  if (name == "downhill-or-flat") return std::make_unique<DownhillOrFlatPolicy>();
  if (name == "fie-local") return std::make_unique<FieLocalPolicy>();
  if (name == "odd-even") return std::make_unique<OddEvenPolicy>();
  if (name == "tree-odd-even") {
    return std::make_unique<TreeOddEvenPolicy>(ArbitrationMode::Strict);
  }
  if (name == "tree-odd-even-willing") {
    return std::make_unique<TreeOddEvenPolicy>(ArbitrationMode::WillingOnly);
  }
  if (name == "centralized-fie") return std::make_unique<CentralizedFiePolicy>();
  if (const auto window = parse_suffix(name, "max-window-");
      window && *window >= 1) {
    return std::make_unique<MaxWindowPolicy>(*window);
  }
  if (const auto slope = parse_suffix(name, "gradient-"); slope && *slope >= 0) {
    return std::make_unique<GradientPolicy>(static_cast<Height>(*slope));
  }
  if (const auto rate = parse_suffix(name, "scaled-odd-even-");
      rate && *rate >= 1) {
    return std::make_unique<ScaledOddEvenPolicy>(static_cast<Capacity>(*rate));
  }
  return nullptr;
}

}  // namespace

PolicyPtr make_policy(std::string_view name) {
  PolicyPtr policy = try_make(name);
  CVG_CHECK(policy != nullptr) << "unknown policy name: " << name;
  return policy;
}

bool is_known_policy(std::string_view name) { return try_make(name) != nullptr; }

std::vector<std::string> standard_policy_names() {
  return {"greedy",   "downhill",      "downhill-or-flat",
          "fie-local", "odd-even",     "tree-odd-even",
          "tree-odd-even-willing",     "centralized-fie"};
}

}  // namespace cvg
