#include "cvg/policy/standard.hpp"

#include <algorithm>

namespace cvg {

// Greedy is the library's only 0-local policy, so it cannot go through
// `compute_sends_per_node` — the generic helper also reads the successor's
// height, which the locality auditor would (rightly) flag as a radius-1
// read.  Its hand-rolled loops read exactly h(v) and nothing else.
void GreedyPolicy::compute_sends(const Tree& tree, const Configuration& heights,
                                 std::span<const NodeId> /*injections*/,
                                 Capacity capacity,
                                 std::span<Capacity> sends) const {
  const std::size_t n = tree.node_count();
  CVG_DCHECK(sends.size() == n);
  for (NodeId v = 1; v < n; ++v) {
    const DecisionScope audit_scope(v);
    const Height own = heights.height(v);
    if (own <= 0) continue;
    sends[v] = std::min(capacity, static_cast<Capacity>(own));
  }
}

void DownhillPolicy::compute_sends(const Tree& tree,
                                   const Configuration& heights,
                                   std::span<const NodeId> /*injections*/,
                                   Capacity capacity,
                                   std::span<Capacity> sends) const {
  compute_sends_per_node(
      tree, heights, capacity,
      [](Height own, Height succ) { return Capacity{succ < own ? 1 : 0}; },
      sends);
}

void DownhillOrFlatPolicy::compute_sends(const Tree& tree,
                                         const Configuration& heights,
                                         std::span<const NodeId> /*injections*/,
                                         Capacity capacity,
                                         std::span<Capacity> sends) const {
  compute_sends_per_node(
      tree, heights, capacity,
      [](Height own, Height succ) { return Capacity{succ <= own ? 1 : 0}; },
      sends);
}

void FieLocalPolicy::compute_sends(const Tree& tree,
                                   const Configuration& heights,
                                   std::span<const NodeId> /*injections*/,
                                   Capacity capacity,
                                   std::span<Capacity> sends) const {
  compute_sends_per_node(
      tree, heights, capacity,
      [](Height /*own*/, Height succ) { return Capacity{succ == 0 ? 1 : 0}; },
      sends);
}

void OddEvenPolicy::compute_sends(const Tree& tree,
                                  const Configuration& heights,
                                  std::span<const NodeId> /*injections*/,
                                  Capacity capacity,
                                  std::span<Capacity> sends) const {
  compute_sends_per_node(
      tree, heights, capacity,
      [](Height own, Height succ) { return Capacity{rule(own, succ) ? 1 : 0}; },
      sends);
}

std::string TreeOddEvenPolicy::name() const {
  return mode_ == ArbitrationMode::Strict ? "tree-odd-even"
                                          : "tree-odd-even-willing";
}

void TreeOddEvenPolicy::compute_sends(const Tree& tree,
                                      const Configuration& heights,
                                      std::span<const NodeId> /*injections*/,
                                      Capacity capacity,
                                      std::span<Capacity> sends) const {
  compute_sends_arbitrated(
      tree, heights, mode_, capacity,
      [](Height own, Height succ) {
        return Capacity{OddEvenPolicy::rule(own, succ) ? 1 : 0};
      },
      sends);
}

MaxWindowPolicy::MaxWindowPolicy(int window) : window_(window) {
  CVG_CHECK(window >= 1);
}

std::string MaxWindowPolicy::name() const {
  return "max-window-" + std::to_string(window_);
}

void MaxWindowPolicy::compute_sends(const Tree& tree,
                                    const Configuration& heights,
                                    std::span<const NodeId> /*injections*/,
                                    Capacity capacity,
                                    std::span<Capacity> sends) const {
  const std::size_t n = tree.node_count();
  CVG_DCHECK(sends.size() == n);
  for (NodeId v = 1; v < n; ++v) {
    const DecisionScope audit_scope(v);
    const Height own = heights.height(v);
    if (own <= 0) continue;
    Height window_max = 0;
    NodeId cur = v;
    for (int hop = 0; hop < window_; ++hop) {
      cur = tree.parent(cur);
      if (cur == kNoNode) break;
      window_max = std::max(window_max, heights.height(cur));
    }
    if (own >= window_max) {
      sends[v] = std::min(capacity, static_cast<Capacity>(own));
    }
  }
}

ScaledOddEvenPolicy::ScaledOddEvenPolicy(Capacity rate) : rate_(rate) {
  CVG_CHECK(rate >= 1);
}

std::string ScaledOddEvenPolicy::name() const {
  return "scaled-odd-even-" + std::to_string(rate_);
}

void ScaledOddEvenPolicy::compute_sends(const Tree& tree,
                                        const Configuration& heights,
                                        std::span<const NodeId> /*injections*/,
                                        Capacity capacity,
                                        std::span<Capacity> sends) const {
  compute_sends_per_node(
      tree, heights, capacity,
      [rate = rate_](Height own, Height succ) {
        const Height own_bucket = own / rate;
        const Height succ_bucket = succ / rate;
        const bool go = (own_bucket % 2 != 0) ? succ_bucket <= own_bucket
                                              : succ_bucket < own_bucket;
        return go ? rate : Capacity{0};
      },
      sends);
}

GradientPolicy::GradientPolicy(Height slope) : slope_(slope) {
  CVG_CHECK(slope >= 0);
}

std::string GradientPolicy::name() const {
  return "gradient-" + std::to_string(slope_);
}

void GradientPolicy::compute_sends(const Tree& tree,
                                   const Configuration& heights,
                                   std::span<const NodeId> /*injections*/,
                                   Capacity capacity,
                                   std::span<Capacity> sends) const {
  compute_sends_per_node(
      tree, heights, capacity,
      [slope = slope_](Height own, Height succ) {
        return Capacity{own - succ >= slope ? 1 : 0};
      },
      sends);
}

// ---------------------------------------------------------------------------
// Sparse twins.  Each mirrors its dense counterpart exactly — same `wants`
// lambda through the sparse helper — so the step engine can dispatch either
// way with bit-identical results (asserted by sparse_equivalence_test).
// ---------------------------------------------------------------------------

void GreedyPolicy::compute_sends_sparse(const Tree& /*tree*/,
                                        const Configuration& heights,
                                        std::span<const NodeId> occupied,
                                        Capacity capacity,
                                        std::vector<SendEntry>& sends_out) const {
  for (const NodeId v : occupied) {
    CVG_DCHECK(v != Tree::sink());
    const DecisionScope audit_scope(v);
    const Height own = heights.height(v);
    CVG_DCHECK(own > 0);
    sends_out.push_back({v, std::min(capacity, static_cast<Capacity>(own))});
  }
}

void DownhillPolicy::compute_sends_sparse(
    const Tree& tree, const Configuration& heights,
    std::span<const NodeId> occupied, Capacity capacity,
    std::vector<SendEntry>& sends_out) const {
  compute_sends_per_node_sparse(
      tree, heights, occupied, capacity,
      [](Height own, Height succ) { return Capacity{succ < own ? 1 : 0}; },
      sends_out);
}

void DownhillOrFlatPolicy::compute_sends_sparse(
    const Tree& tree, const Configuration& heights,
    std::span<const NodeId> occupied, Capacity capacity,
    std::vector<SendEntry>& sends_out) const {
  compute_sends_per_node_sparse(
      tree, heights, occupied, capacity,
      [](Height own, Height succ) { return Capacity{succ <= own ? 1 : 0}; },
      sends_out);
}

void FieLocalPolicy::compute_sends_sparse(
    const Tree& tree, const Configuration& heights,
    std::span<const NodeId> occupied, Capacity capacity,
    std::vector<SendEntry>& sends_out) const {
  compute_sends_per_node_sparse(
      tree, heights, occupied, capacity,
      [](Height /*own*/, Height succ) { return Capacity{succ == 0 ? 1 : 0}; },
      sends_out);
}

void OddEvenPolicy::compute_sends_sparse(
    const Tree& tree, const Configuration& heights,
    std::span<const NodeId> occupied, Capacity capacity,
    std::vector<SendEntry>& sends_out) const {
  compute_sends_per_node_sparse(
      tree, heights, occupied, capacity,
      [](Height own, Height succ) { return Capacity{rule(own, succ) ? 1 : 0}; },
      sends_out);
}

void TreeOddEvenPolicy::compute_sends_sparse(
    const Tree& tree, const Configuration& heights,
    std::span<const NodeId> occupied, Capacity capacity,
    std::vector<SendEntry>& sends_out) const {
  compute_sends_arbitrated_sparse(
      tree, heights, occupied, mode_, capacity,
      [](Height own, Height succ) {
        return Capacity{OddEvenPolicy::rule(own, succ) ? 1 : 0};
      },
      sends_out);
}

void MaxWindowPolicy::compute_sends_sparse(
    const Tree& tree, const Configuration& heights,
    std::span<const NodeId> occupied, Capacity capacity,
    std::vector<SendEntry>& sends_out) const {
  for (const NodeId v : occupied) {
    const DecisionScope audit_scope(v);
    const Height own = heights.height(v);
    CVG_DCHECK(own > 0);
    Height window_max = 0;
    NodeId cur = v;
    for (int hop = 0; hop < window_; ++hop) {
      cur = tree.parent(cur);
      if (cur == kNoNode) break;
      window_max = std::max(window_max, heights.height(cur));
    }
    if (own >= window_max) {
      sends_out.push_back({v, std::min(capacity, static_cast<Capacity>(own))});
    }
  }
}

void ScaledOddEvenPolicy::compute_sends_sparse(
    const Tree& tree, const Configuration& heights,
    std::span<const NodeId> occupied, Capacity capacity,
    std::vector<SendEntry>& sends_out) const {
  compute_sends_per_node_sparse(
      tree, heights, occupied, capacity,
      [rate = rate_](Height own, Height succ) {
        const Height own_bucket = own / rate;
        const Height succ_bucket = succ / rate;
        const bool go = (own_bucket % 2 != 0) ? succ_bucket <= own_bucket
                                              : succ_bucket < own_bucket;
        return go ? rate : Capacity{0};
      },
      sends_out);
}

void GradientPolicy::compute_sends_sparse(
    const Tree& tree, const Configuration& heights,
    std::span<const NodeId> occupied, Capacity capacity,
    std::vector<SendEntry>& sends_out) const {
  compute_sends_per_node_sparse(
      tree, heights, occupied, capacity,
      [slope = slope_](Height own, Height succ) {
        return Capacity{own - succ >= slope ? 1 : 0};
      },
      sends_out);
}

}  // namespace cvg
