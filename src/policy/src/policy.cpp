#include "cvg/policy/policy.hpp"

namespace cvg {

// The Policy interface itself is header-only; this translation unit hosts the
// shared send-vector validator used by the simulator's debug checks.

/// Verifies the feasibility contract on a send vector: `sends[0] == 0` and
/// `0 ≤ sends[v] ≤ min(capacity, heights[v])` for every node.  Aborts with a
/// diagnostic on violation; used behind CVG_DCHECK-level paths and in tests.
void validate_sends(const Tree& tree, const Configuration& heights,
                    Capacity capacity, std::span<const Capacity> sends) {
  CVG_CHECK(sends.size() == tree.node_count());
  CVG_CHECK(sends[Tree::sink()] == 0) << "sink must not forward";
  for (NodeId v = 1; v < tree.node_count(); ++v) {
    CVG_CHECK(sends[v] >= 0) << "node " << v << " has negative send";
    CVG_CHECK(sends[v] <= capacity)
        << "node " << v << " exceeds link capacity: " << sends[v];
    CVG_CHECK(sends[v] <= heights.height(v))
        << "node " << v << " forwards more than it buffers (" << sends[v]
        << " > " << heights.height(v) << ")";
  }
}

}  // namespace cvg
