#include "cvg/policy/policy.hpp"

namespace cvg {

// The Policy interface itself is mostly header-only; this translation unit
// hosts the sparse-entry-point default and the shared send validators used by
// the simulator's debug checks.

void Policy::compute_sends_sparse(const Tree& /*tree*/,
                                  const Configuration& /*heights*/,
                                  std::span<const NodeId> /*occupied*/,
                                  Capacity /*capacity*/,
                                  std::vector<SendEntry>& /*sends_out*/) const {
  CVG_CHECK(false) << "policy '" << name()
                   << "' does not implement the sparse entry point "
                      "(supports_sparse() is false)";
}

/// Verifies the feasibility contract on a send vector: `sends[0] == 0` and
/// `0 ≤ sends[v] ≤ min(capacity, heights[v])` for every node.  Aborts with a
/// diagnostic on violation; used behind CVG_DCHECK-level paths and in tests.
void validate_sends(const Tree& tree, const Configuration& heights,
                    Capacity capacity, std::span<const Capacity> sends) {
  CVG_CHECK(sends.size() == tree.node_count());
  CVG_CHECK(sends[Tree::sink()] == 0) << "sink must not forward";
  for (NodeId v = 1; v < tree.node_count(); ++v) {
    CVG_CHECK(sends[v] >= 0) << "node " << v << " has negative send";
    CVG_CHECK(sends[v] <= capacity)
        << "node " << v << " exceeds link capacity: " << sends[v];
    CVG_CHECK(sends[v] <= heights.height(v))
        << "node " << v << " forwards more than it buffers (" << sends[v]
        << " > " << heights.height(v) << ")";
  }
}

/// Verifies the sparse feasibility contract: entries sorted strictly
/// ascending by node id, non-sink in-range nodes only, counts in
/// [1, min(capacity, heights[node])].
void validate_sends_sparse(const Tree& tree, const Configuration& heights,
                           Capacity capacity,
                           std::span<const SendEntry> sends) {
  NodeId prev = 0;  // entries start at node ≥ 1, so 0 works as "none yet"
  for (const SendEntry& entry : sends) {
    CVG_CHECK(entry.node >= 1 && entry.node < tree.node_count())
        << "sparse send at out-of-range or sink node " << entry.node;
    CVG_CHECK(entry.node > prev)
        << "sparse sends unsorted or duplicated at node " << entry.node;
    CVG_CHECK(entry.count >= 1)
        << "sparse send with non-positive count at node " << entry.node;
    CVG_CHECK(entry.count <= capacity)
        << "node " << entry.node << " exceeds link capacity: " << entry.count;
    CVG_CHECK(entry.count <= heights.height(entry.node))
        << "node " << entry.node << " forwards more than it buffers ("
        << entry.count << " > " << heights.height(entry.node) << ")";
    prev = entry.node;
  }
}

}  // namespace cvg
