# Empty compiler generated dependencies file for cvg_policy.
# This may be replaced when dependencies are built.
