
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/src/centralized_fie.cpp" "src/policy/CMakeFiles/cvg_policy.dir/src/centralized_fie.cpp.o" "gcc" "src/policy/CMakeFiles/cvg_policy.dir/src/centralized_fie.cpp.o.d"
  "/root/repo/src/policy/src/policy.cpp" "src/policy/CMakeFiles/cvg_policy.dir/src/policy.cpp.o" "gcc" "src/policy/CMakeFiles/cvg_policy.dir/src/policy.cpp.o.d"
  "/root/repo/src/policy/src/registry.cpp" "src/policy/CMakeFiles/cvg_policy.dir/src/registry.cpp.o" "gcc" "src/policy/CMakeFiles/cvg_policy.dir/src/registry.cpp.o.d"
  "/root/repo/src/policy/src/standard.cpp" "src/policy/CMakeFiles/cvg_policy.dir/src/standard.cpp.o" "gcc" "src/policy/CMakeFiles/cvg_policy.dir/src/standard.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/core/CMakeFiles/cvg_core.dir/DependInfo.cmake"
  "/root/repo/src/topology/CMakeFiles/cvg_topology.dir/DependInfo.cmake"
  "/root/repo/src/util/CMakeFiles/cvg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
