file(REMOVE_RECURSE
  "CMakeFiles/cvg_policy.dir/src/centralized_fie.cpp.o"
  "CMakeFiles/cvg_policy.dir/src/centralized_fie.cpp.o.d"
  "CMakeFiles/cvg_policy.dir/src/policy.cpp.o"
  "CMakeFiles/cvg_policy.dir/src/policy.cpp.o.d"
  "CMakeFiles/cvg_policy.dir/src/registry.cpp.o"
  "CMakeFiles/cvg_policy.dir/src/registry.cpp.o.d"
  "CMakeFiles/cvg_policy.dir/src/standard.cpp.o"
  "CMakeFiles/cvg_policy.dir/src/standard.cpp.o.d"
  "libcvg_policy.a"
  "libcvg_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvg_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
