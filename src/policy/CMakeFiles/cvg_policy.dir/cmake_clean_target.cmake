file(REMOVE_RECURSE
  "libcvg_policy.a"
)
