#pragma once

/// \file registry.hpp
/// Name-based policy construction for CLIs, benches and sweep configs.
///
/// Recognized names: `greedy`, `downhill`, `downhill-or-flat`, `fie-local`,
/// `odd-even`, `tree-odd-even`, `tree-odd-even-strict`, `centralized-fie`,
/// `max-window-<ℓ>`, `gradient-<k>`.

#include <string>
#include <string_view>
#include <vector>

#include "cvg/policy/policy.hpp"

namespace cvg {

/// Constructs the policy named `name`; aborts on an unknown name (use
/// `is_known_policy` first if the name is untrusted input).
[[nodiscard]] PolicyPtr make_policy(std::string_view name);

/// True iff `make_policy(name)` would succeed.
[[nodiscard]] bool is_known_policy(std::string_view name);

/// The fixed-name policies (excludes the parameterized `max-window-*` /
/// `gradient-*` families), in presentation order.
[[nodiscard]] std::vector<std::string> standard_policy_names();

}  // namespace cvg
