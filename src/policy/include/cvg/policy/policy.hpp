#pragma once

/// \file policy.hpp
/// Scheduling-policy interface (paper §2): in every step, after the adversary
/// injects, every node may forward at most `c` packets along its outgoing
/// link.  A policy is *ℓ-local* when each node's decision depends only on
/// buffer heights at most ℓ hops away.
///
/// The interface is deliberately step-granular rather than node-granular: a
/// policy computes the whole send vector from the decision-time configuration
/// in one call.  That keeps the virtual-dispatch cost at one call per step,
/// lets tree policies implement sibling arbitration naturally, and admits the
/// centralized comparator (`CentralizedFie`) which is not local at all.
/// Locality is enforced mechanically, not assumed: `locality()` reports ℓ,
/// the runtime auditor (`cvg/audit/locality_auditor.hpp`, armed via
/// `SimOptions::audit_locality`) records every height read a policy makes —
/// the helpers below tag each read with the deciding node via
/// `DecisionScope` — and aborts on any read beyond ℓ hops, and the
/// conformance tests in `tests/policy_locality_test.cpp` run every
/// registered policy under that auditor on all four substrates plus the
/// complementary black-box check (`cvg/audit/blackbox.hpp`) that sends are
/// invariant under perturbations outside the declared radius.

#include <algorithm>
#include <memory>
#include <span>
#include <string>

#include <optional>

#include "cvg/core/config.hpp"
#include "cvg/core/lanes.hpp"
#include "cvg/core/read_audit.hpp"
#include "cvg/core/step.hpp"
#include "cvg/core/types.hpp"
#include "cvg/topology/tree.hpp"
#include "cvg/util/check.hpp"

namespace cvg {

/// Abstract scheduling policy.  Implementations must be stateless across
/// steps (all paper policies are); this is what makes checkpoint/rollback of
/// a simulation equal to copying its configuration, which the Thm 3.1
/// adversary and the exhaustive search rely on.
class Policy {
 public:
  virtual ~Policy() = default;

  /// Stable identifier used by the registry, reports and CLIs.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Locality radius ℓ (how many hops of height information a node uses).
  /// Centralized policies report a sentinel of -1.
  [[nodiscard]] virtual int locality() const = 0;

  /// True for policies that use global information (e.g. `CentralizedFie`).
  [[nodiscard]] virtual bool is_centralized() const { return false; }

  /// Hook invoked when a fresh simulation starts.  Local policies are
  /// stateless and ignore it; the centralized comparator clears its pending
  /// activation queue here.
  virtual void on_simulation_start() const {}

  /// Computes how many packets each node forwards this step.
  ///
  /// \param tree       topology (node 0 = sink).
  /// \param heights    decision-time heights (see `StepSemantics`): local
  ///                   policies must base decisions only on these.
  /// \param injections this step's injections (one entry per packet).  Local
  ///                   policies must ignore it; it exists for the
  ///                   centralized comparator, whose paper formulation
  ///                   activates the path of each injected packet.
  /// \param capacity   link capacity c (= adversary rate).
  /// \param sends      out, size = node count, pre-zeroed by the caller.
  ///                   On return, `sends[v]` ∈ [0, min(c, heights[v])] and
  ///                   `sends[0] == 0`.
  virtual void compute_sends(const Tree& tree, const Configuration& heights,
                             std::span<const NodeId> injections,
                             Capacity capacity,
                             std::span<Capacity> sends) const = 0;

  /// True when the policy implements `compute_sends_sparse`, i.e. its
  /// decision at a node depends only on heights in that node's neighbourhood
  /// and a node with height 0 never sends — so the whole send vector is a
  /// function of the *occupied set* (nodes with height > 0).  All the
  /// paper's local policies qualify; the centralized comparator does not
  /// (it reacts to injections, not heights).
  [[nodiscard]] virtual bool supports_sparse() const { return false; }

  /// Sparse twin of `compute_sends`: computes the same forwarding decisions
  /// by visiting only the occupied set, emitting one `(node, count)` pair per
  /// sender.  Only called when `supports_sparse()` is true.
  ///
  /// \param occupied  every node with height > 0, in arbitrary order, no
  ///                  duplicates, never the sink.
  /// \param sends_out out, pre-cleared by the caller.  Entries may be
  ///                  appended in any order (the caller sorts); counts must
  ///                  be ≥ 1 and obey the same feasibility contract as the
  ///                  dense path.  Must emit exactly the nonzero entries the
  ///                  dense `compute_sends` would produce.
  virtual void compute_sends_sparse(const Tree& tree,
                                    const Configuration& heights,
                                    std::span<const NodeId> occupied,
                                    Capacity capacity,
                                    std::vector<SendEntry>& sends_out) const;

  /// Descriptor of the branch-free forwarding rule that reproduces this
  /// policy bit-for-bit, if the lane-batched engine
  /// (`cvg/sim/lane_engine.hpp`) has one.  The default — no descriptor —
  /// routes the policy to the scalar engine; policies advertising a rule are
  /// pinned against it by the scalar↔batch equivalence suite.
  [[nodiscard]] virtual std::optional<LaneRule> lane_rule() const {
    return std::nullopt;
  }
};

/// Owning handle used throughout the library.
using PolicyPtr = std::unique_ptr<Policy>;

/// Verifies the feasibility contract on a send vector: `sends[0] == 0` and
/// `0 ≤ sends[v] ≤ min(capacity, heights[v])`.  Aborts on violation.
void validate_sends(const Tree& tree, const Configuration& heights,
                    Capacity capacity, std::span<const Capacity> sends);

/// Sparse counterpart of `validate_sends`: entries must be sorted strictly
/// ascending by node id, name non-sink in-range nodes, and carry counts in
/// [1, min(capacity, heights[node])].  Aborts on violation.
void validate_sends_sparse(const Tree& tree, const Configuration& heights,
                           Capacity capacity,
                           std::span<const SendEntry> sends);

/// Fills `sends` by evaluating a per-node rule independently at every
/// non-sink node — the 1-local, arbitration-free shape shared by all the
/// paper's path policies.  `wants(own, succ)` returns the desired number of
/// packets to forward given the node's own height and its successor's height;
/// the result is clamped to `min(capacity, own)`.
template <typename WantsFn>
void compute_sends_per_node(const Tree& tree, const Configuration& heights,
                            Capacity capacity, WantsFn&& wants,
                            std::span<Capacity> sends) {
  const std::size_t n = tree.node_count();
  CVG_DCHECK(sends.size() == n);
  for (NodeId v = 1; v < n; ++v) {
    const DecisionScope audit_scope(v);  // reads below serve v's decision
    const Height own = heights.height(v);
    if (own <= 0) continue;
    const Height succ = heights.height(tree.parent(v));
    const Capacity desired = wants(own, succ);
    sends[v] = std::min({desired, capacity, static_cast<Capacity>(own)});
  }
}

/// Sparse twin of `compute_sends_per_node`: evaluates the same per-node rule
/// over the occupied set only, appending `(node, count)` pairs for nodes that
/// forward.  Emits exactly the nonzero entries of the dense version.
template <typename WantsFn>
void compute_sends_per_node_sparse(const Tree& tree,
                                   const Configuration& heights,
                                   std::span<const NodeId> occupied,
                                   Capacity capacity, WantsFn&& wants,
                                   std::vector<SendEntry>& out) {
  for (const NodeId v : occupied) {
    CVG_DCHECK(v != Tree::sink());
    const DecisionScope audit_scope(v);  // reads below serve v's decision
    const Height own = heights.height(v);
    CVG_DCHECK(own > 0);
    const Height succ = heights.height(tree.parent(v));
    const Capacity desired = wants(own, succ);
    const Capacity k = std::min({desired, capacity, static_cast<Capacity>(own)});
    if (k > 0) out.push_back({v, k});
  }
}

/// Fills `sends` with sibling arbitration (Algorithm 5's priority scheme):
/// for every parent, at most one child forwards.  Priority = greater height,
/// ties broken by smaller node id ("choose arbitrarily" in the paper, made
/// deterministic).  See `ArbitrationMode` for the two readings of who
/// competes.  `wants(own, succ)` is the per-node parity rule (0/1).
template <typename WantsFn>
void compute_sends_arbitrated(const Tree& tree, const Configuration& heights,
                              ArbitrationMode mode, Capacity capacity,
                              WantsFn&& wants, std::span<Capacity> sends) {
  const std::size_t n = tree.node_count();
  CVG_DCHECK(sends.size() == n);
  for (NodeId p = 0; p < n; ++p) {
    const auto children = tree.children(p);
    if (children.empty()) continue;
    // One audit scope covers the whole sibling group: the arbitration
    // decision is joint among p's children, and every read below (p itself,
    // each sibling) is within 2 hops of any one of them — attribute the
    // group to the first child, whose ball is exactly the 2-local view the
    // tree algorithm (Thm 5.11) is entitled to.
    const DecisionScope audit_scope(children.front());
    const Height succ = heights.height(p);

    NodeId winner = kNoNode;
    Height winner_height = 0;
    for (const NodeId child : children) {
      const Height own = heights.height(child);
      if (own <= 0) continue;
      const bool eligible = (mode == ArbitrationMode::Strict)
                                ? true
                                : wants(own, succ) > 0;
      if (!eligible) continue;
      if (winner == kNoNode || own > winner_height) {
        winner = child;
        winner_height = own;
      }
    }
    if (winner == kNoNode) continue;
    const Capacity desired = wants(winner_height, succ);
    sends[winner] =
        std::min({desired, capacity, static_cast<Capacity>(winner_height)});
  }
}

/// Sparse twin of `compute_sends_arbitrated`: arbitrates only over parents of
/// occupied nodes.  Candidates are staged inside `out` itself (node = child,
/// count = its height) so the steady-state path allocates nothing, then
/// grouped by parent and reduced to one winner per group: greatest height,
/// ties to the smaller id — identical to the dense scan, which visits each
/// parent's children in ascending id order.
template <typename WantsFn>
void compute_sends_arbitrated_sparse(const Tree& tree,
                                     const Configuration& heights,
                                     std::span<const NodeId> occupied,
                                     ArbitrationMode mode, Capacity capacity,
                                     WantsFn&& wants,
                                     std::vector<SendEntry>& out) {
  for (const NodeId v : occupied) {
    CVG_DCHECK(v != Tree::sink());
    const DecisionScope audit_scope(v);  // candidate v's eligibility reads
    const Height own = heights.height(v);
    CVG_DCHECK(own > 0);
    if (mode == ArbitrationMode::WillingOnly &&
        wants(own, heights.height(tree.parent(v))) <= 0) {
      continue;
    }
    out.push_back({v, static_cast<Capacity>(own)});
  }

  std::sort(out.begin(), out.end(),
            [&tree](const SendEntry& a, const SendEntry& b) {
              const NodeId pa = tree.parent(a.node);
              const NodeId pb = tree.parent(b.node);
              return pa != pb ? pa < pb : a.node < b.node;
            });

  std::size_t kept = 0;
  std::size_t i = 0;
  while (i < out.size()) {
    const NodeId parent = tree.parent(out[i].node);
    SendEntry winner = out[i];
    for (++i; i < out.size() && tree.parent(out[i].node) == parent; ++i) {
      if (out[i].count > winner.count) winner = out[i];
    }
    const DecisionScope audit_scope(winner.node);  // winner's parity read
    const Height winner_height = static_cast<Height>(winner.count);
    const Capacity desired = wants(winner_height, heights.height(parent));
    const Capacity k = std::min({desired, capacity, winner.count});
    if (k > 0) out[kept++] = SendEntry{winner.node, k};
  }
  out.resize(kept);
}

}  // namespace cvg
