#pragma once

/// \file centralized_fie.hpp
/// The centralized comparator from Miller & Patt-Shamir [21], in the
/// "corrected" per-packet-activation form the paper's footnote 1 describes.
///
/// For every injected packet, the controller *activates* the unique path from
/// the injection point to the sink: every node on that path whose buffer is
/// non-empty forwards one packet, simultaneously (a "train" moves one hop).
/// At most `c` activations are executed per step — one per unit of link
/// capacity — so the schedule is feasible; surplus injection events (bursts)
/// queue and are activated in FIFO order on later steps.
///
/// [21] proves this achieves information gathering with buffers of size
/// σ + 2ρ (injection rate ρ = c, burstiness σ); `bench_centralized_fie`
/// checks the measured peak against that cap.  The algorithm is
/// "unavoidably centralized" — it needs to know where injections happened —
/// which is exactly the gap the paper's local Odd-Even algorithm closes.

#include "cvg/policy/policy.hpp"

#include <deque>

namespace cvg {

/// Centralized Forward-If-Empty with per-packet path activation.
///
/// Holds cross-step state (the FIFO of pending activations), so a
/// `Simulator` must not be checkpointed/copied while using this policy; the
/// search and strategic-adversary components reject centralized policies.
class CentralizedFiePolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "centralized-fie"; }
  [[nodiscard]] int locality() const override { return -1; }
  [[nodiscard]] bool is_centralized() const override { return true; }

  /// Clears pending activations; called when a simulation (re)starts.
  void reset() const;

  void on_simulation_start() const override { reset(); }

  void compute_sends(const Tree& tree, const Configuration& heights,
                     std::span<const NodeId> injections, Capacity capacity,
                     std::span<Capacity> sends) const override;

  /// Number of injection events waiting for an activation slot.
  [[nodiscard]] std::size_t pending_activations() const noexcept {
    return pending_.size();
  }

 private:
  // Mutable because the Policy interface is const per step; this queue is the
  // controller's own bookkeeping, not simulation state.
  mutable std::deque<NodeId> pending_;
};

}  // namespace cvg
