#pragma once

/// \file standard.hpp
/// The paper's algorithms and the local baselines it compares against.
///
/// | Policy            | Rule (node v, successor s(v))                  | Worst-case buffers (paths) |
/// |-------------------|------------------------------------------------|----------------------------|
/// | `Greedy`          | forward whenever non-empty                      | Θ(n)  [23]                 |
/// | `Downhill`        | forward iff h(s(v)) <  h(v)                     | Ω(n)  [21]                 |
/// | `DownhillOrFlat`  | forward iff h(s(v)) ≤  h(v)                     | Θ(√n) (Thm 4.1)            |
/// | `FieLocal`        | forward iff h(s(v)) == 0                        | unbounded [21]             |
/// | `OddEven`         | h odd: forward iff h(s(v)) ≤ h;                 | log n + 3 (Thm 4.13)       |
/// |                   | h even: forward iff h(s(v)) < h                 |                            |
/// | `TreeOddEven`     | OddEven + sibling priority arbitration (Alg. 5) | O(log n) on trees (Thm 5.11)|
/// | `MaxWindow(ℓ)`    | forward iff h(v) ≥ max of next ℓ heights        | generic ℓ-local specimen   |
/// | `Gradient(k)`     | forward iff h(v) − h(s(v)) ≥ k                  | generalizes Downhill(k=1)  |

#include "cvg/policy/policy.hpp"

namespace cvg {

/// Work-conserving baseline: forward as much as capacity allows whenever the
/// buffer is non-empty.  Stable on DAGs under rate-1 adversaries [11] but
/// needs Θ(n) buffers on the path [23] — reproduced by `bench_greedy_linear`.
class GreedyPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "greedy"; }
  [[nodiscard]] int locality() const override { return 0; }
  void compute_sends(const Tree& tree, const Configuration& heights,
                     std::span<const NodeId> injections, Capacity capacity,
                     std::span<Capacity> sends) const override;
  [[nodiscard]] bool supports_sparse() const override { return true; }
  void compute_sends_sparse(const Tree& tree, const Configuration& heights,
                            std::span<const NodeId> occupied,
                            Capacity capacity,
                            std::vector<SendEntry>& sends_out) const override;
  [[nodiscard]] std::optional<LaneRule> lane_rule() const override {
    return LaneRule{LaneRuleKind::Greedy, 0, ArbitrationMode::Strict};
  }
};

/// Forward iff the successor's buffer is strictly lower.  Ω(n) on paths [21]:
/// left-end injections pile up because flat profiles stall throughput.
class DownhillPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "downhill"; }
  [[nodiscard]] int locality() const override { return 1; }
  void compute_sends(const Tree& tree, const Configuration& heights,
                     std::span<const NodeId> injections, Capacity capacity,
                     std::span<Capacity> sends) const override;
  [[nodiscard]] bool supports_sparse() const override { return true; }
  void compute_sends_sparse(const Tree& tree, const Configuration& heights,
                            std::span<const NodeId> occupied,
                            Capacity capacity,
                            std::vector<SendEntry>& sends_out) const override;
  [[nodiscard]] std::optional<LaneRule> lane_rule() const override {
    return LaneRule{LaneRuleKind::Downhill, 0, ArbitrationMode::Strict};
  }
};

/// Forward iff the successor's buffer is equal or lower (Thm 4.1's
/// `Downhill-or-Flat`).  Θ(√n) buffers on paths — the paper's observation
/// that a one-character change to Downhill already beats every local
/// algorithm analyzed in [21].
class DownhillOrFlatPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "downhill-or-flat"; }
  [[nodiscard]] int locality() const override { return 1; }
  void compute_sends(const Tree& tree, const Configuration& heights,
                     std::span<const NodeId> injections, Capacity capacity,
                     std::span<Capacity> sends) const override;
  [[nodiscard]] bool supports_sparse() const override { return true; }
  void compute_sends_sparse(const Tree& tree, const Configuration& heights,
                            std::span<const NodeId> occupied,
                            Capacity capacity,
                            std::vector<SendEntry>& sends_out) const override;
  [[nodiscard]] std::optional<LaneRule> lane_rule() const override {
    return LaneRule{LaneRuleKind::DownhillOrFlat, 0, ArbitrationMode::Strict};
  }
};

/// Local Forward-If-Empty: forward iff the successor's buffer is empty.  The
/// local cousin of [21]'s centralized algorithm; unbounded on paths because
/// its steady-state throughput is ½ while the adversary injects at rate 1.
class FieLocalPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "fie-local"; }
  [[nodiscard]] int locality() const override { return 1; }
  void compute_sends(const Tree& tree, const Configuration& heights,
                     std::span<const NodeId> injections, Capacity capacity,
                     std::span<Capacity> sends) const override;
  [[nodiscard]] bool supports_sparse() const override { return true; }
  void compute_sends_sparse(const Tree& tree, const Configuration& heights,
                            std::span<const NodeId> occupied,
                            Capacity capacity,
                            std::vector<SendEntry>& sends_out) const override;
  [[nodiscard]] std::optional<LaneRule> lane_rule() const override {
    return LaneRule{LaneRuleKind::FieLocal, 0, ArbitrationMode::Strict};
  }
};

/// The paper's headline 1-local algorithm (Algorithm 1, `Odd-Even`):
///
///   if h(v) is odd:  forward iff h(s(v)) ≤ h(v)
///   if h(v) is even: forward iff h(s(v)) <  h(v)
///
/// Guarantees buffers ≤ log₂ n + 3 on directed paths for c = 1 (Thm 4.13).
/// Odd heights behave like `DownhillOrFlat` (drain efficiently rightwards);
/// even heights behave like `Downhill` (hold ground), so pile-ups spread
/// leftwards instead of upwards and the algorithm adapts to the adversary.
class OddEvenPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "odd-even"; }
  [[nodiscard]] int locality() const override { return 1; }
  void compute_sends(const Tree& tree, const Configuration& heights,
                     std::span<const NodeId> injections, Capacity capacity,
                     std::span<Capacity> sends) const override;
  [[nodiscard]] bool supports_sparse() const override { return true; }
  void compute_sends_sparse(const Tree& tree, const Configuration& heights,
                            std::span<const NodeId> occupied,
                            Capacity capacity,
                            std::vector<SendEntry>& sends_out) const override;

  [[nodiscard]] std::optional<LaneRule> lane_rule() const override {
    return LaneRule{LaneRuleKind::OddEven, 0, ArbitrationMode::Strict};
  }

  /// The bare parity rule, shared with `TreeOddEvenPolicy` and the certifier.
  [[nodiscard]] static constexpr bool rule(Height own, Height succ) noexcept {
    return (own % 2 != 0) ? succ <= own : succ < own;
  }
};

/// The paper's 2-local tree algorithm (Algorithm 5, `Tree`): the Odd-Even
/// parity rule plus sibling arbitration — among the children of each node,
/// only the highest-priority one may forward (priority = greater height,
/// ties by smaller id).  Guarantees O(log n) buffers on directed in-trees
/// for c = 1 (Thm 5.11).
class TreeOddEvenPolicy final : public Policy {
 public:
  /// Default arbitration is `Strict` — the paper's literal reading: the
  /// tallest sibling holds priority even when its own parity rule blocks
  /// it.  For the Odd-Even rule the `WillingOnly` reading is provably
  /// execution-equivalent (a blocked tallest sibling implies all shorter
  /// siblings are blocked; docs/MODEL.md §1), which the differential test
  /// in certify_tree_test.cpp verifies step-for-step.
  explicit TreeOddEvenPolicy(
      ArbitrationMode mode = ArbitrationMode::Strict) noexcept
      : mode_(mode) {}

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int locality() const override { return 2; }
  [[nodiscard]] ArbitrationMode arbitration() const noexcept { return mode_; }
  void compute_sends(const Tree& tree, const Configuration& heights,
                     std::span<const NodeId> injections, Capacity capacity,
                     std::span<Capacity> sends) const override;
  [[nodiscard]] bool supports_sparse() const override { return true; }
  void compute_sends_sparse(const Tree& tree, const Configuration& heights,
                            std::span<const NodeId> occupied,
                            Capacity capacity,
                            std::vector<SendEntry>& sends_out) const override;
  [[nodiscard]] std::optional<LaneRule> lane_rule() const override {
    return LaneRule{LaneRuleKind::ArbitratedOddEven, 0, mode_};
  }

 private:
  ArbitrationMode mode_;
};

/// Generic ℓ-local specimen for the lower-bound experiments: forward iff the
/// node's height is ≥ the maximum height among its next `window` successors
/// (and non-zero).  `window` = 1 reduces to `DownhillOrFlat`.
class MaxWindowPolicy final : public Policy {
 public:
  explicit MaxWindowPolicy(int window);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int locality() const override { return window_; }
  void compute_sends(const Tree& tree, const Configuration& heights,
                     std::span<const NodeId> injections, Capacity capacity,
                     std::span<Capacity> sends) const override;
  [[nodiscard]] bool supports_sparse() const override { return true; }
  void compute_sends_sparse(const Tree& tree, const Configuration& heights,
                            std::span<const NodeId> occupied,
                            Capacity capacity,
                            std::vector<SendEntry>& sends_out) const override;
  [[nodiscard]] std::optional<LaneRule> lane_rule() const override {
    return LaneRule{LaneRuleKind::MaxWindow, window_, ArbitrationMode::Strict};
  }

 private:
  int window_;
};

/// Experimental probe of the paper's §6 open problem (local algorithms with
/// O(log n) buffers for injection rate c > 1): apply the Odd-Even parity
/// rule to heights *bucketed in units of c* and move up to c packets at a
/// time —
///
///   if ⌊h(v)/c⌋ is odd:  forward min(c, h(v)) iff ⌊h(s(v))/c⌋ ≤ ⌊h(v)/c⌋
///   if ⌊h(v)/c⌋ is even: forward min(c, h(v)) iff ⌊h(s(v))/c⌋ < ⌊h(v)/c⌋
///
/// For c = 1 this is exactly `OddEvenPolicy`.  No bound is proved here; the
/// empirical behaviour (it stays ~c·log n against the staged adversary and
/// the battery — see `bench_lower_bound` E1d) is reported as an observation,
/// not a theorem.
class ScaledOddEvenPolicy final : public Policy {
 public:
  explicit ScaledOddEvenPolicy(Capacity rate);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int locality() const override { return 1; }
  void compute_sends(const Tree& tree, const Configuration& heights,
                     std::span<const NodeId> injections, Capacity capacity,
                     std::span<Capacity> sends) const override;
  [[nodiscard]] bool supports_sparse() const override { return true; }
  void compute_sends_sparse(const Tree& tree, const Configuration& heights,
                            std::span<const NodeId> occupied,
                            Capacity capacity,
                            std::vector<SendEntry>& sends_out) const override;
  [[nodiscard]] std::optional<LaneRule> lane_rule() const override {
    return LaneRule{LaneRuleKind::ScaledOddEven, rate_,
                    ArbitrationMode::Strict};
  }

 private:
  Capacity rate_;
};

/// Threshold family: forward iff h(v) − h(s(v)) ≥ `slope`.  `slope` = 1 is
/// `Downhill`, `slope` = 0 is `DownhillOrFlat`; larger slopes trade
/// throughput for gradient and are used in the ablation bench.
class GradientPolicy final : public Policy {
 public:
  explicit GradientPolicy(Height slope);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int locality() const override { return 1; }
  void compute_sends(const Tree& tree, const Configuration& heights,
                     std::span<const NodeId> injections, Capacity capacity,
                     std::span<Capacity> sends) const override;
  [[nodiscard]] bool supports_sparse() const override { return true; }
  void compute_sends_sparse(const Tree& tree, const Configuration& heights,
                            std::span<const NodeId> occupied,
                            Capacity capacity,
                            std::vector<SendEntry>& sends_out) const override;
  [[nodiscard]] std::optional<LaneRule> lane_rule() const override {
    return LaneRule{LaneRuleKind::Gradient, slope_, ArbitrationMode::Strict};
  }

 private:
  Height slope_;
};

}  // namespace cvg
