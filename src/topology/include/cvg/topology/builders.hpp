#pragma once

/// \file builders.hpp
/// Constructors for the tree families used across tests, examples and
/// benchmarks.  All builders place the sink at node 0 and return trees with
/// dense node ids; sizes are *total node counts including the sink* unless
/// stated otherwise.

#include <cstdint>
#include <span>

#include "cvg/topology/tree.hpp"
#include "cvg/util/rng.hpp"

namespace cvg::build {

/// Directed path of `n` nodes: sink ← 1 ← 2 ← … ← n-1.  Node n-1 is the
/// paper's "leftmost" node (furthest from the sink).
[[nodiscard]] Tree path(std::size_t n);

/// Star/spider with `branches` legs, each a path of `branch_length` nodes,
/// all attached to a single hub which is the sink's only child.  This is the
/// §5 example showing 1-local algorithms need Ω(√branches) buffers at the hub.
/// Total nodes = 2 + branches · branch_length.
[[nodiscard]] Tree spider(std::size_t branches, std::size_t branch_length);

/// Star with `branches` leaves attached directly to the sink's child hub.
[[nodiscard]] Tree star(std::size_t branches);

/// Spider with staggered branch lengths `branches`, `branches`−1, …, 1 off a
/// single hub.  The §5 synchronisation gadget: injecting at the leaf of the
/// length-L branch at time `branches`−L makes every branch head fire into
/// the hub in the same step under a 1-local policy, forcing an Ω(branches)
/// hub buffer; the 2-local arbitration of Algorithm Tree prevents it.
/// Total nodes = 2 + branches·(branches+1)/2.
[[nodiscard]] Tree spider_staggered(std::size_t branches);

/// Complete `arity`-ary tree of the given `levels` (levels ≥ 1; level 1 is
/// just the sink).  Ids are assigned in BFS order.
[[nodiscard]] Tree complete_kary(std::size_t arity, std::size_t levels);

/// Caterpillar: a spine path of `spine` nodes hanging off the sink, with
/// `legs_per_node` leaf children attached to every spine node.
[[nodiscard]] Tree caterpillar(std::size_t spine, std::size_t legs_per_node);

/// Broom: a handle path of `handle` nodes off the sink whose far end holds
/// `bristles` leaves.  Stresses many leaves funnelling into one deep path.
[[nodiscard]] Tree broom(std::size_t handle, std::size_t bristles);

/// Random recursive tree over `n` nodes: node v ≥ 1 picks a uniformly random
/// parent among nodes 0..v-1.  Expected depth Θ(log n).
[[nodiscard]] Tree random_recursive(std::size_t n, Xoshiro256StarStar& rng);

/// Random tree biased towards long chains: node v ≥ 1 attaches to node v-1
/// with probability `chain_bias`, otherwise to a uniform random predecessor.
/// `chain_bias` = 1 degenerates to a path, 0 to `random_recursive`.
[[nodiscard]] Tree random_chainy(std::size_t n, double chain_bias,
                                 Xoshiro256StarStar& rng);

/// Tree from an explicit parent list (convenience for tests; `parents[0]`
/// must be `kNoNode`).
[[nodiscard]] Tree from_parents(std::span<const NodeId> parents);

}  // namespace cvg::build
