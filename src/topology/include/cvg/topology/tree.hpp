#pragma once

/// \file tree.hpp
/// Rooted in-tree topology: every node has one outgoing link towards its
/// parent; the root (node 0) is the sink that consumes packets (paper §2).
///
/// The structure is immutable after construction.  Children are stored in
/// CSR form so that iterating a node's children is a contiguous scan, and a
/// BFS order is precomputed for the simulator's traversals.

#include <span>
#include <string>
#include <vector>

#include "cvg/core/types.hpp"

namespace cvg {

/// Immutable rooted tree.  Node 0 is the root/sink.  Node ids are dense.
class Tree {
 public:
  /// Builds a tree from a parent vector: `parents[v]` is the successor of
  /// node v on its path to the sink; `parents[0]` must be `kNoNode`.
  /// Aborts if the vector does not describe a tree rooted at node 0.
  explicit Tree(std::vector<NodeId> parents);

  /// Number of nodes, including the sink.
  [[nodiscard]] std::size_t node_count() const noexcept { return parents_.size(); }

  /// The sink node (always 0).
  [[nodiscard]] static constexpr NodeId sink() noexcept { return 0; }

  /// Successor `s(v)` of node v (its parent); `kNoNode` for the sink.
  [[nodiscard]] NodeId parent(NodeId v) const noexcept { return parents_[v]; }

  /// Children of v (the nodes whose outgoing link points at v).
  [[nodiscard]] std::span<const NodeId> children(NodeId v) const noexcept {
    return {child_ids_.data() + child_offsets_[v],
            child_offsets_[v + 1] - child_offsets_[v]};
  }

  /// Number of incoming links of v.
  [[nodiscard]] std::size_t in_degree(NodeId v) const noexcept {
    return child_offsets_[v + 1] - child_offsets_[v];
  }

  /// True iff v has no children.
  [[nodiscard]] bool is_leaf(NodeId v) const noexcept { return in_degree(v) == 0; }

  /// True iff v has in-degree ≥ 2 (an *intersection* in the paper's §5 sense).
  [[nodiscard]] bool is_intersection(NodeId v) const noexcept {
    return in_degree(v) >= 2;
  }

  /// Hop distance from v to the sink (0 for the sink itself).
  [[nodiscard]] std::size_t depth(NodeId v) const noexcept { return depths_[v]; }

  /// Maximum depth over all nodes (the tree's height in hops).
  [[nodiscard]] std::size_t max_depth() const noexcept { return max_depth_; }

  /// Nodes in breadth-first order from the sink (sink first).  Reversed, this
  /// is a leaves-to-sink order in which every node precedes its parent.
  [[nodiscard]] std::span<const NodeId> bfs_order() const noexcept { return bfs_order_; }

  /// All parent pointers (`parents()[0] == kNoNode`).
  [[nodiscard]] std::span<const NodeId> parents() const noexcept { return parents_; }

  /// True iff the topology is a simple path sink←1←2←…←n-1.
  [[nodiscard]] bool is_path() const noexcept;

  /// Nodes on the unique path from `v` to the sink, inclusive of both.
  [[nodiscard]] std::vector<NodeId> path_to_sink(NodeId v) const;

  friend bool operator==(const Tree&, const Tree&) = default;

 private:
  std::vector<NodeId> parents_;
  std::vector<std::size_t> child_offsets_;  // size n+1, CSR offsets
  std::vector<NodeId> child_ids_;           // size n-1
  std::vector<std::size_t> depths_;
  std::vector<NodeId> bfs_order_;
  std::size_t max_depth_ = 0;
};

/// Graphviz DOT rendering (edges point towards the sink).
[[nodiscard]] std::string to_dot(const Tree& tree);

/// Multi-line ASCII rendering of the tree with optional per-node annotations
/// (e.g. buffer heights); `annotations` may be empty or one string per node.
[[nodiscard]] std::string to_ascii(const Tree& tree,
                                   std::span<const std::string> annotations = {});

}  // namespace cvg
