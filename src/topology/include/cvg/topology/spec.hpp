#pragma once

/// \file spec.hpp
/// Textual topology specifications, so CLIs, corpus tools and the simulation
/// service can name a tree family + size in one token instead of hard-coding
/// builder calls.
///
/// Grammar (one token, no spaces):
///
///     path:<n>                  build::path(n)
///     star:<b>                  build::star(b)
///     spider:<b>x<len>          build::spider(b, len)
///     staggered-spider:<b>      build::spider_staggered(b)
///     kary:<arity>x<levels>     build::complete_kary(arity, levels)
///     caterpillar:<spine>x<legs>  build::caterpillar(spine, legs)
///     broom:<handle>x<bristles>   build::broom(handle, bristles)
///     random-recursive:<n>:<seed> build::random_recursive(n, rng(seed))
///
/// Specs are deterministic: the same string always builds the same tree
/// (randomized families carry their seed in the spec).
///
/// Two layers:
///  - `parse_topology_spec` / `format_topology_spec` give structured access
///    with hostile-input discipline: every malformed spec (unknown family,
///    zero or overflowing counts, leading zeros, trailing garbage, sizes
///    beyond `kMaxSpecNodes`) yields a one-line structured error instead of
///    a crash, and `format` is the canonical inverse of `parse` —
///    `format_topology_spec(*parse_topology_spec(s)) == s` for canonical `s`.
///  - `make_tree` / `is_known_topology_spec` are the historical string
///    entry points, now thin wrappers over the structured layer.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cvg/topology/tree.hpp"

namespace cvg::build {

/// Hard ceiling on the node count any spec may describe (2^26 ≈ 67M nodes).
/// Untrusted spec strings reach the parser through the corpus CLI and the
/// simulation service, so a hostile "kary:10x12" must be rejected here
/// rather than OOM the process inside a builder.
inline constexpr std::uint64_t kMaxSpecNodes = 1ULL << 26;

/// A parsed spec: the family name plus its numeric arguments in grammar
/// order (e.g. {"spider", {8, 4}}).  Equal specs build equal trees.
struct TopologySpec {
  std::string family;
  std::vector<std::uint64_t> args;

  friend bool operator==(const TopologySpec&, const TopologySpec&) = default;
};

/// Parses `text` into a structured spec.  On any malformation — unknown
/// family, missing/extra/zero/undersized arguments, non-canonical numerals
/// (leading zeros, signs), overflow, or a node count above `kMaxSpecNodes` —
/// returns nullopt and sets `error` to a one-line diagnostic.
[[nodiscard]] std::optional<TopologySpec> parse_topology_spec(
    std::string_view text, std::string& error);

/// Canonical text of a parsed spec (the exact inverse of
/// `parse_topology_spec` on canonical input).
[[nodiscard]] std::string format_topology_spec(const TopologySpec& spec);

/// Exact node count (including the sink) of the tree `spec` describes.
/// Only valid for specs that passed `parse_topology_spec`.
[[nodiscard]] std::uint64_t spec_node_count(const TopologySpec& spec);

/// Builds the tree a validated spec describes.
[[nodiscard]] Tree make_tree(const TopologySpec& spec);

/// Builds the tree named by `spec`; aborts on malformed or unknown specs
/// (use `is_known_topology_spec` first for untrusted input).
[[nodiscard]] Tree make_tree(std::string_view spec);

/// True iff `make_tree(spec)` would succeed.
[[nodiscard]] bool is_known_topology_spec(std::string_view spec);

/// One example spec per family, for usage messages.
[[nodiscard]] std::vector<std::string> topology_spec_examples();

}  // namespace cvg::build
