#pragma once

/// \file spec.hpp
/// Textual topology specifications, so CLIs and corpus tools can name a tree
/// family + size in one token instead of hard-coding builder calls.
///
/// Grammar (one token, no spaces):
///
///     path:<n>                  build::path(n)
///     star:<b>                  build::star(b)
///     spider:<b>x<len>          build::spider(b, len)
///     staggered-spider:<b>      build::spider_staggered(b)
///     kary:<arity>x<levels>     build::complete_kary(arity, levels)
///     caterpillar:<spine>x<legs>  build::caterpillar(spine, legs)
///     broom:<handle>x<bristles>   build::broom(handle, bristles)
///     random-recursive:<n>:<seed> build::random_recursive(n, rng(seed))
///
/// Specs are deterministic: the same string always builds the same tree
/// (randomized families carry their seed in the spec).

#include <string>
#include <string_view>
#include <vector>

#include "cvg/topology/tree.hpp"

namespace cvg::build {

/// Builds the tree named by `spec`; aborts on malformed or unknown specs
/// (use `is_known_topology_spec` first for untrusted input).
[[nodiscard]] Tree make_tree(std::string_view spec);

/// True iff `make_tree(spec)` would succeed.
[[nodiscard]] bool is_known_topology_spec(std::string_view spec);

/// One example spec per family, for usage messages.
[[nodiscard]] std::vector<std::string> topology_spec_examples();

}  // namespace cvg::build
