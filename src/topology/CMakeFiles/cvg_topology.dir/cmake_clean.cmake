file(REMOVE_RECURSE
  "CMakeFiles/cvg_topology.dir/src/builders.cpp.o"
  "CMakeFiles/cvg_topology.dir/src/builders.cpp.o.d"
  "CMakeFiles/cvg_topology.dir/src/render.cpp.o"
  "CMakeFiles/cvg_topology.dir/src/render.cpp.o.d"
  "CMakeFiles/cvg_topology.dir/src/spec.cpp.o"
  "CMakeFiles/cvg_topology.dir/src/spec.cpp.o.d"
  "CMakeFiles/cvg_topology.dir/src/tree.cpp.o"
  "CMakeFiles/cvg_topology.dir/src/tree.cpp.o.d"
  "libcvg_topology.a"
  "libcvg_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvg_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
