# Empty compiler generated dependencies file for cvg_topology.
# This may be replaced when dependencies are built.
