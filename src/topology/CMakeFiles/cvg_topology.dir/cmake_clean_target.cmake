file(REMOVE_RECURSE
  "libcvg_topology.a"
)
