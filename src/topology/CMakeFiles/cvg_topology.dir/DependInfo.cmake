
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/src/builders.cpp" "src/topology/CMakeFiles/cvg_topology.dir/src/builders.cpp.o" "gcc" "src/topology/CMakeFiles/cvg_topology.dir/src/builders.cpp.o.d"
  "/root/repo/src/topology/src/render.cpp" "src/topology/CMakeFiles/cvg_topology.dir/src/render.cpp.o" "gcc" "src/topology/CMakeFiles/cvg_topology.dir/src/render.cpp.o.d"
  "/root/repo/src/topology/src/spec.cpp" "src/topology/CMakeFiles/cvg_topology.dir/src/spec.cpp.o" "gcc" "src/topology/CMakeFiles/cvg_topology.dir/src/spec.cpp.o.d"
  "/root/repo/src/topology/src/tree.cpp" "src/topology/CMakeFiles/cvg_topology.dir/src/tree.cpp.o" "gcc" "src/topology/CMakeFiles/cvg_topology.dir/src/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/core/CMakeFiles/cvg_core.dir/DependInfo.cmake"
  "/root/repo/src/util/CMakeFiles/cvg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
