#include "cvg/topology/builders.hpp"

#include "cvg/util/check.hpp"

namespace cvg::build {

Tree path(std::size_t n) {
  CVG_CHECK(n >= 1);
  std::vector<NodeId> parents(n);
  parents[0] = kNoNode;
  for (NodeId v = 1; v < n; ++v) parents[v] = v - 1;
  return Tree(std::move(parents));
}

Tree spider(std::size_t branches, std::size_t branch_length) {
  CVG_CHECK(branches >= 1);
  CVG_CHECK(branch_length >= 1);
  const std::size_t n = 2 + branches * branch_length;
  std::vector<NodeId> parents(n);
  parents[0] = kNoNode;
  parents[1] = 0;  // hub
  NodeId next = 2;
  for (std::size_t b = 0; b < branches; ++b) {
    NodeId attach = 1;
    for (std::size_t i = 0; i < branch_length; ++i) {
      parents[next] = attach;
      attach = next;
      ++next;
    }
  }
  return Tree(std::move(parents));
}

Tree star(std::size_t branches) { return spider(branches, 1); }

Tree spider_staggered(std::size_t branches) {
  CVG_CHECK(branches >= 1);
  const std::size_t n = 2 + branches * (branches + 1) / 2;
  std::vector<NodeId> parents(n);
  parents[0] = kNoNode;
  parents[1] = 0;  // hub
  NodeId next = 2;
  for (std::size_t length = branches; length >= 1; --length) {
    NodeId attach = 1;
    for (std::size_t i = 0; i < length; ++i) {
      parents[next] = attach;
      attach = next;
      ++next;
    }
  }
  return Tree(std::move(parents));
}

Tree complete_kary(std::size_t arity, std::size_t levels) {
  CVG_CHECK(arity >= 1);
  CVG_CHECK(levels >= 1);
  // Count nodes: 1 + k + k^2 + … + k^(levels-1).
  std::size_t n = 0;
  std::size_t level_size = 1;
  for (std::size_t d = 0; d < levels; ++d) {
    n += level_size;
    level_size *= arity;
  }
  std::vector<NodeId> parents(n);
  parents[0] = kNoNode;
  for (NodeId v = 1; v < n; ++v) {
    parents[v] = static_cast<NodeId>((v - 1) / arity);
  }
  return Tree(std::move(parents));
}

Tree caterpillar(std::size_t spine, std::size_t legs_per_node) {
  CVG_CHECK(spine >= 1);
  const std::size_t n = 1 + spine + spine * legs_per_node;
  std::vector<NodeId> parents(n);
  parents[0] = kNoNode;
  for (NodeId v = 1; v <= spine; ++v) parents[v] = v - 1;
  NodeId next = static_cast<NodeId>(spine + 1);
  for (NodeId s = 1; s <= spine; ++s) {
    for (std::size_t leg = 0; leg < legs_per_node; ++leg) {
      parents[next++] = s;
    }
  }
  return Tree(std::move(parents));
}

Tree broom(std::size_t handle, std::size_t bristles) {
  CVG_CHECK(handle >= 1);
  const std::size_t n = 1 + handle + bristles;
  std::vector<NodeId> parents(n);
  parents[0] = kNoNode;
  for (NodeId v = 1; v <= handle; ++v) parents[v] = v - 1;
  for (NodeId v = static_cast<NodeId>(handle + 1); v < n; ++v) {
    parents[v] = static_cast<NodeId>(handle);
  }
  return Tree(std::move(parents));
}

Tree random_recursive(std::size_t n, Xoshiro256StarStar& rng) {
  CVG_CHECK(n >= 1);
  std::vector<NodeId> parents(n);
  parents[0] = kNoNode;
  for (NodeId v = 1; v < n; ++v) {
    parents[v] = static_cast<NodeId>(rng.below(v));
  }
  return Tree(std::move(parents));
}

Tree random_chainy(std::size_t n, double chain_bias, Xoshiro256StarStar& rng) {
  CVG_CHECK(n >= 1);
  std::vector<NodeId> parents(n);
  parents[0] = kNoNode;
  for (NodeId v = 1; v < n; ++v) {
    if (v == 1 || rng.bernoulli(chain_bias)) {
      parents[v] = v - 1;
    } else {
      parents[v] = static_cast<NodeId>(rng.below(v));
    }
  }
  return Tree(std::move(parents));
}

Tree from_parents(std::span<const NodeId> parents) {
  return Tree(std::vector<NodeId>(parents.begin(), parents.end()));
}

}  // namespace cvg::build
