#include <string>

#include "cvg/topology/tree.hpp"
#include "cvg/util/check.hpp"

namespace cvg {

std::string to_dot(const Tree& tree) {
  std::string out = "digraph convergecast {\n  rankdir=RL;\n";
  out += "  0 [label=\"sink\", shape=doublecircle];\n";
  for (NodeId v = 1; v < tree.node_count(); ++v) {
    out += "  " + std::to_string(v) + " -> " + std::to_string(tree.parent(v)) +
           ";\n";
  }
  out += "}\n";
  return out;
}

namespace {

void render_subtree(const Tree& tree, NodeId v,
                    std::span<const std::string> annotations,
                    const std::string& prefix, bool last, std::string& out) {
  out += prefix;
  out += last ? "`-- " : "|-- ";
  out += std::to_string(v);
  if (!annotations.empty()) {
    CVG_CHECK(annotations.size() == tree.node_count())
        << "annotations must be empty or one per node";
    out += " (" + annotations[v] + ")";
  }
  out += '\n';
  const auto children = tree.children(v);
  const std::string child_prefix = prefix + (last ? "    " : "|   ");
  for (std::size_t i = 0; i < children.size(); ++i) {
    render_subtree(tree, children[i], annotations, child_prefix,
                   i + 1 == children.size(), out);
  }
}

}  // namespace

std::string to_ascii(const Tree& tree, std::span<const std::string> annotations) {
  std::string out = "0 (sink)";
  if (!annotations.empty() && annotations.size() == tree.node_count()) {
    out = "0 (sink, " + annotations[0] + ")";
  }
  out += '\n';
  const auto children = tree.children(Tree::sink());
  for (std::size_t i = 0; i < children.size(); ++i) {
    render_subtree(tree, children[i], annotations, "", i + 1 == children.size(),
                   out);
  }
  return out;
}

}  // namespace cvg
