#include "cvg/topology/spec.hpp"

#include <charconv>
#include <optional>

#include "cvg/topology/builders.hpp"
#include "cvg/util/check.hpp"
#include "cvg/util/rng.hpp"
#include "cvg/util/str.hpp"

namespace cvg::build {

namespace {

/// Parses a whole-token decimal number (no sign, no trailing garbage).
std::optional<std::uint64_t> parse_number(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

/// Splits "<a>x<b>" into two numbers.
std::optional<std::pair<std::uint64_t, std::uint64_t>> parse_pair(
    std::string_view text) {
  const std::size_t cross = text.find('x');
  if (cross == std::string_view::npos) return std::nullopt;
  const auto a = parse_number(text.substr(0, cross));
  const auto b = parse_number(text.substr(cross + 1));
  if (!a || !b) return std::nullopt;
  return std::make_pair(*a, *b);
}

/// The family table: each entry validates its argument string and, when not
/// in dry-run mode, builds the tree.  `try_build` returns nullopt for
/// unknown/malformed specs so `is_known_topology_spec` shares the parser.
std::optional<Tree> try_build(std::string_view spec, bool dry_run) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string_view::npos || colon == 0) return std::nullopt;
  const std::string_view family = spec.substr(0, colon);
  const std::string_view args = spec.substr(colon + 1);
  const auto tiny = [&] { return Tree({kNoNode, 0}); };

  if (family == "path") {
    const auto n = parse_number(args);
    if (!n || *n < 2) return std::nullopt;
    return dry_run ? tiny() : path(*n);
  }
  if (family == "star") {
    const auto b = parse_number(args);
    if (!b || *b < 1) return std::nullopt;
    return dry_run ? tiny() : star(*b);
  }
  if (family == "spider") {
    const auto pair = parse_pair(args);
    if (!pair || pair->first < 1 || pair->second < 1) return std::nullopt;
    return dry_run ? tiny() : spider(pair->first, pair->second);
  }
  if (family == "staggered-spider") {
    const auto b = parse_number(args);
    if (!b || *b < 1) return std::nullopt;
    return dry_run ? tiny() : spider_staggered(*b);
  }
  if (family == "kary") {
    const auto pair = parse_pair(args);
    if (!pair || pair->first < 1 || pair->second < 1) return std::nullopt;
    return dry_run ? tiny() : complete_kary(pair->first, pair->second);
  }
  if (family == "caterpillar") {
    const auto pair = parse_pair(args);
    if (!pair || pair->first < 1) return std::nullopt;
    return dry_run ? tiny() : caterpillar(pair->first, pair->second);
  }
  if (family == "broom") {
    const auto pair = parse_pair(args);
    if (!pair || pair->first < 1 || pair->second < 1) return std::nullopt;
    return dry_run ? tiny() : broom(pair->first, pair->second);
  }
  if (family == "random-recursive") {
    const std::size_t second_colon = args.find(':');
    if (second_colon == std::string_view::npos) return std::nullopt;
    const auto n = parse_number(args.substr(0, second_colon));
    const auto seed = parse_number(args.substr(second_colon + 1));
    if (!n || *n < 2 || !seed) return std::nullopt;
    if (dry_run) return tiny();
    Xoshiro256StarStar rng(*seed);
    return random_recursive(*n, rng);
  }
  return std::nullopt;
}

}  // namespace

Tree make_tree(std::string_view spec) {
  std::optional<Tree> tree = try_build(spec, /*dry_run=*/false);
  CVG_CHECK(tree.has_value())
      << "unknown topology spec '" << spec << "' (examples: "
      << join(topology_spec_examples(), ", ") << ")";
  return *std::move(tree);
}

bool is_known_topology_spec(std::string_view spec) {
  return try_build(spec, /*dry_run=*/true).has_value();
}

std::vector<std::string> topology_spec_examples() {
  return {"path:32",        "star:8",          "spider:8x4",
          "staggered-spider:8", "kary:2x5",    "caterpillar:12x2",
          "broom:8x8",      "random-recursive:64:1"};
}

}  // namespace cvg::build
