#include "cvg/topology/spec.hpp"

#include <charconv>

#include "cvg/topology/builders.hpp"
#include "cvg/util/check.hpp"
#include "cvg/util/rng.hpp"
#include "cvg/util/str.hpp"

namespace cvg::build {

namespace {

/// One row of the family table: grammar arity, the separator between the two
/// numeric arguments, and the minimum each argument must meet.
struct Family {
  std::string_view name;
  int arity;               // number of numeric arguments (1 or 2)
  char sep;                // separator between the two args ('x' or ':')
  std::uint64_t min0;      // minimum for args[0]
  std::uint64_t min1;      // minimum for args[1]
  const char* shape;       // usage text, e.g. "spider:<b>x<len>"
};

constexpr Family kFamilies[] = {
    {"path", 1, 0, 2, 0, "path:<n>"},
    {"star", 1, 0, 1, 0, "star:<b>"},
    {"spider", 2, 'x', 1, 1, "spider:<b>x<len>"},
    {"staggered-spider", 1, 0, 1, 0, "staggered-spider:<b>"},
    {"kary", 2, 'x', 1, 1, "kary:<arity>x<levels>"},
    {"caterpillar", 2, 'x', 1, 0, "caterpillar:<spine>x<legs>"},
    {"broom", 2, 'x', 1, 1, "broom:<handle>x<bristles>"},
    {"random-recursive", 2, ':', 2, 0, "random-recursive:<n>:<seed>"},
};

const Family* find_family(std::string_view name) {
  for (const Family& family : kFamilies) {
    if (family.name == name) return &family;
  }
  return nullptr;
}

/// Parses one canonical decimal number: digits only, no sign, no leading
/// zero (except "0" itself), no trailing garbage.  Canonical numerals make
/// `format_topology_spec` an exact inverse of the parser.
std::optional<std::uint64_t> parse_canonical_number(std::string_view text) {
  if (text.empty()) return std::nullopt;
  if (text.size() > 1 && text.front() == '0') return std::nullopt;
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

/// Node count of a parsed (family, args) pair with overflow discipline:
/// returns nullopt as soon as the count exceeds `kMaxSpecNodes`, so hostile
/// argument values can never overflow the arithmetic below.
std::optional<std::uint64_t> checked_node_count(const Family& family,
                                                const std::vector<std::uint64_t>& args) {
  const auto capped = [](std::uint64_t v) -> std::optional<std::uint64_t> {
    if (v > kMaxSpecNodes) return std::nullopt;
    return v;
  };
  if (family.name == "path") return capped(args[0]);
  if (family.name == "star") {
    // Reject before the +2: args[0] near UINT64_MAX must not wrap past the
    // ceiling check.
    if (args[0] > kMaxSpecNodes) return std::nullopt;
    return capped(args[0] + 2);
  }
  if (family.name == "spider") {
    if (args[0] > kMaxSpecNodes / args[1]) return std::nullopt;
    return capped(args[0] * args[1] + 2);
  }
  if (family.name == "staggered-spider") {
    // b(b+1)/2 + 2 > kMaxSpecNodes for every b past 2^14, well before the
    // multiplication could overflow.
    if (args[0] > (1ULL << 14)) return std::nullopt;
    return capped(args[0] * (args[0] + 1) / 2 + 2);
  }
  if (family.name == "kary") {
    // complete_kary(arity, levels) has sum_{i<levels} arity^i nodes.
    std::uint64_t count = 0;
    std::uint64_t power = 1;
    for (std::uint64_t level = 0; level < args[1]; ++level) {
      count += power;
      if (count > kMaxSpecNodes) return std::nullopt;
      if (level + 1 < args[1]) {
        if (args[0] != 0 && power > kMaxSpecNodes / args[0]) return std::nullopt;
        power *= args[0];
      }
    }
    return count;
  }
  if (family.name == "caterpillar") {
    if (args[1] >= kMaxSpecNodes) return std::nullopt;
    if (args[0] > kMaxSpecNodes / (args[1] + 1)) return std::nullopt;
    return capped(args[0] * (args[1] + 1) + 1);
  }
  if (family.name == "broom") {
    if (args[0] > kMaxSpecNodes || args[1] > kMaxSpecNodes) return std::nullopt;
    return capped(args[0] + args[1] + 1);
  }
  if (family.name == "random-recursive") return capped(args[0]);
  return std::nullopt;
}

}  // namespace

std::optional<TopologySpec> parse_topology_spec(std::string_view text,
                                                std::string& error) {
  const auto fail = [&error](std::string message) -> std::optional<TopologySpec> {
    error = std::move(message);
    return std::nullopt;
  };

  const std::size_t colon = text.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    return fail("topology spec must look like <family>:<args> (examples: " +
                join(topology_spec_examples(), ", ") + ")");
  }
  const std::string_view name = text.substr(0, colon);
  const std::string_view rest = text.substr(colon + 1);
  const Family* family = find_family(name);
  if (family == nullptr) {
    return fail("unknown topology family '" + std::string(name) +
                "' (examples: " + join(topology_spec_examples(), ", ") + ")");
  }

  TopologySpec spec;
  spec.family = std::string(name);
  if (family->arity == 1) {
    const auto value = parse_canonical_number(rest);
    if (!value) {
      return fail(std::string(family->shape) + ": '" + std::string(rest) +
                  "' is not a canonical decimal count");
    }
    spec.args = {*value};
  } else {
    const std::size_t sep = rest.find(family->sep);
    if (sep == std::string_view::npos) {
      return fail(std::string(family->shape) + ": missing '" +
                  std::string(1, family->sep) + "' separator in '" +
                  std::string(rest) + "'");
    }
    const auto first = parse_canonical_number(rest.substr(0, sep));
    const auto second = parse_canonical_number(rest.substr(sep + 1));
    if (!first || !second) {
      return fail(std::string(family->shape) + ": '" + std::string(rest) +
                  "' is not a canonical <a>" + std::string(1, family->sep) +
                  "<b> pair");
    }
    spec.args = {*first, *second};
  }

  const std::uint64_t minimums[2] = {family->min0, family->min1};
  for (std::size_t i = 0; i < spec.args.size(); ++i) {
    if (spec.args[i] < minimums[i]) {
      return fail(std::string(family->shape) + ": argument " +
                  std::to_string(i + 1) + " must be >= " +
                  std::to_string(minimums[i]) + " (got " +
                  std::to_string(spec.args[i]) + ")");
    }
  }

  const auto nodes = checked_node_count(*family, spec.args);
  if (!nodes) {
    return fail(std::string(family->shape) + ": node count exceeds the " +
                std::to_string(kMaxSpecNodes) + "-node spec ceiling");
  }
  return spec;
}

std::string format_topology_spec(const TopologySpec& spec) {
  const Family* family = find_family(spec.family);
  CVG_CHECK(family != nullptr && spec.args.size() ==
                                     static_cast<std::size_t>(family->arity))
      << "format_topology_spec: malformed spec '" << spec.family << "'";
  std::string text = spec.family + ":" + std::to_string(spec.args[0]);
  if (family->arity == 2) {
    text += family->sep;
    text += std::to_string(spec.args[1]);
  }
  return text;
}

std::uint64_t spec_node_count(const TopologySpec& spec) {
  const Family* family = find_family(spec.family);
  CVG_CHECK(family != nullptr) << "spec_node_count: unknown family '"
                               << spec.family << "'";
  const auto nodes = checked_node_count(*family, spec.args);
  CVG_CHECK(nodes.has_value())
      << "spec_node_count: '" << format_topology_spec(spec)
      << "' exceeds the spec ceiling";
  return *nodes;
}

Tree make_tree(const TopologySpec& spec) {
  const auto a = [&spec](std::size_t i) {
    return static_cast<std::size_t>(spec.args[i]);
  };
  if (spec.family == "path") return path(a(0));
  if (spec.family == "star") return star(a(0));
  if (spec.family == "spider") return spider(a(0), a(1));
  if (spec.family == "staggered-spider") return spider_staggered(a(0));
  if (spec.family == "kary") return complete_kary(a(0), a(1));
  if (spec.family == "caterpillar") return caterpillar(a(0), a(1));
  if (spec.family == "broom") return broom(a(0), a(1));
  if (spec.family == "random-recursive") {
    Xoshiro256StarStar rng(spec.args[1]);
    return random_recursive(a(0), rng);
  }
  CVG_UNREACHABLE("make_tree: unknown family '" + spec.family + "'");
}

Tree make_tree(std::string_view spec) {
  std::string error;
  const std::optional<TopologySpec> parsed = parse_topology_spec(spec, error);
  CVG_CHECK(parsed.has_value()) << "unknown topology spec '" << spec << "': "
                                << error;
  return make_tree(*parsed);
}

bool is_known_topology_spec(std::string_view spec) {
  std::string error;
  return parse_topology_spec(spec, error).has_value();
}

std::vector<std::string> topology_spec_examples() {
  return {"path:32",        "star:8",          "spider:8x4",
          "staggered-spider:8", "kary:2x5",    "caterpillar:12x2",
          "broom:8x8",      "random-recursive:64:1"};
}

}  // namespace cvg::build
