#include "cvg/topology/tree.hpp"

#include <algorithm>

#include "cvg/util/check.hpp"

namespace cvg {

Tree::Tree(std::vector<NodeId> parents) : parents_(std::move(parents)) {
  const std::size_t n = parents_.size();
  CVG_CHECK(n >= 1) << "a tree needs at least the sink";
  CVG_CHECK(parents_[0] == kNoNode) << "node 0 must be the root (sink)";
  for (NodeId v = 1; v < n; ++v) {
    CVG_CHECK(parents_[v] < n) << "node " << v << " has out-of-range parent "
                               << parents_[v];
    CVG_CHECK(parents_[v] != v) << "node " << v << " is its own parent";
  }

  // CSR children.
  child_offsets_.assign(n + 1, 0);
  for (NodeId v = 1; v < n; ++v) ++child_offsets_[parents_[v] + 1];
  for (std::size_t i = 1; i <= n; ++i) child_offsets_[i] += child_offsets_[i - 1];
  child_ids_.resize(n - 1);
  {
    std::vector<std::size_t> cursor(child_offsets_.begin(), child_offsets_.end() - 1);
    for (NodeId v = 1; v < n; ++v) child_ids_[cursor[parents_[v]]++] = v;
  }
  // Keep children sorted by id for deterministic traversal order.
  for (NodeId v = 0; v < n; ++v) {
    std::sort(child_ids_.begin() + static_cast<std::ptrdiff_t>(child_offsets_[v]),
              child_ids_.begin() + static_cast<std::ptrdiff_t>(child_offsets_[v + 1]));
  }

  // BFS from the root: computes depths and verifies connectivity/acyclicity
  // (every node is reached exactly once iff the parent vector is a tree).
  depths_.assign(n, 0);
  bfs_order_.clear();
  bfs_order_.reserve(n);
  bfs_order_.push_back(0);
  for (std::size_t head = 0; head < bfs_order_.size(); ++head) {
    const NodeId v = bfs_order_[head];
    for (const NodeId child : children(v)) {
      depths_[child] = depths_[v] + 1;
      max_depth_ = std::max(max_depth_, depths_[child]);
      bfs_order_.push_back(child);
    }
  }
  CVG_CHECK(bfs_order_.size() == n)
      << "parent vector contains a cycle or unreachable nodes ("
      << bfs_order_.size() << " of " << n << " reachable)";
}

bool Tree::is_path() const noexcept {
  for (NodeId v = 1; v < node_count(); ++v) {
    if (parents_[v] != v - 1) return false;
  }
  return true;
}

std::vector<NodeId> Tree::path_to_sink(NodeId v) const {
  CVG_CHECK(v < node_count());
  std::vector<NodeId> path;
  for (NodeId cur = v; cur != kNoNode; cur = parents_[cur]) path.push_back(cur);
  return path;
}

}  // namespace cvg
