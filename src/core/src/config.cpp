#include "cvg/core/config.hpp"

#include <algorithm>
#include <numeric>

namespace cvg {

Height Configuration::max_height() const noexcept {
  Height best = 0;
  for (const Height h : heights_) best = std::max(best, h);
  return best;
}

std::uint64_t Configuration::total_packets() const noexcept {
  std::uint64_t total = 0;
  for (const Height h : heights_) total += static_cast<std::uint64_t>(h);
  return total;
}

std::uint64_t Configuration::packets_in_range(NodeId first, NodeId last) const noexcept {
  CVG_DCHECK(first <= last);
  CVG_DCHECK(last < heights_.size());
  std::uint64_t total = 0;
  for (NodeId v = first; v <= last; ++v) {
    total += static_cast<std::uint64_t>(heights_[v]);
  }
  return total;
}

std::string Configuration::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < heights_.size(); ++i) {
    if (i != 0) out.push_back(' ');
    out += std::to_string(heights_[i]);
  }
  out.push_back(']');
  return out;
}

}  // namespace cvg
