// step.hpp is header-only; this translation unit exists so the target has a
// stable archive member and the header is compiled standalone at least once.
#include "cvg/core/step.hpp"
