#include "cvg/core/read_audit.hpp"

#include <sstream>

namespace cvg {

namespace audit_detail {

thread_local HeightReadObserver* tls_height_observer = nullptr;

}  // namespace audit_detail

std::string LocalityAuditReport::to_string() const {
  std::ostringstream out;
  out << "locality-audit policy=" << policy << " l=" << declared_locality
      << " steps=" << steps_audited << " decisions=" << decisions
      << " reads=" << reads << " checked=" << checked_reads
      << " unscoped=" << unscoped_reads
      << " max-hop=" << max_hop_distance;
  return out.str();
}

}  // namespace cvg
