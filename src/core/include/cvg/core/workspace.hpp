#pragma once

/// \file workspace.hpp
/// Per-instance step workspace: every buffer a substrate touches while
/// executing one step, allocated once at construction and only `reset()`
/// between steps.
///
/// The fixed-footprint discipline (ROADMAP; docs/ANALYSIS.md) demands that
/// the steady-state step loop perform zero heap allocations — the model's
/// nodes are buffer-constrained sensor devices, and the fastest simulator of
/// a bounded-memory system is itself bounded-memory.  Each simulator
/// (`Simulator`, `PacketSimulator`, `BidirPathSimulator`, `DagSimulator`)
/// owns one `StepWorkspace`; the `allocation_audit_test` counting allocator
/// pins the invariant that warmed-up steps never allocate through it.
///
/// Members:
///  - `record`       — the step's sparse transition record (send list +
///                     injection list), capacity retained across steps;
///  - `dense_sends`  — dense policy output scratch with the all-zero
///                     between-steps invariant (the dense engine zeroes
///                     exactly the entries it read);
///  - `occupied`     — the sparse engine's occupied set (height > 0),
///                     Briggs–Torczon so membership updates are O(1) and
///                     allocation-free.

#include <cstddef>
#include <vector>

#include "cvg/core/step.hpp"
#include "cvg/core/types.hpp"
#include "cvg/mem/sparse_set.hpp"

namespace cvg {

struct StepWorkspace {
  StepWorkspace() = default;

  /// Sizes every buffer for a topology of `nodes` nodes and an adversary
  /// that injects at most `max_injections` packets per step (c + σ).  The
  /// only allocating member besides copies; never called on the step path.
  StepWorkspace(std::size_t nodes, std::size_t max_injections)
      : dense_sends(nodes, 0), occupied(nodes) {
    record.injections.reserve(max_injections);
  }

  /// Step's transition record; `begin_step` clears it, capacity retained.
  StepRecord record;

  /// Dense policy-output scratch.  Invariant: all-zero between steps.
  std::vector<Capacity> dense_sends;

  /// Nodes with height > 0 — the sparse engine's key.
  mem::SparseSet<NodeId> occupied;

  /// Opens a new step: clears the record, retaining capacity.  O(1) plus
  /// O(previous senders) vector clears; no allocation.
  void begin_step(Step now) { record.reset(now); }

  /// Full reset to the post-construction state (occupied set emptied).
  /// `dense_sends` is already all-zero by invariant.
  void reset() {
    record.reset(0);
    occupied.clear();
  }
};

}  // namespace cvg
