#pragma once

/// \file read_audit.hpp
/// The height-read audit hook: the core-side half of the ℓ-locality wall
/// (the auditor itself lives in `cvg/audit/locality_auditor.hpp`).
///
/// Every theorem the library reproduces is a statement about *ℓ-local*
/// algorithms — each node's forwarding decision may depend only on buffer
/// heights at most ℓ hops away.  To make that contract mechanically
/// checkable, `Configuration::height` reports every read to a per-thread
/// observer when one is armed:
///
///  - `HeightReadObserver` is the observer interface (the locality auditor
///    implements it);
///  - `ScopedHeightObserver` arms an observer for the current thread, RAII
///    style, around a policy invocation;
///  - `DecisionScope` marks "the reads that follow belong to node v's
///    forwarding decision", so the observer can attribute each read to the
///    node whose decision consumed it.  The policy-layer helpers
///    (`compute_sends_per_node` and friends) and the per-node substrates
///    (bidir, DAG) place these scopes; decisions do not nest.
///
/// When no observer is armed — the default, and the only state benchmarks
/// ever run in — the hook costs one thread-local load and one predicted
/// branch per height read, and the scopes cost the same per node.
///
/// `LocalityAuditReport` lives here (not in `cvg/audit`) so that the engine
/// concept layer and `RunResult` can carry audit results without depending
/// on the audit library.

#include <cstdint>
#include <string>

#include "cvg/core/types.hpp"

namespace cvg {

class Configuration;

/// Observer of configuration height reads.  Armed per-thread via
/// `ScopedHeightObserver`; `on_height_read` fires for every
/// `Configuration::height` call on the arming thread while armed.
class HeightReadObserver {
 public:
  virtual ~HeightReadObserver() = default;

  /// Node `v`'s height was read from `config`.
  virtual void on_height_read(const Configuration& config, NodeId v) = 0;

  /// The reads that follow (until `on_decision_end`) feed node `v`'s
  /// forwarding decision.
  virtual void on_decision_begin(NodeId v) = 0;

  /// The current decision's reads are complete.
  virtual void on_decision_end() = 0;
};

namespace audit_detail {

/// The thread's armed observer; nullptr (the default) disables auditing.
extern thread_local HeightReadObserver* tls_height_observer;

}  // namespace audit_detail

/// True while a height-read observer is armed on this thread.
[[nodiscard]] inline bool height_audit_armed() noexcept {
  return audit_detail::tls_height_observer != nullptr;
}

/// Arms `observer` as this thread's height-read observer for the current
/// scope (nullptr is allowed and leaves auditing off).  Restores the
/// previously armed observer on destruction, so arming nests.
class ScopedHeightObserver {
 public:
  explicit ScopedHeightObserver(HeightReadObserver* observer) noexcept
      : previous_(audit_detail::tls_height_observer) {
    audit_detail::tls_height_observer = observer;
  }

  ScopedHeightObserver(const ScopedHeightObserver&) = delete;
  ScopedHeightObserver& operator=(const ScopedHeightObserver&) = delete;

  ~ScopedHeightObserver() { audit_detail::tls_height_observer = previous_; }

 private:
  HeightReadObserver* previous_;
};

/// Marks the enclosed height reads as inputs of node `v`'s forwarding
/// decision.  A no-op (one thread-local load and branch) when no observer is
/// armed.  Decision scopes do not nest.
class DecisionScope {
 public:
  explicit DecisionScope(NodeId v) noexcept
      : observer_(audit_detail::tls_height_observer) {
    if (observer_ != nullptr) [[unlikely]] {
      observer_->on_decision_begin(v);
    }
  }

  DecisionScope(const DecisionScope&) = delete;
  DecisionScope& operator=(const DecisionScope&) = delete;

  ~DecisionScope() {
    if (observer_ != nullptr) [[unlikely]] {
      observer_->on_decision_end();
    }
  }

 private:
  HeightReadObserver* observer_;
};

/// Cumulative result of one locality audit — what the auditor measured while
/// armed around a simulation's policy calls.  Violations abort immediately
/// via `CVG_CHECK`, so a report you can read means the audited run was clean;
/// the counters exist to prove the audit actually observed something.
struct LocalityAuditReport {
  /// Name of the audited policy.
  std::string policy;

  /// The policy's declared locality radius ℓ (−1 = centralized: reads are
  /// recorded but not checked).
  int declared_locality = 0;

  /// Steps whose policy call ran under the auditor.
  std::uint64_t steps_audited = 0;

  /// Decision scopes entered (≈ node decisions evaluated).
  std::uint64_t decisions = 0;

  /// Height reads observed in total.
  std::uint64_t reads = 0;

  /// Reads inside a decision scope — each was distance-checked.
  std::uint64_t checked_reads = 0;

  /// Reads outside any decision scope.  Not attributable to one node, hence
  /// not checkable; the black-box perturbation test covers such policies.
  std::uint64_t unscoped_reads = 0;

  /// Largest hop distance observed on any checked read (≤ ℓ, or the audit
  /// would have aborted).
  int max_hop_distance = 0;

  /// One-line summary for logs and reports.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace cvg
