#pragma once

/// \file step.hpp
/// Record of what happened during one simulated step — which packets were
/// injected and which nodes forwarded.  Consumed by the metrics layer and by
/// the proof certifier (`cvg::certify`), which needs to classify nodes as
/// up/down/steady relative to the step.

#include <algorithm>
#include <vector>

#include "cvg/core/types.hpp"

namespace cvg {

/// One forwarding event: node `node` sent `count` (≥ 1) packets to its
/// successor this step.  The sparse unit of both the step record and the
/// sparse policy entry point (`Policy::compute_sends_sparse`).
struct SendEntry {
  NodeId node = 0;
  Capacity count = 0;

  friend bool operator==(const SendEntry&, const SendEntry&) = default;
};

/// Per-step transition record.  The simulator fills one of these per step
/// (re-using the buffers); callers that need history copy it out.
///
/// Forwarding is stored *sparsely*: `sends` holds one entry per node that
/// actually forwarded, sorted by node id, with no zero-count entries.  Under
/// a rate-c adversary at most O(#occupied) nodes forward per step, so the
/// record costs O(senders) to fill and reset instead of O(n) — the point of
/// the sparse step engine.
struct StepRecord {
  /// Index of the step this record describes (first step is 0).
  Step step = 0;

  /// Nodes that received an adversarial injection this step, one entry per
  /// injected packet (a node may appear multiple times when c > 1).  Empty
  /// when the adversary stayed idle.
  std::vector<NodeId> injections;

  /// Forwarding events, sorted ascending by node id; only nodes that sent
  /// (count ≥ 1) appear.  The sink never appears: it has no outgoing link.
  std::vector<SendEntry> sends;

  /// Resets the record for a new step.  Keeps both buffers' capacity.
  void reset(Step step_index) {
    step = step_index;
    injections.clear();
    sends.clear();
  }

  /// Number of packets node `v` forwarded this step (0 if it did not send).
  /// Binary search over the sorted `sends` list.
  [[nodiscard]] Capacity sent_by(NodeId v) const noexcept {
    const auto it = std::lower_bound(
        sends.begin(), sends.end(), v,
        [](const SendEntry& e, NodeId node) { return e.node < node; });
    return (it != sends.end() && it->node == v) ? it->count : 0;
  }

  /// Sets node `v`'s send count, keeping `sends` sorted and zero-free.
  /// `k == 0` erases any existing entry.  Convenience for tests and tools
  /// that assemble records by hand; the simulator fills `sends` directly.
  void set_sent(NodeId v, Capacity k) {
    const auto it = std::lower_bound(
        sends.begin(), sends.end(), v,
        [](const SendEntry& e, NodeId node) { return e.node < node; });
    if (it != sends.end() && it->node == v) {
      if (k == 0) {
        sends.erase(it);
      } else {
        it->count = k;
      }
    } else if (k != 0) {
      sends.insert(it, SendEntry{v, k});
    }
  }

  /// Number of distinct nodes that forwarded this step.
  [[nodiscard]] std::size_t sender_count() const noexcept {
    return sends.size();
  }

  /// Number of packets injected this step.
  [[nodiscard]] std::size_t injection_count() const noexcept {
    return injections.size();
  }

  /// Count of injections that landed on node `v` this step.
  [[nodiscard]] int injections_at(NodeId v) const noexcept {
    int count = 0;
    for (const NodeId t : injections) count += (t == v) ? 1 : 0;
    return count;
  }
};

}  // namespace cvg
