#pragma once

/// \file step.hpp
/// Record of what happened during one simulated step — which packets were
/// injected and which nodes forwarded.  Consumed by the metrics layer and by
/// the proof certifier (`cvg::certify`), which needs to classify nodes as
/// up/down/steady relative to the step.

#include <vector>

#include "cvg/core/types.hpp"

namespace cvg {

/// Per-step transition record.  The simulator fills one of these per step
/// (re-using the buffers); callers that need history copy it out.
struct StepRecord {
  /// Index of the step this record describes (first step is 0).
  Step step = 0;

  /// Nodes that received an adversarial injection this step, one entry per
  /// injected packet (a node may appear multiple times when c > 1).  Empty
  /// when the adversary stayed idle.
  std::vector<NodeId> injections;

  /// `sent[v]` = number of packets node v forwarded to its successor this
  /// step (0..c).  `sent[0]` is always 0: the sink has no outgoing link.
  std::vector<Capacity> sent;

  /// Resets the record for a step over `node_count` nodes.
  void reset(Step step_index, std::size_t node_count) {
    step = step_index;
    injections.clear();
    sent.assign(node_count, 0);
  }

  /// Number of packets injected this step.
  [[nodiscard]] std::size_t injection_count() const noexcept {
    return injections.size();
  }

  /// Count of injections that landed on node `v` this step.
  [[nodiscard]] int injections_at(NodeId v) const noexcept {
    int count = 0;
    for (const NodeId t : injections) count += (t == v) ? 1 : 0;
    return count;
  }
};

}  // namespace cvg
