#pragma once

/// \file config.hpp
/// A *configuration* (paper §2): the per-node buffer heights at the start of
/// a step.  The sink (node 0) always has height 0.

#include <span>
#include <string>
#include <vector>

#include "cvg/core/read_audit.hpp"
#include "cvg/core/types.hpp"
#include "cvg/util/check.hpp"

namespace cvg {

/// Value type holding one height per node.  Cheap to copy for small n; the
/// simulator mutates it in place between steps.
class Configuration {
 public:
  Configuration() = default;

  /// All-zero configuration over `node_count` nodes.
  explicit Configuration(std::size_t node_count)
      : heights_(node_count, Height{0}) {}

  /// Configuration with explicit heights; `heights[0]` (the sink) must be 0.
  explicit Configuration(std::vector<Height> heights)
      : heights_(std::move(heights)) {
    CVG_CHECK(heights_.empty() || heights_[0] == 0) << "sink height must be 0";
  }

  [[nodiscard]] std::size_t node_count() const noexcept { return heights_.size(); }

  [[nodiscard]] Height height(NodeId v) const noexcept {
    CVG_DCHECK(v < heights_.size());
    // The ℓ-locality wall: when an observer is armed on this thread (the
    // locality auditor, around a policy call), report the read so it can be
    // checked against the policy's declared radius.  One thread-local load
    // and a predicted branch when auditing is off.
    if (audit_detail::tls_height_observer != nullptr) [[unlikely]] {
      audit_detail::tls_height_observer->on_height_read(*this, v);
    }
    return heights_[v];
  }

  /// Sets `h(v) = h`.  Disallowed for the sink (which consumes instantly).
  void set_height(NodeId v, Height h) noexcept {
    CVG_DCHECK(v < heights_.size());
    CVG_DCHECK(h >= 0);
    CVG_DCHECK(v != 0 || h == 0) << "sink height must stay 0";
    heights_[v] = h;
  }

  /// Adds `delta` to `h(v)`; the result must stay non-negative.
  void add(NodeId v, Height delta) noexcept {
    CVG_DCHECK(v < heights_.size());
    CVG_DCHECK(heights_[v] + delta >= 0);
    heights_[v] = static_cast<Height>(heights_[v] + delta);
  }

  /// Read-only view of all heights (index = node id).
  [[nodiscard]] std::span<const Height> heights() const noexcept {
    return heights_;
  }

  /// Largest buffer height over all nodes (0 for an empty network).
  [[nodiscard]] Height max_height() const noexcept;

  /// Total number of packets currently buffered in the network.
  [[nodiscard]] std::uint64_t total_packets() const noexcept;

  /// Number of packets buffered at nodes `[first, last]` (inclusive id range).
  /// Useful for the block-density accounting of the Thm 3.1 adversary.
  [[nodiscard]] std::uint64_t packets_in_range(NodeId first, NodeId last) const noexcept;

  /// Compact textual form "[0 2 1 3]" for diagnostics and golden tests.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Configuration&, const Configuration&) = default;

 private:
  std::vector<Height> heights_;
};

}  // namespace cvg
