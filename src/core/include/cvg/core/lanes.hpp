#pragma once

/// \file lanes.hpp
/// Structure-of-arrays building blocks of the lane-batched step engine
/// (`cvg/sim/lane_engine.hpp`): K independent simulations advance in
/// lockstep, with every per-node quantity stored contiguously *per lane* —
/// `plane[node * K + lane]` — so the inner loop over lanes is a stride-1
/// scan the compiler auto-vectorizes.
///
/// Three pieces live here, beneath the policy layer:
///
///  - `LanePlane<T>`: the SoA container (one `T` per (node, lane) pair);
///  - `LaneRuleKind` / `LaneRule`: a closed descriptor of the forwarding
///    rules the lane engine can execute branch-free.  A `Policy` advertises
///    its descriptor via `Policy::lane_rule()`; policies outside this closed
///    set simply return nothing and run on the scalar engine;
///  - `lane_rules::*`: the branch-free rule arithmetic itself, shared by the
///    lane kernels and written to be bit-equivalent to the `wants` lambdas in
///    `src/policy/src/standard.cpp` for every height the simulator can
///    produce (heights are never negative).  The scalar↔batch equivalence
///    suite (`tests/lane_engine_test.cpp`) pins that equivalence per rule.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cvg/core/types.hpp"
#include "cvg/util/check.hpp"

namespace cvg {

/// Forwarding rules the lane engine executes without virtual dispatch.
/// `scripts/check_invariants.py` cross-references every enumerator against
/// the lane equivalence tests, so adding a kind without pinning it fails CI.
enum class LaneRuleKind : std::uint8_t {
  Greedy,            ///< forward min(c, h) whenever non-empty (0-local)
  Downhill,          ///< forward 1 iff h(succ) <  h(v)
  DownhillOrFlat,    ///< forward 1 iff h(succ) <= h(v)
  FieLocal,          ///< forward 1 iff h(succ) == 0
  OddEven,           ///< the paper's parity rule (Algorithm 1)
  ScaledOddEven,     ///< parity on ⌊h/c⌋ buckets, moving `rate` at a time
  Gradient,          ///< forward 1 iff h(v) − h(succ) ≥ slope
  MaxWindow,         ///< forward min(c, h) iff h(v) ≥ max of next ℓ heights
  ArbitratedOddEven, ///< OddEven + sibling arbitration (Algorithm 5)
};

/// Name of a rule kind, for diagnostics and bench labels.
[[nodiscard]] constexpr const char* to_string(LaneRuleKind kind) noexcept {
  switch (kind) {
    case LaneRuleKind::Greedy: return "greedy";
    case LaneRuleKind::Downhill: return "downhill";
    case LaneRuleKind::DownhillOrFlat: return "downhill-or-flat";
    case LaneRuleKind::FieLocal: return "fie-local";
    case LaneRuleKind::OddEven: return "odd-even";
    case LaneRuleKind::ScaledOddEven: return "scaled-odd-even";
    case LaneRuleKind::Gradient: return "gradient";
    case LaneRuleKind::MaxWindow: return "max-window";
    case LaneRuleKind::ArbitratedOddEven: return "arbitrated-odd-even";
  }
  return "?";
}

/// What a policy tells the lane engine about itself: which branch-free rule
/// reproduces its `compute_sends`, plus the rule's parameter (the gradient
/// slope, the scaled rate, the window width — zero when unused) and, for the
/// arbitrated rule, which sibling-competition reading applies.
struct LaneRule {
  LaneRuleKind kind = LaneRuleKind::Greedy;
  std::int32_t param = 0;
  ArbitrationMode arbitration = ArbitrationMode::Strict;
};

/// One SoA plane: a `T` per (node, lane) pair, lanes contiguous per node.
/// This is deliberately a thin layer over `std::vector` — the lane kernels
/// work on raw rows so the per-lane loop stays a stride-1 scan.
template <typename T>
class LanePlane {
 public:
  LanePlane() = default;
  LanePlane(std::size_t nodes, std::size_t lanes, T fill = T{})
      : lanes_(lanes), data_(nodes * lanes, fill) {
    CVG_CHECK(lanes >= 1);
  }

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_; }
  [[nodiscard]] std::size_t nodes() const noexcept {
    return lanes_ == 0 ? 0 : data_.size() / lanes_;
  }

  /// Row of node `v`: `row(v)[lane]` is the value for (v, lane).
  [[nodiscard]] T* row(NodeId v) noexcept {
    return data_.data() + static_cast<std::size_t>(v) * lanes_;
  }
  [[nodiscard]] const T* row(NodeId v) const noexcept {
    return data_.data() + static_cast<std::size_t>(v) * lanes_;
  }

  [[nodiscard]] T& at(NodeId v, std::size_t lane) noexcept {
    return row(v)[lane];
  }
  [[nodiscard]] const T& at(NodeId v, std::size_t lane) const noexcept {
    return row(v)[lane];
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

 private:
  std::size_t lanes_ = 0;
  std::vector<T> data_;
};

/// Branch-free rule arithmetic.  Each function returns the *desired* send
/// count for a node with height `own` whose successor holds `succ`; the
/// kernel clamps to `min(desired, capacity, own)`, which also zeroes empty
/// nodes (heights are never negative), so no `own > 0` branch is needed.
/// Comparisons are written as integer expressions so the lane loop compiles
/// to vector compare/select instructions instead of branches.
namespace lane_rules {

[[nodiscard]] constexpr Capacity greedy(Height /*own*/, Height /*succ*/,
                                        Capacity capacity) noexcept {
  return capacity;
}

[[nodiscard]] constexpr Capacity downhill(Height own, Height succ) noexcept {
  return static_cast<Capacity>(succ < own);
}

[[nodiscard]] constexpr Capacity downhill_or_flat(Height own,
                                                  Height succ) noexcept {
  return static_cast<Capacity>(succ <= own);
}

[[nodiscard]] constexpr Capacity fie_local(Height /*own*/,
                                           Height succ) noexcept {
  return static_cast<Capacity>(succ == 0);
}

/// Odd-Even without the ternary: for `own ≥ 0`, `own & 1` is the parity, and
/// `succ < own + parity` is `succ ≤ own` when odd, `succ < own` when even —
/// exactly `OddEvenPolicy::rule`.
[[nodiscard]] constexpr Capacity odd_even(Height own, Height succ) noexcept {
  return static_cast<Capacity>(succ < own + (own & 1));
}

/// Scaled Odd-Even: the same parity comparison on ⌊h/rate⌋ buckets, moving
/// `rate` packets when the rule fires.
[[nodiscard]] constexpr Capacity scaled_odd_even(Height own, Height succ,
                                                 Capacity rate) noexcept {
  const Height own_bucket = static_cast<Height>(own / rate);
  const Height succ_bucket = static_cast<Height>(succ / rate);
  return static_cast<Capacity>(
      static_cast<Capacity>(succ_bucket < own_bucket + (own_bucket & 1)) *
      rate);
}

[[nodiscard]] constexpr Capacity gradient(Height own, Height succ,
                                          Height slope) noexcept {
  return static_cast<Capacity>(own - succ >= slope);
}

}  // namespace lane_rules

}  // namespace cvg
