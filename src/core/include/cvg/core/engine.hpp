#pragma once

/// \file engine.hpp
/// The *engine* concept: the contract every simulation substrate satisfies so
/// that one run loop, one metric-sink chain and one sweep runner serve all of
/// them (docs/MODEL.md §1b).  The library ships four models of the concept —
/// the height engine (`Simulator`), the packet engine (`PacketSimulator`),
/// the undirected-path substrate (`BidirPathSimulator`, Thm 3.3) and the DAG
/// substrate (`DagSimulator`, §6) — and each one `static_assert`s the
/// concept next to its implementation.
///
/// The contract is deliberately small:
///
///  - `config()` exposes the current height configuration;
///  - `step(injections)` executes one (inject, forward) round;
///  - `now()`, `peak_height()`, `injected()`, `delivered()` are the counters
///    every experiment reports;
///  - engines are *values*: copying one checkpoints the entire simulation
///    state, and copy-assigning restores it.  The strategic Thm 3.1
///    adversary relies on exactly this to evaluate candidate scenarios
///    before committing to one.
///
/// Optional refinements (detected per engine, never required) let the
/// generic loop surface extra observability when a substrate has it: sparse
/// step records (`RecordingEngine`), per-node peak tracking
/// (`PeakTrackingEngine`) and per-packet delay reporting
/// (`DelayReportingEngine`).

#include <concepts>
#include <cstdint>
#include <span>

#include "cvg/core/config.hpp"
#include "cvg/core/read_audit.hpp"
#include "cvg/core/step.hpp"
#include "cvg/core/types.hpp"

namespace cvg {

/// A simulation substrate the generic run layer can drive: config access,
/// one-round stepping, the standard counters, and checkpoint/restore by
/// copy.  `step` takes the step's injections (at most the substrate's rate);
/// rate-1 substrates accept spans of size ≤ 1.
template <class E>
concept Engine =
    std::copyable<E> &&
    requires(E engine, const E& const_engine,
             std::span<const NodeId> injections) {
      { const_engine.config() } -> std::same_as<const Configuration&>;
      { const_engine.now() } -> std::same_as<Step>;
      { const_engine.peak_height() } -> std::same_as<Height>;
      { const_engine.injected() } -> std::same_as<std::uint64_t>;
      { const_engine.delivered() } -> std::same_as<std::uint64_t>;
      engine.step(injections);
    };

/// Engine that exposes the sparse per-step transition record (who was
/// injected, who forwarded).  The certifier hook and the record-consuming
/// sinks need this; substrates without records are observed via their
/// configurations alone.
template <class E>
concept RecordingEngine =
    Engine<E> && requires(const E& engine) {
      { engine.last_record() } -> std::same_as<const StepRecord&>;
    };

/// Engine that tracks per-node peak heights itself (cheaper than a sink
/// recomputing them, because the engine knows which nodes rose each step).
template <class E>
concept PeakTrackingEngine =
    Engine<E> && requires(const E& engine) {
      { engine.peak_per_node() } -> std::same_as<std::span<const Height>>;
    };

/// Engine that reports the delays of packets delivered in the latest step
/// (packet engines only); feeds the delay-histogram sink.
template <class E>
concept DelayReportingEngine =
    Engine<E> && requires(const E& engine) {
      { engine.delivered_delays_last_step() } -> std::same_as<std::span<const Step>>;
    };

/// Engine that can run its policy under the ℓ-locality auditor
/// (cvg/audit/locality_auditor.hpp).  `locality_report()` returns the audit
/// counters accumulated so far, or nullptr when auditing is off — the
/// generic run layer copies a non-null report into `RunResult::locality`.
template <class E>
concept LocalityAuditingEngine =
    Engine<E> && requires(const E& engine) {
      { engine.locality_report() } -> std::same_as<const LocalityAuditReport*>;
    };

}  // namespace cvg
