#pragma once

/// \file types.hpp
/// Fundamental vocabulary types of the convergecast model.
///
/// The model follows the paper exactly (§2): a rooted in-tree of `n` nodes
/// whose root `s` is the *sink*; each step has two mini-steps — first the
/// adversary injects at most `c` packets at arbitrary nodes, then every node
/// forwards at most `c` packets along its single outgoing link (towards its
/// parent).  `h(v)`, the *height* of node `v`, is the number of packets
/// buffered at `v`; `h(s) = 0` always (the sink consumes instantly).

#include <cstdint>
#include <limits>

namespace cvg {

/// Index of a node in a topology.  By library convention the sink/root is
/// always node 0.  On a path of n nodes, node i's successor is node i-1, so
/// larger ids are further from the sink ("further left" in the paper's
/// figures, which draw the sink at the right end).
using NodeId = std::uint32_t;

/// Sentinel for "no node" (e.g. the parent of the root, or "no injection").
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Buffer height (number of packets stored at a node).  Signed so that
/// height arithmetic in the analysis code (differences, charges) is natural.
using Height = std::int32_t;

/// Discrete time, counted in whole steps since the start of the execution.
using Step = std::uint64_t;

/// Link capacity / adversary injection rate `c` (§2).  The paper's upper
/// bounds assume c = 1; the lower bound and the simulator support any c ≥ 1.
using Capacity = std::int32_t;

/// When, within a step, forwarding decisions sample buffer heights.
///
/// The paper's §4 analysis treats an injection as "merely raising the height
/// of the injected node by one" without altering which nodes send, which
/// corresponds to `DecideBeforeInjection`: decisions are a function of the
/// configuration at the start of the step.  `DecideAfterInjection` is the
/// other defensible reading (nodes observe post-injection heights) and is
/// kept as an ablation; see DESIGN.md §2 and `bench_ablations`.
enum class StepSemantics : std::uint8_t {
  DecideBeforeInjection,
  DecideAfterInjection,
};

/// How an intersection arbitrates between siblings that share a parent
/// (Algorithm 5; see DESIGN.md §2).  `WillingOnly`: the highest-priority
/// sibling *among those whose own parity rule permits sending* forwards.
/// `Strict`: only the globally highest-priority sibling may forward, even if
/// its parity rule blocks it (in which case nobody forwards to that parent).
/// For the Odd-Even parity rule the two coincide (docs/MODEL.md §1).
enum class ArbitrationMode : std::uint8_t {
  WillingOnly,
  Strict,
};

/// Name of a step-semantics value, for reports.
[[nodiscard]] constexpr const char* to_string(StepSemantics semantics) noexcept {
  switch (semantics) {
    case StepSemantics::DecideBeforeInjection: return "decide-before-injection";
    case StepSemantics::DecideAfterInjection: return "decide-after-injection";
  }
  return "?";
}

/// Name of an arbitration mode, for reports.
[[nodiscard]] constexpr const char* to_string(ArbitrationMode mode) noexcept {
  switch (mode) {
    case ArbitrationMode::WillingOnly: return "willing-only";
    case ArbitrationMode::Strict: return "strict";
  }
  return "?";
}

}  // namespace cvg
