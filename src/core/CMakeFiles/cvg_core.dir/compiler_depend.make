# Empty compiler generated dependencies file for cvg_core.
# This may be replaced when dependencies are built.
