
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/src/config.cpp" "src/core/CMakeFiles/cvg_core.dir/src/config.cpp.o" "gcc" "src/core/CMakeFiles/cvg_core.dir/src/config.cpp.o.d"
  "/root/repo/src/core/src/read_audit.cpp" "src/core/CMakeFiles/cvg_core.dir/src/read_audit.cpp.o" "gcc" "src/core/CMakeFiles/cvg_core.dir/src/read_audit.cpp.o.d"
  "/root/repo/src/core/src/step.cpp" "src/core/CMakeFiles/cvg_core.dir/src/step.cpp.o" "gcc" "src/core/CMakeFiles/cvg_core.dir/src/step.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/util/CMakeFiles/cvg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
