file(REMOVE_RECURSE
  "CMakeFiles/cvg_core.dir/src/config.cpp.o"
  "CMakeFiles/cvg_core.dir/src/config.cpp.o.d"
  "CMakeFiles/cvg_core.dir/src/read_audit.cpp.o"
  "CMakeFiles/cvg_core.dir/src/read_audit.cpp.o.d"
  "CMakeFiles/cvg_core.dir/src/step.cpp.o"
  "CMakeFiles/cvg_core.dir/src/step.cpp.o.d"
  "libcvg_core.a"
  "libcvg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
