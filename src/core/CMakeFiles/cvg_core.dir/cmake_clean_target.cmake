file(REMOVE_RECURSE
  "libcvg_core.a"
)
