file(REMOVE_RECURSE
  "CMakeFiles/cvg_audit.dir/src/blackbox.cpp.o"
  "CMakeFiles/cvg_audit.dir/src/blackbox.cpp.o.d"
  "CMakeFiles/cvg_audit.dir/src/locality_auditor.cpp.o"
  "CMakeFiles/cvg_audit.dir/src/locality_auditor.cpp.o.d"
  "libcvg_audit.a"
  "libcvg_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvg_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
