
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/audit/src/blackbox.cpp" "src/audit/CMakeFiles/cvg_audit.dir/src/blackbox.cpp.o" "gcc" "src/audit/CMakeFiles/cvg_audit.dir/src/blackbox.cpp.o.d"
  "/root/repo/src/audit/src/locality_auditor.cpp" "src/audit/CMakeFiles/cvg_audit.dir/src/locality_auditor.cpp.o" "gcc" "src/audit/CMakeFiles/cvg_audit.dir/src/locality_auditor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/core/CMakeFiles/cvg_core.dir/DependInfo.cmake"
  "/root/repo/src/topology/CMakeFiles/cvg_topology.dir/DependInfo.cmake"
  "/root/repo/src/policy/CMakeFiles/cvg_policy.dir/DependInfo.cmake"
  "/root/repo/src/util/CMakeFiles/cvg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
