file(REMOVE_RECURSE
  "libcvg_audit.a"
)
