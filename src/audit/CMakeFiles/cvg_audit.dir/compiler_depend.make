# Empty compiler generated dependencies file for cvg_audit.
# This may be replaced when dependencies are built.
