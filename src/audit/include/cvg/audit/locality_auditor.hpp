#pragma once

/// \file locality_auditor.hpp
/// The dynamic ℓ-locality wall (docs/ANALYSIS.md): an instrumented
/// height-view proxy that records every height read a policy performs while
/// computing its sends and aborts — naming the policy, the deciding node,
/// the step and the offending hop distance — the moment a read exceeds the
/// policy's declared `locality()` radius.
///
/// Mechanism: `Configuration::height` reports reads to a per-thread
/// `HeightReadObserver` (cvg/core/read_audit.hpp); the auditor implements
/// the observer, and the policy-layer helpers mark which node each read
/// serves via `DecisionScope`.  The simulators arm the auditor around
/// exactly the policy invocation of each step (`ScopedLocalityAudit`), so
/// harness reads — peak tracking, validation, the adversary — are never
/// misattributed to the policy.
///
/// The auditor is substrate-agnostic: hop distances come from a small
/// oracle selected at construction — exact tree distance for the height and
/// packet engines (via depth-aligned parent walks), |u − v| for the
/// undirected path, and breadth-first search over an explicit undirected
/// adjacency for DAGs.
///
/// Reads outside any decision scope cannot be attributed to one node and
/// are counted but not checked; the complementary black-box wall
/// (cvg/audit/blackbox.hpp) covers policies that bypass the scoped helpers.

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "cvg/core/config.hpp"
#include "cvg/core/read_audit.hpp"
#include "cvg/core/types.hpp"
#include "cvg/topology/tree.hpp"

namespace cvg {

/// Records and distance-checks the height reads of one policy on one
/// topology.  Copyable — a copied engine (checkpoint) carries an independent
/// copy of its auditor, counters and all.
class LocalityAuditor final : public HeightReadObserver {
 public:
  /// Auditor for a tree substrate: hop distance is the exact undirected
  /// tree distance.  `tree` must outlive the auditor.
  static LocalityAuditor for_tree(const Tree& tree, std::string policy_name,
                                  int declared_locality);

  /// Auditor for the undirected path on `node_count` nodes: hop distance is
  /// |u − v|.
  static LocalityAuditor for_path(std::size_t node_count,
                                  std::string policy_name,
                                  int declared_locality);

  /// Auditor for an arbitrary topology given as undirected adjacency lists
  /// (`adjacency[v]` = neighbours of v): hop distance by breadth-first
  /// search.  Used by the DAG substrate.
  static LocalityAuditor for_adjacency(std::vector<std::vector<NodeId>> adjacency,
                                       std::string policy_name,
                                       int declared_locality);

  LocalityAuditor(const LocalityAuditor&) = default;
  LocalityAuditor& operator=(const LocalityAuditor&) = default;
  LocalityAuditor(LocalityAuditor&&) = default;
  LocalityAuditor& operator=(LocalityAuditor&&) = default;
  ~LocalityAuditor() override = default;

  /// A new step's policy call is about to run under this auditor.
  void begin_step(Step step);

  /// Everything measured so far (violations abort instead of accumulating).
  [[nodiscard]] const LocalityAuditReport& report() const noexcept {
    return report_;
  }

  /// Undirected hop distance between two nodes under this auditor's oracle.
  /// Exposed for tests; audit-path cost, not simulation-path cost.
  [[nodiscard]] int hop_distance(NodeId from, NodeId to) const;

  // HeightReadObserver:
  void on_height_read(const Configuration& config, NodeId v) override;
  void on_decision_begin(NodeId v) override;
  void on_decision_end() override;

 private:
  enum class Oracle : std::uint8_t { Tree, Path, Adjacency };

  LocalityAuditor(Oracle oracle, const Tree* tree,
                  std::vector<std::vector<NodeId>> adjacency,
                  std::string policy_name, int declared_locality);

  Oracle oracle_;
  const Tree* tree_ = nullptr;                     // Oracle::Tree only
  std::vector<std::vector<NodeId>> adjacency_;     // Oracle::Adjacency only
  LocalityAuditReport report_;
  Step step_ = 0;
  NodeId focus_ = kNoNode;
};

/// Arms `auditor` (may be nullptr: auditing off) as the current thread's
/// height-read observer for the enclosing scope and stamps it with the step
/// number for diagnostics.  The simulators wrap exactly their policy calls
/// in one of these.
class ScopedLocalityAudit {
 public:
  ScopedLocalityAudit(LocalityAuditor* auditor, Step step) noexcept
      : observer_(auditor) {
    if (auditor != nullptr) auditor->begin_step(step);
  }

  ScopedLocalityAudit(const ScopedLocalityAudit&) = delete;
  ScopedLocalityAudit& operator=(const ScopedLocalityAudit&) = delete;

 private:
  ScopedHeightObserver observer_;
};

/// Undirected adjacency over `node_count` nodes from a per-node out-edge
/// view — the shape `LocalityAuditor::for_adjacency` expects.  The DAG
/// substrate feeds its `Dag::out_edges` through this.  (Lives here so the
/// audit layer does not depend on the DAG library or vice versa.)
[[nodiscard]] std::vector<std::vector<NodeId>> undirected_adjacency(
    std::size_t node_count,
    const std::function<std::span<const NodeId>(NodeId)>& out_edges);

}  // namespace cvg
