#pragma once

/// \file blackbox.hpp
/// The black-box half of the ℓ-locality wall: the read-recording auditor
/// (locality_auditor.hpp) proves that a policy's *reads* stay inside the
/// declared radius, but only for reads made inside a decision scope.  This
/// check needs no cooperation at all: it perturbs every height strictly
/// outside the ball B(v, ℓ) and asserts that node v's send is unchanged —
/// the literal definition of ℓ-locality from the paper's §2, applied to the
/// dense `compute_sends` and, when supported, the sparse
/// `compute_sends_sparse` path.

#include <cstdint>

#include "cvg/core/config.hpp"
#include "cvg/core/types.hpp"
#include "cvg/policy/policy.hpp"
#include "cvg/topology/tree.hpp"

namespace cvg {

/// Knobs for `check_blackbox_locality`.
struct BlackboxOptions {
  /// Random perturbations tried per node.
  int trials_per_node = 3;

  /// Perturbed heights are drawn uniformly from [0, max_height].
  Height max_height = 6;

  /// Also re-run every perturbation through `compute_sends_sparse` (when the
  /// policy supports it) and require the same invariance there.
  bool check_sparse = true;
};

/// Verifies that `policy` is ℓ-local in the black-box sense on `base`: for
/// every non-sink node v and every random perturbation of the heights
/// outside B(v, ℓ), the policy's send at v equals its send on `base`.
/// Aborts via `CVG_CHECK` (naming the policy, node and trial) on violation;
/// returns the number of (node, perturbation, path) comparisons made.
/// Centralized policies (`locality() < 0`) are rejected by a `CVG_CHECK` —
/// the caller should skip them.
std::uint64_t check_blackbox_locality(const Tree& tree, const Policy& policy,
                                      const Configuration& base,
                                      Capacity capacity, std::uint64_t seed,
                                      const BlackboxOptions& options = {});

}  // namespace cvg
