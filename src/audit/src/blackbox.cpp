#include "cvg/audit/blackbox.hpp"

#include <algorithm>
#include <deque>
#include <vector>

#include "cvg/util/check.hpp"
#include "cvg/util/rng.hpp"

namespace cvg {

namespace {

/// Nodes within `radius` hops of `v` in the undirected tree (including v).
/// Marks membership into `in_ball` (size n, caller-owned, reset here).
void mark_ball(const Tree& tree, NodeId v, int radius,
               std::vector<char>& in_ball) {
  std::fill(in_ball.begin(), in_ball.end(), char{0});
  std::vector<int> dist(tree.node_count(), -1);
  std::deque<NodeId> queue;
  dist[v] = 0;
  in_ball[v] = 1;
  queue.push_back(v);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    if (dist[u] == radius) continue;
    const NodeId parent = tree.parent(u);
    if (parent != kNoNode && dist[parent] == -1) {
      dist[parent] = dist[u] + 1;
      in_ball[parent] = 1;
      queue.push_back(parent);
    }
    for (const NodeId child : tree.children(u)) {
      if (dist[child] != -1) continue;
      dist[child] = dist[u] + 1;
      in_ball[child] = 1;
      queue.push_back(child);
    }
  }
}

/// Dense send vector of `policy` on `config` (no injections — the black-box
/// property quantifies over configurations, and local policies must ignore
/// the injection list anyway).
std::vector<Capacity> dense_sends(const Tree& tree, const Policy& policy,
                                  const Configuration& config,
                                  Capacity capacity) {
  std::vector<Capacity> sends(tree.node_count(), 0);
  policy.compute_sends(tree, config, {}, capacity, sends);
  return sends;
}

/// Send count of node `v` on the sparse path for `config`.
Capacity sparse_send_at(const Tree& tree, const Policy& policy,
                        const Configuration& config, Capacity capacity,
                        NodeId v) {
  std::vector<NodeId> occupied;
  for (NodeId u = 1; u < config.node_count(); ++u) {
    if (config.height(u) > 0) occupied.push_back(u);
  }
  std::vector<SendEntry> entries;
  policy.compute_sends_sparse(tree, config, occupied, capacity, entries);
  for (const SendEntry& entry : entries) {
    if (entry.node == v) return entry.count;
  }
  return 0;
}

}  // namespace

std::uint64_t check_blackbox_locality(const Tree& tree, const Policy& policy,
                                      const Configuration& base,
                                      Capacity capacity, std::uint64_t seed,
                                      const BlackboxOptions& options) {
  const std::size_t n = tree.node_count();
  CVG_CHECK(base.node_count() == n);
  const int radius = policy.locality();
  CVG_CHECK(radius >= 0) << "black-box locality check on centralized policy '"
                         << policy.name() << "'";

  const std::vector<Capacity> base_sends =
      dense_sends(tree, policy, base, capacity);
  const bool sparse = options.check_sparse && policy.supports_sparse();

  Xoshiro256StarStar rng(seed);
  std::vector<char> in_ball(n, 0);
  std::uint64_t comparisons = 0;
  for (NodeId v = 1; v < n; ++v) {
    mark_ball(tree, v, radius, in_ball);
    for (int trial = 0; trial < options.trials_per_node; ++trial) {
      Configuration perturbed = base;
      bool changed = false;
      for (NodeId w = 1; w < n; ++w) {
        if (in_ball[w]) continue;
        const auto h = static_cast<Height>(
            rng.below(static_cast<std::uint64_t>(options.max_height) + 1));
        changed = changed || h != perturbed.height(w);
        perturbed.set_height(w, h);
      }
      if (!changed) continue;  // ball covers the whole tree: nothing to test

      const std::vector<Capacity> got =
          dense_sends(tree, policy, perturbed, capacity);
      ++comparisons;
      CVG_CHECK(got[v] == base_sends[v])
          << "black-box locality violation: policy '" << policy.name()
          << "' (declared l=" << radius << ") changed its send at node " << v
          << " (" << base_sends[v] << " -> " << got[v]
          << ") under a perturbation outside B(v, l), trial " << trial
          << ", base " << base.to_string() << ", perturbed "
          << perturbed.to_string();

      if (sparse) {
        ++comparisons;
        const Capacity sparse_send =
            sparse_send_at(tree, policy, perturbed, capacity, v);
        CVG_CHECK(sparse_send == base_sends[v])
            << "black-box locality violation (sparse path): policy '"
            << policy.name() << "' (declared l=" << radius
            << ") sent " << sparse_send << " instead of " << base_sends[v]
            << " at node " << v << ", trial " << trial << ", perturbed "
            << perturbed.to_string();
      }
    }
  }
  return comparisons;
}

}  // namespace cvg
