#include "cvg/audit/locality_auditor.hpp"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <utility>

#include "cvg/util/check.hpp"

namespace cvg {

LocalityAuditor::LocalityAuditor(Oracle oracle, const Tree* tree,
                                 std::vector<std::vector<NodeId>> adjacency,
                                 std::string policy_name,
                                 int declared_locality)
    : oracle_(oracle), tree_(tree), adjacency_(std::move(adjacency)) {
  report_.policy = std::move(policy_name);
  report_.declared_locality = declared_locality;
}

LocalityAuditor LocalityAuditor::for_tree(const Tree& tree,
                                          std::string policy_name,
                                          int declared_locality) {
  return LocalityAuditor(Oracle::Tree, &tree, {}, std::move(policy_name),
                         declared_locality);
}

LocalityAuditor LocalityAuditor::for_path(std::size_t node_count,
                                          std::string policy_name,
                                          int declared_locality) {
  CVG_CHECK(node_count >= 1);
  return LocalityAuditor(Oracle::Path, nullptr, {}, std::move(policy_name),
                         declared_locality);
}

LocalityAuditor LocalityAuditor::for_adjacency(
    std::vector<std::vector<NodeId>> adjacency, std::string policy_name,
    int declared_locality) {
  return LocalityAuditor(Oracle::Adjacency, nullptr, std::move(adjacency),
                         std::move(policy_name), declared_locality);
}

void LocalityAuditor::begin_step(Step step) {
  step_ = step;
  focus_ = kNoNode;
  ++report_.steps_audited;
}

int LocalityAuditor::hop_distance(NodeId from, NodeId to) const {
  switch (oracle_) {
    case Oracle::Path: {
      const auto lo = std::min(from, to);
      const auto hi = std::max(from, to);
      return static_cast<int>(hi - lo);
    }
    case Oracle::Tree: {
      // Lift the deeper endpoint to the shallower one's depth, then walk
      // both up in lockstep until they meet — exact undirected distance,
      // O(depth), no precomputation.
      NodeId u = from;
      NodeId v = to;
      int distance = 0;
      while (tree_->depth(u) > tree_->depth(v)) {
        u = tree_->parent(u);
        ++distance;
      }
      while (tree_->depth(v) > tree_->depth(u)) {
        v = tree_->parent(v);
        ++distance;
      }
      while (u != v) {
        u = tree_->parent(u);
        v = tree_->parent(v);
        distance += 2;
      }
      return distance;
    }
    case Oracle::Adjacency: {
      if (from == to) return 0;
      // Plain BFS; audit-only cost, and audited topologies are test-sized.
      std::vector<int> dist(adjacency_.size(), -1);
      std::deque<NodeId> queue;
      dist[from] = 0;
      queue.push_back(from);
      while (!queue.empty()) {
        const NodeId u = queue.front();
        queue.pop_front();
        for (const NodeId w : adjacency_[u]) {
          if (dist[w] != -1) continue;
          dist[w] = dist[u] + 1;
          if (w == to) return dist[w];
          queue.push_back(w);
        }
      }
      CVG_UNREACHABLE("disconnected audit topology");
    }
  }
  CVG_UNREACHABLE("bad oracle");
}

void LocalityAuditor::on_decision_begin(NodeId v) {
  CVG_DCHECK(focus_ == kNoNode) << "decision scopes must not nest";
  focus_ = v;
  ++report_.decisions;
}

void LocalityAuditor::on_decision_end() { focus_ = kNoNode; }

void LocalityAuditor::on_height_read(const Configuration& /*config*/,
                                     NodeId v) {
  ++report_.reads;
  if (focus_ == kNoNode) {
    ++report_.unscoped_reads;
    return;
  }
  if (report_.declared_locality < 0) return;  // centralized: record only
  ++report_.checked_reads;
  const int distance = hop_distance(focus_, v);
  report_.max_hop_distance = std::max(report_.max_hop_distance, distance);
  CVG_CHECK(distance <= report_.declared_locality)
      << "locality violation: policy '" << report_.policy << "' (declared l="
      << report_.declared_locality << ") read the height of node " << v
      << " at hop distance " << distance << " while deciding node " << focus_
      << " in step " << step_;
}

std::vector<std::vector<NodeId>> undirected_adjacency(
    std::size_t node_count,
    const std::function<std::span<const NodeId>(NodeId)>& out_edges) {
  std::vector<std::vector<NodeId>> adjacency(node_count);
  for (NodeId v = 0; v < node_count; ++v) {
    for (const NodeId w : out_edges(v)) {
      adjacency[v].push_back(w);
      adjacency[w].push_back(v);
    }
  }
  return adjacency;
}

}  // namespace cvg
