// Sensor-network convergecast — the workload the paper's introduction
// motivates: sensing nodes (leaves) produce readings that must all reach a
// base station (the sink) with zero loss and tiny per-node buffers.
//
// Builds a random sensor tree, drives it with leaf-origin traffic plus
// occasional bursts, and compares the buffer requirements of Algorithm Tree
// against Greedy and the centralized comparator on the same trace.
//
//   $ ./sensor_network [nodes] [seed]

#include <cstdio>
#include <cstdlib>

#include "cvg/adversary/simple.hpp"
#include "cvg/policy/centralized_fie.hpp"
#include "cvg/policy/standard.hpp"
#include "cvg/report/table.hpp"
#include "cvg/sim/packet_sim.hpp"
#include "cvg/topology/builders.hpp"

namespace {

/// Leaf-origin traffic with occasional 4-packet bursts (a sensor event seen
/// by several nodes at once), within a (σ=3, ρ=1) envelope.
class SensorTraffic final : public cvg::Adversary {
 public:
  explicit SensorTraffic(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  [[nodiscard]] std::string name() const override { return "sensor-traffic"; }
  void on_simulation_start() override { rng_ = cvg::Xoshiro256StarStar(seed_); }

  void plan(const cvg::Tree& tree, const cvg::Configuration&, cvg::Step step,
            cvg::Capacity capacity, std::vector<cvg::NodeId>& out) override {
    if (leaves_.empty()) {
      for (cvg::NodeId v = 1; v < tree.node_count(); ++v) {
        if (tree.is_leaf(v)) leaves_.push_back(v);
      }
    }
    if (step % 16 == 15) {
      // Burst: one event, four readings near one leaf.
      const cvg::NodeId epicentre = leaves_[rng_.below(leaves_.size())];
      out.insert(out.end(), 4, epicentre);
    } else if (step % 16 < 8) {
      out.push_back(leaves_[rng_.below(leaves_.size())]);
      (void)capacity;
    }
  }

 private:
  std::uint64_t seed_;
  cvg::Xoshiro256StarStar rng_;
  std::vector<cvg::NodeId> leaves_;
};

struct Outcome {
  cvg::Height peak;
  double mean_delay;
  cvg::Step p99_delay;
  std::uint64_t delivered;
};

Outcome evaluate(const cvg::Tree& tree, const cvg::Policy& policy,
                 std::uint64_t seed, cvg::Step steps) {
  const cvg::SimOptions options{.capacity = 1, .burstiness = 3};
  cvg::PacketSimulator sim(tree, policy, options);
  SensorTraffic traffic(seed);
  traffic.on_simulation_start();
  std::vector<cvg::NodeId> injections;
  for (cvg::Step s = 0; s < steps; ++s) {
    injections.clear();
    traffic.plan(tree, sim.config(), s, 1, injections);
    sim.step(injections);
  }
  return {sim.peak_height(), sim.delays().mean(), sim.delays().quantile(0.99),
          sim.delivered()};
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t nodes =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  cvg::Xoshiro256StarStar rng(seed);
  const cvg::Tree tree = cvg::build::random_chainy(nodes, 0.7, rng);
  std::printf("sensor tree: %zu nodes, depth %zu, %zu leaves\n",
              tree.node_count(), tree.max_depth(), [&] {
                std::size_t leaves = 0;
                for (cvg::NodeId v = 1; v < tree.node_count(); ++v) {
                  leaves += tree.is_leaf(v);
                }
                return leaves;
              }());

  const cvg::Step steps = static_cast<cvg::Step>(40 * nodes);
  cvg::TreeOddEvenPolicy tree_odd_even;
  cvg::GreedyPolicy greedy;
  cvg::CentralizedFiePolicy centralized;

  cvg::report::Table table(
      {"policy", "peak buffer", "mean delay", "p99 delay", "delivered"});
  for (const auto& [name, policy] :
       std::initializer_list<std::pair<const char*, const cvg::Policy*>>{
           {"tree-odd-even (this paper)", &tree_odd_even},
           {"greedy", &greedy},
           {"centralized-fie [21]", &centralized}}) {
    const Outcome outcome = evaluate(tree, *policy, seed, steps);
    table.row(name, outcome.peak, outcome.mean_delay, outcome.p99_delay,
              outcome.delivered);
  }
  std::printf("%s", table.to_text().c_str());
  std::printf("\nInterpretation: the 2-local Odd-Even rule buys near-"
              "centralized buffer sizes\nwithout any global coordination — "
              "each sensor only watches its neighbours.\n");
  return 0;
}
