// Quickstart: the smallest complete use of the library.
//
// Build a directed path, pick the paper's Odd-Even policy, attack it with a
// worst-case adversary, and confirm the buffers stay logarithmic.
//
//   $ ./quickstart [n]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "cvg/adversary/staged.hpp"
#include "cvg/policy/standard.hpp"
#include "cvg/sim/runner.hpp"
#include "cvg/topology/builders.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1024;

  // A directed path of n non-sink nodes; node 0 is the sink, ids grow away
  // from it.
  const cvg::Tree tree = cvg::build::path(n + 1);

  // Algorithm 1 of the paper: "if your buffer is odd, forward when your
  // successor is equal or lower; if even, only when strictly lower."
  cvg::OddEvenPolicy policy;

  // The strongest adversary in the library: the constructive Theorem 3.1
  // strategy, which simulates its own candidate moves against the policy.
  cvg::adversary::StagedLowerBound adversary(policy, cvg::SimOptions{},
                                             /*locality=*/1);

  const cvg::RunResult result =
      cvg::run(tree, policy, adversary, adversary.recommended_steps(tree));

  const double cap = std::log2(static_cast<double>(n)) + 3;
  std::printf("path of %zu nodes, %llu steps, %llu packets injected\n", n,
              static_cast<unsigned long long>(result.steps),
              static_cast<unsigned long long>(result.injected));
  std::printf("peak buffer occupancy: %d  (Theorem 4.13 cap: log2(n)+3 = %.1f)\n",
              result.peak_height, cap);
  std::printf("packets delivered: %llu, still in flight: %llu — no loss\n",
              static_cast<unsigned long long>(result.delivered),
              static_cast<unsigned long long>(result.injected -
                                              result.delivered));
  return result.peak_height <= cap ? 0 : 1;
}
