// Open problems tour — the three questions the paper's §6 leaves open, each
// probed with the library's substrates:
//
//   1. rate c > 1:   plain Odd-Even drowns; the scaled-bucket variant holds
//                    up empirically at ~c·log n;
//   2. DAGs:         the lowest-neighbour generalization stays small on
//                    braids and diamond grids;
//   3. (related)     undirected links: Theorem 3.3 says they cannot beat the
//                    log barrier — watch the staged adversary confirm it.
//
//   $ ./open_problems

#include <cmath>
#include <cstdio>

#include "cvg/adversary/simple.hpp"
#include "cvg/adversary/staged.hpp"
#include "cvg/dag/dag_sim.hpp"
#include "cvg/policy/standard.hpp"
#include "cvg/report/table.hpp"
#include "cvg/sim/bidir.hpp"
#include "cvg/sim/runner.hpp"
#include "cvg/topology/builders.hpp"

namespace {

void probe_rate() {
  std::printf("— open problem 1: injection rate c > 1 —\n");
  const std::size_t n = 512;
  cvg::report::Table table(
      {"c", "plain odd-even", "scaled-odd-even (probe)", "c*(log2 n + 1)"});
  for (const cvg::Capacity c : {1, 2, 4}) {
    const cvg::Tree tree = cvg::build::path(n + 1);
    const cvg::SimOptions options{.capacity = c};
    cvg::OddEvenPolicy plain;
    cvg::ScaledOddEvenPolicy scaled(c);
    cvg::adversary::FixedNode far1(tree, cvg::adversary::Site::Deepest);
    cvg::adversary::StagedLowerBound staged(scaled, options, 1);
    table.row(
        c,
        cvg::run(tree, plain, far1, 4 * n, options).peak_height,
        cvg::run(tree, scaled, staged, staged.recommended_steps(tree), options)
            .peak_height,
        c * (std::log2(static_cast<double>(n)) + 1));
  }
  std::printf("%s\n", table.to_text().c_str());
}

void probe_dags() {
  std::printf("— open problem 2: DAGs —\n");
  const cvg::Dag dag = cvg::build_dag::diamond(6, 40);  // 241 nodes
  cvg::DagOddEven odd_even;
  cvg::DagGreedy greedy;
  cvg::DagSimulator a(dag, odd_even);
  cvg::DagSimulator b(dag, greedy);
  cvg::Xoshiro256StarStar rng(5);
  for (cvg::Step s = 0; s < 8 * dag.node_count(); ++s) {
    const auto t =
        static_cast<cvg::NodeId>(1 + rng.below(dag.node_count() - 1));
    a.step_inject(t);
    b.step_inject(t);
  }
  std::printf("diamond grid, %zu nodes: dag-odd-even peak %d, "
              "dag-greedy peak %d, 2*log2(n)+4 = %.0f\n\n",
              dag.node_count(), a.peak_height(), b.peak_height(),
              2 * std::log2(static_cast<double>(dag.node_count())) + 4);
}

void probe_bidir() {
  std::printf("— Theorem 3.3: undirected links —\n");
  const std::size_t n = 1024;
  cvg::BidirDiffusion diffusion;
  cvg::BidirPathSimulator sim(n + 1, diffusion);
  // Far-end then near-end pressure in long phases (the staged adversary's
  // full treatment lives in bench_bidir).
  for (cvg::Step s = 0; s < 6 * n; ++s) {
    sim.step_inject(s % 512 < 256 ? static_cast<cvg::NodeId>(n)
                                  : cvg::NodeId{1});
  }
  std::printf("balancing policy with backward links, n=%zu: peak %d "
              "(log2 n = %.0f) — still logarithmic\n",
              n, sim.peak_height(), std::log2(static_cast<double>(n)));
}

}  // namespace

int main() {
  std::printf("the paper's §6 open directions, probed empirically\n");
  std::printf("(observations, not theorems — see EXPERIMENTS.md E1d/E14/E15)\n\n");
  probe_rate();
  probe_dags();
  probe_bidir();
  return 0;
}
