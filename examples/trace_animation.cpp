// Trace animation: an ASCII view of buffer heights evolving along a path —
// the fastest way to build intuition for why Odd-Even's parity rule spreads
// pile-ups sideways instead of upwards while Greedy lets them tower.
//
//   $ ./trace_animation [policy] [n] [frames]
//
// Each frame prints the path left-to-right (sink at the right, '|'), one
// digit per node (heights above 9 print '#'), after every few steps of a
// train-and-slam attack.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cvg/adversary/killers.hpp"
#include "cvg/policy/registry.hpp"
#include "cvg/report/profile.hpp"
#include "cvg/sim/simulator.hpp"
#include "cvg/topology/builders.hpp"

int main(int argc, char** argv) {
  const std::string policy_name = argc > 1 ? argv[1] : "odd-even";
  const std::size_t n = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 72;
  const int frames = argc > 3 ? std::atoi(argv[3]) : 48;

  if (!cvg::is_known_policy(policy_name)) {
    std::fprintf(stderr, "unknown policy '%s'\n", policy_name.c_str());
    return 2;
  }
  const cvg::Tree tree = cvg::build::path(n + 1);
  const cvg::PolicyPtr policy = cvg::make_policy(policy_name);
  cvg::Simulator sim(tree, *policy);
  cvg::adversary::TrainAndSlam adversary(tree, n / 2);

  std::printf("%s vs train-and-slam on a path of %zu nodes\n", policy_name.c_str(), n);
  std::printf("left = far from sink; right = '|' is the sink; "
              "digits are buffer heights\n\n");
  const cvg::Step steps_per_frame =
      std::max<cvg::Step>(1, (3 * n) / static_cast<std::size_t>(frames));
  std::vector<cvg::NodeId> injections;
  cvg::Step now = 0;
  for (int f = 0; f < frames; ++f) {
    for (cvg::Step s = 0; s < steps_per_frame; ++s) {
      injections.clear();
      adversary.plan(tree, sim.config(), now++, 1, injections);
      sim.step(injections);
    }
    std::printf("t=%5llu  %s  peak=%d\n",
                static_cast<unsigned long long>(now),
                cvg::report::height_strip(sim.config().heights()).c_str(),
                sim.peak_height());
  }
  std::printf("\nfinal profile:\n%s",
              cvg::report::height_bars(sim.config().heights()).c_str());
  std::printf("\nfinal peak: %d — compare 'greedy' (towers), "
              "'downhill-or-flat' (sqrt ramps),\nand 'odd-even' (flat ripples)"
              " on the same attack.\n",
              sim.peak_height());
  return 0;
}
