// Certificates: run Odd-Even with the paper's proof machinery attached and
// inspect the live attachment scheme — the Figure 1 picture, regenerated
// from a real execution rather than drawn by hand.
//
//   $ ./certificates [n]
//
// Every step, the certifier rebuilds the balanced matching (Algorithm 2),
// advances the attachment scheme (Algorithms 3–4) and checks Rules 1–5; if
// the process prints a dump and exits 0, the run is *proof-carrying*: the
// observed buffers are certified ≤ log2(n) + 3.

#include <cstdio>
#include <cstdlib>

#include "cvg/adversary/staged.hpp"
#include "cvg/certify/path_certifier.hpp"
#include "cvg/policy/standard.hpp"
#include "cvg/sim/simulator.hpp"
#include "cvg/topology/builders.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 512;

  const cvg::Tree tree = cvg::build::path(n + 1);
  cvg::OddEvenPolicy policy;
  cvg::adversary::StagedLowerBound adversary(policy, cvg::SimOptions{}, 1);
  cvg::certify::PathCertifier certifier(tree, /*validate_every=*/16);

  cvg::Simulator sim(tree, policy);
  adversary.on_simulation_start();
  std::vector<cvg::NodeId> injections;
  const cvg::Step steps = adversary.recommended_steps(tree);
  for (cvg::Step s = 0; s < steps; ++s) {
    injections.clear();
    adversary.plan(tree, sim.config(), s, 1, injections);
    const cvg::StepRecord& record = sim.step(injections);
    certifier.observe(sim.config(), record);
  }
  certifier.final_validate();

  // Locate the tallest node and print its Figure-1 neighbourhood.
  cvg::NodeId tallest = 1;
  for (cvg::NodeId v = 1; v < tree.node_count(); ++v) {
    if (sim.config().height(v) > sim.config().height(tallest)) tallest = v;
  }
  std::printf("certified run: %llu steps, peak height %d, certified cap %d\n\n",
              static_cast<unsigned long long>(steps), sim.peak_height(),
              certifier.certified_bound());
  std::printf("attachment scheme around the tallest node (Figure 1):\n%s\n",
              certifier.scheme().dump_node(tallest, sim.config()).c_str());
  std::printf("total attachments in the scheme: %zu\n",
              certifier.scheme().attachment_count());
  std::printf("residues pinned by one node of height %d: %llu (Lemma 4.6: "
              "2^(h-2) - 1)\n",
              sim.config().height(tallest),
              static_cast<unsigned long long>(
                  certifier.scheme().residue_requirement(
                      sim.config().height(tallest))));
  std::printf("\nEvery lemma of §4 was machine-checked on every one of the "
              "%llu steps.\n",
              static_cast<unsigned long long>(steps));
  return 0;
}
