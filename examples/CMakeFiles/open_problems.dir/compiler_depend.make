# Empty compiler generated dependencies file for open_problems.
# This may be replaced when dependencies are built.
