file(REMOVE_RECURSE
  "CMakeFiles/open_problems.dir/open_problems.cpp.o"
  "CMakeFiles/open_problems.dir/open_problems.cpp.o.d"
  "open_problems"
  "open_problems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/open_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
