# Empty dependencies file for trace_animation.
# This may be replaced when dependencies are built.
