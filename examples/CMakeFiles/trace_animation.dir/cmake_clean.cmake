file(REMOVE_RECURSE
  "CMakeFiles/trace_animation.dir/trace_animation.cpp.o"
  "CMakeFiles/trace_animation.dir/trace_animation.cpp.o.d"
  "trace_animation"
  "trace_animation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_animation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
