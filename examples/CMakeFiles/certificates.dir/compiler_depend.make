# Empty compiler generated dependencies file for certificates.
# This may be replaced when dependencies are built.
