file(REMOVE_RECURSE
  "CMakeFiles/certificates.dir/certificates.cpp.o"
  "CMakeFiles/certificates.dir/certificates.cpp.o.d"
  "certificates"
  "certificates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certificates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
