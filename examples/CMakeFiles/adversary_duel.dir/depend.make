# Empty dependencies file for adversary_duel.
# This may be replaced when dependencies are built.
