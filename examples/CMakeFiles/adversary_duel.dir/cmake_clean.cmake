file(REMOVE_RECURSE
  "CMakeFiles/adversary_duel.dir/adversary_duel.cpp.o"
  "CMakeFiles/adversary_duel.dir/adversary_duel.cpp.o.d"
  "adversary_duel"
  "adversary_duel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversary_duel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
