// Adversary duel: watch the Theorem 3.1 staged adversary dismantle a policy
// of your choice, stage by stage.
//
//   $ ./adversary_duel [policy] [n] [locality]
//
// e.g.  ./adversary_duel downhill-or-flat 2048 1

#include <cstdio>
#include <cstdlib>

#include "cvg/adversary/staged.hpp"
#include "cvg/policy/registry.hpp"
#include "cvg/report/table.hpp"
#include "cvg/sim/runner.hpp"
#include "cvg/topology/builders.hpp"

int main(int argc, char** argv) {
  const std::string policy_name = argc > 1 ? argv[1] : "odd-even";
  const std::size_t n = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 1024;
  const int locality = argc > 3 ? std::atoi(argv[3]) : 1;

  if (!cvg::is_known_policy(policy_name)) {
    std::fprintf(stderr, "unknown policy '%s'\n", policy_name.c_str());
    return 2;
  }
  const cvg::PolicyPtr policy = cvg::make_policy(policy_name);
  if (policy->is_centralized()) {
    std::fprintf(stderr,
                 "the staged adversary cannot replay centralized policies\n");
    return 2;
  }

  const cvg::Tree tree = cvg::build::path(n + 1);
  cvg::adversary::StagedLowerBound adversary(*policy, cvg::SimOptions{},
                                             locality);
  const cvg::Step steps = adversary.recommended_steps(tree);
  std::printf("duel: %s vs staged-l%d on a path of %zu nodes (%llu steps)\n\n",
              policy_name.c_str(), locality, n,
              static_cast<unsigned long long>(steps));

  const cvg::RunResult result = cvg::run(tree, *policy, adversary, steps);

  cvg::report::Table table({"stage", "block", "block size", "avg density",
                            "proof target H_i"});
  for (const auto& stage : adversary.history()) {
    // Incremental appends rather than an operator+ chain: GCC 12's -O3
    // -Werror=restrict mis-fires on the temporary-string concatenation.
    std::string block = "[";
    block += std::to_string(stage.lo);
    block += "..";
    block += std::to_string(stage.hi);
    block += "]";
    table.row(stage.index, block, stage.hi - stage.lo + 1, stage.density,
              stage.target_density);
  }
  std::printf("%s", table.to_text().c_str());

  std::printf("\nforced peak height: %d\n", result.peak_height);
  std::printf("Theorem 3.1 floor:  %.2f (every %d-local algorithm must "
              "concede at least this)\n",
              cvg::adversary::staged_bound(n, 1, locality), locality);
  std::printf("\nTry 'odd-even' (concedes ~log2 n and no more), then "
              "'greedy' or 'fie-local'\nto watch the same adversary extract "
              "linear buffers.\n");
  return 0;
}
