// Unit tests for cvg_report: table rendering and the regression helpers the
// experiment tables rely on to classify growth curves.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "cvg/report/stats.hpp"
#include "cvg/report/profile.hpp"
#include "cvg/report/table.hpp"

namespace cvg::report {
namespace {

TEST(Table, TextAlignment) {
  Table table({"name", "n", "peak"});
  table.row("odd-even", 1024, 8);
  table.row("greedy", 16, 512);
  const std::string text = table.to_text();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("odd-even"), std::string::npos);
  EXPECT_NE(text.find("512"), std::string::npos);
  // Separator line present.
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table table({"label", "value"});
  table.row(std::string("a,b"), std::string("say \"hi\""));
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, Markdown) {
  Table table({"a", "b"});
  table.row(1, 2);
  const std::string md = table.to_markdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

TEST(Table, DoubleFormatting) {
  Table table({"x"});
  table.row(3.14159);
  EXPECT_NE(table.to_text().find("3.14"), std::string::npos);
}

TEST(TableDeathTest, RejectsWrongArity) {
  Table table({"a", "b"});
  EXPECT_DEATH(table.add_row({"only one"}), "cells");
}

TEST(Stats, LogLogSlopeRecoversExponent) {
  // y = 4 x^1.5
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    xs.push_back(x);
    ys.push_back(4.0 * std::pow(x, 1.5));
  }
  EXPECT_NEAR(loglog_slope(xs, ys), 1.5, 1e-9);
}

TEST(Stats, LogLogSlopeOfLinear) {
  std::vector<double> xs = {16, 32, 64, 128};
  std::vector<double> ys = {8, 16, 32, 64};
  EXPECT_NEAR(loglog_slope(xs, ys), 1.0, 1e-9);
}

TEST(Stats, SemilogSlopeRecoversLogCoefficient) {
  // y = 3 + 2 log2 x
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x : {4.0, 16.0, 64.0, 256.0}) {
    xs.push_back(x);
    ys.push_back(3.0 + 2.0 * std::log2(x));
  }
  EXPECT_NEAR(semilog_slope(xs, ys), 2.0, 1e-9);
}

TEST(Stats, SlopeSkipsNonPositive) {
  std::vector<double> xs = {0.0, 2.0, 4.0, 8.0};
  std::vector<double> ys = {5.0, 2.0, 4.0, 8.0};
  EXPECT_NEAR(loglog_slope(xs, ys), 1.0, 1e-9);  // first point skipped
}

TEST(Stats, SlopeDegenerateCases) {
  EXPECT_EQ(loglog_slope({}, {}), 0.0);
  const std::vector<double> one = {2.0};
  EXPECT_EQ(loglog_slope(one, one), 0.0);
  const std::vector<double> same_x = {4.0, 4.0};
  const std::vector<double> ys = {1.0, 2.0};
  EXPECT_EQ(loglog_slope(same_x, ys), 0.0);
}

TEST(Stats, GeometricSizes) {
  EXPECT_EQ(geometric_sizes(16, 128),
            (std::vector<std::size_t>{16, 32, 64, 128}));
  EXPECT_EQ(geometric_sizes(10, 45), (std::vector<std::size_t>{10, 20, 40}));
  EXPECT_EQ(geometric_sizes(8, 8), (std::vector<std::size_t>{8}));
}


TEST(Profile, HeightStrip) {
  // heights[0] is the sink; rendering is far-end-first with '|' for sink.
  const std::vector<cvg::Height> heights = {0, 3, 0, 12, 1};
  EXPECT_EQ(height_strip(heights), "1#.3|");
}

TEST(Profile, HeightStripEmptyNetwork) {
  const std::vector<cvg::Height> heights = {0, 0, 0};
  EXPECT_EQ(height_strip(heights), "..|");
}

TEST(Profile, HeightBarsShapes) {
  const std::vector<cvg::Height> heights = {0, 1, 3, 2};
  const std::string bars = height_bars(heights);
  // Three rows (tallest = 3) plus the baseline.
  EXPECT_EQ(std::count(bars.begin(), bars.end(), '\n'), 4);
  EXPECT_NE(bars.find("| sink"), std::string::npos);
  // Column order: node 3 (h=2), node 2 (h=3), node 1 (h=1).
  EXPECT_NE(bars.find(" # \n## \n###"), std::string::npos);
}

TEST(Profile, HeightBarsClipsTallBars) {
  const std::vector<cvg::Height> heights = {0, 50};
  const std::string bars = height_bars(heights, 4);
  EXPECT_NE(bars.find('^'), std::string::npos);
  EXPECT_EQ(std::count(bars.begin(), bars.end(), '\n'), 5);
}

}  // namespace
}  // namespace cvg::report
