file(REMOVE_RECURSE
  "CMakeFiles/policy_locality_test.dir/policy_locality_test.cpp.o"
  "CMakeFiles/policy_locality_test.dir/policy_locality_test.cpp.o.d"
  "policy_locality_test"
  "policy_locality_test.pdb"
  "policy_locality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_locality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
