file(REMOVE_RECURSE
  "CMakeFiles/serve_cache_test.dir/serve_cache_test.cpp.o"
  "CMakeFiles/serve_cache_test.dir/serve_cache_test.cpp.o.d"
  "serve_cache_test"
  "serve_cache_test.pdb"
  "serve_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
