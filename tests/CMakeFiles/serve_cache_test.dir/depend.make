# Empty dependencies file for serve_cache_test.
# This may be replaced when dependencies are built.
