# Empty compiler generated dependencies file for parallel_race_test.
# This may be replaced when dependencies are built.
