file(REMOVE_RECURSE
  "CMakeFiles/parallel_race_test.dir/parallel_race_test.cpp.o"
  "CMakeFiles/parallel_race_test.dir/parallel_race_test.cpp.o.d"
  "parallel_race_test"
  "parallel_race_test.pdb"
  "parallel_race_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_race_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
