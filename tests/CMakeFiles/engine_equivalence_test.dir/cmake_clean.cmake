file(REMOVE_RECURSE
  "CMakeFiles/engine_equivalence_test.dir/engine_equivalence_test.cpp.o"
  "CMakeFiles/engine_equivalence_test.dir/engine_equivalence_test.cpp.o.d"
  "engine_equivalence_test"
  "engine_equivalence_test.pdb"
  "engine_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
