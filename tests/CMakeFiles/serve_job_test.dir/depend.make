# Empty dependencies file for serve_job_test.
# This may be replaced when dependencies are built.
