file(REMOVE_RECURSE
  "CMakeFiles/serve_job_test.dir/serve_job_test.cpp.o"
  "CMakeFiles/serve_job_test.dir/serve_job_test.cpp.o.d"
  "serve_job_test"
  "serve_job_test.pdb"
  "serve_job_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_job_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
