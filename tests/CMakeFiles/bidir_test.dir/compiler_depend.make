# Empty compiler generated dependencies file for bidir_test.
# This may be replaced when dependencies are built.
