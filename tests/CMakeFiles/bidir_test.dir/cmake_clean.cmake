file(REMOVE_RECURSE
  "CMakeFiles/bidir_test.dir/bidir_test.cpp.o"
  "CMakeFiles/bidir_test.dir/bidir_test.cpp.o.d"
  "bidir_test"
  "bidir_test.pdb"
  "bidir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bidir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
