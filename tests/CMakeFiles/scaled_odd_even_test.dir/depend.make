# Empty dependencies file for scaled_odd_even_test.
# This may be replaced when dependencies are built.
