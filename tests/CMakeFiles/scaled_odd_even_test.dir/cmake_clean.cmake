file(REMOVE_RECURSE
  "CMakeFiles/scaled_odd_even_test.dir/scaled_odd_even_test.cpp.o"
  "CMakeFiles/scaled_odd_even_test.dir/scaled_odd_even_test.cpp.o.d"
  "scaled_odd_even_test"
  "scaled_odd_even_test.pdb"
  "scaled_odd_even_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaled_odd_even_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
