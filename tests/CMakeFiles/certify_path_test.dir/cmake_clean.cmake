file(REMOVE_RECURSE
  "CMakeFiles/certify_path_test.dir/certify_path_test.cpp.o"
  "CMakeFiles/certify_path_test.dir/certify_path_test.cpp.o.d"
  "certify_path_test"
  "certify_path_test.pdb"
  "certify_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certify_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
