# Empty dependencies file for certify_path_test.
# This may be replaced when dependencies are built.
