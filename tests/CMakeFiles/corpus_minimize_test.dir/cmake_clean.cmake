file(REMOVE_RECURSE
  "CMakeFiles/corpus_minimize_test.dir/corpus_minimize_test.cpp.o"
  "CMakeFiles/corpus_minimize_test.dir/corpus_minimize_test.cpp.o.d"
  "corpus_minimize_test"
  "corpus_minimize_test.pdb"
  "corpus_minimize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_minimize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
