# Empty dependencies file for corpus_minimize_test.
# This may be replaced when dependencies are built.
