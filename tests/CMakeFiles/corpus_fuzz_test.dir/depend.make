# Empty dependencies file for corpus_fuzz_test.
# This may be replaced when dependencies are built.
