file(REMOVE_RECURSE
  "CMakeFiles/corpus_fuzz_test.dir/corpus_fuzz_test.cpp.o"
  "CMakeFiles/corpus_fuzz_test.dir/corpus_fuzz_test.cpp.o.d"
  "corpus_fuzz_test"
  "corpus_fuzz_test.pdb"
  "corpus_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
