file(REMOVE_RECURSE
  "CMakeFiles/serve_service_test.dir/serve_service_test.cpp.o"
  "CMakeFiles/serve_service_test.dir/serve_service_test.cpp.o.d"
  "serve_service_test"
  "serve_service_test.pdb"
  "serve_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
