file(REMOVE_RECURSE
  "CMakeFiles/serve_json_test.dir/serve_json_test.cpp.o"
  "CMakeFiles/serve_json_test.dir/serve_json_test.cpp.o.d"
  "serve_json_test"
  "serve_json_test.pdb"
  "serve_json_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
