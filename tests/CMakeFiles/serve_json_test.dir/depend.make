# Empty dependencies file for serve_json_test.
# This may be replaced when dependencies are built.
