file(REMOVE_RECURSE
  "CMakeFiles/corpus_format_test.dir/corpus_format_test.cpp.o"
  "CMakeFiles/corpus_format_test.dir/corpus_format_test.cpp.o.d"
  "corpus_format_test"
  "corpus_format_test.pdb"
  "corpus_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
