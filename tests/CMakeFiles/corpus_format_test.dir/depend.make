# Empty dependencies file for corpus_format_test.
# This may be replaced when dependencies are built.
