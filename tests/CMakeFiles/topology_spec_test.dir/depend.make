# Empty dependencies file for topology_spec_test.
# This may be replaced when dependencies are built.
