file(REMOVE_RECURSE
  "CMakeFiles/topology_spec_test.dir/topology_spec_test.cpp.o"
  "CMakeFiles/topology_spec_test.dir/topology_spec_test.cpp.o.d"
  "topology_spec_test"
  "topology_spec_test.pdb"
  "topology_spec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
