file(REMOVE_RECURSE
  "CMakeFiles/certify_tree_test.dir/certify_tree_test.cpp.o"
  "CMakeFiles/certify_tree_test.dir/certify_tree_test.cpp.o.d"
  "certify_tree_test"
  "certify_tree_test.pdb"
  "certify_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certify_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
