# Empty compiler generated dependencies file for certify_tree_test.
# This may be replaced when dependencies are built.
