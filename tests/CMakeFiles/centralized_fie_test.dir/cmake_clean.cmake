file(REMOVE_RECURSE
  "CMakeFiles/centralized_fie_test.dir/centralized_fie_test.cpp.o"
  "CMakeFiles/centralized_fie_test.dir/centralized_fie_test.cpp.o.d"
  "centralized_fie_test"
  "centralized_fie_test.pdb"
  "centralized_fie_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centralized_fie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
