# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for centralized_fie_test.
