# Empty dependencies file for centralized_fie_test.
# This may be replaced when dependencies are built.
