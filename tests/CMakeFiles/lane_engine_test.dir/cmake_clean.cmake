file(REMOVE_RECURSE
  "CMakeFiles/lane_engine_test.dir/lane_engine_test.cpp.o"
  "CMakeFiles/lane_engine_test.dir/lane_engine_test.cpp.o.d"
  "lane_engine_test"
  "lane_engine_test.pdb"
  "lane_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lane_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
