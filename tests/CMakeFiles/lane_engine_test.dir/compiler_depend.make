# Empty compiler generated dependencies file for lane_engine_test.
# This may be replaced when dependencies are built.
