# Empty compiler generated dependencies file for certify_units_test.
# This may be replaced when dependencies are built.
