file(REMOVE_RECURSE
  "CMakeFiles/certify_units_test.dir/certify_units_test.cpp.o"
  "CMakeFiles/certify_units_test.dir/certify_units_test.cpp.o.d"
  "certify_units_test"
  "certify_units_test.pdb"
  "certify_units_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certify_units_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
