# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for certify_units_test.
