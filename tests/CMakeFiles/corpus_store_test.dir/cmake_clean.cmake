file(REMOVE_RECURSE
  "CMakeFiles/corpus_store_test.dir/corpus_store_test.cpp.o"
  "CMakeFiles/corpus_store_test.dir/corpus_store_test.cpp.o.d"
  "corpus_store_test"
  "corpus_store_test.pdb"
  "corpus_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
