# Empty dependencies file for corpus_store_test.
# This may be replaced when dependencies are built.
