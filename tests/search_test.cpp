// Unit tests for cvg_search: exhaustive reachability (exact small-n worst
// cases), schedule extraction/replay, and the beam search.

#include <gtest/gtest.h>

#include <cmath>

#include "cvg/adversary/simple.hpp"
#include "cvg/policy/registry.hpp"
#include "cvg/policy/standard.hpp"
#include "cvg/search/beam.hpp"
#include "cvg/search/exhaustive.hpp"
#include "cvg/sim/runner.hpp"
#include "cvg/topology/builders.hpp"

namespace cvg {
namespace {

TEST(Exhaustive, TrivialTwoNodePath) {
  // One non-sink node: inject, it forwards next step; worst case is height 1
  // for odd-even (decide-before semantics).
  const Tree tree = build::path(2);
  OddEvenPolicy policy;
  const auto result = search::exhaustive_worst_case(tree, policy, SimOptions{});
  EXPECT_EQ(result.peak, 1);
  EXPECT_FALSE(result.capped);
  EXPECT_FALSE(result.truncated);
}

TEST(Exhaustive, OddEvenStaysLogarithmic) {
  for (std::size_t n = 3; n <= 8; ++n) {
    const Tree tree = build::path(n);
    OddEvenPolicy policy;
    const auto result =
        search::exhaustive_worst_case(tree, policy, SimOptions{});
    EXPECT_FALSE(result.capped) << "n=" << n;
    EXPECT_FALSE(result.truncated) << "n=" << n;
    const Height bound =
        static_cast<Height>(std::log2(static_cast<double>(n))) + 3;
    EXPECT_LE(result.peak, bound) << "n=" << n;
    EXPECT_GE(result.peak, 1) << "n=" << n;
  }
}

TEST(Exhaustive, ExactWorstCaseIsMonotoneInN) {
  OddEvenPolicy policy;
  Height prev = 0;
  for (std::size_t n = 2; n <= 8; ++n) {
    const auto result = search::exhaustive_worst_case(build::path(n), policy,
                                                      SimOptions{});
    EXPECT_GE(result.peak, prev) << "n=" << n;
    prev = result.peak;
  }
}

TEST(Exhaustive, GreedyReachesHigherThanOddEven) {
  const Tree tree = build::path(7);
  GreedyPolicy greedy;
  OddEvenPolicy odd_even;
  search::SearchOptions options;
  options.height_cap = 8;
  const auto g = search::exhaustive_worst_case(tree, greedy, SimOptions{}, options);
  const auto o = search::exhaustive_worst_case(tree, odd_even, SimOptions{}, options);
  EXPECT_GE(g.peak, o.peak);
}

TEST(Exhaustive, FieLocalHitsTheCap) {
  // FIE-local is unbounded: the search must report a capped result.
  const Tree tree = build::path(6);
  FieLocalPolicy fie;
  search::SearchOptions options;
  options.height_cap = 6;
  const auto result =
      search::exhaustive_worst_case(tree, fie, SimOptions{}, options);
  EXPECT_TRUE(result.capped);
  EXPECT_GE(result.peak, 6);
}

TEST(Exhaustive, ScheduleReplayReproducesPeak) {
  const Tree tree = build::path(6);
  OddEvenPolicy policy;
  search::SearchOptions options;
  options.keep_schedule = true;
  const auto result =
      search::exhaustive_worst_case(tree, policy, SimOptions{}, options);
  ASSERT_FALSE(result.schedule.empty());

  std::vector<std::vector<NodeId>> steps;
  for (const NodeId t : result.schedule) {
    steps.push_back(t == kNoNode ? std::vector<NodeId>{}
                                 : std::vector<NodeId>{t});
  }
  adversary::Trace replay(steps);
  const RunResult run_result =
      run(tree, policy, replay, static_cast<Step>(steps.size()));
  EXPECT_EQ(run_result.peak_height, result.peak);
}

TEST(Exhaustive, WorksOnTrees) {
  const Tree tree = build::star(4);  // 6 nodes
  TreeOddEvenPolicy policy;
  const auto result = search::exhaustive_worst_case(tree, policy, SimOptions{});
  EXPECT_FALSE(result.capped);
  EXPECT_GE(result.peak, 1);
  EXPECT_LE(result.peak, 6);
}

TEST(Locality, OneLocalOddEvenFailsOnStaggeredSpider) {
  // §5's opening observation: a 1-local rule cannot coordinate siblings, so
  // all b branch heads can fire into the hub in one step.  The staggered
  // spider synchronises the arrivals under rate-1 injection: the leaf of the
  // length-L branch is injected at step b−L, so every packet reaches its
  // branch head simultaneously.
  constexpr std::size_t b = 8;
  const Tree tree = build::spider_staggered(b);

  // leaf of the length-L branch is the unique leaf at depth L+1.
  std::vector<NodeId> leaf_at_depth(b + 2, kNoNode);
  for (NodeId v = 1; v < tree.node_count(); ++v) {
    if (tree.is_leaf(v)) leaf_at_depth[tree.depth(v)] = v;
  }
  std::vector<std::vector<NodeId>> schedule;
  for (std::size_t L = b; L >= 1; --L) {
    ASSERT_NE(leaf_at_depth[L + 1], kNoNode);
  }
  for (std::size_t step = 0; step < b; ++step) {
    const std::size_t length = b - step;
    schedule.push_back({leaf_at_depth[length + 1]});
  }

  OddEvenPolicy no_arbitration;
  adversary::Trace replay1(schedule);
  const RunResult bare =
      run(tree, no_arbitration, replay1, static_cast<Step>(b + 4));
  EXPECT_GE(bare.peak_height, static_cast<Height>(b - 1))
      << "synchronised branches failed to overwhelm the hub";

  TreeOddEvenPolicy with_arbitration;
  adversary::Trace replay2(schedule);
  const RunResult arbitrated =
      run(tree, with_arbitration, replay2, static_cast<Step>(b + 4));
  EXPECT_LT(arbitrated.peak_height, bare.peak_height);
  EXPECT_LE(arbitrated.peak_height, 3);
}

TEST(Exhaustive, TruncationReported) {
  const Tree tree = build::path(8);
  GreedyPolicy greedy;
  search::SearchOptions options;
  options.max_states = 100;  // absurdly small
  const auto result =
      search::exhaustive_worst_case(tree, greedy, SimOptions{}, options);
  EXPECT_TRUE(result.truncated);
  EXPECT_LE(result.states, 101u);
}

TEST(ExhaustiveDeathTest, RejectsTooManyNodes) {
  const Tree tree = build::path(20);
  OddEvenPolicy policy;
  EXPECT_DEATH(search::exhaustive_worst_case(tree, policy, SimOptions{}),
               "at most");
}

TEST(Beam, NeverExceedsExhaustive) {
  const Tree tree = build::path(7);
  OddEvenPolicy policy;
  const auto exact = search::exhaustive_worst_case(tree, policy, SimOptions{});
  search::BeamOptions beam_options;
  beam_options.width = 32;
  beam_options.generations = 200;
  const auto beam =
      search::beam_worst_case(tree, policy, SimOptions{}, beam_options);
  EXPECT_LE(beam.peak, exact.peak);
  EXPECT_GE(beam.peak, exact.peak - 1);  // and it should come close
}

TEST(Beam, FindsGreedyLinearGrowth) {
  const Tree tree = build::path(24);
  GreedyPolicy greedy;
  search::BeamOptions options;
  options.width = 24;
  options.generations = 160;
  const auto result = search::beam_worst_case(tree, greedy, SimOptions{}, options);
  // Greedy admits Θ(n) pile-ups; the beam should find a pile of at least n/4.
  EXPECT_GE(result.peak, 6);
}

TEST(Beam, DeterministicAcrossCalls) {
  const Tree tree = build::path(10);
  OddEvenPolicy policy;
  const auto a = search::beam_worst_case(tree, policy, SimOptions{});
  const auto b = search::beam_worst_case(tree, policy, SimOptions{});
  EXPECT_EQ(a.peak, b.peak);
  EXPECT_EQ(a.peak_step, b.peak_step);
}

}  // namespace
}  // namespace cvg
