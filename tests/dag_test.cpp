// Tests for the DAG substrate: topology validation, both policies'
// per-node decisions, executor semantics, and the empirical behaviour of
// the Odd-Even generalization (the §6 question).

#include <gtest/gtest.h>

#include <cmath>

#include "cvg/dag/dag_sim.hpp"
#include "cvg/util/rng.hpp"

namespace cvg {
namespace {

TEST(Dag, PathDegenerate) {
  const Dag dag = build_dag::path(6);
  EXPECT_EQ(dag.node_count(), 6u);
  EXPECT_EQ(dag.edge_count(), 5u);
  EXPECT_EQ(dag.height_of(5), 5u);
  EXPECT_EQ(dag.max_path_length(), 5u);
  EXPECT_EQ(dag.out_degree(0), 0u);
}

TEST(Dag, DiamondStructure) {
  const Dag dag = build_dag::diamond(3, 4);  // 1 + 12 nodes
  EXPECT_EQ(dag.node_count(), 13u);
  // Level-1 nodes feed the sink; higher levels have 1 or 2 out-edges.
  EXPECT_EQ(dag.out_degree(1), 1u);
  for (NodeId v = 4; v < 13; ++v) {
    EXPECT_GE(dag.out_degree(v), 1u);
    EXPECT_LE(dag.out_degree(v), 2u);
  }
  EXPECT_EQ(dag.max_path_length(), 4u);
}

TEST(Dag, BraidHasRungs) {
  const Dag dag = build_dag::braid(2, 6, 2);
  EXPECT_EQ(dag.node_count(), 13u);
  std::size_t two_out = 0;
  for (NodeId v = 1; v < dag.node_count(); ++v) {
    two_out += dag.out_degree(v) == 2;
  }
  EXPECT_GT(two_out, 0u);
}

TEST(Dag, RandomLayeredIsValid) {
  Xoshiro256StarStar rng(9);
  const Dag dag = build_dag::random_layered(4, 8, 0.4, rng);
  EXPECT_EQ(dag.node_count(), 33u);
  EXPECT_EQ(dag.max_path_length(), 8u);
  for (NodeId v = 1; v < dag.node_count(); ++v) {
    EXPECT_GE(dag.out_degree(v), 1u);
  }
}

TEST(DagDeathTest, RejectsNonDecreasingEdge) {
  EXPECT_DEATH(Dag({{}, {0, 2}, {1}}), "does not decrease");
}

TEST(DagDeathTest, RejectsStrandedNode) {
  EXPECT_DEATH(Dag({{}, {}}), "no route to the sink");
}

TEST(DagPolicy, GreedyFansOut) {
  const Dag dag = build_dag::diamond(3, 2);
  DagGreedy greedy;
  Configuration config(dag.node_count());
  const NodeId v = 5;  // level 2, has 2 out-edges
  ASSERT_EQ(dag.out_degree(v), 2u);
  config.set_height(v, 3);
  std::vector<Capacity> sends(2, 0);
  greedy.decide(dag, config, v, sends);
  EXPECT_EQ(sends[0] + sends[1], 2);  // one per edge
}

TEST(DagPolicy, GreedyRespectsBufferContent) {
  const Dag dag = build_dag::diamond(3, 2);
  DagGreedy greedy;
  Configuration config(dag.node_count());
  const NodeId v = 5;
  config.set_height(v, 1);
  std::vector<Capacity> sends(2, 0);
  greedy.decide(dag, config, v, sends);
  EXPECT_EQ(sends[0] + sends[1], 1);
}

TEST(DagPolicy, OddEvenPicksLowestNeighbour) {
  const Dag dag = build_dag::diamond(3, 2);
  DagOddEven policy;
  Configuration config(dag.node_count());
  const NodeId v = 5;
  const auto edges = dag.out_edges(v);
  config.set_height(v, 3);
  config.set_height(edges[0], 4);
  config.set_height(edges[1], 2);
  std::vector<Capacity> sends(2, 0);
  policy.decide(dag, config, v, sends);
  EXPECT_EQ(sends[0], 0);
  EXPECT_EQ(sends[1], 1);  // odd 3 vs lowest 2: 2 <= 3, send there
}

TEST(DagPolicy, OddEvenParityBlocks) {
  const Dag dag = build_dag::path(3);
  DagOddEven policy;
  Configuration config({0, 2, 2});
  std::vector<Capacity> sends(1, 0);
  policy.decide(dag, config, 2, sends);
  EXPECT_EQ(sends[0], 0);  // even 2 vs 2: blocked
}

TEST(DagSim, ConservationOnAllFamilies) {
  Xoshiro256StarStar topo_rng(13);
  const std::vector<Dag> dags = {
      build_dag::path(12), build_dag::braid(3, 5), build_dag::diamond(4, 4),
      build_dag::random_layered(3, 6, 0.5, topo_rng)};
  for (const Dag& dag : dags) {
    for (const bool greedy_mode : {true, false}) {
      DagGreedy greedy;
      DagOddEven odd_even;
      const DagPolicy& policy =
          greedy_mode ? static_cast<const DagPolicy&>(greedy)
                      : static_cast<const DagPolicy&>(odd_even);
      DagSimulator sim(dag, policy);
      Xoshiro256StarStar rng(31);
      for (Step s = 0; s < 600; ++s) {
        const NodeId t =
            static_cast<NodeId>(1 + rng.below(dag.node_count() - 1));
        sim.step_inject(t);
        ASSERT_EQ(sim.injected(),
                  sim.delivered() + sim.config().total_packets())
            << policy.name();
      }
    }
  }
}

TEST(DagSim, PathMatchesTreeSemantics) {
  // On a path, DagOddEven must behave exactly like the directed OddEven:
  // same heights after the same injection sequence.
  const Dag dag = build_dag::path(16);
  DagOddEven policy;
  DagSimulator sim(dag, policy);
  Xoshiro256StarStar rng(3);
  std::vector<Height> expected_heights;
  // Mirror with the path simulator semantics by checking the known Odd-Even
  // invariant instead of duplicating the engine: peak stays logarithmic.
  for (Step s = 0; s < 2000; ++s) {
    sim.step_inject(static_cast<NodeId>(1 + rng.below(15)));
  }
  EXPECT_LE(sim.peak_height(), 7);  // log2(15) + 3
}

TEST(DagSim, OddEvenStaysSmallOnDags) {
  // The §6 probe: on braids and diamonds under sustained adversarial-ish
  // load, the generalized Odd-Even keeps buffers near-logarithmic while
  // Greedy piles up at the sink-adjacent bottleneck.
  const Dag dag = build_dag::diamond(4, 24);  // 97 nodes
  DagOddEven odd_even;
  DagGreedy greedy;
  DagSimulator a(dag, odd_even);
  DagSimulator b(dag, greedy);
  Xoshiro256StarStar rng(17);
  for (Step s = 0; s < 4000; ++s) {
    const NodeId t = static_cast<NodeId>(1 + rng.below(dag.node_count() - 1));
    a.step_inject(t);
    b.step_inject(t);
  }
  EXPECT_LE(a.peak_height(),
            2 * static_cast<Height>(
                    std::log2(static_cast<double>(dag.node_count()))) + 4);
  EXPECT_GE(a.delivered(), b.delivered() / 2);  // comparable throughput
}

TEST(DagSim, CheckpointCopy) {
  const Dag dag = build_dag::braid(2, 8);
  DagOddEven policy;
  DagSimulator sim(dag, policy);
  for (int i = 0; i < 40; ++i) {
    sim.step_inject(static_cast<NodeId>(dag.node_count() - 1));
  }
  DagSimulator checkpoint = sim;
  for (int i = 0; i < 25; ++i) sim.step_inject(1);
  for (int i = 0; i < 25; ++i) checkpoint.step_inject(1);
  EXPECT_EQ(sim.config(), checkpoint.config());
}

}  // namespace
}  // namespace cvg
