// Executable certification of Theorem 5.11: Algorithm Tree (Odd-Even with
// sibling priority arbitration) on directed in-trees, with the TreeCertifier
// maintaining the lines decomposition, crossover matchings (Algorithm 6) and
// the even-residue attachment scheme on every step.

#include <gtest/gtest.h>

#include <cmath>

#include "cvg/adversary/killers.hpp"
#include "cvg/adversary/seeker.hpp"
#include "cvg/adversary/simple.hpp"
#include "cvg/adversary/staged.hpp"
#include "cvg/certify/tree_certifier.hpp"
#include "cvg/policy/standard.hpp"
#include "cvg/sim/runner.hpp"
#include "cvg/topology/builders.hpp"

namespace cvg {
namespace {

Height tree_bound(std::size_t n) {
  return static_cast<Height>(2.0 * std::log2(static_cast<double>(n))) + 4;
}

Height certified_tree_run(const Tree& tree, Adversary& adversary, Step steps) {
  TreeOddEvenPolicy policy;
  certify::TreeCertifier certifier(tree, /*validate_every=*/5);
  RunResult result = run(tree, policy, adversary, steps, SimOptions{},
                         [&certifier](const Simulator& sim,
                                      const StepRecord& record) {
                           certifier.observe(sim.config(), record);
                         });
  certifier.final_validate();
  return result.peak_height;
}

TEST(CertifyTree, PathDegenerate) {
  // A path is a tree; the tree machinery must agree with the path one.
  const Tree tree = build::path(65);
  adversary::FixedNode adv(tree, adversary::Site::Deepest);
  const Height peak = certified_tree_run(tree, adv, 2000);
  EXPECT_LE(peak, tree_bound(tree.node_count()));
}

TEST(CertifyTree, SpiderFixedLeaf) {
  const Tree tree = build::spider(8, 8);
  adversary::FixedNode adv(tree, adversary::Site::Deepest);
  const Height peak = certified_tree_run(tree, adv, 3000);
  EXPECT_LE(peak, tree_bound(tree.node_count()));
}

TEST(CertifyTree, SpiderRandomLeaves) {
  const Tree tree = build::spider(6, 10);
  adversary::RandomLeaf adv(/*seed=*/42);
  const Height peak = certified_tree_run(tree, adv, 4000);
  EXPECT_LE(peak, tree_bound(tree.node_count()));
}

TEST(CertifyTree, BinaryTreeRandomUniform) {
  const Tree tree = build::complete_kary(2, 6);  // 63 nodes
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    adversary::RandomUniform adv(seed);
    const Height peak = certified_tree_run(tree, adv, 2000);
    EXPECT_LE(peak, tree_bound(tree.node_count())) << "seed " << seed;
  }
}

TEST(CertifyTree, TernaryTreePileOn) {
  const Tree tree = build::complete_kary(3, 4);  // 40 nodes
  adversary::PileOn adv;
  const Height peak = certified_tree_run(tree, adv, 3000);
  EXPECT_LE(peak, tree_bound(tree.node_count()));
}

TEST(CertifyTree, CaterpillarRoundRobin) {
  const Tree tree = build::caterpillar(12, 3);
  std::vector<NodeId> leaves;
  for (NodeId v = 1; v < tree.node_count(); ++v) {
    if (tree.is_leaf(v)) leaves.push_back(v);
  }
  adversary::RoundRobin adv(leaves);
  const Height peak = certified_tree_run(tree, adv, 3000);
  EXPECT_LE(peak, tree_bound(tree.node_count()));
}

TEST(CertifyTree, BroomFeedTheBlock) {
  const Tree tree = build::broom(10, 8);
  adversary::FeedTheBlock adv;
  const Height peak = certified_tree_run(tree, adv, 3000);
  EXPECT_LE(peak, tree_bound(tree.node_count()));
}

TEST(CertifyTree, RandomTreesRandomTraffic) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Xoshiro256StarStar rng(seed * 977);
    const Tree tree = build::random_chainy(50, 0.6, rng);
    adversary::RandomUniform adv(seed, /*idle_probability=*/0.15);
    const Height peak = certified_tree_run(tree, adv, 1500);
    EXPECT_LE(peak, tree_bound(tree.node_count())) << "seed " << seed;
  }
}

TEST(CertifyTree, StarOfDepthOne) {
  const Tree tree = build::star(12);
  adversary::RandomLeaf adv(7);
  const Height peak = certified_tree_run(tree, adv, 1000);
  EXPECT_LE(peak, tree_bound(tree.node_count()));
}

TEST(CertifyTree, StagedAdversaryAlongTheSpine) {
  // The strongest tree adversary we have: the Thm 3.1 construction played
  // along the deepest root-leaf path of a caterpillar, fully certified.
  const Tree tree = build::caterpillar(64, 2);
  TreeOddEvenPolicy policy;
  adversary::StagedLowerBound adv(policy, SimOptions{}, /*locality=*/2);
  certify::TreeCertifier certifier(tree, /*validate_every=*/9);
  const Step steps = adv.recommended_steps(tree);
  RunResult result = run(tree, policy, adv, steps, SimOptions{},
                         [&certifier](const Simulator& sim,
                                      const StepRecord& record) {
                           certifier.observe(sim.config(), record);
                         });
  certifier.final_validate();
  EXPECT_LE(result.peak_height, tree_bound(tree.node_count()));
  EXPECT_GE(result.peak_height, 3);  // the adversary achieves real pressure
}

TEST(CertifyTree, HeightSeekerOnSpider) {
  const Tree tree = build::spider(4, 5);
  TreeOddEvenPolicy policy;
  adversary::HeightSeeker adv(policy, SimOptions{}, /*lookahead=*/3);
  const Height peak = certified_tree_run(tree, adv, 800);
  EXPECT_LE(peak, tree_bound(tree.node_count()));
}

TEST(CertifyTree, ArbitrationModesAreExecutionEquivalent) {
  // A small theorem the differential harness verifies: for the Odd-Even
  // parity rule, strict and willing-only arbitration produce *identical*
  // executions.  Proof sketch: if the tallest sibling g is parity-blocked
  // by its parent p, every shorter sibling w is blocked too — w odd firing
  // needs h(p) ≤ h(w) ≤ h(g), contradicting g's block unless
  // h(p) = h(w) = h(g), which requires w and g to have the same height but
  // opposite parities, impossible.  So the candidate sets only ever differ
  // when nobody can send anyway.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Xoshiro256StarStar topo_rng(seed * 131);
    const Tree tree = build::random_chainy(60, 0.5, topo_rng);
    TreeOddEvenPolicy strict(ArbitrationMode::Strict);
    TreeOddEvenPolicy willing(ArbitrationMode::WillingOnly);
    Simulator a(tree, strict);
    Simulator b(tree, willing);
    adversary::RandomUniform adv(seed);
    adv.on_simulation_start();
    std::vector<NodeId> inj;
    for (Step s = 0; s < 1500; ++s) {
      inj.clear();
      adv.plan(tree, a.config(), s, 1, inj);
      a.step(inj);
      b.step(inj);
      ASSERT_EQ(a.config(), b.config()) << "seed " << seed << " step " << s;
    }
  }
}

TEST(CertifyTree, WillingOnlyArbitrationCertifiesToo) {
  // Corollary of the equivalence above: the willing-only variant passes the
  // full certification as well.
  const Tree tree = build::spider(5, 7);
  TreeOddEvenPolicy policy(ArbitrationMode::WillingOnly);
  adversary::RandomLeaf adv(99);
  certify::TreeCertifier certifier(tree, 5);
  RunResult result = run(tree, policy, adv, 2500, SimOptions{},
                         [&certifier](const Simulator& sim,
                                      const StepRecord& record) {
                           certifier.observe(sim.config(), record);
                         });
  certifier.final_validate();
  EXPECT_LE(result.peak_height, tree_bound(tree.node_count()));
}

}  // namespace
}  // namespace cvg
