// Conformance tests for the ℓ-locality wall (docs/ANALYSIS.md): every
// registered policy runs under the read-recording auditor on all four
// substrates — height engine (dense and sparse), packet engine, undirected
// path and DAG — and under the black-box perturbation check.  Two deliberate
// violators verify that each half of the wall actually fires: an over-reading
// policy is caught by the auditor with a diagnostic naming the policy, node,
// step and hop distance, and a policy whose sends *depend* on far heights
// (without ever tagging its reads) is caught by the black-box check.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cvg/audit/blackbox.hpp"
#include "cvg/audit/locality_auditor.hpp"
#include "cvg/dag/dag_sim.hpp"
#include "cvg/policy/registry.hpp"
#include "cvg/sim/bidir.hpp"
#include "cvg/sim/engine_run.hpp"
#include "cvg/sim/packet_sim.hpp"
#include "cvg/sim/simulator.hpp"
#include "cvg/topology/builders.hpp"
#include "cvg/util/rng.hpp"

namespace cvg {
namespace {

/// Every policy the registry can name, including one instance of each
/// parameterized family, so nothing ships unaudited.
std::vector<std::string> audited_policy_names() {
  std::vector<std::string> names = standard_policy_names();
  names.insert(names.end(), {"max-window-2", "max-window-3", "gradient-0",
                             "gradient-2", "scaled-odd-even-2"});
  return names;
}

/// The audited tree topologies: a path, a spider (the §5 hub shape) and the
/// staggered synchronisation gadget — between them every registered policy
/// exercises both its helper paths and sibling arbitration.
std::vector<Tree> audited_trees() {
  std::vector<Tree> trees;
  trees.push_back(build::path(16));
  trees.push_back(build::spider(4, 4));
  trees.push_back(build::spider_staggered(4));
  return trees;
}

/// Drives `sim` for `steps` rounds with reproducible random injections
/// (idling one step in five so buffers drain through interesting states).
template <typename Sim>
void drive_random(Sim& sim, std::size_t node_count, int steps,
                  std::uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  for (int s = 0; s < steps; ++s) {
    const NodeId target = static_cast<NodeId>(rng.below(node_count));
    sim.step_inject(s % 5 == 4 ? kNoNode : target);
  }
}

TEST(PolicyLocalityTest, HeightEngineEveryPolicyAuditClean) {
  constexpr int kSteps = 160;
  for (const std::string& name : audited_policy_names()) {
    const PolicyPtr policy = make_policy(name);
    for (const Tree& tree : audited_trees()) {
      for (const SparseMode mode :
           {SparseMode::Never, SparseMode::Always, SparseMode::Auto}) {
        SimOptions options;
        options.capacity = 2;
        options.validate = true;
        options.sparse_mode = mode;
        options.audit_locality = true;
        Simulator sim(tree, *policy, options);
        drive_random(sim, tree.node_count(), kSteps, /*seed=*/17);

        const LocalityAuditReport* report = sim.locality_report();
        ASSERT_NE(report, nullptr) << name;
        EXPECT_EQ(report->policy, name);
        EXPECT_EQ(report->steps_audited, static_cast<std::uint64_t>(kSteps))
            << name;
        EXPECT_GT(report->reads, 0u) << name;
        if (policy->is_centralized()) {
          EXPECT_EQ(report->declared_locality, -1) << name;
          EXPECT_EQ(report->checked_reads, 0u) << name;
        } else {
          EXPECT_GT(report->decisions, 0u) << name;
          EXPECT_GT(report->checked_reads, 0u) << name;
          EXPECT_LE(report->max_hop_distance, policy->locality()) << name;
        }
      }
    }
  }
}

TEST(PolicyLocalityTest, PacketEngineEveryPolicyAuditClean) {
  constexpr int kSteps = 120;
  const Tree tree = build::spider(3, 3);
  for (const std::string& name : audited_policy_names()) {
    const PolicyPtr policy = make_policy(name);
    SimOptions options;
    options.validate = true;
    options.audit_locality = true;
    PacketSimulator sim(tree, *policy, options);
    drive_random(sim, tree.node_count(), kSteps, /*seed=*/23);

    const LocalityAuditReport* report = sim.locality_report();
    ASSERT_NE(report, nullptr) << name;
    EXPECT_EQ(report->policy, name);
    EXPECT_EQ(report->steps_audited, static_cast<std::uint64_t>(kSteps))
        << name;
    if (!policy->is_centralized()) {
      EXPECT_LE(report->max_hop_distance, policy->locality()) << name;
    }
  }
}

TEST(PolicyLocalityTest, BidirSubstrateAuditClean) {
  constexpr int kSteps = 150;
  constexpr std::size_t kNodes = 12;
  const BidirOddEven odd_even;
  const BidirDiffusion diffusion;
  for (const BidirPolicy* policy :
       {static_cast<const BidirPolicy*>(&odd_even),
        static_cast<const BidirPolicy*>(&diffusion)}) {
    BidirPathSimulator sim(kNodes, *policy, /*audit_locality=*/true);
    drive_random(sim, kNodes, kSteps, /*seed=*/29);

    const LocalityAuditReport* report = sim.locality_report();
    ASSERT_NE(report, nullptr) << policy->name();
    EXPECT_EQ(report->policy, policy->name());
    EXPECT_EQ(report->steps_audited, static_cast<std::uint64_t>(kSteps));
    EXPECT_GT(report->decisions, 0u);
    EXPECT_LE(report->max_hop_distance, 1) << policy->name();
    EXPECT_EQ(report->unscoped_reads, 0u) << policy->name();
  }
}

TEST(PolicyLocalityTest, DagSubstrateAuditClean) {
  constexpr int kSteps = 120;
  const DagGreedy greedy;
  const DagOddEven odd_even;
  std::vector<Dag> dags;
  dags.push_back(build_dag::path(8));
  dags.push_back(build_dag::braid(3, 5));
  dags.push_back(build_dag::diamond(3, 4));
  for (const DagPolicy* policy : {static_cast<const DagPolicy*>(&greedy),
                                  static_cast<const DagPolicy*>(&odd_even)}) {
    for (const Dag& dag : dags) {
      DagSimulator sim(dag, *policy, /*audit_locality=*/true);
      drive_random(sim, dag.node_count(), kSteps, /*seed=*/31);

      const LocalityAuditReport* report = sim.locality_report();
      ASSERT_NE(report, nullptr) << policy->name();
      EXPECT_EQ(report->policy, policy->name());
      EXPECT_EQ(report->steps_audited, static_cast<std::uint64_t>(kSteps));
      EXPECT_GT(report->decisions, 0u);
      EXPECT_LE(report->max_hop_distance, policy->locality())
          << policy->name();
    }
  }
}

TEST(PolicyLocalityTest, RunResultCarriesAuditReport) {
  const Tree tree = build::path(8);
  const PolicyPtr policy = make_policy("odd-even");
  const auto inject = [&tree](const Configuration&, Step,
                              std::vector<NodeId>& out) {
    out.push_back(static_cast<NodeId>(tree.node_count() - 1));
  };

  SimOptions audited;
  audited.audit_locality = true;
  Simulator sim_on(tree, *policy, audited);
  const RunResult with_audit = run_engine(sim_on, inject, 50, nullptr);
  ASSERT_TRUE(with_audit.locality.has_value());
  EXPECT_EQ(with_audit.locality->policy, "odd-even");
  EXPECT_EQ(with_audit.locality->steps_audited, 50u);
  EXPECT_LE(with_audit.locality->max_hop_distance, 1);
  EXPECT_FALSE(with_audit.locality->to_string().empty());

  Simulator sim_off(tree, *policy, SimOptions{});
  const RunResult without_audit = run_engine(sim_off, inject, 50, nullptr);
  EXPECT_FALSE(without_audit.locality.has_value());
}

TEST(PolicyLocalityTest, TreeOracleMatchesBfsOracle) {
  const Tree tree = build::spider_staggered(4);
  const std::size_t n = tree.node_count();
  std::vector<std::vector<NodeId>> adjacency(n);
  for (NodeId v = 1; v < n; ++v) {
    adjacency[v].push_back(tree.parent(v));
    adjacency[tree.parent(v)].push_back(v);
  }
  const LocalityAuditor by_tree = LocalityAuditor::for_tree(tree, "probe", 1);
  const LocalityAuditor by_bfs =
      LocalityAuditor::for_adjacency(adjacency, "probe", 1);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(by_tree.hop_distance(u, v), by_bfs.hop_distance(u, v))
          << "u=" << u << " v=" << v;
    }
  }
}

TEST(PolicyLocalityTest, PathOracleIsAbsoluteDifference) {
  const LocalityAuditor oracle = LocalityAuditor::for_path(10, "probe", 1);
  EXPECT_EQ(oracle.hop_distance(3, 3), 0);
  EXPECT_EQ(oracle.hop_distance(2, 7), 5);
  EXPECT_EQ(oracle.hop_distance(7, 2), 5);
  EXPECT_EQ(oracle.hop_distance(0, 9), 9);
}

TEST(PolicyLocalityTest, BlackboxInvarianceHoldsForRegisteredPolicies) {
  for (const std::string& name : audited_policy_names()) {
    const PolicyPtr policy = make_policy(name);
    if (policy->is_centralized()) continue;  // no radius to test against
    for (const Tree& tree : audited_trees()) {
      Xoshiro256StarStar rng(/*seed=*/41);
      Configuration base(tree.node_count());
      for (NodeId v = 1; v < tree.node_count(); ++v) {
        base.set_height(v, static_cast<Height>(rng.below(5)));
      }
      const std::uint64_t comparisons = check_blackbox_locality(
          tree, *policy, base, /*capacity=*/2, /*seed=*/43);
      EXPECT_GT(comparisons, 0u) << name;
    }
  }
}

// ---------------------------------------------------------------------------
// Deliberate violators: each half of the wall must actually fire.
// ---------------------------------------------------------------------------

/// Declares ℓ = 1 but reads a height three hops away inside its decision
/// scope — the auditor must abort naming policy, node, step and distance.
class PeekingPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "peeking"; }
  [[nodiscard]] int locality() const override { return 1; }
  void compute_sends(const Tree& tree, const Configuration& heights,
                     std::span<const NodeId> /*injections*/, Capacity capacity,
                     std::span<Capacity> sends) const override {
    const std::size_t n = tree.node_count();
    for (NodeId v = 1; v < n; ++v) {
      const DecisionScope audit_scope(v);
      const Height own = heights.height(v);
      NodeId far = v;
      for (int hop = 0; hop < 3 && far != kNoNode; ++hop) {
        far = tree.parent(far);
      }
      if (far != kNoNode) (void)heights.height(far);  // the 3-hop read
      if (own > 0) sends[v] = std::min(capacity, static_cast<Capacity>(own));
    }
  }
};

TEST(PolicyLocalityDeathTest, AuditorCatchesOverReadingPolicy) {
  const Tree tree = build::path(8);
  const PeekingPolicy policy;
  SimOptions options;
  options.audit_locality = true;
  Simulator sim(tree, policy, options);
  EXPECT_DEATH(sim.step_inject(7),
               "locality violation: policy 'peeking'.*hop distance 3.*"
               "in step 0");
}

/// Never tags its reads (so the auditor can only count them as unscoped)
/// but genuinely *depends* on a height three hops away: node v forwards
/// only when the height at its third ancestor is even.  The black-box
/// perturbation check must catch this; the auditor must not abort.
class CheatingPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "cheating"; }
  [[nodiscard]] int locality() const override { return 1; }
  void compute_sends(const Tree& tree, const Configuration& heights,
                     std::span<const NodeId> /*injections*/, Capacity capacity,
                     std::span<Capacity> sends) const override {
    const std::size_t n = tree.node_count();
    for (NodeId v = 1; v < n; ++v) {
      const Height own = heights.height(v);
      if (own <= 0) continue;
      NodeId far = v;
      for (int hop = 0; hop < 3 && far != kNoNode; ++hop) {
        far = tree.parent(far);
      }
      const bool go = far == kNoNode || heights.height(far) % 2 == 0;
      if (go) sends[v] = std::min(capacity, static_cast<Capacity>(own));
    }
  }
};

TEST(PolicyLocalityDeathTest, BlackboxCatchesUntaggedDependence) {
  const Tree tree = build::path(10);
  const CheatingPolicy policy;
  Configuration base(tree.node_count());
  for (NodeId v = 1; v < tree.node_count(); ++v) base.set_height(v, 2);
  BlackboxOptions options;
  options.trials_per_node = 8;
  EXPECT_DEATH((void)check_blackbox_locality(tree, policy, base,
                                             /*capacity=*/1, /*seed=*/47,
                                             options),
               "black-box locality violation: policy 'cheating'");
}

TEST(PolicyLocalityTest, AuditorCountsButDoesNotCheckUnscopedReads) {
  const Tree tree = build::path(10);
  const CheatingPolicy policy;  // far reads, never inside a DecisionScope
  SimOptions options;
  options.audit_locality = true;
  Simulator sim(tree, policy, options);
  drive_random(sim, tree.node_count(), 40, /*seed=*/53);  // must not abort

  const LocalityAuditReport* report = sim.locality_report();
  ASSERT_NE(report, nullptr);
  EXPECT_GT(report->unscoped_reads, 0u);
  EXPECT_EQ(report->checked_reads, 0u);
  EXPECT_EQ(report->decisions, 0u);
}

TEST(PolicyLocalityDeathTest, BlackboxRejectsCentralizedPolicies) {
  const Tree tree = build::path(4);
  const PolicyPtr policy = make_policy("centralized-fie");
  const Configuration base(tree.node_count());
  EXPECT_DEATH((void)check_blackbox_locality(tree, *policy, base,
                                             /*capacity=*/1, /*seed=*/59),
               "centralized");
}

}  // namespace
}  // namespace cvg
