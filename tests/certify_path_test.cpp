// Executable certification of Theorem 4.13: run Odd-Even on directed paths
// under a battery of adversaries with the PathCertifier attached.  Every
// lemma-level CVG_CHECK inside the certifier doubles as an assertion here —
// if the run completes, the balanced matching (Claim 1, Lemmas 4.3/4.4), the
// attachment-scheme rules (Rules 1–5), fullness, and the residue-count bound
// (Lemmas 4.6/4.7) all held on every step.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "cvg/adversary/killers.hpp"
#include "cvg/adversary/seeker.hpp"
#include "cvg/adversary/simple.hpp"
#include "cvg/adversary/staged.hpp"
#include "cvg/certify/path_certifier.hpp"
#include "cvg/policy/standard.hpp"
#include "cvg/sim/runner.hpp"
#include "cvg/topology/builders.hpp"

namespace cvg {
namespace {

Height log2_bound(std::size_t n) {
  return static_cast<Height>(std::log2(static_cast<double>(n))) + 3;
}

/// Runs Odd-Even with the certifier attached; returns the peak height.
Height certified_run(const Tree& tree, Adversary& adversary, Step steps) {
  OddEvenPolicy policy;
  certify::PathCertifier certifier(tree, /*validate_every=*/7);
  RunResult result = run(tree, policy, adversary, steps, SimOptions{},
                         [&certifier](const Simulator& sim,
                                      const StepRecord& record) {
                           certifier.observe(sim.config(), record);
                         });
  certifier.final_validate();
  return result.peak_height;
}

TEST(CertifyPath, FixedDeepestInjection) {
  const Tree tree = build::path(65);
  adversary::FixedNode adv(tree, adversary::Site::Deepest);
  const Height peak = certified_run(tree, adv, 2000);
  EXPECT_LE(peak, log2_bound(tree.node_count()));
}

TEST(CertifyPath, FixedSinkChildInjection) {
  const Tree tree = build::path(65);
  adversary::FixedNode adv(tree, adversary::Site::SinkChild);
  const Height peak = certified_run(tree, adv, 2000);
  EXPECT_LE(peak, log2_bound(tree.node_count()));
}

TEST(CertifyPath, FixedMiddleInjection) {
  const Tree tree = build::path(64);
  adversary::FixedNode adv(tree, adversary::Site::Middle);
  const Height peak = certified_run(tree, adv, 2000);
  EXPECT_LE(peak, log2_bound(tree.node_count()));
}

TEST(CertifyPath, TrainAndSlam) {
  const Tree tree = build::path(128);
  adversary::TrainAndSlam adv(tree);
  const Height peak = certified_run(tree, adv, 1000);
  EXPECT_LE(peak, log2_bound(tree.node_count()));
}

TEST(CertifyPath, Alternator) {
  const Tree tree = build::path(96);
  adversary::Alternator adv(tree, 17);
  const Height peak = certified_run(tree, adv, 3000);
  EXPECT_LE(peak, log2_bound(tree.node_count()));
}

TEST(CertifyPath, PileOn) {
  const Tree tree = build::path(80);
  adversary::PileOn adv;
  const Height peak = certified_run(tree, adv, 3000);
  EXPECT_LE(peak, log2_bound(tree.node_count()));
}

TEST(CertifyPath, FeedTheBlock) {
  const Tree tree = build::path(80);
  adversary::FeedTheBlock adv;
  const Height peak = certified_run(tree, adv, 3000);
  EXPECT_LE(peak, log2_bound(tree.node_count()));
}

TEST(CertifyPath, StagedLowerBoundAdversary) {
  const Tree tree = build::path(129);
  OddEvenPolicy policy;
  adversary::StagedLowerBound adv(policy, SimOptions{}, /*locality=*/1);
  const Step steps = adv.recommended_steps(tree);
  const Height peak = certified_run(tree, adv, steps);
  EXPECT_LE(peak, log2_bound(tree.node_count()));
  // The staged adversary must also achieve its guarantee against Odd-Even.
  EXPECT_GE(peak,
            static_cast<Height>(
                std::floor(adversary::staged_bound(tree.node_count() - 1, 1, 1))));
}

TEST(CertifyPath, HeightSeekerLookahead) {
  const Tree tree = build::path(33);
  OddEvenPolicy policy;
  adversary::HeightSeeker adv(policy, SimOptions{}, /*lookahead=*/4);
  const Height peak = certified_run(tree, adv, 600);
  EXPECT_LE(peak, log2_bound(tree.node_count()));
}

TEST(CertifyPath, RandomAdversaries) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Tree tree = build::path(40 + 3 * seed);
    adversary::RandomUniform adv(seed, /*idle_probability=*/0.1);
    const Height peak = certified_run(tree, adv, 1500);
    EXPECT_LE(peak, log2_bound(tree.node_count())) << "seed " << seed;
  }
}

TEST(CertifyPath, TinyPaths) {
  // Degenerate sizes: a single non-sink node, two nodes, three nodes.
  for (std::size_t n = 2; n <= 6; ++n) {
    const Tree tree = build::path(n);
    adversary::FixedNode adv(tree, adversary::Site::Deepest);
    const Height peak = certified_run(tree, adv, 500);
    EXPECT_LE(peak, log2_bound(tree.node_count())) << "n=" << n;
  }
}

}  // namespace
}  // namespace cvg
