// Cross-engine equivalence: the generic `run_engine` loop (and the
// `run`/`run_traced` adapters now built on it) must be bit-for-bit identical
// to the pre-refactor harness.  The legacy loop bodies are reproduced here
// verbatim as the reference implementation, and every registered policy is
// pinned against them across the adversary battery and both step semantics.
// The metric sinks are pinned against the engines' internal counters the
// same way.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cvg/adversary/killers.hpp"
#include "cvg/adversary/simple.hpp"
#include "cvg/dag/dag.hpp"
#include "cvg/dag/dag_sim.hpp"
#include "cvg/parallel/sweep.hpp"
#include "cvg/policy/registry.hpp"
#include "cvg/sim/bidir.hpp"
#include "cvg/sim/engine_run.hpp"
#include "cvg/sim/metrics.hpp"
#include "cvg/sim/packet_sim.hpp"
#include "cvg/sim/runner.hpp"
#include "cvg/topology/builders.hpp"
#include "cvg/util/rng.hpp"

namespace cvg {
namespace {

// ---------------------------------------------------------------------------
// The pre-refactor harness, verbatim (from runner.cpp before engine_run.hpp
// existed).  Any behavioural drift in the generic loop shows up against it.

RunResult legacy_finish(const Simulator& sim) {
  RunResult result;
  result.peak_height = sim.peak_height();
  result.peak_per_node.assign(sim.peak_per_node().begin(),
                              sim.peak_per_node().end());
  result.final_config = sim.config();
  result.injected = sim.injected();
  result.delivered = sim.delivered();
  result.steps = sim.now();
  return result;
}

RunResult legacy_run(const Tree& tree, const Policy& policy,
                     Adversary& adversary, Step steps, SimOptions options = {},
                     const StepObserver& observer = {}) {
  Simulator sim(tree, policy, options);
  adversary.on_simulation_start();
  std::vector<NodeId> injections;
  for (Step s = 0; s < steps; ++s) {
    injections.clear();
    adversary.plan(tree, sim.config(), s, options.capacity, injections);
    const StepRecord& record = sim.step(injections);
    if (observer) observer(sim, record);
  }
  return legacy_finish(sim);
}

RunResult legacy_run_traced(const Tree& tree, const Policy& policy,
                            Adversary& adversary, Step steps,
                            Step sample_every,
                            std::vector<Height>& height_trace,
                            SimOptions options = {}) {
  Simulator sim(tree, policy, options);
  adversary.on_simulation_start();
  std::vector<NodeId> injections;
  for (Step s = 0; s < steps; ++s) {
    injections.clear();
    adversary.plan(tree, sim.config(), s, options.capacity, injections);
    sim.step(injections);
    if ((s + 1) % sample_every == 0) {
      height_trace.push_back(sim.config().max_height());
    }
  }
  return legacy_finish(sim);
}

// ---------------------------------------------------------------------------

struct BatteryEntry {
  const char* kind;
  AdversaryPtr (*make)(const Tree& tree);
};

const std::vector<BatteryEntry>& battery() {
  static const std::vector<BatteryEntry> entries = {
      {"fixed-deepest",
       [](const Tree& tree) -> AdversaryPtr {
         return std::make_unique<adversary::FixedNode>(
             tree, adversary::Site::Deepest);
       }},
      {"fixed-sink-child",
       [](const Tree& tree) -> AdversaryPtr {
         return std::make_unique<adversary::FixedNode>(
             tree, adversary::Site::SinkChild);
       }},
      {"train-and-slam",
       [](const Tree& tree) -> AdversaryPtr {
         return std::make_unique<adversary::TrainAndSlam>(tree);
       }},
      {"alternator",
       [](const Tree& tree) -> AdversaryPtr {
         return std::make_unique<adversary::Alternator>(tree, 13);
       }},
      {"pile-on",
       [](const Tree&) -> AdversaryPtr {
         return std::make_unique<adversary::PileOn>();
       }},
      {"feed-the-block",
       [](const Tree&) -> AdversaryPtr {
         return std::make_unique<adversary::FeedTheBlock>();
       }},
      {"random-uniform",
       [](const Tree&) -> AdversaryPtr {
         return std::make_unique<adversary::RandomUniform>(99);
       }},
  };
  return entries;
}

void expect_identical(const RunResult& a, const RunResult& b,
                      const std::string& context) {
  EXPECT_EQ(a.peak_height, b.peak_height) << context;
  EXPECT_EQ(a.peak_per_node, b.peak_per_node) << context;
  EXPECT_TRUE(a.final_config == b.final_config) << context;
  EXPECT_EQ(a.injected, b.injected) << context;
  EXPECT_EQ(a.delivered, b.delivered) << context;
  EXPECT_EQ(a.steps, b.steps) << context;
}

TEST(EngineEquivalence, RunMatchesLegacyForAllPoliciesAndAdversaries) {
  const Tree tree = build::path(65);
  const Step steps = 256;
  for (const std::string& name : standard_policy_names()) {
    for (const BatteryEntry& entry : battery()) {
      for (const StepSemantics semantics :
           {StepSemantics::DecideBeforeInjection,
            StepSemantics::DecideAfterInjection}) {
        const SimOptions options{.semantics = semantics};
        const std::string context =
            name + " / " + entry.kind + " / " +
            (semantics == StepSemantics::DecideBeforeInjection ? "before"
                                                               : "after");
        const PolicyPtr policy = make_policy(name);
        AdversaryPtr legacy_adv = entry.make(tree);
        AdversaryPtr new_adv = entry.make(tree);
        const RunResult expected =
            legacy_run(tree, *policy, *legacy_adv, steps, options);
        const RunResult actual = run(tree, *policy, *new_adv, steps, options);
        expect_identical(expected, actual, context);
      }
    }
  }
}

TEST(EngineEquivalence, RunMatchesLegacyOnTreesWithObserver) {
  const Tree tree = build::complete_kary(2, 6);
  const Step steps = 200;
  const PolicyPtr policy = make_policy("tree-odd-even");
  for (const BatteryEntry& entry : battery()) {
    std::vector<Step> legacy_sends;
    std::vector<Step> new_sends;
    const StepObserver legacy_observer =
        [&legacy_sends](const Simulator&, const StepRecord& record) {
          legacy_sends.push_back(record.sends.size());
        };
    const StepObserver new_observer =
        [&new_sends](const Simulator&, const StepRecord& record) {
          new_sends.push_back(record.sends.size());
        };
    AdversaryPtr legacy_adv = entry.make(tree);
    AdversaryPtr new_adv = entry.make(tree);
    const RunResult expected =
        legacy_run(tree, *policy, *legacy_adv, steps, {}, legacy_observer);
    const RunResult actual =
        run(tree, *policy, *new_adv, steps, {}, new_observer);
    expect_identical(expected, actual, entry.kind);
    EXPECT_EQ(legacy_sends, new_sends) << entry.kind;
  }
}

TEST(EngineEquivalence, RunTracedMatchesLegacy) {
  const Tree tree = build::path(33);
  const Step steps = 300;
  const PolicyPtr policy = make_policy("fie-local");
  for (const Step sample_every : {Step{1}, Step{7}, Step{50}}) {
    adversary::FixedNode legacy_adv(tree, adversary::Site::Deepest);
    adversary::FixedNode new_adv(tree, adversary::Site::Deepest);
    std::vector<Height> legacy_trace;
    std::vector<Height> new_trace;
    const RunResult expected = legacy_run_traced(
        tree, *policy, legacy_adv, steps, sample_every, legacy_trace);
    const RunResult actual =
        run_traced(tree, *policy, new_adv, steps, sample_every, new_trace);
    expect_identical(expected, actual,
                     "sample_every=" + std::to_string(sample_every));
    EXPECT_EQ(legacy_trace, new_trace)
        << "sample_every=" << sample_every;
  }
}

TEST(EngineEquivalence, SinksMatchEngineInternalTracking) {
  const Tree tree = build::path(65);
  const Step steps = 256;
  const PolicyPtr policy = make_policy("odd-even");
  for (const BatteryEntry& entry : battery()) {
    AdversaryPtr adversary = entry.make(tree);
    adversary->on_simulation_start();
    Simulator sim(tree, *policy);
    PeakHeightSink peak_sink;
    PerNodePeakSink per_node_sink;
    MetricSinkChain sinks;
    sinks.add(peak_sink).add(per_node_sink);
    const RunResult result =
        run_engine(sim, adversary_source(tree, *adversary, 1), steps, &sinks);
    EXPECT_EQ(peak_sink.peak(), result.peak_height) << entry.kind;
    EXPECT_EQ(std::vector<Height>(per_node_sink.peaks().begin(),
                                  per_node_sink.peaks().end()),
              result.peak_per_node)
        << entry.kind;
  }
}

TEST(EngineEquivalence, PacketEngineGenericLoopMatchesManualLoop) {
  const Tree tree = build::path(33);
  const Step steps = 400;
  const PolicyPtr policy = make_policy("odd-even");
  for (const BatteryEntry& entry : battery()) {
    // Manual loop (the pre-refactor bench_delay harness).
    AdversaryPtr manual_adv = entry.make(tree);
    PacketSimulator manual_sim(tree, *policy);
    manual_adv->on_simulation_start();
    std::vector<NodeId> inj;
    for (Step s = 0; s < steps; ++s) {
      inj.clear();
      manual_adv->plan(tree, manual_sim.config(), s, 1, inj);
      manual_sim.step(inj);
    }

    // Generic loop with the delay sink.
    AdversaryPtr generic_adv = entry.make(tree);
    PacketSimulator generic_sim(tree, *policy);
    generic_adv->on_simulation_start();
    DelayHistogramSink delay_sink;
    MetricSinkChain sinks;
    sinks.add(delay_sink);
    const RunResult result = run_engine(
        generic_sim, adversary_source(tree, *generic_adv, 1), steps, &sinks);

    EXPECT_EQ(result.peak_height, manual_sim.peak_height()) << entry.kind;
    EXPECT_EQ(result.injected, manual_sim.injected()) << entry.kind;
    EXPECT_EQ(result.delivered, manual_sim.delivered()) << entry.kind;
    EXPECT_TRUE(result.final_config == manual_sim.config()) << entry.kind;
    // The sink's histogram equals both engines' internal stats.
    EXPECT_TRUE(delay_sink.stats() == manual_sim.delays()) << entry.kind;
    EXPECT_TRUE(delay_sink.stats() == generic_sim.delays()) << entry.kind;
  }
}

TEST(EngineEquivalence, BidirGenericLoopMatchesStepInject) {
  const std::size_t n = 64;
  const BidirDiffusion policy;
  const Step steps = 300;

  BidirPathSimulator manual(n + 1, policy);
  Xoshiro256StarStar manual_rng(7);
  for (Step s = 0; s < steps; ++s) {
    manual.step_inject(static_cast<NodeId>(1 + manual_rng.below(n)));
  }

  BidirPathSimulator generic(n + 1, policy);
  Xoshiro256StarStar generic_rng(7);
  const RunResult result = run_engine(
      generic,
      [&](const Configuration&, Step, std::vector<NodeId>& out) {
        out.push_back(static_cast<NodeId>(1 + generic_rng.below(n)));
      },
      steps);
  EXPECT_EQ(result.peak_height, manual.peak_height());
  EXPECT_EQ(result.injected, manual.injected());
  EXPECT_EQ(result.delivered, manual.delivered());
  EXPECT_TRUE(result.final_config == manual.config());
  EXPECT_EQ(result.steps, manual.now());
}

TEST(EngineEquivalence, DagGenericLoopMatchesStepInject) {
  const Dag dag = build_dag::diamond(4, 16);
  const DagOddEven policy;
  const Step steps = 500;
  const NodeId deepest = static_cast<NodeId>(dag.node_count() - 1);

  DagSimulator manual(dag, policy);
  for (Step s = 0; s < steps; ++s) {
    manual.step_inject((s / 64) % 2 == 0 ? deepest : NodeId{1});
  }

  DagSimulator generic(dag, policy);
  const RunResult result = run_engine(
      generic,
      [&](const Configuration&, Step s, std::vector<NodeId>& out) {
        out.push_back((s / 64) % 2 == 0 ? deepest : NodeId{1});
      },
      steps);
  EXPECT_EQ(result.peak_height, manual.peak_height());
  EXPECT_EQ(result.injected, manual.injected());
  EXPECT_EQ(result.delivered, manual.delivered());
  EXPECT_TRUE(result.final_config == manual.config());
}

TEST(EngineEquivalence, CheckpointRestoreResumesIdentically) {
  // Engines are copyable; a copy is a checkpoint whose continuation matches
  // the original's continuation exactly (the staged adversary relies on it).
  const Tree tree = build::path(33);
  const PolicyPtr policy = make_policy("odd-even");
  Simulator sim(tree, *policy);
  const NodeId deepest = static_cast<NodeId>(tree.node_count() - 1);
  const std::vector<NodeId> inj{deepest};
  for (Step s = 0; s < 100; ++s) (void)sim.step(inj);

  Simulator checkpoint = sim;
  for (Step s = 0; s < 50; ++s) {
    (void)sim.step(inj);
    (void)checkpoint.step(inj);
  }
  EXPECT_TRUE(sim.config() == checkpoint.config());
  EXPECT_EQ(sim.peak_height(), checkpoint.peak_height());
  EXPECT_EQ(sim.now(), checkpoint.now());
}

TEST(SweepRunner, GenericJobsMatchDirectRuns) {
  const Tree tree = build::path(33);
  SweepRunner runner;
  for (const std::string name : {"odd-even", "greedy"}) {
    runner.add(name, 128, [&tree, name](Step steps) {
      const PolicyPtr policy = make_policy(name);
      adversary::FixedNode adv(tree, adversary::Site::Deepest);
      return run(tree, *policy, adv, steps);
    });
  }
  const std::vector<SweepOutcome> outcomes = runner.run(2);
  ASSERT_EQ(outcomes.size(), 2u);
  for (const SweepOutcome& outcome : outcomes) {
    const PolicyPtr policy = make_policy(outcome.label);
    adversary::FixedNode adv(tree, adversary::Site::Deepest);
    const RunResult direct = run(tree, *policy, adv, 128);
    EXPECT_EQ(outcome.peak, direct.peak_height) << outcome.label;
    EXPECT_EQ(outcome.injected, direct.injected) << outcome.label;
    EXPECT_EQ(outcome.delivered, direct.delivered) << outcome.label;
    EXPECT_EQ(outcome.steps, direct.steps) << outcome.label;
  }
}

TEST(SweepRunnerDeathTest, ZeroStepJobAbortsWithLabel) {
  SweepRunner runner;
  runner.add("forgot-the-budget", 0,
             [](Step) { return RunResult{}; });
  EXPECT_DEATH((void)runner.run(1),
               "sweep job 'forgot-the-budget' has no step budget");
}

}  // namespace
}  // namespace cvg
