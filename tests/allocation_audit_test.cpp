// Allocation audit: the enforcement arm of the fixed-footprint invariant.
//
// This binary interposes the global allocator (CVG_DEFINE_COUNTING_ALLOCATOR,
// exactly once, below) and proves that every simulation substrate's step loop
// is allocation-free at steady state: buffers are sized at construction or
// grow to a workload high-water mark during warm-up, after which an unbounded
// stream of steps performs zero heap traffic.  It also unit-tests the
// cvg::mem primitives themselves, including the SlotMap generation-reuse
// discipline (stale handles must abort, not alias the slot's new occupant).

#include <cstddef>
#include <cstdlib>
#include <new>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cvg/certify/path_certifier.hpp"
#include "cvg/core/config.hpp"
#include "cvg/dag/dag_sim.hpp"
#include "cvg/mem/alloc_probe.hpp"
#include "cvg/mem/arena.hpp"
#include "cvg/mem/pool.hpp"
#include "cvg/mem/ring_queue.hpp"
#include "cvg/mem/slot_map.hpp"
#include "cvg/mem/sparse_set.hpp"
#include "cvg/policy/registry.hpp"
#include "cvg/sim/bidir.hpp"
#include "cvg/sim/lane_engine.hpp"
#include "cvg/sim/packet_sim.hpp"
#include "cvg/sim/simulator.hpp"
#include "cvg/topology/builders.hpp"

CVG_DEFINE_COUNTING_ALLOCATOR()

namespace cvg {
namespace {

using mem::AllocationScope;

// ---------------------------------------------------------------------------
// Probe plumbing
// ---------------------------------------------------------------------------

TEST(AllocProbe, IsActiveInThisBinary) {
  ASSERT_TRUE(mem::alloc_probe_active())
      << "the counting allocator was not linked in; every steady-state "
         "assertion below would pass vacuously";
}

TEST(AllocProbe, CountsNewAndDelete) {
  AllocationScope scope;
  auto* p = new int(42);
  EXPECT_GE(scope.news(), 1u);
  EXPECT_GE(scope.bytes(), sizeof(int));
  delete p;
  EXPECT_GE(scope.deletes(), 1u);
}

// ---------------------------------------------------------------------------
// cvg::mem primitives
// ---------------------------------------------------------------------------

TEST(Arena, BumpAllocatesAndResetsWithoutFreeing) {
  mem::Arena arena(256);
  void* a = arena.allocate(64, 8);
  void* b = arena.allocate(64, 8);
  EXPECT_NE(a, b);
  EXPECT_GE(arena.used(), 128u);

  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  // The same chunk is reused: the first post-reset allocation lands exactly
  // where the first pre-reset one did.
  EXPECT_EQ(arena.allocate(64, 8), a);
}

TEST(Arena, MakeArrayValueInitializes) {
  mem::Arena arena;
  const std::span<int> xs = arena.make_array<int>(100);
  ASSERT_EQ(xs.size(), 100u);
  for (const int x : xs) EXPECT_EQ(x, 0);
  EXPECT_TRUE(arena.make_array<int>(0).empty());
}

TEST(Arena, RespectsAlignment) {
  mem::Arena arena;
  (void)arena.allocate(1, 1);  // misalign the bump pointer
  void* p = arena.allocate(32, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
}

TEST(Arena, WarmedArenaServesResetCyclesAllocationFree) {
  mem::Arena arena(1024);
  // Warm-up: drive to the high-water mark once (may acquire chunks).
  for (int round = 0; round < 4; ++round) {
    arena.reset();
    (void)arena.make_array<std::uint64_t>(2000);
  }
  const std::size_t chunks = arena.chunk_count();
  AllocationScope scope;
  for (int round = 0; round < 100; ++round) {
    arena.reset();
    const auto xs = arena.make_array<std::uint64_t>(2000);
    xs[0] = 1;  // keep the compiler honest
  }
  EXPECT_EQ(scope.news(), 0u);
  EXPECT_EQ(arena.chunk_count(), chunks);
}

TEST(Pool, AllocReleaseRecyclesWithoutGrowth) {
  mem::Pool<std::string> pool(4);
  EXPECT_EQ(pool.capacity(), 4u);

  std::string* a = pool.alloc("alpha");
  std::string* b = pool.alloc("beta");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(*a, "alpha");
  EXPECT_EQ(pool.in_use(), 2u);
  EXPECT_TRUE(pool.owns(a));

  pool.release(a);
  EXPECT_EQ(pool.in_use(), 1u);
  // The freed slot is recycled.
  std::string* c = pool.alloc("gamma");
  EXPECT_EQ(c, a);
  pool.release(b);
  pool.release(c);
}

TEST(Pool, ExhaustionReturnsNullInsteadOfGrowing) {
  mem::Pool<int> pool(2);
  int* a = pool.alloc(1);
  int* b = pool.alloc(2);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(pool.full());
  EXPECT_EQ(pool.alloc(3), nullptr);  // memb_alloc contract: no growth
  pool.release(a);
  EXPECT_NE(pool.alloc(4), nullptr);
  pool.release(b);
}

TEST(SlotMap, InsertEraseRecyclesSlotsWithFreshGenerations) {
  mem::SlotMap<int> map;
  const mem::SlotHandle a = map.insert(10);
  const mem::SlotHandle b = map.insert(20);
  EXPECT_EQ(map[a], 10);
  EXPECT_EQ(map[b], 20);
  EXPECT_EQ(map.size(), 2u);

  map.erase(a);
  EXPECT_FALSE(map.contains(a));
  EXPECT_EQ(map.try_get(a), nullptr);

  // The freed slot is recycled under a bumped generation: same index,
  // different handle, and the old handle stays dead.
  const mem::SlotHandle c = map.insert(30);
  EXPECT_EQ(c.index, a.index);
  EXPECT_NE(c.generation, a.generation);
  EXPECT_FALSE(map.contains(a));
  EXPECT_EQ(map[c], 30);
}

TEST(SlotMap, ClearInvalidatesAllHandles) {
  mem::SlotMap<int> map;
  const mem::SlotHandle a = map.insert(1);
  const mem::SlotHandle b = map.insert(2);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_FALSE(map.contains(a));
  EXPECT_FALSE(map.contains(b));
}

TEST(SlotMap, ForEachVisitsExactlyTheLiveResidents) {
  mem::SlotMap<int> map;
  (void)map.insert(1);
  const mem::SlotHandle b = map.insert(2);
  (void)map.insert(3);
  map.erase(b);

  int sum = 0;
  std::size_t visits = 0;
  map.for_each([&](mem::SlotHandle h, int& v) {
    EXPECT_TRUE(map.contains(h));
    sum += v;
    ++visits;
  });
  EXPECT_EQ(visits, 2u);
  EXPECT_EQ(sum, 4);
}

TEST(SlotMap, ReservedChurnIsAllocationFree) {
  mem::SlotMap<std::uint64_t> map;
  map.reserve(64);
  std::vector<mem::SlotHandle> handles;
  handles.reserve(64);

  AllocationScope scope;
  for (int round = 0; round < 50; ++round) {
    for (std::uint64_t i = 0; i < 64; ++i) handles.push_back(map.insert(i));
    for (const mem::SlotHandle h : handles) map.erase(h);
    handles.clear();
  }
  EXPECT_EQ(scope.news(), 0u);
}

using SlotMapDeathTest = ::testing::Test;

TEST(SlotMapDeathTest, StaleHandleAccessAborts) {
  mem::SlotMap<int> map;
  const mem::SlotHandle a = map.insert(10);
  map.erase(a);
  (void)map.insert(99);  // recycles a's slot under a new generation
  EXPECT_DEATH((void)map[a], "stale or null slot handle");
}

TEST(SlotMapDeathTest, DoubleEraseAborts) {
  mem::SlotMap<int> map;
  const mem::SlotHandle a = map.insert(10);
  map.erase(a);
  EXPECT_DEATH(map.erase(a), "stale or null slot handle");
}

TEST(SlotMapDeathTest, NullHandleAccessAborts) {
  mem::SlotMap<int> map;
  EXPECT_DEATH((void)map[mem::SlotHandle{}], "stale or null slot handle");
}

using PoolDeathTest = ::testing::Test;

TEST(PoolDeathTest, DoubleReleaseAborts) {
  mem::Pool<int> pool(2);
  int* a = pool.alloc(1);
  pool.release(a);
  EXPECT_DEATH(pool.release(a), "double release");
}

TEST(SparseSet, MembershipAndConstantTimeClear) {
  mem::SparseSet<std::uint32_t> set(8);
  EXPECT_TRUE(set.insert(3));
  EXPECT_TRUE(set.insert(5));
  EXPECT_FALSE(set.insert(3));  // already present
  EXPECT_TRUE(set.contains(3));
  EXPECT_EQ(set.size(), 2u);

  EXPECT_TRUE(set.erase(3));
  EXPECT_FALSE(set.erase(3));
  EXPECT_FALSE(set.contains(3));

  set.clear();  // O(1); stale pos_ entries must stay disarmed
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.contains(5));
  EXPECT_TRUE(set.insert(5));
}

TEST(SparseSet, ChurnWithinUniverseIsAllocationFree) {
  mem::SparseSet<std::uint32_t> set(256);
  AllocationScope scope;
  for (int round = 0; round < 50; ++round) {
    for (std::uint32_t v = 0; v < 256; ++v) set.insert(v);
    for (std::uint32_t v = 0; v < 256; v += 2) set.erase(v);
    set.clear();
  }
  EXPECT_EQ(scope.news(), 0u);
}

TEST(RingQueue, FifoOrderAcrossWraparound) {
  mem::RingQueue<int> q(4);
  int next_push = 0;
  int next_pop = 0;
  // Cycle far past the capacity so head wraps many times.
  for (int i = 0; i < 100; ++i) {
    q.push_back(next_push++);
    q.push_back(next_push++);
    EXPECT_EQ(q.front(), next_pop);
    q.pop_front();
    ++next_pop;
  }
  EXPECT_EQ(q.size(), 100u);
  EXPECT_EQ(q[0], next_pop);
  EXPECT_EQ(q.back(), next_push - 1);
}

TEST(RingQueue, SteadyCyclingIsAllocationFree) {
  mem::RingQueue<std::uint64_t> q;
  q.reserve(128);
  for (std::uint64_t i = 0; i < 64; ++i) q.push_back(i);  // high-water fill

  AllocationScope scope;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    q.push_back(i);
    q.pop_front();
  }
  EXPECT_EQ(scope.news(), 0u);
  EXPECT_EQ(q.capacity(), 128u);
}

// ---------------------------------------------------------------------------
// Steady-state audits: every substrate's warmed-up step loop must be
// allocation-free.  Warm-up drives each engine's scratch to its workload
// high-water mark; the measured window then asserts zero operator-new calls.
// ---------------------------------------------------------------------------

constexpr int kWarmupSteps = 2048;
constexpr int kMeasuredSteps = 512;

/// Runs the scalar height engine at rate 1 (inject at the leaf every step)
/// and returns the allocation count over the measured window.
std::uint64_t measure_simulator(SparseMode mode) {
  const Tree tree = build::path(64);
  const PolicyPtr policy = make_policy("odd-even");
  SimOptions options;
  options.sparse_mode = mode;
  Simulator sim(tree, *policy, options);

  const NodeId leaf = static_cast<NodeId>(tree.node_count() - 1);
  for (int i = 0; i < kWarmupSteps; ++i) (void)sim.step({&leaf, 1});

  AllocationScope scope;
  for (int i = 0; i < kMeasuredSteps; ++i) (void)sim.step({&leaf, 1});
  const std::uint64_t news = scope.news();
  EXPECT_GT(sim.delivered(), 0u);  // the workload really flowed
  return news;
}

TEST(SteadyState, DenseSimulatorStepIsAllocationFree) {
  EXPECT_EQ(measure_simulator(SparseMode::Never), 0u);
}

TEST(SteadyState, SparseSimulatorStepIsAllocationFree) {
  EXPECT_EQ(measure_simulator(SparseMode::Always), 0u);
}

TEST(SteadyState, AutoModeSimulatorStepIsAllocationFree) {
  // Auto flips between the engines as occupancy crosses the threshold; the
  // flip itself must not allocate either.
  EXPECT_EQ(measure_simulator(SparseMode::Auto), 0u);
}

TEST(SteadyState, PacketSimulatorStepIsAllocationFree) {
  // Draining workload (inject every other step) so queue depths — and with
  // them the delay histogram — plateau during warm-up.
  const Tree tree = build::path(16);
  const PolicyPtr policy = make_policy("odd-even");
  PacketSimulator sim(tree, *policy);

  const NodeId leaf = static_cast<NodeId>(tree.node_count() - 1);
  for (int i = 0; i < kWarmupSteps; ++i) {
    sim.step_inject(i % 2 == 0 ? leaf : kNoNode);
  }

  AllocationScope scope;
  for (int i = 0; i < kMeasuredSteps; ++i) {
    sim.step_inject(i % 2 == 0 ? leaf : kNoNode);
  }
  EXPECT_EQ(scope.news(), 0u);
  EXPECT_GT(sim.delivered(), 0u);
}

TEST(SteadyState, BidirPathStepIsAllocationFree) {
  const BidirDiffusion policy;
  BidirPathSimulator sim(32, policy);

  const NodeId far_end = 31;
  for (int i = 0; i < kWarmupSteps; ++i) sim.step_inject(far_end);

  AllocationScope scope;
  for (int i = 0; i < kMeasuredSteps; ++i) sim.step_inject(far_end);
  EXPECT_EQ(scope.news(), 0u);
  EXPECT_GT(sim.delivered(), 0u);
}

TEST(SteadyState, DagSimulatorStepIsAllocationFree) {
  const Dag dag = build_dag::diamond(3, 4);
  const DagOddEven policy;
  DagSimulator sim(dag, policy);

  const NodeId source = static_cast<NodeId>(dag.node_count() - 1);
  for (int i = 0; i < kWarmupSteps; ++i) sim.step_inject(source);

  AllocationScope scope;
  for (int i = 0; i < kMeasuredSteps; ++i) sim.step_inject(source);
  EXPECT_EQ(scope.news(), 0u);
  EXPECT_GT(sim.delivered(), 0u);
}

/// Lane-batched engine: every lane injects at its own node each round, and
/// the per-round lane_config_into gather reuses one scratch configuration.
std::uint64_t measure_lane_engine(std::size_t lanes) {
  const Tree tree = build::path(48);
  const PolicyPtr policy = make_policy("odd-even");
  const SimOptions options;
  EXPECT_TRUE(LaneSimulator::supported(*policy, options));
  LaneSimulator sim(tree, *policy, options, lanes);

  std::vector<NodeId> targets(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    targets[l] = static_cast<NodeId>(tree.node_count() - 1 - l);
  }
  std::vector<std::span<const NodeId>> injections(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    injections[l] = std::span<const NodeId>(&targets[l], 1);
  }
  Configuration gathered(tree.node_count());

  for (int i = 0; i < kWarmupSteps; ++i) sim.step_lanes(injections);

  AllocationScope scope;
  for (int i = 0; i < kMeasuredSteps; ++i) {
    sim.step_lanes(injections);
    sim.lane_config_into(static_cast<std::size_t>(i) % lanes, gathered);
  }
  const std::uint64_t news = scope.news();
  EXPECT_GT(sim.lane_delivered(0), 0u);
  EXPECT_EQ(gathered.node_count(), tree.node_count());
  return news;
}

TEST(SteadyState, LaneEngineWidth4IsAllocationFree) {
  EXPECT_EQ(measure_lane_engine(4), 0u);
}

TEST(SteadyState, LaneEngineWidth8IsAllocationFree) {
  EXPECT_EQ(measure_lane_engine(8), 0u);
}

TEST(SteadyState, PathCertifierObserveIsAllocationFree) {
  // The certifier's per-step pipeline — classification, path matching,
  // Algorithm 4 attachment churn (SlotMap insert/erase), arena scratch —
  // must also settle to zero heap traffic once heights reach their bounded
  // steady state (odd-even keeps the peak ≤ log₂ n + O(1), so the
  // attachment population and every workspace plateau during warm-up).
  const Tree tree = build::path(32);
  const PolicyPtr policy = make_policy("odd-even");
  SimOptions options;
  options.sparse_mode = SparseMode::Never;
  Simulator sim(tree, *policy, options);
  certify::PathCertifier certifier(tree, /*validate_every=*/0);

  const NodeId leaf = static_cast<NodeId>(tree.node_count() - 1);
  for (int i = 0; i < kWarmupSteps; ++i) {
    const StepRecord& record = sim.step({&leaf, 1});
    certifier.observe(sim.config(), record);
  }

  AllocationScope scope;
  for (int i = 0; i < kMeasuredSteps; ++i) {
    const StepRecord& record = sim.step({&leaf, 1});
    certifier.observe(sim.config(), record);
  }
  EXPECT_EQ(scope.news(), 0u);
  certifier.final_validate();
}

}  // namespace
}  // namespace cvg
