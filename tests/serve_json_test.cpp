/// Strict JSON layer of the simulation service: round-trips, hostile-input
/// rejection with structured errors, and the depth/duplicate-key limits.

#include "cvg/serve/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace cvg::serve {
namespace {

std::optional<JsonValue> parse_ok(const std::string& text) {
  std::string error;
  auto value = parse_json(text, error);
  EXPECT_TRUE(value.has_value()) << text << " -> " << error;
  return value;
}

std::string parse_error(const std::string& text) {
  std::string error;
  const auto value = parse_json(text, error);
  EXPECT_FALSE(value.has_value()) << "hostile input parsed: " << text;
  EXPECT_FALSE(error.empty());
  return error;
}

TEST(ServeJson, RoundTripsScalarsAndContainers) {
  const std::string documents[] = {
      "null",
      "true",
      "false",
      "0",
      "-7",
      "9223372036854775807",
      "1.5",
      "\"\"",
      "\"with \\\"escapes\\\" and \\u00e9\"",
      "[]",
      "[1,2,3]",
      "{}",
      R"({"op":"run","steps":128,"nested":{"a":[true,null]}})",
  };
  for (const std::string& document : documents) {
    const auto value = parse_ok(document);
    ASSERT_TRUE(value.has_value());
    // write ∘ parse is the identity on values: re-parsing the writer's
    // output yields an equal value.
    const std::string written = write_json(*value);
    const auto reparsed = parse_ok(written);
    ASSERT_TRUE(reparsed.has_value()) << written;
    EXPECT_EQ(*value, *reparsed) << document;
  }
}

TEST(ServeJson, IntegersAndDoublesStayDistinct) {
  EXPECT_TRUE(parse_ok("42")->is_int());
  EXPECT_TRUE(parse_ok("42.0")->is_double());
  EXPECT_TRUE(parse_ok("4e2")->is_double());
  EXPECT_EQ(parse_ok("42")->as_int(), 42);
  // Integers past int64 degrade to double rather than failing the parse.
  EXPECT_TRUE(parse_ok("99999999999999999999999")->is_double());
}

TEST(ServeJson, RejectsMalformedDocumentsWithStructuredErrors) {
  const std::string hostile[] = {
      "",
      "   ",
      "{",
      "}",
      "[1,2",
      "{\"a\":}",
      "{\"a\" 1}",
      "{a:1}",
      "[1 2]",
      "tru",
      "nul",
      "+1",
      "01",
      "1.",
      "1e",
      ".5",
      "\"unterminated",
      "\"bad escape \\q\"",
      "\"truncated \\u12\"",
      "\"surrogate \\ud834\\udd1e\"",
      std::string("\"raw\x01control\""),
      "1 2",
      "{} trailing",
      "\xff\xfe",
      "1e99999",
  };
  for (const std::string& text : hostile) {
    const std::string error = parse_error(text);
    EXPECT_NE(error.find("at byte"), std::string::npos) << error;
  }
}

TEST(ServeJson, RejectsDuplicateKeys) {
  const std::string error = parse_error(R"({"steps":1,"steps":2})");
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(ServeJson, EnforcesTheDepthCeiling) {
  std::string deep_ok, deep_bad;
  for (int i = 0; i < kMaxJsonDepth; ++i) deep_ok += '[';
  deep_ok += "1";
  for (int i = 0; i < kMaxJsonDepth; ++i) deep_ok += ']';
  for (int i = 0; i < kMaxJsonDepth + 8; ++i) deep_bad += '[';
  EXPECT_TRUE(parse_ok(deep_ok).has_value());
  const std::string error = parse_error(deep_bad);
  EXPECT_NE(error.find("nesting"), std::string::npos) << error;
}

TEST(ServeJson, FindLooksUpObjectMembers) {
  const auto value = parse_ok(R"({"op":"run","steps":7})");
  ASSERT_TRUE(value.has_value());
  ASSERT_NE(value->find("steps"), nullptr);
  EXPECT_EQ(value->find("steps")->as_int(), 7);
  EXPECT_EQ(value->find("missing"), nullptr);
  EXPECT_EQ(JsonValue(3).find("anything"), nullptr);
}

TEST(ServeJson, WriterEscapesControlCharactersNdjsonSafely) {
  const std::string written =
      write_json(JsonValue(std::string("line\nbreak\ttab \x02")));
  EXPECT_EQ(written.find('\n'), std::string::npos);
  EXPECT_NE(written.find("\\n"), std::string::npos);
  EXPECT_NE(written.find("\\t"), std::string::npos);
  EXPECT_NE(written.find("\\u0002"), std::string::npos);
  const auto reparsed = parse_ok(written);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->as_string(), "line\nbreak\ttab \x02");
}

TEST(ServeJson, QuoteProducesParseableStringLiterals) {
  const std::string quoted = json_quote("path:64 \"quoted\" \\ end");
  const auto value = parse_ok(quoted);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->as_string(), "path:64 \"quoted\" \\ end");
}

}  // namespace
}  // namespace cvg::serve
