// Tests for the mutation fuzzer — including the PR's acceptance criterion:
// from an EMPTY corpus, fuzzing the sqrt(n)-star (staggered spider) bucket
// under the 1-local odd-even policy must find, minimize and store a trace
// whose peak is >= sqrt(n) - O(1), and replaying the stored entry must
// reproduce that peak deterministically.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "cvg/corpus/fuzz.hpp"
#include "cvg/corpus/replay.hpp"
#include "cvg/corpus/store.hpp"
#include "cvg/policy/registry.hpp"
#include "cvg/topology/spec.hpp"

namespace cvg::corpus {
namespace {

std::string scratch_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/cvg_fuzz_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(CorpusFuzz, MutatorNamesAreTheDocumentedSet) {
  // The invariant checker cross-references these literals; keep in sync
  // with docs/ANALYSIS.md and scripts/check_invariants.py.
  const std::vector<std::string> expected = {
      "splice",        "time-shift",    "node-shift",
      "burst-merge",   "seeker-extend", "beam-extend"};
  EXPECT_EQ(fuzz_mutator_names(), expected);
}

TEST(CorpusFuzz, FindsSqrtNPeakOnStaggeredSpiderFromEmptyCorpus) {
  // The acceptance criterion, end to end.
  const std::string spec = "staggered-spider:8";
  const Tree tree = build::make_tree(spec);
  const PolicyPtr policy = make_policy("odd-even");
  ASSERT_EQ(policy->locality(), 1);

  CorpusStore store(scratch_dir("accept"));
  FuzzOptions options;
  options.seed = 1;
  options.rounds = 128;
  const FuzzReport report =
      fuzz_bucket(store, tree, spec, *policy, SimOptions{}, options);

  ASSERT_TRUE(report.admit.admitted) << report.admit.reason;
  const double root = std::sqrt(static_cast<double>(tree.node_count()));
  EXPECT_GE(static_cast<double>(report.best_peak), root - 2.0)
      << "fuzzer missed the sqrt(n) volley on " << spec << " (n="
      << tree.node_count() << ")";

  // Minimized trace is at most 50% of its pre-minimization step count.
  ASSERT_GT(report.pre_minimize_steps, 0u);
  EXPECT_LE(report.final_steps * 2, report.pre_minimize_steps)
      << report.final_steps << " steps vs " << report.pre_minimize_steps
      << " pre-minimization";

  // The stored entry replays deterministically to at least the peak.
  ASSERT_EQ(store.entries().size(), 1u);
  const CorpusEntry& stored = store.entries().front().entry;
  EXPECT_EQ(stored.peak, report.best_peak);
  EXPECT_EQ(stored.pre_minimize_steps, report.pre_minimize_steps);
  EXPECT_EQ(replay_entry(stored), stored.peak);
  EXPECT_TRUE(replay_all_ok(replay_corpus(store.dir())));
}

TEST(CorpusFuzz, SameSeedIsDeterministic) {
  const std::string spec = "staggered-spider:6";
  const Tree tree = build::make_tree(spec);
  const PolicyPtr policy = make_policy("odd-even");
  FuzzOptions options;
  options.seed = 7;
  options.rounds = 64;

  CorpusStore a(scratch_dir("det_a"));
  CorpusStore b(scratch_dir("det_b"));
  const FuzzReport ra =
      fuzz_bucket(a, tree, spec, *policy, SimOptions{}, options);
  const FuzzReport rb =
      fuzz_bucket(b, tree, spec, *policy, SimOptions{}, options);

  EXPECT_EQ(ra.candidates_tried, rb.candidates_tried);
  EXPECT_EQ(ra.best_peak, rb.best_peak);
  EXPECT_EQ(ra.best_origin, rb.best_origin);
  ASSERT_TRUE(ra.admit.admitted);
  ASSERT_TRUE(rb.admit.admitted);
  ASSERT_EQ(a.entries().size(), 1u);
  ASSERT_EQ(b.entries().size(), 1u);
  // Identical runs store byte-identical entries: same content hash.
  EXPECT_EQ(content_hash(a.entries().front().entry),
            content_hash(b.entries().front().entry));
}

TEST(CorpusFuzz, DoesNotReAdmitWhenTheBucketAlreadyHoldsThePeak) {
  const std::string spec = "staggered-spider:6";
  const Tree tree = build::make_tree(spec);
  const PolicyPtr policy = make_policy("odd-even");
  FuzzOptions options;
  options.seed = 7;
  options.rounds = 64;

  CorpusStore store(scratch_dir("readmit"));
  const FuzzReport first =
      fuzz_bucket(store, tree, spec, *policy, SimOptions{}, options);
  ASSERT_TRUE(first.admit.admitted);

  // Re-running with zero mutation rounds re-seeds from the stored entry:
  // its peak is matched but not beaten, so nothing new is admitted.
  FuzzOptions rerun = options;
  rerun.rounds = 0;
  const FuzzReport second =
      fuzz_bucket(store, tree, spec, *policy, SimOptions{}, rerun);
  EXPECT_FALSE(second.admit.admitted);
  EXPECT_GE(second.best_peak, first.best_peak);
  EXPECT_EQ(store.entries().size(), 1u);
}

TEST(CorpusFuzz, SeedBatteryAloneBeatsGreedyOnAPath) {
  // Sanity on a second bucket shape: greedy on a path piles up Theta(n)
  // (the fixed-deepest seed already forces it; rounds = 0 suffices).
  const std::string spec = "path:12";
  const Tree tree = build::make_tree(spec);
  const PolicyPtr policy = make_policy("greedy");
  CorpusStore store(scratch_dir("path"));
  FuzzOptions options;
  options.seed = 3;
  options.rounds = 0;
  const FuzzReport report =
      fuzz_bucket(store, tree, spec, *policy, SimOptions{}, options);
  ASSERT_TRUE(report.admit.admitted) << report.admit.reason;
  EXPECT_GE(report.best_peak, static_cast<Height>(tree.node_count() / 2));
}

}  // namespace
}  // namespace cvg::corpus
