// Property-based suites: parameterized sweeps over (policy × adversary ×
// topology × seed) grids asserting the model invariants that must hold for
// *every* execution, plus the policy-specific bounds the paper proves.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "cvg/adversary/killers.hpp"
#include "cvg/adversary/simple.hpp"
#include "cvg/policy/registry.hpp"
#include "cvg/policy/standard.hpp"
#include "cvg/sim/packet_sim.hpp"
#include "cvg/sim/runner.hpp"
#include "cvg/topology/builders.hpp"
#include "cvg/util/rng.hpp"

namespace cvg {
namespace {

/// Builds the adversary named by the test parameter.
AdversaryPtr make_adversary(const std::string& kind, const Tree& tree,
                            std::uint64_t seed) {
  if (kind == "fixed-deepest") {
    return std::make_unique<adversary::FixedNode>(tree,
                                                  adversary::Site::Deepest);
  }
  if (kind == "fixed-sink-child") {
    return std::make_unique<adversary::FixedNode>(tree,
                                                  adversary::Site::SinkChild);
  }
  if (kind == "random-uniform") {
    return std::make_unique<adversary::RandomUniform>(seed);
  }
  if (kind == "random-leaf") {
    return std::make_unique<adversary::RandomLeaf>(seed);
  }
  if (kind == "train-and-slam") {
    return std::make_unique<adversary::TrainAndSlam>(tree);
  }
  if (kind == "alternator") {
    return std::make_unique<adversary::Alternator>(tree, 13);
  }
  if (kind == "pile-on") return std::make_unique<adversary::PileOn>();
  if (kind == "feed-the-block") {
    return std::make_unique<adversary::FeedTheBlock>();
  }
  CVG_CHECK(false) << "unknown adversary kind " << kind;
  return nullptr;
}

const char* const kAdversaries[] = {
    "fixed-deepest", "fixed-sink-child", "random-uniform", "random-leaf",
    "train-and-slam", "alternator",      "pile-on",        "feed-the-block"};

// ---------------------------------------------------------------------------
// Invariants that hold for every policy under every adversary.
// ---------------------------------------------------------------------------

using GridParam = std::tuple<const char*, const char*>;  // policy, adversary

class ModelInvariants : public ::testing::TestWithParam<GridParam> {};

TEST_P(ModelInvariants, HoldOnPathsAndTrees) {
  const std::string policy_name = std::get<0>(GetParam());
  const std::string adversary_kind = std::get<1>(GetParam());
  const std::vector<Tree> topologies = {
      build::path(33),
      build::complete_kary(2, 5),
      build::spider(4, 5),
      build::caterpillar(8, 2),
  };
  for (const Tree& tree : topologies) {
    const PolicyPtr policy = make_policy(policy_name);
    AdversaryPtr adversary = make_adversary(adversary_kind, tree, 17);
    Simulator sim(tree, *policy, {.validate = true});
    adversary->on_simulation_start();
    std::vector<NodeId> inj;
    for (Step s = 0; s < 600; ++s) {
      inj.clear();
      adversary->plan(tree, sim.config(), s, 1, inj);
      sim.step(inj);
      // No packet loss (conservation) and no negative heights (checked
      // inside Configuration) at every step.
      ASSERT_EQ(sim.injected(),
                sim.delivered() + sim.config().total_packets());
      // Peaks dominate the live configuration.
      for (NodeId v = 1; v < tree.node_count(); ++v) {
        ASSERT_GE(sim.peak_per_node()[v], sim.config().height(v));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyAdversaryGrid, ModelInvariants,
    ::testing::Combine(::testing::Values("greedy", "downhill",
                                         "downhill-or-flat", "fie-local",
                                         "odd-even", "tree-odd-even",
                                         "tree-odd-even-willing",
                                         "centralized-fie", "max-window-2",
                                         "gradient-1"),
                       ::testing::ValuesIn(kAdversaries)),
    [](const auto& param_info) {
      std::string name = std::string(std::get<0>(param_info.param)) + "_vs_" +
                         std::get<1>(param_info.param);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// The Theorem 4.13 bound: Odd-Even stays under log2(n) + 3 on every path,
// against the full adversary battery.
// ---------------------------------------------------------------------------

class OddEvenBound : public ::testing::TestWithParam<const char*> {};

TEST_P(OddEvenBound, HoldsAcrossSizes) {
  const std::string kind = GetParam();
  for (const std::size_t n : {9u, 33u, 129u, 513u}) {
    const Tree tree = build::path(n);
    OddEvenPolicy policy;
    AdversaryPtr adversary = make_adversary(kind, tree, 23);
    const Step steps = static_cast<Step>(6 * n);
    const RunResult result = run(tree, policy, *adversary, steps);
    const Height bound =
        static_cast<Height>(std::log2(static_cast<double>(n))) + 3;
    EXPECT_LE(result.peak_height, bound) << kind << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(AdversaryBattery, OddEvenBound,
                         ::testing::ValuesIn(kAdversaries),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// The Theorem 5.11 bound on trees.
// ---------------------------------------------------------------------------

class TreeBound : public ::testing::TestWithParam<const char*> {};

TEST_P(TreeBound, HoldsAcrossTopologies) {
  const std::string kind = GetParam();
  const std::vector<Tree> topologies = {
      build::complete_kary(2, 7),   // 127 nodes
      build::complete_kary(4, 4),   // 85 nodes
      build::spider(8, 16),         // 130 nodes
      build::caterpillar(40, 2),    // 121 nodes
      build::broom(60, 60),         // 121 nodes
      build::spider_staggered(14),  // 107 nodes
  };
  for (const Tree& tree : topologies) {
    TreeOddEvenPolicy policy;
    AdversaryPtr adversary = make_adversary(kind, tree, 31);
    const Step steps = static_cast<Step>(8 * tree.node_count());
    const RunResult result = run(tree, policy, *adversary, steps);
    const Height bound = static_cast<Height>(
        2.0 * std::log2(static_cast<double>(tree.node_count()))) + 4;
    EXPECT_LE(result.peak_height, bound)
        << kind << " on " << tree.node_count() << " nodes";
  }
}

INSTANTIATE_TEST_SUITE_P(AdversaryBattery, TreeBound,
                         ::testing::ValuesIn(kAdversaries),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Randomized differential testing: both engines, both step semantics, many
// seeds — heights and delivery counts always agree between engines.
// ---------------------------------------------------------------------------

class EngineEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, StepSemantics>> {
};

TEST_P(EngineEquivalence, RandomTreesRandomTraffic) {
  const auto& [seed, semantics] = GetParam();
  Xoshiro256StarStar rng(seed);
  const Tree tree = build::random_chainy(30 + rng.below(40), 0.5, rng);
  const SimOptions options{.semantics = semantics};
  TreeOddEvenPolicy policy;
  Simulator heights(tree, policy, options);
  PacketSimulator packets(tree, policy, options);
  adversary::RandomUniform adversary(seed * 31 + 7, 0.2);
  adversary.on_simulation_start();
  std::vector<NodeId> inj;
  for (Step s = 0; s < 800; ++s) {
    inj.clear();
    adversary.plan(tree, heights.config(), s, 1, inj);
    heights.step(inj);
    packets.step(inj);
    ASSERT_EQ(heights.config(), packets.config()) << "seed " << seed;
  }
  EXPECT_EQ(heights.delivered(), packets.delivered());
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, EngineEquivalence,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 13),
                       ::testing::Values(StepSemantics::DecideBeforeInjection,
                                         StepSemantics::DecideAfterInjection)),
    [](const auto& param_info) {
      return "seed" + std::to_string(std::get<0>(param_info.param)) +
             (std::get<1>(param_info.param) == StepSemantics::DecideBeforeInjection
                  ? "_before"
                  : "_after");
    });

// ---------------------------------------------------------------------------
// Idle adversaries drain the network: every work-conserving-ish policy
// eventually delivers everything once injections stop.
// ---------------------------------------------------------------------------

TEST(Drainage, AllPoliciesDrainAfterInjectionsStop) {
  const Tree tree = build::path(24);
  for (const auto& name : standard_policy_names()) {
    if (name == "fie-local" || name == "centralized-fie") {
      continue;  // FIE variants only move on activations/empty successors
    }
    const PolicyPtr policy = make_policy(name);
    Simulator sim(tree, *policy);
    for (int i = 0; i < 40; ++i) sim.step_inject(23);
    for (int i = 0; i < 2000 && sim.in_flight() > 0; ++i) {
      sim.step_inject(kNoNode);
    }
    EXPECT_EQ(sim.in_flight(), 0u) << name << " failed to drain";
  }
}

TEST(Drainage, FieLocalDrainsToo) {
  // FIE-local also drains (successor-empty eventually propagates), just
  // more slowly.
  const Tree tree = build::path(16);
  FieLocalPolicy policy;
  Simulator sim(tree, policy);
  for (int i = 0; i < 20; ++i) sim.step_inject(15);
  for (int i = 0; i < 5000 && sim.in_flight() > 0; ++i) {
    sim.step_inject(kNoNode);
  }
  EXPECT_EQ(sim.in_flight(), 0u);
}

// ---------------------------------------------------------------------------
// Odd-Even delivers at full throughput under sustained far-end injection
// (the first §4 requirement: drain efficiently when fed from the left).
// ---------------------------------------------------------------------------

TEST(Throughput, OddEvenSustainsRateOneFromFarEnd) {
  const Tree tree = build::path(64);
  OddEvenPolicy policy;
  Simulator sim(tree, policy);
  const Step total = 4000;
  for (Step s = 0; s < total; ++s) sim.step_inject(63);
  // After warmup ~n the delivery rate must be ~1: delivered ≥ total − n − slack.
  EXPECT_GE(sim.delivered(), total - 64 - 96);
}

TEST(Throughput, FieLocalIsHalfRate) {
  // FIE's steady-state throughput is ½, which is exactly why it is
  // unbounded under a rate-1 adversary [21].
  const Tree tree = build::path(64);
  FieLocalPolicy policy;
  Simulator sim(tree, policy);
  const Step total = 4000;
  for (Step s = 0; s < total; ++s) sim.step_inject(63);
  EXPECT_LE(sim.delivered(), total / 2 + 64);
  EXPECT_GE(sim.config().max_height(), 100);  // the backlog piles up
}

}  // namespace
}  // namespace cvg
