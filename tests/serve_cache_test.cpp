/// Content-addressed result cache: LRU ordering, the byte bound, recency
/// refresh on re-insert, and the disk spill/promote tier.

#include "cvg/serve/cache.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

namespace cvg::serve {
namespace {

class SpillDir {
 public:
  SpillDir()
      : path_(std::filesystem::temp_directory_path() /
              ("cvg_cache_test_" + std::to_string(::getpid()))) {
    std::filesystem::remove_all(path_);
  }
  ~SpillDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

TEST(ServeCache, HitsAfterInsertMissesBefore) {
  ResultCache cache(8, 1 << 20);
  EXPECT_FALSE(cache.lookup(1).has_value());
  cache.insert(1, "payload-one");
  const auto hit = cache.lookup(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "payload-one");

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, std::string("payload-one").size());
}

TEST(ServeCache, EvictsLeastRecentlyUsedAtTheEntryBound) {
  ResultCache cache(2, 1 << 20);
  cache.insert(1, "a");
  cache.insert(2, "b");
  // Touch key 1 so key 2 becomes the LRU victim.
  EXPECT_TRUE(cache.lookup(1).has_value());
  cache.insert(3, "c");
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_FALSE(cache.lookup(2).has_value());
  EXPECT_TRUE(cache.lookup(3).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ServeCache, EnforcesTheByteBound) {
  ResultCache cache(100, 10);
  cache.insert(1, "aaaa");  // 4 bytes
  cache.insert(2, "bbbb");  // 8 bytes total
  cache.insert(3, "cccc");  // would be 12 — evicts key 1
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_TRUE(cache.lookup(2).has_value());
  EXPECT_TRUE(cache.lookup(3).has_value());
  EXPECT_LE(cache.stats().bytes, 10u);
}

TEST(ServeCache, RefusesPayloadsLargerThanTheByteBound) {
  ResultCache cache(100, 8);
  cache.insert(1, "way too large to ever fit");
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ServeCache, ReinsertRefreshesRecencyAndPayload) {
  ResultCache cache(2, 1 << 20);
  cache.insert(1, "old");
  cache.insert(2, "b");
  cache.insert(1, "new");  // refresh: key 2 is now the LRU victim
  cache.insert(3, "c");
  EXPECT_FALSE(cache.lookup(2).has_value());
  const auto hit = cache.lookup(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "new");
}

TEST(ServeCache, SpillsEvictionsToDiskAndPromotesThemBack) {
  SpillDir dir;
  ResultCache cache(1, 1 << 20, dir.str());
  cache.insert(1, "spilled-payload");
  cache.insert(2, "resident");  // evicts key 1 to disk

  // Key 1 is gone from memory but comes back from the disk tier.
  const auto promoted = cache.lookup(1);
  ASSERT_TRUE(promoted.has_value());
  EXPECT_EQ(*promoted, "spilled-payload");

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.spill_hits, 1u);
  EXPECT_GE(stats.evictions, 1u);

  // The promotion re-entered the memory tier, so a repeat lookup is a
  // plain memory hit.
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_GE(cache.stats().hits, 1u);
}

TEST(ServeCache, MissesStayMissesWithoutASpillDir) {
  ResultCache cache(1, 1 << 20);  // no disk tier
  cache.insert(1, "a");
  cache.insert(2, "b");  // evicts key 1 for good
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.stats().spill_hits, 0u);
}

TEST(ServeCache, SpillFilesAreNamedByHexKey) {
  SpillDir dir;
  {
    ResultCache cache(1, 1 << 20, dir.str());
    cache.insert(0xdeadbeefu, "x");
    cache.insert(2, "y");  // spill 0xdeadbeef
    const std::filesystem::path expected =
        std::filesystem::path(dir.str()) / "00000000deadbeef.json";
    EXPECT_TRUE(std::filesystem::exists(expected)) << expected;
  }
}

TEST(ServeCache, SpilledEntriesSurviveACacheRestart) {
  SpillDir dir;
  {
    ResultCache cache(1, 1 << 20, dir.str());
    cache.insert(7, "durable");
    cache.insert(8, "other");  // spill key 7
  }
  ResultCache reborn(4, 1 << 20, dir.str());
  const auto hit = reborn.lookup(7);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "durable");
  EXPECT_EQ(reborn.stats().spill_hits, 1u);
}

}  // namespace
}  // namespace cvg::serve
