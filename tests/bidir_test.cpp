// Tests for the undirected-path substrate (Theorem 3.3's model): transition
// semantics, conservation, the diffusion balancer's behaviour, and the
// empirical log barrier.

#include <gtest/gtest.h>

#include <cmath>

#include "cvg/sim/bidir.hpp"
#include "cvg/util/rng.hpp"

namespace cvg {
namespace {

TEST(Bidir, OddEvenMatchesDirectedBehaviour) {
  BidirOddEven policy;
  // Never sends away from the sink.
  for (Height own = 0; own <= 6; ++own) {
    for (Height toward = 0; toward <= 6; ++toward) {
      for (Height away = -1; away <= 6; ++away) {
        EXPECT_FALSE(policy.decide(own, toward, away).away);
      }
    }
  }
  EXPECT_TRUE(policy.decide(1, 1, 0).toward_sink);   // odd, flat
  EXPECT_FALSE(policy.decide(2, 2, 0).toward_sink);  // even, flat
  EXPECT_TRUE(policy.decide(2, 1, 0).toward_sink);   // even, downhill
}

TEST(Bidir, DiffusionSpillsOnlyDownTwo) {
  BidirDiffusion policy;
  EXPECT_TRUE(policy.decide(4, 4, 2).away);
  EXPECT_FALSE(policy.decide(4, 4, 3).away);   // only 1 lower
  EXPECT_FALSE(policy.decide(4, 4, -1).away);  // no neighbour there
  // A single packet goes towards the sink, never backwards.
  const BidirSend send = policy.decide(1, 0, -1);
  EXPECT_TRUE(send.toward_sink);
  EXPECT_FALSE(send.away);
}

TEST(Bidir, SinglePacketReachesSink) {
  BidirOddEven policy;
  BidirPathSimulator sim(5, policy);
  sim.step_inject(4);
  for (int i = 0; i < 10; ++i) sim.step_inject(kNoNode);
  EXPECT_EQ(sim.delivered(), 1u);
  EXPECT_EQ(sim.config().total_packets(), 0u);
}

TEST(Bidir, ConservationUnderRandomTraffic) {
  for (const bool use_diffusion : {false, true}) {
    BidirOddEven odd_even;
    BidirDiffusion diffusion;
    const BidirPolicy& policy =
        use_diffusion ? static_cast<const BidirPolicy&>(diffusion)
                      : static_cast<const BidirPolicy&>(odd_even);
    BidirPathSimulator sim(24, policy);
    Xoshiro256StarStar rng(77);
    for (Step s = 0; s < 1000; ++s) {
      const NodeId t = rng.bernoulli(0.8)
                           ? static_cast<NodeId>(1 + rng.below(23))
                           : kNoNode;
      sim.step_inject(t);
      ASSERT_EQ(sim.injected(),
                sim.delivered() + sim.config().total_packets())
          << policy.name() << " step " << s;
    }
  }
}

TEST(Bidir, CheckpointCopySemantics) {
  BidirDiffusion policy;
  BidirPathSimulator sim(16, policy);
  for (int i = 0; i < 30; ++i) sim.step_inject(15);
  BidirPathSimulator checkpoint = sim;
  for (int i = 0; i < 20; ++i) sim.step_inject(1);
  for (int i = 0; i < 20; ++i) checkpoint.step_inject(1);
  EXPECT_EQ(sim.config(), checkpoint.config());
  EXPECT_EQ(sim.delivered(), checkpoint.delivered());
}

TEST(Bidir, DiffusionSpreadsPilesBackwards) {
  // Start from a tall pile mid-path with an empty tail behind it: diffusion
  // must reduce the maximum faster than the directed engine could (which
  // sheds at most 1/step through the single forward link).
  BidirDiffusion policy;
  BidirPathSimulator sim(12, policy);
  Configuration piled(12);
  piled.set_height(6, 10);
  sim.set_config(piled);
  sim.step_inject(kNoNode);
  sim.step_inject(kNoNode);
  // After two steps, the pile shed both forwards and backwards.
  EXPECT_LE(sim.config().height(6), 7);
  EXPECT_GE(sim.config().height(7), 1);  // something went backwards
}

TEST(Bidir, StillLogarithmicUnderSustainedAttack) {
  // Far-end pressure plus near-sink pressure alternating: diffusion's peak
  // stays small (the full staged-adversary experiment lives in bench_bidir).
  BidirDiffusion policy;
  const std::size_t n = 256;
  BidirPathSimulator sim(n + 1, policy);
  for (Step s = 0; s < 4 * n; ++s) {
    sim.step_inject(s % (2 * 64) < 64 ? static_cast<NodeId>(n) : NodeId{1});
  }
  EXPECT_LE(sim.peak_height(),
            static_cast<Height>(std::log2(static_cast<double>(n))) + 4);
}

TEST(Bidir, NoBackwardSendOffTheEnd) {
  BidirDiffusion policy;
  BidirPathSimulator sim(4, policy);
  // Pile at the far end (node 3, no right neighbour): must never send away.
  Configuration piled(4);
  piled.set_height(3, 8);
  sim.set_config(piled);
  for (int i = 0; i < 20; ++i) sim.step_inject(kNoNode);
  EXPECT_EQ(sim.delivered(), 8u);
}

}  // namespace
}  // namespace cvg
