// Unit tests for cvg_policy: each scheduling rule against hand-computed
// expectations, sibling arbitration, locality conformance, and the registry.

#include <gtest/gtest.h>

#include "cvg/policy/centralized_fie.hpp"
#include "cvg/policy/registry.hpp"
#include "cvg/policy/standard.hpp"
#include "cvg/topology/builders.hpp"
#include "cvg/util/rng.hpp"

namespace cvg {
namespace {

/// Computes the send vector for `policy` on a path with the given heights.
std::vector<Capacity> sends_on_path(const Policy& policy,
                                    std::vector<Height> heights,
                                    Capacity capacity = 1) {
  const Tree tree = build::path(heights.size());
  const Configuration config(std::move(heights));
  std::vector<Capacity> sends(tree.node_count(), 0);
  policy.compute_sends(tree, config, {}, capacity, sends);
  return sends;
}

TEST(Policy, GreedyForwardsWheneverNonEmpty) {
  GreedyPolicy greedy;
  const auto sends = sends_on_path(greedy, {0, 2, 0, 1, 5});
  EXPECT_EQ(sends[1], 1);
  EXPECT_EQ(sends[2], 0);
  EXPECT_EQ(sends[3], 1);
  EXPECT_EQ(sends[4], 1);
}

TEST(Policy, GreedyUsesCapacity) {
  GreedyPolicy greedy;
  const auto sends = sends_on_path(greedy, {0, 1, 5}, /*capacity=*/3);
  EXPECT_EQ(sends[1], 1);  // clamped by buffer content
  EXPECT_EQ(sends[2], 3);  // clamped by capacity
}

TEST(Policy, DownhillNeedsStrictDescent) {
  DownhillPolicy downhill;
  const auto sends = sends_on_path(downhill, {0, 2, 2, 3, 3});
  EXPECT_EQ(sends[1], 1);  // 2 > 0 (sink)
  EXPECT_EQ(sends[2], 0);  // 2 == 2
  EXPECT_EQ(sends[3], 1);  // 3 > 2
  EXPECT_EQ(sends[4], 0);  // 3 == 3
}

TEST(Policy, DownhillOrFlatForwardsOnFlat) {
  DownhillOrFlatPolicy dof;
  const auto sends = sends_on_path(dof, {0, 2, 2, 3, 3});
  EXPECT_EQ(sends[1], 1);
  EXPECT_EQ(sends[2], 1);  // flat forwards
  EXPECT_EQ(sends[3], 1);
  EXPECT_EQ(sends[4], 1);
  // But never uphill.
  const auto uphill = sends_on_path(dof, {0, 3, 2});
  EXPECT_EQ(uphill[2], 0);
}

TEST(Policy, FieLocalNeedsEmptySuccessor) {
  FieLocalPolicy fie;
  const auto sends = sends_on_path(fie, {0, 0, 1, 1, 2});
  EXPECT_EQ(sends[2], 1);  // successor empty
  EXPECT_EQ(sends[3], 0);  // successor holds 1
  EXPECT_EQ(sends[4], 0);
}

TEST(Policy, OddEvenRuleTable) {
  // Odd own height: forward iff succ <= own.  Even: iff succ < own.
  EXPECT_TRUE(OddEvenPolicy::rule(1, 0));
  EXPECT_TRUE(OddEvenPolicy::rule(1, 1));
  EXPECT_FALSE(OddEvenPolicy::rule(1, 2));
  EXPECT_TRUE(OddEvenPolicy::rule(2, 1));
  EXPECT_FALSE(OddEvenPolicy::rule(2, 2));
  EXPECT_FALSE(OddEvenPolicy::rule(2, 3));
  EXPECT_TRUE(OddEvenPolicy::rule(3, 3));
  EXPECT_FALSE(OddEvenPolicy::rule(4, 4));
}

TEST(Policy, OddEvenOnPath) {
  OddEvenPolicy odd_even;
  const auto sends = sends_on_path(odd_even, {0, 1, 1, 2, 2, 3});
  EXPECT_EQ(sends[1], 1);  // h=1 odd, succ 0 <= 1
  EXPECT_EQ(sends[2], 1);  // h=1 odd, succ 1 <= 1
  EXPECT_EQ(sends[3], 1);  // h=2 even, succ 1 < 2
  EXPECT_EQ(sends[4], 0);  // h=2 even, succ 2 not < 2
  EXPECT_EQ(sends[5], 1);  // h=3 odd, succ 2 <= 3
}

TEST(Policy, EmptyNodesNeverSend) {
  for (const auto& name : standard_policy_names()) {
    if (name == "centralized-fie") continue;
    const PolicyPtr policy = make_policy(name);
    const auto sends = sends_on_path(*policy, {0, 0, 0, 0});
    for (const Capacity s : sends) EXPECT_EQ(s, 0) << name;
  }
}

TEST(Policy, TreeOddEvenStrictArbitration) {
  // Star: nodes 2..4 are children of hub 1.  Heights: h(2)=3, h(3)=2,
  // h(4)=2, hub h=1.  The tallest sibling (2) gates; it is odd(3) with
  // succ 1 <= 3 so it sends; the others must stay silent.
  const Tree tree = build::star(3);
  TreeOddEvenPolicy policy(ArbitrationMode::Strict);
  Configuration config({0, 1, 3, 2, 2});
  std::vector<Capacity> sends(tree.node_count(), 0);
  policy.compute_sends(tree, config, {}, 1, sends);
  EXPECT_EQ(sends[2], 1);
  EXPECT_EQ(sends[3], 0);
  EXPECT_EQ(sends[4], 0);
}

TEST(Policy, TreeOddEvenStrictGateBlocksAll) {
  // Tallest sibling parity-blocked (h=2 even, succ 2 not < 2): nobody sends
  // under strict arbitration, even though node 3 (h=1, odd, 2 > 1) wouldn't
  // send anyway and node 4 (h=3... ) — set up so a shorter sibling *would*
  // send if allowed.
  const Tree tree = build::star(2);  // children 2, 3 of hub 1
  TreeOddEvenPolicy strict(ArbitrationMode::Strict);
  // h(2)=4 (even, succ 3 < 4 would send... choose succ equal): hub h=4.
  // h(2)=4 even, succ 4: blocked.  h(3)=3 odd, succ 4 > 3: blocked anyway.
  // Use hub h=3: h(2)=4 even succ 3 < 4 -> gate sends.  Pick hub height so
  // the gate is blocked but the short sibling is not: hub=4, h(2)=4 blocked;
  // h(3)=5 odd... taller.  Use h(2)=6 gate even succ 5... tricky: blocked
  // even gate needs succ >= gate; shorter sibling odd with succ <= it needs
  // succ <= sibling < gate <= succ — impossible.  An odd gate blocked needs
  // succ > gate, and then every shorter sibling is blocked too.  So under
  // strict arbitration a blocked gate implies nobody could send anyway —
  // which is exactly why the variant stays work-conserving in practice.
  Configuration config({0, 4, 4, 3});
  std::vector<Capacity> sends(tree.node_count(), 0);
  strict.compute_sends(tree, config, {}, 1, sends);
  EXPECT_EQ(sends[2], 0);
  EXPECT_EQ(sends[3], 0);
}

TEST(Policy, TreeOddEvenWillingArbitration) {
  // Willing-only: the tallest *willing* sibling sends.  h(2)=2 even with
  // succ 2 is blocked; h(3)=1 odd with succ 2 is blocked; h(4)=3 odd with
  // succ 2 <= 3 is willing and sends despite h(2)... make h(2) taller.
  const Tree tree = build::star(3);
  TreeOddEvenPolicy willing(ArbitrationMode::WillingOnly);
  Configuration config({0, 2, 4, 1, 3});  // hub=2; children 2,3,4
  // h(2)=4 even, succ 2 < 4 -> willing (and tallest) -> sends.
  std::vector<Capacity> sends(tree.node_count(), 0);
  willing.compute_sends(tree, config, {}, 1, sends);
  EXPECT_EQ(sends[2], 1);
  EXPECT_EQ(sends[3], 0);
  EXPECT_EQ(sends[4], 0);

  // Now block the tallest: h(2)=4 with hub 4 -> blocked; willing sibling
  // h(4)=5 odd succ 4 <= 5 -> sends under willing-only.
  Configuration config2({0, 4, 4, 1, 5});
  // ... but 5 > 4 makes node 4 the tallest anyway; use h(4)=3 odd succ 4 >
  // 3 blocked.  Willing arbitration with everyone blocked: nobody sends.
  std::vector<Capacity> sends2(tree.node_count(), 0);
  willing.compute_sends(tree, config2, {}, 1, sends2);
  EXPECT_EQ(sends2[2], 0);
  EXPECT_EQ(sends2[4], 1);  // h=5 odd, succ 4 <= 5: willing and tallest
}

TEST(Policy, TreeOddEvenTieBreaksBySmallerId) {
  const Tree tree = build::star(2);
  TreeOddEvenPolicy policy(ArbitrationMode::Strict);
  Configuration config({0, 0, 1, 1});  // equal-height children 2 and 3
  std::vector<Capacity> sends(tree.node_count(), 0);
  policy.compute_sends(tree, config, {}, 1, sends);
  EXPECT_EQ(sends[2], 1);
  EXPECT_EQ(sends[3], 0);
}

TEST(Policy, AtMostOnePacketPerIntersection) {
  Xoshiro256StarStar rng(31);
  const Tree tree = build::complete_kary(3, 4);
  TreeOddEvenPolicy policy;
  for (int trial = 0; trial < 200; ++trial) {
    Configuration config(tree.node_count());
    for (NodeId v = 1; v < tree.node_count(); ++v) {
      config.set_height(v, static_cast<Height>(rng.below(5)));
    }
    std::vector<Capacity> sends(tree.node_count(), 0);
    policy.compute_sends(tree, config, {}, 1, sends);
    for (NodeId p = 0; p < tree.node_count(); ++p) {
      Capacity incoming = 0;
      for (const NodeId c : tree.children(p)) incoming += sends[c];
      EXPECT_LE(incoming, 1) << "intersection " << p;
    }
  }
}

TEST(Policy, MaxWindowReducesToDownhillOrFlatAtOne) {
  MaxWindowPolicy window(1);
  DownhillOrFlatPolicy dof;
  Xoshiro256StarStar rng(41);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Height> heights(10, 0);
    for (std::size_t v = 1; v < heights.size(); ++v) {
      heights[v] = static_cast<Height>(rng.below(4));
    }
    EXPECT_EQ(sends_on_path(window, heights), sends_on_path(dof, heights));
  }
}

TEST(Policy, MaxWindowLooksFurther) {
  MaxWindowPolicy window(3);
  // Node 4 (h=2) sees successors h = 1, 1, 3 -> max 3 > 2: blocked.
  const auto sends = sends_on_path(window, {0, 3, 1, 1, 2});
  EXPECT_EQ(sends[4], 0);
  // With window 1 it would forward (succ h=1 <= 2).
  MaxWindowPolicy near(1);
  EXPECT_EQ(sends_on_path(near, {0, 3, 1, 1, 2})[4], 1);
}

TEST(Policy, GradientFamily) {
  GradientPolicy g0(0);
  GradientPolicy g2(2);
  const std::vector<Height> heights = {0, 1, 2, 2, 4};
  EXPECT_EQ(sends_on_path(g0, heights)[3], 1);  // 2-2 >= 0
  EXPECT_EQ(sends_on_path(g2, heights)[3], 0);  // 2-2 < 2
  EXPECT_EQ(sends_on_path(g2, heights)[4], 1);  // 4-2 >= 2
}

TEST(Policy, LocalityConformance) {
  // A 1-local policy's decision at node v must not change when heights more
  // than 1 hop away change.
  Xoshiro256StarStar rng(53);
  for (const char* name : {"downhill", "downhill-or-flat", "odd-even",
                           "fie-local", "gradient-1"}) {
    const PolicyPtr policy = make_policy(name);
    ASSERT_EQ(policy->locality(), 1) << name;
    const Tree tree = build::path(12);
    for (int trial = 0; trial < 50; ++trial) {
      std::vector<Height> heights(12, 0);
      for (std::size_t v = 1; v < 12; ++v) {
        heights[v] = static_cast<Height>(rng.below(5));
      }
      std::vector<Capacity> base(12, 0);
      policy->compute_sends(tree, Configuration(heights), {}, 1, base);

      // Perturb far-away heights relative to node 6 and compare its send.
      auto perturbed = heights;
      for (const std::size_t far : {1ul, 2ul, 3ul, 9ul, 10ul, 11ul}) {
        perturbed[far] = static_cast<Height>(rng.below(5));
      }
      std::vector<Capacity> other(12, 0);
      policy->compute_sends(tree, Configuration(perturbed), {}, 1, other);
      EXPECT_EQ(base[6], other[6]) << name << " is not 1-local";
    }
  }
}

TEST(Registry, KnownNames) {
  for (const auto& name : standard_policy_names()) {
    EXPECT_TRUE(is_known_policy(name)) << name;
    EXPECT_EQ(make_policy(name)->name(), name);
  }
  EXPECT_TRUE(is_known_policy("max-window-4"));
  EXPECT_TRUE(is_known_policy("gradient-0"));
  EXPECT_FALSE(is_known_policy("nonsense"));
  EXPECT_FALSE(is_known_policy("max-window-"));
  EXPECT_FALSE(is_known_policy("max-window-0"));
  EXPECT_FALSE(is_known_policy("gradient--1"));
}

TEST(Registry, LocalityMetadata) {
  EXPECT_EQ(make_policy("greedy")->locality(), 0);
  EXPECT_EQ(make_policy("odd-even")->locality(), 1);
  EXPECT_EQ(make_policy("tree-odd-even")->locality(), 2);
  EXPECT_EQ(make_policy("centralized-fie")->locality(), -1);
  EXPECT_EQ(make_policy("max-window-5")->locality(), 5);
  EXPECT_TRUE(make_policy("centralized-fie")->is_centralized());
  EXPECT_FALSE(make_policy("odd-even")->is_centralized());
}

TEST(CentralizedFie, ActivatesPathOfInjection) {
  const Tree tree = build::path(5);
  CentralizedFiePolicy fie;
  fie.reset();
  Configuration config({0, 1, 1, 0, 1});
  std::vector<Capacity> sends(5, 0);
  const NodeId injections[] = {4};
  fie.compute_sends(tree, config, injections, 1, sends);
  // Path 4 -> 3 -> 2 -> 1: non-empty nodes on it forward one packet each.
  EXPECT_EQ(sends[4], 1);
  EXPECT_EQ(sends[3], 0);  // empty
  EXPECT_EQ(sends[2], 1);
  EXPECT_EQ(sends[1], 1);
}

TEST(CentralizedFie, QueuesBurstActivations) {
  const Tree tree = build::path(4);
  CentralizedFiePolicy fie;
  fie.reset();
  Configuration config({0, 0, 0, 0});
  std::vector<Capacity> sends(4, 0);
  const NodeId burst[] = {3, 3, 3};
  fie.compute_sends(tree, config, burst, 1, sends);
  EXPECT_EQ(fie.pending_activations(), 2u);  // one served, two queued
  sends.assign(4, 0);
  fie.compute_sends(tree, config, {}, 1, sends);
  EXPECT_EQ(fie.pending_activations(), 1u);
}

TEST(ValidateSendsDeathTest, CatchesOverSend) {
  const Tree tree = build::path(3);
  const Configuration config({0, 1, 0});
  const std::vector<Capacity> sends = {0, 1, 1};  // node 2 sends from empty
  EXPECT_DEATH(validate_sends(tree, config, 1, sends), "more than it buffers");
}

}  // namespace
}  // namespace cvg
