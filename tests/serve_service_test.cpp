/// End-to-end service behaviour: content-addressed memoization (including
/// sweep cells warming later runs), explicit queue_full backpressure,
/// per-job timeouts, the shutdown admission gate, the stats op, the
/// fd-pair transport's drain-on-EOF contract, and the socket transport's
/// idle-connection shutdown.

#include "cvg/serve/service.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cvg/serve/json.hpp"
#include "cvg/serve/transport.hpp"

namespace cvg::serve {
namespace {

bool has(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(ServeService, SecondIdenticalRunIsACacheHit) {
  Service service;
  const std::string request =
      R"({"op":"run","topology":"path:32","policy":"odd-even","steps":256,"id":"a"})";
  const std::string cold = service.process_line(request);
  EXPECT_TRUE(has(cold, "\"ok\":true")) << cold;
  EXPECT_TRUE(has(cold, "\"cached\":false")) << cold;

  const std::string warm = service.process_line(request);
  EXPECT_TRUE(has(warm, "\"ok\":true")) << warm;
  EXPECT_TRUE(has(warm, "\"cached\":true")) << warm;

  // The memoized payload is byte-identical to the computed one.
  const auto result_of = [](const std::string& line) {
    const std::size_t at = line.find("\"result\":");
    return at == std::string::npos ? std::string{} : line.substr(at);
  };
  EXPECT_EQ(result_of(cold), result_of(warm));
  EXPECT_EQ(service.stats().cache_hits, 1u);
  EXPECT_EQ(service.cache_stats().hits, 1u);
}

TEST(ServeService, CacheFalseBypassesMemoization) {
  Service service;
  const std::string request =
      R"({"op":"run","topology":"path:32","policy":"odd-even","steps":256,"cache":false})";
  EXPECT_TRUE(has(service.process_line(request), "\"cached\":false"));
  EXPECT_TRUE(has(service.process_line(request), "\"cached\":false"));
  EXPECT_EQ(service.stats().cache_hits, 0u);
}

TEST(ServeService, SweepCellsWarmTheRunCacheAndViceVersa) {
  Service service;
  const std::string sweep = service.process_line(
      R"({"op":"sweep","topologies":["path:16","star:4"],)"
      R"("policies":["odd-even","greedy"],"steps":128})");
  EXPECT_TRUE(has(sweep, "\"ok\":true")) << sweep;
  EXPECT_TRUE(has(sweep, "\"cached\":false")) << sweep;

  // Every cell of the sweep is now memoized under its run-cell hash, so the
  // matching single `run` never touches a worker's simulator.
  const std::string run = service.process_line(
      R"({"op":"run","topology":"star:4","policy":"greedy","steps":128})");
  EXPECT_TRUE(has(run, "\"ok\":true")) << run;
  EXPECT_TRUE(has(run, "\"cached\":true")) << run;

  // And a repeat of the whole sweep is served entirely from the cache.
  const std::string warm_sweep = service.process_line(
      R"({"op":"sweep","topologies":["path:16","star:4"],)"
      R"("policies":["odd-even","greedy"],"steps":128})");
  EXPECT_TRUE(has(warm_sweep, "\"cached\":true")) << warm_sweep;
}

TEST(ServeService, SeedsAxisRunsAsOneLaneBlockAndWarmsTheRunCache) {
  Service service;
  // random-uniform is oblivious and odd-even is lane-supported, so the three
  // seeds of the (topology, policy) pair advance as one lane block on the
  // batched engine.
  const std::string sweep = service.process_line(
      R"({"op":"sweep","topologies":["path:16"],"policies":["odd-even"],)"
      R"("adversary":"random-uniform","steps":128,"seeds":[7,8,9]})");
  EXPECT_TRUE(has(sweep, "\"ok\":true")) << sweep;
  EXPECT_TRUE(has(sweep, "\"cell_count\":3")) << sweep;
  EXPECT_TRUE(has(sweep, "\"cached_cells\":0")) << sweep;
  EXPECT_TRUE(has(sweep, "\"seed\":8")) << sweep;

  // A later single run at one of the seeds is a cache hit: the lane block
  // stored its cell under the same key the run path computes.
  const std::string run = service.process_line(
      R"({"op":"run","topology":"path:16","policy":"odd-even",)"
      R"("adversary":"random-uniform","steps":128,"seed":8})");
  EXPECT_TRUE(has(run, "\"ok\":true")) << run;
  EXPECT_TRUE(has(run, "\"cached\":true")) << run;

  // And the block's memoized payload is byte-identical to an uncached
  // recompute of the same cell — the lane block and the single-cell path
  // agree bit-for-bit.
  const std::string recompute = service.process_line(
      R"({"op":"run","topology":"path:16","policy":"odd-even",)"
      R"("adversary":"random-uniform","steps":128,"seed":8,"cache":false})");
  const auto result_of = [](const std::string& line) {
    const std::size_t at = line.find("\"result\":");
    return at == std::string::npos ? std::string{} : line.substr(at);
  };
  EXPECT_EQ(result_of(run), result_of(recompute));
}

TEST(ServeService, DifferentSemanticFieldsMissTheCache) {
  Service service;
  EXPECT_TRUE(has(
      service.process_line(
          R"({"op":"run","topology":"path:32","policy":"odd-even","steps":256})"),
      "\"cached\":false"));
  // Same cell except for the seed — must recompute, not alias.
  EXPECT_TRUE(has(
      service.process_line(
          R"({"op":"run","topology":"path:32","policy":"odd-even","steps":256,"seed":2})"),
      "\"cached\":false"));
}

TEST(ServeService, FullQueueAnswersQueueFullInline) {
  ServiceOptions options;
  options.threads = 1;
  options.queue_capacity = 1;
  Service service(options);

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::string> responses;
  const auto respond = [&](std::string response) {
    std::lock_guard<std::mutex> lock(mutex);
    responses.push_back(std::move(response));
    cv.notify_all();
  };

  // With one worker and a one-slot queue, submitting uncached jobs
  // back-to-back must hit explicit backpressure: queue_full is answered
  // inline on the submitting thread (do NOT hold locks across
  // submit_line), so once the worker and the queue slot are both busy the
  // rejection is deterministic.  The jobs are sized to run for
  // milliseconds — orders of magnitude longer than the submission loop's
  // microseconds, yet nowhere near the 60 s default timeout even under the
  // sanitizers (a timeout here would corrupt the ok-count below).
  std::size_t submitted = 0;
  bool saw_queue_full = false;
  for (int i = 0; i < 64 && !saw_queue_full; ++i) {
    const std::string request =
        R"({"op":"run","topology":"path:256","policy":"odd-even","steps":65536,)"
        R"("cache":false,"seed":)" +
        std::to_string(i + 1) + "}";
    service.submit_line(request, respond);
    ++submitted;
    std::lock_guard<std::mutex> lock(mutex);
    for (const std::string& response : responses)
      if (has(response, "\"code\":\"queue_full\"")) saw_queue_full = true;
  }
  EXPECT_TRUE(saw_queue_full);

  // Exactly one response per submission, and every accepted job still
  // answers ok — backpressure rejects, it never drops.
  service.drain();
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return responses.size() >= submitted; });
  EXPECT_EQ(responses.size(), submitted);
  std::size_t ok = 0, rejected = 0;
  for (const std::string& response : responses) {
    if (has(response, "\"ok\":true")) ++ok;
    if (has(response, "\"code\":\"queue_full\"")) ++rejected;
  }
  EXPECT_GE(rejected, 1u);
  EXPECT_EQ(ok + rejected, submitted);
}

TEST(ServeService, TimeoutsAnswerStructuredTimeoutErrors) {
  Service service;
  const std::string response = service.process_line(
      R"({"op":"run","topology":"path:1024","policy":"odd-even",)"
      R"("steps":16777216,"timeout_ms":1,"id":"slow"})");
  EXPECT_TRUE(has(response, "\"ok\":false")) << response;
  EXPECT_TRUE(has(response, "\"code\":\"timeout\"")) << response;
  EXPECT_TRUE(has(response, "\"id\":\"slow\"")) << response;
  // Error outcomes are never memoized: a generous retry recomputes.
  EXPECT_EQ(service.cache_stats().insertions, 0u);
}

TEST(ServeService, ReplayOfAMissingFileIsNotFound) {
  Service service;
  const std::string response = service.process_line(
      R"({"op":"replay","file":"/nonexistent/entry.cvgc"})");
  EXPECT_TRUE(has(response, "\"ok\":false")) << response;
  EXPECT_TRUE(has(response, "\"code\":\"not_found\"")) << response;
}

TEST(ServeService, ReplaysTheStarterCorpus) {
  Service service;
  const std::string dir = std::string(CVG_REPO_ROOT) + "/tests/corpus";
  const std::string response = service.process_line(
      R"({"op":"certify","file":")" + dir + R"("})");
  EXPECT_TRUE(has(response, "\"ok\":true")) << response;
  EXPECT_TRUE(has(response, "\"failures\":0")) << response;
  // Certify is content-addressed over the corpus bytes, so an immediate
  // repeat is a hit.
  EXPECT_TRUE(has(service.process_line(
                      R"({"op":"certify","file":")" + dir + R"("})"),
                  "\"cached\":true"));
}

TEST(ServeService, ReplayCacheDoesNotAliasIdenticalEntriesAtDifferentPaths) {
  // The cached replay payload embeds the request's "file" field, so two
  // paths holding byte-identical corpus entries must not share a cache
  // entry — the second response would echo the first request's path.
  char tmpl[] = "/tmp/cvg_replay_alias_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir(tmpl);
  const std::string source =
      std::string(CVG_REPO_ROOT) + "/tests/corpus/2e1aead424229a20.cvgc";
  const std::string first_path = dir + "/a.cvgc";
  const std::string second_path = dir + "/b.cvgc";
  ASSERT_TRUE(std::filesystem::copy_file(source, first_path));
  ASSERT_TRUE(std::filesystem::copy_file(source, second_path));

  Service service;
  const auto replay = [&](const std::string& path) {
    return service.process_line(R"({"op":"replay","file":")" + path + R"("})");
  };
  const std::string first = replay(first_path);
  EXPECT_TRUE(has(first, "\"ok\":true")) << first;
  EXPECT_TRUE(has(first, "\"file\":\"" + first_path + "\"")) << first;

  const std::string second = replay(second_path);
  EXPECT_TRUE(has(second, "\"cached\":false")) << second;
  EXPECT_TRUE(has(second, "\"file\":\"" + second_path + "\"")) << second;

  // Same path, same bytes: that one is a legitimate hit.
  EXPECT_TRUE(has(replay(first_path), "\"cached\":true"));
  std::filesystem::remove_all(dir);
}

TEST(ServeService, StatsOpReportsCountersCacheAndLatency) {
  Service service;
  (void)service.process_line(
      R"({"op":"run","topology":"path:16","policy":"odd-even","steps":64})");
  const std::string stats = service.process_line(R"({"op":"stats","id":"s"})");
  EXPECT_TRUE(has(stats, "\"ok\":true")) << stats;
  EXPECT_TRUE(has(stats, "\"received\"")) << stats;
  EXPECT_TRUE(has(stats, "\"cache\"")) << stats;
  EXPECT_TRUE(has(stats, "\"hit_rate\"")) << stats;
  EXPECT_TRUE(has(stats, "\"latency\"")) << stats;
  EXPECT_TRUE(has(stats, "\"p95_micros\"")) << stats;

  // The payload is well-formed JSON, not just greppable text.
  std::string error;
  EXPECT_TRUE(parse_json(write_json(service.stats_json()), error).has_value())
      << error;
}

TEST(ServeService, ShutdownOpDrainsAndRejectsLateJobs) {
  Service service;
  const std::string bye = service.process_line(R"({"op":"shutdown","id":"b"})");
  EXPECT_TRUE(has(bye, "\"ok\":true")) << bye;
  EXPECT_TRUE(has(bye, "\"shutting_down\":true")) << bye;
  EXPECT_TRUE(service.shutting_down());

  const std::string late = service.process_line(
      R"({"op":"run","topology":"path:16","policy":"odd-even","steps":64})");
  EXPECT_TRUE(has(late, "\"ok\":false")) << late;
  EXPECT_TRUE(has(late, "\"code\":\"shutting_down\"")) << late;

  // Stats still answers while draining — observability survives shutdown.
  EXPECT_TRUE(has(service.process_line(R"({"op":"stats"})"), "\"ok\":true"));
}

TEST(ServeService, MalformedLinesAnswerBadRequestInline) {
  Service service;
  EXPECT_TRUE(has(service.process_line("not json"), "\"code\":\"bad_request\""));
  EXPECT_TRUE(has(service.process_line(R"({"op":"warp"})"),
                  "\"code\":\"bad_request\""));
}

/// The fd-pair transport drains on EOF: a stream of [job A, shutdown op,
/// job B] must answer A ok (even though it raced the shutdown), confirm the
/// shutdown, reject B with shutting_down, and return 0.  This is the
/// in-process half of the graceful-shutdown contract; the process half
/// (SIGTERM, EINTR, exit status) is scripts/serve_shutdown_test.sh.
TEST(ServeService, FdTransportDrainsInFlightJobsPastShutdown) {
  int in_pipe[2], out_pipe[2];
  ASSERT_EQ(::pipe(in_pipe), 0);
  ASSERT_EQ(::pipe(out_pipe), 0);

  const std::string script =
      R"({"op":"run","topology":"path:128","policy":"odd-even","steps":65536,"id":"A"})"
      "\n"
      R"({"op":"shutdown","id":"quit"})"
      "\n"
      "\n"  // blank keep-alive line: skipped, not an error
      R"({"op":"run","topology":"path:128","policy":"odd-even","steps":64,"id":"B"})"
      "\n";
  ASSERT_EQ(::write(in_pipe[1], script.data(), script.size()),
            static_cast<ssize_t>(script.size()));
  ::close(in_pipe[1]);  // EOF after the scripted requests

  Service service;
  const int rc = serve_fd(service, in_pipe[0], out_pipe[1]);
  EXPECT_EQ(rc, 0);
  ::close(in_pipe[0]);
  ::close(out_pipe[1]);

  std::string output;
  char chunk[4096];
  ssize_t got;
  while ((got = ::read(out_pipe[0], chunk, sizeof chunk)) > 0)
    output.append(chunk, static_cast<std::size_t>(got));
  ::close(out_pipe[0]);

  // One response line per request, in some order; correlate by id.
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < output.size(); ++i) {
    if (output[i] == '\n') {
      lines.push_back(output.substr(start, i - start));
      start = i + 1;
    }
  }
  ASSERT_EQ(lines.size(), 3u) << output;
  std::string a, quit, b;
  for (const std::string& line : lines) {
    if (has(line, "\"id\":\"A\"")) a = line;
    if (has(line, "\"id\":\"quit\"")) quit = line;
    if (has(line, "\"id\":\"B\"")) b = line;
  }
  EXPECT_TRUE(has(a, "\"ok\":true")) << a;
  EXPECT_TRUE(has(quit, "\"shutting_down\":true")) << quit;
  EXPECT_TRUE(has(b, "\"code\":\"shutting_down\"")) << b;
}

TEST(ServeService, FdTransportRejectsOversizedLinesWithoutBufferingThem) {
  int in_pipe[2], out_pipe[2];
  ASSERT_EQ(::pipe(in_pipe), 0);
  ASSERT_EQ(::pipe(out_pipe), 0);

  // Feed an oversized line from a writer thread (it exceeds the pipe
  // buffer, so a single write would block), then one valid request.
  std::atomic<bool> wrote{false};
  std::thread writer([&] {
    const std::string filler(1 << 16, 'x');
    std::size_t sent = 0;
    while (sent < kMaxLineBytes + 16) {
      const ssize_t got = ::write(in_pipe[1], filler.data(), filler.size());
      if (got <= 0) break;
      sent += static_cast<std::size_t>(got);
    }
    const std::string tail =
        "\n"
        R"({"op":"stats","id":"after"})"
        "\n";
    (void)::write(in_pipe[1], tail.data(), tail.size());
    ::close(in_pipe[1]);
    wrote = true;
  });

  Service service;
  std::string output;
  std::thread reader([&] {
    char chunk[4096];
    ssize_t got;
    while ((got = ::read(out_pipe[0], chunk, sizeof chunk)) > 0)
      output.append(chunk, static_cast<std::size_t>(got));
  });

  const int rc = serve_fd(service, in_pipe[0], out_pipe[1]);
  ::close(out_pipe[1]);
  writer.join();
  reader.join();
  ::close(in_pipe[0]);
  ::close(out_pipe[0]);

  EXPECT_EQ(rc, 0);
  EXPECT_TRUE(wrote);
  EXPECT_TRUE(has(output, "\"code\":\"bad_request\"")) << output;
  EXPECT_TRUE(has(output, "\"id\":\"after\"")) << output;
}

/// The socket transport must be able to finish shutdown while clients sit
/// idle: connection threads park in read(2), the signal only interrupts the
/// accept loop's poll, so draining half-closes the read side of every live
/// connection to unblock them.  Without that, serve_unix_socket joins
/// forever and SIGTERM never reaches exit 0.
TEST(ServeService, SocketShutdownUnblocksIdleConnections) {
  char tmpl[] = "/tmp/cvg_serve_sock_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir(tmpl);
  const std::string socket_path = dir + "/serve.sock";

  Service service;
  std::atomic<bool> stop{false};
  int rc = -1;
  std::thread server(
      [&] { rc = serve_unix_socket(service, socket_path, stop); });

  // Connect once the server has bound the socket.
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, socket_path.c_str(), socket_path.size() + 1);
  int client = -1;
  for (int attempt = 0; attempt < 500 && client < 0; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                  sizeof address) == 0) {
      client = fd;
    } else {
      ::close(fd);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_GE(client, 0);

  // One round trip proves the connection is live before it goes idle.
  const std::string request = "{\"op\":\"stats\",\"id\":\"idle\"}\n";
  ASSERT_EQ(::write(client, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  char chunk[4096];
  ASSERT_GT(::read(client, chunk, sizeof chunk), 0);

  // Now the client just sits there.  Stop must still complete: the server
  // thread returns 0 instead of blocking in join on the parked reader.
  stop = true;
  server.join();
  EXPECT_EQ(rc, 0);

  // The client's next read is an orderly EOF from the server's close.
  EXPECT_EQ(::read(client, chunk, sizeof chunk), 0);
  ::close(client);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace cvg::serve
