// Tests for the binary corpus format: round-trip properties under random
// entries, golden stability, content-hash semantics, and — the satellite
// contract — clean structured errors (never UB, never aborts) on every
// possible truncation and on corrupted bytes.  This file runs under the
// ASan/UBSan job in CI, so any out-of-bounds read in the parser fails loud.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "cvg/corpus/format.hpp"
#include "cvg/util/rng.hpp"

namespace cvg::corpus {
namespace {

/// A small but fully populated reference entry (path of 5 nodes).
CorpusEntry sample_entry() {
  CorpusEntry entry;
  entry.parents = {kNoNode, 0, 1, 2, 3};
  entry.topology = "path:5";
  entry.policy = "greedy";
  entry.provenance = "unit test";
  entry.capacity = 1;
  entry.burstiness = 2;
  entry.semantics = StepSemantics::DecideBeforeInjection;
  entry.peak = 3;
  entry.pre_minimize_steps = 40;
  entry.schedule = {{4, 4, 4}, {}, {3}, {}, {}};
  return entry;
}

/// Random feasible entry on a random path topology.
CorpusEntry random_entry(Xoshiro256StarStar& rng) {
  CorpusEntry entry;
  const std::size_t n = 2 + rng.below(12);
  entry.parents.assign(n, 0);
  entry.parents[0] = kNoNode;
  for (std::size_t v = 2; v < n; ++v) {
    // Random tree: parent is any lower-numbered node.
    entry.parents[v] = static_cast<NodeId>(rng.below(v));
  }
  entry.topology = "random:" + std::to_string(n);
  entry.policy = rng.below(2) == 0 ? "greedy" : "odd-even";
  entry.provenance = "property test";
  entry.capacity = static_cast<Capacity>(1 + rng.below(3));
  entry.burstiness = static_cast<Capacity>(rng.below(4));
  entry.semantics = rng.below(2) == 0 ? StepSemantics::DecideBeforeInjection
                                      : StepSemantics::DecideAfterInjection;
  entry.peak = static_cast<Height>(rng.below(50));
  entry.pre_minimize_steps = rng.below(200);
  const std::size_t steps = rng.below(20);
  std::int64_t tokens = entry.burstiness;
  for (std::size_t s = 0; s < steps; ++s) {
    tokens = std::min<std::int64_t>(entry.capacity + entry.burstiness,
                                    tokens + entry.capacity);
    std::vector<NodeId> injections;
    const std::uint64_t want = rng.below(static_cast<std::uint64_t>(tokens) + 1);
    for (std::uint64_t k = 0; k < want; ++k) {
      injections.push_back(static_cast<NodeId>(1 + rng.below(n - 1)));
    }
    tokens -= static_cast<std::int64_t>(injections.size());
    entry.schedule.push_back(std::move(injections));
  }
  return entry;
}

TEST(CorpusFormat, RoundTripsRandomEntries) {
  Xoshiro256StarStar rng(20240807);
  for (int i = 0; i < 200; ++i) {
    const CorpusEntry entry = random_entry(rng);
    const std::string bytes = serialize_entry(entry);
    std::string error;
    const std::optional<CorpusEntry> parsed = parse_entry(bytes, error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(*parsed, entry);
  }
}

TEST(CorpusFormat, SerializationIsDeterministic) {
  EXPECT_EQ(serialize_entry(sample_entry()), serialize_entry(sample_entry()));
}

TEST(CorpusFormat, MagicAndVersionLeadTheFile) {
  const std::string bytes = serialize_entry(sample_entry());
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes.substr(0, 4), "CVGC");
  EXPECT_EQ(static_cast<unsigned char>(bytes[4]), kFormatVersion);
}

TEST(CorpusFormat, EveryTruncationFailsCleanly) {
  // The satellite contract: for EVERY prefix length, the parser returns a
  // structured error — it must never crash, abort, or read out of bounds
  // (the sanitizer job enforces the last part).
  const std::string bytes = serialize_entry(sample_entry());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::string error;
    const std::optional<CorpusEntry> parsed =
        parse_entry(std::string_view(bytes).substr(0, len), error);
    EXPECT_FALSE(parsed.has_value()) << "truncation to " << len << " parsed";
    EXPECT_FALSE(error.empty()) << "no error message at length " << len;
  }
}

TEST(CorpusFormat, EveryBitflipInHeaderOrPayloadIsDetected) {
  // Flipping any single byte must be caught by the magic check, the
  // version check, the checksum, or a structural validation.
  const std::string bytes = serialize_entry(sample_entry());
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string corrupted = bytes;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x20);
    std::string error;
    const std::optional<CorpusEntry> parsed = parse_entry(corrupted, error);
    // A flip inside the stored checksum itself must also be detected (the
    // recomputed payload checksum will not match).
    EXPECT_FALSE(parsed.has_value()) << "bitflip at " << pos << " parsed";
  }
}

TEST(CorpusFormat, RejectsTrailingGarbage) {
  std::string bytes = serialize_entry(sample_entry());
  bytes += '\0';
  std::string error;
  EXPECT_FALSE(parse_entry(bytes, error).has_value());
}

TEST(CorpusFormat, RejectsInfeasibleSchedule) {
  CorpusEntry entry = sample_entry();
  entry.burstiness = 0;  // the 3-packet burst now exceeds the bucket
  std::string error;
  EXPECT_FALSE(parse_entry(serialize_entry(entry), error).has_value());
  EXPECT_NE(error.find("rate"), std::string::npos) << error;
}

TEST(CorpusFormat, ContentHashIgnoresMetadata) {
  const CorpusEntry base = sample_entry();
  CorpusEntry meta = base;
  meta.topology = "another label";
  meta.provenance = "someone else";
  meta.peak = 99;
  meta.pre_minimize_steps = 7;
  EXPECT_EQ(content_hash(base), content_hash(meta));
  EXPECT_EQ(bucket_key(base), bucket_key(meta));
}

TEST(CorpusFormat, ContentHashCoversSemanticFields) {
  const CorpusEntry base = sample_entry();
  CorpusEntry changed = base;
  changed.schedule[2] = {2};
  EXPECT_NE(content_hash(base), content_hash(changed));

  CorpusEntry policy = base;
  policy.policy = "odd-even";
  EXPECT_NE(content_hash(base), content_hash(policy));

  CorpusEntry sigma = base;
  sigma.burstiness = 3;
  EXPECT_NE(content_hash(base), content_hash(sigma));
}

TEST(CorpusFormat, BucketKeyIgnoresSchedule) {
  const CorpusEntry base = sample_entry();
  CorpusEntry other = base;
  other.schedule = {{1}};
  EXPECT_EQ(bucket_key(base), bucket_key(other));
  EXPECT_NE(content_hash(base), content_hash(other));
}

TEST(CorpusFormat, EntryFilenameIsStableHex) {
  EXPECT_EQ(entry_filename(0), "0000000000000000.cvgc");
  EXPECT_EQ(entry_filename(0xdeadbeef12345678ULL), "deadbeef12345678.cvgc");
}

TEST(CorpusFormat, FeasibilityMirrorsTokenBucket) {
  // c = 1, sigma = 1: bucket size 2, refill 1.
  EXPECT_TRUE(schedule_is_feasible({{1, 2}, {}, {1}}, 4, 1, 1));
  EXPECT_FALSE(schedule_is_feasible({{1, 2}, {1, 2}}, 4, 1, 1));
  EXPECT_TRUE(schedule_is_feasible({{1, 2}, {1}, {1}}, 4, 1, 1));
  EXPECT_FALSE(schedule_is_feasible({{1, 2, 3}}, 4, 1, 1));
  // Out-of-range node ids are infeasible.
  EXPECT_FALSE(schedule_is_feasible({{9}}, 4, 1, 0));
  // Nonsense parameters are infeasible.
  EXPECT_FALSE(schedule_is_feasible({}, 4, 0, 0));
  EXPECT_FALSE(schedule_is_feasible({}, 4, 1, -1));
}

TEST(CorpusFormat, SaveLoadRoundTripsThroughDisk) {
  const CorpusEntry entry = sample_entry();
  const std::string path = testing::TempDir() + "/corpus_format_test.cvgc";
  save_entry(path, entry);
  std::string error;
  const std::optional<CorpusEntry> loaded = load_entry(path, error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(*loaded, entry);
  std::remove(path.c_str());
}

TEST(CorpusFormat, LoadReportsMissingFile) {
  std::string error;
  EXPECT_FALSE(load_entry("/nonexistent/no.cvgc", error).has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace cvg::corpus
