// Reproductions of the paper's three figures as executable tests.
//
//  * Figure 1 — a node of height 5 with every packet slot attached to a
//    residue of matching height: regenerated from a live certified run.
//  * Figure 2 — the three worked examples of Algorithm 4 (attachment
//    passing, the equal-heights residue creation, and the line-18 guardian
//    hand-off), driven directly through AttachmentScheme::process_pair.
//  * Figure 3 — the crossover cascade of Algorithm 6, observed in a live
//    tree execution.

#include <gtest/gtest.h>

#include "cvg/adversary/simple.hpp"
#include "cvg/adversary/staged.hpp"
#include "cvg/certify/attachment.hpp"
#include "cvg/certify/lines.hpp"
#include "cvg/certify/path_certifier.hpp"
#include "cvg/certify/tree_matching.hpp"
#include "cvg/policy/standard.hpp"
#include "cvg/sim/runner.hpp"
#include "cvg/topology/builders.hpp"

namespace cvg {
namespace {

using certify::AttachmentScheme;
using certify::ResidueMode;
using certify::Slot;

TEST(Figure1, TallNodeCarriesFullSlotLadder) {
  // Drive Odd-Even with the staged adversary until some node reaches height
  // >= 5, then check the Figure 1 structure around it: packet i carries
  // slots 1..i-2, each attached to a distinct node of exactly that height.
  const Tree tree = build::path(257);
  OddEvenPolicy policy;
  adversary::StagedLowerBound adversary(policy, SimOptions{}, 1);
  certify::PathCertifier certifier(tree, /*validate_every=*/64);

  Height target = 5;
  NodeId tall = kNoNode;
  Simulator sim(tree, policy);
  adversary.on_simulation_start();
  std::vector<NodeId> inj;
  const Step budget = adversary.recommended_steps(tree);
  for (Step s = 0; s < budget && tall == kNoNode; ++s) {
    inj.clear();
    adversary.plan(tree, sim.config(), s, 1, inj);
    const StepRecord& record = sim.step(inj);
    certifier.observe(sim.config(), record);
    for (NodeId v = 1; v < tree.node_count(); ++v) {
      if (sim.config().height(v) >= target) {
        tall = v;
        break;
      }
    }
  }
  ASSERT_NE(tall, kNoNode) << "staged adversary failed to build height 5";

  const AttachmentScheme& scheme = certifier.scheme();
  const Configuration& config = certifier.current();
  for (Height i = 3; i <= config.height(tall); ++i) {
    for (Height j = 1; j <= i - 2; ++j) {
      const NodeId resident = scheme.occupant(tall, i, j);
      ASSERT_NE(resident, kNoNode) << "slot (" << i << "," << j << ") empty";
      EXPECT_EQ(config.height(resident), j);
      const auto guardian = scheme.guardian_of(resident);
      ASSERT_TRUE(guardian.has_value());
      EXPECT_EQ(guardian->x, tall);
    }
  }
  // The Figure 1 dump is renderable.
  const std::string dump = scheme.dump_node(tall, config);
  EXPECT_NE(dump.find("packet [3]"), std::string::npos);
}

TEST(Figure2Panel1, DownUpPassesLowAttachmentsAndDropsHigh) {
  // x_d of height 7 charges x_u of height 4: slots j=1..3 of x_d's top
  // packet pass to x_u[5,*]; the value-4 and value-5 residues detach.
  AttachmentScheme scheme(32, ResidueMode::All);
  const NodeId x_d = 10;
  const NodeId x_u = 5;
  // Residues r_j of height j occupy x_d[7, j].
  const NodeId residues[] = {20, 21, 22, 23, 24};  // heights 1..5
  std::vector<Height> heights(32, 0);
  heights[x_d] = 7;
  heights[x_u] = 4;
  for (Height j = 1; j <= 5; ++j) {
    heights[residues[j - 1]] = j;
    scheme.attach(x_d, 7, j, residues[j - 1]);
  }

  scheme.process_pair(x_d, x_u, heights);

  EXPECT_EQ(heights[x_d], 6);
  EXPECT_EQ(heights[x_u], 5);
  for (Height j = 1; j <= 3; ++j) {
    EXPECT_EQ(scheme.occupant(x_u, 5, j), residues[j - 1]) << "j=" << j;
  }
  EXPECT_FALSE(scheme.is_residue(residues[3]));  // value 4: detached
  EXPECT_FALSE(scheme.is_residue(residues[4]));  // value 5: detached
  EXPECT_EQ(scheme.occupant(x_d, 7, 1), kNoNode);  // top packet gone
}

TEST(Figure2Panel2, EqualHeightsMakeTheDownNodeAResidue) {
  // h_d = h_u = 4: x_d passes its two attachments and itself fills the last
  // slot of x_u's new packet (line 9).
  AttachmentScheme scheme(32, ResidueMode::All);
  const NodeId x_d = 8;
  const NodeId x_u = 4;
  const NodeId r1 = 20;  // height 1
  const NodeId r2 = 21;  // height 2
  std::vector<Height> heights(32, 0);
  heights[x_d] = 4;
  heights[x_u] = 4;
  heights[r1] = 1;
  heights[r2] = 2;
  scheme.attach(x_d, 4, 1, r1);
  scheme.attach(x_d, 4, 2, r2);

  scheme.process_pair(x_d, x_u, heights);

  EXPECT_EQ(heights[x_d], 3);
  EXPECT_EQ(heights[x_u], 5);
  EXPECT_EQ(scheme.occupant(x_u, 5, 1), r1);
  EXPECT_EQ(scheme.occupant(x_u, 5, 2), r2);
  EXPECT_EQ(scheme.occupant(x_u, 5, 3), x_d);  // x_d's new height is 3
  const auto guardian = scheme.guardian_of(x_d);
  ASSERT_TRUE(guardian.has_value());
  EXPECT_EQ(*guardian, (Slot{x_u, 5, 3}));
}

TEST(Figure2Panel3, GuardianHandOffToTheVacatedResident) {
  // x_u (height 3) is a residue of z[5,3]; x_d (height 5) holds y (height 3)
  // in its doomed top slot.  After processing, y replaces x_u in z's slot
  // (line 18).
  AttachmentScheme scheme(32, ResidueMode::All);
  const NodeId x_d = 9;
  const NodeId x_u = 4;
  const NodeId z = 15;
  const NodeId y = 22;
  const NodeId r1 = 20;  // height 1
  const NodeId r2 = 21;  // height 2
  std::vector<Height> heights(32, 0);
  heights[x_d] = 5;
  heights[x_u] = 3;
  heights[z] = 5;
  heights[y] = 3;
  heights[r1] = 1;
  heights[r2] = 2;
  scheme.attach(x_d, 5, 1, r1);
  scheme.attach(x_d, 5, 2, r2);
  scheme.attach(x_d, 5, 3, y);
  scheme.attach(z, 5, 3, x_u);

  scheme.process_pair(x_d, x_u, heights);

  EXPECT_EQ(heights[x_d], 4);
  EXPECT_EQ(heights[x_u], 4);
  // Passes: j <= min(h_d-2, h_u-1) = 2.
  EXPECT_EQ(scheme.occupant(x_u, 4, 1), r1);
  EXPECT_EQ(scheme.occupant(x_u, 4, 2), r2);
  // Line 18: y took x_u's old place as z's height-3 residue.
  EXPECT_EQ(scheme.occupant(z, 5, 3), y);
  EXPECT_FALSE(scheme.is_residue(x_u));
  const auto guardian = scheme.guardian_of(y);
  ASSERT_TRUE(guardian.has_value());
  EXPECT_EQ(*guardian, (Slot{z, 5, 3}));
}

TEST(Figure2, SwapKeepsSurvivingSlotFilled) {
  // The lines 4-6 pre-swap: x_u occupies a *surviving* slot of x_d, so it is
  // first swapped into the doomed top-packet slot; the former top-slot
  // resident w keeps the surviving slot filled.
  AttachmentScheme scheme(32, ResidueMode::All);
  const NodeId x_d = 9;
  const NodeId x_u = 4;
  const NodeId w = 23;
  std::vector<Height> heights(32, 0);
  heights[x_d] = 5;
  heights[x_u] = 2;
  heights[w] = 2;
  const NodeId r1 = 20;
  const NodeId r3 = 21;
  heights[r1] = 1;
  heights[r3] = 3;
  // x_d packets: [4] slots j=1,2; [5] slots j=1,2,3.
  scheme.attach(x_d, 4, 1, r1);
  scheme.attach(x_d, 4, 2, x_u);  // x_u in a surviving slot, level h_u = 2
  scheme.attach(x_d, 5, 1, 24);
  heights[24] = 1;
  scheme.attach(x_d, 5, 2, w);  // doomed top slot at level 2
  scheme.attach(x_d, 5, 3, r3);

  scheme.process_pair(x_d, x_u, heights);

  // w moved into the surviving slot x_d[4,2]; x_u forwarded to x_u... x_u
  // was swapped into x_d[5,2] and removed with the top packet.
  EXPECT_EQ(scheme.occupant(x_d, 4, 2), w);
  EXPECT_FALSE(scheme.is_residue(x_u));
  // Pass j <= min(3, 1) = 1: x_u[3,1] holds the height-1 resident of
  // x_d[5,1].
  EXPECT_EQ(scheme.occupant(x_u, 3, 1), 24u);
  EXPECT_FALSE(scheme.is_residue(r3));  // level-3 resident detached
}

TEST(Figure3, CrossoverCascadeHappensInLiveTreeRuns) {
  // Drive Algorithm Tree on a spider and verify the Algorithm 6 cascade
  // actually fires (crossover pairs with endpoints on different lines),
  // reproducing the Figure 3 construction on live configurations.
  const Tree tree = build::spider(4, 6);
  TreeOddEvenPolicy policy;
  adversary::RandomUniform adversary(2024);  // mid-line injections imbalance lines
  Simulator sim(tree, policy);
  adversary.on_simulation_start();

  Configuration before = sim.config();
  std::vector<NodeId> inj;
  std::size_t crossovers_seen = 0;
  for (Step s = 0; s < 4000; ++s) {
    inj.clear();
    adversary.plan(tree, sim.config(), s, 1, inj);
    const StepRecord& record = sim.step(inj);
    const auto cls = certify::classify_step(tree, before, sim.config(), record);
    const auto lines = certify::build_lines(tree, before, record);
    const auto matching =
        certify::build_tree_matching(tree, before, sim.config(), cls, lines);
    for (const auto& pair : matching.pairs) {
      if (!pair.crossover) continue;
      ++crossovers_seen;
      EXPECT_NE(lines.line_of[pair.down], lines.line_of[pair.up])
          << "crossover endpoints share a line";
    }
    before = sim.config();
  }
  EXPECT_GT(crossovers_seen, 0u)
      << "no crossover pair ever formed — Figure 3 scenario unreachable?";
}

}  // namespace
}  // namespace cvg
