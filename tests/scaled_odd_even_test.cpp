// Tests for the experimental ScaledOddEven policy — the library's probe of
// the paper's §6 open problem (local algorithms for injection rate c > 1).

#include <gtest/gtest.h>

#include <cmath>

#include "cvg/adversary/killers.hpp"
#include "cvg/adversary/simple.hpp"
#include "cvg/adversary/staged.hpp"
#include "cvg/policy/registry.hpp"
#include "cvg/policy/standard.hpp"
#include "cvg/sim/runner.hpp"
#include "cvg/topology/builders.hpp"

namespace cvg {
namespace {

TEST(ScaledOddEven, RateOneEqualsOddEven) {
  const Tree tree = build::path(64);
  ScaledOddEvenPolicy scaled(1);
  OddEvenPolicy plain;
  Xoshiro256StarStar rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    Configuration config(tree.node_count());
    for (NodeId v = 1; v < tree.node_count(); ++v) {
      config.set_height(v, static_cast<Height>(rng.below(8)));
    }
    std::vector<Capacity> a(tree.node_count(), 0);
    std::vector<Capacity> b(tree.node_count(), 0);
    scaled.compute_sends(tree, config, {}, 1, a);
    plain.compute_sends(tree, config, {}, 1, b);
    ASSERT_EQ(a, b);
  }
}

TEST(ScaledOddEven, MovesFullBucketsAtHigherRates) {
  const Tree tree = build::path(3);
  ScaledOddEvenPolicy scaled(3);
  // h(2)=7 → bucket 2 (even); succ h(1)=3 → bucket 1 < 2 → send 3.
  Configuration config({0, 3, 7});
  std::vector<Capacity> sends(3, 0);
  scaled.compute_sends(tree, config, {}, 3, sends);
  EXPECT_EQ(sends[2], 3);
  // h(1)=3 → bucket 1 (odd); succ bucket 0 <= 1 → send 3.
  EXPECT_EQ(sends[1], 3);
}

TEST(ScaledOddEven, SustainsRateC) {
  // Throughput check: under sustained far-end injection at rate c, the
  // backlog must stay bounded (unlike plain Odd-Even, which caps its
  // outflow at 1 and diverges).
  for (const Capacity c : {2, 3}) {
    const std::size_t n = 128;
    const Tree tree = build::path(n + 1);
    ScaledOddEvenPolicy scaled(c);
    adversary::FixedNode adv(tree, adversary::Site::Deepest);
    const SimOptions options{.capacity = c};
    const RunResult result =
        run(tree, scaled, adv, static_cast<Step>(20 * n), options);
    EXPECT_LE(result.final_config.total_packets(), 4 * n) << "c=" << c;
    EXPECT_LE(result.peak_height, c) << "c=" << c;
  }
}

TEST(ScaledOddEven, EmpiricallyLogarithmicAtHigherRates) {
  // The open-problem observation: forced peak vs the staged adversary looks
  // like c·(log2 n + 1).  Assert the generous envelope c·(log2 n + 3).
  for (const Capacity c : {2, 4}) {
    for (const std::size_t n : {128u, 512u}) {
      const Tree tree = build::path(n + 1);
      ScaledOddEvenPolicy scaled(c);
      const SimOptions options{.capacity = c};
      adversary::StagedLowerBound staged(scaled, options, 1);
      const RunResult result = run(tree, scaled, staged,
                                   staged.recommended_steps(tree), options);
      const double envelope =
          c * (std::log2(static_cast<double>(n)) + 3.0);
      EXPECT_LE(result.peak_height, envelope) << "c=" << c << " n=" << n;
      // And the staged adversary still extracts its guaranteed floor.
      EXPECT_GE(result.peak_height,
                std::floor(adversary::staged_bound(n, c, 1)));
    }
  }
}

TEST(ScaledOddEven, BatteryBoundedAtRateTwo) {
  const std::size_t n = 256;
  const Tree tree = build::path(n + 1);
  ScaledOddEvenPolicy scaled(2);
  const SimOptions options{.capacity = 2};
  const double envelope = 2 * (std::log2(static_cast<double>(n)) + 3.0);

  std::vector<AdversaryPtr> battery;
  battery.push_back(std::make_unique<adversary::FixedNode>(tree, adversary::Site::Deepest));
  battery.push_back(std::make_unique<adversary::FixedNode>(tree, adversary::Site::SinkChild));
  battery.push_back(std::make_unique<adversary::RandomUniform>(3));
  battery.push_back(std::make_unique<adversary::PileOn>());
  for (AdversaryPtr& adv : battery) {
    const RunResult result =
        run(tree, scaled, *adv, static_cast<Step>(8 * n), options);
    EXPECT_LE(result.peak_height, envelope) << adv->name();
  }
}

TEST(ScaledOddEven, RegistryNames) {
  EXPECT_TRUE(is_known_policy("scaled-odd-even-2"));
  EXPECT_EQ(make_policy("scaled-odd-even-3")->name(), "scaled-odd-even-3");
  EXPECT_FALSE(is_known_policy("scaled-odd-even-0"));
  EXPECT_EQ(make_policy("scaled-odd-even-2")->locality(), 1);
}

}  // namespace
}  // namespace cvg
