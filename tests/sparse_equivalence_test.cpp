// Differential test for the two step engines: for every sparse-capable
// policy, the dense (O(n) scan) and sparse (O(occupied)) engines must
// produce bit-identical executions — same step records, configurations,
// delivered counts and peaks at every step — across random trees, random
// rate-c traffic, both step semantics, and forced as well as auto-dispatched
// engine selection.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "cvg/adversary/simple.hpp"
#include "cvg/policy/registry.hpp"
#include "cvg/sim/simulator.hpp"
#include "cvg/topology/builders.hpp"
#include "cvg/util/rng.hpp"

namespace cvg {
namespace {

/// Every registry policy that implements the sparse entry point.
const char* const kSparsePolicies[] = {
    "greedy",        "downhill",     "downhill-or-flat",
    "fie-local",     "odd-even",     "tree-odd-even",
    "tree-odd-even-willing",         "max-window-2",
    "max-window-3",  "gradient-1",   "gradient-2",
    "scaled-odd-even-2"};

std::vector<Tree> make_topologies() {
  Xoshiro256StarStar rng(99);
  std::vector<Tree> topologies;
  topologies.push_back(build::path(48));
  topologies.push_back(build::complete_kary(3, 4));
  topologies.push_back(build::spider(5, 6));
  topologies.push_back(build::random_chainy(40, 0.5, rng));
  topologies.push_back(build::random_recursive(40, rng));
  return topologies;
}

using Param = std::tuple<const char*, Capacity, StepSemantics>;

class SparseEquivalence : public ::testing::TestWithParam<Param> {};

TEST_P(SparseEquivalence, LockstepAcrossEngines) {
  const auto& [policy_name, capacity, semantics] = GetParam();
  for (const Tree& tree : make_topologies()) {
    const PolicyPtr policy = make_policy(policy_name);
    ASSERT_TRUE(policy->supports_sparse()) << policy_name;

    SimOptions base;
    base.capacity = capacity;
    base.semantics = semantics;
    base.validate = true;

    SimOptions dense_opts = base;
    dense_opts.sparse_mode = SparseMode::Never;
    SimOptions sparse_opts = base;
    sparse_opts.sparse_mode = SparseMode::Always;
    SimOptions mixed_opts = base;
    mixed_opts.sparse_mode = SparseMode::Auto;
    // A low crossover makes the auto engine flip between sparse and dense
    // as occupancy fluctuates, exercising the dispatch boundary itself.
    mixed_opts.sparse_crossover = 0.08;

    Simulator dense(tree, *policy, dense_opts);
    Simulator sparse(tree, *policy, sparse_opts);
    Simulator mixed(tree, *policy, mixed_opts);

    adversary::RandomUniform adversary(1234, 0.25);
    adversary.on_simulation_start();

    std::vector<NodeId> inj;
    const Step steps = 400;
    for (Step s = 0; s < steps; ++s) {
      inj.clear();
      adversary.plan(tree, dense.config(), s, capacity, inj);
      const StepRecord& dense_rec = dense.step(inj);
      const StepRecord& sparse_rec = sparse.step(inj);
      const StepRecord& mixed_rec = mixed.step(inj);
      ASSERT_EQ(dense_rec.sends, sparse_rec.sends)
          << policy_name << " diverged at step " << s;
      ASSERT_EQ(dense_rec.sends, mixed_rec.sends)
          << policy_name << " (auto) diverged at step " << s;
      ASSERT_EQ(dense.config(), sparse.config()) << policy_name << " @" << s;
      ASSERT_EQ(dense.config(), mixed.config()) << policy_name << " @" << s;
    }

    EXPECT_EQ(dense.delivered(), sparse.delivered());
    EXPECT_EQ(dense.delivered(), mixed.delivered());
    EXPECT_EQ(dense.peak_height(), sparse.peak_height());
    EXPECT_EQ(dense.peak_height(), mixed.peak_height());
    for (NodeId v = 0; v < tree.node_count(); ++v) {
      ASSERT_EQ(dense.peak_per_node()[v], sparse.peak_per_node()[v]);
      ASSERT_EQ(dense.peak_per_node()[v], mixed.peak_per_node()[v]);
    }

    // The forced modes really forced their engine; auto used both counters.
    EXPECT_EQ(dense.sparse_steps(), 0u);
    EXPECT_EQ(dense.dense_steps(), steps);
    EXPECT_EQ(sparse.dense_steps(), 0u);
    EXPECT_EQ(sparse.sparse_steps(), steps);
    EXPECT_EQ(mixed.sparse_steps() + mixed.dense_steps(), steps);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, SparseEquivalence,
    ::testing::Combine(::testing::ValuesIn(kSparsePolicies),
                       ::testing::Values(Capacity{1}, Capacity{3}),
                       ::testing::Values(StepSemantics::DecideBeforeInjection,
                                         StepSemantics::DecideAfterInjection)),
    [](const auto& param_info) {
      std::string name = std::get<0>(param_info.param);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      name += "_c" + std::to_string(std::get<1>(param_info.param));
      name += std::get<2>(param_info.param) ==
                      StepSemantics::DecideBeforeInjection
                  ? "_before"
                  : "_after";
      return name;
    });

// Policies without a sparse implementation must stay on the dense engine no
// matter what the options request.
TEST(SparseDispatch, CentralizedFieAlwaysRunsDense) {
  const Tree tree = build::path(16);
  const PolicyPtr policy = make_policy("centralized-fie");
  EXPECT_FALSE(policy->supports_sparse());
  SimOptions opts;
  opts.sparse_mode = SparseMode::Always;
  Simulator sim(tree, *policy, opts);
  for (int i = 0; i < 50; ++i) sim.step_inject(15);
  EXPECT_EQ(sim.sparse_steps(), 0u);
  EXPECT_EQ(sim.dense_steps(), 50u);
}

// The occupied set itself stays consistent with the configuration under
// checkpoint/restore, which the strategic adversary exercises heavily.
TEST(SparseDispatch, OccupiedSetTracksSetConfig) {
  const Tree tree = build::path(8);
  const PolicyPtr policy = make_policy("odd-even");
  SimOptions opts;
  opts.sparse_mode = SparseMode::Always;
  Simulator sim(tree, *policy, opts);
  sim.set_config(Configuration({0, 0, 2, 0, 1, 0, 0, 3}));
  EXPECT_EQ(sim.occupied().size(), 3u);
  for (int i = 0; i < 30; ++i) sim.step_inject(kNoNode);  // drain
  EXPECT_EQ(sim.config().total_packets(), 0u);
  EXPECT_TRUE(sim.occupied().empty());
  sim.reset();
  EXPECT_TRUE(sim.occupied().empty());
}

}  // namespace
}  // namespace cvg
