// Integration tests for the centralized comparator [21]: buffers stay below
// σ + 2ρ for every adversary in the battery, including bursty ones — the
// bound the paper's local algorithms are measured against.

#include <gtest/gtest.h>

#include "cvg/adversary/simple.hpp"
#include "cvg/policy/centralized_fie.hpp"
#include "cvg/sim/runner.hpp"
#include "cvg/topology/builders.hpp"
#include "cvg/util/rng.hpp"

namespace cvg {
namespace {

/// Random adversary that saves up its burst tokens and dumps σ + c packets
/// at one random node every `period` steps.
class BurstyRandom final : public Adversary {
 public:
  BurstyRandom(std::uint64_t seed, Capacity burst, Step period)
      : seed_(seed), burst_(burst), period_(period), rng_(seed) {}

  [[nodiscard]] std::string name() const override { return "bursty-random"; }

  void on_simulation_start() override { rng_ = Xoshiro256StarStar(seed_); }

  void plan(const Tree& tree, const Configuration&, Step step,
            Capacity capacity, std::vector<NodeId>& out) override {
    if (step % period_ == period_ - 1) {
      const NodeId target = static_cast<NodeId>(1 + rng_.below(tree.node_count() - 1));
      out.insert(out.end(), static_cast<std::size_t>(capacity + burst_), target);
    } else if (step % period_ < period_ / 2) {
      out.push_back(static_cast<NodeId>(1 + rng_.below(tree.node_count() - 1)));
      for (Capacity k = 1; k < capacity; ++k) out.push_back(out.back());
    }
    // Otherwise idle — letting tokens accumulate for the next burst.
  }

 private:
  std::uint64_t seed_;
  Capacity burst_;
  Step period_;
  Xoshiro256StarStar rng_;
};

TEST(CentralizedFie, SigmaPlusTwoRhoOnPaths) {
  for (const Capacity rho : {1, 2, 3}) {
    for (const Capacity sigma : {0, 2, 8}) {
      const Tree tree = build::path(64);
      CentralizedFiePolicy policy;
      BurstyRandom adversary(99, sigma, /*period=*/static_cast<Step>(2 * sigma + 8));
      const SimOptions options{.capacity = rho, .burstiness = sigma};
      const RunResult result = run(tree, policy, adversary, 4000, options);
      EXPECT_LE(result.peak_height, sigma + 2 * rho)
          << "rho=" << rho << " sigma=" << sigma;
      // And it actually delivers: nothing is parked forever.
      EXPECT_GT(result.delivered, 0u);
    }
  }
}

TEST(CentralizedFie, SigmaPlusTwoRhoOnTrees) {
  const Tree tree = build::complete_kary(3, 5);  // 121 nodes
  for (const Capacity sigma : {0, 4}) {
    CentralizedFiePolicy policy;
    BurstyRandom adversary(7, sigma, static_cast<Step>(2 * sigma + 8));
    const SimOptions options{.capacity = 1, .burstiness = sigma};
    const RunResult result = run(tree, policy, adversary, 6000, options);
    EXPECT_LE(result.peak_height, sigma + 2) << "sigma=" << sigma;
  }
}

TEST(CentralizedFie, ConstantBuffersIndependentOfN) {
  // The whole point of [21]: buffer needs do not grow with the network.
  for (const std::size_t n : {16u, 64u, 256u, 1024u}) {
    const Tree tree = build::path(n);
    CentralizedFiePolicy policy;
    adversary::RandomUniform adversary(5);
    const RunResult result =
        run(tree, policy, adversary, static_cast<Step>(4 * n));
    EXPECT_LE(result.peak_height, 2) << "n=" << n;
  }
}

TEST(CentralizedFie, PendingQueueBoundedUnderSustainedRate) {
  const Tree tree = build::path(32);
  CentralizedFiePolicy policy;
  Simulator sim(tree, policy);
  for (Step s = 0; s < 1000; ++s) sim.step_inject(31);
  // One activation per injection: the queue never grows.
  EXPECT_LE(policy.pending_activations(), 1u);
}

TEST(CentralizedFie, DeliversEverythingEventually) {
  const Tree tree = build::path(40);
  CentralizedFiePolicy policy;
  Simulator sim(tree, policy);
  for (Step s = 0; s < 100; ++s) sim.step_inject(39);
  // Keep activating by injecting at the sink-adjacent node; each activation
  // moves the train one hop.
  for (Step s = 0; s < 400 && sim.in_flight() > 0; ++s) sim.step_inject(1);
  // FIE only moves on activations; in-flight should be nearly drained.
  EXPECT_LE(sim.in_flight(), 42u);
}

TEST(CentralizedFie, ResetClearsPendingActivations) {
  const Tree tree = build::path(8);
  CentralizedFiePolicy policy;
  {
    Simulator sim(tree, policy, {.capacity = 1, .burstiness = 4});
    const NodeId burst[] = {7, 7, 7, 7, 7};
    sim.step(burst);
    EXPECT_GT(policy.pending_activations(), 0u);
  }
  Simulator fresh(tree, policy);
  EXPECT_EQ(policy.pending_activations(), 0u);
  (void)fresh;
}

}  // namespace
}  // namespace cvg
