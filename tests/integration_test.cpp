// Cross-module integration tests: the exhaustive search, the constructive
// adversaries, the certifier and the sweep pipeline must tell one coherent
// story about the same instances.

#include <gtest/gtest.h>

#include <cmath>

#include "cvg/adversary/killers.hpp"
#include "cvg/adversary/simple.hpp"
#include "cvg/adversary/staged.hpp"
#include "cvg/certify/path_certifier.hpp"
#include "cvg/parallel/sweep.hpp"
#include "cvg/policy/registry.hpp"
#include "cvg/policy/standard.hpp"
#include "cvg/report/stats.hpp"
#include "cvg/report/table.hpp"
#include "cvg/search/beam.hpp"
#include "cvg/search/exhaustive.hpp"
#include "cvg/sim/runner.hpp"
#include "cvg/topology/builders.hpp"

namespace cvg {
namespace {

TEST(Integration, AdversaryHierarchyOnSmallPaths) {
  // For every small instance: battery peak ≤ staged peak or vice versa, but
  // both must be ≤ the exhaustive (true) worst case, which in turn must be
  // ≤ the certifier's residue-count cap.
  for (std::size_t n = 4; n <= 9; ++n) {
    const Tree tree = build::path(n + 1);
    OddEvenPolicy policy;

    const auto exact =
        search::exhaustive_worst_case(tree, policy, SimOptions{});
    ASSERT_FALSE(exact.capped);

    adversary::StagedLowerBound staged(policy, SimOptions{}, 1);
    const Height staged_peak =
        run(tree, policy, staged, staged.recommended_steps(tree)).peak_height;

    Height battery_peak = 0;
    {
      adversary::TrainAndSlam train(tree);
      battery_peak = std::max(
          battery_peak,
          run(tree, policy, train, static_cast<Step>(8 * n)).peak_height);
      adversary::PileOn pile;
      battery_peak = std::max(
          battery_peak,
          run(tree, policy, pile, static_cast<Step>(8 * n)).peak_height);
    }

    certify::PathCertifier certifier(tree, 0);
    const Height certified_cap = certifier.certified_bound();

    EXPECT_LE(staged_peak, exact.peak) << "n=" << n;
    EXPECT_LE(battery_peak, exact.peak) << "n=" << n;
    EXPECT_LE(exact.peak, certified_cap) << "n=" << n;
    // The staged adversary is near-optimal even at tiny sizes.
    EXPECT_GE(staged_peak, exact.peak - 1) << "n=" << n;
  }
}

TEST(Integration, BeamSitsBetweenBatteryAndExact) {
  const Tree tree = build::path(9);
  DownhillOrFlatPolicy policy;
  const auto exact = search::exhaustive_worst_case(tree, policy, SimOptions{});
  search::BeamOptions options;
  options.width = 64;
  options.generations = 300;
  const auto beam = search::beam_worst_case(tree, policy, SimOptions{}, options);
  EXPECT_LE(beam.peak, exact.peak);
  EXPECT_GE(beam.peak, exact.peak - 1);
}

TEST(Integration, OptimalSchedulesSurviveCertification) {
  // Replay the exhaustive search's optimal schedules with the certifier
  // attached: the proof machinery must accept the true worst-case runs.
  // Historically valuable: the n = 8 replay is what exposed the 2up
  // parity-ordering subtlety (an even-height 2up's up-down pair must be
  // processed before its down-up pair) that random adversaries never hit.
  for (std::size_t n = 4; n <= 10; ++n) {
    const Tree tree = build::path(n + 1);
    OddEvenPolicy policy;
    search::SearchOptions options;
    options.keep_schedule = true;
    const auto exact =
        search::exhaustive_worst_case(tree, policy, SimOptions{}, options);
    ASSERT_FALSE(exact.schedule.empty()) << "n=" << n;

    std::vector<std::vector<NodeId>> steps;
    for (const NodeId t : exact.schedule) {
      steps.push_back(t == kNoNode ? std::vector<NodeId>{}
                                   : std::vector<NodeId>{t});
    }
    adversary::Trace replay(steps);
    certify::PathCertifier certifier(tree, 1);
    const RunResult result = run(
        tree, policy, replay, static_cast<Step>(steps.size()), SimOptions{},
        [&certifier](const Simulator& sim, const StepRecord& record) {
          certifier.observe(sim.config(), record);
        });
    certifier.final_validate();
    EXPECT_EQ(result.peak_height, exact.peak) << "n=" << n;
  }
}

TEST(Integration, SweepFeedsReportPipeline) {
  // End-to-end: jobs -> parallel sweep -> table -> growth fit, exactly the
  // way the bench binaries compose the modules.
  std::vector<PeakJob> jobs;
  const std::vector<std::size_t> sizes = report::geometric_sizes(32, 256);
  for (const std::size_t n : sizes) {
    PeakJob job;
    job.label = std::to_string(n);
    job.make_tree = [n] { return build::path(n + 1); };
    job.make_policy = [] { return make_policy("greedy"); };
    job.make_adversary = [n](const Tree& tree, const Policy&) -> AdversaryPtr {
      return std::make_unique<adversary::TrainAndSlam>(tree, n / 2);
    };
    job.steps = static_cast<Step>(3 * n);
    jobs.push_back(std::move(job));
  }
  const auto outcomes = run_peak_sweep(jobs, 4);

  report::Table table({"n", "peak"});
  std::vector<double> xs;
  std::vector<double> ys;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    table.row(sizes[i], outcomes[i].peak);
    xs.push_back(static_cast<double>(sizes[i]));
    ys.push_back(static_cast<double>(outcomes[i].peak));
  }
  EXPECT_EQ(table.row_count(), sizes.size());
  EXPECT_NEAR(report::loglog_slope(xs, ys), 1.0, 0.1);  // greedy is linear
}

TEST(Integration, EveryRegistryPolicyRunsOnEveryFamily) {
  const std::vector<Tree> topologies = {
      build::path(20),          build::star(6),
      build::spider(3, 4),      build::complete_kary(3, 3),
      build::caterpillar(5, 2), build::broom(4, 5),
      build::spider_staggered(4),
  };
  std::vector<std::string> names = standard_policy_names();
  names.push_back("max-window-3");
  names.push_back("gradient-2");
  names.push_back("scaled-odd-even-2");
  for (const Tree& tree : topologies) {
    for (const auto& name : names) {
      const PolicyPtr policy = make_policy(name);
      adversary::RandomUniform adv(9);
      const RunResult result =
          run(tree, *policy, adv, 300, {.validate = true});
      EXPECT_EQ(result.injected,
                result.delivered + result.final_config.total_packets())
          << name;
    }
  }
}

TEST(Integration, StagedAdversaryDominatesBatteryAtScale) {
  // The Thm 3.1 adversary is the strongest thing we have against Odd-Even:
  // at every size its forced peak matches or beats the whole battery.
  for (const std::size_t n : {128u, 512u}) {
    const Tree tree = build::path(n + 1);
    OddEvenPolicy policy;
    adversary::StagedLowerBound staged(policy, SimOptions{}, 1);
    const Height staged_peak =
        run(tree, policy, staged, staged.recommended_steps(tree)).peak_height;
    EXPECT_EQ(staged_peak,
              static_cast<Height>(std::log2(static_cast<double>(n))) + 1)
        << "n=" << n;

    adversary::TrainAndSlam train(tree);
    adversary::Alternator alt(tree, 16);
    adversary::PileOn pile;
    for (Adversary* adv :
         std::initializer_list<Adversary*>{&train, &alt, &pile}) {
      const Height peak =
          run(tree, policy, *adv, static_cast<Step>(6 * n)).peak_height;
      EXPECT_LE(peak, staged_peak) << adv->name() << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace cvg
