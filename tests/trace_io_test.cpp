// Tests for the trace persistence format: round-trips, golden parses,
// malformed-input rejection, and end-to-end save → load → replay.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "cvg/adversary/simple.hpp"
#include "cvg/adversary/trace_io.hpp"
#include "cvg/policy/standard.hpp"
#include "cvg/search/exhaustive.hpp"
#include "cvg/sim/runner.hpp"
#include "cvg/topology/builders.hpp"
#include "cvg/util/rng.hpp"

namespace cvg::adversary {
namespace {

TEST(TraceIo, RoundTrip) {
  const Schedule schedule = {{4}, {}, {3, 3}, {1}};
  std::stringstream buffer;
  write_schedule(buffer, schedule, 9);
  std::size_t nodes = 0;
  const Schedule loaded = read_schedule(buffer, nodes);
  EXPECT_EQ(nodes, 9u);
  EXPECT_EQ(loaded, schedule);
}

TEST(TraceIo, RoundTripsRandomSchedules) {
  // Property test: any schedule (idle steps, repeated nodes, multi-packet
  // bursts) survives write -> read bit-exactly, for 200 random instances.
  Xoshiro256StarStar rng(20260807);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t nodes = 2 + rng.below(30);
    Schedule schedule(rng.below(25));
    for (auto& step : schedule) {
      const std::uint64_t count = rng.below(4);
      for (std::uint64_t k = 0; k < count; ++k) {
        step.push_back(static_cast<NodeId>(rng.below(nodes)));
      }
    }
    std::stringstream buffer;
    write_schedule(buffer, schedule, nodes);
    std::size_t loaded_nodes = 0;
    const Schedule loaded = read_schedule(buffer, loaded_nodes);
    ASSERT_EQ(loaded_nodes, nodes);
    ASSERT_EQ(loaded, schedule) << "round-trip mismatch at iteration " << iter;
  }
}

TEST(TraceIo, GoldenFormat) {
  const Schedule schedule = {{4}, {}, {3, 3}};
  std::stringstream buffer;
  write_schedule(buffer, schedule, 5);
  EXPECT_EQ(buffer.str(), "# cvg-trace v1 nodes=5\n4\n-\n3 3\n");
}

TEST(TraceIo, ParsesCommentsAndBlankLines) {
  std::stringstream in(
      "# cvg-trace v1 nodes=6\n"
      "# a comment\n"
      "\n"
      "5\n"
      "-\n");
  std::size_t nodes = 0;
  const Schedule schedule = read_schedule(in, nodes);
  EXPECT_EQ(nodes, 6u);
  ASSERT_EQ(schedule.size(), 2u);
  EXPECT_EQ(schedule[0], (std::vector<NodeId>{5}));
  EXPECT_TRUE(schedule[1].empty());
}

TEST(TraceIoDeathTest, RejectsMissingHeader) {
  std::stringstream in("4\n");
  std::size_t nodes = 0;
  EXPECT_DEATH((void)read_schedule(in, nodes), "header");
}

TEST(TraceIoDeathTest, RejectsOutOfRangeNode) {
  std::stringstream in("# cvg-trace v1 nodes=4\n9\n");
  std::size_t nodes = 0;
  EXPECT_DEATH((void)read_schedule(in, nodes), "out-of-range");
}

TEST(TraceIo, ToScheduleFlattens) {
  const std::vector<NodeId> flat = {4, kNoNode, 2};
  const Schedule schedule = to_schedule(flat);
  ASSERT_EQ(schedule.size(), 3u);
  EXPECT_EQ(schedule[0], (std::vector<NodeId>{4}));
  EXPECT_TRUE(schedule[1].empty());
  EXPECT_EQ(schedule[2], (std::vector<NodeId>{2}));
}

TEST(TraceIo, SaveLoadReplayReproducesWorstCase) {
  // End-to-end: exhaustive search finds an optimal schedule, we persist it
  // to disk, reload, and the replay reproduces the exact worst-case peak.
  const Tree tree = build::path(8);
  OddEvenPolicy policy;
  search::SearchOptions options;
  options.keep_schedule = true;
  const auto exact =
      search::exhaustive_worst_case(tree, policy, SimOptions{}, options);

  const std::string path = testing::TempDir() + "/cvg_trace_test.txt";
  save_schedule(path, to_schedule(exact.schedule), tree.node_count());
  std::size_t nodes = 0;
  const Schedule loaded = load_schedule(path, nodes);
  EXPECT_EQ(nodes, tree.node_count());

  Trace replay(loaded);
  const RunResult result =
      run(tree, policy, replay, static_cast<Step>(loaded.size()));
  EXPECT_EQ(result.peak_height, exact.peak);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cvg::adversary
