// Unit tests for cvg_adversary: legality of every strategy, the staged
// Thm 3.1 adversary's guarantees, trace replay and the burst finale.

#include <gtest/gtest.h>

#include <cmath>

#include "cvg/adversary/killers.hpp"
#include "cvg/adversary/registry.hpp"
#include "cvg/adversary/seeker.hpp"
#include "cvg/adversary/simple.hpp"
#include "cvg/adversary/staged.hpp"
#include "cvg/policy/centralized_fie.hpp"
#include "cvg/policy/registry.hpp"
#include "cvg/policy/standard.hpp"
#include "cvg/sim/runner.hpp"
#include "cvg/topology/builders.hpp"

namespace cvg {
namespace {

TEST(Adversary, ResolveSites) {
  const Tree path = build::path(10);
  EXPECT_EQ(adversary::resolve_site(path, adversary::Site::Deepest), 9u);
  EXPECT_EQ(adversary::resolve_site(path, adversary::Site::SinkChild), 1u);
  EXPECT_EQ(adversary::resolve_site(path, adversary::Site::Middle), 4u);

  const Tree spider = build::spider(3, 4);
  const NodeId deepest = adversary::resolve_site(spider, adversary::Site::Deepest);
  EXPECT_EQ(spider.depth(deepest), spider.max_depth());
  EXPECT_EQ(adversary::resolve_site(spider, adversary::Site::SinkChild), 1u);
}

TEST(Adversary, AllStrategiesRespectRate) {
  const Tree tree = build::complete_kary(2, 5);
  OddEvenPolicy policy;
  std::vector<AdversaryPtr> adversaries;
  adversaries.push_back(std::make_unique<adversary::FixedNode>(tree, adversary::Site::Deepest));
  adversaries.push_back(std::make_unique<adversary::RandomUniform>(1));
  adversaries.push_back(std::make_unique<adversary::RandomLeaf>(2));
  adversaries.push_back(std::make_unique<adversary::TrainAndSlam>(tree));
  adversaries.push_back(std::make_unique<adversary::Alternator>(tree, 5));
  adversaries.push_back(std::make_unique<adversary::PileOn>());
  adversaries.push_back(std::make_unique<adversary::FeedTheBlock>());
  adversaries.push_back(std::make_unique<adversary::HeightSeeker>(policy, SimOptions{}, 2));

  for (const AdversaryPtr& adv : adversaries) {
    Simulator sim(tree, policy);
    adv->on_simulation_start();
    std::vector<NodeId> inj;
    for (Step s = 0; s < 100; ++s) {
      inj.clear();
      adv->plan(tree, sim.config(), s, 1, inj);
      ASSERT_LE(inj.size(), 1u) << adv->name();
      for (const NodeId t : inj) ASSERT_LT(t, tree.node_count()) << adv->name();
      sim.step(inj);  // would abort on a rate violation
    }
  }
}

TEST(Adversary, RoundRobinCycles) {
  const Tree tree = build::path(6);
  adversary::RoundRobin adv({5, 3, 1});
  std::vector<NodeId> inj;
  std::vector<NodeId> seen;
  for (Step s = 0; s < 6; ++s) {
    inj.clear();
    adv.plan(tree, Configuration(6), s, 1, inj);
    ASSERT_EQ(inj.size(), 1u);
    seen.push_back(inj[0]);
  }
  EXPECT_EQ(seen, (std::vector<NodeId>{5, 3, 1, 5, 3, 1}));
}

TEST(Adversary, TraceReplayAndIdleTail) {
  const Tree tree = build::path(4);
  adversary::Trace adv({{3}, {}, {2, 2}});
  std::vector<NodeId> inj;
  adv.plan(tree, Configuration(4), 0, 2, inj);
  EXPECT_EQ(inj, (std::vector<NodeId>{3}));
  inj.clear();
  adv.plan(tree, Configuration(4), 1, 2, inj);
  EXPECT_TRUE(inj.empty());
  inj.clear();
  adv.plan(tree, Configuration(4), 2, 2, inj);
  EXPECT_EQ(inj.size(), 2u);
  inj.clear();
  adv.plan(tree, Configuration(4), 99, 2, inj);
  EXPECT_TRUE(inj.empty());
}

TEST(Adversary, TrainAndSlamPhases) {
  const Tree tree = build::path(10);
  adversary::TrainAndSlam adv(tree, 4);
  std::vector<NodeId> inj;
  for (Step s = 0; s < 8; ++s) {
    inj.clear();
    adv.plan(tree, Configuration(10), s, 1, inj);
    ASSERT_EQ(inj.size(), 1u);
    EXPECT_EQ(inj[0], s < 4 ? adv.train_site() : adv.slam_site());
  }
  EXPECT_EQ(adv.train_site(), 9u);
  EXPECT_EQ(adv.slam_site(), 1u);
}

TEST(Adversary, PileOnTargetsTallest) {
  const Tree tree = build::path(5);
  adversary::PileOn adv;
  Configuration config({0, 1, 4, 2, 0});
  std::vector<NodeId> inj;
  adv.plan(tree, config, 0, 1, inj);
  EXPECT_EQ(inj, (std::vector<NodeId>{2}));
}

TEST(Adversary, FeedTheBlockTargetsTallestChild) {
  const Tree tree = build::path(5);
  adversary::FeedTheBlock adv;
  Configuration config({0, 1, 4, 2, 0});
  std::vector<NodeId> inj;
  adv.plan(tree, config, 0, 1, inj);
  EXPECT_EQ(inj, (std::vector<NodeId>{3}));  // the child feeding node 2
}

TEST(Adversary, BurstFinaleFiresOnce) {
  const Tree tree = build::path(8);
  auto inner = std::make_unique<adversary::FixedNode>(tree, adversary::Site::Deepest);
  adversary::BurstFinale adv(std::move(inner), /*finale_step=*/5, /*burst=*/4);
  GreedyPolicy greedy;
  Simulator sim(tree, greedy, {.capacity = 1, .burstiness = 3});
  std::vector<NodeId> inj;
  for (Step s = 0; s < 10; ++s) {
    inj.clear();
    adv.plan(tree, sim.config(), s, 1, inj);
    if (s == 5) {
      EXPECT_EQ(inj.size(), 4u);
    } else {
      EXPECT_EQ(inj.size(), 1u);
    }
    sim.step(inj);
  }
}

TEST(StagedAdversary, BoundFormula) {
  using adversary::staged_bound;
  // c=1, l=1, n=1024: 1 + (10 - 0 - 1)/2 = 5.5
  EXPECT_NEAR(staged_bound(1024, 1, 1), 5.5, 1e-9);
  // c=2 doubles it; l=2 divides the log term and subtracts 2 log l.
  EXPECT_NEAR(staged_bound(1024, 2, 1), 11.0, 1e-9);
  EXPECT_NEAR(staged_bound(1024, 1, 2), 1.0 + (10.0 - 2.0 - 1.0) / 4.0, 1e-9);
  // Never below c.
  EXPECT_GE(staged_bound(4, 3, 4), 3.0);
}

class StagedVsPolicy : public ::testing::TestWithParam<const char*> {};

TEST_P(StagedVsPolicy, ForcesTheFormulaBound) {
  const std::string name = GetParam();
  const Tree tree = build::path(257);  // 256 non-sink nodes
  const PolicyPtr policy = make_policy(name);
  adversary::StagedLowerBound adv(*policy, SimOptions{}, /*locality=*/1);
  const Step steps = adv.recommended_steps(tree);
  const RunResult result = run(tree, *policy, adv, steps);
  const double bound = adversary::staged_bound(256, 1, 1);
  EXPECT_GE(result.peak_height, static_cast<Height>(std::floor(bound)))
      << name << ": staged adversary under-delivered";
  EXPECT_TRUE(adv.finished());
  // Each completed stage must meet its target density.
  for (const auto& stage : adv.history()) {
    EXPECT_GE(stage.density + 1e-9, stage.target_density)
        << name << " stage " << stage.index;
  }
}

INSTANTIATE_TEST_SUITE_P(AllLocalPolicies, StagedVsPolicy,
                         ::testing::Values("odd-even", "downhill-or-flat",
                                           "greedy", "downhill", "fie-local",
                                           "max-window-2", "gradient-2"));

TEST(StagedAdversary, HigherCapacityScales) {
  const Tree tree = build::path(129);
  GreedyPolicy greedy;
  const SimOptions options{.capacity = 3};
  adversary::StagedLowerBound adv(greedy, options, 1);
  const Step steps = adv.recommended_steps(tree);
  const RunResult result = run(tree, greedy, adv, steps, options);
  EXPECT_GE(result.peak_height,
            static_cast<Height>(std::floor(adversary::staged_bound(128, 3, 1))));
}

TEST(StagedAdversary, LargerLocalityWeakensBound) {
  const Tree tree = build::path(257);
  OddEvenPolicy policy;
  adversary::StagedLowerBound adv(policy, SimOptions{}, /*locality=*/4);
  const Step steps = adv.recommended_steps(tree);
  const RunResult result = run(tree, policy, adv, steps);
  EXPECT_GE(result.peak_height,
            static_cast<Height>(std::floor(adversary::staged_bound(256, 1, 4))));
}

TEST(StagedAdversary, ReusableAcrossRuns) {
  const Tree tree = build::path(65);
  OddEvenPolicy policy;
  adversary::StagedLowerBound adv(policy, SimOptions{}, 1);
  const Step steps = adv.recommended_steps(tree);
  const RunResult first = run(tree, policy, adv, steps);
  const RunResult second = run(tree, policy, adv, steps);
  EXPECT_EQ(first.peak_height, second.peak_height);
  EXPECT_EQ(first.final_config, second.final_config);
}

TEST(StagedAdversaryDeathTest, RejectsCentralizedPolicy) {
  CentralizedFiePolicy fie;
  EXPECT_DEATH(adversary::StagedLowerBound(fie, SimOptions{}, 1),
               "centralized");
}

TEST(HeightSeeker, BeatsFixedSiteAgainstGreedy) {
  const Tree tree = build::path(17);
  GreedyPolicy greedy;
  adversary::HeightSeeker seeker(greedy, SimOptions{}, 3);
  adversary::FixedNode fixed(tree, adversary::Site::Deepest);
  const RunResult sought = run(tree, greedy, seeker, 300);
  const RunResult fixed_result = run(tree, greedy, fixed, 300);
  EXPECT_GE(sought.peak_height, fixed_result.peak_height);
}


TEST(AdversaryRegistry, KnownNames) {
  using adversary::is_known_adversary;
  for (const auto& name : adversary::standard_adversary_names()) {
    EXPECT_TRUE(is_known_adversary(name)) << name;
  }
  EXPECT_TRUE(is_known_adversary("fixed-7"));
  EXPECT_TRUE(is_known_adversary("alternator-16"));
  EXPECT_TRUE(is_known_adversary("staged-l2"));
  EXPECT_TRUE(is_known_adversary("height-seeker-3"));
  EXPECT_FALSE(is_known_adversary("nonsense"));
  EXPECT_FALSE(is_known_adversary("alternator-0"));
  EXPECT_FALSE(is_known_adversary("staged-l0"));
}

TEST(AdversaryRegistry, FixedMiddleTargetsHalfMaxDepth) {
  // "fixed-middle" resolves Site::Middle: a node at half the maximum depth.
  const Tree tree = build::path(9);
  EXPECT_EQ(adversary::resolve_site(tree, adversary::Site::Middle), 4);

  OddEvenPolicy policy;
  adversary::AdversaryContext context;
  context.tree = &tree;
  AdversaryPtr middle = adversary::make_adversary("fixed-middle", context);
  const RunResult result = run(tree, policy, *middle, 60);
  EXPECT_GT(result.injected, 0);
  // Everything lands at depth 4, so nothing ever sits below it.
  for (NodeId v = 5; v < tree.node_count(); ++v) {
    EXPECT_EQ(result.final_config.height(v), 0) << v;
  }
}

TEST(AdversaryRegistry, ConstructsWithContext) {
  const Tree tree = build::path(33);
  OddEvenPolicy policy;
  adversary::AdversaryContext context;
  context.tree = &tree;
  context.policy = &policy;
  context.seed = 11;

  for (const char* name :
       {"fixed-deepest", "fixed-5", "random-uniform", "train-and-slam",
        "alternator-8", "pile-on", "staged-l1", "height-seeker-2"}) {
    AdversaryPtr adversary = adversary::make_adversary(name, context);
    ASSERT_NE(adversary, nullptr) << name;
    const RunResult result = run(tree, policy, *adversary, 120);
    EXPECT_EQ(result.injected,
              result.delivered + result.final_config.total_packets())
        << name;
  }
}

TEST(AdversaryRegistryDeathTest, StagedNeedsPolicy) {
  const Tree tree = build::path(8);
  adversary::AdversaryContext context;
  context.tree = &tree;
  EXPECT_DEATH((void)adversary::make_adversary("staged-l1", context),
               "needs the policy");
}

TEST(AdversaryRegistryDeathTest, UnknownName) {
  adversary::AdversaryContext context;
  EXPECT_DEATH((void)adversary::make_adversary("bogus", context), "unknown");
}

}  // namespace
}  // namespace cvg
