// Round-trip property tests for the structured topology-spec layer: for
// every family × size in the battery, `format_topology_spec` inverts
// `parse_topology_spec` exactly, the structured and string `make_tree`
// entry points build identical trees, and `spec_node_count` predicts the
// built size.  Hostile strings — zero counts, overflow, leading zeros,
// trailing garbage — are rejected with structured errors, never crashes.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cvg/topology/builders.hpp"
#include "cvg/topology/spec.hpp"

namespace cvg::build {
namespace {

std::vector<std::string> battery_specs() {
  std::vector<std::string> specs;
  for (const std::uint64_t n : {2u, 3u, 17u, 64u}) {
    specs.push_back("path:" + std::to_string(n));
    specs.push_back("random-recursive:" + std::to_string(n) + ":" +
                    std::to_string(n * 7 + 1));
  }
  for (const std::uint64_t b : {1u, 5u, 12u}) {
    specs.push_back("star:" + std::to_string(b));
    specs.push_back("staggered-spider:" + std::to_string(b));
    specs.push_back("spider:" + std::to_string(b) + "x3");
    specs.push_back("broom:" + std::to_string(b) + "x4");
  }
  specs.push_back("kary:2x5");
  specs.push_back("kary:3x4");
  specs.push_back("kary:1x9");  // degenerates to a path
  specs.push_back("caterpillar:12x2");
  specs.push_back("caterpillar:5x0");  // legless spine is legal
  return specs;
}

TEST(TopologySpecRoundTrip, FormatInvertsParseAcrossTheBattery) {
  for (const std::string& text : battery_specs()) {
    std::string error;
    const auto spec = parse_topology_spec(text, error);
    ASSERT_TRUE(spec.has_value()) << text << ": " << error;
    EXPECT_EQ(format_topology_spec(*spec), text);

    // Reparsing the canonical form is a fixed point.
    const auto again = parse_topology_spec(format_topology_spec(*spec), error);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, *spec);
  }
}

TEST(TopologySpecRoundTrip, StructuredAndStringBuildersAgree) {
  for (const std::string& text : battery_specs()) {
    std::string error;
    const auto spec = parse_topology_spec(text, error);
    ASSERT_TRUE(spec.has_value()) << text << ": " << error;
    const Tree structured = make_tree(*spec);
    const Tree from_string = make_tree(text);
    EXPECT_EQ(std::vector<NodeId>(structured.parents().begin(),
                                  structured.parents().end()),
              std::vector<NodeId>(from_string.parents().begin(),
                                  from_string.parents().end()))
        << text;
    EXPECT_EQ(spec_node_count(*spec), structured.node_count()) << text;
  }
}

TEST(TopologySpecRoundTrip, RandomizedFamiliesAreSeedDeterministic) {
  const Tree a = make_tree("random-recursive:64:9");
  const Tree b = make_tree("random-recursive:64:9");
  const Tree c = make_tree("random-recursive:64:10");
  EXPECT_TRUE(std::equal(a.parents().begin(), a.parents().end(),
                         b.parents().begin()));
  EXPECT_FALSE(std::equal(a.parents().begin(), a.parents().end(),
                          c.parents().begin()));
}

TEST(TopologySpecHostileInput, RejectsWithStructuredErrors) {
  const char* hostile[] = {
      "",                       // empty
      ":",                      // no family
      "path",                   // no colon
      "path:",                  // missing count
      "path:1",                 // below the 2-node minimum
      "spider:0x5",             // zero arms
      "spider:5x0",             // zero arm length
      "spider:4",               // missing separator
      "spider:4x",              // missing second argument
      "spider:4x5x6",           // trailing garbage after the pair
      "path:24 ",               // trailing space
      "path:+24",               // signed numeral
      "path:0032",              // leading zeros are non-canonical
      "path:99999999999999999999999",  // u64 overflow
      "kary:10x12",             // node count above kMaxSpecNodes
      "caterpillar:9999999x9999999",   // multiplication guard
      "staggered-spider:4294967295",   // quadratic guard
      "random-recursive:64",    // missing seed
      "random-recursive:64:",   // empty seed
      "torus:5",                // unknown family
      "path:24:7",              // garbage after a valid count
  };
  for (const char* text : hostile) {
    std::string error;
    const auto spec = parse_topology_spec(text, error);
    EXPECT_FALSE(spec.has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
    EXPECT_FALSE(is_known_topology_spec(text)) << text;
  }
}

TEST(TopologySpecHostileInput, NearUint64MaxArgumentsNeverWrapTheCeiling) {
  // Every family, every argument slot, pushed to the edge of uint64: the
  // node-count arithmetic must reject before it can wrap back under the
  // ceiling (star's "+2" once turned UINT64_MAX-1 into 0 and admitted a
  // ~2^64-node allocation).
  const char* hostile[] = {
      "path:18446744073709551615",
      "star:18446744073709551614",  // +2 wraps to 0 without the guard
      "star:18446744073709551615",
      "spider:18446744073709551615x1",
      "spider:1x18446744073709551615",
      "spider:4294967296x4294967296",  // product wraps to 0 without the guard
      "staggered-spider:18446744073709551615",
      "kary:18446744073709551615x2",
      "kary:2x18446744073709551615",
      "caterpillar:18446744073709551615x1",
      "caterpillar:1x18446744073709551615",  // legs+1 would wrap to 0
      "broom:18446744073709551615x1",
      "broom:1x18446744073709551615",
      "broom:18446744073709551615x18446744073709551615",  // sum wraps
      "random-recursive:18446744073709551615:1",
  };
  for (const char* text : hostile) {
    std::string error;
    const auto spec = parse_topology_spec(text, error);
    EXPECT_FALSE(spec.has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }

  // The seed slot is genuinely unbounded — only node counts are capped.
  std::string error;
  EXPECT_TRUE(
      parse_topology_spec("random-recursive:64:18446744073709551615", error)
          .has_value())
      << error;
}

TEST(TopologySpecHostileInput, CeilingAdmitsLargeButBoundedSpecs) {
  // The ceiling is about protecting the service from hostile OOMs, not about
  // blocking legitimate large experiments: a 2^20-node path parses fine.
  std::string error;
  EXPECT_TRUE(parse_topology_spec("path:1048576", error).has_value()) << error;
  EXPECT_FALSE(parse_topology_spec("path:134217729", error).has_value());
}

}  // namespace
}  // namespace cvg::build
