/// Job-schema layer of the simulation service: strict request validation
/// (every "run" / "sweep" / "replay" / "certify" / "minimize" / "stats" /
/// "shutdown" op), semantic hashing, and the bounded request fuzz that the
/// sanitize CI lane runs under ASan/UBSan.

#include "cvg/serve/job.hpp"

#include <gtest/gtest.h>

#include <string>

namespace cvg::serve {
namespace {

JobRequest must_parse(const std::string& line) {
  JobError error;
  const auto request = parse_request(line, error);
  EXPECT_TRUE(request.has_value()) << line << " -> " << error.message;
  return request.value_or(JobRequest{});
}

JobError must_reject(const std::string& line) {
  JobError error;
  const auto request = parse_request(line, error);
  EXPECT_FALSE(request.has_value()) << "hostile request parsed: " << line;
  EXPECT_EQ(error.code, "bad_request") << line;
  EXPECT_FALSE(error.message.empty()) << line;
  return error;
}

TEST(ServeJob, ParsesEveryOpWithItsFields) {
  const JobRequest run = must_parse(
      R"({"op":"run","topology":"path:64","policy":"odd-even","steps":128,)"
      R"("adversary":"train-and-slam","capacity":2,"burstiness":1,)"
      R"("semantics":"after","seed":9,"id":"r1","timeout_ms":500,"cache":false})");
  EXPECT_EQ(run.kind, JobKind::Run);
  EXPECT_EQ(run.topologies, std::vector<std::string>{"path:64"});
  EXPECT_EQ(run.policies, std::vector<std::string>{"odd-even"});
  EXPECT_EQ(run.adversary, "train-and-slam");
  EXPECT_EQ(run.steps, 128u);
  EXPECT_EQ(run.capacity, 2);
  EXPECT_EQ(run.burstiness, 1);
  EXPECT_EQ(run.semantics, StepSemantics::DecideAfterInjection);
  EXPECT_EQ(run.seed, 9u);
  EXPECT_EQ(run.id, "r1");
  EXPECT_EQ(run.timeout_ms, 500u);
  EXPECT_FALSE(run.use_cache);

  const JobRequest sweep = must_parse(
      R"({"op":"sweep","topologies":["path:8","star:4"],)"
      R"("policies":["greedy","odd-even"],"steps":32})");
  EXPECT_EQ(sweep.kind, JobKind::Sweep);
  EXPECT_EQ(sweep.topologies.size(), 2u);
  EXPECT_EQ(sweep.policies.size(), 2u);

  EXPECT_EQ(must_parse(R"({"op":"replay","file":"x.cvgc"})").kind,
            JobKind::Replay);
  EXPECT_EQ(must_parse(R"({"op":"certify","file":"corpus-dir"})").kind,
            JobKind::Certify);
  const JobRequest minimize =
      must_parse(R"({"op":"minimize","file":"x.cvgc","max_replays":100})");
  EXPECT_EQ(minimize.kind, JobKind::Minimize);
  EXPECT_EQ(minimize.max_replays, 100u);
  EXPECT_EQ(must_parse(R"({"op":"stats"})").kind, JobKind::Stats);
  EXPECT_EQ(must_parse(R"({"op":"shutdown","id":"bye"})").kind,
            JobKind::Shutdown);
}

TEST(ServeJob, JobKindNamesMatchTheWireProtocol) {
  EXPECT_EQ(job_kind_name(JobKind::Run), "run");
  EXPECT_EQ(job_kind_name(JobKind::Sweep), "sweep");
  EXPECT_EQ(job_kind_name(JobKind::Replay), "replay");
  EXPECT_EQ(job_kind_name(JobKind::Certify), "certify");
  EXPECT_EQ(job_kind_name(JobKind::Minimize), "minimize");
  EXPECT_EQ(job_kind_name(JobKind::Stats), "stats");
  EXPECT_EQ(job_kind_name(JobKind::Shutdown), "shutdown");
}

TEST(ServeJob, RejectsStructurallyHostileRequests) {
  must_reject("");
  must_reject("not json");
  must_reject("[1,2,3]");                       // not an object
  must_reject("{}");                            // missing op
  must_reject(R"({"op":"explode"})");           // unknown op
  must_reject(R"({"op":42})");                  // op wrong type
  must_reject(R"({"op":"run"})");               // missing everything
  must_reject(R"({"op":"run","topology":"path:64","policy":"odd-even"})");
  must_reject(R"({"op":"stats","steps":1})");   // field foreign to the op
  must_reject(R"({"op":"shutdown","file":"x"})");
  must_reject(R"({"op":"replay"})");            // missing file
  must_reject(R"({"op":"replay","file":""})");  // empty file
  must_reject(
      R"({"op":"run","topology":"path:64","policy":"odd-even","steps":128,)"
      R"("bogus":1})");                         // unknown field
}

TEST(ServeJob, RejectsSemanticallyHostileValues) {
  // Unknown registry names and malformed topology specs.
  must_reject(R"({"op":"run","topology":"torus:5","policy":"odd-even","steps":1})");
  must_reject(R"({"op":"run","topology":"spider:0x5","policy":"odd-even","steps":1})");
  must_reject(R"({"op":"run","topology":"path:64","policy":"nonsense","steps":1})");
  must_reject(
      R"({"op":"run","topology":"path:64","policy":"odd-even","steps":1,)"
      R"("adversary":"nonsense"})");
  // Out-of-range counters.
  must_reject(R"({"op":"run","topology":"path:64","policy":"odd-even","steps":0})");
  must_reject(
      R"({"op":"run","topology":"path:64","policy":"odd-even","steps":99999999999})");
  must_reject(
      R"({"op":"run","topology":"path:64","policy":"odd-even","steps":-5})");
  must_reject(
      R"({"op":"run","topology":"path:64","policy":"odd-even","steps":1.5})");
  must_reject(
      R"({"op":"run","topology":"path:64","policy":"odd-even","steps":1,)"
      R"("capacity":0})");
  must_reject(
      R"({"op":"run","topology":"path:64","policy":"odd-even","steps":1,)"
      R"("semantics":"sideways"})");
  // Oversized / hostile strings.
  must_reject(R"({"op":"sweep","topologies":[],"policies":["greedy"],"steps":1})");
  const std::string long_id(4096, 'x');
  must_reject(R"({"op":"stats","id":")" + long_id + R"("})");
}

TEST(ServeJob, RunHashFoldsExactlyTheSemanticFields) {
  const auto base = [] {
    return run_job_hash("path:64", "odd-even", "fixed-deepest", 128, 1, 0,
                        StepSemantics::DecideBeforeInjection, 1, "lanes", 64);
  };
  EXPECT_EQ(base(), base());  // deterministic
  EXPECT_NE(base(),
            run_job_hash("path:65", "odd-even", "fixed-deepest", 128, 1, 0,
                         StepSemantics::DecideBeforeInjection, 1, "lanes", 64));
  EXPECT_NE(base(),
            run_job_hash("path:64", "greedy", "fixed-deepest", 128, 1, 0,
                         StepSemantics::DecideBeforeInjection, 1, "lanes", 64));
  EXPECT_NE(base(),
            run_job_hash("path:64", "odd-even", "pile-on", 128, 1, 0,
                         StepSemantics::DecideBeforeInjection, 1, "lanes", 64));
  EXPECT_NE(base(),
            run_job_hash("path:64", "odd-even", "fixed-deepest", 129, 1, 0,
                         StepSemantics::DecideBeforeInjection, 1, "lanes", 64));
  EXPECT_NE(base(),
            run_job_hash("path:64", "odd-even", "fixed-deepest", 128, 2, 0,
                         StepSemantics::DecideBeforeInjection, 1, "lanes", 64));
  EXPECT_NE(base(),
            run_job_hash("path:64", "odd-even", "fixed-deepest", 128, 1, 1,
                         StepSemantics::DecideBeforeInjection, 1, "lanes", 64));
  EXPECT_NE(base(),
            run_job_hash("path:64", "odd-even", "fixed-deepest", 128, 1, 0,
                         StepSemantics::DecideAfterInjection, 1, "lanes", 64));
  EXPECT_NE(base(),
            run_job_hash("path:64", "odd-even", "fixed-deepest", 128, 1, 0,
                         StepSemantics::DecideBeforeInjection, 2, "lanes", 64));
  // The engine variant is semantic too: a kernel-generation change (scalar
  // vs lane-batched, or a new lane width) must retire stale entries.
  EXPECT_NE(base(),
            run_job_hash("path:64", "odd-even", "fixed-deepest", 128, 1, 0,
                         StepSemantics::DecideBeforeInjection, 1, "scalar", 0));
  EXPECT_NE(base(),
            run_job_hash("path:64", "odd-even", "fixed-deepest", 128, 1, 0,
                         StepSemantics::DecideBeforeInjection, 1, "lanes", 128));
}

TEST(ServeJob, ParsesTheSweepSeedsAxis) {
  const JobRequest sweep = must_parse(
      R"({"op":"sweep","topologies":["path:8"],"policies":["odd-even"],)"
      R"("steps":32,"seeds":[3,1,4,1]})");
  EXPECT_EQ(sweep.seeds, (std::vector<std::uint64_t>{3, 1, 4, 1}));

  // "seed" and "seeds" are mutually exclusive; entries must be non-negative
  // integers; the axis is bounded and sweep-only.
  must_reject(
      R"({"op":"sweep","topologies":["path:8"],"policies":["odd-even"],)"
      R"("steps":32,"seed":1,"seeds":[2]})");
  must_reject(
      R"({"op":"sweep","topologies":["path:8"],"policies":["odd-even"],)"
      R"("steps":32,"seeds":[]})");
  must_reject(
      R"({"op":"sweep","topologies":["path:8"],"policies":["odd-even"],)"
      R"("steps":32,"seeds":[-1]})");
  must_reject(
      R"({"op":"sweep","topologies":["path:8"],"policies":["odd-even"],)"
      R"("steps":32,"seeds":[1.5]})");
  must_reject(
      R"({"op":"sweep","topologies":["path:8"],"policies":["odd-even"],)"
      R"("steps":32,"seeds":"1"})");
  must_reject(R"({"op":"run","topology":"path:8","policy":"odd-even",)"
              R"("steps":32,"seeds":[1]})");
}

TEST(ServeJob, ResponsesAreWellFormedNdjsonLines) {
  const std::string ok = format_ok_response("r\"1", "{\"peak\":3}", true, 42);
  EXPECT_EQ(ok.find('\n'), std::string::npos);
  EXPECT_NE(ok.find("\"cached\":true"), std::string::npos);
  EXPECT_NE(ok.find("\"micros\":42"), std::string::npos);
  EXPECT_NE(ok.find("\"result\":{\"peak\":3}"), std::string::npos);

  const std::string err = format_error_response(
      "x", {"queue_full", "job queue is at capacity"});
  EXPECT_NE(err.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(err.find("\"code\":\"queue_full\""), std::string::npos);
}

/// The fuzzer property proper — run under CVG_SANITIZE this is the
/// ASan/UBSan request-parser gate from the PR acceptance criteria.  Bounded
/// so the plain tier-1 run stays fast; the CI serve-smoke lane runs a
/// longer budgeted pass via `cvg serve --fuzz-rounds=… --fuzz-ms=15000`.
TEST(ServeJob, FuzzedRequestsNeverCrashAndAlwaysGetStructuredErrors) {
  const RequestFuzzReport report =
      fuzz_requests(/*seed=*/1, /*rounds=*/20000, /*budget_ms=*/0);
  EXPECT_EQ(report.rounds, 20000u);
  EXPECT_EQ(report.parsed_ok + report.rejected, report.rounds);
  // The corpus of seeds guarantees some mutants survive validation and the
  // vast majority die with structured errors; both sides being exercised is
  // what makes the property non-vacuous.
  EXPECT_GT(report.parsed_ok, 0u);
  EXPECT_GT(report.rejected, report.parsed_ok);
}

TEST(ServeJob, FuzzRespectsItsTimeBudget) {
  const RequestFuzzReport report =
      fuzz_requests(/*seed=*/2, /*rounds=*/100000000, /*budget_ms=*/50);
  EXPECT_LT(report.rounds, 100000000u);
}

}  // namespace
}  // namespace cvg::serve
