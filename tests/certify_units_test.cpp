// Unit tests for the certify building blocks: node classification, the
// lines decomposition, attachment-scheme primitives, and the residue-count
// arithmetic of Lemma 4.6 — exercised directly, outside full certified runs.

#include <gtest/gtest.h>

#include "cvg/certify/attachment.hpp"
#include "cvg/certify/classify.hpp"
#include "cvg/certify/lines.hpp"
#include "cvg/certify/path_matching.hpp"
#include "cvg/policy/standard.hpp"
#include "cvg/sim/simulator.hpp"
#include "cvg/topology/builders.hpp"

namespace cvg::certify {
namespace {

StepRecord make_record(std::size_t /*n*/, std::vector<NodeId> injections,
                       std::vector<std::pair<NodeId, Capacity>> sends) {
  StepRecord record;
  record.reset(0);
  record.injections = std::move(injections);
  for (const auto& [v, k] : sends) record.set_sent(v, k);
  return record;
}

TEST(Classify, BasicClasses) {
  const Tree tree = build::path(5);
  // Node 4 sends (down), node 3 receives (up), node 2 untouched (steady),
  // node 1 receives injection (up).
  const Configuration before({0, 0, 0, 1, 2});
  const Configuration after({0, 1, 0, 2, 1});
  const StepRecord record = make_record(5, {1}, {{4, 1}});
  const StepClassification cls = classify_step(tree, before, after, record);
  EXPECT_EQ(cls.of(4), NodeClass::Down);
  EXPECT_EQ(cls.of(3), NodeClass::Up);
  EXPECT_EQ(cls.of(2), NodeClass::Steady);
  EXPECT_EQ(cls.of(1), NodeClass::Up);
  EXPECT_EQ(cls.injected, 1u);
  EXPECT_EQ(cls.two_up, kNoNode);
}

TEST(Classify, TwoUpIsTheInjectedReceiver) {
  const Tree tree = build::path(4);
  const Configuration before({0, 0, 1, 1});
  const Configuration after({0, 0, 3, 0});  // 3 sent to 2; 2 injected
  const StepRecord record = make_record(4, {2}, {{3, 1}, {1, 0}});
  const StepClassification cls = classify_step(tree, before, after, record);
  EXPECT_EQ(cls.of(2), NodeClass::TwoUp);
  EXPECT_EQ(cls.two_up, 2u);
}

TEST(Classify, LeadingZeroDetection) {
  const Tree tree = build::path(5);
  const Configuration before({0, 0, 0, 0, 0});
  const Configuration after({0, 0, 0, 1, 0});
  const StepRecord record = make_record(5, {3}, {});
  const StepClassification cls = classify_step(tree, before, after, record);
  EXPECT_EQ(cls.leading_zero, 3u);
}

TEST(Classify, NoLeadingZeroWhenFrontOccupied) {
  const Tree tree = build::path(5);
  const Configuration before({0, 1, 0, 0, 0});
  const Configuration after({0, 1, 0, 1, 0});  // node 1 steady non-sender
  StepRecord record = make_record(5, {3}, {});
  const StepClassification cls = classify_step(tree, before, after, record);
  EXPECT_EQ(cls.leading_zero, kNoNode);
}

TEST(ClassifyDeathTest, RejectsDownWithoutSend) {
  const Tree tree = build::path(3);
  const Configuration before({0, 0, 1});
  const Configuration after({0, 0, 0});
  const StepRecord record = make_record(3, {}, {});  // nobody sent
  EXPECT_DEATH(classify_step(tree, before, after, record),
               "dropped without sending");
}

TEST(Lines, PathIsOneDrain) {
  const Tree tree = build::path(6);
  const Configuration before({0, 1, 1, 1, 1, 1});
  const StepRecord record = make_record(6, {}, {});
  const LinesDecomposition lines = build_lines(tree, before, record);
  ASSERT_EQ(lines.lines.size(), 1u);
  EXPECT_EQ(lines.drain, 0u);
  EXPECT_EQ(lines.lines[0].nodes.front(), 5u);  // leaf first
  EXPECT_EQ(lines.lines[0].nodes.back(), 1u);   // head = sink's child
}

TEST(Lines, StarDecomposesPerLeaf) {
  const Tree tree = build::star(3);  // hub 1, leaves 2..4
  const Configuration before(tree.node_count());
  const StepRecord record = make_record(tree.node_count(), {}, {});
  const LinesDecomposition lines = build_lines(tree, before, record);
  // The hub joins its priority leaf's line; the other two leaves are
  // singleton blocked lines.  Plus: every child of the sink is a head — the
  // hub is the only child of the sink, so 3 lines total.
  ASSERT_EQ(lines.lines.size(), 3u);
  EXPECT_NE(lines.drain, LinesDecomposition::npos);
  // Every non-sink node covered exactly once.
  std::size_t covered = 0;
  for (const auto& line : lines.lines) covered += line.nodes.size();
  EXPECT_EQ(covered, tree.node_count() - 1);
}

TEST(Lines, SenderBranchGetsPriority) {
  const Tree tree = build::star(2);  // hub 1, leaves 2 and 3
  const Configuration before({0, 0, 1, 2});
  // Leaf 3 sent into the hub this round.
  const StepRecord record = make_record(4, {}, {{3, 1}});
  const LinesDecomposition lines = build_lines(tree, before, record);
  EXPECT_EQ(lines.priority_child[1], 3u);
  // Leaf 3 and hub 1 share a line; leaf 2 is alone.
  EXPECT_EQ(lines.line_of[3], lines.line_of[1]);
  EXPECT_NE(lines.line_of[2], lines.line_of[1]);
}

TEST(Lines, InjectionBranchGetsPriorityWhenNoSender) {
  const Tree tree = build::star(2);
  const Configuration before({0, 0, 0, 0});
  const StepRecord record = make_record(4, {2}, {});
  const LinesDecomposition lines = build_lines(tree, before, record);
  EXPECT_EQ(lines.priority_child[1], 2u);
  EXPECT_EQ(lines.injected_line, lines.line_of[2]);
}

TEST(Lines, TallestChildBreaksTies) {
  const Tree tree = build::star(2);
  const Configuration before({0, 0, 1, 4});
  const StepRecord record = make_record(4, {}, {});
  const LinesDecomposition lines = build_lines(tree, before, record);
  EXPECT_EQ(lines.priority_child[1], 3u);  // taller child
}

TEST(LinesDeathTest, RejectsTwoSendersIntoOneIntersection) {
  const Tree tree = build::star(2);
  const Configuration before({0, 0, 1, 1});
  const StepRecord record = make_record(4, {}, {{2, 1}, {3, 1}});
  EXPECT_DEATH(build_lines(tree, before, record), "sibling arbitration");
}

TEST(PathMatchingUnit, AlternatingPairs) {
  const Tree tree = build::path(7);
  // Two send chains: 6→5 and 3→2; downs at 6 and 3, ups at 5 and 2.
  const Configuration before({0, 0, 1, 2, 0, 1, 2});
  const Configuration after({0, 0, 2, 1, 0, 2, 1});
  const StepRecord record = make_record(7, {}, {{6, 1}, {3, 1}});
  const StepClassification cls = classify_step(tree, before, after, record);
  const PathMatching matching = build_path_matching(tree, before, after, cls);
  ASSERT_EQ(matching.pairs.size(), 2u);
  EXPECT_EQ(matching.pairs[0].down, 6u);
  EXPECT_EQ(matching.pairs[0].up, 5u);
  EXPECT_TRUE(matching.pairs[0].is_down_up());
  EXPECT_EQ(matching.pairs[1].down, 3u);
  EXPECT_EQ(matching.pairs[1].up, 2u);
  EXPECT_EQ(matching.unmatched, kNoNode);
}

TEST(PathMatchingUnit, RightmostDownUnmatched) {
  const Tree tree = build::path(4);
  // Single sender 1 → sink: one down, nothing else.
  const Configuration before({0, 1, 0, 0});
  const Configuration after({0, 0, 0, 0});
  const StepRecord record = make_record(4, {}, {{1, 1}});
  const StepClassification cls = classify_step(tree, before, after, record);
  const PathMatching matching = build_path_matching(tree, before, after, cls);
  EXPECT_TRUE(matching.pairs.empty());
  EXPECT_EQ(matching.unmatched, 1u);
}

TEST(AttachmentUnit, ResidueRequirementMatchesLemma46) {
  AttachmentScheme path_scheme(1024, ResidueMode::All);
  // r(p) = 2^(p-2) − 1 (Lemma 4.6).
  EXPECT_EQ(path_scheme.residue_requirement(2), 0u);
  EXPECT_EQ(path_scheme.residue_requirement(3), 1u);
  EXPECT_EQ(path_scheme.residue_requirement(4), 3u);
  EXPECT_EQ(path_scheme.residue_requirement(5), 7u);
  EXPECT_EQ(path_scheme.residue_requirement(10), 255u);

  AttachmentScheme tree_scheme(1024, ResidueMode::EvenOnly);
  // Even-only tracking grows ~2^(p/2): the §5 "2 log n" regime.
  EXPECT_EQ(tree_scheme.residue_requirement(3), 0u);
  EXPECT_EQ(tree_scheme.residue_requirement(4), 1u);
  EXPECT_EQ(tree_scheme.residue_requirement(5), 2u);
  EXPECT_EQ(tree_scheme.residue_requirement(6), 5u);
  EXPECT_EQ(tree_scheme.residue_requirement(7), 8u);
  EXPECT_EQ(tree_scheme.residue_requirement(8), 17u);
}

TEST(AttachmentUnit, CertifiedBoundGrowsLogarithmically) {
  AttachmentScheme scheme(0, ResidueMode::All);
  EXPECT_EQ(scheme.certified_height_bound(16), 6);     // 2^(m-2)-1 <= 16
  EXPECT_EQ(scheme.certified_height_bound(1024), 12);  // log2(1024)+2
  // Even-only residue counting roughly squares-roots the requirement, so
  // the certified cap lands in the (log n, 2 log n] band: 15 for n = 1024.
  AttachmentScheme tree_scheme(0, ResidueMode::EvenOnly);
  EXPECT_EQ(tree_scheme.certified_height_bound(1024), 15);
  EXPECT_GT(tree_scheme.certified_height_bound(1024),
            scheme.certified_height_bound(1024));
}

TEST(AttachmentUnitDeathTest, RejectsDoubleAttachment) {
  AttachmentScheme scheme(16, ResidueMode::All);
  scheme.attach(5, 4, 1, 7);
  EXPECT_DEATH(scheme.attach(6, 3, 1, 7), "already a residue");
  EXPECT_DEATH(scheme.attach(5, 4, 1, 8), "already occupied");
}

TEST(AttachmentUnitDeathTest, RejectsSelfAttachment) {
  AttachmentScheme scheme(16, ResidueMode::All);
  EXPECT_DEATH(scheme.attach(5, 4, 1, 5), "own residue");
}

TEST(AttachmentUnitDeathTest, RejectsOutOfRangeSlot) {
  AttachmentScheme scheme(16, ResidueMode::All);
  EXPECT_DEATH(scheme.attach(5, 4, 3, 7), "out of range");
}

TEST(AttachmentUnit, DetachFreesBothSides) {
  AttachmentScheme scheme(16, ResidueMode::All);
  scheme.attach(5, 4, 2, 7);
  EXPECT_TRUE(scheme.is_residue(7));
  EXPECT_EQ(scheme.occupant(5, 4, 2), 7u);
  scheme.detach_slot(5, 4, 2);
  EXPECT_FALSE(scheme.is_residue(7));
  EXPECT_EQ(scheme.occupant(5, 4, 2), kNoNode);
  EXPECT_EQ(scheme.attachment_count(), 0u);
}

TEST(AttachmentUnit, EvenOnlyIgnoresOddLevels) {
  AttachmentScheme scheme(16, ResidueMode::EvenOnly);
  EXPECT_TRUE(scheme.tracked(2));
  EXPECT_FALSE(scheme.tracked(1));
  EXPECT_FALSE(scheme.tracked(3));
  AttachmentScheme all(16, ResidueMode::All);
  EXPECT_TRUE(all.tracked(1));
  EXPECT_TRUE(all.tracked(3));
}

}  // namespace
}  // namespace cvg::certify
