// Scalar ↔ batch equivalence for the lane-batched step engine
// (cvg/sim/lane_engine.hpp).  Every LaneRuleKind is pinned bit-identical to
// the scalar policy it advertises (`scripts/check_invariants.py` rule 9
// cross-references the enumerators against this file), across topologies,
// capacities, burstiness budgets and both step semantics — on the lane-block
// face (heterogeneous schedules sharing one block), on the batch drivers
// (`replay_schedules`, `unroll_oblivious`) and on the Engine-concept facade
// (designated scalar lane 0 under `run_engine`).

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cvg/adversary/killers.hpp"
#include "cvg/adversary/simple.hpp"
#include "cvg/policy/registry.hpp"
#include "cvg/policy/standard.hpp"
#include "cvg/sim/engine_run.hpp"
#include "cvg/sim/lane_engine.hpp"
#include "cvg/sim/runner.hpp"
#include "cvg/topology/builders.hpp"
#include "cvg/util/rng.hpp"

namespace cvg {
namespace {

// ---------------------------------------------------------------------------
// The closed rule set, as (policy, expected descriptor) rows.  This table is
// the test's source of truth: a new LaneRuleKind must add a row here (and the
// invariant checker makes sure the enumerator is mentioned at all).

struct RuleCase {
  std::string label;
  PolicyPtr policy;
  LaneRuleKind kind;
};

std::vector<RuleCase> rule_cases() {
  std::vector<RuleCase> cases;
  cases.push_back({"greedy", std::make_unique<GreedyPolicy>(),
                   LaneRuleKind::Greedy});
  cases.push_back({"downhill", std::make_unique<DownhillPolicy>(),
                   LaneRuleKind::Downhill});
  cases.push_back({"downhill-or-flat",
                   std::make_unique<DownhillOrFlatPolicy>(),
                   LaneRuleKind::DownhillOrFlat});
  cases.push_back({"fie-local", std::make_unique<FieLocalPolicy>(),
                   LaneRuleKind::FieLocal});
  cases.push_back({"odd-even", std::make_unique<OddEvenPolicy>(),
                   LaneRuleKind::OddEven});
  cases.push_back({"scaled-odd-even-3",
                   std::make_unique<ScaledOddEvenPolicy>(3),
                   LaneRuleKind::ScaledOddEven});
  cases.push_back({"gradient-2", std::make_unique<GradientPolicy>(2),
                   LaneRuleKind::Gradient});
  cases.push_back({"max-window-1", std::make_unique<MaxWindowPolicy>(1),
                   LaneRuleKind::MaxWindow});
  cases.push_back({"max-window-3", std::make_unique<MaxWindowPolicy>(3),
                   LaneRuleKind::MaxWindow});
  cases.push_back({"tree-odd-even",
                   std::make_unique<TreeOddEvenPolicy>(),
                   LaneRuleKind::ArbitratedOddEven});
  cases.push_back(
      {"tree-odd-even-willing",
       std::make_unique<TreeOddEvenPolicy>(ArbitrationMode::WillingOnly),
       LaneRuleKind::ArbitratedOddEven});
  return cases;
}

TEST(LaneRules, EveryPolicyAdvertisesItsDescriptor) {
  for (const RuleCase& c : rule_cases()) {
    ASSERT_TRUE(c.policy->lane_rule().has_value()) << c.label;
    EXPECT_EQ(c.policy->lane_rule()->kind, c.kind) << c.label;
  }
}

TEST(LaneRules, SupportedRefusesScalarOnlyConfigurations) {
  const OddEvenPolicy odd_even;
  SimOptions options;
  EXPECT_TRUE(LaneSimulator::supported(odd_even, options));

  SimOptions validating = options;
  validating.validate = true;
  EXPECT_FALSE(LaneSimulator::supported(odd_even, validating));

  SimOptions audited = options;
  audited.audit_locality = true;
  EXPECT_FALSE(LaneSimulator::supported(odd_even, audited));

  const PolicyPtr centralized = make_policy("centralized-fie");
  EXPECT_FALSE(LaneSimulator::supported(*centralized, options));
}

// ---------------------------------------------------------------------------
// Schedule generation: a seeded stream of token-bucket-feasible injection
// lists.  tokens starts at σ; each step refills by c up to c+σ, and the step
// spends at most what is banked — exactly the scalar engine's admission rule.

LaneSchedule random_schedule(std::uint64_t seed, const Tree& tree, Step steps,
                             Capacity capacity, Capacity burstiness) {
  SplitMix64 rng(seed);
  LaneSchedule schedule(steps);
  Capacity tokens = burstiness;
  const auto n = static_cast<std::uint64_t>(tree.node_count());
  for (Step s = 0; s < steps; ++s) {
    tokens = std::min(static_cast<Capacity>(capacity + burstiness),
                      static_cast<Capacity>(tokens + capacity));
    const auto want = static_cast<Capacity>(
        rng.next() % static_cast<std::uint64_t>(tokens + 1));
    for (Capacity k = 0; k < want; ++k) {
      const NodeId site = static_cast<NodeId>(1 + rng.next() % (n - 1));
      schedule[s].push_back(site);
    }
    tokens = static_cast<Capacity>(tokens - want);
  }
  return schedule;
}

struct ScalarOutcome {
  Height peak = 0;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  Configuration final_config;
};

ScalarOutcome scalar_replay(const Tree& tree, const Policy& policy,
                            const SimOptions& options,
                            const LaneSchedule& schedule) {
  Simulator sim(tree, policy, options);
  for (const std::vector<NodeId>& injections : schedule) {
    sim.step(injections);
  }
  return {sim.peak_height(), sim.injected(), sim.delivered(), sim.config()};
}

// ---------------------------------------------------------------------------
// Core pin: a heterogeneous lane block — every lane running a *different*
// schedule — must be bit-identical, lane for lane, to the scalar engine
// replaying each schedule on its own: peaks, counters and the full final
// configuration.

TEST(LaneEngine, HeterogeneousLaneBlockMatchesScalarPerLane) {
  const std::vector<Tree> trees = {build::path(33), build::complete_kary(2, 5),
                                   build::spider_staggered(4),
                                   build::caterpillar(9, 2)};
  const Step steps = 96;
  const std::size_t lanes = 12;
  for (const RuleCase& c : rule_cases()) {
    for (const Tree& tree : trees) {
      for (const StepSemantics semantics :
           {StepSemantics::DecideBeforeInjection,
            StepSemantics::DecideAfterInjection}) {
        for (const auto& [capacity, burstiness] :
             std::vector<std::pair<Capacity, Capacity>>{{1, 0}, {3, 2}}) {
          SimOptions options;
          options.capacity = capacity;
          options.burstiness = burstiness;
          options.semantics = semantics;
          const std::string context =
              c.label + " / n=" + std::to_string(tree.node_count()) +
              " / c=" + std::to_string(capacity) +
              " sigma=" + std::to_string(burstiness) +
              (semantics == StepSemantics::DecideBeforeInjection ? " / before"
                                                                 : " / after");

          std::vector<LaneSchedule> schedules;
          schedules.reserve(lanes);
          for (std::size_t l = 0; l < lanes; ++l) {
            schedules.push_back(random_schedule(0x5eedUL * (l + 1), tree,
                                                steps, capacity, burstiness));
          }

          LaneSimulator batch(tree, *c.policy, options, lanes);
          std::vector<std::span<const NodeId>> row(lanes);
          for (Step s = 0; s < steps; ++s) {
            for (std::size_t l = 0; l < lanes; ++l) row[l] = schedules[l][s];
            batch.step_lanes(row);
          }

          for (std::size_t l = 0; l < lanes; ++l) {
            const ScalarOutcome scalar =
                scalar_replay(tree, *c.policy, options, schedules[l]);
            EXPECT_EQ(batch.lane_peak(l), scalar.peak)
                << context << " lane " << l;
            EXPECT_EQ(batch.lane_injected(l), scalar.injected)
                << context << " lane " << l;
            EXPECT_EQ(batch.lane_delivered(l), scalar.delivered)
                << context << " lane " << l;
            EXPECT_TRUE(batch.lane_config(l) == scalar.final_config)
                << context << " lane " << l;
          }
        }
      }
    }
  }
}

// Mixed-length schedules share one block: each lane halts at its own horizon
// and its counters freeze there — `replay_schedules` must agree with the
// scalar engine even when the block is ragged, and must agree with its own
// scalar fallback (audit_locality forces it off the lane engine).

TEST(LaneEngine, ReplaySchedulesIsSubstrateInvariant) {
  const Tree tree = build::spider_staggered(5);
  const Step base = 40;
  for (const RuleCase& c : rule_cases()) {
    SimOptions options;
    options.capacity = 2;
    options.burstiness = 1;
    std::vector<LaneSchedule> schedules;
    for (std::size_t i = 0; i < 9; ++i) {
      schedules.push_back(random_schedule(0xabc0 + i, tree,
                                          base + 11 * static_cast<Step>(i),
                                          options.capacity,
                                          options.burstiness));
    }
    // max_lanes below the schedule count forces chunking as well.
    const std::vector<LaneReplayOutcome> laned =
        replay_schedules(tree, *c.policy, options, schedules, 4);
    ASSERT_EQ(laned.size(), schedules.size()) << c.label;
    for (std::size_t i = 0; i < schedules.size(); ++i) {
      const ScalarOutcome scalar =
          scalar_replay(tree, *c.policy, options, schedules[i]);
      EXPECT_EQ(laned[i].peak, scalar.peak) << c.label << " schedule " << i;
      EXPECT_EQ(laned[i].injected, scalar.injected)
          << c.label << " schedule " << i;
      EXPECT_EQ(laned[i].delivered, scalar.delivered)
          << c.label << " schedule " << i;
      EXPECT_EQ(laned[i].steps, schedules[i].size())
          << c.label << " schedule " << i;
    }
    // The scalar fallback path reports the same outcomes bit for bit.
    SimOptions audited = options;
    audited.audit_locality = true;
    ASSERT_FALSE(LaneSimulator::supported(*c.policy, audited));
    const std::vector<LaneReplayOutcome> fallback =
        replay_schedules(tree, *c.policy, audited, schedules, 4);
    ASSERT_EQ(fallback.size(), laned.size()) << c.label;
    for (std::size_t i = 0; i < laned.size(); ++i) {
      EXPECT_EQ(fallback[i].peak, laned[i].peak) << c.label << " " << i;
      EXPECT_EQ(fallback[i].injected, laned[i].injected)
          << c.label << " " << i;
      EXPECT_EQ(fallback[i].delivered, laned[i].delivered)
          << c.label << " " << i;
    }
  }
}

// The Engine-concept facade: lane 0 is the designated scalar lane, and
// driving the whole block through `run_engine` must be bit-identical to the
// scalar `run` — independent of what the shadow lanes are doing.

TEST(LaneEngine, FacadeLaneZeroMatchesScalarRunUnderRunEngine) {
  const Tree tree = build::path(49);
  const Step steps = 200;
  for (const RuleCase& c : rule_cases()) {
    SimOptions options;
    adversary::FixedNode scalar_adv(tree, adversary::Site::Deepest);
    const RunResult expected =
        run(tree, *c.policy, scalar_adv, steps, options);

    LaneSimulator batch(tree, *c.policy, options, 4);
    // Shadow lanes run unrelated traffic; lane 0 must not notice.
    for (std::size_t l = 1; l < batch.lanes(); ++l) {
      batch.bind_shadow_schedule(
          l, random_schedule(0xfadeUL + l, tree, steps, options.capacity,
                             options.burstiness));
    }
    adversary::FixedNode lane_adv(tree, adversary::Site::Deepest);
    lane_adv.on_simulation_start();
    std::vector<NodeId> injections;
    for (Step s = 0; s < steps; ++s) {
      injections.clear();
      lane_adv.plan(tree, batch.config(), s, options.capacity, injections);
      batch.step(injections);
    }
    EXPECT_EQ(batch.peak_height(), expected.peak_height) << c.label;
    EXPECT_EQ(batch.injected(), expected.injected) << c.label;
    EXPECT_EQ(batch.delivered(), expected.delivered) << c.label;
    EXPECT_TRUE(batch.config() == expected.final_config) << c.label;
    EXPECT_EQ(batch.now(), expected.steps) << c.label;
  }
}

// Unrolling an oblivious adversary and replaying the fixed schedule must
// reproduce the live run exactly; that is what lets `run_peak_sweep` fuse
// same-bucket grid points into lane blocks without changing any table.

TEST(LaneEngine, UnrolledObliviousScheduleReproducesLiveRun) {
  const Tree tree = build::spider_staggered(6);
  const Step steps = 150;
  SimOptions options;
  const OddEvenPolicy policy;
  const auto make_adv = [&tree](std::uint64_t seed) {
    return adversary::RandomUniform(seed);
  };
  adversary::RandomUniform live = make_adv(77);
  const RunResult expected = run(tree, policy, live, steps, options);

  adversary::RandomUniform unrolled = make_adv(77);
  ASSERT_TRUE(unrolled.oblivious());
  const LaneSchedule schedule =
      unroll_oblivious(tree, unrolled, steps, options.capacity);
  ASSERT_EQ(schedule.size(), steps);
  const std::vector<LaneSchedule> one{schedule};
  const std::vector<LaneReplayOutcome> replayed =
      replay_schedules(tree, policy, options, one);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].peak, expected.peak_height);
  EXPECT_EQ(replayed[0].injected, expected.injected);
  EXPECT_EQ(replayed[0].delivered, expected.delivered);
}

// Checkpointing: copying the block checkpoints every lane, like the scalar
// engine's copy semantics — divergent futures never share state.

TEST(LaneEngine, CopyCheckpointsTheWholeBlock) {
  const Tree tree = build::path(17);
  const OddEvenPolicy policy;
  SimOptions options;
  LaneSimulator batch(tree, policy, options, 3);
  const std::vector<NodeId> deep{static_cast<NodeId>(16)};
  std::vector<std::span<const NodeId>> row{deep, deep, deep};
  for (int s = 0; s < 20; ++s) batch.step_lanes(row);

  LaneSimulator checkpoint = batch;
  for (int s = 0; s < 20; ++s) batch.step_lanes(row);
  // The original advanced past the checkpoint (counters moved on)…
  EXPECT_GT(batch.lane_injected(0), checkpoint.lane_injected(0));
  EXPECT_GT(batch.lane_delivered(0), checkpoint.lane_delivered(0));
  // …and the checkpoint, resumed, converges on the same 40-step state.
  for (int s = 0; s < 20; ++s) checkpoint.step_lanes(row);
  for (std::size_t l = 0; l < 3; ++l) {
    EXPECT_TRUE(batch.lane_config(l) == checkpoint.lane_config(l));
    EXPECT_EQ(batch.lane_peak(l), checkpoint.lane_peak(l));
    EXPECT_EQ(batch.lane_injected(l), checkpoint.lane_injected(l));
    EXPECT_EQ(batch.lane_delivered(l), checkpoint.lane_delivered(l));
  }
}

TEST(LaneEngineDeathTest, UnsupportedBucketAbortsWithPolicyName) {
  const Tree tree = build::path(9);
  const PolicyPtr centralized = make_policy("centralized-fie");
  SimOptions options;
  EXPECT_DEATH(LaneSimulator(tree, *centralized, options, 4),
               "centralized-fie");
}

TEST(LaneEngineDeathTest, AdaptiveAdversaryCannotBeUnrolled) {
  const Tree tree = build::path(9);
  adversary::PileOn adaptive;
  ASSERT_FALSE(adaptive.oblivious());
  EXPECT_DEATH(
      { [[maybe_unused]] const LaneSchedule s = unroll_oblivious(tree, adaptive, 5, 1); },
      "oblivious");
}

}  // namespace
}  // namespace cvg
