// Unit tests for cvg_parallel: fork-join loop and the sweep runner,
// including determinism with respect to thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "cvg/adversary/simple.hpp"
#include "cvg/parallel/parallel_for.hpp"
#include "cvg/parallel/sweep.hpp"
#include "cvg/policy/registry.hpp"
#include "cvg/topology/builders.hpp"

namespace cvg {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, 8, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroAndOneCounts) {
  int calls = 0;
  parallel_for(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(5, 1, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ResultsIndependentOfThreadCount) {
  const auto compute = [](unsigned threads) {
    std::vector<std::uint64_t> out(200);
    parallel_for(200, threads, [&](std::size_t i) {
      Xoshiro256StarStar rng(derive_seed(7, i));
      std::uint64_t sum = 0;
      for (int k = 0; k < 100; ++k) sum += rng.below(1000);
      out[i] = sum;
    });
    return out;
  };
  EXPECT_EQ(compute(1), compute(7));
  EXPECT_EQ(compute(2), compute(16));
}

TEST(ParallelFor, DefaultThreadCountIsPositive) {
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(Sweep, RunsJobsAndPreservesOrder) {
  std::vector<PeakJob> jobs;
  for (const std::size_t n : {8u, 16u, 32u}) {
    PeakJob job;
    job.label = "greedy n=" + std::to_string(n);
    job.make_tree = [n] { return build::path(n); };
    job.make_policy = [] { return make_policy("greedy"); };
    job.make_adversary = [](const Tree& tree, const Policy&) -> AdversaryPtr {
      return std::make_unique<adversary::FixedNode>(tree,
                                                    adversary::Site::Deepest);
    };
    job.steps = 100;
    jobs.push_back(std::move(job));
  }
  const auto outcomes = run_peak_sweep(jobs, 3);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].label, "greedy n=8");
  EXPECT_EQ(outcomes[2].label, "greedy n=32");
  for (const auto& outcome : outcomes) {
    EXPECT_EQ(outcome.injected, 100u);
    EXPECT_GE(outcome.peak, 1);
  }
}

TEST(Sweep, DeterministicAcrossThreadCounts) {
  const auto make_jobs = [] {
    std::vector<PeakJob> jobs;
    for (std::uint64_t seed = 0; seed < 12; ++seed) {
      PeakJob job;
      job.label = "seed " + std::to_string(seed);
      job.make_tree = [] { return build::path(24); };
      job.make_policy = [] { return make_policy("odd-even"); };
      job.make_adversary = [seed](const Tree&, const Policy&) -> AdversaryPtr {
        return std::make_unique<adversary::RandomUniform>(derive_seed(3, seed));
      };
      job.steps = 300;
      jobs.push_back(std::move(job));
    }
    return jobs;
  };
  const auto a = run_peak_sweep(make_jobs(), 1);
  const auto b = run_peak_sweep(make_jobs(), 6);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].peak, b[i].peak) << i;
    EXPECT_EQ(a[i].delivered, b[i].delivered) << i;
  }
}

}  // namespace
}  // namespace cvg
