// Unit tests for cvg_util: deterministic RNG, string helpers, CVG_CHECK.

#include <gtest/gtest.h>

#include <set>

#include "cvg/util/check.hpp"
#include "cvg/util/rng.hpp"
#include "cvg/util/str.hpp"

namespace cvg {
namespace {

TEST(Rng, SplitMix64IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitMix64KnownVector) {
  // Reference values for seed 1234567 from the public-domain reference
  // implementation.
  SplitMix64 rng(1234567);
  EXPECT_EQ(rng.next(), 6457827717110365317ULL);
  EXPECT_EQ(rng.next(), 3203168211198807973ULL);
}

TEST(Rng, XoshiroDeterministicAcrossInstances) {
  Xoshiro256StarStar a(7);
  Xoshiro256StarStar b(7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256StarStar a(1);
  Xoshiro256StarStar b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LE(equal, 1);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256StarStar rng(99);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowCoversAllValues) {
  Xoshiro256StarStar rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BetweenInclusive) {
  Xoshiro256StarStar rng(11);
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t v = rng.between(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, Uniform01InUnitInterval) {
  Xoshiro256StarStar rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, DeriveSeedDecorrelatesIndices) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(derive_seed(42, i));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(Rng, DeriveSeedDependsOnMaster) {
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
}

TEST(Str, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"solo"}, ", "), "solo");
}

TEST(Str, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Str, SplitEmpty) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Str, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Str, StartsWith) {
  EXPECT_TRUE(starts_with("max-window-3", "max-window-"));
  EXPECT_FALSE(starts_with("max", "max-window-"));
}

TEST(Str, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(Str, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
}

TEST(CheckDeathTest, FiresOnFalse) {
  EXPECT_DEATH({ CVG_CHECK(1 == 2) << "math broke"; }, "math broke");
}

TEST(CheckDeathTest, SilentOnTrue) {
  CVG_CHECK(1 == 1) << "never evaluated";
  SUCCEED();
}

}  // namespace
}  // namespace cvg
