// Tests for the corpus store: replay-verified admission, one champion per
// bucket, persistence across reopen, resilience to corrupt files, and the
// regression gate (including the checked-in starter corpus and the
// deliberately broken tests/corpus_bad fixture).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "cvg/corpus/replay.hpp"
#include "cvg/corpus/store.hpp"

namespace cvg::corpus {
namespace {

/// Fresh scratch directory per test.
std::string scratch_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/cvg_store_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// A burst entry on a path: with sigma = 8 and c = 1, injecting k packets
/// at the deepest node in one step forces peak exactly >= k immediately,
/// so tests can dial in strictly ordered peaks.
CorpusEntry burst_entry(int k) {
  CorpusEntry entry;
  entry.parents = {kNoNode, 0, 1, 2};
  entry.topology = "path:4";
  entry.policy = "greedy";
  entry.provenance = "store test burst-" + std::to_string(k);
  entry.capacity = 1;
  entry.burstiness = 8;
  entry.schedule = {std::vector<NodeId>(static_cast<std::size_t>(k), 3)};
  return entry;
}

TEST(CorpusStore, AdmitsFirstEntryOfABucket) {
  CorpusStore store(scratch_dir("first"));
  const AdmitResult result = store.admit(burst_entry(2));
  EXPECT_TRUE(result.admitted);
  EXPECT_EQ(result.peak, 2);
  EXPECT_EQ(result.previous, 0);
  EXPECT_TRUE(std::filesystem::exists(result.path));
  EXPECT_EQ(store.entries().size(), 1u);
}

TEST(CorpusStore, OverwritesCallerClaimedPeakWithReplayedPeak) {
  CorpusStore store(scratch_dir("claimed"));
  CorpusEntry entry = burst_entry(2);
  entry.peak = 999;  // lying caller
  const AdmitResult result = store.admit(entry);
  ASSERT_TRUE(result.admitted);
  EXPECT_EQ(result.peak, 2);
  EXPECT_EQ(store.entries().front().entry.peak, 2);
  // And the stored file passes the gate (a stored lie would fail it).
  const auto checks = replay_corpus(store.dir());
  EXPECT_TRUE(replay_all_ok(checks));
}

TEST(CorpusStore, RejectsNonImprovingCandidates) {
  CorpusStore store(scratch_dir("reject"));
  ASSERT_TRUE(store.admit(burst_entry(3)).admitted);
  const AdmitResult same = store.admit(burst_entry(3));
  EXPECT_FALSE(same.admitted);
  EXPECT_EQ(same.previous, 3);
  const AdmitResult worse = store.admit(burst_entry(2));
  EXPECT_FALSE(worse.admitted);
  EXPECT_EQ(store.entries().size(), 1u);
}

TEST(CorpusStore, KeepsOneChampionPerBucket) {
  const std::string dir = scratch_dir("champion");
  CorpusStore store(dir);
  const AdmitResult small = store.admit(burst_entry(2));
  const AdmitResult big = store.admit(burst_entry(4));
  ASSERT_TRUE(small.admitted);
  ASSERT_TRUE(big.admitted);
  EXPECT_EQ(big.previous, 2);
  EXPECT_FALSE(std::filesystem::exists(small.path))
      << "superseded entry should be removed";
  EXPECT_TRUE(std::filesystem::exists(big.path));
  EXPECT_EQ(store.entries().size(), 1u);
  EXPECT_EQ(store.entries().front().entry.peak, 4);
}

TEST(CorpusStore, DistinctBucketsDoNotCompete) {
  CorpusStore store(scratch_dir("buckets"));
  ASSERT_TRUE(store.admit(burst_entry(3)).admitted);
  CorpusEntry other = burst_entry(2);
  other.policy = "odd-even";  // different bucket
  EXPECT_TRUE(store.admit(other).admitted);
  EXPECT_EQ(store.entries().size(), 2u);
}

TEST(CorpusStore, PersistsAcrossReopen) {
  const std::string dir = scratch_dir("reopen");
  {
    CorpusStore store(dir);
    ASSERT_TRUE(store.admit(burst_entry(5)).admitted);
  }
  CorpusStore reopened(dir);
  ASSERT_EQ(reopened.entries().size(), 1u);
  EXPECT_EQ(reopened.entries().front().entry.peak, 5);
  EXPECT_TRUE(reopened.load_errors().empty());
  // And the next admission still has to beat the persisted champion.
  EXPECT_FALSE(reopened.admit(burst_entry(5)).admitted);
  EXPECT_TRUE(reopened.admit(burst_entry(6)).admitted);
}

TEST(CorpusStore, CorruptFileIsReportedNotFatal) {
  const std::string dir = scratch_dir("corrupt");
  {
    CorpusStore store(dir);
    ASSERT_TRUE(store.admit(burst_entry(2)).admitted);
  }
  {
    std::ofstream junk(dir + "/zz_junk.cvgc", std::ios::binary);
    junk << "not a corpus entry";
  }
  CorpusStore reopened(dir);
  EXPECT_EQ(reopened.entries().size(), 1u);
  ASSERT_EQ(reopened.load_errors().size(), 1u);
  EXPECT_NE(reopened.load_errors().front().find("zz_junk"), std::string::npos);
  // The gate, however, must fail: a corpus with an unreadable entry cannot
  // certify anything.
  EXPECT_FALSE(replay_all_ok(replay_corpus(dir)));
}

TEST(CorpusReplayGate, FailsWhenRecordedPeakIsInflated) {
  const std::string dir = scratch_dir("inflated");
  std::filesystem::create_directories(dir);
  CorpusEntry entry = burst_entry(2);
  entry.peak = 50;  // stored directly, bypassing the admission replay
  save_entry(dir + "/" + entry_filename(content_hash(entry)), entry);
  const auto checks = replay_corpus(dir);
  ASSERT_EQ(checks.size(), 1u);
  EXPECT_FALSE(checks.front().ok);
  EXPECT_EQ(checks.front().recorded, 50);
  EXPECT_EQ(checks.front().replayed, 2);
  EXPECT_FALSE(replay_all_ok(checks));
}

TEST(CorpusReplayGate, FailsOnUnknownPolicy) {
  const std::string dir = scratch_dir("unknown_policy");
  std::filesystem::create_directories(dir);
  CorpusEntry entry = burst_entry(2);
  entry.policy = "no-such-policy";
  save_entry(dir + "/" + entry_filename(content_hash(entry)), entry);
  const auto checks = replay_corpus(dir);
  ASSERT_EQ(checks.size(), 1u);
  EXPECT_FALSE(checks.front().ok);
  EXPECT_NE(checks.front().error.find("policy"), std::string::npos);
}

TEST(CorpusReplayGate, EmptyCorpusDoesNotCertify) {
  const std::string dir = scratch_dir("empty");
  std::filesystem::create_directories(dir);
  EXPECT_FALSE(replay_all_ok(replay_corpus(dir)));
}

TEST(StarterCorpus, EveryCheckedInEntryReproduces) {
  // The library-level twin of the `cvg corpus replay tests/corpus` CI gate.
  const std::string dir = std::string(CVG_REPO_ROOT) + "/tests/corpus";
  const auto checks = replay_corpus(dir);
  EXPECT_GE(checks.size(), 4u) << "starter corpus went missing";
  for (const ReplayCheck& check : checks) {
    EXPECT_TRUE(check.ok) << check.path << ": recorded " << check.recorded
                          << ", replayed " << check.replayed << " "
                          << check.error;
  }
  EXPECT_TRUE(replay_all_ok(checks));
}

TEST(StarterCorpus, BadFixtureFailsTheGate) {
  const std::string dir = std::string(CVG_REPO_ROOT) + "/tests/corpus_bad";
  const auto checks = replay_corpus(dir);
  ASSERT_FALSE(checks.empty());
  EXPECT_FALSE(replay_all_ok(checks));
}

}  // namespace
}  // namespace cvg::corpus
