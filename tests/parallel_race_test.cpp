// Stress tests for the parallel layer, written to run under ThreadSanitizer
// (scripts/check_tsan.sh builds with CVG_SANITIZE=tsan and runs exactly
// these).  The tests hammer `parallel_for` and `SweepRunner` with many small
// jobs at several explicit thread counts — the container running the tier-1
// suite may expose a single core, so relying on `default_thread_count()`
// would silently serialise everything and give the sanitizer nothing to
// watch.  They also run audited simulations concurrently, pinning down that
// the height-read observer hook is genuinely thread-local: each worker's
// auditor sees only its own simulator's reads.

#include <atomic>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cvg/parallel/parallel_for.hpp"
#include "cvg/parallel/sweep.hpp"
#include "cvg/policy/registry.hpp"
#include "cvg/sim/engine_run.hpp"
#include "cvg/sim/simulator.hpp"
#include "cvg/topology/builders.hpp"
#include "cvg/util/rng.hpp"

namespace cvg {
namespace {

constexpr unsigned kThreadCounts[] = {2, 4, 8};

TEST(ParallelRaceTest, ParallelForCoversEveryIndexOnce) {
  constexpr std::size_t kCount = 400;
  for (const unsigned threads : kThreadCounts) {
    std::vector<std::atomic<int>> hits(kCount);
    parallel_for(kCount, threads,
                 [&hits](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << ", " << threads
                                   << " threads";
    }
  }
}

TEST(ParallelRaceTest, ParallelForContendedAccumulation) {
  constexpr std::size_t kCount = 2000;
  for (const unsigned threads : kThreadCounts) {
    std::atomic<std::uint64_t> sum{0};
    parallel_for(kCount, threads, [&sum](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), kCount * (kCount - 1) / 2);
  }
}

TEST(ParallelRaceTest, SweepRunnerManySmallJobs) {
  // Many tiny simulations, each building its own tree and policy on the
  // worker thread; outcomes must arrive in job order with the right labels.
  constexpr int kJobs = 48;
  SweepRunner runner;
  for (int j = 0; j < kJobs; ++j) {
    const std::size_t n = 6 + static_cast<std::size_t>(j % 5);
    runner.add("job-" + std::to_string(j), /*steps=*/40,
               [n, j](Step steps) {
                 const Tree tree = build::path(n);
                 const PolicyPtr policy =
                     make_policy(j % 2 == 0 ? "odd-even" : "greedy");
                 Simulator sim(tree, *policy, SimOptions{});
                 Xoshiro256StarStar rng(static_cast<std::uint64_t>(j));
                 const auto inject = [&rng, n](const Configuration&, Step,
                                               std::vector<NodeId>& out) {
                   out.push_back(static_cast<NodeId>(1 + rng.below(n - 1)));
                 };
                 return run_engine(sim, inject, steps, nullptr);
               });
  }
  for (const unsigned threads : kThreadCounts) {
    const std::vector<SweepOutcome> outcomes = runner.run(threads);
    ASSERT_EQ(outcomes.size(), static_cast<std::size_t>(kJobs));
    for (int j = 0; j < kJobs; ++j) {
      EXPECT_EQ(outcomes[static_cast<std::size_t>(j)].label,
                "job-" + std::to_string(j));
      EXPECT_EQ(outcomes[static_cast<std::size_t>(j)].steps, 40u);
      EXPECT_GT(outcomes[static_cast<std::size_t>(j)].injected, 0u);
    }
  }
}

TEST(ParallelRaceTest, SweepDeterministicAcrossThreadCounts) {
  SweepRunner runner;
  for (int j = 0; j < 24; ++j) {
    runner.add("det-" + std::to_string(j), /*steps=*/60, [j](Step steps) {
      const Tree tree = build::spider(3, 3);
      const PolicyPtr policy = make_policy("downhill-or-flat");
      Simulator sim(tree, *policy, SimOptions{});
      Xoshiro256StarStar rng(static_cast<std::uint64_t>(100 + j));
      const std::size_t n = tree.node_count();
      const auto inject = [&rng, n](const Configuration&, Step,
                                    std::vector<NodeId>& out) {
        out.push_back(static_cast<NodeId>(rng.below(n)));
      };
      return run_engine(sim, inject, steps, nullptr);
    });
  }
  const std::vector<SweepOutcome> serial = runner.run(1);
  for (const unsigned threads : kThreadCounts) {
    const std::vector<SweepOutcome> parallel = runner.run(threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t j = 0; j < serial.size(); ++j) {
      EXPECT_EQ(parallel[j].peak, serial[j].peak) << serial[j].label;
      EXPECT_EQ(parallel[j].delivered, serial[j].delivered) << serial[j].label;
    }
  }
}

TEST(ParallelRaceTest, AuditedSimulationsAreThreadLocal) {
  // Each worker runs its own audited simulator; the thread-local observer
  // hook must keep every auditor's counters attributable to its own run —
  // identical jobs must therefore produce identical reports, whatever the
  // interleaving.
  constexpr std::size_t kRuns = 24;
  constexpr int kSteps = 80;
  std::vector<std::uint64_t> reads(kRuns, 0);
  std::vector<std::uint64_t> decisions(kRuns, 0);
  for (const unsigned threads : kThreadCounts) {
    parallel_for(kRuns, threads, [&reads, &decisions](std::size_t i) {
      const Tree tree = build::path(12);
      const PolicyPtr policy = make_policy("odd-even");
      SimOptions options;
      options.audit_locality = true;
      Simulator sim(tree, *policy, options);
      for (int s = 0; s < kSteps; ++s) {
        sim.step_inject(static_cast<NodeId>(tree.node_count() - 1));
      }
      const LocalityAuditReport* report = sim.locality_report();
      ASSERT_NE(report, nullptr);
      reads[i] = report->reads;
      decisions[i] = report->decisions;
    });
    for (std::size_t i = 1; i < kRuns; ++i) {
      EXPECT_EQ(reads[i], reads[0]) << "run " << i;
      EXPECT_EQ(decisions[i], decisions[0]) << "run " << i;
    }
  }
}

}  // namespace
}  // namespace cvg
