// Unit tests for cvg_topology: tree construction/validation and the builder
// family used across the experiments.

#include <gtest/gtest.h>

#include <set>

#include "cvg/topology/builders.hpp"
#include "cvg/topology/spec.hpp"
#include "cvg/topology/tree.hpp"

namespace cvg {
namespace {

TEST(Tree, PathStructure) {
  const Tree tree = build::path(5);
  EXPECT_EQ(tree.node_count(), 5u);
  EXPECT_TRUE(tree.is_path());
  EXPECT_EQ(tree.parent(1), 0u);
  EXPECT_EQ(tree.parent(4), 3u);
  EXPECT_EQ(tree.parent(0), kNoNode);
  EXPECT_EQ(tree.depth(0), 0u);
  EXPECT_EQ(tree.depth(4), 4u);
  EXPECT_EQ(tree.max_depth(), 4u);
  EXPECT_TRUE(tree.is_leaf(4));
  EXPECT_FALSE(tree.is_leaf(2));
  EXPECT_FALSE(tree.is_intersection(2));
}

TEST(Tree, SingleNode) {
  const Tree tree = build::path(1);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_TRUE(tree.is_leaf(0));
  EXPECT_EQ(tree.max_depth(), 0u);
}

TEST(Tree, ChildrenAreSortedAndComplete) {
  const Tree tree = build::complete_kary(3, 3);  // 1 + 3 + 9 = 13 nodes
  EXPECT_EQ(tree.node_count(), 13u);
  const auto children = tree.children(0);
  ASSERT_EQ(children.size(), 3u);
  EXPECT_EQ(children[0], 1u);
  EXPECT_EQ(children[1], 2u);
  EXPECT_EQ(children[2], 3u);
  EXPECT_TRUE(tree.is_intersection(0));
  std::size_t leaves = 0;
  for (NodeId v = 0; v < tree.node_count(); ++v) leaves += tree.is_leaf(v);
  EXPECT_EQ(leaves, 9u);
}

TEST(Tree, BfsOrderVisitsParentsFirst) {
  Xoshiro256StarStar rng(3);
  const Tree tree = build::random_recursive(100, rng);
  std::vector<bool> seen(tree.node_count(), false);
  for (const NodeId v : tree.bfs_order()) {
    if (v != Tree::sink()) {
      EXPECT_TRUE(seen[tree.parent(v)]);
    }
    seen[v] = true;
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(Tree, PathToSink) {
  const Tree tree = build::path(6);
  const auto path = tree.path_to_sink(5);
  ASSERT_EQ(path.size(), 6u);
  EXPECT_EQ(path.front(), 5u);
  EXPECT_EQ(path.back(), 0u);
}

TEST(Tree, SpiderShape) {
  const Tree tree = build::spider(4, 3);
  EXPECT_EQ(tree.node_count(), 2u + 4 * 3);
  // The hub (node 1) has in-degree 4.
  EXPECT_EQ(tree.in_degree(1), 4u);
  EXPECT_TRUE(tree.is_intersection(1));
  EXPECT_EQ(tree.max_depth(), 1u + 3u);
  std::size_t leaves = 0;
  for (NodeId v = 0; v < tree.node_count(); ++v) leaves += tree.is_leaf(v);
  EXPECT_EQ(leaves, 4u);
}

TEST(Tree, StarShape) {
  const Tree tree = build::star(7);
  EXPECT_EQ(tree.node_count(), 9u);
  EXPECT_EQ(tree.in_degree(1), 7u);
}

TEST(Tree, CaterpillarShape) {
  const Tree tree = build::caterpillar(5, 2);
  EXPECT_EQ(tree.node_count(), 1u + 5 + 10);
  for (NodeId s = 1; s <= 5; ++s) {
    EXPECT_EQ(tree.parent(s), s - 1);
    EXPECT_GE(tree.in_degree(s), 2u);  // next spine node (except last) + legs
  }
}

TEST(Tree, BroomShape) {
  const Tree tree = build::broom(4, 6);
  EXPECT_EQ(tree.node_count(), 11u);
  EXPECT_EQ(tree.in_degree(4), 6u);
  EXPECT_EQ(tree.max_depth(), 5u);
}

TEST(Tree, RandomRecursiveIsValidAndShallow) {
  Xoshiro256StarStar rng(17);
  const Tree tree = build::random_recursive(2000, rng);
  EXPECT_EQ(tree.node_count(), 2000u);
  // Random recursive trees have expected depth Θ(log n) — generous cap.
  EXPECT_LE(tree.max_depth(), 60u);
}

TEST(Tree, RandomChainyExtremes) {
  Xoshiro256StarStar rng(23);
  const Tree path_like = build::random_chainy(50, 1.0, rng);
  EXPECT_TRUE(path_like.is_path());
  const Tree tree = build::random_chainy(50, 0.0, rng);
  EXPECT_EQ(tree.node_count(), 50u);
}

TEST(Tree, FromParents) {
  const std::vector<NodeId> parents = {kNoNode, 0, 0, 1};
  const Tree tree = build::from_parents(parents);
  EXPECT_EQ(tree.in_degree(0), 2u);
  EXPECT_EQ(tree.parent(3), 1u);
}

TEST(TreeDeathTest, RejectsCycle) {
  EXPECT_DEATH(Tree({kNoNode, 2, 1}), "cycle");
}

TEST(TreeDeathTest, RejectsNonRootZero) {
  EXPECT_DEATH(Tree({1, 0}), "node 0 must be the root");
}

TEST(TreeDeathTest, RejectsSelfParent) {
  EXPECT_DEATH(Tree({kNoNode, 1}), "its own parent");
}

TEST(TreeDeathTest, RejectsOutOfRangeParent) {
  EXPECT_DEATH(Tree({kNoNode, 9}), "out-of-range");
}

TEST(TreeRender, DotContainsAllEdges) {
  const Tree tree = build::star(3);
  const std::string dot = to_dot(tree);
  EXPECT_NE(dot.find("1 -> 0"), std::string::npos);
  EXPECT_NE(dot.find("2 -> 1"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(TreeRender, AsciiListsEveryNode) {
  const Tree tree = build::complete_kary(2, 3);
  const std::string ascii = to_ascii(tree);
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    EXPECT_NE(ascii.find(std::to_string(v)), std::string::npos) << v;
  }
}

TEST(TreeRender, AsciiWithAnnotations) {
  const Tree tree = build::path(3);
  const std::vector<std::string> notes = {"h=0", "h=1", "h=2"};
  const std::string ascii = to_ascii(tree, notes);
  EXPECT_NE(ascii.find("h=2"), std::string::npos);
}

TEST(Tree, EqualityByStructure) {
  EXPECT_EQ(build::path(4), build::path(4));
  EXPECT_NE(build::path(4), build::path(5));
}

TEST(TopologySpec, SpecsMatchTheirBuilders) {
  EXPECT_EQ(build::make_tree("path:7"), build::path(7));
  EXPECT_EQ(build::make_tree("star:5"), build::star(5));
  EXPECT_EQ(build::make_tree("spider:3x4"), build::spider(3, 4));
  EXPECT_EQ(build::make_tree("staggered-spider:6"), build::spider_staggered(6));
  EXPECT_EQ(build::make_tree("kary:2x3"), build::complete_kary(2, 3));
  EXPECT_EQ(build::make_tree("caterpillar:5x2"), build::caterpillar(5, 2));
  EXPECT_EQ(build::make_tree("broom:4x3"), build::broom(4, 3));
}

TEST(TopologySpec, RandomRecursiveCarriesItsSeed) {
  // Specs are deterministic: the seed lives in the spec string.
  EXPECT_EQ(build::make_tree("random-recursive:20:9"),
            build::make_tree("random-recursive:20:9"));
  EXPECT_NE(build::make_tree("random-recursive:20:9"),
            build::make_tree("random-recursive:20:10"));
}

TEST(TopologySpec, KnownSpecPredicateMatchesTheGrammar) {
  for (const std::string& example : build::topology_spec_examples()) {
    EXPECT_TRUE(build::is_known_topology_spec(example)) << example;
    EXPECT_GE(build::make_tree(example).node_count(), 2u) << example;
  }
  EXPECT_FALSE(build::is_known_topology_spec(""));
  EXPECT_FALSE(build::is_known_topology_spec("path"));
  EXPECT_FALSE(build::is_known_topology_spec("path:"));
  EXPECT_FALSE(build::is_known_topology_spec("path:1"));
  EXPECT_FALSE(build::is_known_topology_spec("path:x"));
  EXPECT_FALSE(build::is_known_topology_spec("spider:3"));
  EXPECT_FALSE(build::is_known_topology_spec("random-recursive:20"));
  EXPECT_FALSE(build::is_known_topology_spec("mobius:8"));
}

TEST(TopologySpecDeathTest, MakeTreeAbortsOnUnknownSpec) {
  EXPECT_DEATH((void)build::make_tree("mobius:8"), "unknown topology spec");
}

}  // namespace
}  // namespace cvg
